package perspectron

import "testing"

func TestEscalationPolicyBands(t *testing.T) {
	p := EscalationPolicy(0.25, 0.6, MitigateFence)
	if got := p(0.1, nil); len(got) != 0 {
		t.Fatalf("low score mitigated: %v", got)
	}
	if got := p(0.9, nil); len(got) != 1 || got[0] != MitigateFence {
		t.Fatalf("high score response = %v", got)
	}
	// Hysteresis: in the watch band, current state persists.
	cur := []Mitigation{MitigateFence}
	if got := p(0.4, cur); len(got) != 1 {
		t.Fatalf("watch band dropped active mitigation: %v", got)
	}
	if got := p(0.4, nil); len(got) != 0 {
		t.Fatalf("watch band invented a mitigation: %v", got)
	}
	if got := p(0.1, cur); len(got) != 0 {
		t.Fatalf("clear signal did not stand down: %v", got)
	}
}

func TestMitigationNames(t *testing.T) {
	for _, m := range []Mitigation{MitigateNone, MitigateFence, MitigateRekey, MitigateBPNoise} {
		if m.String() == "" {
			t.Fatalf("unnamed mitigation %d", m)
		}
	}
}

func TestMonitorWithPolicyFencesAttack(t *testing.T) {
	det := sharedDetector(t)
	policy := EscalationPolicy(0.25, 0.5, MitigateFence)
	rep, err := det.MonitorWithPolicy(AttackByName("spectreV1", "fr"), 100_000, 9, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatalf("attack not detected")
	}
	if rep.MitigatedIntervals == 0 {
		t.Fatalf("policy never mitigated a detected attack")
	}
	// Once fencing engages, speculative loads get blocked — the channel is
	// actually closed, not just flagged.
	if rep.SpecLoadsBlocked == 0 {
		t.Fatalf("fencing engaged but blocked no speculative loads")
	}
}

func TestMonitorWithPolicyLeavesBenignAlone(t *testing.T) {
	det := sharedDetector(t)
	policy := EscalationPolicy(0.25, 0.5, MitigateFence, MitigateRekey)
	var benign Workload
	for _, w := range BenignWorkloads() {
		if w.Info().Name == "bzip2" {
			benign = w
		}
	}
	rep, err := det.MonitorWithPolicy(benign, 80_000, 9, policy)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MitigatedIntervals > len(rep.Samples)/4 {
		t.Fatalf("benign program mitigated in %d/%d intervals",
			rep.MitigatedIntervals, len(rep.Samples))
	}
}

func TestMonitorWithPolicyRekeys(t *testing.T) {
	det := sharedDetector(t)
	policy := EscalationPolicy(0.2, 0.4, MitigateRekey)
	rep, err := det.MonitorWithPolicy(AttackByName("prime+probe", ""), 80_000, 9, policy)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected && rep.Rekeys == 0 {
		t.Fatalf("detected prime+probe but never rekeyed")
	}
}

func TestMonitorWithPolicyNilPolicy(t *testing.T) {
	det := sharedDetector(t)
	if _, err := det.MonitorWithPolicy(AttackByName("meltdown", "fr"), 10_000, 1, nil); err == nil {
		t.Fatalf("nil policy accepted")
	}
}

func TestMonitorWithPolicyStandsDown(t *testing.T) {
	// A bandwidth-reduced attack alternates bursts and quiet filler: the
	// policy must engage during bursts and stand down during quiet phases.
	det := sharedDetector(t)
	// Watch band above the idle-interval score (~0.27) so quiet filler
	// phases genuinely stand the mitigation down.
	policy := EscalationPolicy(0.35, 0.5, MitigateFence)
	w := ReduceBandwidth(AttackByName("spectreV1", "fr"), 0.25)
	rep, err := det.MonitorWithPolicy(w, 300_000, 9, policy)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MitigatedIntervals == 0 {
		t.Fatalf("never mitigated")
	}
	if rep.MitigatedIntervals == len(rep.Samples) {
		t.Fatalf("never stood down during quiet phases (%d/%d)",
			rep.MitigatedIntervals, len(rep.Samples))
	}
}
