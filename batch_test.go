package perspectron

import (
	"context"
	"math"
	"testing"
)

// TestRawScorerMatchesSession pins the serving shard path to the inline
// session path bit for bit: two sessions over the same (workload, seed) —
// one scored inline by Next, one drained raw through NextRaw and scored by
// a RawScorer — must produce identical scores, flags, classes and coverage,
// including under injected faults (NaN sentinels through the packed
// kernels).
func TestRawScorerMatchesSession(t *testing.T) {
	det := sharedDetector(t)
	cls := sharedClassifier(t)
	for _, faults := range []*FaultConfig{nil, {Seed: 3, Dropout: 0.3}} {
		cfg := SessionConfig{
			Workload: AttackByName("spectreV1", "fr"),
			MaxInsts: 60_000,
			Seed:     11,
			Faults:   faults,
		}
		ctx := context.Background()
		inline, err := NewSession(ctx, det, cls, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer inline.Close()
		rawSess, err := NewSession(ctx, det, cls, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer rawSess.Close()
		scorer, err := NewRawScorer(det, cls)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			v, ok1 := inline.Next(ctx)
			rs, ok2 := rawSess.NextRaw(ctx)
			if ok1 != ok2 {
				t.Fatalf("faults=%v: streams diverged at sample %d (inline=%v raw=%v)", faults, n, ok1, ok2)
			}
			if !ok1 {
				break
			}
			score, flagged, coverage := scorer.Detect(rs)
			if score != v.Score || flagged != v.Flagged || coverage != v.Coverage {
				t.Fatalf("faults=%v sample %d: raw (score=%v flagged=%v cov=%v) != session (%v %v %v)",
					faults, n, score, flagged, coverage, v.Score, v.Flagged, v.Coverage)
			}
			class, clsScore, _ := scorer.Classify(rs)
			if class != v.Class || clsScore != v.ClassScore {
				t.Fatalf("faults=%v sample %d: raw class (%s %v) != session (%s %v)",
					faults, n, class, clsScore, v.Class, v.ClassScore)
			}
			n++
		}
		if n == 0 {
			t.Fatalf("faults=%v: no samples compared", faults)
		}
	}
}

func TestRawScorerNilModels(t *testing.T) {
	if _, err := NewRawScorer(nil, nil); err == nil {
		t.Fatalf("model-less raw scorer accepted")
	}
	det := sharedDetector(t)
	r, err := NewRawScorer(det, nil)
	if err != nil {
		t.Fatal(err)
	}
	if class, score, cov := r.Classify(RawSample{}); class != "" || score != 0 || cov != 0 {
		t.Fatalf("classifier-less Classify = (%q, %v, %v), want zeros", class, score, cov)
	}
	// A fully faulted sample degrades to the bare bias sign at coverage 0
	// (the same total-blackout margin the dense path produces) instead of
	// panicking or flagging.
	raw := make([]float64, 512)
	for i := range raw {
		raw[i] = math.NaN()
	}
	score, flagged, cov := r.Detect(RawSample{Raw: raw})
	if cov != 0 || flagged || math.IsNaN(score) {
		t.Fatalf("all-NaN Detect = (%v, %v, %v), want finite unflagged score at coverage 0", score, flagged, cov)
	}
}
