package perspectron

// Promotion gate: a candidate checkpoint goes live only if it is no worse
// than the current live model on every tier-1 metric over a held-out golden
// corpus. The gate is the write half of the continual-learning loop — the
// shadow trainer (internal/shadow) produces candidates, PromoteDetector
// decides, and the serving runtime's checkpoint watcher picks up whatever the
// gate atomically renames into place. Rejected candidates are preserved next
// to the live file for inspection rather than discarded.

import (
	"fmt"
	"time"

	"perspectron/internal/corpus"
	"perspectron/internal/eval"
	"perspectron/internal/telemetry"
	"perspectron/internal/trace"
)

// GoldenSet is a held-out evaluation corpus in raw counter form, collected
// once and reused across promotion decisions. It deliberately stores the
// full-width raw vectors (not a projection onto any one detector's feature
// set) so candidates with different feature selections are all scoreable
// against the same frozen samples.
type GoldenSet struct {
	// FeatureNames is the dataset's full feature space; detectors map their
	// selected features onto it by name at evaluation time.
	FeatureNames []string
	// Raw holds one full-width counter-delta vector per sample.
	Raw [][]float64
	// Points holds each sample's execution point (sampling-interval index).
	Points []int
	// Y holds ±1 labels (+1 malicious).
	Y []float64
}

// CollectGolden collects a held-out golden corpus from the given workloads.
// Pass a Seed different from the training options' so the gate never scores
// the samples the candidate trained on. Collection goes through the
// process-wide corpus store, so repeated gates reuse the cached dataset.
func CollectGolden(workloads []Workload, opts Options) (*GoldenSet, error) {
	if len(workloads) == 0 {
		return nil, fmt.Errorf("perspectron: no golden workloads")
	}
	ds := corpus.Default().Dataset(workloads, opts.CollectConfig())
	b, m := ds.ClassCounts()
	if b == 0 || m == 0 {
		return nil, fmt.Errorf("perspectron: golden corpus needs both classes (benign=%d malicious=%d)", b, m)
	}
	g := &GoldenSet{FeatureNames: ds.FeatureNames}
	for i := range ds.Samples {
		s := &ds.Samples[i]
		g.Raw = append(g.Raw, s.Raw)
		g.Points = append(g.Points, s.Index)
		g.Y = append(g.Y, trace.LabelValue(s.Label))
	}
	return g, nil
}

// EvaluateGolden scores the detector over the golden corpus at its own
// threshold and returns the gated metric vector. Detector features absent
// from the golden feature space are masked (index -1) exactly as missing
// counters are in degraded serving, so the comparison stays meaningful when
// feature selections drift between generations.
func (d *Detector) EvaluateGolden(g *GoldenSet) EvalScores {
	pos := make(map[string]int, len(g.FeatureNames))
	for j, name := range g.FeatureNames {
		pos[name] = j
	}
	idx := make([]int, len(d.FeatureNames))
	for i, name := range d.FeatureNames {
		if p, ok := pos[name]; ok {
			idx[i] = p
		} else {
			idx[i] = -1
		}
	}
	scores := make([]float64, len(g.Raw))
	for i, raw := range g.Raw {
		scores[i], _ = d.scoreWith(raw, g.Points[i], idx)
	}
	m := eval.Score(scores, g.Y, d.Threshold)
	return EvalScores{
		Samples:   m.Total(),
		Accuracy:  m.Accuracy(),
		Precision: m.Precision(),
		Recall:    m.Recall(),
		FPR:       m.FPR(),
		F1:        m.F1(),
		AUC:       eval.AUC(eval.ROC(scores, g.Y)),
	}
}

// Promotion is the gate's decision record.
type Promotion struct {
	// Promoted reports whether the candidate went live.
	Promoted bool
	// Reason explains a rejection (or the promotion basis).
	Reason string
	// CandidateVersion / BaselineVersion are the content versions compared;
	// BaselineVersion is empty on a first promotion with no live model.
	CandidateVersion string
	BaselineVersion  string
	// Candidate / Baseline are the measured golden-corpus scores. Baseline
	// is zero when no live model existed.
	Candidate EvalScores
	Baseline  EvalScores
	// RejectedPath is where a rejected candidate was preserved for
	// inspection (empty on promotion or when the candidate failed to load).
	RejectedPath string
}

// PromoteDetector runs the gate: load the candidate at candPath, evaluate it
// and the live model at livePath over the golden corpus, and atomically
// replace the live checkpoint only if the candidate regresses on no gated
// metric (no-worse promotes, so a retrained-but-equivalent model goes live).
//
// Failure containment mirrors the serving watcher's: a candidate that fails
// to load or verify is a rejection, not an error — the live model is never
// touched by a corrupt candidate. A missing live file means first promotion
// and the candidate goes live on its own scores. Rejected candidates are
// preserved at livePath+".rejected" with their measured scores stamped.
//
// The replace is writeFileAtomic's temp+fsync+rename, so a serving watcher
// hot-reloading livePath concurrently observes either the old or the new
// complete checkpoint, never a torn one.
func PromoteDetector(candPath, livePath string, golden *GoldenSet) (*Promotion, error) {
	if golden == nil || len(golden.Raw) == 0 {
		return nil, fmt.Errorf("perspectron: promotion gate needs a non-empty golden corpus")
	}
	reg := telemetry.Get()

	cand, err := LoadFile(candPath)
	if err != nil {
		reg.Counter(telemetry.Name("perspectron_promote_total", "result", "rejected")).Inc()
		return &Promotion{Promoted: false, Reason: fmt.Sprintf("candidate unloadable: %v", err)}, nil
	}
	p := &Promotion{CandidateVersion: cand.Version()}
	p.Candidate = cand.EvaluateGolden(golden)

	live, liveErr := LoadFile(livePath)
	if liveErr == nil {
		p.BaselineVersion = live.Version()
		p.Baseline = live.EvaluateGolden(golden)
		if regs := p.Candidate.RegressionsAgainst(p.Baseline); len(regs) > 0 {
			p.Reason = fmt.Sprintf("regressed vs %s: %v", p.BaselineVersion, regs)
			p.RejectedPath = livePath + ".rejected"
			stampEval(cand, p.Candidate, "")
			if err := cand.SaveFile(p.RejectedPath); err != nil {
				p.RejectedPath = ""
				p.Reason += fmt.Sprintf(" (preserving rejected candidate failed: %v)", err)
			}
			reg.Counter(telemetry.Name("perspectron_promote_total", "result", "rejected")).Inc()
			return p, nil
		}
		p.Reason = fmt.Sprintf("no regression vs %s on %d golden samples", p.BaselineVersion, p.Candidate.Samples)
	} else {
		// No readable live model: first promotion (or the live file was
		// corrupt, in which case any verified candidate is an improvement).
		p.Reason = fmt.Sprintf("no live baseline (%v)", liveErr)
	}

	stampEval(cand, p.Candidate, time.Now().UTC().Format(time.RFC3339))
	if live != nil && cand.Lineage != nil && cand.Lineage.Parent == "" {
		cand.Lineage.Parent = live.Checksum
		cand.Lineage.Generation = liveGeneration(live) + 1
	}
	if err := cand.SaveFile(livePath); err != nil {
		return nil, fmt.Errorf("perspectron: promoting %s: %w", p.CandidateVersion, err)
	}
	p.Promoted = true
	reg.Counter(telemetry.Name("perspectron_promote_total", "result", "promoted")).Inc()
	if reg != nil {
		reg.Event("promote", map[string]any{
			"candidate": p.CandidateVersion,
			"baseline":  p.BaselineVersion,
			"reason":    p.Reason,
			"accuracy":  p.Candidate.Accuracy,
			"auc":       p.Candidate.AUC,
		})
	}
	return p, nil
}

// stampEval records the gate's measured scores (and, when promoting, the
// timestamp) in the candidate's lineage, creating one for legacy checkpoints.
func stampEval(d *Detector, scores EvalScores, promotedAt string) {
	if d.Lineage == nil {
		d.Lineage = &Lineage{}
	}
	ev := scores
	d.Lineage.Eval = &ev
	if promotedAt != "" {
		d.Lineage.PromotedAt = promotedAt
	}
}

// liveGeneration reads a detector's lineage generation, treating legacy
// checkpoints as generation zero.
func liveGeneration(d *Detector) int {
	if d.Lineage == nil {
		return 0
	}
	return d.Lineage.Generation
}
