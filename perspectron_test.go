package perspectron

import (
	"bytes"
	"testing"
)

// trainSmall trains a quick detector shared by the API tests.
func trainSmall(t *testing.T) *Detector {
	t.Helper()
	opts := DefaultOptions()
	opts.MaxInsts = 100_000
	opts.Runs = 1
	det, err := Train(TrainingWorkloads(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

var cachedDetector *Detector

func sharedDetector(t *testing.T) *Detector {
	t.Helper()
	if cachedDetector == nil {
		cachedDetector = trainSmall(t)
	}
	return cachedDetector
}

func TestTrainProducesDetector(t *testing.T) {
	det := sharedDetector(t)
	if det.NumFeatures() != 106 {
		t.Fatalf("features = %d, want 106", det.NumFeatures())
	}
	if det.Interval != 10_000 || det.Threshold != 0.25 {
		t.Fatalf("config not propagated: %+v", det)
	}
	if len(det.FeatureNames) != len(det.Weights) {
		t.Fatalf("names/weights mismatch")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, DefaultOptions()); err == nil {
		t.Fatalf("empty corpus accepted")
	}
	opts := DefaultOptions()
	opts.MaxInsts = 50_000
	opts.Runs = 1
	if _, err := Train(BenignWorkloads()[:2], opts); err == nil {
		t.Fatalf("single-class corpus accepted")
	}
}

func TestMonitorDetectsAttack(t *testing.T) {
	det := sharedDetector(t)
	rep, err := det.Monitor(AttackByName("spectreV1", "fr"), 100_000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatalf("spectreV1 not detected")
	}
	if !rep.Malicious {
		t.Fatalf("ground truth wrong")
	}
	if len(rep.LeakSamples) == 0 {
		t.Fatalf("no leak marks")
	}
}

func TestMonitorPassesBenign(t *testing.T) {
	det := sharedDetector(t)
	for _, name := range []string{"bzip2", "mcf"} {
		var w Workload
		for _, b := range BenignWorkloads() {
			if b.Info().Name == name {
				w = b
			}
		}
		rep, err := det.Monitor(w, 100_000, 7)
		if err != nil {
			t.Fatal(err)
		}
		flagged := 0
		for _, s := range rep.Samples {
			if s.Flagged {
				flagged++
			}
		}
		if flagged > len(rep.Samples)/4 {
			t.Fatalf("benign %s flagged %d/%d samples", name, flagged, len(rep.Samples))
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	det := sharedDetector(t)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFeatures() != det.NumFeatures() || back.Threshold != det.Threshold {
		t.Fatalf("round trip lost configuration")
	}
	// The loaded detector must still detect.
	rep, err := back.Monitor(AttackByName("flush+reload", ""), 80_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatalf("loaded detector failed to detect flush+reload")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{")); err == nil {
		t.Fatalf("truncated JSON accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"feature_names":["a"],"weights":[]}`)); err == nil {
		t.Fatalf("inconsistent detector accepted")
	}
}

func TestAttackByName(t *testing.T) {
	names := []string{"spectreV1", "spectreV2", "spectreRSB", "meltdown",
		"breakingKSLR", "cacheOut", "flush+reload", "flush+flush", "prime+probe"}
	for _, n := range names {
		if AttackByName(n, "fr") == nil {
			t.Fatalf("attack %q missing", n)
		}
	}
	if AttackByName("nope", "fr") != nil {
		t.Fatalf("unknown attack returned non-nil")
	}
}

func TestPolymorphicVariantsCount(t *testing.T) {
	if got := len(PolymorphicVariants("fr")); got != 12 {
		t.Fatalf("polymorphic variants = %d, want 12 (paper §VI-A1)", got)
	}
}

func TestReduceBandwidthKeepsLabel(t *testing.T) {
	w := ReduceBandwidth(AttackByName("spectreV1", "fr"), 0.5)
	if w.Info().Label.String() != "malicious" {
		t.Fatalf("bandwidth wrapper changed label")
	}
	if ReduceBandwidth(AttackByName("spectreV1", "fr"), 1.0).Info().Name != "spectreV1-fr" {
		t.Fatalf("factor 1.0 should be identity")
	}
}

func TestTopFeatures(t *testing.T) {
	det := sharedDetector(t)
	sus, ben := det.TopFeatures(5)
	if len(sus) != 5 || len(ben) != 5 {
		t.Fatalf("top features sizes: %d/%d", len(sus), len(ben))
	}
	if sus[0].Weight <= ben[0].Weight {
		t.Fatalf("weight ordering wrong: %+v vs %+v", sus[0], ben[0])
	}
}

func TestHardwareSummary(t *testing.T) {
	det := sharedDetector(t)
	h := det.Hardware()
	if h.NumFeatures != det.NumFeatures() {
		t.Fatalf("hardware model feature count mismatch")
	}
	if !h.FitsInSamplingInterval() {
		t.Fatalf("detector does not fit its sampling interval")
	}
}

func TestDetectorUpdateLearnsNewAttack(t *testing.T) {
	// Train WITHOUT flush+flush, then apply a §IV-G1 weight patch that
	// adds it; the updated detector must keep its configuration and flag
	// the new attack class strongly.
	var base []Workload
	base = append(base, BenignWorkloads()...)
	for _, a := range AttackWorkloads() {
		if a.Info().Category == "flush_flush" || a.Info().Category == "calibration_ff" {
			continue
		}
		base = append(base, a)
	}
	opts := DefaultOptions()
	opts.MaxInsts = 100_000
	opts.Runs = 1
	det, err := Train(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	updated, err := det.Update(base, []Workload{AttackByName("flush+flush", "")}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if updated.Interval != det.Interval || updated.Threshold != det.Threshold {
		t.Fatalf("update changed deployment configuration")
	}
	rep, err := updated.Monitor(AttackByName("flush+flush", ""), 80_000, 17)
	if err != nil {
		t.Fatal(err)
	}
	flagged := 0
	for _, s := range rep.Samples {
		if s.Flagged {
			flagged++
		}
	}
	if flagged < len(rep.Samples)*3/4 {
		t.Fatalf("patched detector flags only %d/%d flush+flush samples",
			flagged, len(rep.Samples))
	}
}

func TestZeroDayBeyondPaper(t *testing.T) {
	// SpectreV4 and RowHammer are in neither the paper's corpus nor ours;
	// the detector trained on the standard corpus must still flag both
	// from their shared microarchitectural footprints (order violations +
	// squashes + channel for V4; flush storms + DRAM activations for
	// RowHammer — the paper's footnote-5 prediction).
	det := sharedDetector(t)
	for _, name := range []string{"spectreV4", "rowhammer"} {
		rep, err := det.Monitor(AttackByName(name, "fr"), 80_000, 23)
		if err != nil {
			t.Fatal(err)
		}
		flagged := 0
		for _, s := range rep.Samples {
			if s.Flagged {
				flagged++
			}
		}
		if flagged < len(rep.Samples)/2 {
			t.Errorf("zero-day %s flagged only %d/%d samples", name, flagged, len(rep.Samples))
		}
	}
}
