package perspectron

// Continual training: grow a trained detector with fresh samples instead of
// refitting from scratch. Update (perspectron.go) reruns the whole pipeline
// — collection, feature selection, a full fit — which is the right tool for
// a vendor patch but far too heavy for a background shadow trainer running
// every few seconds. TrainIncrement keeps the detector's feature selection
// and normalization frozen, encodes the fresh corpus into that frozen
// space, and resumes the perceptron from the checkpoint's serialized
// optimizer state (Lineage.Trainer), so each round costs only its epoch
// budget and the resulting weights are exactly what an uninterrupted longer
// fit over the same sample schedule would have produced.

import (
	"fmt"
	"math"

	"perspectron/internal/corpus"
	"perspectron/internal/encoding"
	"perspectron/internal/perceptron"
	"perspectron/internal/telemetry"
	"perspectron/internal/trace"
)

// DefaultIncrementEpochs is the per-round epoch budget when the caller
// passes none — small enough to interleave with serving, large enough to
// absorb a fresh batch.
const DefaultIncrementEpochs = 50

// IncrementStats describes one TrainIncrement round.
type IncrementStats struct {
	// Samples is the fresh-corpus size trained on this round.
	Samples int
	// Epochs is the number of epochs this round ran (≤ budget).
	Epochs int
	// Converged reports whether the fit converged within the budget.
	Converged bool
	// FiringRates is the per-feature firing rate over the fresh rows — the
	// observed feature distribution this round.
	FiringRates []float64
	// Drift is the mean absolute difference between FiringRates and the
	// lineage's training-time snapshot, in [0, 1]; 0 when the parent
	// checkpoint carries no snapshot.
	Drift float64
}

// TrainIncrement returns a new detector trained incrementally from d on
// fresh samples collected from workloads: same feature selection, same
// normalization maxima, same threshold and interval — only the weights move,
// resumed from the checkpoint's optimizer state so training continues rather
// than restarts. The child's lineage records d as parent; d itself is not
// modified. budget ≤ 0 uses DefaultIncrementEpochs.
//
// Callers vary opts.Seed per round so successive increments train on fresh
// data; collection goes through the process-wide corpus store either way.
func (d *Detector) TrainIncrement(workloads []Workload, opts Options, budget int) (*Detector, IncrementStats, error) {
	var stats IncrementStats
	if len(workloads) == 0 {
		return nil, stats, fmt.Errorf("perspectron: no incremental workloads")
	}
	if budget <= 0 {
		budget = DefaultIncrementEpochs
	}
	opts.Interval = d.Interval
	ds := corpus.Default().Dataset(workloads, opts.CollectConfig())
	b, m := ds.ClassCounts()
	if b == 0 || m == 0 {
		return nil, stats, fmt.Errorf("perspectron: incremental corpus needs both classes (benign=%d malicious=%d)", b, m)
	}

	// Encode the fresh samples into the detector's frozen feature space:
	// selected names mapped onto the dataset's positions (missing counters
	// masked), binarized against the embedded training-time maxima.
	pos := make(map[string]int, len(ds.FeatureNames))
	for j, name := range ds.FeatureNames {
		pos[name] = j
	}
	nf := len(d.FeatureNames)
	idx := make([]int, nf)
	for i, name := range d.FeatureNames {
		if p, ok := pos[name]; ok {
			idx[i] = p
		} else {
			idx[i] = -1
		}
	}
	enc := d.encoding()
	rows := make([]encoding.BitVec, 0, len(ds.Samples))
	y := make([]float64, 0, len(ds.Samples))
	for i := range ds.Samples {
		s := &ds.Samples[i]
		bits, _ := enc.BitsPacked(s.Raw, idx, s.Index, nil)
		rows = append(rows, bits)
		y = append(y, trace.LabelValue(s.Label))
	}
	stats.Samples = len(rows)
	stats.FiringRates = firingRates(rows, nf)
	if d.Lineage != nil && len(d.Lineage.FeatureMeans) == nf {
		stats.Drift = meanAbsDiff(stats.FiringRates, d.Lineage.FeatureMeans)
	}

	// Resume the optimizer. The perceptron is rebuilt with the original
	// training config (the trainer state's seed wins inside resumeOrNew),
	// its weights copied so d stays untouched.
	pcfg := perceptron.DefaultConfig()
	pcfg.Threshold = d.Threshold
	pcfg.Seed = opts.Seed
	perc := perceptron.New(nf, pcfg)
	perc.W = append([]float64(nil), d.Weights...)
	perc.Bias = d.Bias
	var st perceptron.TrainerState
	prevSamples, prevEpochs, generation := 0, 0, 0
	if d.Lineage != nil {
		prevSamples = d.Lineage.TrainedSamples
		generation = d.Lineage.Generation
		if d.Lineage.Trainer != nil {
			st = d.Lineage.Trainer.Clone()
			prevEpochs = st.Epochs
		}
	}
	newSt, err := perc.FitIncrementalPacked(st, rows, y, budget)
	if err != nil {
		return nil, stats, fmt.Errorf("perspectron: resuming training: %w", err)
	}
	stats.Epochs = newSt.Epochs - prevEpochs
	stats.Converged = newSt.Converged

	child := &Detector{
		FeatureNames: d.FeatureNames,
		Weights:      perc.W,
		Bias:         perc.Bias,
		Threshold:    d.Threshold,
		Interval:     d.Interval,
		GlobalMax:    d.GlobalMax,
		PointMax:     d.PointMax,
		Lineage: &Lineage{
			Parent:         d.Checksum,
			Generation:     generation + 1,
			TrainedSamples: prevSamples + len(rows),
			Trainer:        &newSt,
			FeatureMeans:   blendMeans(d.Lineage, stats.FiringRates, prevSamples, len(rows)),
		},
	}
	if reg := telemetry.Get(); reg != nil {
		reg.Counter("perspectron_train_increments_total").Inc()
		reg.Event("train.increment", map[string]any{
			"parent":     d.Version(),
			"generation": child.Lineage.Generation,
			"samples":    stats.Samples,
			"epochs":     stats.Epochs,
			"drift":      stats.Drift,
		})
	}
	return child, stats, nil
}

// blendMeans folds the fresh firing rates into the lineage's snapshot,
// weighted by cumulative sample counts, so the baseline tracks everything
// the weights have seen rather than only the first or latest batch.
func blendMeans(parent *Lineage, fresh []float64, prevSamples, freshSamples int) []float64 {
	if parent == nil || len(parent.FeatureMeans) != len(fresh) || prevSamples <= 0 {
		return append([]float64(nil), fresh...)
	}
	total := float64(prevSamples + freshSamples)
	out := make([]float64, len(fresh))
	for j := range fresh {
		out[j] = (parent.FeatureMeans[j]*float64(prevSamples) + fresh[j]*float64(freshSamples)) / total
	}
	return out
}

// meanAbsDiff returns the mean absolute per-feature difference of two
// equal-length rate vectors.
func meanAbsDiff(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	sum := 0.0
	for j := range a {
		sum += math.Abs(a[j] - b[j])
	}
	return sum / float64(len(a))
}
