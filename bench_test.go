// Benchmarks regenerating each of the paper's tables and figures (see the
// per-experiment index in DESIGN.md), micro-benchmarks of the simulator and
// detector datapath, and the ablation benchmarks for the design choices
// DESIGN.md calls out. Accuracy-style results are attached to each benchmark
// via ReportMetric, so `go test -bench . -benchmem` doubles as a compact
// reproduction run.
package perspectron_test

import (
	"math/rand"
	"sync"
	"testing"

	"perspectron"
	"perspectron/internal/encoding"
	"perspectron/internal/eval"
	"perspectron/internal/experiments"
	"perspectron/internal/features"
	"perspectron/internal/isa"
	"perspectron/internal/perceptron"
	"perspectron/internal/sim"
	"perspectron/internal/stats"
	"perspectron/internal/telemetry"
	"perspectron/internal/trace"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

// ---- shared fixtures -------------------------------------------------------

var (
	prepOnce sync.Once
	prepped  *experiments.Prepared
)

func benchPrep() *experiments.Prepared {
	prepOnce.Do(func() { prepped = experiments.Prepare(experiments.QuickConfig()) })
	return prepped
}

// ---- per-table / per-figure benchmarks --------------------------------------

func BenchmarkFig1InformationHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(experiments.QuickConfig())
		if !r.DistinctSignatures() {
			b.Fatal("signatures not distinct")
		}
	}
}

func BenchmarkTable1FeatureGroups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(experiments.QuickConfig())
		b.ReportMetric(float64(r.TotalGroups), "groups")
	}
}

func BenchmarkTable3HoldoutCV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(experiments.QuickConfig())
		b.ReportMetric(r.MeanAccuracy, "accuracy")
		b.ReportMetric(r.CacheOutTP, "cacheout-TP")
		b.ReportMetric(r.SpectreV2TP, "spectrev2-TP")
	}
}

func BenchmarkFig5ROC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(experiments.QuickConfig())
		b.ReportMetric(r.Best().AUC, "best-AUC")
	}
}

func BenchmarkTable4ModelComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table4(experiments.QuickConfig())
		ps := r.Row("PerSpectron", "PerSpectron")
		lr := r.Row("LogisticRegression", "MAP")
		b.ReportMetric(ps.MeanAccuracy, "perspectron-acc")
		b.ReportMetric(lr.MeanAccuracy, "logreg-map-acc")
	}
}

func BenchmarkFig3Polymorphic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(experiments.QuickConfig())
		detected := 0
		for _, s := range r.Series {
			if s.Detected {
				detected++
			}
		}
		b.ReportMetric(float64(detected), "detected-of-12")
	}
}

func BenchmarkFig4Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(experiments.QuickConfig())
		detected := 0
		for _, s := range r.Series {
			if s.Detected {
				detected++
			}
		}
		b.ReportMetric(float64(detected), "detected-of-4")
	}
}

func BenchmarkMultiwayClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Multiway(experiments.QuickConfig())
		b.ReportMetric(r.MacroF1, "macro-F1")
	}
}

func BenchmarkMitigations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Mitigate(experiments.QuickConfig())
		b.ReportMetric(r.FenceSpecLoadsBlocked, "spec-loads-blocked")
		b.ReportMetric(r.FenceBenignOverhead, "fence-overhead")
	}
}

func BenchmarkRHMDEvasion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RHMD(experiments.QuickConfig())
		b.ReportMetric(r.CaughtByEnsemble, "evasion-caught")
	}
}

// ---- simulator micro-benchmarks ---------------------------------------------

func BenchmarkSimulatorBenign(b *testing.B) {
	prog := benign.Gcc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := sim.NewMachine(sim.DefaultConfig())
		m.Run(prog.Stream(rand.New(rand.NewSource(1))), 100_000, 10_000)
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "insts/s")
}

func BenchmarkSimulatorAttack(b *testing.B) {
	prog := attacks.SpectreV1("fr")
	for i := 0; i < b.N; i++ {
		m := sim.NewMachine(sim.DefaultConfig())
		m.Run(prog.Stream(rand.New(rand.NewSource(1))), 100_000, 10_000)
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "insts/s")
}

func BenchmarkPerceptronInference(b *testing.B) {
	p := perceptron.New(106, perceptron.DefaultConfig())
	r := rand.New(rand.NewSource(1))
	for j := range p.W {
		p.W[j] = r.Float64()*2 - 1
	}
	x := make([]float64, 106)
	for j := range x {
		x[j] = float64(r.Intn(2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Score(x)
	}
}

func BenchmarkQuantizedInference(b *testing.B) {
	p := perceptron.New(106, perceptron.DefaultConfig())
	r := rand.New(rand.NewSource(1))
	for j := range p.W {
		p.W[j] = r.Float64()*2 - 1
	}
	q := p.Quantized()
	x := make([]float64, 106)
	for j := range x {
		x[j] = float64(r.Intn(2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Score(x)
	}
}

func BenchmarkFeatureSelection(b *testing.B) {
	p := benchPrep()
	X, y := p.Enc.Matrix(p.DS)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := features.Select(X, y, p.DS.Components, features.DefaultSelectConfig())
		if len(sel.Indices) != 106 {
			b.Fatalf("selected %d", len(sel.Indices))
		}
	}
}

func BenchmarkPerceptronTraining(b *testing.B) {
	p := benchPrep()
	X, y := p.Enc.BinaryMatrix(p.DS)
	Xp := trace.Project(X, p.Sel.Indices)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := perceptron.New(len(p.Sel.Indices), perceptron.DefaultConfig())
		det.Fit(Xp, y)
	}
}

// ---- hot-path kernel benchmarks (BENCH_hotpath.json) ------------------------
//
// Each benchmark pairs the historical serial/dense implementation against the
// bit-packed and/or parallel kernel on the same inputs, so the JSON artifact
// `make bench` writes records the measured speedup next to the baseline.

// BenchmarkSelect compares feature selection with the pair sweep pinned to
// one worker and the popcount kernels disabled (the seed implementation)
// against the parallel popcount path.
func BenchmarkSelect(b *testing.B) {
	p := benchPrep()
	X, y := p.Enc.Matrix(p.DS)
	run := func(workers int, dense bool) func(*testing.B) {
		return func(b *testing.B) {
			features.SetWorkers(workers)
			features.SetForceDense(dense)
			defer func() { features.SetWorkers(0); features.SetForceDense(false) }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sel := features.Select(X, y, p.DS.Components, features.DefaultSelectConfig())
				if len(sel.Indices) == 0 {
					b.Fatal("empty selection")
				}
			}
		}
	}
	b.Run("serial-dense", run(1, true))
	b.Run("parallel-packed", run(0, false))
}

// BenchmarkFit compares perceptron training over dense float rows against
// the bit-packed fit (identical weights, set-bit iteration only).
func BenchmarkFit(b *testing.B) {
	p := benchPrep()
	Xd, y := p.Enc.BinaryMatrix(p.DS)
	Xdense := trace.Project(Xd, p.Sel.Indices)
	Xb, _ := p.Enc.PackedBinaryMatrix(p.DS)
	Xpacked := trace.ProjectPacked(Xb, p.Sel.Indices)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			det := perceptron.New(len(p.Sel.Indices), perceptron.DefaultConfig())
			det.Fit(Xdense, y)
		}
	})
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			det := perceptron.New(len(p.Sel.Indices), perceptron.DefaultConfig())
			det.FitPacked(Xpacked, y)
		}
	})
}

// BenchmarkCrossValidate compares the serial fold loop against concurrent
// folds (CVConfig.Parallel); results are identical, only wall-clock differs.
func BenchmarkCrossValidate(b *testing.B) {
	p := benchPrep()
	run := func(parallel bool) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := eval.CrossValidate(p.DS, func() eval.ScoredClassifier {
					return perceptron.New(len(p.Sel.Indices), perceptron.DefaultConfig())
				}, eval.CVConfig{
					Folds:      eval.TableIIIFolds(),
					FeatureIdx: p.Sel.Indices,
					Binary:     true,
					Threshold:  0.25,
					Parallel:   parallel,
				})
				b.ReportMetric(res.MeanAccuracy, "accuracy")
			}
		}
	}
	b.Run("serial", run(false))
	b.Run("parallel", run(true))
}

func BenchmarkEndToEndMonitor(b *testing.B) {
	opts := perspectron.DefaultOptions()
	opts.MaxInsts = 100_000
	opts.Runs = 1
	det, err := perspectron.Train(perspectron.TrainingWorkloads(), opts)
	if err != nil {
		b.Fatal(err)
	}
	attack := perspectron.AttackByName("flush+reload", "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := det.Monitor(attack, 50_000, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Detected {
			b.Fatal("missed")
		}
	}
}

// BenchmarkMonitorTelemetryOverhead pins the nil-registry fast path on the
// online serving loop: Detector.Monitor with telemetry disabled must run at
// its uninstrumented cost (the acceptance bound is ≤2% vs the seed), and the
// enabled sub-benchmark quantifies what full instrumentation adds.
func BenchmarkMonitorTelemetryOverhead(b *testing.B) {
	telemetry.Disable()
	opts := perspectron.DefaultOptions()
	opts.MaxInsts = 100_000
	opts.Runs = 1
	det, err := perspectron.Train(perspectron.TrainingWorkloads(), opts)
	if err != nil {
		b.Fatal(err)
	}
	attack := perspectron.AttackByName("flush+reload", "")
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := det.Monitor(attack, 50_000, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if !rep.Detected {
				b.Fatal("missed")
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		telemetry.Disable()
		run(b)
	})
	b.Run("enabled", func(b *testing.B) {
		telemetry.Enable()
		defer telemetry.Disable()
		run(b)
	})
}

// ---- ablation benchmarks (design choices from DESIGN.md §5) -----------------

// ablationCV runs the Table III CV with the given encoding/feature choices
// and reports the mean accuracy.
func ablationCV(b *testing.B, idx []int, binary bool, mk func(n int) eval.ScoredClassifier) {
	p := benchPrep()
	n := len(idx)
	if idx == nil {
		n = p.DS.NumFeatures()
	}
	for i := 0; i < b.N; i++ {
		res := eval.CrossValidate(p.DS, func() eval.ScoredClassifier { return mk(n) },
			eval.CVConfig{
				Folds:      eval.TableIIIFolds(),
				FeatureIdx: idx,
				Binary:     binary,
				Threshold:  0.25,
			})
		b.ReportMetric(res.MeanAccuracy, "accuracy")
	}
}

func newPerceptron(n int) eval.ScoredClassifier {
	return perceptron.New(n, perceptron.DefaultConfig())
}

// BenchmarkAblationBinarization compares the paper's k-sparse binarized
// inputs against raw scaled inputs on the same 106 features.
func BenchmarkAblationBinarization(b *testing.B) {
	p := benchPrep()
	b.Run("binary", func(b *testing.B) { ablationCV(b, p.Sel.Indices, true, newPerceptron) })
	b.Run("scaled", func(b *testing.B) { ablationCV(b, p.Sel.Indices, false, newPerceptron) })
}

// BenchmarkAblationReplication compares the cross-component replicated
// selection against a commit-stage-only feature set of the same size.
func BenchmarkAblationReplication(b *testing.B) {
	p := benchPrep()
	var commitOnly []int
	for j, c := range p.DS.Components {
		if c == stats.CompCommit && len(commitOnly) < len(p.Sel.Indices) {
			commitOnly = append(commitOnly, j)
		}
	}
	b.Run("replicated", func(b *testing.B) { ablationCV(b, p.Sel.Indices, true, newPerceptron) })
	b.Run("commit-only", func(b *testing.B) { ablationCV(b, commitOnly, true, newPerceptron) })
	b.Run("replicated-bank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := eval.CrossValidate(p.DS, func() eval.ScoredClassifier {
				return perceptron.NewReplicatedBank(
					seqIndices(len(p.Sel.Indices)),
					projectComponents(p.DS.Components, p.Sel.Indices),
					perceptron.DefaultConfig())
			}, eval.CVConfig{
				Folds:      eval.TableIIIFolds(),
				FeatureIdx: p.Sel.Indices,
				Binary:     true,
				Threshold:  0.25,
			})
			b.ReportMetric(res.MeanAccuracy, "accuracy")
		}
	})
}

func seqIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func projectComponents(comps []stats.Component, idx []int) []stats.Component {
	out := make([]stats.Component, len(idx))
	for i, j := range idx {
		out[i] = comps[j]
	}
	return out
}

// BenchmarkAblationSelection compares the paper's greedy per-component
// selection against a naive global top-106 by mutual information.
func BenchmarkAblationSelection(b *testing.B) {
	p := benchPrep()
	X, y := p.Enc.Matrix(p.DS)
	mi := features.MutualInformation(X, y)
	top := topK(mi, len(p.Sel.Indices))
	b.Run("per-component-greedy", func(b *testing.B) { ablationCV(b, p.Sel.Indices, true, newPerceptron) })
	b.Run("global-top-mi", func(b *testing.B) { ablationCV(b, top, true, newPerceptron) })
}

func topK(vals []float64, k int) []int {
	idx := seqIndices(len(vals))
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if vals[idx[j]] > vals[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// BenchmarkAblationMargin compares θ-style margin training (see DESIGN.md
// §6) against the classic error-driven perceptron rule.
func BenchmarkAblationMargin(b *testing.B) {
	p := benchPrep()
	withMargin := func(m float64) func(n int) eval.ScoredClassifier {
		return func(n int) eval.ScoredClassifier {
			cfg := perceptron.DefaultConfig()
			cfg.Margin = m
			return perceptron.New(n, cfg)
		}
	}
	b.Run("margin-0.3", func(b *testing.B) { ablationCV(b, p.Sel.Indices, true, withMargin(0.3)) })
	b.Run("no-margin", func(b *testing.B) { ablationCV(b, p.Sel.Indices, true, withMargin(0)) })
}

// BenchmarkAblationNormalization compares per-execution-point maxima (the
// paper's matrix M) against corpus-global per-counter maxima.
func BenchmarkAblationNormalization(b *testing.B) {
	p := benchPrep()
	b.Run("per-point", func(b *testing.B) { ablationCV(b, p.Sel.Indices, true, newPerceptron) })
	b.Run("global-max", func(b *testing.B) {
		encoding.GlobalOnly = true
		defer func() { encoding.GlobalOnly = false }()
		ablationCV(b, p.Sel.Indices, true, newPerceptron)
	})
}

// BenchmarkSerialAdderScaling reports the hardware model's inference cycle
// count as the feature budget grows (the §IV-F latency argument).
func BenchmarkSerialAdderScaling(b *testing.B) {
	for _, n := range []int{53, 106, 212, 424} {
		h := perceptron.DefaultHardwareModel()
		h.NumFeatures = n
		b.Run(itob(n), func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				cycles = h.InferenceCycles()
			}
			b.ReportMetric(float64(cycles), "cycles")
			b.ReportMetric(h.InferenceTimeNs(), "ns")
		})
	}
}

func itob(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}

// BenchmarkPipelineStep measures the raw pipeline step rate on plain ops.
func BenchmarkPipelineStep(b *testing.B) {
	m := sim.NewMachine(sim.DefaultConfig())
	ops := make([]isa.Op, 0, 1024)
	for i := 0; i < 1024; i++ {
		ops = append(ops, isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu,
			PC: 0x400000 + uint64(i)*4})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i%len(ops)]
		m.Pipe.Step(&op)
	}
}

func BenchmarkSchedMultiprogramming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Sched(experiments.QuickConfig())
		b.ReportMetric(r.AttackerTPR, "attacker-TPR")
		b.ReportMetric(r.BenignFPR, "benign-FPR")
	}
}

func BenchmarkZeroDayGeneralization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ZeroDay(experiments.QuickConfig())
		detected := 0
		for _, d := range r.Detected {
			if d {
				detected++
			}
		}
		b.ReportMetric(float64(detected), "detected-of-3")
	}
}
