package perspectron

// Degraded-mode serving for the multi-way classifier, mirroring the detector
// coverage in faults_test.go: fault-masked (NaN/Inf) counter values are
// skipped and each class margin is renormalized over the surviving weights.
// Before the shared-encoding refactor the classifier had no masking at all —
// a saturated counter (+Inf) always fired its bit and NaN poisoned nothing
// visibly but corrupted no score only by luck of the >= comparison.

import (
	"math"
	"testing"
)

// maskedClassifier returns a fixed synthetic classifier for unit-level
// scoring checks.
func maskedClassifier() *Classifier {
	return &Classifier{
		Classes:      []string{"benign", "x"},
		FeatureNames: []string{"a", "b"},
		Weights:      [][]float64{{0.5, -0.5}, {-0.5, 0.5}},
		Biases:       []float64{0, 0},
		GlobalMax:    []float64{10, 10},
		indices:      []int{0, 1},
	}
}

func TestClassifierFaultMasking(t *testing.T) {
	c := maskedClassifier()

	// Baseline: both counters healthy, both bits fire.
	full, avail := c.classScores([]float64{9, 9})
	if avail != 2 {
		t.Fatalf("healthy avail = %d, want 2", avail)
	}

	// A saturated counter (+Inf, the fault sentinel) must be masked, not
	// fired: the score equals the one-feature run, not the two-feature one.
	masked, avail := c.classScores([]float64{9, math.Inf(1)})
	if avail != 1 {
		t.Fatalf("Inf avail = %d, want 1 (masked)", avail)
	}
	oneBit, _ := c.classScores([]float64{9, 0})
	for ci := range c.Classes {
		if masked[ci] != oneBit[ci] {
			t.Errorf("class %s: Inf-masked score %v != one-feature score %v",
				c.Classes[ci], masked[ci], oneBit[ci])
		}
		if masked[ci] == full[ci] {
			t.Errorf("class %s: Inf-masked score %v indistinguishable from full score",
				c.Classes[ci], masked[ci])
		}
	}

	// NaN likewise.
	if _, avail := c.classScores([]float64{math.NaN(), 9}); avail != 1 {
		t.Fatalf("NaN avail = %d, want 1 (masked)", avail)
	}

	// Renormalization: with one surviving weight of magnitude 0.5 the margin
	// must still span the full [-1, 1] confidence range — only bit 0 fires,
	// which carries +0.5 for "benign" and -0.5 for "x".
	if masked[0] != 1 || masked[1] != -1 {
		t.Errorf("renormalized margins = %v, want [1 -1]", masked)
	}
}

func TestClassifyCleanRunNotDegraded(t *testing.T) {
	c := sharedClassifier(t)
	res, err := c.Classify(BenignWorkloads()[0], 60_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("clean run marked degraded (coverage %v)", res.Coverage)
	}
	if res.Coverage != 1 {
		t.Fatalf("clean run coverage = %v, want 1", res.Coverage)
	}
}

// TestClassifierDropoutDegraded is the classifier analogue of the detector's
// TestDropoutAcceptance: with 20% random counter dropout the classifier must
// keep voting, report degraded mode, and reflect the loss in Coverage.
func TestClassifierDropoutDegraded(t *testing.T) {
	c := sharedClassifier(t)
	fc := FaultConfig{Seed: 99, Dropout: 0.2}
	res, err := c.ClassifyFaulty(AttackByName("flush+reload", ""), 80_000, 5, fc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class == "" || len(res.Votes) == 0 {
		t.Fatalf("degraded classify produced no verdict: %+v", res)
	}
	if !res.Degraded {
		t.Errorf("dropout not reflected in Degraded")
	}
	if res.Coverage < 0.7 || res.Coverage > 0.9 {
		t.Errorf("coverage %.3f, want ~0.8 under 20%% dropout", res.Coverage)
	}

	clean, err := c.ClassifyFaulty(AttackByName("flush+reload", ""), 80_000, 5, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded {
		t.Errorf("empty FaultConfig degraded the run")
	}
}

// TestClassifierBlackoutDegraded covers the scheduled-window fault class: a
// component blackout masks every counter the component owns, so the
// classifier must run degraded for the blacked-out samples and a full-run
// blackout must cost more coverage than a bounded window.
func TestClassifierBlackoutDegraded(t *testing.T) {
	c := sharedClassifier(t)
	if _, err := c.ClassifyFaulty(AttackByName("flush+reload", ""), 40_000, 3,
		FaultConfig{Blackout: "no-such-component"}); err == nil {
		t.Fatalf("unknown blackout component accepted")
	}

	full, err := c.ClassifyFaulty(AttackByName("flush+reload", ""), 80_000, 3,
		FaultConfig{Seed: 5, Blackout: "dcache"})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Degraded || full.Coverage >= 1 || full.Coverage <= 0 {
		t.Fatalf("full-run dcache blackout not reflected: degraded=%v coverage=%.3f",
			full.Degraded, full.Coverage)
	}
	if full.Class == "" || len(full.Votes) == 0 {
		t.Fatalf("blacked-out classify produced no verdict: %+v", full)
	}

	// Samples [2, 4) only: still degraded, but strictly more coverage than
	// losing the component for the whole run.
	windowed, err := c.ClassifyFaulty(AttackByName("flush+reload", ""), 80_000, 3,
		FaultConfig{Seed: 5, Blackout: "dcache", BlackoutFrom: 2, BlackoutTo: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !windowed.Degraded {
		t.Errorf("windowed blackout not marked degraded")
	}
	if windowed.Coverage <= full.Coverage {
		t.Errorf("windowed blackout coverage %.3f <= full-run %.3f",
			windowed.Coverage, full.Coverage)
	}
}

// TestClassifierStuckAtKeepsFullCoverage pins counters to plausible-but-wrong
// finite values (dead-at-zero and saturated sensors). Unlike dropout or
// blackout there is no sentinel to mask, so the classifier must NOT report
// degraded mode — the corruption is silent — while still producing a
// verdict from the distorted vectors.
func TestClassifierStuckAtKeepsFullCoverage(t *testing.T) {
	c := sharedClassifier(t)
	for _, tc := range []struct {
		name string
		fc   FaultConfig
	}{
		{"stuck-at-zero", FaultConfig{Seed: 11, StuckZero: 0.3}},
		{"stuck-at-max", FaultConfig{Seed: 11, StuckMax: 0.3}},
		{"both", FaultConfig{Seed: 11, StuckZero: 0.2, StuckMax: 0.2}},
	} {
		res, err := c.ClassifyFaulty(AttackByName("flush+reload", ""), 80_000, 5, tc.fc)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Class == "" || len(res.Votes) == 0 {
			t.Fatalf("%s: no verdict under stuck-at faults: %+v", tc.name, res)
		}
		if res.Degraded || res.Coverage != 1 {
			t.Errorf("%s: finite stuck-at values were masked: degraded=%v coverage=%.3f",
				tc.name, res.Degraded, res.Coverage)
		}
	}
}
