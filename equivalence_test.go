package perspectron

// Equivalence pins: golden values captured from the pre-refactor scoring and
// encoding implementations (the three divergent normalize/binarize copies),
// asserted against the unified internal/encoding path. Any drift in the
// shared Scale/Binarize/Margin math — or in deterministic trace collection —
// fails these tests bit-for-bit.
//
// The classifier goldens use finite and NaN inputs only: +Inf handling is
// the one deliberate behaviour change of the refactor (the old classifier
// fired a bit on +Inf; it now masks it like the detector — see
// TestClassifierFaultMasking).

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"perspectron/internal/perceptron"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

// hashMatrix fingerprints a float64 matrix by its exact bit patterns
// (little-endian IEEE-754 through fnv64a), so equality means bit-identity.
func hashMatrix(X [][]float64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, row := range X {
		for _, v := range row {
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				b[i] = byte(bits >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func TestDetectorScoreEquivalence(t *testing.T) {
	det := &Detector{
		FeatureNames: []string{"a", "b", "c", "d"},
		Weights:      []float64{0.8, -0.5, 0.3, 1.1},
		Bias:         -0.2,
		Threshold:    0.25,
		Interval:     10_000,
		GlobalMax:    []float64{10, 5, 0, 8},
		PointMax: [][]float64{
			{10, 4, 0, 0},
			{2, 5, 1, 8},
		},
		indices: []int{0, 2, 3, 5},
	}
	raws := [][]float64{
		{9, 1, 1, 0, 7, 4},
		{1, 0, 4.9, 9, 0, 4.0},
		{0, 0, math.NaN(), 2, 1, math.Inf(1)},
		{5, 2, 2.5, 0.5, 3, 7.9},
	}
	// golden[point+1][raw] captured from the pre-refactor scoreSample:
	// points -1 and >=len(PointMax) fall back to the global maxima, so rows
	// 0 (point -1) and 3 (point 2) equal row 1 (point 0)'s globals-only case.
	goldenScore := [4][4]float64{
		{0.8095238095238095, 0.2222222222222223, -1, 0.46153846153846156},
		{0.8095238095238095, 0.2222222222222223, -1, 0.46153846153846156},
		{0.8095238095238095, 0.5172413793103449, 0.19999999999999996, 0.5172413793103449},
		{0.8095238095238095, 0.2222222222222223, -1, 0.46153846153846156},
	}
	goldenAvail := [4][4]int{
		{4, 4, 2, 4},
		{4, 4, 2, 4},
		{4, 4, 2, 4},
		{4, 4, 2, 4},
	}
	for pi := -1; pi < 3; pi++ {
		for ri, raw := range raws {
			score, avail := det.scoreSample(raw, pi)
			if score != goldenScore[pi+1][ri] || avail != goldenAvail[pi+1][ri] {
				t.Errorf("scoreSample(raw %d, point %d) = (%v, %d), golden (%v, %d)",
					ri, pi, score, avail, goldenScore[pi+1][ri], goldenAvail[pi+1][ri])
			}
		}
	}
}

func TestClassifierScoreEquivalence(t *testing.T) {
	c := &Classifier{
		Classes:      []string{"benign", "x", "y"},
		FeatureNames: []string{"a", "b", "c"},
		Weights:      [][]float64{{0.5, -0.2, 0.1}, {-0.4, 0.9, 0.2}, {0.3, 0.3, -0.6}},
		Biases:       []float64{0.1, -0.3, 0.05},
		GlobalMax:    []float64{10, 0, 4},
		indices:      []int{0, 1, 2},
	}
	craws := [][]float64{
		{9, 1, 2},
		{4, 0, 3.9},
		{0, 5, 1},
		{math.NaN(), 1, 3},
	}
	golden := [4][3]float64{
		{1, -0.5555555555555556, -0.2631578947368421},
		{1, -0.19999999999999996, -0.846153846153846},
		{1, -1, 1},
		{1, -0.19999999999999996, -0.846153846153846},
	}
	for ri, raw := range craws {
		scores, _ := c.classScores(raw)
		for ci, s := range scores {
			if s != golden[ri][ci] {
				t.Errorf("classScores(raw %d)[%s] = %v, golden %v",
					ri, c.Classes[ci], s, golden[ri][ci])
			}
		}
	}
}

// TestEncoderEquivalence pins the full collect→encode pipeline: a tiny
// two-program corpus must scale and binarize to the exact matrices the
// pre-refactor encoder produced.
func TestEncoderEquivalence(t *testing.T) {
	progs := []workload.Program{benign.Bzip2(), attacks.FlushReload()}
	ds := trace.Collect(progs, trace.CollectConfig{
		MaxInsts: 40_000, Interval: 10_000, Seed: 3, Runs: 1,
	})
	enc := trace.NewEncoder(ds)
	X, y := enc.Matrix(ds)
	Xb, _ := enc.BinaryMatrix(ds)

	if len(ds.Samples) != 8 || ds.NumFeatures() != 786 {
		t.Fatalf("corpus shape = (%d samples, %d features), golden (8, 786)",
			len(ds.Samples), ds.NumFeatures())
	}
	ysum := 0.0
	for _, v := range y {
		ysum += v
	}
	if ysum != 0 {
		t.Errorf("label sum = %v, golden 0 (balanced tiny corpus)", ysum)
	}
	if h := hashMatrix(X); h != "da46b9f110a16c88" {
		t.Errorf("scaled matrix hash = %s, golden da46b9f110a16c88", h)
	}
	if h := hashMatrix(Xb); h != "efc5fc5f28926925" {
		t.Errorf("binary matrix hash = %s, golden efc5fc5f28926925", h)
	}
	ones := 0
	for _, row := range Xb {
		for _, v := range row {
			if v != 0 {
				ones++
			}
		}
	}
	if ones != 2004 {
		t.Errorf("binary ones = %d, golden 2004", ones)
	}
	spot := []float64{0.6962115796997855, 1, 0.6962115796997855, 1, 0.6962115796997855}
	for i, want := range spot {
		if X[0][i] != want {
			t.Errorf("X[0][%d] = %v, golden %v", i, X[0][i], want)
		}
	}

	// The bit-packed encoding must carry the same bits as the golden dense
	// binary matrix, and projecting + training through the packed kernel must
	// reproduce the dense perceptron's weights exactly on the real corpus.
	Xp, yp := enc.PackedBinaryMatrix(ds)
	unpacked := make([][]float64, len(Xp))
	for i, row := range Xp {
		unpacked[i] = row.Unpack(ds.NumFeatures())
	}
	if h := hashMatrix(unpacked); h != "efc5fc5f28926925" {
		t.Errorf("unpacked binary matrix hash = %s, golden efc5fc5f28926925", h)
	}
	for i := range y {
		if yp[i] != y[i] {
			t.Fatalf("packed label %d = %v, dense %v", i, yp[i], y[i])
		}
	}
	idx := make([]int, 0, 64)
	for j := 0; j < 64; j++ {
		idx = append(idx, j*12)
	}
	pcfg := perceptron.DefaultConfig()
	pcfg.Epochs = 60
	pcfg.Seed = 3
	dense := perceptron.New(len(idx), pcfg)
	dense.Fit(trace.Project(Xb, idx), y)
	packed := perceptron.New(len(idx), pcfg)
	packed.FitPacked(trace.ProjectPacked(Xp, idx), yp)
	if dense.Bias != packed.Bias {
		t.Fatalf("packed training bias %v != dense %v", packed.Bias, dense.Bias)
	}
	for j := range dense.W {
		if dense.W[j] != packed.W[j] {
			t.Fatalf("packed training W[%d] = %v, dense %v", j, packed.W[j], dense.W[j])
		}
	}

	// Incremental training replayed from a zero state must be bit-identical
	// to the one-shot batch fit on the same corpus: the 60-epoch budget is
	// spent in 20-epoch legs, each resuming from the serialized optimizer
	// state the previous leg returned — the continual-learning contract the
	// checkpoint lineage (Lineage.Trainer) depends on.
	rowsP := trace.ProjectPacked(Xp, idx)
	inc := perceptron.New(len(idx), pcfg)
	var st perceptron.TrainerState
	legs := 0
	for st.Epochs < 60 && !st.Converged {
		var err error
		st, err = inc.FitIncrementalPacked(st, rowsP, yp, 20)
		if err != nil {
			t.Fatalf("incremental leg %d: %v", legs, err)
		}
		legs++
	}
	if legs == 0 || legs > 3 {
		t.Fatalf("incremental fit took %d legs, want 1..3", legs)
	}
	if inc.Bias != packed.Bias {
		t.Fatalf("incremental bias %v != batch %v", inc.Bias, packed.Bias)
	}
	for j := range inc.W {
		if inc.W[j] != packed.W[j] {
			t.Fatalf("incremental W[%d] = %v, batch %v", j, inc.W[j], packed.W[j])
		}
	}
}
