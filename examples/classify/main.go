// Classify: the paper's multi-way mode (§VII-B) — beyond the binary
// benign/suspicious verdict, a one-vs-rest perceptron bank names the attack
// *category*, so the OS can choose a category-appropriate mitigation
// (fences for Spectre-class, cache re-randomization for Prime+Probe-class).
package main

import (
	"fmt"
	"log"
	"sort"

	"perspectron"
)

func main() {
	opts := perspectron.DefaultOptions()
	opts.MaxInsts = 200_000
	opts.Runs = 1

	fmt.Println("training the multi-way classifier...")
	cls, err := perspectron.TrainClassifier(perspectron.TrainingWorkloads(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classes: %v\n\n", cls.Classes)

	subjects := []perspectron.Workload{
		perspectron.AttackByName("spectreRSB", "fr"),
		perspectron.AttackByName("flush+flush", ""),
		perspectron.AttackByName("prime+probe", ""),
		perspectron.AttackByName("meltdown", "fr"),
		perspectron.BenignWorkloads()[2], // mcf: memory-intensive control
	}
	for _, w := range subjects {
		res, err := cls.Classify(w, 100_000, 17)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s -> %-16s (%.0f%% of intervals)\n",
			res.Workload, res.Class, res.Confidence*100)
		var votes []string
		for class, n := range res.Votes {
			votes = append(votes, fmt.Sprintf("%s:%d", class, n))
		}
		sort.Strings(votes)
		fmt.Printf("                 votes: %v\n", votes)
	}
}
