// Quickstart: train a PerSpectron detector on the built-in workload corpus,
// then monitor one attack and one benign program and print the verdicts.
package main

import (
	"fmt"
	"log"

	"perspectron"
)

func main() {
	// Train on the full corpus (all attacks + SPEC-like benign kernels).
	// Options mirror the paper's best configuration: 10K-instruction
	// sampling, 106 selected features, threshold 0.25.
	opts := perspectron.DefaultOptions()
	opts.MaxInsts = 200_000 // keep the example fast
	opts.Runs = 1

	fmt.Println("training PerSpectron...")
	det, err := perspectron.Train(perspectron.TrainingWorkloads(), opts)
	if err != nil {
		log.Fatal(err)
	}
	h := det.Hardware()
	fmt.Printf("trained: %d features, %d-cycle serial-adder inference, %.2f µs sampling\n\n",
		det.NumFeatures(), h.InferenceCycles(), h.SamplingIntervalUs())

	// Monitor a Spectre attack: the detector should flag it before the
	// first byte leaks.
	attack := perspectron.AttackByName("spectreV1", "fr")
	rep, err := det.Monitor(attack, 100_000, 7)
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)

	// Monitor a benign compression kernel: it must stay quiet.
	var benign perspectron.Workload
	for _, w := range perspectron.BenignWorkloads() {
		if w.Info().Name == "bzip2" {
			benign = w
		}
	}
	rep, err = det.Monitor(benign, 100_000, 7)
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)
}

func printReport(rep *perspectron.Report) {
	fmt.Printf("%s (malicious=%v):\n", rep.Workload, rep.Malicious)
	for _, s := range rep.Samples {
		bar := ""
		n := int((s.Score + 1) * 20)
		for i := 0; i < n; i++ {
			bar += "#"
		}
		flag := ""
		if s.Flagged {
			flag = "  <- flagged"
		}
		fmt.Printf("  %7d insts  %+.3f %-40s%s\n", s.Insts, s.Score, bar, flag)
	}
	if rep.Detected {
		fmt.Printf("  => DETECTED at sample %d\n\n", rep.FirstFlag)
	} else {
		fmt.Printf("  => clean\n\n")
	}
}
