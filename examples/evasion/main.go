// Evasion: reproduce the paper's §VI-A resilience experiments at example
// scale — the 12 polymorphic SpectreV1 source transforms (Fig. 3) and the
// bandwidth-reduction mimicry down to 0.25x (Fig. 4). None of the variants
// appear in training.
package main

import (
	"fmt"
	"log"

	"perspectron"
)

func main() {
	opts := perspectron.DefaultOptions()
	opts.MaxInsts = 200_000
	opts.Runs = 1

	fmt.Println("training on unmodified attacks only...")
	det, err := perspectron.Train(perspectron.TrainingWorkloads(), opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- polymorphic evasion (Fig. 3) --")
	detected := 0
	for _, v := range perspectron.PolymorphicVariants("fr") {
		rep, err := det.Monitor(v, 80_000, 11)
		if err != nil {
			log.Fatal(err)
		}
		status := "EVADED"
		if rep.Detected {
			status = fmt.Sprintf("detected @ sample %d", rep.FirstFlag)
			detected++
		}
		fmt.Printf("  %-36s %s\n", rep.Workload, status)
	}
	fmt.Printf("detected %d/12 variants (paper: 12/12)\n", detected)

	fmt.Println("\n-- bandwidth-reduction evasion (Fig. 4) --")
	base := perspectron.AttackByName("spectreV1", "fr")
	for _, factor := range []float64{1.0, 0.75, 0.5, 0.25} {
		w := perspectron.ReduceBandwidth(base, factor)
		// Slower attacks need a longer observation window for the same
		// number of attack phases.
		rep, err := det.Monitor(w, uint64(120_000/factor), 13)
		if err != nil {
			log.Fatal(err)
		}
		status := "EVADED"
		if rep.Detected {
			when := "post-leak"
			if !rep.LeakBefore {
				when = "pre-leak"
			}
			status = fmt.Sprintf("detected @ sample %d (%s)", rep.FirstFlag, when)
		}
		fmt.Printf("  bandwidth %.2fx: %s\n", factor, status)
	}
}
