// Mitigation: the paper's §IV-G deployment loop, end to end — PerSpectron
// scores every sampling interval online, and an escalating policy drives the
// machine's real hardware mitigations between intervals:
//
//	confidence < 0.25         -> no action
//	0.25 <= confidence < 0.6  -> hold current mitigations (hysteresis)
//	confidence >= 0.6         -> enable context-sensitive fencing + cache
//	                             index re-randomization
//
// On a Spectre attack the fences demonstrably close the channel (the
// speculative loads are blocked in the pipeline, not just flagged); benign
// programs never pay the cost.
package main

import (
	"fmt"
	"log"

	"perspectron"
)

func main() {
	opts := perspectron.DefaultOptions()
	opts.MaxInsts = 200_000
	opts.Runs = 1

	fmt.Println("training...")
	det, err := perspectron.Train(perspectron.TrainingWorkloads(), opts)
	if err != nil {
		log.Fatal(err)
	}

	policy := perspectron.EscalationPolicy(0.25, 0.6,
		perspectron.MitigateFence, perspectron.MitigateRekey)

	workloads := []perspectron.Workload{
		perspectron.AttackByName("spectreV1", "fr"),
		perspectron.AttackByName("prime+probe", ""),
		perspectron.BenignWorkloads()[0], // bzip2 control
	}
	for _, w := range workloads {
		rep, err := det.MonitorWithPolicy(w, 120_000, 21, policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (malicious=%v):\n", rep.Workload, rep.Malicious)
		prev := "none"
		for i, s := range rep.Samples {
			cur := "none"
			if len(rep.ActiveAt[i]) > 0 {
				cur = fmt.Sprint(rep.ActiveAt[i])
			}
			if cur != prev {
				fmt.Printf("  insts %7d  confidence %+.3f  mitigations -> %s\n",
					s.Insts, s.Score, cur)
				prev = cur
			}
		}
		fmt.Printf("  mitigated %d/%d intervals", rep.MitigatedIntervals, len(rep.Samples))
		if rep.SpecLoadsBlocked > 0 {
			fmt.Printf(", %0.f speculative loads blocked by fences", rep.SpecLoadsBlocked)
		}
		if rep.Rekeys > 0 {
			fmt.Printf(", %0.f cache rekeys", rep.Rekeys)
		}
		fmt.Println()
		if rep.Malicious && rep.MitigatedIntervals == 0 {
			fmt.Println("  WARNING: attack never triggered mitigation")
		}
		if !rep.Malicious && rep.MitigatedIntervals > 0 {
			fmt.Println("  WARNING: benign program was mitigated (performance loss)")
		}
	}
}
