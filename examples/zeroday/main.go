// Zeroday: reproduce the paper's §VI-B generalization result at example
// scale — train a detector that has never seen CacheOut or SpectreV2 (the
// paper's stand-ins for newly disclosed attacks) and show it still detects
// them from their shared microarchitectural footprints.
package main

import (
	"fmt"
	"log"

	"perspectron"
)

func main() {
	// Build a training corpus WITHOUT CacheOut and SpectreV2.
	var train []perspectron.Workload
	train = append(train, perspectron.BenignWorkloads()...)
	for _, a := range perspectron.AttackWorkloads() {
		cat := a.Info().Category
		if cat == "cacheout" || cat == "spectre_v2" {
			continue
		}
		train = append(train, a)
	}

	opts := perspectron.DefaultOptions()
	opts.MaxInsts = 200_000
	opts.Runs = 1

	fmt.Printf("training on %d workloads (CacheOut and SpectreV2 held out)...\n", len(train))
	det, err := perspectron.Train(train, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The held-out "zero-day" attacks, on a different channel than any
	// training attack family used, per the paper's channel-pairing stress.
	for _, name := range []string{"cacheOut", "spectreV2"} {
		for _, channel := range []string{"fr", "pp"} {
			w := perspectron.AttackByName(name, channel)
			rep, err := det.Monitor(w, 100_000, 5)
			if err != nil {
				log.Fatal(err)
			}
			flagged := 0
			for _, s := range rep.Samples {
				if s.Flagged {
					flagged++
				}
			}
			fmt.Printf("  %-16s TP rate %d/%d  detected=%v\n",
				rep.Workload, flagged, len(rep.Samples), rep.Detected)
		}
	}
	fmt.Println("(paper: CacheOut 94% TP, SpectreV2 91% TP, both unseen in training)")

	// Beyond the paper: SpectreV4 (speculative store bypass) and RowHammer
	// are in nobody's training corpus — the paper's footnote 5 predicts
	// RowHammer's flush-heavy footprint would be caught; test both.
	fmt.Println("\nattacks outside the paper's corpus entirely:")
	for _, name := range []string{"spectreV4", "rowhammer"} {
		w := perspectron.AttackByName(name, "fr")
		rep, err := det.Monitor(w, 100_000, 5)
		if err != nil {
			log.Fatal(err)
		}
		flagged := 0
		for _, s := range rep.Samples {
			if s.Flagged {
				flagged++
			}
		}
		fmt.Printf("  %-16s TP rate %d/%d  detected=%v\n",
			rep.Workload, flagged, len(rep.Samples), rep.Detected)
	}

	// Control: benign programs stay clean under the same detector.
	clean := true
	for _, w := range perspectron.BenignWorkloads()[:4] {
		rep, err := det.Monitor(w, 80_000, 5)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Detected {
			clean = false
			fmt.Printf("  false positive on %s at sample %d\n", rep.Workload, rep.FirstFlag)
		}
	}
	if clean {
		fmt.Println("  benign control programs: all clean")
	}
}
