package perspectron

import (
	"fmt"
	"math/rand"

	"perspectron/internal/sim"
	"perspectron/internal/workload"
)

// Mitigation identifies one of the §IV-G1 hardware countermeasures wired
// into the simulated machine.
type Mitigation int

const (
	// MitigateNone takes no action.
	MitigateNone Mitigation = iota
	// MitigateFence enables context-sensitive fencing: injected fences
	// block speculative loads (Spectre-class channels) at a per-branch
	// serialization cost.
	MitigateFence
	// MitigateRekey rotates the CEASER-style cache-index key, destroying
	// eviction sets (Prime+Probe-class channels).
	MitigateRekey
	// MitigateBPNoise randomizes branch predictions, making predictor
	// mistraining unreliable.
	MitigateBPNoise
)

// String names the mitigation.
func (m Mitigation) String() string {
	switch m {
	case MitigateFence:
		return "fence"
	case MitigateRekey:
		return "rekey"
	case MitigateBPNoise:
		return "bp-noise"
	}
	return "none"
}

// ServeMode identifies which scoring model a serving worker is using — the
// rungs of the graceful-degradation ladder the long-running service
// (internal/serve) walks as counter coverage drops. The ladder goes
// classifier → detector → threshold: the multi-way classifier needs the
// widest counter space, the binary detector only its 106 selected features,
// and the threshold policy just a sign on whatever margin survives.
type ServeMode int

const (
	// ModeClassifier scores with the multi-way classifier: full counter
	// space, names the attack category for targeted mitigation.
	ModeClassifier ServeMode = iota
	// ModeDetector scores with the binary detector on the selected
	// features — the first degradation rung when classifier coverage
	// drops below its floor.
	ModeDetector
	// ModeThreshold is the last resort: a bare sign test on the
	// renormalized detector margin, usable at any nonzero coverage.
	ModeThreshold
)

// String names the serve mode as it appears in telemetry series and
// /healthz.
func (m ServeMode) String() string {
	switch m {
	case ModeClassifier:
		return "classifier"
	case ModeDetector:
		return "detector"
	case ModeThreshold:
		return "threshold"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Policy decides, per sampling interval, which mitigations to run given the
// detector's confidence score. It is the paper's deployment model: the
// low-level detector raises information; the policy escalates gradually
// rather than killing processes.
type Policy func(score float64, active []Mitigation) []Mitigation

// EscalationPolicy is the default §IV-G policy: below watch, no action;
// between watch and act, keep current mitigations (hysteresis); at or above
// act, enable the given mitigations.
func EscalationPolicy(watch, act float64, response ...Mitigation) Policy {
	return func(score float64, active []Mitigation) []Mitigation {
		switch {
		case score >= act:
			return response
		case score >= watch:
			return active // hold current state
		default:
			return nil
		}
	}
}

// MitigatedReport extends Report with the mitigation timeline.
type MitigatedReport struct {
	Report
	// ActiveAt[i] lists the mitigations enabled after sample i fired.
	ActiveAt [][]Mitigation
	// SpecLoadsBlocked counts speculative loads suppressed by fencing.
	SpecLoadsBlocked float64
	// Rekeys counts cache-index re-randomizations performed.
	Rekeys float64
	// MitigatedIntervals counts intervals with at least one mitigation on.
	MitigatedIntervals int
}

// MonitorWithPolicy runs the workload while the detector scores every
// sampling interval ONLINE and the policy drives the machine's hardware
// mitigations between intervals. This is the end-to-end deployment loop of
// §IV-G: detect with confidence, mitigate proportionally, stand down when
// the signal clears.
func (d *Detector) MonitorWithPolicy(w Workload, maxInsts uint64, seed int64, policy Policy) (*MitigatedReport, error) {
	if policy == nil {
		return nil, fmt.Errorf("perspectron: nil policy")
	}
	m := sim.NewMachine(sim.DefaultConfig())
	if _, err := d.resolve(m); err != nil {
		return nil, err
	}

	info := w.Info()
	rep := &MitigatedReport{}
	rep.Workload = info.Name
	rep.Malicious = info.Label == workload.Malicious
	rep.FirstFlag = -1

	var active []Mitigation
	apply := func(ms []Mitigation) {
		fence, noise := false, 0
		for _, mit := range ms {
			switch mit {
			case MitigateFence:
				fence = true
			case MitigateBPNoise:
				noise = 300
			}
		}
		m.EnableFencing(fence)
		m.InjectBPNoise(noise)
	}

	nf := len(d.FeatureNames)
	coverageSum := 0.0
	m.OnSample = func(idx int, delta []float64) {
		score, avail := d.scoreSample(delta, idx)
		if nf > 0 {
			coverageSum += float64(avail) / float64(nf)
		}
		flagged := score >= d.Threshold
		rep.Samples = append(rep.Samples, SamplePoint{
			Index:   idx,
			Insts:   uint64(idx+1) * d.Interval,
			Score:   score,
			Flagged: flagged,
		})
		if flagged && rep.FirstFlag < 0 {
			rep.FirstFlag = idx
			rep.Detected = true
		}
		next := policy(score, active)
		for _, mit := range next {
			if mit == MitigateRekey {
				m.RekeyCaches(uint64(idx)*0x9e3779b97f4a7c15 + 0xb5)
			}
		}
		active = next
		apply(active)
		rep.ActiveAt = append(rep.ActiveAt, append([]Mitigation(nil), active...))
		if len(active) > 0 {
			rep.MitigatedIntervals++
		}
	}

	stream := w.Stream(rand.New(rand.NewSource(seed)))
	m.Run(stream, maxInsts, d.Interval)

	if c, ok := m.Reg.Lookup("iew.blockedSpecLoads"); ok {
		rep.SpecLoadsBlocked = c.Value()
	}
	if c, ok := m.Reg.Lookup("dcache.rekeys"); ok {
		rep.Rekeys = c.Value()
	}
	if ls, ok := stream.(*workload.LoopStream); ok {
		for _, mark := range ls.LeakMarks() {
			rep.LeakSamples = append(rep.LeakSamples, int(mark/d.Interval))
		}
	}
	rep.Coverage = 1
	if n := len(rep.Samples); n > 0 && nf > 0 {
		rep.Coverage = coverageSum / float64(n)
	}
	rep.Degraded = rep.Coverage < 1-1e-12
	if len(rep.LeakSamples) > 0 {
		rep.LeakBefore = rep.FirstFlag < 0 || rep.LeakSamples[0] < rep.FirstFlag
	}
	return rep, nil
}
