// Package perspectron is the public API of the PerSpectron reproduction: a
// hardware-style perceptron detector for microarchitectural attacks
// (Mirbagher-Ajorpaz et al., MICRO 2020), together with the cycle-accounting
// out-of-order machine simulator, attack and benign workload generators, and
// the feature-selection pipeline the paper describes.
//
// Typical use:
//
//	det, _ := perspectron.Train(perspectron.TrainingWorkloads(), perspectron.DefaultOptions())
//	report := det.Monitor(perspectron.AttackByName("spectreV1", "fr"), 200_000, 1)
//	if report.Detected {
//	    fmt.Printf("flagged at sample %d (%.0f instructions)\n",
//	        report.FirstFlagged, float64(report.FirstFlagged)*float64(det.Interval))
//	}
package perspectron

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"perspectron/internal/corpus"
	"perspectron/internal/encoding"
	"perspectron/internal/faults"
	"perspectron/internal/features"
	"perspectron/internal/perceptron"
	"perspectron/internal/sim"
	"perspectron/internal/telemetry"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

// SetCacheDir enables the on-disk corpus cache for the process-wide
// artifact store: trained-on datasets are persisted under dir and reused
// across invocations (deterministic seeding makes cached and fresh
// collections byte-identical). An empty dir disables the disk cache.
func SetCacheDir(dir string) error { return corpus.Default().SetCacheDir(dir) }

// Workload is a runnable program (attack or benign kernel).
type Workload = workload.Program

// TrainingWorkloads returns the paper's base corpus: every attack with its
// default channel, channel variants for the speculative attacks, and the
// SPEC-like benign kernels.
func TrainingWorkloads() []Workload {
	progs := append([]Workload{}, benign.All()...)
	progs = append(progs, attacks.TrainingSet()...)
	for _, cat := range []string{"spectre_v1", "spectre_v2", "spectre_rsb", "meltdown", "cacheout"} {
		progs = append(progs, attacks.WithChannel(cat, "pp"))
	}
	return progs
}

// BenignWorkloads returns the benign corpus only.
func BenignWorkloads() []Workload { return benign.All() }

// AttackWorkloads returns the attack corpus with default channels.
func AttackWorkloads() []Workload { return attacks.TrainingSet() }

// AttackByName returns a single attack by short name ("spectreV1",
// "spectreV2", "spectreRSB", "meltdown", "breakingKSLR", "cacheOut",
// "flush+reload", "flush+flush", "prime+probe") on the given disclosure
// channel ("fr", "ff", "pp"; ignored for fixed-channel attacks). It returns
// nil for unknown names.
func AttackByName(name, channel string) Workload {
	switch name {
	case "spectreV1":
		return attacks.SpectreV1(channel)
	case "spectreV2":
		return attacks.SpectreV2(channel)
	case "spectreRSB":
		return attacks.SpectreRSB(channel)
	case "meltdown":
		return attacks.Meltdown(channel)
	case "breakingKSLR":
		return attacks.BreakingKASLR()
	case "cacheOut":
		return attacks.CacheOut(channel)
	case "flush+reload":
		return attacks.FlushReload()
	case "flush+flush":
		return attacks.FlushFlush()
	case "prime+probe":
		return attacks.PrimeProbe()
	case "spectreV4":
		// Speculative store bypass: never in the paper's corpus; provided
		// for zero-day generalization experiments.
		return attacks.SpectreV4(channel)
	case "rowhammer":
		// The paper's footnote 5 predicts its detectability but could not
		// simulate it; also excluded from training.
		return attacks.RowHammer()
	}
	return nil
}

// PolymorphicVariants returns the 12 SpectreV1 evasion variants of the
// paper's §VI-A1.
func PolymorphicVariants(channel string) []Workload {
	return attacks.AllPolymorphic(channel)
}

// ReduceBandwidth wraps an attack, reducing its leakage bandwidth to factor
// (§VI-A2), e.g. 0.25 for the paper's lowest-rate evasive Spectre.
func ReduceBandwidth(w Workload, factor float64) Workload {
	return attacks.Bandwidth(w, factor)
}

// Options configures training.
type Options struct {
	// Interval is the sampling granularity in committed instructions
	// (paper: 10K performed best; 50K and 100K are also studied).
	Interval uint64
	// MaxInsts is the committed-path length of each training run.
	MaxInsts uint64
	// Runs is the number of independently seeded runs per workload.
	Runs int
	// MaxFeatures is the selection budget (paper: 106).
	MaxFeatures int
	// Threshold is the detection cut on the normalized perceptron output.
	Threshold float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultOptions mirrors the paper's best configuration at a laptop-scale
// run length.
func DefaultOptions() Options {
	return Options{
		Interval:    10_000,
		MaxInsts:    300_000,
		Runs:        2,
		MaxFeatures: 106,
		Threshold:   0.25,
		Seed:        1,
	}
}

// Detector is a trained PerSpectron instance. It is self-contained: the
// selected feature names, perceptron weights and normalization maxima are
// all embedded, so it can be serialized (Save/Load) like the vendor weight
// patches of the paper's §IV-G1.
type Detector struct {
	// Checksum is the SHA-256 self-checksum Save embeds ("sha256:<hex>",
	// computed over the canonical JSON with this field empty). Load verifies
	// it, so a truncated or bit-flipped checkpoint fails loudly; files
	// written before checksumming existed load with a warning. The first 12
	// hex digits double as the checkpoint's content version for the serving
	// runtime's hot-reload path.
	Checksum string `json:"checksum,omitempty"`

	FeatureNames []string    `json:"feature_names"`
	Weights      []float64   `json:"weights"`
	Bias         float64     `json:"bias"`
	Threshold    float64     `json:"threshold"`
	Interval     uint64      `json:"interval"`
	GlobalMax    []float64   `json:"global_max"`
	PointMax     [][]float64 `json:"point_max"` // [point][selected feature]

	// Lineage is the checkpoint's training provenance — parent checksum,
	// cumulative sample count, serialized optimizer state, the training-time
	// feature-distribution snapshot and the promotion gate's eval scores
	// (see checkpoint.go). Absent on legacy checkpoints; continual training
	// starts a fresh lineage for them.
	Lineage *Lineage `json:"lineage,omitempty"`

	indices []int // resolved counter indices on the current machine
}

// CollectConfig returns the trace-collection configuration the options
// describe — the corpus store's half of the cache fingerprint.
func (o Options) CollectConfig() trace.CollectConfig {
	return trace.CollectConfig{
		MaxInsts: o.MaxInsts,
		Interval: o.Interval,
		Seed:     o.Seed,
		Runs:     o.Runs,
	}
}

// selectConfig returns the feature-selection configuration the options
// describe.
func (o Options) selectConfig() features.SelectConfig {
	cfg := features.DefaultSelectConfig()
	if o.MaxFeatures > 0 {
		cfg.MaxFeatures = o.MaxFeatures
	}
	return cfg
}

// Train collects traces from the given workloads on the simulated machine
// (through the process-wide corpus store, so a corpus already collected
// this invocation — or cached on disk via SetCacheDir — is reused), runs
// the paper's feature-selection algorithm, trains the perceptron on
// k-sparse binary features, and returns the packaged detector.
func Train(workloads []Workload, opts Options) (*Detector, error) {
	ctx, span := telemetry.StartSpan(context.Background(), "train")
	defer span.End()

	if len(workloads) == 0 {
		return nil, fmt.Errorf("perspectron: no training workloads")
	}
	store := corpus.Default()
	ds := store.DatasetCtx(ctx, workloads, opts.CollectConfig())
	b, m := ds.ClassCounts()
	if b == 0 || m == 0 {
		return nil, fmt.Errorf("perspectron: training corpus needs both classes (benign=%d malicious=%d)", b, m)
	}
	p := store.PreparedCtx(ctx, workloads, opts.CollectConfig(), opts.selectConfig())
	enc, sel := p.Enc, p.Sel
	if len(sel.Indices) == 0 {
		return nil, fmt.Errorf("perspectron: feature selection found no informative features")
	}

	// Train through the bit-packed kernel: the packed fit walks only the set
	// bits of each k-sparse row, and its weights are bit-identical to the
	// dense float path (see internal/perceptron packed tests). Driving the
	// epoch loop through a Trainer (rather than batch FitPacked) yields the
	// same weights and leaves behind the serialized optimizer state the
	// continual-learning pipeline resumes from.
	Xb, yb := enc.PackedBinaryMatrix(ds)
	Xp := trace.ProjectPacked(Xb, sel.Indices)
	pcfg := perceptron.DefaultConfig()
	pcfg.Threshold = opts.Threshold
	pcfg.Seed = opts.Seed
	perc := perceptron.New(len(sel.Indices), pcfg)
	tr := perceptron.NewTrainer(perc)
	tr.FitPacked(Xp, yb, 0)
	st := tr.State()

	d := &Detector{
		FeatureNames: make([]string, len(sel.Indices)),
		Weights:      perc.W,
		Bias:         perc.Bias,
		Threshold:    opts.Threshold,
		Interval:     opts.Interval,
		GlobalMax:    make([]float64, len(sel.Indices)),
		Lineage: &Lineage{
			TrainedSamples: len(Xp),
			Trainer:        &st,
			FeatureMeans:   firingRates(Xp, len(sel.Indices)),
		},
		indices: sel.Indices,
	}
	for i, j := range sel.Indices {
		d.FeatureNames[i] = ds.FeatureNames[j]
		d.GlobalMax[i] = enc.M.GlobalMax(j)
	}
	points := enc.M.NumPoints()
	if points > 64 {
		points = 64
	}
	for pt := 0; pt < points; pt++ {
		row := make([]float64, len(sel.Indices))
		for i, j := range sel.Indices {
			row[i] = enc.M.Max(j, pt)
		}
		d.PointMax = append(d.PointMax, row)
	}
	return d, nil
}

// NumFeatures returns the detector's input width.
func (d *Detector) NumFeatures() int { return len(d.Weights) }

// Hardware returns the hardware cost model for this detector.
func (d *Detector) Hardware() perceptron.HardwareModel {
	h := perceptron.DefaultHardwareModel()
	h.NumFeatures = d.NumFeatures()
	h.SampleInstrs = d.Interval
	return h
}

// resolve maps feature names onto counter indices for the given machine.
// Counters absent from the machine are left unresolved (index -1) and masked
// during scoring — the degraded serving mode, mirroring the paper's
// replicated-detector argument that a partial signature still scores. It
// returns the number of resolved features; the only error is a machine on
// which none of the detector's counters exist.
func (d *Detector) resolve(m *sim.Machine) (int, error) {
	if d.indices == nil || len(d.indices) != len(d.FeatureNames) {
		d.indices, _ = resolveNames(d.FeatureNames, m)
	}
	resolved := 0
	for _, j := range d.indices {
		if j >= 0 {
			resolved++
		}
	}
	if resolved == 0 {
		return 0, fmt.Errorf("perspectron: none of the detector's %d counters are present on this machine",
			len(d.FeatureNames))
	}
	return resolved, nil
}

// encoding returns the detector's slot-indexed view of the shared
// normalize/binarize implementation, built over the embedded maxima.
func (d *Detector) encoding() *encoding.Encoding {
	return &encoding.Encoding{GlobalMax: d.GlobalMax, PerPoint: d.PointMax}
}

// scoreSample binarizes one raw counter-delta vector through the shared
// encoding and returns the normalized perceptron output plus the number of
// features that were observable (resolved counter, finite value).
// Unresolved or fault-masked (NaN/Inf) inputs are skipped and the margin is
// renormalized over the surviving weights: the score is
// s/(|bias|+Σ|w_fired|) over firing features only, so losing a random
// subset shrinks numerator and denominator together and the normalized
// confidence degrades gracefully instead of collapsing.
func (d *Detector) scoreSample(raw []float64, point int) (score float64, avail int) {
	return d.scoreWith(raw, point, d.indices)
}

// scoreWith is scoreSample over caller-supplied counter indices instead of
// the detector's cached ones. It reads the detector but never writes it, so
// concurrent sessions (internal/serve workers) can score against one shared
// model with their own per-machine index slices.
func (d *Detector) scoreWith(raw []float64, point int, indices []int) (score float64, avail int) {
	bits, avail := d.encoding().Bits(raw, indices, point, nil)
	return encoding.Margin(d.Bias, d.Weights, bits), avail
}

// SamplePoint is one sampling interval's verdict.
type SamplePoint struct {
	Index   int     // sampling interval number
	Insts   uint64  // committed instructions at the sample
	Score   float64 // normalized perceptron output (confidence)
	Flagged bool
}

// Report is the outcome of monitoring one workload.
type Report struct {
	Workload  string
	Malicious bool // ground truth
	Samples   []SamplePoint
	Detected  bool
	// FirstFlag is the index of the first flagged sample. A negative value
	// means the workload was never flagged (Detected is then false).
	FirstFlag int
	// LeakSamples lists the sample indices at which disclosures completed.
	LeakSamples []int
	// LeakBefore reports whether the attack's first disclosure completed
	// strictly before the first flagged sample — i.e. detection came too
	// late (or, when FirstFlag < 0, never came). It is always false for
	// workloads that never leaked (empty LeakSamples).
	LeakBefore bool
	Categories []string // reserved for multi-way classification
	// Degraded is true when the detector could not observe its full feature
	// set: counters missing from the machine, or values masked by injected
	// faults. Scores are then renormalized over the surviving weights.
	Degraded bool
	// Coverage is the mean fraction (0..1] of the detector's features that
	// were observable per scored sample. 1.0 means full fidelity; it is the
	// denominator of the degraded-mode confidence (see docs/FAULTS.md).
	Coverage float64
}

// Monitor runs the workload for maxInsts committed instructions on a fresh
// machine with the detector attached, scoring every sampling interval. seed
// drives the workload's data-dependent behaviour.
func (d *Detector) Monitor(w Workload, maxInsts uint64, seed int64) (*Report, error) {
	return d.monitor(context.Background(), w, maxInsts, seed, nil)
}

// MonitorCtx is Monitor bounded by ctx: cancellation or a deadline ends the
// run early and surfaces as the context's error. This is the deadline every
// stage of the serving runtime puts on its scoring work.
func (d *Detector) MonitorCtx(ctx context.Context, w Workload, maxInsts uint64, seed int64) (*Report, error) {
	return d.monitor(ctx, w, maxInsts, seed, nil)
}

// FaultConfig selects deterministic counter-level faults for MonitorFaulty.
// The zero value injects nothing. All faults draw from Seed, so a
// (detector, workload, FaultConfig) triple is fully reproducible.
type FaultConfig struct {
	Seed int64
	// Dropout is the per-sample probability that each counter value goes
	// missing (a transient sensor-read failure).
	Dropout float64
	// StuckZero pins this persistent fraction of counters to zero.
	StuckZero float64
	// StuckMax pins this persistent fraction of counters to a saturated
	// 32-bit counter value.
	StuckMax float64
	// Noise is the relative sigma of multiplicative Gaussian noise.
	Noise float64
	// Jitter scales whole samples by a uniform factor in [1-Jitter,1+Jitter],
	// modelling sampling-interval drift.
	Jitter float64
	// Blackout silences every counter of the named pipeline component
	// ("dcache", "branchPred", ...) for samples [BlackoutFrom, BlackoutTo);
	// BlackoutTo <= 0 means to the end of the run.
	Blackout     string
	BlackoutFrom int
	BlackoutTo   int
}

// schedule compiles the config into a fault schedule for machine m.
func (c FaultConfig) schedule(m *sim.Machine) (*faults.Schedule, error) {
	var models []faults.Model
	if c.Dropout > 0 {
		models = append(models, faults.Dropout{Rate: c.Dropout})
	}
	if c.StuckZero > 0 {
		models = append(models, faults.StuckAtZero{Frac: c.StuckZero})
	}
	if c.StuckMax > 0 {
		models = append(models, faults.StuckAtMax{Frac: c.StuckMax})
	}
	if c.Noise > 0 {
		models = append(models, faults.Noise{Sigma: c.Noise})
	}
	if c.Jitter > 0 {
		models = append(models, faults.Jitter{Frac: c.Jitter})
	}
	if c.Blackout != "" {
		b, err := faults.NewBlackout(m.Reg, c.Blackout, c.BlackoutFrom, c.BlackoutTo)
		if err != nil {
			return nil, err
		}
		models = append(models, b)
	}
	if len(models) == 0 {
		return nil, nil
	}
	return faults.NewSchedule(c.Seed, models...), nil
}

// MonitorFaulty is Monitor with counter-level faults injected into the
// machine's sampled vectors — the robustness-evaluation entry point. The
// detector runs in degraded mode over whatever signal survives; the report's
// Degraded and Coverage fields quantify the loss.
func (d *Detector) MonitorFaulty(w Workload, maxInsts uint64, seed int64, fc FaultConfig) (*Report, error) {
	return d.monitor(context.Background(), w, maxInsts, seed, func(m *sim.Machine) error {
		sched, err := fc.schedule(m)
		if err != nil {
			return err
		}
		if sched != nil {
			sched.Attach(m)
		}
		return nil
	})
}

func (d *Detector) monitor(ctx context.Context, w Workload, maxInsts uint64, seed int64, inject func(*sim.Machine) error) (*Report, error) {
	m := sim.NewMachine(sim.DefaultConfig())
	resolved, err := d.resolve(m)
	if err != nil {
		return nil, err
	}
	if inject != nil {
		if err := inject(m); err != nil {
			return nil, err
		}
	}
	info := w.Info()
	rep := &Report{
		Workload:  info.Name,
		Malicious: info.Label == workload.Malicious,
		FirstFlag: -1,
	}
	nf := len(d.FeatureNames)
	coverageSum := 0.0

	// Telemetry instruments are fetched once before the sample loop; on the
	// disabled (nil registry) path every handle is nil and each per-sample
	// operation is a single pointer check, keeping Monitor's hot loop at its
	// uninstrumented cost.
	reg := telemetry.Get()
	enabled := reg != nil
	var (
		scoreHist   *telemetry.Histogram
		latencyHist *telemetry.Histogram
	)
	if enabled {
		scoreHist = reg.Histogram("perspectron_monitor_score", telemetry.ScoreBuckets)
		latencyHist = reg.Histogram("perspectron_monitor_sample_seconds", telemetry.LatencyBuckets)
	}
	sampleCtr := reg.Counter("perspectron_monitor_samples_total")
	flaggedCtr := reg.Counter("perspectron_monitor_flagged_total")
	_, span := reg.StartSpan(context.Background(), "monitor")

	// Stream the run through the same SampleSource batch collection drains,
	// scoring each sampling interval as it arrives — the online serving path
	// shares the per-sample machinery with Collect by construction.
	src := trace.NewRunSource(ctx, m, w, 0, seed,
		trace.CollectConfig{MaxInsts: maxInsts, Interval: d.Interval})
	defer src.Close()
	for {
		s, ok := src.NextCtx(ctx)
		if !ok {
			break
		}
		var start time.Time
		if enabled {
			start = time.Now()
		}
		score, avail := d.scoreSample(s.Raw, s.Index)
		if enabled {
			latencyHist.Observe(time.Since(start).Seconds())
			scoreHist.Observe(score)
		}
		sampleCtr.Inc()
		if nf > 0 {
			coverageSum += float64(avail) / float64(nf)
		}
		flagged := score >= d.Threshold
		if flagged {
			flaggedCtr.Inc()
		}
		rep.Samples = append(rep.Samples, SamplePoint{
			Index:   s.Index,
			Insts:   uint64(s.Index+1) * d.Interval,
			Score:   score,
			Flagged: flagged,
		})
		if flagged && rep.FirstFlag < 0 {
			rep.FirstFlag = s.Index
			rep.Detected = true
		}
	}
	span.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("perspectron: monitoring %s: %w", info.Name, err)
	}
	if err := src.Err(); err != nil {
		return nil, fmt.Errorf("perspectron: monitoring %s: %w", info.Name, err)
	}
	if len(rep.Samples) > 0 && nf > 0 {
		rep.Coverage = coverageSum / float64(len(rep.Samples))
	} else if nf > 0 {
		rep.Coverage = float64(resolved) / float64(nf)
	} else {
		rep.Coverage = 1
	}
	rep.Degraded = rep.Coverage < 1-1e-12
	for _, mark := range src.LeakMarks() {
		rep.LeakSamples = append(rep.LeakSamples, int(mark/d.Interval))
	}
	if len(rep.LeakSamples) > 0 {
		rep.LeakBefore = rep.FirstFlag < 0 || rep.LeakSamples[0] < rep.FirstFlag
	}
	if enabled {
		reg.Gauge("perspectron_monitor_coverage").Set(rep.Coverage)
		reg.Event("monitor", map[string]any{
			"workload":  rep.Workload,
			"malicious": rep.Malicious,
			"detected":  rep.Detected,
			"samples":   len(rep.Samples),
			"coverage":  rep.Coverage,
		})
	}
	return rep, nil
}

// Save serializes the detector as JSON (the paper's vendor-distributable
// weight patch), with an embedded SHA-256 self-checksum so a truncated or
// bit-flipped checkpoint is rejected at Load instead of silently mis-scoring.
func (d *Detector) Save(w io.Writer) error {
	c := *d
	c.Checksum = ""
	sum, err := checksumJSON(&c)
	if err != nil {
		return fmt.Errorf("perspectron: encoding detector: %w", err)
	}
	c.Checksum = sum
	d.Checksum = sum // the in-memory detector adopts its content version
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&c)
}

// Load reads a detector written by Save. The embedded checksum is verified
// first — a mismatch fails with a "checkpoint corrupt" error; legacy
// checksum-less files are accepted with a warning (and the computed checksum
// adopted). Load is then a strict validator: a detector that decodes but
// carries non-finite weights, inconsistent normalization-matrix widths or a
// non-positive sampling interval is rejected here rather than misbehaving
// later in scoring.
func Load(r io.Reader) (*Detector, error) {
	var d Detector
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("perspectron: decoding detector: %w", err)
	}
	c := d
	c.Checksum = ""
	if err := verifyChecksum("detector", d.Checksum, &c); err != nil {
		return nil, err
	}
	if d.Checksum == "" {
		d.Checksum, _ = checksumJSON(&c) // adopt the content version
	}
	if err := d.validate(); err != nil {
		return nil, fmt.Errorf("perspectron: corrupt detector: %w", err)
	}
	return &d, nil
}

// validate checks the structural and numeric invariants Save guarantees.
func (d *Detector) validate() error {
	n := len(d.FeatureNames)
	if n == 0 {
		return fmt.Errorf("no features")
	}
	if len(d.Weights) != n {
		return fmt.Errorf("%d weights for %d features", len(d.Weights), n)
	}
	if len(d.GlobalMax) != n {
		return fmt.Errorf("%d global maxima for %d features", len(d.GlobalMax), n)
	}
	if d.Interval == 0 {
		return fmt.Errorf("non-positive sampling interval")
	}
	if !finite(d.Bias) || !finite(d.Threshold) {
		return fmt.Errorf("non-finite bias or threshold")
	}
	for i, w := range d.Weights {
		if !finite(w) {
			return fmt.Errorf("non-finite weight for feature %q", d.FeatureNames[i])
		}
	}
	for i, m := range d.GlobalMax {
		if !finite(m) {
			return fmt.Errorf("non-finite global max for feature %q", d.FeatureNames[i])
		}
	}
	for p, row := range d.PointMax {
		if len(row) != n {
			return fmt.Errorf("point-max row %d has width %d, want %d", p, len(row), n)
		}
		for i, m := range row {
			if !finite(m) {
				return fmt.Errorf("non-finite point max at (%d, %q)", p, d.FeatureNames[i])
			}
		}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// TopFeatures returns the k most suspicious (positive-weight) and most
// benign (negative-weight) features with their weights — the
// interpretability view of the paper's §VII-C.
func (d *Detector) TopFeatures(k int) (suspicious, benign []WeightedFeature) {
	p := perceptron.Perceptron{W: d.Weights, Bias: d.Bias}
	pos, neg := p.TopWeights(k)
	for _, j := range pos {
		suspicious = append(suspicious, WeightedFeature{d.FeatureNames[j], d.Weights[j]})
	}
	for _, j := range neg {
		benign = append(benign, WeightedFeature{d.FeatureNames[j], d.Weights[j]})
	}
	return suspicious, benign
}

// WeightedFeature pairs a counter name with its learned weight.
type WeightedFeature struct {
	Name   string
	Weight float64
}

// Update retrains the detector with additional workloads folded into the
// corpus — the paper's §IV-G1 vendor weight patch: "we envision our
// technique being deployed with the ability to update the neural weights
// using a vendor distributed patch reflecting training with the most recent
// known classes of attacks". The feature *selection* is rerun too, so a new
// attack class can pull in counters the old selection ignored. The updated
// detector keeps the original sampling interval and threshold.
func (d *Detector) Update(baseline, additional []Workload, opts Options) (*Detector, error) {
	opts.Interval = d.Interval
	opts.Threshold = d.Threshold
	if opts.MaxFeatures == 0 {
		opts.MaxFeatures = d.NumFeatures()
	}
	corpus := append(append([]Workload{}, baseline...), additional...)
	return Train(corpus, opts)
}
