#!/usr/bin/env bash
# explain_smoke.sh — end-to-end smoke test for verdict forensics (see
# docs/OBSERVABILITY.md): the serving path must stamp trace IDs, stage
# timings and top-k feature attributions into the verdict log, and
# `perspectron explain` must reconstruct a recorded verdict offline from the
# log + checkpoint alone, reproducing the recorded attribution bit-for-bit —
# and exit non-zero when the log has been tampered with.
#
# Env: CACHEDIR (corpus cache dir, default .corpus-cache).
set -euo pipefail

CACHEDIR="${CACHEDIR:-.corpus-cache}"
BIN=/tmp/perspectron-explain
DET=/tmp/explain-smoke-det.json
VERDICTS=/tmp/explain-smoke-verdicts.jsonl
LOG=/tmp/explain-smoke.log
rm -f "$DET" "$DET.last-good" "$DET.last-good.2" "$VERDICTS" "$VERDICTS.state" "$VERDICTS.torn" "$VERDICTS.offset" "$LOG"

fail() { echo "explain_smoke: FAIL: $1" >&2; [ -f "$LOG" ] && tail -20 "$LOG" >&2; exit 1; }

echo "== build =="
go build -o "$BIN" ./cmd/perspectron

echo "== train a seed detector =="
"$BIN" train -insts 50000 -runs 1 -cachedir "$CACHEDIR" -out "$DET"

echo "== bounded serve with attribution on (defaults + benign sampling) =="
"$BIN" serve -in "$DET" -workloads spectreV1,bzip2 -insts 40000 -episodes 1 \
    -attr-benign-every 2 -verdicts "$VERDICTS" 2>"$LOG" \
  || fail "serve exited non-zero"
grep -q 'all workers completed' "$LOG" || fail "serve did not complete its bounded episodes"
test -s "$VERDICTS" || fail "verdict log empty"

echo "== every record carries a trace; flagged ones carry fired + attr =="
python3 - "$VERDICTS" <<'EOF'
import json, sys
total = flagged = attributed = 0
for line in open(sys.argv[1]):
    rec = json.loads(line)
    if rec.get("mode") == "recovery":
        continue  # startup accounting stamp, not a sample verdict
    total += 1
    if rec.get("shed"):
        assert rec.get("trace"), rec
        continue
    assert rec.get("trace"), rec
    if rec.get("flagged"):
        flagged += 1
        assert rec.get("fired") and rec.get("attr"), rec
    if rec.get("attr"):
        attributed += 1
assert total and flagged and attributed, (total, flagged, attributed)
print(f"  {total} verdicts, {flagged} flagged, {attributed} attributed")
EOF

echo "== explain reproduces the recorded attribution bit-for-bit =="
"$BIN" explain -verdicts "$VERDICTS" -in "$DET" | tee /tmp/explain-smoke-out.txt
grep -q 'bit-for-bit' /tmp/explain-smoke-out.txt || fail "explain did not report consistency"
"$BIN" explain -verdicts "$VERDICTS" -in "$DET" -json > /tmp/explain-smoke.json \
  || fail "explain -json exited non-zero"
python3 - /tmp/explain-smoke.json <<'EOF'
import json, sys
e = json.load(open(sys.argv[1]))
assert e["score_match"] and e["attr_match"], e.get("diffs")
assert e["score"] == e["record"]["score"], (e["score"], e["record"]["score"])
assert e["attr"] == e["record"]["attr"], "attribution did not reproduce bit-for-bit"
assert e["version"] == e["record"]["version"], (e["version"], e["record"]["version"])
EOF

echo "== tampering is caught: non-zero exit, diff listed =="
TAMPERED=/tmp/explain-smoke-tampered.jsonl
python3 - "$VERDICTS" "$TAMPERED" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
# Explain defaults to the last attributed record — lie about exactly that one.
idx = max(i for i, rec in enumerate(lines) if rec.get("attr"))
lines[idx]["score"] += 1e-9
with open(sys.argv[2], "w") as f:
    for rec in lines:
        f.write(json.dumps(rec) + "\n")
EOF
if "$BIN" explain -verdicts "$TAMPERED" -in "$DET" > /tmp/explain-smoke-tamper.txt 2>&1; then
  fail "tampered log explained with exit 0"
fi
grep -q 'DIVERGED' /tmp/explain-smoke-tamper.txt || fail "tamper diff not printed"

echo "explain_smoke: OK"
