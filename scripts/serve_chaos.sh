#!/usr/bin/env bash
# serve_chaos.sh — the serve-layer chaos gate.
#
# Runs the in-process chaos harness (internal/serve/chaos_test.go) under the
# race detector: scorer panics, workload panics, stalled sources, checkpoint
# corruption racing hot-reload, and load spikes all injected concurrently
# against one live supervisor, asserting that
#
#   1. the supervisor never deadlocks (drain completes promptly on cancel),
#   2. no sample is ever dropped unlogged (enqueued == scored + shed, with a
#      verdict record for every shed and every scorer failure),
#   3. health endpoints report degradation truthfully throughout, and
#   4. the drain leaves zero goroutines behind.
#
# Then drives the same overload machinery through the real binary: a small
# detector served with tiny queues and many streams must shed loudly —
# perspectron_serve_shed_total visible in /metrics, shed-mode records in the
# verdict log — while /readyz stays 200 and reports its degraded-but-serving
# state in the body.
#
# Env: CACHEDIR (corpus cache dir, default .corpus-cache), PORT (default
# 9467), CHAOS_TIMEOUT (go test wall-clock budget, default 5m).
set -euo pipefail

CACHEDIR="${CACHEDIR:-.corpus-cache}"
PORT="${PORT:-9467}"
CHAOS_TIMEOUT="${CHAOS_TIMEOUT:-5m}"
BIN=/tmp/perspectron-chaos
DET=/tmp/serve-chaos-det.json
VERDICTS=/tmp/serve-chaos-verdicts.jsonl
LOG=/tmp/serve-chaos.log
rm -f "$VERDICTS" "$VERDICTS.state" "$VERDICTS.torn" "$VERDICTS.offset" "$LOG"

fail() { echo "serve_chaos: FAIL: $1" >&2; [ -f "$LOG" ] && tail -20 "$LOG" >&2; exit 1; }

echo "== chaos harness (race) =="
go test -race -run TestServeChaos -count 1 -timeout "$CHAOS_TIMEOUT" ./internal/serve/ \
  || fail "chaos harness failed"

echo "== build (race) =="
go build -race -o "$BIN" ./cmd/perspectron

echo "== train a small detector =="
"$BIN" train -insts 50000 -runs 1 -cachedir "$CACHEDIR" -out "$DET"

echo "== overload the real binary: tiny queues, many streams =="
# queue-depth 1: the single slot makes producer collisions shed, so the
# overload path is exercised deterministically within the wait budget.
"$BIN" serve -in "$DET" -workloads all -insts 40000 \
    -shards 2 -queue-depth 1 -batch 2 -load-high 0.9 -load-critical 0.95 \
    -verdicts "$VERDICTS" -metrics-addr "127.0.0.1:$PORT" 2>"$LOG" &
SERVE=$!
trap 'kill "$SERVE" 2>/dev/null || true' EXIT

for i in $(seq 60); do
  [ "$(curl -fso /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/readyz" || true)" = 200 ] && break
  kill -0 "$SERVE" 2>/dev/null || fail "serve exited before becoming ready"
  sleep 1
done
[ "$(curl -fso /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/readyz")" = 200 ] \
  || fail "/readyz never turned 200"

echo "== wait for sheds and load degradation to register =="
for i in $(seq 60); do
  curl -fs "http://127.0.0.1:$PORT/metrics" | grep -q 'perspectron_serve_shed_total' && break
  kill -0 "$SERVE" 2>/dev/null || fail "serve died under overload"
  sleep 1
done
curl -fs "http://127.0.0.1:$PORT/metrics" > /tmp/serve-chaos.metrics
grep -q 'perspectron_serve_shed_total' /tmp/serve-chaos.metrics \
  || fail "overload produced no shed counter"
grep -q 'perspectron_serve_verdict_latency_seconds' /tmp/serve-chaos.metrics \
  || fail "verdict latency histogram missing"
# Degraded-but-serving: /readyz stays 200 and tells the truth in the body.
[ "$(curl -fso /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/readyz")" = 200 ] \
  || fail "/readyz dropped to 503 while degraded-but-serving"
READY_BODY=$(curl -fs "http://127.0.0.1:$PORT/readyz")
HEALTH=$(curl -fs "http://127.0.0.1:$PORT/healthz")
echo "$HEALTH" | grep -q '"shards"' || fail "/healthz missing shard rows"
if echo "$HEALTH" | grep -q '"status": "degraded"'; then
  [ "$READY_BODY" = degraded ] || fail "/readyz body '$READY_BODY' hides degraded state"
fi

echo "== SIGTERM drains cleanly, every shed logged =="
kill -TERM "$SERVE"
for i in $(seq 60); do kill -0 "$SERVE" 2>/dev/null || break; sleep 1; done
kill -0 "$SERVE" 2>/dev/null && fail "serve did not exit within 60s of SIGTERM"
trap - EXIT
wait "$SERVE" || fail "serve exited non-zero after SIGTERM"
grep -q 'drained cleanly' "$LOG" || fail "drain message missing from serve log"
test -s "$VERDICTS" || fail "verdict log empty after drain"
python3 - "$VERDICTS" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert lines, "no verdict lines"
sheds = [r for r in lines if r.get("shed")]
assert sheds, "overload shed nothing — queues never filled"
for r in sheds:
    assert r["mode"] == "shed", r
print(f"{len(lines)} verdicts, {len(sheds)} shed records")
EOF
echo "serve_chaos: OK"
