#!/usr/bin/env bash
# bench_append.sh — run `make bench` and append each run's parsed report to
# the timestamped trajectory file BENCH_history.jsonl (one JSON line per
# artifact per run), so the perf history ROADMAP tracks is actually recorded
# instead of overwritten. The snapshot artifacts (BENCH_*.json) are still
# refreshed exactly as `make bench` always has — this script only adds the
# history dimension via benchjson's -append flag.
#
# Usage: scripts/bench_append.sh [HISTORY_FILE]
set -euo pipefail
cd "$(dirname "$0")/.."

HISTORY="${1:-BENCH_history.jsonl}"
export BENCH_HISTORY="$HISTORY"

make bench BENCH_HISTORY="$HISTORY"

runs=$(wc -l <"$HISTORY")
echo "bench_append: $HISTORY now holds $runs run lines"
