#!/usr/bin/env bash
# crash_smoke.sh — crash chaos harness for crash-safe serving (see
# docs/FAULTS.md): builds a race-instrumented binary, trains a seed detector,
# then runs TestCrashRecoveryCycles, which SIGKILLs a real `perspectron serve`
# child mid-load in a loop and asserts the recovery invariants — zero torn
# records after repair, the durable ledger balances (enqueued == records +
# lost) across every incarnation, session stamps strictly increase, and
# `perspectron explain` reproduces post-recovery verdicts bit-for-bit.
#
# Env: CACHEDIR (corpus cache dir, default .corpus-cache),
#      CRASH_CYCLES (kill cycles, default 20).
set -euo pipefail

CACHEDIR="${CACHEDIR:-.corpus-cache}"
CRASH_CYCLES="${CRASH_CYCLES:-20}"
BIN=/tmp/perspectron-crash
DET=/tmp/crash-smoke-det.json
rm -f "$DET" "$DET.last-good" "$DET.last-good.2"

echo "== build (race) =="
go build -race -o "$BIN" ./cmd/perspectron

echo "== train a seed detector =="
"$BIN" train -insts 50000 -runs 1 -cachedir "$CACHEDIR" -out "$DET"

echo "== crash chaos loop ($CRASH_CYCLES kill -9 cycles + clean drain) =="
PERSPECTRON_CRASH_BIN="$BIN" \
PERSPECTRON_CRASH_DET="$DET" \
PERSPECTRON_CRASH_CYCLES="$CRASH_CYCLES" \
  go test -race -run TestCrashRecoveryCycles ./internal/serve/ -v -count=1 -timeout 10m

echo "crash_smoke: OK"
