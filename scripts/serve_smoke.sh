#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for `perspectron serve`.
#
# Builds a race-enabled binary, trains a small detector, runs the service
# against one attack and one benign stream, then exercises the resilience
# contract from docs/SERVICE.md:
#
#   1. /readyz turns 200 once the workers are up.
#   2. Corrupting the live checkpoint triggers a rollback — the last good
#      model stays in service, visible in /healthz (rollbacks, reload_error)
#      and in the perspectron_serve_reloads_total{result="rollback"} counter.
#   3. SIGTERM drains cleanly: exit 0, verdict log flushed and valid JSONL.
#
# Env: CACHEDIR (corpus cache dir, default .corpus-cache), PORT (default 9466).
set -euo pipefail

CACHEDIR="${CACHEDIR:-.corpus-cache}"
PORT="${PORT:-9466}"
BIN=/tmp/perspectron-race
DET=/tmp/serve-smoke-det.json
VERDICTS=/tmp/serve-smoke-verdicts.jsonl
LOG=/tmp/serve-smoke.log
rm -f "$VERDICTS" "$VERDICTS.state" "$VERDICTS.torn" "$VERDICTS.offset" "$LOG"

fail() { echo "serve_smoke: FAIL: $1" >&2; [ -f "$LOG" ] && tail -20 "$LOG" >&2; exit 1; }

echo "== build (race) =="
go build -race -o "$BIN" ./cmd/perspectron

echo "== train a small detector =="
"$BIN" train -insts 50000 -runs 1 -cachedir "$CACHEDIR" -out "$DET"

echo "== start serve =="
"$BIN" serve -in "$DET" -workloads spectreV1,bzip2 -insts 40000 \
    -poll 200ms -verdicts "$VERDICTS" \
    -metrics-addr "127.0.0.1:$PORT" 2>"$LOG" &
SERVE=$!
trap 'kill "$SERVE" 2>/dev/null || true' EXIT

for i in $(seq 60); do
  [ "$(curl -fso /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/readyz" || true)" = 200 ] && break
  kill -0 "$SERVE" 2>/dev/null || fail "serve exited before becoming ready"
  sleep 1
done
[ "$(curl -fso /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/readyz")" = 200 ] \
  || fail "/readyz never turned 200"
curl -fs "http://127.0.0.1:$PORT/healthz" | grep -q '"detector_version"' \
  || fail "/healthz missing the model version"

echo "== corrupt the live checkpoint, expect a rollback =="
GOOD_VERSION=$(curl -fs "http://127.0.0.1:$PORT/healthz" | grep -o '"detector_version": "[^"]*"')
echo '{"this is": "not a checkpoint"}' > "$DET"
for i in $(seq 30); do
  curl -fs "http://127.0.0.1:$PORT/healthz" | grep -q '"rollbacks": 1' && break
  sleep 1
done
HEALTH=$(curl -fs "http://127.0.0.1:$PORT/healthz")
echo "$HEALTH" | grep -q '"rollbacks": 1'     || fail "rollback not counted in /healthz"
echo "$HEALTH" | grep -q '"reload_error"'     || fail "reload error not surfaced in /healthz"
echo "$HEALTH" | grep -q '"status": "degraded"' || fail "rollback did not degrade status"
echo "$HEALTH" | grep -qF "$GOOD_VERSION"     || fail "live model version changed after a corrupt write"
curl -fs "http://127.0.0.1:$PORT/metrics" \
  | grep -q 'perspectron_serve_reloads_total{result="rollback"} 1' \
  || fail "rollback counter missing from /metrics"
kill -0 "$SERVE" 2>/dev/null || fail "serve died on a corrupt checkpoint"

echo "== SIGTERM drains cleanly =="
kill -TERM "$SERVE"
for i in $(seq 60); do kill -0 "$SERVE" 2>/dev/null || break; sleep 1; done
kill -0 "$SERVE" 2>/dev/null && fail "serve did not exit within 60s of SIGTERM"
trap - EXIT
wait "$SERVE" || fail "serve exited non-zero after SIGTERM"
grep -q 'drained cleanly' "$LOG" || fail "drain message missing from serve log"
test -s "$VERDICTS" || fail "verdict log empty after drain"
python3 - "$VERDICTS" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "no verdict lines"
for l in lines:
    rec = json.loads(l)
    assert {"worker", "mode", "score", "coverage"} <= rec.keys(), rec
assert any(json.loads(l)["flagged"] for l in lines), "no flagged verdicts from spectreV1"
EOF
echo "serve_smoke: OK (${GOOD_VERSION}, $(wc -l < "$VERDICTS") verdicts)"
