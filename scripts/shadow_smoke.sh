#!/usr/bin/env bash
# shadow_smoke.sh — end-to-end smoke test for the continual-learning loop
# (see docs/MLOPS.md): `perspectron shadow` standalone and `perspectron serve
# -shadow` in-process, with a race-enabled binary.
#
#   1. Standalone: N bounded shadow rounds against a freshly trained seed
#      checkpoint — every round retrains incrementally, stages a candidate,
#      and runs the promotion gate; the live checkpoint must remain a valid,
#      loadable checkpoint afterwards, with the gate's verdict stamped in its
#      lineage (promoted_at on promotion, a preserved .rejected otherwise).
#   2. In-process: serve with the shadow trainer attached, verdict log tailed.
#      The shadow round counter must advance, the drift gauge must appear in
#      /metrics, and if the gate promotes, the running supervisor must
#      hot-reload the new version (visible in /healthz).
#   3. SIGTERM drains both the workers and the shadow loop cleanly.
#
# Env: CACHEDIR (corpus cache dir, default .corpus-cache), PORT (default 9467).
set -euo pipefail

CACHEDIR="${CACHEDIR:-.corpus-cache}"
PORT="${PORT:-9467}"
BIN=/tmp/perspectron-shadow-race
DET=/tmp/shadow-smoke-det.json
VERDICTS=/tmp/shadow-smoke-verdicts.jsonl
LOG=/tmp/shadow-smoke.log
SHADOWLOG=/tmp/shadow-smoke-standalone.log
rm -f "$DET" "$DET.candidate" "$DET.rejected" "$DET.last-good" "$DET.last-good.2" "$VERDICTS" "$VERDICTS.state" "$VERDICTS.torn" "$VERDICTS.offset" "$LOG" "$SHADOWLOG"

fail() { echo "shadow_smoke: FAIL: $1" >&2; for f in "$LOG" "$SHADOWLOG"; do [ -f "$f" ] && tail -20 "$f" >&2; done; exit 1; }

echo "== build (race) =="
go build -race -o "$BIN" ./cmd/perspectron

echo "== train a seed detector =="
"$BIN" train -insts 50000 -runs 1 -cachedir "$CACHEDIR" -out "$DET"

echo "== standalone shadow: 2 bounded rounds through the gate =="
"$BIN" shadow -in "$DET" -workloads spectreV1,bzip2,mcf -insts 40000 \
    -budget 3 -rounds 2 -seed 5 -cachedir "$CACHEDIR" 2>"$SHADOWLOG" \
  || fail "standalone shadow exited non-zero"
grep -q 'shadow: 2 rounds' "$SHADOWLOG" || fail "standalone summary missing"
test -f "$DET.candidate" || fail "no staged candidate after shadow rounds"
python3 - "$DET" "$SHADOWLOG" <<'EOF'
import json, sys
det = json.load(open(sys.argv[1]))
log = open(sys.argv[2]).read()
assert det.get("checksum", "").startswith("sha256:"), "live checkpoint lost its checksum"
lineage = det.get("lineage") or {}
if "promoted" in log:
    assert lineage.get("promoted_at"), "promotion did not stamp promoted_at"
    assert lineage.get("eval"), "promotion did not stamp eval scores"
    assert lineage.get("generation", 0) >= 1, lineage
else:
    import os
    assert os.path.exists(sys.argv[1] + ".rejected"), "rejected candidate not preserved"
EOF

echo "== serve -shadow: in-process rounds, drift gauge, hot-reload =="
"$BIN" serve -in "$DET" -workloads spectreV1,bzip2 -insts 40000 \
    -poll 200ms -verdicts "$VERDICTS" \
    -shadow -shadow-workloads spectreV1,bzip2,mcf -shadow-interval 2s \
    -shadow-budget 3 -shadow-insts 40000 \
    -metrics-addr "127.0.0.1:$PORT" 2>"$LOG" &
SERVE=$!
trap 'kill "$SERVE" 2>/dev/null || true' EXIT

for i in $(seq 60); do
  [ "$(curl -fso /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/readyz" || true)" = 200 ] && break
  kill -0 "$SERVE" 2>/dev/null || fail "serve exited before becoming ready"
  sleep 1
done
V0=$(curl -fs "http://127.0.0.1:$PORT/healthz" | grep -o '"detector_version": "[^"]*"') \
  || fail "/healthz missing the detector version"

# Wait for at least one shadow round to complete (promoted or rejected).
for i in $(seq 90); do
  curl -fs "http://127.0.0.1:$PORT/metrics" > /tmp/shadow-smoke.metrics 2>/dev/null || true
  grep -q 'perspectron_shadow_rounds_total{result="\(promoted\|rejected\)"}' /tmp/shadow-smoke.metrics && break
  kill -0 "$SERVE" 2>/dev/null || fail "serve died while shadow training"
  sleep 1
done
grep -q 'perspectron_shadow_rounds_total' /tmp/shadow-smoke.metrics \
  || fail "no shadow round completed within 90s"
grep -q 'perspectron_shadow_drift' /tmp/shadow-smoke.metrics \
  || fail "drift gauge missing from /metrics"
grep -q 'perspectron_promote_total' /tmp/shadow-smoke.metrics \
  || fail "promotion gate counter missing from /metrics"

# If the gate promoted, the watcher must hot-reload the new version.
if grep -q 'perspectron_shadow_rounds_total{result="promoted"}' /tmp/shadow-smoke.metrics; then
  for i in $(seq 30); do
    V1=$(curl -fs "http://127.0.0.1:$PORT/healthz" | grep -o '"detector_version": "[^"]*"')
    [ "$V1" != "$V0" ] && break
    sleep 1
  done
  [ "$V1" != "$V0" ] || fail "promotion happened but the supervisor never hot-reloaded it"
  grep -q 'hot-reloaded models' "$LOG" || fail "hot-reload not logged"
else
  test -f "$DET.rejected" || fail "all rounds rejected but no .rejected candidate preserved"
fi

echo "== SIGTERM drains workers and shadow loop cleanly =="
kill -TERM "$SERVE"
for i in $(seq 60); do kill -0 "$SERVE" 2>/dev/null || break; sleep 1; done
kill -0 "$SERVE" 2>/dev/null && fail "serve did not exit within 60s of SIGTERM"
trap - EXIT
wait "$SERVE" || fail "serve exited non-zero after SIGTERM"
grep -q 'drained cleanly' "$LOG" || fail "drain message missing from serve log"
test -s "$VERDICTS" || fail "verdict log empty after drain"

echo "shadow_smoke: OK (initial ${V0})"
