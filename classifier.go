package perspectron

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"perspectron/internal/corpus"
	"perspectron/internal/encoding"
	"perspectron/internal/perceptron"
	"perspectron/internal/sim"
	"perspectron/internal/telemetry"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
)

// Classifier is the multi-way companion to Detector (§VII-B): a one-vs-rest
// perceptron bank that names the attack *category* of each sampling
// interval ("spectre_v1", "flush_reload", ..., or "benign"), so the OS can
// pick a category-appropriate mitigation. It uses the full counter space —
// distinguishing Spectre variants needs the per-predictor-unit counters the
// binary selection has no reason to keep.
type Classifier struct {
	// Checksum is the SHA-256 self-checksum Save embeds; see
	// Detector.Checksum for the scheme.
	Checksum string `json:"checksum,omitempty"`

	Classes      []string    `json:"classes"`
	FeatureNames []string    `json:"feature_names"`
	Weights      [][]float64 `json:"weights"` // [class][feature]
	Biases       []float64   `json:"biases"`
	Interval     uint64      `json:"interval"`
	GlobalMax    []float64   `json:"global_max"`

	indices []int
}

// TrainClassifier collects traces (through the process-wide corpus store, so
// a corpus the detector already trained on is reused, not re-simulated) and
// trains the one-vs-rest bank.
func TrainClassifier(workloads []Workload, opts Options) (*Classifier, error) {
	if len(workloads) == 0 {
		return nil, fmt.Errorf("perspectron: no training workloads")
	}
	ds := corpus.Default().Dataset(workloads, opts.CollectConfig())
	enc := trace.NewEncoder(ds)
	// The bank trains on bit-packed k-sparse rows; weights are bit-identical
	// to the dense float path (internal/perceptron packed tests).
	X, _ := enc.PackedBinaryMatrix(ds)

	labelOf := func(s *trace.Sample) string {
		if s.Label == workload.Benign {
			return "benign"
		}
		return s.Category
	}
	classSet := map[string]bool{}
	labels := make([]string, len(ds.Samples))
	for i := range ds.Samples {
		labels[i] = labelOf(&ds.Samples[i])
		classSet[labels[i]] = true
	}
	var classes []string
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	if len(classes) < 2 {
		return nil, fmt.Errorf("perspectron: classifier needs at least two classes, got %v", classes)
	}

	pcfg := perceptron.DefaultConfig()
	pcfg.Seed = opts.Seed
	mc := perceptron.NewMultiClass(classes, ds.NumFeatures(), pcfg)
	mc.FitPacked(X, labels)

	c := &Classifier{
		Classes:      classes,
		FeatureNames: ds.FeatureNames,
		Interval:     opts.Interval,
		GlobalMax:    make([]float64, ds.NumFeatures()),
	}
	for j := 0; j < ds.NumFeatures(); j++ {
		c.GlobalMax[j] = enc.M.GlobalMax(j)
	}
	for _, det := range mc.Detectors {
		c.Weights = append(c.Weights, det.W)
		c.Biases = append(c.Biases, det.Bias)
	}
	c.indices = encoding.Identity(ds.NumFeatures())
	return c, nil
}

// resolve maps feature names to counter indices on the machine. Counters
// absent from the machine are left unresolved (index -1) and masked during
// scoring, like Detector.resolve: the classifier serves in degraded mode on
// whatever signal survives. It returns the number of resolved features; the
// only error is a machine carrying none of them.
func (c *Classifier) resolve(m *sim.Machine) (int, error) {
	if c.indices == nil || len(c.indices) != len(c.FeatureNames) {
		c.indices, _ = resolveNames(c.FeatureNames, m)
	}
	resolved := 0
	for _, j := range c.indices {
		if j >= 0 {
			resolved++
		}
	}
	if resolved == 0 {
		return 0, fmt.Errorf("perspectron: none of the classifier's %d counters are present on this machine",
			len(c.FeatureNames))
	}
	return resolved, nil
}

// encoding returns the classifier's slot-indexed view of the shared
// normalize/binarize implementation. The classifier keeps only global
// maxima, so every execution point scales identically.
func (c *Classifier) encoding() *encoding.Encoding {
	return &encoding.Encoding{GlobalMax: c.GlobalMax}
}

// classScores computes per-class normalized outputs for one raw delta
// through the shared encoding: unresolved or fault-masked (NaN/Inf) counters
// are skipped and each class margin is renormalized over the surviving
// weights, exactly like Detector.scoreSample. avail is the number of
// observable features.
func (c *Classifier) classScores(raw []float64) (scores []float64, avail int) {
	return c.classScoresWith(raw, c.indices)
}

// classScoresWith is classScores over caller-supplied counter indices — the
// lock-free concurrent path, mirroring Detector.scoreWith: the classifier is
// read, never written, so serving sessions can share one model.
func (c *Classifier) classScoresWith(raw []float64, indices []int) (scores []float64, avail int) {
	bits, avail := c.encoding().Bits(raw, indices, -1, nil)
	out := make([]float64, len(c.Classes))
	for ci := range c.Classes {
		out[ci] = encoding.Margin(c.Biases[ci], c.Weights[ci], bits)
	}
	return out, avail
}

// Classification is the outcome of classifying one workload run.
type Classification struct {
	Workload string
	// Votes counts the per-interval argmax classes.
	Votes map[string]int
	// Class is the majority class across intervals.
	Class string
	// Confidence is Votes[Class] / total intervals.
	Confidence float64
	// Degraded is true when the classifier could not observe its full
	// feature set: counters missing from the machine, or values masked by
	// injected faults. Class margins are then renormalized over the
	// surviving weights.
	Degraded bool
	// Coverage is the mean fraction (0..1] of the classifier's features that
	// were observable per scored interval.
	Coverage float64
}

// Classify runs the workload and names its class by per-interval majority
// vote.
func (c *Classifier) Classify(w Workload, maxInsts uint64, seed int64) (*Classification, error) {
	return c.classify(context.Background(), w, maxInsts, seed, nil)
}

// ClassifyCtx is Classify bounded by ctx: cancellation or a deadline ends
// the run early and surfaces as the context's error.
func (c *Classifier) ClassifyCtx(ctx context.Context, w Workload, maxInsts uint64, seed int64) (*Classification, error) {
	return c.classify(ctx, w, maxInsts, seed, nil)
}

// ClassifyFaulty is Classify with counter-level faults injected into the
// machine's sampled vectors — the multi-way analogue of MonitorFaulty. The
// classifier votes in degraded mode over whatever signal survives.
func (c *Classifier) ClassifyFaulty(w Workload, maxInsts uint64, seed int64, fc FaultConfig) (*Classification, error) {
	return c.classify(context.Background(), w, maxInsts, seed, func(m *sim.Machine) error {
		sched, err := fc.schedule(m)
		if err != nil {
			return err
		}
		if sched != nil {
			sched.Attach(m)
		}
		return nil
	})
}

func (c *Classifier) classify(ctx context.Context, w Workload, maxInsts uint64, seed int64, inject func(*sim.Machine) error) (*Classification, error) {
	m := sim.NewMachine(sim.DefaultConfig())
	if _, err := c.resolve(m); err != nil {
		return nil, err
	}
	if inject != nil {
		if err := inject(m); err != nil {
			return nil, err
		}
	}
	res := &Classification{Workload: w.Info().Name, Votes: map[string]int{}}
	nf := len(c.FeatureNames)
	coverageSum := 0.0
	samples := 0

	// Instruments are fetched once before the vote loop — the nil handles of
	// the disabled path keep per-sample cost at a pointer check each.
	reg := telemetry.Get()
	enabled := reg != nil
	var (
		scoreHist   *telemetry.Histogram
		latencyHist *telemetry.Histogram
	)
	if enabled {
		scoreHist = reg.Histogram("perspectron_classify_score", telemetry.ScoreBuckets)
		latencyHist = reg.Histogram("perspectron_classify_sample_seconds", telemetry.LatencyBuckets)
	}
	sampleCtr := reg.Counter("perspectron_classify_samples_total")
	_, span := reg.StartSpan(ctx, "classify")

	src := trace.NewRunSource(ctx, m, w, 0, seed,
		trace.CollectConfig{MaxInsts: maxInsts, Interval: c.Interval})
	defer src.Close()
	for {
		s, ok := src.NextCtx(ctx)
		if !ok {
			break
		}
		var start time.Time
		if enabled {
			start = time.Now()
		}
		scores, avail := c.classScores(s.Raw)
		if nf > 0 {
			coverageSum += float64(avail) / float64(nf)
		}
		best := 0
		for i := 1; i < len(scores); i++ {
			if scores[i] > scores[best] {
				best = i
			}
		}
		if enabled {
			latencyHist.Observe(time.Since(start).Seconds())
			scoreHist.Observe(scores[best])
		}
		sampleCtr.Inc()
		res.Votes[c.Classes[best]]++
		samples++
	}
	span.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("perspectron: classifying %s: %w", res.Workload, err)
	}
	if err := src.Err(); err != nil {
		return nil, fmt.Errorf("perspectron: classifying %s: %w", res.Workload, err)
	}
	if samples == 0 {
		return nil, fmt.Errorf("perspectron: workload produced no samples")
	}
	for class, n := range res.Votes {
		if n > res.Votes[res.Class] || res.Class == "" {
			res.Class = class
		}
	}
	res.Confidence = float64(res.Votes[res.Class]) / float64(samples)
	if nf > 0 {
		res.Coverage = coverageSum / float64(samples)
	} else {
		res.Coverage = 1
	}
	res.Degraded = res.Coverage < 1-1e-12
	if enabled {
		reg.Gauge("perspectron_classify_coverage").Set(res.Coverage)
		for class, n := range res.Votes {
			reg.Counter(telemetry.Name("perspectron_classify_votes_total", "class", class)).
				Add(uint64(n))
		}
	}
	return res, nil
}

// Save serializes the classifier as JSON with an embedded SHA-256
// self-checksum (the scheme Detector.Save uses).
func (c *Classifier) Save(w io.Writer) error {
	cc := *c
	cc.Checksum = ""
	sum, err := checksumJSON(&cc)
	if err != nil {
		return fmt.Errorf("perspectron: encoding classifier: %w", err)
	}
	cc.Checksum = sum
	c.Checksum = sum // the in-memory classifier adopts its content version
	enc := json.NewEncoder(w)
	return enc.Encode(&cc)
}

// LoadClassifier reads a classifier written by Save, verifying the embedded
// checksum (legacy checksum-less files load with a warning) and validating
// the decoded structure.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	var c Classifier
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("perspectron: decoding classifier: %w", err)
	}
	cc := c
	cc.Checksum = ""
	if err := verifyChecksum("classifier", c.Checksum, &cc); err != nil {
		return nil, err
	}
	if c.Checksum == "" {
		c.Checksum, _ = checksumJSON(&cc)
	}
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("perspectron: corrupt classifier: %w", err)
	}
	return &c, nil
}

// validate checks the structural and numeric invariants Save guarantees —
// the classifier analogue of Detector.validate.
func (c *Classifier) validate() error {
	if len(c.Classes) == 0 {
		return fmt.Errorf("no classes")
	}
	if len(c.Weights) != len(c.Classes) || len(c.Biases) != len(c.Classes) {
		return fmt.Errorf("%d weight rows and %d biases for %d classes",
			len(c.Weights), len(c.Biases), len(c.Classes))
	}
	nf := len(c.FeatureNames)
	if nf == 0 {
		return fmt.Errorf("no features")
	}
	if len(c.GlobalMax) != nf {
		return fmt.Errorf("%d global maxima for %d features", len(c.GlobalMax), nf)
	}
	if c.Interval == 0 {
		return fmt.Errorf("non-positive sampling interval")
	}
	for ci, row := range c.Weights {
		if len(row) != nf {
			return fmt.Errorf("class %q has %d weights for %d features", c.Classes[ci], len(row), nf)
		}
		for _, w := range row {
			if !finite(w) {
				return fmt.Errorf("non-finite weight in class %q", c.Classes[ci])
			}
		}
	}
	for ci, b := range c.Biases {
		if !finite(b) {
			return fmt.Errorf("non-finite bias for class %q", c.Classes[ci])
		}
	}
	for i, m := range c.GlobalMax {
		if !finite(m) {
			return fmt.Errorf("non-finite global max for feature %q", c.FeatureNames[i])
		}
	}
	return nil
}
