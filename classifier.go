package perspectron

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"perspectron/internal/perceptron"
	"perspectron/internal/sim"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
)

// Classifier is the multi-way companion to Detector (§VII-B): a one-vs-rest
// perceptron bank that names the attack *category* of each sampling
// interval ("spectre_v1", "flush_reload", ..., or "benign"), so the OS can
// pick a category-appropriate mitigation. It uses the full counter space —
// distinguishing Spectre variants needs the per-predictor-unit counters the
// binary selection has no reason to keep.
type Classifier struct {
	Classes      []string    `json:"classes"`
	FeatureNames []string    `json:"feature_names"`
	Weights      [][]float64 `json:"weights"` // [class][feature]
	Biases       []float64   `json:"biases"`
	Interval     uint64      `json:"interval"`
	GlobalMax    []float64   `json:"global_max"`

	indices []int
}

// TrainClassifier collects traces and trains the one-vs-rest bank.
func TrainClassifier(workloads []Workload, opts Options) (*Classifier, error) {
	if len(workloads) == 0 {
		return nil, fmt.Errorf("perspectron: no training workloads")
	}
	ds := trace.Collect(workloads, trace.CollectConfig{
		MaxInsts: opts.MaxInsts,
		Interval: opts.Interval,
		Seed:     opts.Seed,
		Runs:     opts.Runs,
	})
	enc := trace.NewEncoder(ds)
	X, _ := enc.BinaryMatrix(ds)

	labelOf := func(s *trace.Sample) string {
		if s.Label == workload.Benign {
			return "benign"
		}
		return s.Category
	}
	classSet := map[string]bool{}
	labels := make([]string, len(ds.Samples))
	for i := range ds.Samples {
		labels[i] = labelOf(&ds.Samples[i])
		classSet[labels[i]] = true
	}
	var classes []string
	for c := range classSet {
		classes = append(classes, c)
	}
	sortStrings(classes)
	if len(classes) < 2 {
		return nil, fmt.Errorf("perspectron: classifier needs at least two classes, got %v", classes)
	}

	pcfg := perceptron.DefaultConfig()
	pcfg.Seed = opts.Seed
	mc := perceptron.NewMultiClass(classes, ds.NumFeatures(), pcfg)
	mc.Fit(X, labels)

	c := &Classifier{
		Classes:      classes,
		FeatureNames: ds.FeatureNames,
		Interval:     opts.Interval,
		GlobalMax:    make([]float64, ds.NumFeatures()),
	}
	for j := 0; j < ds.NumFeatures(); j++ {
		c.GlobalMax[j] = enc.M.GlobalMax(j)
	}
	for _, det := range mc.Detectors {
		c.Weights = append(c.Weights, det.W)
		c.Biases = append(c.Biases, det.Bias)
	}
	c.indices = identity(ds.NumFeatures())
	return c, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// resolve maps feature names to counter indices on the machine.
func (c *Classifier) resolve(m *sim.Machine) error {
	if c.indices != nil && len(c.indices) == len(c.FeatureNames) {
		return nil
	}
	c.indices = make([]int, len(c.FeatureNames))
	for i, name := range c.FeatureNames {
		cc, ok := m.Reg.Lookup(name)
		if !ok {
			return fmt.Errorf("perspectron: counter %q not present on this machine", name)
		}
		c.indices[i] = cc.Index()
	}
	return nil
}

// classScores computes per-class normalized outputs for one raw delta.
func (c *Classifier) classScores(raw []float64) []float64 {
	bits := make([]float64, len(c.indices))
	for i, j := range c.indices {
		if mx := c.GlobalMax[i]; mx > 0 && raw[j]/mx >= 0.5 {
			bits[i] = 1
		}
	}
	out := make([]float64, len(c.Classes))
	for ci := range c.Classes {
		s := c.Biases[ci]
		norm := abs(c.Biases[ci])
		w := c.Weights[ci]
		for i, b := range bits {
			if b != 0 {
				s += w[i]
				norm += abs(w[i])
			}
		}
		if norm > 0 {
			out[ci] = s / norm
		}
	}
	return out
}

// Classification is the outcome of classifying one workload run.
type Classification struct {
	Workload string
	// Votes counts the per-interval argmax classes.
	Votes map[string]int
	// Class is the majority class across intervals.
	Class string
	// Confidence is Votes[Class] / total intervals.
	Confidence float64
}

// Classify runs the workload and names its class by per-interval majority
// vote.
func (c *Classifier) Classify(w Workload, maxInsts uint64, seed int64) (*Classification, error) {
	m := sim.NewMachine(sim.DefaultConfig())
	if err := c.resolve(m); err != nil {
		return nil, err
	}
	vecs := m.Run(w.Stream(rand.New(rand.NewSource(seed))), maxInsts, c.Interval)
	if len(vecs) == 0 {
		return nil, fmt.Errorf("perspectron: workload produced no samples")
	}
	res := &Classification{Workload: w.Info().Name, Votes: map[string]int{}}
	for _, raw := range vecs {
		scores := c.classScores(raw)
		best := 0
		for i := 1; i < len(scores); i++ {
			if scores[i] > scores[best] {
				best = i
			}
		}
		res.Votes[c.Classes[best]]++
	}
	for class, n := range res.Votes {
		if n > res.Votes[res.Class] || res.Class == "" {
			res.Class = class
		}
	}
	res.Confidence = float64(res.Votes[res.Class]) / float64(len(vecs))
	return res, nil
}

// Save serializes the classifier as JSON.
func (c *Classifier) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// LoadClassifier reads a classifier written by Save.
func LoadClassifier(r io.Reader) (*Classifier, error) {
	var c Classifier
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("perspectron: decoding classifier: %w", err)
	}
	if len(c.Weights) != len(c.Classes) || len(c.Biases) != len(c.Classes) {
		return nil, fmt.Errorf("perspectron: corrupt classifier")
	}
	return &c, nil
}
