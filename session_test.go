package perspectron

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSessionStreamsVerdicts(t *testing.T) {
	det := sharedDetector(t)
	ctx := context.Background()
	s, err := NewSession(ctx, det, nil, SessionConfig{
		Workload: AttackByName("spectreV1", "fr"),
		MaxInsts: 80_000,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	flagged := 0
	n := 0
	for {
		v, ok := s.Next(ctx)
		if !ok {
			break
		}
		if v.Sample != n {
			t.Fatalf("sample %d out of order (want %d)", v.Sample, n)
		}
		if v.Coverage <= 0 || v.Coverage > 1 {
			t.Fatalf("coverage %v out of range", v.Coverage)
		}
		if v.Flagged {
			flagged++
		}
		n++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("no verdicts")
	}
	if flagged == 0 {
		t.Fatalf("spectreV1 never flagged across %d verdicts", n)
	}
	// The streaming path and the batch Monitor agree on detection.
	rep, err := det.Monitor(AttackByName("spectreV1", "fr"), 80_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatalf("Monitor disagrees with session on detection")
	}
}

func TestSessionWithClassifier(t *testing.T) {
	det := sharedDetector(t)
	cls := sharedClassifier(t)
	ctx := context.Background()
	s, err := NewSession(ctx, det, cls, SessionConfig{
		Workload: AttackByName("flush+reload", ""),
		MaxInsts: 60_000,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	votes := map[string]int{}
	for {
		v, ok := s.Next(ctx)
		if !ok {
			break
		}
		if v.Class == "" {
			t.Fatalf("classifier session produced empty class")
		}
		votes[v.Class]++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if votes["flush_reload"] == 0 {
		t.Fatalf("flush+reload never voted flush_reload: %v", votes)
	}
}

// TestSessionsShareModelConcurrently is the thread-safety contract behind
// the serving runtime: many sessions score against ONE detector and ONE
// classifier simultaneously. Run under -race this proves scoreWith /
// classScoresWith never write shared model state.
func TestSessionsShareModelConcurrently(t *testing.T) {
	det := sharedDetector(t)
	cls := sharedClassifier(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s, err := NewSession(ctx, det, cls, SessionConfig{
				Workload: AttackByName("spectreV1", "fr"),
				MaxInsts: 40_000,
				Seed:     seed,
			})
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			for {
				if _, ok := s.Next(ctx); !ok {
					break
				}
			}
			errs <- s.Err()
		}(int64(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSessionNextDeadline(t *testing.T) {
	det := sharedDetector(t)
	s, err := NewSession(context.Background(), det, nil, SessionConfig{
		Workload: AttackByName("spectreV1", "fr"),
		MaxInsts: 40_000,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// An already-expired per-sample deadline: Next gives up immediately and
	// the ctx error distinguishes it from end-of-run.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if v, ok := s.Next(expired); ok {
		t.Fatalf("Next returned verdict %+v under expired ctx", v)
	}
	if expired.Err() == nil {
		t.Fatalf("expired ctx reports no error")
	}
	// The session survives a missed deadline: a live ctx still drains it.
	live, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	n := 0
	for {
		_, ok := s.Next(live)
		if !ok {
			break
		}
		n++
	}
	if live.Err() != nil {
		t.Fatalf("drain hit the long deadline")
	}
	if n == 0 {
		t.Fatalf("session dead after missed deadline")
	}
}

func TestMonitorCtxCancelled(t *testing.T) {
	det := sharedDetector(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := det.MonitorCtx(ctx, AttackByName("spectreV1", "fr"), 40_000, 5); err == nil {
		t.Fatalf("cancelled MonitorCtx returned no error")
	}
	if _, err := sharedClassifier(t).ClassifyCtx(ctx, AttackByName("flush+reload", ""), 40_000, 5); err == nil {
		t.Fatalf("cancelled ClassifyCtx returned no error")
	}
}

func TestServeModeString(t *testing.T) {
	cases := map[ServeMode]string{
		ModeClassifier: "classifier",
		ModeDetector:   "detector",
		ModeThreshold:  "threshold",
		ServeMode(9):   "mode(9)",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("ServeMode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestNewSessionErrors(t *testing.T) {
	if _, err := NewSession(context.Background(), nil, nil, SessionConfig{Workload: BenignWorkloads()[0]}); err == nil {
		t.Fatalf("model-less session accepted")
	}
	if _, err := NewSession(context.Background(), sharedDetector(t), nil, SessionConfig{}); err == nil {
		t.Fatalf("workload-less session accepted")
	}
}
