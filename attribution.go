package perspectron

// Per-verdict feature attribution: the forensic half of the serving path.
// The detector is a linear perceptron over binarized counters, so a
// verdict's score decomposes exactly into its fired weights — the invariant
// footprint the paper reads off the learned weights is equally readable off
// any single decision. AttributeFired reproduces the packed scorer's margin
// bit-for-bit from just the fired slot list, which is why verdict records
// need only stamp the (small) fired set for `perspectron explain` to
// re-derive the full attribution offline from the checkpoint the verdict's
// Version names.

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"perspectron/internal/encoding"
)

// Contribution is one feature's exact share of a verdict's normalized
// score: the detector margin is (bias + Σ w_fired) / (|bias| + Σ|w_fired|),
// so each fired feature contributes Weight to the numerator and |Weight| to
// the norm. Share is Weight divided by that verdict's norm — the signed
// fraction of the final score this feature is responsible for (all Shares
// plus the bias share sum to the unclamped score).
type Contribution struct {
	// Slot is the feature's index in the model's FeatureNames/Weights.
	Slot int `json:"slot"`
	// Feature is the counter name at Slot.
	Feature string `json:"feature"`
	// Weight is the learned weight that fired.
	Weight float64 `json:"weight"`
	// Share is Weight / (|bias| + Σ|w_fired|), this verdict's normalization.
	Share float64 `json:"share"`
}

// AttributeFired recomputes the normalized score and per-feature
// attribution for a sample on which exactly the given feature slots fired.
// The summation reproduces encoding.MarginPacked ascending-slot order
// exactly, so the returned score is bit-identical to the one the serving
// scorer logged for the same fired set (pinned by TestAttributionMatchesScorer).
// attr holds the top-k contributions by |Weight| (ties broken by slot
// ascending); k <= 0 returns all fired features. fired may be unsorted; it
// is not modified.
func (d *Detector) AttributeFired(fired []int, k int) (score float64, attr []Contribution, err error) {
	slots := make([]int, len(fired))
	copy(slots, fired)
	sort.Ints(slots)
	for i, slot := range slots {
		if slot < 0 || slot >= len(d.Weights) {
			return 0, nil, fmt.Errorf("perspectron: fired slot %d outside model width %d", slot, len(d.Weights))
		}
		if i > 0 && slots[i-1] == slot {
			return 0, nil, fmt.Errorf("perspectron: fired slot %d duplicated", slot)
		}
	}
	s := d.Bias
	norm := math.Abs(d.Bias)
	for _, slot := range slots {
		s += d.Weights[slot]
		norm += math.Abs(d.Weights[slot])
	}
	if norm == 0 {
		score = 0
	} else {
		score = s / norm
		if score > 1 {
			score = 1
		} else if score < -1 {
			score = -1
		}
	}
	attr = make([]Contribution, len(slots))
	for i, slot := range slots {
		c := Contribution{Slot: slot, Weight: d.Weights[slot]}
		if slot < len(d.FeatureNames) {
			c.Feature = d.FeatureNames[slot]
		}
		if norm != 0 {
			c.Share = c.Weight / norm
		}
		attr[i] = c
	}
	sort.SliceStable(attr, func(i, j int) bool {
		ai, aj := math.Abs(attr[i].Weight), math.Abs(attr[j].Weight)
		if ai != aj {
			return ai > aj
		}
		return attr[i].Slot < attr[j].Slot
	})
	if k > 0 && k < len(attr) {
		attr = attr[:k]
	}
	return score, attr, nil
}

// LastFired returns the detector feature slots that fired on the sample
// most recently passed to Detect, ascending, appended to dst (pass nil to
// allocate). Valid until the next Detect call; empty before the first one
// or when the scorer has no detector.
func (r *RawScorer) LastFired(dst []int) []int {
	if r.det == nil {
		return dst
	}
	return appendSetBits(dst, r.detBits)
}

// appendSetBits appends the set-bit positions of v to dst, ascending — the
// same TrailingZeros64 walk MarginPacked scores with.
func appendSetBits(dst []int, v encoding.BitVec) []int {
	for wi, word := range v {
		base := wi << 6
		for word != 0 {
			dst = append(dst, base+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	return dst
}

// Attribution explains the sample most recently passed to Detect: the fired
// slot set (ascending) and the top-k contributions, exactly consistent with
// the score Detect returned. It costs one bit walk plus a sort over the
// fired set — call it only for verdicts worth explaining (flagged samples,
// a sampled fraction of benign ones). Errors before any Detect call or
// without a detector.
func (r *RawScorer) Attribution(k int) (fired []int, attr []Contribution, err error) {
	if r.det == nil {
		return nil, nil, fmt.Errorf("perspectron: attribution needs a detector")
	}
	if r.detBits == nil {
		return nil, nil, fmt.Errorf("perspectron: attribution before any Detect call")
	}
	fired = appendSetBits(nil, r.detBits)
	_, attr, err = r.det.AttributeFired(fired, k)
	if err != nil {
		return nil, nil, err
	}
	return fired, attr, nil
}

// Attribution explains the verdict most recently returned by Next: the
// detector-fired slot set and top-k contributions for that sample's raw
// vector, consistent with the Verdict's Score. Errors before the first Next
// or without a detector.
func (s *Session) Attribution(k int) (fired []int, attr []Contribution, err error) {
	if s.det == nil {
		return nil, nil, fmt.Errorf("perspectron: attribution needs a detector")
	}
	if s.lastRaw == nil {
		return nil, nil, fmt.Errorf("perspectron: attribution before any Next call")
	}
	bits, _ := s.det.encoding().Bits(s.lastRaw, s.detIdx, s.lastPoint, nil)
	for slot, f := range bits {
		if f {
			fired = append(fired, slot)
		}
	}
	_, attr, err = s.det.AttributeFired(fired, k)
	if err != nil {
		return nil, nil, err
	}
	return fired, attr, nil
}
