package perspectron

// Checkpointing: the serialized Detector/Classifier JSON carries an embedded
// SHA-256 self-checksum (see the Checksum fields), and the *File wrappers
// here write atomically — temp file in the destination directory, fsync,
// rename — so a crashed writer never leaves a torn checkpoint where a
// long-running service's hot-reload watcher (internal/serve) could pick it
// up. The checksum's leading hex digits double as a content version: two
// checkpoints with the same weights share a version, and the serving
// runtime's /healthz reports which version is live.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"perspectron/internal/telemetry"
)

// checksumPrefix tags the checksum scheme, leaving room to evolve it.
const checksumPrefix = "sha256:"

// checksumJSON renders v in canonical (compact) JSON and returns its tagged
// SHA-256. Encoding is deterministic — struct field order and Go's shortest
// float64 round-trip formatting — so decode→re-encode is a fixed point and
// the checksum survives whitespace-only rewrites.
func checksumJSON(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return checksumPrefix + fmt.Sprintf("%x", sum), nil
}

// verifyChecksum checks a stored checkpoint checksum against the canonical
// re-encoding of the decoded payload (with its Checksum field cleared). An
// empty stored checksum is the legacy pre-checksum format: accepted, but
// counted and warned about so operators notice unprotected model files.
func verifyChecksum(kind, stored string, payload any) error {
	if stored == "" {
		telemetry.Get().Counter(telemetry.Name("perspectron_checkpoint_legacy_total", "kind", kind)).Inc()
		fmt.Fprintf(os.Stderr, "perspectron: warning: loading legacy checksum-less %s checkpoint\n", kind)
		return nil
	}
	computed, err := checksumJSON(payload)
	if err != nil {
		return fmt.Errorf("perspectron: re-encoding %s for checksum: %w", kind, err)
	}
	if computed != stored {
		return fmt.Errorf("perspectron: %s checkpoint corrupt: checksum mismatch (stored %s, computed %s)",
			kind, short(stored), short(computed))
	}
	return nil
}

// short abbreviates a tagged checksum for error messages.
func short(sum string) string {
	if len(sum) > len(checksumPrefix)+12 {
		return sum[:len(checksumPrefix)+12] + "…"
	}
	return sum
}

// Version returns the detector checkpoint's content version: the first 12
// hex digits of its checksum, or "unversioned" for a detector that has never
// been saved or loaded.
func (d *Detector) Version() string { return version(d.Checksum) }

// Version returns the classifier checkpoint's content version.
func (c *Classifier) Version() string { return version(c.Checksum) }

func version(checksum string) string {
	s := strings.TrimPrefix(checksum, checksumPrefix)
	if len(s) < 12 {
		return "unversioned"
	}
	return s[:12]
}

// writeFileAtomic writes the serialization produced by save to path via a
// temp file + fsync + rename in path's directory, so readers (including the
// serve watcher polling the file) only ever observe a complete checkpoint.
func writeFileAtomic(path string, save func(w *os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	err = save(tmp)
	if serr := tmp.Sync(); err == nil {
		err = serr
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SaveFile writes the detector checkpoint to path atomically.
func (d *Detector) SaveFile(path string) error {
	return writeFileAtomic(path, func(w *os.File) error { return d.Save(w) })
}

// LoadFile reads and verifies a detector checkpoint written by SaveFile (or
// any Save output on disk).
func LoadFile(path string) (*Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// SaveFile writes the classifier checkpoint to path atomically.
func (c *Classifier) SaveFile(path string) error {
	return writeFileAtomic(path, func(w *os.File) error { return c.Save(w) })
}

// LoadClassifierFile reads and verifies a classifier checkpoint written by
// SaveFile.
func LoadClassifierFile(path string) (*Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadClassifier(f)
}
