package perspectron

// Checkpointing: the serialized Detector/Classifier JSON carries an embedded
// SHA-256 self-checksum (see the Checksum fields), and the *File wrappers
// here write atomically — temp file in the destination directory, fsync,
// rename — so a crashed writer never leaves a torn checkpoint where a
// long-running service's hot-reload watcher (internal/serve) could pick it
// up. The checksum's leading hex digits double as a content version: two
// checkpoints with the same weights share a version, and the serving
// runtime's /healthz reports which version is live.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"perspectron/internal/diskfaults"
	"perspectron/internal/encoding"
	"perspectron/internal/perceptron"
	"perspectron/internal/telemetry"
)

// Lineage is a checkpoint's training provenance: which checkpoint it was
// trained from, how much data it has seen, the serialized optimizer state
// that lets training resume bit-identically, the training-time feature
// firing-rate snapshot the shadow trainer measures drift against, and the
// eval scores the promotion gate stamped when it went live. Together the
// Parent links form a lineage chain from any promoted model back to its
// offline-trained ancestor.
type Lineage struct {
	// Parent is the full checksum of the checkpoint this one was trained
	// from; empty for a generation-zero offline fit.
	Parent string `json:"parent,omitempty"`
	// Generation counts promotions since the offline fit (parent chain
	// length).
	Generation int `json:"generation"`
	// TrainedSamples is the cumulative number of training samples this
	// model's weights have seen across all generations.
	TrainedSamples int `json:"trained_samples"`
	// Trainer is the serialized optimizer state (shuffle journal, epoch
	// and update counts) continual training resumes from.
	Trainer *perceptron.TrainerState `json:"trainer,omitempty"`
	// FeatureMeans is the per-selected-feature firing rate over the packed
	// training rows — the distribution snapshot drift is measured against.
	FeatureMeans []float64 `json:"feature_means,omitempty"`
	// Eval holds the golden-corpus scores the promotion gate measured for
	// this checkpoint when it was promoted (absent until then).
	Eval *EvalScores `json:"eval,omitempty"`
	// PromotedAt is the RFC 3339 promotion timestamp, absent until the
	// gate promotes the checkpoint.
	PromotedAt string `json:"promoted_at,omitempty"`
}

// Clone returns a deep copy so a stamped checkpoint cannot alias a live
// trainer's journal or a shared eval result.
func (l *Lineage) Clone() *Lineage {
	if l == nil {
		return nil
	}
	out := *l
	if l.Trainer != nil {
		st := l.Trainer.Clone()
		out.Trainer = &st
	}
	out.FeatureMeans = append([]float64(nil), l.FeatureMeans...)
	if l.Eval != nil {
		ev := *l.Eval
		out.Eval = &ev
	}
	return &out
}

// EvalScores is the tier-1 metric vector the promotion gate compares —
// classification quality on the held-out golden corpus at the detector's own
// threshold, plus threshold-free AUC.
type EvalScores struct {
	Samples   int     `json:"samples"`
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	FPR       float64 `json:"fpr"`
	F1        float64 `json:"f1"`
	AUC       float64 `json:"auc"`
}

// evalEpsilon absorbs float formatting round-trips when comparing metric
// vectors: a candidate scoring within it of the baseline counts as equal, so
// "no worse" promotes retrained-but-equivalent weights.
const evalEpsilon = 1e-12

// RegressionsAgainst lists the metrics on which e is strictly worse than
// base: lower Accuracy/Precision/Recall/AUC or higher FPR, beyond epsilon.
// An empty result means e is no worse than base on every gated metric. F1 is
// derived from Precision/Recall and intentionally not gated separately.
func (e EvalScores) RegressionsAgainst(base EvalScores) []string {
	var regs []string
	higher := []struct {
		name      string
		got, want float64
	}{
		{"accuracy", e.Accuracy, base.Accuracy},
		{"precision", e.Precision, base.Precision},
		{"recall", e.Recall, base.Recall},
		{"auc", e.AUC, base.AUC},
	}
	for _, m := range higher {
		if m.got < m.want-evalEpsilon {
			regs = append(regs, fmt.Sprintf("%s %.6f < %.6f", m.name, m.got, m.want))
		}
	}
	if e.FPR > base.FPR+evalEpsilon {
		regs = append(regs, fmt.Sprintf("fpr %.6f > %.6f", e.FPR, base.FPR))
	}
	return regs
}

// firingRates returns the per-feature firing rate (fraction of rows with the
// bit set) over packed 0/1 rows — the training-distribution snapshot stored
// in a checkpoint's lineage.
func firingRates(X []encoding.BitVec, features int) []float64 {
	rates := make([]float64, features)
	if len(X) == 0 {
		return rates
	}
	for _, row := range X {
		for j := 0; j < features; j++ {
			if row.Get(j) {
				rates[j]++
			}
		}
	}
	for j := range rates {
		rates[j] /= float64(len(X))
	}
	return rates
}

// checksumPrefix tags the checksum scheme, leaving room to evolve it.
const checksumPrefix = "sha256:"

// checksumJSON renders v in canonical (compact) JSON and returns its tagged
// SHA-256. Encoding is deterministic — struct field order and Go's shortest
// float64 round-trip formatting — so decode→re-encode is a fixed point and
// the checksum survives whitespace-only rewrites.
func checksumJSON(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return checksumPrefix + fmt.Sprintf("%x", sum), nil
}

// verifyChecksum checks a stored checkpoint checksum against the canonical
// re-encoding of the decoded payload (with its Checksum field cleared). An
// empty stored checksum is the legacy pre-checksum format: accepted, but
// counted and warned about so operators notice unprotected model files.
func verifyChecksum(kind, stored string, payload any) error {
	if stored == "" {
		telemetry.Get().Counter(telemetry.Name("perspectron_checkpoint_legacy_total", "kind", kind)).Inc()
		fmt.Fprintf(os.Stderr, "perspectron: warning: loading legacy checksum-less %s checkpoint\n", kind)
		return nil
	}
	computed, err := checksumJSON(payload)
	if err != nil {
		return fmt.Errorf("perspectron: re-encoding %s for checksum: %w", kind, err)
	}
	if computed != stored {
		return fmt.Errorf("perspectron: %s checkpoint corrupt: checksum mismatch (stored %s, computed %s)",
			kind, short(stored), short(computed))
	}
	return nil
}

// short abbreviates a tagged checksum for error messages.
func short(sum string) string {
	if len(sum) > len(checksumPrefix)+12 {
		return sum[:len(checksumPrefix)+12] + "…"
	}
	return sum
}

// Version returns the detector checkpoint's content version: the first 12
// hex digits of its checksum, or "unversioned" for a detector that has never
// been saved or loaded.
func (d *Detector) Version() string { return version(d.Checksum) }

// Version returns the classifier checkpoint's content version.
func (c *Classifier) Version() string { return version(c.Checksum) }

func version(checksum string) string {
	s := strings.TrimPrefix(checksum, checksumPrefix)
	if len(s) < 12 {
		return "unversioned"
	}
	return s[:12]
}

// writeFileAtomic writes the serialization produced by save to path via a
// temp file + fsync + rename + parent-directory fsync, so readers (including
// the serve watcher polling the file) only ever observe a complete checkpoint
// and the rename itself survives power loss. The write path routes through
// the process-wide disk-fault injector (site "checkpoint") when one is armed.
func writeFileAtomic(path string, save func(w io.Writer) error) error {
	return diskfaults.WriteFileAtomic(diskfaults.SiteCheckpoint, path, save)
}

// SaveFile writes the detector checkpoint to path atomically.
func (d *Detector) SaveFile(path string) error {
	return writeFileAtomic(path, func(w io.Writer) error { return d.Save(w) })
}

// LoadFile reads and verifies a detector checkpoint written by SaveFile (or
// any Save output on disk).
func LoadFile(path string) (*Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// SaveFile writes the classifier checkpoint to path atomically.
func (c *Classifier) SaveFile(path string) error {
	return writeFileAtomic(path, func(w io.Writer) error { return c.Save(w) })
}

// LoadClassifierFile reads and verifies a classifier checkpoint written by
// SaveFile.
func LoadClassifierFile(path string) (*Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadClassifier(f)
}
