package perspectron

import (
	"context"
	"math"
	"testing"
)

// synthDetector builds a tiny hand-weighted detector for exact-math cases.
func synthDetector() *Detector {
	return &Detector{
		FeatureNames: []string{"a", "b", "c", "d"},
		Weights:      []float64{0.5, -0.25, 1.0, -0.125},
		Bias:         0.25,
		Threshold:    0.25,
		Interval:     10_000,
		GlobalMax:    []float64{1, 1, 1, 1},
	}
}

func TestAttributeFiredExactMath(t *testing.T) {
	det := synthDetector()
	// Fired slots 0 and 2 (given unsorted): score must reproduce the
	// MarginPacked ascending sum (0.25 + 0.5 + 1.0) / (0.25 + 0.5 + 1.0).
	score, attr, err := det.AttributeFired([]int{2, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantNorm := 0.25 + 0.5 + 1.0
	if want := (0.25 + 0.5 + 1.0) / wantNorm; score != want {
		t.Fatalf("score = %v, want %v", score, want)
	}
	if len(attr) != 2 {
		t.Fatalf("attr len = %d, want 2", len(attr))
	}
	// Top contribution is slot 2 (|1.0| > |0.5|).
	if attr[0].Slot != 2 || attr[0].Feature != "c" || attr[0].Weight != 1.0 {
		t.Fatalf("attr[0] = %+v", attr[0])
	}
	if attr[1].Slot != 0 || attr[1].Feature != "a" {
		t.Fatalf("attr[1] = %+v", attr[1])
	}
	if got, want := attr[0].Share, 1.0/wantNorm; got != want {
		t.Fatalf("share = %v, want %v", got, want)
	}
	// Shares plus bias share reconstruct the (unclamped) score exactly for
	// this small sum.
	total := det.Bias / wantNorm
	for _, c := range attr {
		total += c.Share
	}
	if math.Abs(total-score) > 1e-15 {
		t.Fatalf("share sum %v != score %v", total, score)
	}
}

func TestAttributeFiredTopKAndEdgeCases(t *testing.T) {
	det := synthDetector()
	_, attr, err := det.AttributeFired([]int{0, 1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(attr) != 2 || attr[0].Slot != 2 || attr[1].Slot != 0 {
		t.Fatalf("top-2 = %+v", attr)
	}
	// Empty fired set: score is bias/|bias| clamped = 1 for positive bias.
	score, attr, err := det.AttributeFired(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if score != 1 || len(attr) != 0 {
		t.Fatalf("empty fired: score=%v attr=%v", score, attr)
	}
	if _, _, err := det.AttributeFired([]int{4}, 0); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, _, err := det.AttributeFired([]int{-1}, 0); err == nil {
		t.Fatal("negative slot accepted")
	}
	if _, _, err := det.AttributeFired([]int{1, 1}, 0); err == nil {
		t.Fatal("duplicate slot accepted")
	}
	// Zero norm (zero bias, no fired) scores 0.
	zero := &Detector{FeatureNames: []string{"a"}, Weights: []float64{1}, GlobalMax: []float64{1}}
	if score, _, err := zero.AttributeFired(nil, 0); err != nil || score != 0 {
		t.Fatalf("zero-norm: score=%v err=%v", score, err)
	}
}

// TestAttributionMatchesScorer pins the tentpole invariant: for a trained
// detector on a real attack stream, AttributeFired over RawScorer.LastFired
// reproduces Detect's score bit-for-bit, and RawScorer/Session agree.
func TestAttributionMatchesScorer(t *testing.T) {
	det := sharedDetector(t)
	scorer, err := NewRawScorer(det, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sess, err := NewSession(ctx, det, nil, SessionConfig{
		Workload: AttackByName("spectreV1", "fr"),
		MaxInsts: 60_000,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if _, _, err := scorer.Attribution(3); err == nil {
		t.Fatal("attribution before Detect accepted")
	}

	samples := 0
	for {
		rs, ok := sess.NextRaw(ctx)
		if !ok {
			break
		}
		samples++
		score, _, _ := scorer.Detect(rs)
		fired, attr, err := scorer.Attribution(0)
		if err != nil {
			t.Fatal(err)
		}
		reScore, reAttr, err := det.AttributeFired(fired, 0)
		if err != nil {
			t.Fatal(err)
		}
		if reScore != score {
			t.Fatalf("sample %d: AttributeFired score %v != Detect score %v", rs.Sample, reScore, score)
		}
		if len(reAttr) != len(attr) || len(attr) != len(fired) {
			t.Fatalf("sample %d: attr lengths diverge: %d vs %d (fired %d)",
				rs.Sample, len(reAttr), len(attr), len(fired))
		}
		for i := range attr {
			if attr[i] != reAttr[i] {
				t.Fatalf("sample %d: attr[%d] %+v != %+v", rs.Sample, i, attr[i], reAttr[i])
			}
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] <= fired[i-1] {
				t.Fatalf("fired not ascending: %v", fired)
			}
		}
	}
	if samples == 0 {
		t.Fatal("no samples produced")
	}
}

// TestSessionAttributionMatchesVerdict drives Session.Next and checks the
// post-hoc attribution reproduces each verdict's score.
func TestSessionAttributionMatchesVerdict(t *testing.T) {
	det := sharedDetector(t)
	ctx := context.Background()
	sess, err := NewSession(ctx, det, nil, SessionConfig{
		Workload: AttackByName("spectreV1", "fr"),
		MaxInsts: 60_000,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if _, _, err := sess.Attribution(3); err == nil {
		t.Fatal("attribution before Next accepted")
	}
	n := 0
	for {
		v, ok := sess.Next(ctx)
		if !ok {
			break
		}
		n++
		fired, attr, err := sess.Attribution(0)
		if err != nil {
			t.Fatal(err)
		}
		score, _, err := det.AttributeFired(fired, 0)
		if err != nil {
			t.Fatal(err)
		}
		if score != v.Score {
			t.Fatalf("sample %d: attribution score %v != verdict score %v", v.Sample, score, v.Score)
		}
		if len(attr) != len(fired) {
			t.Fatalf("attr/fired length mismatch: %d vs %d", len(attr), len(fired))
		}
	}
	if n == 0 {
		t.Fatal("no verdicts produced")
	}
}
