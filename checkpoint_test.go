package perspectron

// Checkpoint integrity: the embedded SHA-256 checksum, the legacy
// (checksum-less) compatibility path, the atomic SaveFile/LoadFile wrappers
// and the content-version view the serving runtime's hot-reload uses.

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perspectron/internal/telemetry"
)

func TestChecksumEmbeddedAndVerified(t *testing.T) {
	det := sharedDetector(t)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"checksum": "sha256:`) {
		t.Fatalf("saved detector carries no checksum field")
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Checksum == "" || back.Checksum != det.Checksum {
		t.Fatalf("loaded checksum %q != saved %q", back.Checksum, det.Checksum)
	}
	if v := back.Version(); len(v) != 12 {
		t.Fatalf("Version() = %q, want 12 hex digits", v)
	}
}

// TestChecksumDetectsMutation flips a single stored value while leaving the
// checksum in place: Load must fail with the checkpoint-corrupt error, not a
// field-level validation message.
func TestChecksumDetectsMutation(t *testing.T) {
	var buf bytes.Buffer
	if err := sharedDetector(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	flipped := strings.Replace(s, `"threshold": 0.25`, `"threshold": 0.26`, 1)
	if flipped == s {
		t.Fatalf("test setup: threshold literal not found in %q…", s[:80])
	}
	_, err := Load(strings.NewReader(flipped))
	if err == nil || !strings.Contains(err.Error(), "checkpoint corrupt") {
		t.Fatalf("bit-flipped checkpoint accepted (err=%v)", err)
	}
}

func TestLegacyChecksumlessDetectorLoadsWithWarning(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	series := telemetry.Name("perspectron_checkpoint_legacy_total", "kind", "detector")
	before := reg.CounterValue(series)

	det := sharedDetector(t)
	legacy := *det
	legacy.Checksum = ""
	b, err := json.Marshal(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("legacy checksum-less detector rejected: %v", err)
	}
	if back.Checksum == "" || back.Version() == "unversioned" {
		t.Fatalf("legacy load did not adopt a computed content version")
	}
	if got := reg.CounterValue(series); got != before+1 {
		t.Fatalf("legacy counter advanced by %d, want 1", got-before)
	}
}

func TestClassifierChecksumRoundTripAndCorruption(t *testing.T) {
	c := sharedClassifier(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"checksum":"sha256:`) {
		t.Fatalf("saved classifier carries no checksum field")
	}
	back, err := LoadClassifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Version() != c.Version() || len(back.Version()) != 12 {
		t.Fatalf("classifier version mismatch: %q vs %q", back.Version(), c.Version())
	}

	s := buf.String()
	flipped := strings.Replace(s, `"interval":10000`, `"interval":10001`, 1)
	if flipped == s {
		t.Fatalf("test setup: interval literal not found")
	}
	if _, err := LoadClassifier(strings.NewReader(flipped)); err == nil ||
		!strings.Contains(err.Error(), "checkpoint corrupt") {
		t.Fatalf("bit-flipped classifier accepted (err=%v)", err)
	}

	// Truncation dies in the decoder.
	if _, err := LoadClassifier(strings.NewReader(s[:len(s)/2])); err == nil {
		t.Fatalf("truncated classifier accepted")
	}
}

func TestSaveFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "det.json")
	det := sharedDetector(t)
	if err := det.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version() != det.Version() {
		t.Fatalf("file round trip changed version: %q vs %q", back.Version(), det.Version())
	}
	// No orphaned temp files next to the checkpoint.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("orphaned temp file left behind: %s", e.Name())
		}
	}

	// A distinct model has a distinct content version.
	mod := *det
	mod.Threshold = det.Threshold + 0.01
	path2 := filepath.Join(dir, "det2.json")
	if err := mod.SaveFile(path2); err != nil {
		t.Fatal(err)
	}
	back2, err := LoadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Version() == back.Version() {
		t.Fatalf("different weights share content version %q", back.Version())
	}

	cls := sharedClassifier(t)
	cpath := filepath.Join(dir, "cls.json")
	if err := cls.SaveFile(cpath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClassifierFile(cpath); err != nil {
		t.Fatal(err)
	}
}

func TestSaveFileFailureLeavesOldCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "det.json")
	det := sharedDetector(t)
	if err := det.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A detector Save refuses to serialize must not touch the existing file.
	bad := *det
	bad.Weights = append([]float64{}, det.Weights...)
	bad.Weights[0] = math.NaN()
	if err := bad.SaveFile(path); err == nil {
		t.Fatalf("NaN detector saved")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(good, after) {
		t.Fatalf("failed save clobbered the existing checkpoint")
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("failed save left temp file %s", e.Name())
		}
	}
}
