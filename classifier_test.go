package perspectron

import (
	"bytes"
	"testing"
)

var cachedClassifier *Classifier

func sharedClassifier(t *testing.T) *Classifier {
	t.Helper()
	if cachedClassifier == nil {
		opts := DefaultOptions()
		opts.MaxInsts = 150_000
		opts.Runs = 1
		c, err := TrainClassifier(TrainingWorkloads(), opts)
		if err != nil {
			t.Fatal(err)
		}
		cachedClassifier = c
	}
	return cachedClassifier
}

func TestClassifierClasses(t *testing.T) {
	c := sharedClassifier(t)
	if len(c.Classes) < 10 {
		t.Fatalf("classes = %v", c.Classes)
	}
	hasBenign := false
	for _, cl := range c.Classes {
		if cl == "benign" {
			hasBenign = true
		}
	}
	if !hasBenign {
		t.Fatalf("no benign class")
	}
}

func TestClassifierNamesAttacks(t *testing.T) {
	c := sharedClassifier(t)
	cases := map[string]string{
		"flush+flush":  "flush_flush",
		"flush+reload": "flush_reload",
		"prime+probe":  "prime_probe",
		"meltdown":     "meltdown",
	}
	for name, wantClass := range cases {
		res, err := c.Classify(AttackByName(name, "fr"), 80_000, 31)
		if err != nil {
			t.Fatal(err)
		}
		if res.Class != wantClass {
			t.Errorf("%s classified as %q (votes %v), want %q",
				name, res.Class, res.Votes, wantClass)
		}
	}
}

func TestClassifierNamesBenign(t *testing.T) {
	c := sharedClassifier(t)
	res, err := c.Classify(BenignWorkloads()[0], 60_000, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != "benign" {
		t.Fatalf("bzip2 classified as %q (votes %v)", res.Class, res.Votes)
	}
	if res.Confidence < 0.8 {
		t.Fatalf("benign confidence %.2f", res.Confidence)
	}
}

func TestClassifierSaveLoad(t *testing.T) {
	c := sharedClassifier(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Classify(AttackByName("flush+flush", ""), 60_000, 33)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != "flush_flush" {
		t.Fatalf("loaded classifier names flush+flush as %q", res.Class)
	}
}

func TestLoadClassifierErrors(t *testing.T) {
	if _, err := LoadClassifier(bytes.NewBufferString("{")); err == nil {
		t.Fatalf("truncated JSON accepted")
	}
	if _, err := LoadClassifier(bytes.NewBufferString(`{"classes":["a"],"weights":[]}`)); err == nil {
		t.Fatalf("corrupt classifier accepted")
	}
}

func TestTrainClassifierErrors(t *testing.T) {
	if _, err := TrainClassifier(nil, DefaultOptions()); err == nil {
		t.Fatalf("empty corpus accepted")
	}
}
