package perspectron_test

import (
	"fmt"
	"log"

	"perspectron"
)

// quickOptions keeps the examples fast.
func quickOptions() perspectron.Options {
	opts := perspectron.DefaultOptions()
	opts.MaxInsts = 80_000
	opts.Runs = 1
	return opts
}

// ExampleTrain shows the basic train-and-monitor loop.
func ExampleTrain() {
	det, err := perspectron.Train(perspectron.TrainingWorkloads(), quickOptions())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := det.Monitor(perspectron.AttackByName("flush+reload", ""), 50_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("features:", det.NumFeatures())
	fmt.Println("detected:", rep.Detected)
	// Output:
	// features: 106
	// detected: true
}

// ExampleDetector_MonitorWithPolicy shows the §IV-G deployment loop: the
// detector's confidence drives real hardware mitigations online.
func ExampleDetector_MonitorWithPolicy() {
	det, err := perspectron.Train(perspectron.TrainingWorkloads(), quickOptions())
	if err != nil {
		log.Fatal(err)
	}
	policy := perspectron.EscalationPolicy(0.25, 0.6, perspectron.MitigateFence)
	rep, err := det.MonitorWithPolicy(perspectron.AttackByName("spectreV1", "fr"), 50_000, 1, policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("detected:", rep.Detected)
	fmt.Println("channel closed:", rep.SpecLoadsBlocked > 0)
	// Output:
	// detected: true
	// channel closed: true
}

// ExampleTrainClassifier shows the multi-way mode naming an attack's
// category.
func ExampleTrainClassifier() {
	cls, err := perspectron.TrainClassifier(perspectron.TrainingWorkloads(), quickOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := cls.Classify(perspectron.AttackByName("prime+probe", ""), 50_000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("class:", res.Class)
	// Output:
	// class: prime_probe
}
