package perspectron

import (
	"bytes"
	"testing"
)

// incrementWorkloads is a small two-class fresh corpus for increment rounds.
func incrementWorkloads() []Workload {
	w := append([]Workload{}, BenignWorkloads()[:2]...)
	return append(w, AttackByName("spectreV1", "fr"), AttackByName("meltdown", "fr"))
}

func incrementOpts(seed int64) Options {
	opts := DefaultOptions()
	opts.MaxInsts = 60_000
	opts.Runs = 1
	opts.Seed = seed
	return opts
}

func TestTrainIncrementLineage(t *testing.T) {
	det := sharedDetector(t)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil { // stamp det.Checksum
		t.Fatal(err)
	}
	weightsBefore := append([]float64(nil), det.Weights...)

	child, stats, err := det.TrainIncrement(incrementWorkloads(), incrementOpts(777), 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples == 0 {
		t.Fatalf("no fresh samples trained")
	}
	if stats.Epochs < 1 || stats.Epochs > 5 {
		t.Fatalf("epochs = %d, want 1..5", stats.Epochs)
	}
	if len(stats.FiringRates) != det.NumFeatures() {
		t.Fatalf("firing rates cover %d of %d features", len(stats.FiringRates), det.NumFeatures())
	}
	if stats.Drift < 0 || stats.Drift > 1 {
		t.Fatalf("drift = %v, want [0,1]", stats.Drift)
	}
	if child.Lineage == nil {
		t.Fatalf("child has no lineage")
	}
	if child.Lineage.Parent != det.Checksum {
		t.Fatalf("child parent = %q, want %q", child.Lineage.Parent, det.Checksum)
	}
	if child.Lineage.Generation != 1 {
		t.Fatalf("child generation = %d, want 1", child.Lineage.Generation)
	}
	wantSamples := det.Lineage.TrainedSamples + stats.Samples
	if child.Lineage.TrainedSamples != wantSamples {
		t.Fatalf("trained samples = %d, want %d", child.Lineage.TrainedSamples, wantSamples)
	}
	if child.Lineage.Trainer == nil || child.Lineage.Trainer.Epochs != det.Lineage.Trainer.Epochs+stats.Epochs {
		t.Fatalf("trainer state not advanced: %+v", child.Lineage.Trainer)
	}
	if child.Interval != det.Interval || child.Threshold != det.Threshold {
		t.Fatalf("increment changed deployment configuration")
	}

	// The parent must be untouched, and the child must round-trip as a valid
	// checkpoint.
	for i, w := range det.Weights {
		if w != weightsBefore[i] {
			t.Fatalf("TrainIncrement mutated the parent's weights")
		}
	}
	var cbuf bytes.Buffer
	if err := child.Save(&cbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&cbuf); err != nil {
		t.Fatalf("child checkpoint does not round-trip: %v", err)
	}
}

// TestTrainIncrementDeterministic pins the resume contract at the detector
// level: two increments from the same parent over the same fresh corpus and
// seed must produce bit-identical children.
func TestTrainIncrementDeterministic(t *testing.T) {
	det := sharedDetector(t)
	a, _, err := det.TrainIncrement(incrementWorkloads(), incrementOpts(778), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := det.TrainIncrement(incrementWorkloads(), incrementOpts(778), 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bias != b.Bias {
		t.Fatalf("bias diverged: %v vs %v", a.Bias, b.Bias)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("W[%d] diverged: %v vs %v", i, a.Weights[i], b.Weights[i])
		}
	}
}

func TestTrainIncrementErrors(t *testing.T) {
	det := sharedDetector(t)
	if _, _, err := det.TrainIncrement(nil, DefaultOptions(), 5); err == nil {
		t.Fatalf("empty workload list accepted")
	}
	if _, _, err := det.TrainIncrement(BenignWorkloads()[:2], incrementOpts(779), 5); err == nil {
		t.Fatalf("single-class fresh corpus accepted")
	}
}
