package perspectron

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// mutate round-trips the shared detector through JSON, lets f corrupt the
// generic decoding, and returns Load's verdict on the re-encoded bytes. The
// embedded checksum is stripped so the corruption reaches the structural
// validator (with it left in place, every mutation would fail earlier with
// the generic checksum-mismatch error — TestChecksumDetectsMutation covers
// that path).
func mutate(t *testing.T, f func(m map[string]any)) error {
	t.Helper()
	var buf bytes.Buffer
	if err := sharedDetector(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	f(m)
	delete(m, "checksum")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	_, lerr := Load(bytes.NewReader(out))
	return lerr
}

func TestSaveLoadRoundTripStrict(t *testing.T) {
	det := sharedDetector(t)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()
	back, err := Load(bytes.NewReader(saved))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFeatures() != det.NumFeatures() ||
		back.Threshold != det.Threshold ||
		back.Interval != det.Interval ||
		len(back.GlobalMax) != len(det.GlobalMax) ||
		len(back.PointMax) != len(det.PointMax) {
		t.Fatalf("round trip lost configuration")
	}
	// Save → Load → Save is a fixed point.
	var buf2 bytes.Buffer
	if err := back.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, buf2.Bytes()) {
		t.Fatalf("second save differs from first")
	}

	// Truncated JSON.
	if _, err := Load(bytes.NewReader(saved[:len(saved)/2])); err == nil {
		t.Fatalf("truncated JSON accepted")
	}
	// A NaN weight cannot survive Save at all: encoding/json has no NaN
	// representation, so the writer side already refuses to emit one.
	nan := *det
	nan.Weights = append([]float64{}, det.Weights...)
	nan.Weights[0] = math.NaN()
	if err := nan.Save(&bytes.Buffer{}); err == nil {
		t.Fatalf("Save serialized a NaN weight")
	}
	// A writer that sneaks an out-of-range literal past JSON is rejected at
	// decode time; one that writes null (the usual NaN mangling) yields a
	// zero weight, which decodes — validate guards the rest (see
	// TestValidateDirect for the direct NaN/Inf rejects).
	spliced := strings.Replace(string(saved), "\"weights\": [", "\"weights\": [1e999, ", 1)
	if _, err := Load(strings.NewReader(spliced)); err == nil {
		t.Fatalf("out-of-range weight literal accepted")
	}
	// Mismatched PointMax row width.
	if err := mutate(t, func(m map[string]any) {
		rows := m["point_max"].([]any)
		row := rows[0].([]any)
		rows[0] = row[:len(row)-1]
	}); err == nil || !strings.Contains(err.Error(), "point-max row") {
		t.Fatalf("mismatched point-max width accepted (err=%v)", err)
	}
	// GlobalMax width mismatch.
	if err := mutate(t, func(m map[string]any) {
		gm := m["global_max"].([]any)
		m["global_max"] = gm[:len(gm)-1]
	}); err == nil || !strings.Contains(err.Error(), "global maxima") {
		t.Fatalf("mismatched global-max width accepted (err=%v)", err)
	}
	// Weight count mismatch.
	if err := mutate(t, func(m map[string]any) {
		w := m["weights"].([]any)
		m["weights"] = w[:len(w)-1]
	}); err == nil || !strings.Contains(err.Error(), "weights") {
		t.Fatalf("weight/feature mismatch accepted (err=%v)", err)
	}
	// Zero interval.
	if err := mutate(t, func(m map[string]any) { m["interval"] = 0 }); err == nil ||
		!strings.Contains(err.Error(), "interval") {
		t.Fatalf("zero interval accepted (err=%v)", err)
	}
	// Empty detector.
	if _, err := Load(strings.NewReader("{}")); err == nil {
		t.Fatalf("empty detector accepted")
	}
}

func TestValidateDirect(t *testing.T) {
	det := sharedDetector(t)
	if err := det.validate(); err != nil {
		t.Fatalf("trained detector invalid: %v", err)
	}
	bad := *det
	bad.Weights = append([]float64{}, det.Weights...)
	bad.Weights[0] = math.NaN()
	if err := bad.validate(); err == nil || !strings.Contains(err.Error(), "non-finite weight") {
		t.Fatalf("NaN weight accepted (err=%v)", err)
	}
	bad = *det
	bad.Bias = math.Inf(1)
	if err := bad.validate(); err == nil {
		t.Fatalf("infinite bias accepted")
	}
	bad = *det
	bad.GlobalMax = append([]float64{}, det.GlobalMax...)
	bad.GlobalMax[0] = math.NaN()
	if err := bad.validate(); err == nil || !strings.Contains(err.Error(), "global max") {
		t.Fatalf("NaN global max accepted (err=%v)", err)
	}
}

func TestAttackByNameTable(t *testing.T) {
	cases := []struct {
		name        string
		channel     string
		wantName    string
		wantChannel string
	}{
		// Channel-parameterized attacks pass the channel through.
		{"spectreV1", "fr", "spectreV1-fr", "fr"},
		{"spectreV1", "pp", "spectreV1-pp", "pp"},
		{"spectreV2", "ff", "spectreV2-ff", "ff"},
		{"spectreRSB", "fr", "spectreRSB-fr", "fr"},
		{"meltdown", "pp", "meltdown-pp", "pp"},
		{"cacheOut", "fr", "cacheOut-fr", "fr"},
		// Unknown channel names fall through to the default (fr).
		{"spectreV1", "bogus", "spectreV1-fr", "fr"},
		{"spectreV1", "", "spectreV1-fr", "fr"},
		// Fixed-channel attacks ignore the channel argument.
		{"breakingKSLR", "pp", "breakingKSLR", "fr"},
		{"flush+reload", "pp", "flush+reload", "fr"},
		{"flush+flush", "fr", "flush+flush", "ff"},
		{"prime+probe", "ff", "prime+probe", "pp"},
		// Beyond-paper attacks are reachable by name too.
		{"spectreV4", "fr", "spectreV4-fr", "fr"},
		{"rowhammer", "pp", "rowhammer", ""},
	}
	for _, tc := range cases {
		w := AttackByName(tc.name, tc.channel)
		if w == nil {
			t.Fatalf("AttackByName(%q, %q) = nil", tc.name, tc.channel)
		}
		info := w.Info()
		if info.Name != tc.wantName {
			t.Errorf("AttackByName(%q, %q).Name = %q, want %q", tc.name, tc.channel, info.Name, tc.wantName)
		}
		if info.Channel != tc.wantChannel {
			t.Errorf("AttackByName(%q, %q).Channel = %q, want %q", tc.name, tc.channel, info.Channel, tc.wantChannel)
		}
		if info.Label.String() != "malicious" {
			t.Errorf("AttackByName(%q, %q) not labelled malicious", tc.name, tc.channel)
		}
	}
	for _, unknown := range []string{"", "nope", "spectrev1", "SPECTREV1", "flush+probe"} {
		if AttackByName(unknown, "fr") != nil {
			t.Errorf("AttackByName(%q) returned non-nil", unknown)
		}
	}
}

func TestReportLeakBeforeSemantics(t *testing.T) {
	det := sharedDetector(t)

	// A benign run never flags: FirstFlag < 0 encodes "never flagged", and
	// LeakBefore stays false because nothing leaked.
	ben, err := det.Monitor(BenignWorkloads()[0], 40_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ben.Detected {
		t.Skipf("benign workload flagged under this quick detector; semantics untestable here")
	}
	if ben.FirstFlag >= 0 {
		t.Fatalf("undetected report has FirstFlag=%d, want negative", ben.FirstFlag)
	}
	if ben.LeakBefore {
		t.Fatalf("LeakBefore true without any leak")
	}
	if len(ben.LeakSamples) != 0 {
		t.Fatalf("benign run reported leaks: %v", ben.LeakSamples)
	}

	// An attack run: Detected iff FirstFlag >= 0; LeakBefore must agree
	// with its definition against LeakSamples.
	att, err := det.Monitor(AttackByName("spectreV1", "fr"), 60_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if att.Detected != (att.FirstFlag >= 0) {
		t.Fatalf("Detected=%v inconsistent with FirstFlag=%d", att.Detected, att.FirstFlag)
	}
	if len(att.LeakSamples) == 0 {
		t.Fatalf("spectreV1 never leaked in %d samples", len(att.Samples))
	}
	want := att.FirstFlag < 0 || att.LeakSamples[0] < att.FirstFlag
	if att.LeakBefore != want {
		t.Fatalf("LeakBefore=%v, want %v (FirstFlag=%d, first leak=%d)",
			att.LeakBefore, want, att.FirstFlag, att.LeakSamples[0])
	}
}

func TestMonitorCleanRunNotDegraded(t *testing.T) {
	det := sharedDetector(t)
	rep, err := det.Monitor(AttackByName("flush+reload", ""), 40_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("clean run reported degraded mode")
	}
	if rep.Coverage != 1 {
		t.Fatalf("clean run coverage = %v, want 1", rep.Coverage)
	}
}

// TestDropoutAcceptance is the PR's acceptance bar: with 20% random counter
// dropout injected, the detector still detects every training-set attack at
// the default threshold, and the report quantifies the degradation.
func TestDropoutAcceptance(t *testing.T) {
	det := sharedDetector(t)
	fc := FaultConfig{Seed: 99, Dropout: 0.2}
	for i, w := range AttackWorkloads() {
		rep, err := det.MonitorFaulty(w, 80_000, int64(3+i), fc)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Detected {
			t.Errorf("%s not detected under 20%% dropout", rep.Workload)
		}
		if !rep.Degraded {
			t.Errorf("%s: dropout not reflected in Degraded", rep.Workload)
		}
		if rep.Coverage < 0.7 || rep.Coverage > 0.9 {
			t.Errorf("%s: coverage %.3f, want ~0.8 under 20%% dropout", rep.Workload, rep.Coverage)
		}
	}
}

func TestMonitorFaultyBlackout(t *testing.T) {
	det := sharedDetector(t)
	if _, err := det.MonitorFaulty(AttackByName("spectreV1", "fr"), 40_000, 3,
		FaultConfig{Blackout: "no-such-component"}); err == nil {
		t.Fatalf("unknown blackout component accepted")
	}
	rep, err := det.MonitorFaulty(AttackByName("flush+reload", ""), 40_000, 3,
		FaultConfig{Seed: 5, Blackout: "dcache"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.Coverage >= 1 {
		t.Fatalf("dcache blackout not reflected: degraded=%v coverage=%.3f",
			rep.Degraded, rep.Coverage)
	}
	// Zero-value fault config is a clean run.
	clean, err := det.MonitorFaulty(AttackByName("flush+reload", ""), 40_000, 3, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded {
		t.Fatalf("zero-value FaultConfig degraded the run")
	}
}
