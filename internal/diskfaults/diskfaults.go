// Package diskfaults is the write-path analogue of internal/faults: a
// seeded, injectable shim over the file operations the durable layers go
// through — checkpoint saves, the serving verdict log, the corpus disk
// cache, and the small durable state files — so crash-and-disk-fault
// resilience can be exercised deterministically. Armed rules produce short
// (torn) writes, ENOSPC, EIO, failed fsync, and crash-points at configured
// write sites; the un-armed path is a nil-pointer check, so production runs
// pay nothing.
//
// Every write site names itself (SiteCheckpoint, SiteVerdictLog, ...) and
// routes its file operations through the process-wide injector: wrap the
// file with File, rename with Rename, or use WriteFileAtomic for the full
// temp+fsync+rename+dirsync discipline. Injected faults are counted under
// perspectron_diskfault_injected_total{site,op,kind}.
package diskfaults

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"perspectron/internal/telemetry"
)

// Canonical site names for the repository's durable write paths. Rules may
// name any site; these constants just keep the call sites and fault specs in
// agreement.
const (
	SiteCheckpoint  = "checkpoint"  // model checkpoint saves (checkpoint.go)
	SiteVerdictLog  = "verdictlog"  // the serving JSONL verdict log
	SiteCorpus      = "corpus"      // the corpus disk cache artifacts
	SiteServeState  = "servestate"  // the supervisor's durable accounting file
	SiteShadowState = "shadowstate" // the shadow trainer's tail-offset file
)

// Op identifies one write-path operation a rule can intercept.
type Op string

const (
	OpCreate Op = "create" // temp-file creation
	OpWrite  Op = "write"  // a data write
	OpSync   Op = "sync"   // fsync of a file or its parent directory
	OpRename Op = "rename" // the atomic publish rename
)

// Kind identifies the fault an intercepted operation suffers.
type Kind string

const (
	// KindTorn writes a prefix of the payload and then fails with ENOSPC —
	// the torn-write model (only meaningful on OpWrite).
	KindTorn Kind = "torn"
	// KindENOSPC fails the operation with syscall.ENOSPC, nothing written.
	KindENOSPC Kind = "enospc"
	// KindEIO fails the operation with syscall.EIO, nothing written.
	KindEIO Kind = "eio"
	// KindSyncFail lets the data through but fails the fsync with EIO
	// (only meaningful on OpSync).
	KindSyncFail Kind = "syncfail"
	// KindCrash writes a torn prefix (on OpWrite) and then invokes the
	// injector's crash function — by default os.Exit(137), simulating a
	// power-loss mid-write. Tests override the crash function.
	KindCrash Kind = "crash"
)

// Rule arms one fault. The zero After/Count/Rate values give the common
// deterministic form: fire on every matching operation, forever.
type Rule struct {
	// Site the rule applies to; "" matches every site.
	Site string
	// Op the rule intercepts.
	Op Op
	// Kind of fault to inject.
	Kind Kind
	// After skips the first After matching operations before firing — "the
	// Nth write fails" is After: N-1.
	After int
	// Count caps how many times the rule fires; 0 means unlimited (the
	// persistent-ENOSPC model).
	Count int
	// Rate, when non-zero, fires probabilistically with this per-operation
	// probability (drawn from the injector's seeded generator) instead of
	// deterministically.
	Rate float64
}

// armed is a rule plus its firing state.
type armed struct {
	Rule
	seen  int
	fired int
}

// Injector decides, per (site, op), whether an armed fault fires. Safe for
// concurrent use. The nil *Injector is the disabled injector: every wrapper
// method passes straight through to the os package.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rules   []*armed
	crashFn func()
}

// New returns an injector whose probabilistic draws come from seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		crashFn: func() { os.Exit(137) },
	}
}

// Arm adds one rule. Rules are consulted in arming order; the first one that
// fires wins for a given operation.
func (in *Injector) Arm(r Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.rules = append(in.rules, &armed{Rule: r})
	in.mu.Unlock()
}

// SetCrashFn replaces the crash-point action (tests substitute a panic or a
// recorder for the default os.Exit).
func (in *Injector) SetCrashFn(fn func()) {
	if in == nil || fn == nil {
		return
	}
	in.mu.Lock()
	in.crashFn = fn
	in.mu.Unlock()
}

// decide reports the fault kind (if any) for one operation at site, and
// counts the injection.
func (in *Injector) decide(site string, op Op) (Kind, bool) {
	if in == nil {
		return "", false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Op != op || (r.Site != "" && r.Site != site) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Rate > 0 && in.rng.Float64() >= r.Rate {
			continue
		}
		r.fired++
		telemetry.Get().Counter(telemetry.Name("perspectron_diskfault_injected_total",
			"site", site, "op", string(op), "kind", string(r.Kind))).Inc()
		return r.Kind, true
	}
	return "", false
}

// crash runs the configured crash action.
func (in *Injector) crash() {
	in.mu.Lock()
	fn := in.crashFn
	in.mu.Unlock()
	fn()
}

// faultErr maps a kind to its operation error.
func faultErr(k Kind) error {
	switch k {
	case KindEIO, KindSyncFail:
		return syscall.EIO
	default:
		return syscall.ENOSPC
	}
}

// File is a fault-wrapped *os.File restricted to the operations the durable
// write paths use. A nil-injector File passes everything through.
type File struct {
	in   *Injector
	site string
	f    *os.File
}

// File wraps f so armed write/sync faults at site apply to it.
func (in *Injector) File(site string, f *os.File) *File {
	return &File{in: in, site: site, f: f}
}

// Write implements io.Writer with torn-write, ENOSPC, EIO and crash faults.
func (w *File) Write(p []byte) (int, error) {
	if kind, ok := w.in.decide(w.site, OpWrite); ok {
		switch kind {
		case KindTorn:
			n, _ := w.f.Write(p[:len(p)/2])
			return n, syscall.ENOSPC
		case KindCrash:
			w.f.Write(p[:len(p)/2])
			w.f.Sync() // the torn prefix reaches disk, as a real power cut could leave it
			w.in.crash()
			return 0, syscall.EIO // unreachable with the default crashFn
		default:
			return 0, faultErr(kind)
		}
	}
	return w.f.Write(p)
}

// Sync fsyncs the file, honoring syncfail/crash faults.
func (w *File) Sync() error {
	if kind, ok := w.in.decide(w.site, OpSync); ok {
		if kind == KindCrash {
			w.in.crash()
		}
		return faultErr(kind)
	}
	return w.f.Sync()
}

// Close closes the underlying file (never faulted — a close that "fails"
// after successful writes models nothing the recovery layer cares about).
func (w *File) Close() error { return w.f.Close() }

// Name returns the underlying file's path.
func (w *File) Name() string { return w.f.Name() }

// Rename renames old to new, honoring rename faults at site. A crash fault
// fires before the rename, modeling death between write and publish.
func (in *Injector) Rename(site, oldpath, newpath string) error {
	if kind, ok := in.decide(site, OpRename); ok {
		if kind == KindCrash {
			in.crash()
		}
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: faultErr(kind)}
	}
	return os.Rename(oldpath, newpath)
}

// SyncDir fsyncs a directory so a just-renamed entry survives power loss.
// Platforms where directories cannot be opened or synced degrade to a no-op;
// an armed sync fault at site still fires.
func (in *Injector) SyncDir(site, dir string) error {
	if kind, ok := in.decide(site, OpSync); ok {
		if kind == KindCrash {
			in.crash()
		}
		return faultErr(kind)
	}
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}

// isSyncUnsupported reports fsync errors that mean "this filesystem cannot
// sync directories", which durability-wise is the best the platform offers.
func isSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.EBADF)
}

// WriteFileAtomic writes path under the full durable discipline — temp file
// in path's directory, data fsync, rename, parent-directory fsync — with
// every step routed through site's armed faults. A failure at any step
// leaves path untouched and removes the temp file.
func (in *Injector) WriteFileAtomic(site, path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	if kind, ok := in.decide(site, OpCreate); ok {
		if kind == KindCrash {
			in.crash()
		}
		return &os.PathError{Op: "create", Path: path, Err: faultErr(kind)}
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	ff := in.File(site, tmp)
	err = write(ff)
	if serr := ff.Sync(); err == nil {
		err = serr
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := in.Rename(site, tmp.Name(), path); err != nil {
		return err
	}
	return in.SyncDir(site, dir)
}

// ---- process-wide injector ---------------------------------------------

// global is the process-wide injector; nil until Enable — the disabled
// zero-overhead path, mirroring the telemetry registry.
var global atomic.Pointer[Injector]

// Enable installs (or returns the already-installed) process-wide injector.
func Enable(seed int64) *Injector {
	if in := global.Load(); in != nil {
		return in
	}
	in := New(seed)
	if global.CompareAndSwap(nil, in) {
		return in
	}
	return global.Load()
}

// Disable removes the process-wide injector; wrappers revert to passthrough.
func Disable() { global.Store(nil) }

// Default returns the process-wide injector, or nil when disabled. All
// methods tolerate the nil result, so call sites read naturally:
// diskfaults.Default().Rename(site, a, b).
func Default() *Injector { return global.Load() }

// WrapFile wraps f with the process-wide injector's faults for site.
func WrapFile(site string, f *os.File) *File { return Default().File(site, f) }

// Rename renames through the process-wide injector.
func Rename(site, oldpath, newpath string) error {
	return Default().Rename(site, oldpath, newpath)
}

// SyncDir syncs a directory through the process-wide injector.
func SyncDir(site, dir string) error { return Default().SyncDir(site, dir) }

// WriteFileAtomic writes atomically through the process-wide injector.
func WriteFileAtomic(site, path string, write func(w io.Writer) error) error {
	return Default().WriteFileAtomic(site, path, write)
}

// ---- spec parsing -------------------------------------------------------

// ParseSpec parses a comma-separated fault specification, one rule per
// clause:
//
//	site:op:kind[:after=N][:count=N][:rate=F]
//
// e.g. "verdictlog:write:enospc:after=20:count=3,checkpoint:sync:syncfail".
// Site "*" (or empty) matches every site. This is the -disk-faults CLI
// grammar.
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("diskfaults: clause %q needs site:op:kind", clause)
		}
		r := Rule{Site: parts[0], Op: Op(parts[1]), Kind: Kind(parts[2])}
		if r.Site == "*" {
			r.Site = ""
		}
		switch r.Op {
		case OpCreate, OpWrite, OpSync, OpRename:
		default:
			return nil, fmt.Errorf("diskfaults: unknown op %q in %q", parts[1], clause)
		}
		switch r.Kind {
		case KindTorn, KindENOSPC, KindEIO, KindSyncFail, KindCrash:
		default:
			return nil, fmt.Errorf("diskfaults: unknown kind %q in %q", parts[2], clause)
		}
		for _, opt := range parts[3:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("diskfaults: option %q in %q is not key=value", opt, clause)
			}
			switch k {
			case "after":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("diskfaults: bad after=%q in %q", v, clause)
				}
				r.After = n
			case "count":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("diskfaults: bad count=%q in %q", v, clause)
				}
				r.Count = n
			case "rate":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return nil, fmt.Errorf("diskfaults: bad rate=%q in %q", v, clause)
				}
				r.Rate = f
			default:
				return nil, fmt.Errorf("diskfaults: unknown option %q in %q", k, clause)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("diskfaults: empty fault spec")
	}
	return rules, nil
}

// ArmSpec parses spec and arms every rule on in.
func ArmSpec(in *Injector, spec string) error {
	rules, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	for _, r := range rules {
		in.Arm(r)
	}
	return nil
}
