package diskfaults

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"perspectron/internal/telemetry"
)

func TestNilInjectorPassesThrough(t *testing.T) {
	var in *Injector
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := in.WriteFileAtomic("anything", path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatalf("nil injector WriteFileAtomic: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back %q, %v", b, err)
	}
	if k, ok := in.decide("anything", OpWrite); ok {
		t.Fatalf("nil injector decided %v", k)
	}
}

func TestDeterministicNthWriteFault(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	in := New(1)
	in.Arm(Rule{Site: "s", Op: OpWrite, Kind: KindENOSPC, After: 2, Count: 1})

	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := in.File("s", f)
	for i := 0; i < 2; i++ {
		if _, err := w.Write([]byte("x")); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("3rd write error = %v, want ENOSPC", err)
	}
	// Count=1: subsequent writes succeed again.
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatalf("write after exhausted rule: %v", err)
	}
	got := reg.CounterValue(telemetry.Name("perspectron_diskfault_injected_total",
		"site", "s", "op", "write", "kind", "enospc"))
	if got != 1 {
		t.Fatalf("injected counter = %d, want 1", got)
	}
}

func TestTornWriteLeavesPrefix(t *testing.T) {
	in := New(1)
	in.Arm(Rule{Site: "s", Op: OpWrite, Kind: KindTorn, Count: 1})
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := in.File("s", f)
	payload := []byte("0123456789")
	n, werr := w.Write(payload)
	if !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("torn write error = %v, want ENOSPC", werr)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write reported %d bytes, want %d", n, len(payload)/2)
	}
	b, _ := os.ReadFile(f.Name())
	if string(b) != "01234" {
		t.Fatalf("file holds %q after torn write, want the prefix", b)
	}
}

func TestSyncAndRenameFaults(t *testing.T) {
	in := New(1)
	in.Arm(Rule{Site: "s", Op: OpSync, Kind: KindSyncFail, Count: 1})
	in.Arm(Rule{Site: "s", Op: OpRename, Kind: KindEIO, Count: 1})
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := in.File("s", f)
	if err := w.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync error = %v, want EIO", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	if err := in.Rename("s", f.Name(), f.Name()+".x"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename error = %v, want EIO", err)
	}
	if err := in.Rename("s", f.Name(), f.Name()+".x"); err != nil {
		t.Fatalf("second rename: %v", err)
	}
}

func TestCrashPointInvokesCrashFn(t *testing.T) {
	in := New(1)
	crashed := false
	in.SetCrashFn(func() { crashed = true })
	in.Arm(Rule{Site: "s", Op: OpWrite, Kind: KindCrash, Count: 1})
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := in.File("s", f)
	w.Write([]byte("0123456789"))
	if !crashed {
		t.Fatal("crash fault did not invoke the crash function")
	}
	// The torn prefix reached the file, as a real crash mid-write could leave.
	b, _ := os.ReadFile(f.Name())
	if string(b) != "01234" {
		t.Fatalf("crash left %q, want torn prefix", b)
	}
}

func TestWriteFileAtomicFaultLeavesNoDebris(t *testing.T) {
	in := New(1)
	in.Arm(Rule{Site: "s", Op: OpWrite, Kind: KindENOSPC, Count: 1})
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	err := in.WriteFileAtomic("s", path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("faulted atomic write error = %v, want ENOSPC", err)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("destination exists after failed atomic write")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("temp debris left behind: %v", ents)
	}
	// The exhausted rule lets the next write through, durably.
	if err := in.WriteFileAtomic("s", path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatalf("clean atomic write: %v", err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "payload" {
		t.Fatalf("read back %q", b)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("verdictlog:write:enospc:after=20:count=3, *:sync:syncfail:rate=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	want0 := Rule{Site: "verdictlog", Op: OpWrite, Kind: KindENOSPC, After: 20, Count: 3}
	if rules[0] != want0 {
		t.Fatalf("rule 0 = %+v, want %+v", rules[0], want0)
	}
	if rules[1].Site != "" || rules[1].Rate != 0.5 || rules[1].Kind != KindSyncFail {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	for _, bad := range []string{"", "x:y", "s:write:nope", "s:frob:eio", "s:write:eio:after=-1", "s:write:eio:rate=2", "s:write:eio:bogus=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestRateIsSeededDeterministic(t *testing.T) {
	fire := func(seed int64) string {
		in := New(seed)
		in.Arm(Rule{Site: "s", Op: OpWrite, Kind: KindEIO, Rate: 0.5})
		var out strings.Builder
		for i := 0; i < 32; i++ {
			if _, ok := in.decide("s", OpWrite); ok {
				out.WriteByte('1')
			} else {
				out.WriteByte('0')
			}
		}
		return out.String()
	}
	if fire(7) != fire(7) {
		t.Fatal("same seed produced different fault sequences")
	}
	if fire(7) == fire(8) {
		t.Fatal("different seeds produced identical fault sequences (suspicious)")
	}
}
