// The column-major bit-packed matrix the selection context is built on.
//
// The historical kernels each re-packed the matrix themselves — one
// PackColumn per feature per kernel, each walking the row-major matrix with
// a stride-f access pattern. PackMatrix does the whole conversion in one
// word-tiled pass: 64 rows at a time, scattering bits into an f-word
// accumulator that stays cache-resident, then flushing one word per column.
// Every downstream kernel (mutual information, class correlation, the
// correlation-group pair sweep) reads the same packed columns and one-counts.

package features

import (
	"math"

	"perspectron/internal/encoding"
)

// PackedMatrix is a column-major bit-packed view of a sample matrix: column
// j of the input becomes the BitVec Cols[j] (bit i set iff X[i][j] >= the
// packing threshold), with its popcount cached in Ones[j]. All columns
// share one flat word allocation.
type PackedMatrix struct {
	// N is the number of samples (rows) packed into each column.
	N int
	// Cols holds one packed column per feature.
	Cols []encoding.BitVec
	// Ones caches Cols[j].Ones().
	Ones []int
}

// PackMatrix packs every column of X at threshold thr in one word-tiled
// pass. Bit-for-bit equal to calling encoding.PackColumn per column.
func PackMatrix(X [][]float64, thr float64) *PackedMatrix {
	n := len(X)
	f := 0
	if n > 0 {
		f = len(X[0])
	}
	wpc := (n + 63) / 64
	pm := &PackedMatrix{
		N:    n,
		Cols: make([]encoding.BitVec, f),
		Ones: make([]int, f),
	}
	words := make([]uint64, f*wpc)
	buf := make([]uint64, f)
	packMatrixInto(X, thr, words, buf, pm)
	return pm
}

// packMatrixInto fills pm from X using the caller's word backing and
// per-column tile accumulator. words must hold f*ceil(n/64) zeroed words;
// buf must hold f words (content ignored).
func packMatrixInto(X [][]float64, thr float64, words, buf []uint64, pm *PackedMatrix) {
	n := pm.N
	wpc := (n + 63) / 64
	for j := range pm.Cols {
		pm.Cols[j] = encoding.BitVec(words[j*wpc : (j+1)*wpc])
	}
	for w := 0; w < wpc; w++ {
		clear(buf)
		base := w * 64
		end := base + 64
		if end > n {
			end = n
		}
		for i := base; i < end; i++ {
			bit := uint64(1) << uint(i-base)
			for j, v := range X[i] {
				if v >= thr {
					buf[j] |= bit
				}
			}
		}
		for j, bw := range buf {
			if bw != 0 {
				words[j*wpc+w] = bw
			}
		}
	}
	for j := range pm.Cols {
		pm.Ones[j] = pm.Cols[j].Ones()
	}
}

// MutualInformation returns, per packed column, the mutual information (in
// bits) between the column's bits and the class. For a matrix packed at
// encoding.BinarizeThreshold this is bit-identical to
// features.MutualInformation on the original matrix: the popcounts produce
// the same contingency integers and miFromCounts is the same arithmetic.
func (pm *PackedMatrix) MutualInformation(y []float64) []float64 {
	n := pm.N
	if n == 0 {
		return nil
	}
	out := make([]float64, len(pm.Cols))
	ypos := encoding.NewBitVec(n) // bit i set iff y[i] > 0
	for i, v := range y {
		if v > 0 {
			ypos.Set(i)
		}
	}
	nPos := ypos.Ones()
	pY1 := float64(nPos) / float64(n)
	parallelDo(len(out), func(j int) {
		out[j] = miFromCounts(n, pm.Ones[j], pm.Cols[j].AndCount(ypos), nPos, pY1)
	})
	return out
}

// ClassCorrelation returns, per packed column, the Pearson correlation of
// the column's 0/1 values with the ±1 labels, via the exact integer
// identity binaryClassCorr. It requires the matrix to have been exactly
// 0/1 at packing time and the labels to be exactly ±1 — the conditions the
// selection context verifies once before routing here.
func (pm *PackedMatrix) ClassCorrelation(y []float64) []float64 {
	n := pm.N
	out := make([]float64, len(pm.Cols))
	if n == 0 {
		return out
	}
	// Mirror the dense kernel's degenerate-label guard: single-class label
	// vectors have zero variance and correlate as 0 everywhere.
	var ym, ys float64
	for _, v := range y {
		ym += v
	}
	ym /= float64(n)
	for _, v := range y {
		ys += (v - ym) * (v - ym)
	}
	if math.Sqrt(ys/float64(n)) == 0 {
		return out
	}
	ypos := encoding.PackThreshold(y, 0) // bit i set iff y[i] = +1
	nPos := ypos.Ones()
	sy := nPos - (n - nPos)
	parallelDo(len(out), func(j int) {
		ca := pm.Ones[j]
		c11 := pm.Cols[j].AndCount(ypos)
		// Σ x·y over ±1 labels: ones on the +1 side minus ones on the -1
		// side.
		sxy := c11 - (ca - c11)
		out[j] = binaryClassCorr(n, ca, sxy, sy)
	})
	return out
}

// CorrelationGroups clusters the packed columns whose pairwise |Pearson|
// exceeds threshold, with members ranked by the packed class correlation.
// Same requirements as ClassCorrelation (0/1 matrix, ±1 labels); the
// partition is identical to CorrelationGroups on the original matrix.
func (pm *PackedMatrix) CorrelationGroups(y []float64, threshold float64) []Group {
	active := pm.activeColumns(nil)
	edges := packedEdges(pm, active, threshold, nil)
	uf := newUnionFind(len(pm.Cols))
	applyEdges(uf, active, edges)
	return assembleGroups(active, uf, pm.ClassCorrelation(y))
}

// activeColumns returns the indices of columns with non-zero variance —
// for 0/1 data, exactly those with 0 < ones < n (equivalent to the dense
// Std > 0 test). dst is reused when large enough.
func (pm *PackedMatrix) activeColumns(dst []int) []int {
	dst = dst[:0]
	for j, c := range pm.Ones {
		if c > 0 && c < pm.N {
			dst = append(dst, j)
		}
	}
	return dst
}

// packedBlock is the number of columns per pair-sweep work item. A block
// pair touches 2*packedBlock packed columns (a few KB each at realistic
// sample counts), so both blocks stay cache-resident while their
// packedBlock² co-occurrence popcounts run.
const packedBlock = 64

// packedEdges sweeps all active-column pairs for |Pearson| >= threshold
// using popcount co-occurrence over the shared packed columns. Work items
// are column-block pairs — near-uniform B² (half on the diagonal) instead
// of the historical per-row items whose cost decayed from f-1 pairs to 1 —
// and each item writes edges (ka, kb index pairs into active, ka < kb) to
// its own slot. slots is reused when non-nil.
func packedEdges(pm *PackedMatrix, active []int, threshold float64, slots [][]int32) [][]int32 {
	nb := (len(active) + packedBlock - 1) / packedBlock
	items := nb * (nb + 1) / 2
	if cap(slots) < items {
		slots = make([][]int32, items)
	}
	slots = slots[:items]
	n := pm.N
	parallelDo(items, func(it int) {
		bi, bj := unrankBlockPair(it, nb)
		row := slots[it][:0]
		aLo, aHi := blockRange(bi, len(active))
		bLo, bHi := blockRange(bj, len(active))
		for ka := aLo; ka < aHi; ka++ {
			a := active[ka]
			colA, onesA := pm.Cols[a], pm.Ones[a]
			lo := bLo
			if lo <= ka {
				lo = ka + 1
			}
			for kb := lo; kb < bHi; kb++ {
				b := active[kb]
				r := binaryPearson(n, onesA, pm.Ones[b], colA.AndCount(pm.Cols[b]))
				if math.Abs(r) >= threshold {
					row = append(row, int32(ka), int32(kb))
				}
			}
		}
		slots[it] = row
	})
	return slots
}

// blockRange returns the active-index range [lo, hi) of block b.
func blockRange(b, nActive int) (lo, hi int) {
	lo = b * packedBlock
	hi = lo + packedBlock
	if hi > nActive {
		hi = nActive
	}
	return lo, hi
}

// unrankBlockPair maps a flat work-item index to the block pair (i, j with
// i <= j) in row-major upper-triangular order.
func unrankBlockPair(it, nb int) (int, int) {
	// Row i starts at offset i*nb - i*(i-1)/2.
	i := 0
	for {
		rowLen := nb - i
		if it < rowLen {
			return i, i + it
		}
		it -= rowLen
		i++
	}
}

// applyEdges merges every swept edge into the union-find, serially and in
// work-item order. Single-linkage partitions are union-order independent,
// so the result matches the historical ascending per-pair order.
func applyEdges(uf *unionFind, active []int, slots [][]int32) {
	for _, row := range slots {
		for k := 0; k < len(row); k += 2 {
			uf.union(active[row[k]], active[row[k+1]])
		}
	}
}
