package features

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"perspectron/internal/encoding"
	"perspectron/internal/stats"
)

// randContinuous builds an n×f matrix of scaled values with correlated
// column families near the grouping threshold — exact duplicates, affine
// rescalings (|r| = 1 exactly), sign-flipped copies, and noisy copies whose
// correlation hovers around 0.98 — so the pruned pair sweep is exercised on
// pairs both far from and right at the decision boundary.
func randContinuous(r *rand.Rand, n, f int) (X [][]float64, y []float64) {
	X = make([][]float64, n)
	y = make([]float64, n)
	for i := range X {
		y[i] = float64(2*(i%2) - 1)
		row := make([]float64, f)
		for j := range row {
			row[j] = r.NormFloat64()
			if j%5 == 0 && y[i] > 0 {
				row[j] += 0.3
			}
		}
		for j := range row {
			switch j % 7 {
			case 1: // exact duplicate of the previous column
				row[j] = row[j-1]
			case 2: // affine rescaling: correlation exactly ±1
				row[j] = 3*row[j-2] + 1
			case 3: // sign flip
				row[j] = -row[j-3]
			case 4: // noisy copy, correlation near the 0.98 threshold
				row[j] = row[j-4] + 0.2*r.NormFloat64()
			case 5: // constant column (zero variance)
				row[j] = 2.5
			}
		}
		X[i] = row
	}
	return X, y
}

// TestPackMatrixMatchesPackColumn: the word-tiled one-pass packer must be
// bit-for-bit equal to the historical per-column PackColumn, on binary and
// continuous input and at both packing thresholds in use.
func TestPackMatrixMatchesPackColumn(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 12; trial++ {
		n, f := 1+r.Intn(200), 1+r.Intn(40)
		var X [][]float64
		if trial%2 == 0 {
			X, _ = randBinary(r, n, f)
		} else {
			X, _ = randContinuous(r, n, f)
		}
		for _, thr := range []float64{encoding.BinarizeThreshold, 1} {
			pm := PackMatrix(X, thr)
			for j := 0; j < f; j++ {
				ref := encoding.PackColumn(X, j, thr)
				if !reflect.DeepEqual([]uint64(pm.Cols[j]), []uint64(ref)) {
					t.Fatalf("trial %d thr %v col %d: packed words differ", trial, thr, j)
				}
				if pm.Ones[j] != ref.Ones() {
					t.Fatalf("trial %d thr %v col %d: ones %d != %d", trial, thr, j, pm.Ones[j], ref.Ones())
				}
			}
		}
	}
}

// TestPackedMatrixKernelsBitIdentical: MI, class correlation and
// correlation groups fed from one shared PackedMatrix must be bit-identical
// to the historical per-kernel paths on random 0/1 matrices.
func TestPackedMatrixKernelsBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		n, f := 30+r.Intn(150), 5+r.Intn(30)
		X, y := randBinary(r, n, f)
		pm := PackMatrix(X, encoding.BinarizeThreshold)

		mi := pm.MutualInformation(y)
		if want := legacyMutualInformation(X, y); !reflect.DeepEqual(mi, want) {
			t.Fatalf("trial %d: packed-matrix MI differs from legacy", trial)
		}
		// Class correlation: exact against the integer-count loop reference;
		// the legacy dense loop rounds intermediates differently, so (as in
		// TestClassCorrelationPackedBitIdentical) it is a 1e-9 oracle.
		cc := pm.ClassCorrelation(y)
		dense := legacyClassCorrelation(X, y)
		for j := 0; j < f; j++ {
			if ref := countClassCorrRef(X, y, j); cc[j] != ref {
				t.Fatalf("trial %d col %d: packed-matrix cc %v != count reference %v", trial, j, cc[j], ref)
			}
			if math.Abs(cc[j]-dense[j]) > 1e-9 {
				t.Fatalf("trial %d col %d: packed-matrix cc %v vs dense %v", trial, j, cc[j], dense[j])
			}
		}
		groups := pm.CorrelationGroups(y, 0.98)
		if want := legacyCorrelationGroups(X, y, 0.98); !reflect.DeepEqual(groups, want) {
			t.Fatalf("trial %d: packed-matrix groups %v != legacy %v", trial, groups, want)
		}
	}
}

// TestSelectionContextMatchesLegacy: the full selection-context path (the
// default) must reproduce the legacy per-kernel path exactly — kernels and
// complete Select output — on binary and continuous matrices. On continuous
// input this pins the suffix-norm-pruned dense pair sweep to the per-pair
// reference decision.
func TestSelectionContextMatchesLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	comps := func(f int) []stats.Component {
		out := make([]stats.Component, f)
		for j := range out {
			out[j] = stats.Component(j % int(stats.NumComponents))
		}
		return out
	}
	cfg := SelectConfig{GroupThreshold: 0.98, MaxFeatures: 12, MinMI: 1e-4}
	for trial := 0; trial < 10; trial++ {
		n, f := 40+r.Intn(160), 6+r.Intn(30)
		var X [][]float64
		var y []float64
		if trial%2 == 0 {
			X, y = randBinary(r, n, f)
		} else {
			X, y = randContinuous(r, n, f)
		}

		mi := MutualInformation(X, y)
		cc := ClassCorrelation(X, y)
		groups := CorrelationGroups(X, y, 0.98)
		sel := Select(X, y, comps(f), cfg)

		SetForceDense(true)
		wantMI := MutualInformation(X, y)
		wantCC := ClassCorrelation(X, y)
		wantGroups := CorrelationGroups(X, y, 0.98)
		wantSel := Select(X, y, comps(f), cfg)
		SetForceDense(false)

		if !reflect.DeepEqual(mi, wantMI) {
			t.Fatalf("trial %d: context MI differs from legacy", trial)
		}
		if trial%2 == 0 {
			// Binary input routes CC through the integer popcount identity —
			// mathematically equal to the dense loop but rounded differently,
			// so compare within the established 1e-9 oracle.
			for j := range cc {
				if math.Abs(cc[j]-wantCC[j]) > 1e-9 {
					t.Fatalf("trial %d col %d: context cc %v vs legacy %v", trial, j, cc[j], wantCC[j])
				}
			}
		} else if !reflect.DeepEqual(cc, wantCC) {
			t.Fatalf("trial %d: context class correlation differs from legacy", trial)
		}
		if !reflect.DeepEqual(groups, wantGroups) {
			t.Fatalf("trial %d: context groups %v != legacy %v", trial, groups, wantGroups)
		}
		if !reflect.DeepEqual(sel, wantSel) {
			t.Fatalf("trial %d: context Select %v != legacy %v", trial, sel.Indices, wantSel.Indices)
		}
	}
}

// TestSelectionContextZeroVariance: a matrix whose every column is constant
// has no active features — no groups, zero class correlation — and Select
// must come back empty without faulting, on both paths.
func TestSelectionContextZeroVariance(t *testing.T) {
	n, f := 50, 12
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		y[i] = float64(2*(i%2) - 1)
		row := make([]float64, f)
		for j := range row {
			row[j] = float64(j % 2) // constant per column: half zeros, half ones
		}
		X[i] = row
	}
	comps := make([]stats.Component, f)
	cfg := DefaultSelectConfig()

	for _, dense := range []bool{false, true} {
		SetForceDense(dense)
		if g := CorrelationGroups(X, y, 0.98); len(g) != 0 {
			t.Fatalf("dense=%v: zero-variance matrix produced groups %v", dense, g)
		}
		cc := ClassCorrelation(X, y)
		for j, v := range cc {
			if v != 0 {
				t.Fatalf("dense=%v: constant column %d has class correlation %v", dense, j, v)
			}
		}
		if sel := Select(X, y, comps, cfg); len(sel.Indices) != 0 {
			t.Fatalf("dense=%v: zero-variance matrix selected %v", dense, sel.Indices)
		}
	}
	SetForceDense(false)
}

// TestGroupOrderSmallestMemberTieBreak: equal-size groups must order by
// their smallest member index, not by whichever member the |class
// correlation| re-ranking happens to put first. Columns 0 and 9 form one
// group (9 carries the class signal, so re-ranking lists it first) and
// columns 4 and 5 form another; the {0,9} group must still sort first.
func TestGroupOrderSmallestMemberTieBreak(t *testing.T) {
	const n, f = 64, 10
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		y[i] = float64(2*(i%2) - 1)
		row := make([]float64, f)
		base := float64((i / 2) % 2) // class-independent 0/1 pattern
		row[0] = base
		row[9] = base
		if y[i] > 0 && i%8 == 0 {
			row[9] = 1 - row[9] // perturb 9 so it gains class correlation
			row[0] = row[9]     // keep the pair perfectly correlated
		}
		other := float64((i / 4) % 2)
		row[4] = other
		row[5] = other
		X[i] = row
	}
	for _, dense := range []bool{false, true} {
		SetForceDense(dense)
		groups := CorrelationGroups(X, y, 0.98)
		SetForceDense(false)
		if len(groups) != 2 {
			t.Fatalf("dense=%v: got %d groups %v, want 2", dense, len(groups), groups)
		}
		min0 := groups[0].Members[0]
		for _, m := range groups[0].Members {
			if m < min0 {
				min0 = m
			}
		}
		if min0 != 0 {
			t.Fatalf("dense=%v: first group %v does not contain the smallest member index 0: %v",
				dense, groups[0].Members, groups)
		}
	}
}

// TestSelectConcurrentWithConfigChanges: selection running concurrently
// with SetWorkers/SetForceDense flips must stay race-free (the knobs are
// atomics) and every result must match one of the two valid paths — which
// are bit-identical anyway.
func TestSelectConcurrentWithConfigChanges(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	X, y := randBinary(r, 80, 16)
	comps := make([]stats.Component, 16)
	for j := range comps {
		comps[j] = stats.Component(j % int(stats.NumComponents))
	}
	cfg := SelectConfig{GroupThreshold: 0.98, MaxFeatures: 8, MinMI: 1e-4}
	want := Select(X, y, comps, cfg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			SetWorkers(i % 4)
			SetForceDense(i%2 == 0)
		}
	}()
	var inner sync.WaitGroup
	for g := 0; g < 4; g++ {
		inner.Add(1)
		go func() {
			defer inner.Done()
			for iter := 0; iter < 8; iter++ {
				if got := Select(X, y, comps, cfg); !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent Select diverged: %v vs %v", got.Indices, want.Indices)
					return
				}
			}
		}()
	}
	inner.Wait()
	close(stop)
	wg.Wait()
	SetWorkers(0)
	SetForceDense(false)
}
