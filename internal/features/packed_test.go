package features

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"perspectron/internal/encoding"
	"perspectron/internal/stats"
)

// randBinary builds an n×f matrix of exact 0/1 values with ±1 labels, with
// a few duplicated/inverted columns so correlation groups actually form.
func randBinary(r *rand.Rand, n, f int) (X [][]float64, y []float64) {
	X = make([][]float64, n)
	y = make([]float64, n)
	for i := range X {
		y[i] = float64(2*(i%2) - 1)
		row := make([]float64, f)
		for j := range row {
			switch {
			case j >= 3 && j < 6: // duplicates of column 0
				row[j] = 0
			case j == 6: // constant-zero column (zero variance)
				row[j] = 0
			default:
				if r.Intn(3) == 0 {
					row[j] = 1
				}
				if j == 1 && y[i] > 0 && r.Intn(2) == 0 {
					row[j] = 1 // class-informative column
				}
			}
		}
		for j := 3; j < 6 && j < f; j++ {
			row[j] = row[0]
		}
		X[i] = row
	}
	return X, y
}

// denseMIRef is the historical dense MutualInformation row loop, kept
// verbatim as the bit-identity reference for the popcount rewrite.
func denseMIRef(X [][]float64, y []float64) []float64 {
	n := len(X)
	if n == 0 {
		return nil
	}
	f := len(X[0])
	out := make([]float64, f)
	var nPos float64
	for _, v := range y {
		if v > 0 {
			nPos++
		}
	}
	pY1 := nPos / float64(n)
	for j := 0; j < f; j++ {
		var c11, c10, c01, c00 float64
		for i, row := range X {
			x1 := row[j] >= encoding.BinarizeThreshold
			y1 := y[i] > 0
			switch {
			case x1 && y1:
				c11++
			case x1 && !y1:
				c10++
			case !x1 && y1:
				c01++
			default:
				c00++
			}
		}
		pX1 := (c11 + c10) / float64(n)
		mi := 0.0
		add := func(c, px, py float64) {
			if c == 0 || px == 0 || py == 0 {
				return
			}
			p := c / float64(n)
			mi += p * math.Log2(p/(px*py))
		}
		add(c11, pX1, pY1)
		add(c10, pX1, 1-pY1)
		add(c01, 1-pX1, pY1)
		add(c00, 1-pX1, 1-pY1)
		out[j] = mi
	}
	return out
}

// TestMutualInformationPackedBitIdentical: the popcount MI must equal the
// historical dense loop bit for bit — on binary matrices and on continuous
// ones (MI binarizes internally, so the packed path always applies).
func TestMutualInformationPackedBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n, f := 30+r.Intn(100), 5+r.Intn(40)
		var X [][]float64
		var y []float64
		if trial%2 == 0 {
			X, y = randBinary(r, n, f)
		} else {
			X = make([][]float64, n)
			y = make([]float64, n)
			for i := range X {
				y[i] = float64(2*(i%2) - 1)
				row := make([]float64, f)
				for j := range row {
					row[j] = r.Float64()
				}
				X[i] = row
			}
		}
		got := MutualInformation(X, y)
		want := denseMIRef(X, y)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d: MI[%d] = %v, dense reference %v", trial, j, got[j], want[j])
			}
		}
	}
}

// countPearsonRef computes binaryPearson counts by plain row iteration — no
// bit packing — proving the popcount extraction is exact.
func countPearsonRef(X [][]float64, a, b int) float64 {
	n := len(X)
	var ca, cb, cab int
	for _, row := range X {
		xa, xb := row[a] == 1, row[b] == 1
		if xa {
			ca++
		}
		if xb {
			cb++
		}
		if xa && xb {
			cab++
		}
	}
	return binaryPearson(n, ca, cb, cab)
}

// TestBinaryPearsonPackedBitIdentical: every pairwise correlation from
// packed columns must equal the loop-counted reference bit for bit, and
// agree with the dense moment-based Pearson to float tolerance.
func TestBinaryPearsonPackedBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		n, f := 40+r.Intn(120), 4+r.Intn(20)
		X, _ := randBinary(r, n, f)
		m := ComputeMoments(X)
		cols := make([]encoding.BitVec, f)
		for j := 0; j < f; j++ {
			cols[j] = encoding.PackColumn(X, j, 1)
		}
		for a := 0; a < f; a++ {
			for b := a + 1; b < f; b++ {
				packed := binaryPearson(n, cols[a].Ones(), cols[b].Ones(), cols[a].AndCount(cols[b]))
				if ref := countPearsonRef(X, a, b); packed != ref {
					t.Fatalf("pair (%d,%d): packed %v != loop reference %v", a, b, packed, ref)
				}
				if m.Std[a] == 0 || m.Std[b] == 0 {
					continue
				}
				dense := Pearson(X, m, a, b)
				if math.Abs(packed-dense) > 1e-9 {
					t.Fatalf("pair (%d,%d): packed %v vs dense %v", a, b, packed, dense)
				}
			}
		}
	}
}

// countClassCorrRef mirrors the popcount ClassCorrelation kernel with plain
// row iteration.
func countClassCorrRef(X [][]float64, y []float64, j int) float64 {
	n := len(X)
	var ca, sxy, sy int
	for i, row := range X {
		yi := 1
		if y[i] < 0 {
			yi = -1
		}
		sy += yi
		if row[j] == 1 {
			ca++
			sxy += yi
		}
	}
	return binaryClassCorr(n, ca, sxy, sy)
}

func TestClassCorrelationPackedBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n, f := 40+r.Intn(120), 4+r.Intn(20)
		X, y := randBinary(r, n, f)
		got := ClassCorrelation(X, y)

		SetForceDense(true)
		dense := ClassCorrelation(X, y)
		SetForceDense(false)

		for j := 0; j < f; j++ {
			if ref := countClassCorrRef(X, y, j); got[j] != ref {
				t.Fatalf("feature %d: packed %v != loop reference %v", j, got[j], ref)
			}
			if math.Abs(got[j]-dense[j]) > 1e-9 {
				t.Fatalf("feature %d: packed %v vs dense %v", j, got[j], dense[j])
			}
		}
	}
}

// TestCorrelationGroupsPackedMatchesDense: on 0/1 input the popcount sweep
// and the dense float sweep must produce the same partition, ranking, and
// ordering.
func TestCorrelationGroupsPackedMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10; trial++ {
		X, y := randBinary(r, 60+r.Intn(100), 8+r.Intn(16))
		packed := CorrelationGroups(X, y, 0.98)

		SetForceDense(true)
		dense := CorrelationGroups(X, y, 0.98)
		SetForceDense(false)

		if !reflect.DeepEqual(packed, dense) {
			t.Fatalf("trial %d: packed groups %v != dense groups %v", trial, packed, dense)
		}
	}
}

// TestSelectionWorkerCountInvariant: the full Select outcome must not
// depend on the worker count, on binary or continuous input.
func TestSelectionWorkerCountInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	comps := func(f int) []stats.Component {
		out := make([]stats.Component, f)
		for j := range out {
			out[j] = stats.Component(j % int(stats.NumComponents))
		}
		return out
	}
	cfg := SelectConfig{GroupThreshold: 0.98, MaxFeatures: 10, MinMI: 1e-4}
	for trial := 0; trial < 6; trial++ {
		n, f := 80, 24
		var X [][]float64
		var y []float64
		if trial%2 == 0 {
			X, y = randBinary(r, n, f)
		} else {
			X = make([][]float64, n)
			y = make([]float64, n)
			for i := range X {
				y[i] = float64(2*(i%2) - 1)
				row := make([]float64, f)
				for j := range row {
					row[j] = r.Float64()
					if j%3 == 0 && y[i] > 0 {
						row[j] += 0.4
					}
				}
				X[i] = row
			}
		}
		var got []Selection
		for _, workers := range []int{1, 2, 7} {
			SetWorkers(workers)
			got = append(got, Select(X, y, comps(f), cfg))
		}
		SetWorkers(0)
		for i := 1; i < len(got); i++ {
			if !reflect.DeepEqual(got[0], got[i]) {
				t.Fatalf("trial %d: selection differs between worker counts: %v vs %v",
					trial, got[0].Indices, got[i].Indices)
			}
		}
	}
}
