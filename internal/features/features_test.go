package features

import (
	"math"
	"math/rand"
	"testing"

	"perspectron/internal/stats"
)

// synth builds a dataset with known structure:
//
//	f0: equals the class signal (perfectly informative)
//	f1: copy of f0 in a different component (cross-component replica)
//	f2: copy of f0 in the same component as f0 (within-component duplicate)
//	f3: pure noise
//	f4: constant (zero variance)
//	f5: anti-correlated with the class
func synth(n int, r *rand.Rand) (X [][]float64, y []float64, comps []stats.Component) {
	comps = []stats.Component{
		stats.CompFetch, stats.CompCommit, stats.CompFetch,
		stats.CompIQ, stats.CompIEW, stats.CompDCache,
	}
	for i := 0; i < n; i++ {
		cls := -1.0
		if i%2 == 0 {
			cls = 1.0
		}
		sig := 0.0
		if cls > 0 {
			sig = 1.0
		}
		row := []float64{sig, sig, sig, r.Float64(), 0.5, 1 - sig}
		X = append(X, row)
		y = append(y, cls)
	}
	return X, y, comps
}

func TestClassCorrelation(t *testing.T) {
	X, y, _ := synth(200, rand.New(rand.NewSource(1)))
	cc := ClassCorrelation(X, y)
	if cc[0] < 0.99 {
		t.Fatalf("signal feature correlation = %v", cc[0])
	}
	if cc[5] > -0.99 {
		t.Fatalf("anti-correlated feature = %v", cc[5])
	}
	if math.Abs(cc[3]) > 0.3 {
		t.Fatalf("noise feature correlation = %v", cc[3])
	}
	if cc[4] != 0 {
		t.Fatalf("constant feature correlation = %v", cc[4])
	}
}

func TestPearsonSelfAndCopy(t *testing.T) {
	X, _, _ := synth(100, rand.New(rand.NewSource(2)))
	m := ComputeMoments(X)
	if v := Pearson(X, m, 0, 0); math.Abs(v-1) > 1e-9 {
		t.Fatalf("self correlation = %v", v)
	}
	if v := Pearson(X, m, 0, 1); math.Abs(v-1) > 1e-9 {
		t.Fatalf("copy correlation = %v", v)
	}
	if v := Pearson(X, m, 0, 5); math.Abs(v+1) > 1e-9 {
		t.Fatalf("anti-copy correlation = %v", v)
	}
	if v := Pearson(X, m, 0, 4); v != 0 {
		t.Fatalf("constant-column correlation = %v", v)
	}
}

func TestMutualInformation(t *testing.T) {
	X, y, _ := synth(400, rand.New(rand.NewSource(3)))
	mi := MutualInformation(X, y)
	if mi[0] < 0.99 { // perfect predictor of a balanced class = 1 bit
		t.Fatalf("MI of signal = %v", mi[0])
	}
	if mi[5] < 0.99 { // anti-correlation carries the same information
		t.Fatalf("MI of anti-signal = %v", mi[5])
	}
	if mi[3] > 0.1 {
		t.Fatalf("MI of noise = %v", mi[3])
	}
	if mi[4] > 1e-9 {
		t.Fatalf("MI of constant = %v", mi[4])
	}
}

func TestCorrelationGroups(t *testing.T) {
	X, y, _ := synth(300, rand.New(rand.NewSource(4)))
	groups := CorrelationGroups(X, y, 0.98)
	// f0, f1, f2, f5 are all mutually |corr|=1: one group of 4.
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	if len(groups[0].Members) != 4 {
		t.Fatalf("group size = %d, want 4", len(groups[0].Members))
	}
}

func TestSelectKeepsReplicasDropsDuplicates(t *testing.T) {
	X, y, comps := synth(300, rand.New(rand.NewSource(5)))
	sel := Select(X, y, comps, SelectConfig{GroupThreshold: 0.98, MaxFeatures: 10, MinMI: 1e-4})

	has := func(j int) bool {
		for _, v := range sel.Indices {
			if v == j {
				return true
			}
		}
		return false
	}
	// Cross-component replicas survive: f0 (fetch) and f1 (commit) and f5
	// (dcache) should all be selected.
	if !has(0) || !has(1) || !has(5) {
		t.Fatalf("replicated features dropped: %v", sel.Indices)
	}
	// f2 duplicates f0 within the same component: dropped.
	if has(2) {
		t.Fatalf("within-component duplicate survived: %v", sel.Indices)
	}
	// The constant feature must never be selected.
	if has(4) {
		t.Fatalf("constant feature selected")
	}
}

func TestSelectRespectsBudget(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n, f := 200, 40
	X := make([][]float64, n)
	y := make([]float64, n)
	comps := make([]stats.Component, f)
	for j := range comps {
		comps[j] = stats.Component(j % int(stats.NumComponents))
	}
	for i := range X {
		y[i] = float64(2*(i%2) - 1)
		row := make([]float64, f)
		for j := range row {
			row[j] = r.Float64()
			if j%4 == 0 && y[i] > 0 {
				row[j] += 0.5 // weakly informative quarter
			}
		}
		X[i] = row
	}
	sel := Select(X, y, comps, SelectConfig{GroupThreshold: 0.98, MaxFeatures: 7, MinMI: 0})
	if len(sel.Indices) != 7 {
		t.Fatalf("budget violated: %d", len(sel.Indices))
	}
	seen := map[int]bool{}
	for _, j := range sel.Indices {
		if seen[j] {
			t.Fatalf("duplicate selection %d", j)
		}
		seen[j] = true
	}
}

func TestMAPFeatures(t *testing.T) {
	names := []string{
		"commit.op_class_0::IntAlu",
		"commit.committedInsts",
		"fetch.SquashCycles",
		"dcache.overall_misses",
		"lsq.thread0.squashedLoads",
	}
	idx := MAPFeatures(names)
	if len(idx) != 3 {
		t.Fatalf("MAP features = %v", idx)
	}
	for _, j := range idx {
		if names[j] == "fetch.SquashCycles" || names[j] == "lsq.thread0.squashedLoads" {
			t.Fatalf("MAP features include speculative-state counters")
		}
	}
}

func TestCrossComponentGroups(t *testing.T) {
	comps := []stats.Component{stats.CompFetch, stats.CompFetch, stats.CompCommit}
	groups := []Group{
		{Members: []int{0, 1}},    // same component only
		{Members: []int{0, 1, 2}}, // spans two components
	}
	out := CrossComponentGroups(groups, comps)
	if len(out) != 1 || len(out[0].Members) != 3 {
		t.Fatalf("cross-component filter wrong: %v", out)
	}
}

func TestEmptyInputs(t *testing.T) {
	if m := ComputeMoments(nil); m.Mean != nil {
		t.Fatalf("moments of empty set")
	}
	if mi := MutualInformation(nil, nil); mi != nil {
		t.Fatalf("MI of empty set")
	}
}
