package features

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perspectron/internal/stats"
)

// TestQuickGroupThresholdMonotone: raising the grouping threshold can only
// shrink or split groups (total grouped features never grows).
func TestQuickGroupThresholdMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, fdim := 60, 12
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			y[i] = float64(2*(i%2) - 1)
			row := make([]float64, fdim)
			base := r.Float64()
			for j := range row {
				if j < 4 {
					row[j] = base // perfectly correlated quartet
				} else {
					row[j] = r.Float64()
				}
			}
			X[i] = row
		}
		grouped := func(thr float64) int {
			total := 0
			for _, g := range CorrelationGroups(X, y, thr) {
				total += len(g.Members)
			}
			return total
		}
		return grouped(0.99) <= grouped(0.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSelectionSubsetOfInformative: selected features always carry MI
// at least MinMI and never include zero-variance columns.
func TestQuickSelectionWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, fdim := 80, 20
		X := make([][]float64, n)
		y := make([]float64, n)
		comps := make([]stats.Component, fdim)
		for j := range comps {
			comps[j] = stats.Component(j % int(stats.NumComponents))
		}
		for i := range X {
			y[i] = float64(2*(i%2) - 1)
			row := make([]float64, fdim)
			for j := range row {
				switch {
				case j == 0:
					row[j] = 0.5 // constant
				case j%3 == 0 && y[i] > 0:
					row[j] = 0.8 + 0.2*r.Float64()
				default:
					row[j] = r.Float64() * 0.6
				}
			}
			X[i] = row
		}
		cfg := SelectConfig{GroupThreshold: 0.98, MaxFeatures: 8, MinMI: 1e-4}
		sel := Select(X, y, comps, cfg)
		if len(sel.Indices) > cfg.MaxFeatures {
			return false
		}
		for _, j := range sel.Indices {
			if j == 0 { // the constant column
				return false
			}
			if sel.MI[j] < cfg.MinMI {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionRoundRobinBalance(t *testing.T) {
	// With equally informative features in every component, the greedy
	// round-robin must not let one component dominate.
	r := rand.New(rand.NewSource(5))
	n := 200
	nComp := int(stats.NumComponents)
	fdim := nComp * 4
	X := make([][]float64, n)
	y := make([]float64, n)
	comps := make([]stats.Component, fdim)
	for j := range comps {
		comps[j] = stats.Component(j % nComp)
	}
	for i := range X {
		y[i] = float64(2*(i%2) - 1)
		row := make([]float64, fdim)
		for j := range row {
			// Every feature weakly informative plus independent noise.
			row[j] = r.Float64() * 0.5
			if y[i] > 0 && r.Float64() < 0.7 {
				row[j] += 0.5
			}
		}
		X[i] = row
	}
	sel := Select(X, y, comps, SelectConfig{GroupThreshold: 0.999, MaxFeatures: nComp * 2, MinMI: 0})
	perComp := map[stats.Component]int{}
	for _, j := range sel.Indices {
		perComp[comps[j]]++
	}
	for c, cnt := range perComp {
		if cnt > 3 {
			t.Fatalf("component %v dominates with %d selections", c, cnt)
		}
	}
	if len(perComp) < nComp {
		t.Fatalf("only %d of %d components represented", len(perComp), nComp)
	}
}
