// Package features implements the paper's feature-selection pipeline
// (§IV-B): Pearson correlation over the full counter space, grouping of
// closely correlated features (|c| > 0.98), decorrelation *within* a
// pipeline component while deliberately keeping correlated replicas in
// *different* components (replicated detectors), and a greedy per-component
// selection by mutual information with the class, down to the paper's 106
// features.
//
// It also provides the MAP-style committed-state feature subset used as the
// prior-work baseline in Table IV.
package features

import (
	"context"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"perspectron/internal/encoding"
	"perspectron/internal/stats"
	"perspectron/internal/telemetry"
)

// Workers bounds the worker goroutines the selection kernels fan out to.
// 0 (the default) uses runtime.GOMAXPROCS; 1 forces the serial path — the
// dense-baseline configuration the hot-path benchmarks measure against.
// Results are bit-identical for any worker count: work items (feature
// columns, feature pairs) are self-contained and written to disjoint slots.
var Workers int

// ForceDense disables the bit-packed popcount kernels so benchmarks and
// tests can measure the dense float path on 0/1 input. The packed kernels
// are otherwise chosen automatically whenever the input matrix is exactly
// 0/1 (and, for ClassCorrelation, the labels are ±1).
var ForceDense bool

// parallelDo runs fn(0..n-1) across the configured worker count, handing
// out indices through an atomic counter so uneven items (the triangular
// pair sweep) stay balanced. fn must write only to its own index's state.
func parallelDo(n int, fn func(i int)) {
	workers := Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// isBinaryMatrix reports whether every entry of X is exactly 0 or 1 — the
// precondition for the popcount kernels.
func isBinaryMatrix(X [][]float64) bool {
	for _, row := range X {
		for _, v := range row {
			if v != 0 && v != 1 {
				return false
			}
		}
	}
	return true
}

// isSignLabels reports whether every label is exactly ±1.
func isSignLabels(y []float64) bool {
	for _, v := range y {
		if v != 1 && v != -1 {
			return false
		}
	}
	return true
}

// binaryPearson is the Pearson correlation of two 0/1 columns of length n
// from their one-counts ca, cb and co-occurrence count cab. All products
// stay below 2^53 for any realistic corpus, so the only roundings are the
// two square roots and the final division — the popcount kernel and the
// loop-based reference compute bit-identical values by construction.
func binaryPearson(n, ca, cb, cab int) float64 {
	den := math.Sqrt(float64(ca*(n-ca))) * math.Sqrt(float64(cb*(n-cb)))
	if den == 0 {
		return 0
	}
	return float64(n*cab-ca*cb) / den
}

// binaryClassCorr is the Pearson correlation between a 0/1 column (ca ones,
// sxy = Σ x·y) and ±1 labels with sum sy, over n samples.
func binaryClassCorr(n, ca, sxy, sy int) float64 {
	den := math.Sqrt(float64(ca*(n-ca))) * math.Sqrt(float64(n*n-sy*sy))
	if den == 0 {
		return 0
	}
	return float64(n*sxy-ca*sy) / den
}

// Moments holds per-feature mean and standard deviation over a sample set.
type Moments struct {
	Mean, Std []float64
}

// ComputeMoments returns the column-wise moments of X.
func ComputeMoments(X [][]float64) Moments {
	n := len(X)
	if n == 0 {
		return Moments{}
	}
	f := len(X[0])
	mean := make([]float64, f)
	for _, row := range X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	std := make([]float64, f)
	for _, row := range X {
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
	}
	return Moments{Mean: mean, Std: std}
}

// Pearson computes the correlation between columns a and b of X given
// precomputed moments. Zero-variance columns correlate as 0.
func Pearson(X [][]float64, m Moments, a, b int) float64 {
	if m.Std[a] == 0 || m.Std[b] == 0 {
		return 0
	}
	var s float64
	for _, row := range X {
		s += (row[a] - m.Mean[a]) * (row[b] - m.Mean[b])
	}
	return s / (float64(len(X)) * m.Std[a] * m.Std[b])
}

// ClassCorrelation returns, for every feature, the Pearson correlation with
// the ±1 class labels. Features are swept in parallel (see Workers). When X
// is exactly 0/1 and the labels are ±1, each correlation is computed from
// popcounts over bit-packed columns via the exact integer identity
// binaryClassCorr — mathematically equal to the dense form, differing only
// in the rounding of intermediates.
func ClassCorrelation(X [][]float64, y []float64) []float64 {
	m := ComputeMoments(X)
	n := len(X)
	var ym, ys float64
	for _, v := range y {
		ym += v
	}
	ym /= float64(n)
	for _, v := range y {
		ys += (v - ym) * (v - ym)
	}
	ys = math.Sqrt(ys / float64(n))
	out := make([]float64, len(m.Mean))
	if ys == 0 {
		return out
	}
	if !ForceDense && isBinaryMatrix(X) && isSignLabels(y) {
		ypos := encoding.PackThreshold(y, 0) // bit i set iff y[i] = +1
		nPos := ypos.Ones()
		sy := nPos - (n - nPos)
		parallelDo(len(out), func(j int) {
			col := encoding.PackColumn(X, j, 1)
			ca := col.Ones()
			c11 := col.AndCount(ypos)
			// Σ x·y over ±1 labels: ones on the +1 side minus ones on
			// the -1 side.
			sxy := c11 - (ca - c11)
			out[j] = binaryClassCorr(n, ca, sxy, sy)
		})
		return out
	}
	parallelDo(len(out), func(j int) {
		if m.Std[j] == 0 {
			return
		}
		var s float64
		for i, row := range X {
			s += (row[j] - m.Mean[j]) * (y[i] - ym)
		}
		out[j] = s / (float64(n) * m.Std[j] * ys)
	})
	return out
}

// MutualInformation returns, per feature, the mutual information (in bits)
// between the binarized feature (threshold 0.5) and the class.
//
// The contingency counts are gathered by popcount over bit-packed columns
// and features are swept in parallel; since the counts are exact integers
// either way and the downstream arithmetic is unchanged, the result is
// bit-identical to the historical dense row loop (pinned by
// TestMutualInformationPackedBitIdentical).
func MutualInformation(X [][]float64, y []float64) []float64 {
	n := len(X)
	if n == 0 {
		return nil
	}
	f := len(X[0])
	out := make([]float64, f)
	ypos := encoding.NewBitVec(n) // bit i set iff y[i] > 0
	for i, v := range y {
		if v > 0 {
			ypos.Set(i)
		}
	}
	nPosInt := ypos.Ones()
	pY1 := float64(nPosInt) / float64(n)
	parallelDo(f, func(j int) {
		col := encoding.PackColumn(X, j, encoding.BinarizeThreshold)
		onesJ := col.Ones()
		c11i := col.AndCount(ypos)
		c11 := float64(c11i)
		c10 := float64(onesJ - c11i)
		c01 := float64(nPosInt - c11i)
		c00 := float64(n - onesJ - (nPosInt - c11i))
		pX1 := (c11 + c10) / float64(n)
		mi := 0.0
		add := func(c, px, py float64) {
			if c == 0 || px == 0 || py == 0 {
				return
			}
			p := c / float64(n)
			mi += p * math.Log2(p/(px*py))
		}
		add(c11, pX1, pY1)
		add(c10, pX1, 1-pY1)
		add(c01, 1-pX1, pY1)
		add(c00, 1-pX1, 1-pY1)
		out[j] = mi
	})
	return out
}

// Group is one set of mutually correlated features (Table I column).
type Group struct {
	Members []int // feature indices, ranked by |class correlation| desc
}

// CorrelationGroups clusters features whose pairwise |Pearson| exceeds
// threshold, using single-linkage over the features with non-zero variance.
// Groups are returned largest-first; members are ranked by class
// correlation, matching Table I's presentation.
//
// The O(f²·n) pair sweep — the dominant cost of selection over the paper's
// ~1159 counters — is sharded across Workers goroutines; each pair's
// correlation is computed independently, so the resulting partition is
// identical to the serial sweep. On exactly-0/1 input the sweep further
// drops to popcounts over bit-packed columns (binaryPearson), turning each
// pair into ~n/64 word operations.
func CorrelationGroups(X [][]float64, y []float64, threshold float64) []Group {
	m := ComputeMoments(X)
	f := len(m.Mean)
	parent := make([]int, f)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	active := make([]int, 0, f)
	for j := 0; j < f; j++ {
		if m.Std[j] > 0 {
			active = append(active, j)
		}
	}

	// Sweep all pairs in parallel, collecting over-threshold edges into
	// per-row slots (disjoint per work item); unions are applied serially
	// afterwards. Single-linkage components are order-independent, so the
	// partition matches the historical serial union order exactly.
	n := len(X)
	edges := make([][]int, len(active)) // edges[ai] = indices bi > ai linked to ai
	if !ForceDense && isBinaryMatrix(X) {
		cols := make([]encoding.BitVec, len(active))
		ones := make([]int, len(active))
		parallelDo(len(active), func(ai int) {
			cols[ai] = encoding.PackColumn(X, active[ai], 1)
			ones[ai] = cols[ai].Ones()
		})
		parallelDo(len(active), func(ai int) {
			var row []int
			for bi := ai + 1; bi < len(active); bi++ {
				r := binaryPearson(n, ones[ai], ones[bi], cols[ai].AndCount(cols[bi]))
				if math.Abs(r) >= threshold {
					row = append(row, bi)
				}
			}
			edges[ai] = row
		})
	} else {
		parallelDo(len(active), func(ai int) {
			var row []int
			a := active[ai]
			for bi := ai + 1; bi < len(active); bi++ {
				if math.Abs(Pearson(X, m, a, active[bi])) >= threshold {
					row = append(row, bi)
				}
			}
			edges[ai] = row
		})
	}
	for ai, row := range edges {
		for _, bi := range row {
			union(active[ai], active[bi])
		}
	}

	byRoot := map[int][]int{}
	for _, j := range active {
		r := find(j)
		byRoot[r] = append(byRoot[r], j)
	}
	cc := ClassCorrelation(X, y)
	var groups []Group
	for _, members := range byRoot {
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(i, k int) bool {
			return math.Abs(cc[members[i]]) > math.Abs(cc[members[k]])
		})
		groups = append(groups, Group{Members: members})
	}
	sort.Slice(groups, func(i, k int) bool {
		if len(groups[i].Members) != len(groups[k].Members) {
			return len(groups[i].Members) > len(groups[k].Members)
		}
		return groups[i].Members[0] < groups[k].Members[0]
	})
	return groups
}

// SelectConfig parameterizes the PerSpectron selection algorithm.
type SelectConfig struct {
	// GroupThreshold is the |Pearson| above which two features are
	// "closely correlated" (paper: 0.98).
	GroupThreshold float64
	// MaxFeatures is the selection budget m (paper: 106).
	MaxFeatures int
	// MinMI drops features carrying essentially no class information.
	MinMI float64
}

// DefaultSelectConfig returns the paper's parameters.
func DefaultSelectConfig() SelectConfig {
	return SelectConfig{GroupThreshold: 0.98, MaxFeatures: 106, MinMI: 1e-4}
}

// Selection is the outcome of the PerSpectron algorithm.
type Selection struct {
	// Indices are the selected feature indices in pick order.
	Indices []int
	// Groups are the cross-component correlation groups found (Table I).
	Groups []Group
	// MI holds the per-feature mutual information used for ranking.
	MI []float64
}

// Select runs the paper's three-step procedure over scaled features X with
// labels y and per-feature component assignments comps:
//
//  1. correlate all features and form groups at GroupThreshold;
//  2. within each component, keep only the most informative member of each
//     group (decorrelation), while members of the same group in *other*
//     components survive as replicated detectors;
//  3. greedily pick features per component in round-robin order of mutual
//     information until MaxFeatures.
func Select(X [][]float64, y []float64, comps []stats.Component, cfg SelectConfig) Selection {
	ctx, span := telemetry.StartSpan(context.Background(), "select")
	defer span.End()

	_, miSpan := telemetry.StartSpan(ctx, "mi")
	mi := MutualInformation(X, y)
	miSpan.End()
	groups := CorrelationGroups(X, y, cfg.GroupThreshold)

	// Step 2: within-component decorrelation. For every (group, component)
	// pair keep the member with the highest MI.
	dropped := make([]bool, len(mi))
	for _, g := range groups {
		best := map[stats.Component]int{}
		for _, j := range g.Members {
			c := comps[j]
			if b, ok := best[c]; !ok || mi[j] > mi[b] {
				best[c] = j
			}
		}
		for _, j := range g.Members {
			if best[comps[j]] != j {
				dropped[j] = true
			}
		}
	}

	// Step 3: per-component ranked banks, drained round-robin.
	banks := make([][]int, stats.NumComponents)
	for j := range mi {
		if dropped[j] || mi[j] < cfg.MinMI {
			continue
		}
		c := comps[j]
		banks[c] = append(banks[c], j)
	}
	for c := range banks {
		b := banks[c]
		sort.Slice(b, func(i, k int) bool { return mi[b[i]] > mi[b[k]] })
	}

	var picked []int
	for len(picked) < cfg.MaxFeatures {
		progress := false
		for c := range banks {
			if len(banks[c]) == 0 {
				continue
			}
			picked = append(picked, banks[c][0])
			banks[c] = banks[c][1:]
			progress = true
			if len(picked) >= cfg.MaxFeatures {
				break
			}
		}
		if !progress {
			break
		}
	}
	if reg := telemetry.Get(); reg != nil {
		reg.Gauge("perspectron_select_groups").Set(float64(len(groups)))
		reg.Gauge("perspectron_select_features").Set(float64(len(picked)))
	}
	return Selection{Indices: picked, Groups: groups, MI: mi}
}

// MAPFeatures returns the indices of the committed-state features a
// MAP-style malware detector monitors (instruction-class mix, architectural
// memory/branch counts, L1 access totals) — the prior-work baseline feature
// set of Table IV.
func MAPFeatures(names []string) []int {
	var idx []int
	for j, n := range names {
		switch {
		case strings.HasPrefix(n, "commit.op_class_0::"),
			n == "commit.committedInsts",
			n == "commit.branches",
			n == "commit.loads",
			n == "commit.stores",
			n == "commit.branchMispredicts",
			n == "icache.overall_accesses",
			n == "icache.overall_misses",
			n == "dcache.overall_accesses",
			n == "dcache.overall_misses",
			n == "dcache.overall_hits":
			idx = append(idx, j)
		}
	}
	return idx
}

// CrossComponentGroups filters groups down to those spanning at least two
// components — the replicated-detector groups Table I presents.
func CrossComponentGroups(groups []Group, comps []stats.Component) []Group {
	var out []Group
	for _, g := range groups {
		seen := map[stats.Component]bool{}
		for _, j := range g.Members {
			seen[comps[j]] = true
		}
		if len(seen) >= 2 {
			out = append(out, g)
		}
	}
	return out
}
