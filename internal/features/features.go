// Package features implements the paper's feature-selection pipeline
// (§IV-B): Pearson correlation over the full counter space, grouping of
// closely correlated features (|c| > 0.98), decorrelation *within* a
// pipeline component while deliberately keeping correlated replicas in
// *different* components (replicated detectors), and a greedy per-component
// selection by mutual information with the class, down to the paper's 106
// features.
//
// Selection is the dominant offline cost, so the default path runs through
// a shared per-call selection context (see context.go): the input matrix is
// classified (exactly-0/1?, ±1 labels?) once, bit-packed into a column-major
// PackedMatrix once, and its moments are computed once; the mutual
// information, class correlation and correlation-group kernels all read from
// that context instead of re-deriving those passes per kernel. The
// correlation pair sweep — O(f²·n) over the paper's counter space — runs
// blocked (cache-resident column tiles, balanced work items) and, on dense
// input, prunes pairs that provably cannot reach the grouping threshold via
// per-column suffix norms. Outputs are identical to the historical
// per-kernel implementations, which remain available behind SetForceDense
// as the benchmark baseline and property-test reference.
//
// It also provides the MAP-style committed-state feature subset used as the
// prior-work baseline in Table IV.
package features

import (
	"context"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"perspectron/internal/encoding"
	"perspectron/internal/stats"
	"perspectron/internal/telemetry"
)

// workers bounds the worker goroutines the selection kernels fan out to;
// forceDense pins the legacy per-kernel reference path. Both are atomics so
// benchmarks and tests can retune them while a selection is running on
// another goroutine without tripping the race detector (the knobs used to
// be bare package globals read concurrently by parallelDo workers).
var (
	workers    atomic.Int32
	forceDense atomic.Bool
)

// SetWorkers bounds the worker goroutines the selection kernels fan out to.
// 0 (the default) uses runtime.GOMAXPROCS; 1 forces the serial path — the
// dense-baseline configuration the hot-path benchmarks measure against.
// Results are bit-identical for any worker count: work items (feature
// columns, column-block pairs) are self-contained and written to disjoint
// slots.
func SetWorkers(n int) { workers.Store(int32(n)) }

// SetForceDense routes the selection kernels through the legacy per-kernel
// implementations (per-kernel matrix scans, per-pair dense Pearson over the
// row-major matrix) instead of the shared selection context. This is the
// seed-implementation baseline the hot-path benchmarks compare against and
// the reference the packed-context property tests pin to; production code
// never sets it.
func SetForceDense(v bool) { forceDense.Store(v) }

// parallelDo runs fn(0..n-1) across the configured worker count, handing
// out indices through an atomic counter so uneven items stay balanced.
// fn must write only to its own index's state.
func parallelDo(n int, fn func(i int)) {
	w := int(workers.Load())
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// isBinaryMatrix reports whether every entry of X is exactly 0 or 1 — the
// precondition for the popcount kernels.
func isBinaryMatrix(X [][]float64) bool {
	for _, row := range X {
		for _, v := range row {
			if v != 0 && v != 1 {
				return false
			}
		}
	}
	return true
}

// isSignLabels reports whether every label is exactly ±1.
func isSignLabels(y []float64) bool {
	for _, v := range y {
		if v != 1 && v != -1 {
			return false
		}
	}
	return true
}

// binaryPearson is the Pearson correlation of two 0/1 columns of length n
// from their one-counts ca, cb and co-occurrence count cab. All products
// stay below 2^53 for any realistic corpus, so the only roundings are the
// two square roots and the final division — the popcount kernel and the
// loop-based reference compute bit-identical values by construction.
func binaryPearson(n, ca, cb, cab int) float64 {
	den := math.Sqrt(float64(ca*(n-ca))) * math.Sqrt(float64(cb*(n-cb)))
	if den == 0 {
		return 0
	}
	return float64(n*cab-ca*cb) / den
}

// binaryClassCorr is the Pearson correlation between a 0/1 column (ca ones,
// sxy = Σ x·y) and ±1 labels with sum sy, over n samples.
func binaryClassCorr(n, ca, sxy, sy int) float64 {
	den := math.Sqrt(float64(ca*(n-ca))) * math.Sqrt(float64(n*n-sy*sy))
	if den == 0 {
		return 0
	}
	return float64(n*sxy-ca*sy) / den
}

// Moments holds per-feature mean and standard deviation over a sample set.
type Moments struct {
	Mean, Std []float64
}

// ComputeMoments returns the column-wise moments of X.
func ComputeMoments(X [][]float64) Moments {
	n := len(X)
	if n == 0 {
		return Moments{}
	}
	f := len(X[0])
	mean := make([]float64, f)
	for _, row := range X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	std := make([]float64, f)
	for _, row := range X {
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
	}
	return Moments{Mean: mean, Std: std}
}

// Pearson computes the correlation between columns a and b of X given
// precomputed moments. Zero-variance columns correlate as 0.
func Pearson(X [][]float64, m Moments, a, b int) float64 {
	if m.Std[a] == 0 || m.Std[b] == 0 {
		return 0
	}
	var s float64
	for _, row := range X {
		s += (row[a] - m.Mean[a]) * (row[b] - m.Mean[b])
	}
	return s / (float64(len(X)) * m.Std[a] * m.Std[b])
}

// ClassCorrelation returns, for every feature, the Pearson correlation with
// the ±1 class labels. When X is exactly 0/1 and the labels are ±1, each
// correlation is computed from popcounts over the context's bit-packed
// columns via the exact integer identity binaryClassCorr — mathematically
// equal to the dense form, differing only in the rounding of intermediates.
func ClassCorrelation(X [][]float64, y []float64) []float64 {
	if forceDense.Load() || len(X) == 0 || len(X[0]) == 0 {
		return legacyClassCorrelation(X, y)
	}
	sc := newSelCtx(X, y)
	defer sc.release()
	return sc.classCorrelation()
}

// legacyClassCorrelation is the historical dense implementation: its own
// moments pass plus a per-feature row loop. Kept verbatim as the
// SetForceDense baseline and property-test reference.
func legacyClassCorrelation(X [][]float64, y []float64) []float64 {
	m := ComputeMoments(X)
	n := len(X)
	var ym, ys float64
	for _, v := range y {
		ym += v
	}
	ym /= float64(n)
	for _, v := range y {
		ys += (v - ym) * (v - ym)
	}
	ys = math.Sqrt(ys / float64(n))
	out := make([]float64, len(m.Mean))
	if ys == 0 {
		return out
	}
	parallelDo(len(out), func(j int) {
		if m.Std[j] == 0 {
			return
		}
		var s float64
		for i, row := range X {
			s += (row[j] - m.Mean[j]) * (y[i] - ym)
		}
		out[j] = s / (float64(n) * m.Std[j] * ys)
	})
	return out
}

// MutualInformation returns, per feature, the mutual information (in bits)
// between the binarized feature (threshold 0.5) and the class.
//
// The contingency counts are gathered by popcount over the context's
// bit-packed columns and features are swept in parallel; since the counts
// are exact integers either way and the downstream arithmetic is unchanged,
// the result is bit-identical to the historical dense row loop (pinned by
// TestMutualInformationPackedBitIdentical).
func MutualInformation(X [][]float64, y []float64) []float64 {
	if len(X) == 0 {
		return nil
	}
	if forceDense.Load() || len(X[0]) == 0 {
		return legacyMutualInformation(X, y)
	}
	sc := newSelCtx(X, y)
	defer sc.release()
	return sc.mutualInformation()
}

// legacyMutualInformation is the per-kernel implementation MutualInformation
// shipped with: it re-packs every column itself (one PackColumn per
// feature) instead of reading a shared PackedMatrix. Kept as the
// SetForceDense baseline.
func legacyMutualInformation(X [][]float64, y []float64) []float64 {
	n := len(X)
	if n == 0 {
		return nil
	}
	f := len(X[0])
	out := make([]float64, f)
	ypos := encoding.NewBitVec(n) // bit i set iff y[i] > 0
	for i, v := range y {
		if v > 0 {
			ypos.Set(i)
		}
	}
	nPosInt := ypos.Ones()
	pY1 := float64(nPosInt) / float64(n)
	parallelDo(f, func(j int) {
		col := encoding.PackColumn(X, j, encoding.BinarizeThreshold)
		out[j] = miFromCounts(n, col.Ones(), col.AndCount(ypos), nPosInt, pY1)
	})
	return out
}

// miFromCounts computes the mutual information of one binarized feature
// with the class from its contingency counts: onesJ set bits in the
// feature column, c11i co-occurrences with the positive class, nPos
// positives, pY1 = nPos/n. The arithmetic is exactly the historical dense
// loop's, so any kernel that feeds it the same integers is bit-identical.
func miFromCounts(n, onesJ, c11i, nPos int, pY1 float64) float64 {
	c11 := float64(c11i)
	c10 := float64(onesJ - c11i)
	c01 := float64(nPos - c11i)
	c00 := float64(n - onesJ - (nPos - c11i))
	pX1 := (c11 + c10) / float64(n)
	mi := 0.0
	add := func(c, px, py float64) {
		if c == 0 || px == 0 || py == 0 {
			return
		}
		p := c / float64(n)
		mi += p * math.Log2(p/(px*py))
	}
	add(c11, pX1, pY1)
	add(c10, pX1, 1-pY1)
	add(c01, 1-pX1, pY1)
	add(c00, 1-pX1, 1-pY1)
	return mi
}

// Group is one set of mutually correlated features (Table I column).
type Group struct {
	Members []int // feature indices, ranked by |class correlation| desc
}

// CorrelationGroups clusters features whose pairwise |Pearson| exceeds
// threshold, using single-linkage over the features with non-zero variance.
// Groups are returned largest-first, ties broken by smallest member index;
// members are ranked by class correlation, matching Table I's presentation.
//
// The O(f²·n) pair sweep — the dominant cost of selection over the paper's
// ~1159 counters — runs over cache-blocked column-pair work items sharded
// across the configured workers. On exactly-0/1 input each pair drops to
// popcounts over the shared bit-packed columns (binaryPearson); on dense
// input the sweep runs over contiguous centered columns with a suffix-norm
// bound that exactly prunes pairs which cannot reach the threshold (see
// denseEdges). Either way the partition is identical to the serial
// per-pair sweep.
func CorrelationGroups(X [][]float64, y []float64, threshold float64) []Group {
	if forceDense.Load() || len(X) == 0 || len(X[0]) == 0 {
		return legacyCorrelationGroups(X, y, threshold)
	}
	sc := newSelCtx(X, y)
	defer sc.release()
	return sc.correlationGroups(threshold)
}

// legacyCorrelationGroups is the historical dense implementation: a
// per-kernel moments pass and a per-pair Pearson sweep over the row-major
// matrix, sharded per row (row ai carries len(active)-ai pairs). Kept as
// the SetForceDense baseline and reference.
func legacyCorrelationGroups(X [][]float64, y []float64, threshold float64) []Group {
	m := ComputeMoments(X)
	f := len(m.Mean)
	active := make([]int, 0, f)
	for j := 0; j < f; j++ {
		if m.Std[j] > 0 {
			active = append(active, j)
		}
	}

	// Sweep all pairs in parallel, collecting over-threshold edges into
	// per-row slots (disjoint per work item); unions are applied serially
	// afterwards. Single-linkage components are order-independent, so the
	// partition matches the historical serial union order exactly.
	edges := make([][]int, len(active)) // edges[ai] = indices bi > ai linked to ai
	parallelDo(len(active), func(ai int) {
		var row []int
		a := active[ai]
		for bi := ai + 1; bi < len(active); bi++ {
			if math.Abs(Pearson(X, m, a, active[bi])) >= threshold {
				row = append(row, bi)
			}
		}
		edges[ai] = row
	})

	uf := newUnionFind(f)
	for ai, row := range edges {
		for _, bi := range row {
			uf.union(active[ai], active[bi])
		}
	}
	return assembleGroups(active, uf, ClassCorrelation(X, y))
}

// unionFind is the single-linkage merge structure shared by every pair
// sweep; unions are always applied serially after the parallel sweep.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(i int) int {
	if u.parent[i] != i {
		u.parent[i] = u.find(u.parent[i])
	}
	return u.parent[i]
}

func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

// assembleGroups turns a merged partition over the active features into the
// presented group list: members ranked by |class correlation| descending,
// groups ordered largest-first with ties broken by the smallest member
// index. The tie-break deliberately uses the smallest *feature index* (not
// Members[0] after the class-correlation re-ranking, as the original
// implementation did): equal-size groups now order by a layout-independent
// key instead of by whichever member happens to rank first.
func assembleGroups(active []int, uf *unionFind, cc []float64) []Group {
	byRoot := map[int][]int{}
	for _, j := range active {
		r := uf.find(j)
		byRoot[r] = append(byRoot[r], j)
	}
	var groups []Group
	var minIdx []int // smallest member of groups[i]; members arrive ascending
	for _, members := range byRoot {
		if len(members) < 2 {
			continue
		}
		lo := members[0]
		sort.Slice(members, func(i, k int) bool {
			return math.Abs(cc[members[i]]) > math.Abs(cc[members[k]])
		})
		groups = append(groups, Group{Members: members})
		minIdx = append(minIdx, lo)
	}
	sort.Sort(&groupSorter{groups: groups, minIdx: minIdx})
	return groups
}

// groupSorter orders groups by size descending, then smallest member index
// ascending — a total order (the partition makes minimum members unique),
// so the output never depends on map iteration or union order.
type groupSorter struct {
	groups []Group
	minIdx []int
}

func (s *groupSorter) Len() int { return len(s.groups) }
func (s *groupSorter) Less(i, k int) bool {
	if len(s.groups[i].Members) != len(s.groups[k].Members) {
		return len(s.groups[i].Members) > len(s.groups[k].Members)
	}
	return s.minIdx[i] < s.minIdx[k]
}
func (s *groupSorter) Swap(i, k int) {
	s.groups[i], s.groups[k] = s.groups[k], s.groups[i]
	s.minIdx[i], s.minIdx[k] = s.minIdx[k], s.minIdx[i]
}

// SelectConfig parameterizes the PerSpectron selection algorithm.
type SelectConfig struct {
	// GroupThreshold is the |Pearson| above which two features are
	// "closely correlated" (paper: 0.98).
	GroupThreshold float64
	// MaxFeatures is the selection budget m (paper: 106).
	MaxFeatures int
	// MinMI drops features carrying essentially no class information.
	MinMI float64
}

// DefaultSelectConfig returns the paper's parameters.
func DefaultSelectConfig() SelectConfig {
	return SelectConfig{GroupThreshold: 0.98, MaxFeatures: 106, MinMI: 1e-4}
}

// Selection is the outcome of the PerSpectron algorithm.
type Selection struct {
	// Indices are the selected feature indices in pick order.
	Indices []int
	// Groups are the cross-component correlation groups found (Table I).
	Groups []Group
	// MI holds the per-feature mutual information used for ranking.
	MI []float64
}

// Select runs the paper's three-step selection; see SelectCtx.
func Select(X [][]float64, y []float64, comps []stats.Component, cfg SelectConfig) Selection {
	return SelectCtx(context.Background(), X, y, comps, cfg)
}

// SelectCtx runs the paper's three-step procedure over scaled features X
// with labels y and per-feature component assignments comps, attaching its
// telemetry spans to the caller's context (so a selection inside a training
// run nests under the "train" span instead of starting a fresh trace):
//
//  1. correlate all features and form groups at GroupThreshold;
//  2. within each component, keep only the most informative member of each
//     group (decorrelation), while members of the same group in *other*
//     components survive as replicated detectors;
//  3. greedily pick features per component in round-robin order of mutual
//     information until MaxFeatures.
//
// Both kernels of step 1 run off one shared selection context — the matrix
// is scanned, packed and centered exactly once per call.
func SelectCtx(ctx context.Context, X [][]float64, y []float64, comps []stats.Component, cfg SelectConfig) Selection {
	ctx, span := telemetry.StartSpan(ctx, "select")
	defer span.End()

	var mi []float64
	var groups []Group
	if forceDense.Load() || len(X) == 0 || len(X[0]) == 0 {
		_, miSpan := telemetry.StartSpan(ctx, "mi")
		mi = MutualInformation(X, y)
		miSpan.End()
		_, gSpan := telemetry.StartSpan(ctx, "groups")
		groups = CorrelationGroups(X, y, cfg.GroupThreshold)
		gSpan.End()
	} else {
		_, packSpan := telemetry.StartSpan(ctx, "pack")
		sc := newSelCtx(X, y)
		defer sc.release()
		packSpan.End()
		_, miSpan := telemetry.StartSpan(ctx, "mi")
		mi = sc.mutualInformation()
		miSpan.End()
		_, gSpan := telemetry.StartSpan(ctx, "groups")
		groups = sc.correlationGroups(cfg.GroupThreshold)
		gSpan.End()
	}

	// Step 2: within-component decorrelation. For every (group, component)
	// pair keep the member with the highest MI.
	dropped := make([]bool, len(mi))
	for _, g := range groups {
		best := map[stats.Component]int{}
		for _, j := range g.Members {
			c := comps[j]
			if b, ok := best[c]; !ok || mi[j] > mi[b] {
				best[c] = j
			}
		}
		for _, j := range g.Members {
			if best[comps[j]] != j {
				dropped[j] = true
			}
		}
	}

	// Step 3: per-component ranked banks, drained round-robin.
	banks := make([][]int, stats.NumComponents)
	for j := range mi {
		if dropped[j] || mi[j] < cfg.MinMI {
			continue
		}
		c := comps[j]
		banks[c] = append(banks[c], j)
	}
	for c := range banks {
		b := banks[c]
		sort.Slice(b, func(i, k int) bool { return mi[b[i]] > mi[b[k]] })
	}

	var picked []int
	for len(picked) < cfg.MaxFeatures {
		progress := false
		for c := range banks {
			if len(banks[c]) == 0 {
				continue
			}
			picked = append(picked, banks[c][0])
			banks[c] = banks[c][1:]
			progress = true
			if len(picked) >= cfg.MaxFeatures {
				break
			}
		}
		if !progress {
			break
		}
	}
	if reg := telemetry.Get(); reg != nil {
		reg.Gauge("perspectron_select_groups").Set(float64(len(groups)))
		reg.Gauge("perspectron_select_features").Set(float64(len(picked)))
	}
	return Selection{Indices: picked, Groups: groups, MI: mi}
}

// MAPFeatures returns the indices of the committed-state features a
// MAP-style malware detector monitors (instruction-class mix, architectural
// memory/branch counts, L1 access totals) — the prior-work baseline feature
// set of Table IV.
func MAPFeatures(names []string) []int {
	var idx []int
	for j, n := range names {
		switch {
		case strings.HasPrefix(n, "commit.op_class_0::"),
			n == "commit.committedInsts",
			n == "commit.branches",
			n == "commit.loads",
			n == "commit.stores",
			n == "commit.branchMispredicts",
			n == "icache.overall_accesses",
			n == "icache.overall_misses",
			n == "dcache.overall_accesses",
			n == "dcache.overall_misses",
			n == "dcache.overall_hits":
			idx = append(idx, j)
		}
	}
	return idx
}

// CrossComponentGroups filters groups down to those spanning at least two
// components — the replicated-detector groups Table I presents.
func CrossComponentGroups(groups []Group, comps []stats.Component) []Group {
	var out []Group
	for _, g := range groups {
		seen := map[stats.Component]bool{}
		for _, j := range g.Members {
			seen[comps[j]] = true
		}
		if len(seen) >= 2 {
			out = append(out, g)
		}
	}
	return out
}
