// The shared selection context.
//
// Profiling Select on the quick corpus (330×786 scaled matrix) showed the
// pair sweep's per-pair dense Pearson at >90% of wall time, with the
// remainder spent re-deriving shared state per kernel: MutualInformation,
// ClassCorrelation and CorrelationGroups each re-scanned the full O(n·f)
// matrix (binary detection, moments) and re-packed every column. selCtx
// computes each shared pass exactly once per Select call:
//
//   - one binary/±1-label classification scan;
//   - one word-tiled PackMatrix (at encoding.BinarizeThreshold — for
//     exactly-0/1 input that packing is bit-equal to the legacy thr=1
//     packing, so a single PackedMatrix feeds all three kernels);
//   - one moments pass, one centered column-major transpose and one
//     suffix-norm pass (dense input only, and only for the pair sweep).
//
// The dense pair sweep is the big win: instead of len(active)² strided
// walks over the row-major matrix, it runs dot products over contiguous
// centered columns, blocked into near-uniform column-pair work items, and
// prunes each pair at tile boundaries with a Cauchy–Schwarz suffix-norm
// bound — |Σ_tail a·b| ≤ ‖a_tail‖·‖b_tail‖ — that proves most pairs can
// never reach the 0.98 grouping threshold after the first 32 rows. The
// bound is applied with a slack factor far above float rounding, so a pair
// is pruned only when its full correlation is provably below threshold;
// every surviving pair computes the complete ascending-index sum and takes
// the decision through arithmetic identical to the legacy Pearson, keeping
// the partition bit-identical to the per-pair reference.
//
// All large intermediates (packed words, centered columns, suffix norms,
// edge slots) come from a reusable scratch bundle, so repeated Select
// calls stop churning ~200KB of per-kernel allocations.

package features

import (
	"math"
	"sync/atomic"

	"perspectron/internal/encoding"
)

// selScratch is the reusable buffer bundle behind a selection context.
// One bundle is parked in scratchFree between calls; concurrent selections
// simply allocate a fresh bundle on miss.
type selScratch struct {
	words    []uint64           // flat packed-column backing
	packBuf  []uint64           // per-word-tile accumulator (f words)
	cols     []encoding.BitVec  // packed column headers
	ones     []int              // packed column popcounts
	mean     []float64          // moments
	std      []float64          // moments
	active   []int              // non-zero-variance column indices
	centBack []float64          // flat centered-column backing (active only)
	centCols [][]float64        // centered column headers
	suf      []float64          // flat suffix-norm backing (active only)
	yc       []float64          // centered labels
	edges    [][]int32          // per-work-item edge slots
}

var scratchFree atomic.Pointer[selScratch]

func getScratch() *selScratch {
	if s := scratchFree.Swap(nil); s != nil {
		return s
	}
	return &selScratch{}
}

func growU64(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// selCtx is the per-call selection context: the classification of the
// input plus every shared intermediate, each computed at most once.
// Contexts are single-goroutine (internal kernels fan out, but the context
// itself is not shared) and must not be used after release.
type selCtx struct {
	X [][]float64
	y []float64
	n, f int

	binary bool // every entry exactly 0 or 1
	signY  bool // every label exactly ±1

	s  *selScratch
	pm PackedMatrix // columns packed at encoding.BinarizeThreshold

	haveMoments bool
	m           Moments

	haveActive bool
	active     []int

	haveCent bool
	centAct  [][]float64 // centered columns, one per active index
	suf      []float64   // suffix norms, (ntiles+1) per active index
	ntiles   int
}

// newSelCtx classifies X/y once and packs the matrix once. Callers have
// already excluded empty input.
func newSelCtx(X [][]float64, y []float64) *selCtx {
	sc := &selCtx{
		X: X, y: y,
		n: len(X), f: len(X[0]),
		binary: isBinaryMatrix(X),
		signY:  isSignLabels(y),
		s:      getScratch(),
	}
	wpc := (sc.n + 63) / 64
	sc.s.words = growU64(sc.s.words, sc.f*wpc)
	clear(sc.s.words) // packMatrixInto skips zero words, so stale bits must go
	sc.s.packBuf = growU64(sc.s.packBuf, sc.f)
	if cap(sc.s.cols) < sc.f {
		sc.s.cols = make([]encoding.BitVec, sc.f)
	}
	sc.s.ones = growInt(sc.s.ones, sc.f)
	sc.pm = PackedMatrix{N: sc.n, Cols: sc.s.cols[:sc.f], Ones: sc.s.ones}
	packMatrixInto(X, encoding.BinarizeThreshold, sc.s.words, sc.s.packBuf, &sc.pm)
	return sc
}

// release parks the scratch bundle for the next selection. The context —
// including its PackedMatrix and centered columns — is dead afterwards.
func (sc *selCtx) release() {
	s := sc.s
	sc.s = nil
	scratchFree.Store(s)
}

// moments computes the column moments once, with arithmetic identical to
// ComputeMoments.
func (sc *selCtx) moments() Moments {
	if sc.haveMoments {
		return sc.m
	}
	mean := growF64(sc.s.mean, sc.f)
	std := growF64(sc.s.std, sc.f)
	clear(mean)
	clear(std)
	for _, row := range sc.X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(sc.n)
	}
	for _, row := range sc.X {
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(sc.n))
	}
	sc.s.mean, sc.s.std = mean, std
	sc.m = Moments{Mean: mean, Std: std}
	sc.haveMoments = true
	return sc.m
}

// activeSet returns the non-zero-variance columns. For exactly-0/1 input
// the one-counts decide (0 < ones < n ⟺ Std > 0), skipping the moments
// pass entirely.
func (sc *selCtx) activeSet() []int {
	if sc.haveActive {
		return sc.active
	}
	if sc.binary {
		sc.active = sc.pm.activeColumns(sc.s.active)
	} else {
		m := sc.moments()
		act := sc.s.active[:0]
		for j := 0; j < sc.f; j++ {
			if m.Std[j] > 0 {
				act = append(act, j)
			}
		}
		sc.active = act
	}
	sc.s.active = sc.active
	sc.haveActive = true
	return sc.active
}

// denseTile is the row granularity of the suffix-norm prune checks: a pair
// that cannot reach the grouping threshold is abandoned after its first
// denseTile rows.
const denseTile = 32

// densePruneGuard shrinks the prune limit so that float rounding in the
// partial sum and the suffix norms can never prune a pair whose exact
// correlation reaches the threshold: the bound must undershoot by a
// relative 1e-7 — many orders above the ~n·ε accumulation error, many
// below any correlation gap that occurs in practice — before a pair is
// dropped. Pairs inside that sliver simply run to completion and take the
// exact decision.
const densePruneGuard = 1 - 1e-7

// buildCentered materializes, once, the contiguous centered columns and
// tile-boundary suffix norms the dense pair sweep runs on.
func (sc *selCtx) buildCentered() {
	if sc.haveCent {
		return
	}
	m := sc.moments()
	act := sc.activeSet()
	n, nAct := sc.n, len(act)
	sc.s.centBack = growF64(sc.s.centBack, nAct*n)
	if cap(sc.s.centCols) < nAct {
		sc.s.centCols = make([][]float64, nAct)
	}
	cent := sc.s.centCols[:nAct]
	for k := range cent {
		cent[k] = sc.s.centBack[k*n : (k+1)*n]
	}
	// Row-tiled transpose: each 64-row band of the row-major matrix is
	// centered into all active columns while its cache lines are hot.
	for base := 0; base < n; base += 64 {
		end := base + 64
		if end > n {
			end = n
		}
		rows := sc.X[base:end]
		for k, j := range act {
			col := cent[k]
			mj := m.Mean[j]
			for i, row := range rows {
				col[base+i] = row[j] - mj
			}
		}
	}

	sc.ntiles = (n + denseTile - 1) / denseTile
	stride := sc.ntiles + 1
	sc.s.suf = growF64(sc.s.suf, nAct*stride)
	parallelDo(nAct, func(k int) {
		col := cent[k]
		row := sc.s.suf[k*stride : (k+1)*stride]
		row[sc.ntiles] = 0
		acc := 0.0
		for t := sc.ntiles - 1; t >= 0; t-- {
			end := (t + 1) * denseTile
			if end > n {
				end = n
			}
			for i := t * denseTile; i < end; i++ {
				acc += col[i] * col[i]
			}
			row[t] = math.Sqrt(acc)
		}
	})
	sc.centAct = cent
	sc.haveCent = true
}

// denseBlock is the number of columns per dense pair-sweep work item.
const denseBlock = 64

// denseEdges sweeps all active-column pairs for |Pearson| >= threshold over
// the centered columns. Work items are column-block pairs (near-uniform
// cost, cache-resident tiles); each pair accumulates the ascending-index
// product sum — the exact float sequence the legacy per-pair Pearson
// produced — and bails at the first tile boundary where the suffix-norm
// bound proves the threshold unreachable. Surviving pairs divide by the
// identically-associated denominator (n·σa)·σb, so their edge decision is
// bit-identical to the reference.
func (sc *selCtx) denseEdges(threshold float64) [][]int32 {
	sc.buildCentered()
	act := sc.active
	cent := sc.centAct
	std := sc.moments().Std
	n, ntiles := sc.n, sc.ntiles
	stride := ntiles + 1
	suf := sc.s.suf
	nF := float64(n)
	guard := threshold * densePruneGuard

	nb := (len(act) + denseBlock - 1) / denseBlock
	items := nb * (nb + 1) / 2
	if cap(sc.s.edges) < items {
		sc.s.edges = make([][]int32, items)
	}
	slots := sc.s.edges[:items]
	parallelDo(items, func(it int) {
		bi, bj := unrankBlockPair(it, nb)
		row := slots[it][:0]
		aLo := bi * denseBlock
		aHi := aLo + denseBlock
		if aHi > len(act) {
			aHi = len(act)
		}
		bLo := bj * denseBlock
		bHi := bLo + denseBlock
		if bHi > len(act) {
			bHi = len(act)
		}
		for ka := aLo; ka < aHi; ka++ {
			ca := cent[ka]
			sa := suf[ka*stride : (ka+1)*stride]
			qa := nF * std[act[ka]]
			lo := bLo
			if lo <= ka {
				lo = ka + 1
			}
			for kb := lo; kb < bHi; kb++ {
				cb := cent[kb]
				denom := qa * std[act[kb]]
				lim := guard * denom
				sb := suf[kb*stride : (kb+1)*stride]
				s := 0.0
				i := 0
				full := true
				for t := 1; ; t++ {
					end := t * denseTile
					if end >= n {
						for ; i < n; i++ {
							s += ca[i] * cb[i]
						}
						break
					}
					for ; i < end; i++ {
						s += ca[i] * cb[i]
					}
					as := s
					if as < 0 {
						as = -as
					}
					if as+sa[t]*sb[t] < lim {
						full = false
						break
					}
				}
				if full {
					r := s / denom
					if math.Abs(r) >= threshold {
						row = append(row, int32(ka), int32(kb))
					}
				}
			}
		}
		slots[it] = row
	})
	sc.s.edges = slots
	return slots
}

// mutualInformation is MutualInformation off the shared packed columns —
// bit-identical because the popcounts feed the same contingency integers
// into the same arithmetic (miFromCounts).
func (sc *selCtx) mutualInformation() []float64 {
	return sc.pm.MutualInformation(sc.y)
}

// classCorrelation routes to the exact popcount kernel when the input
// qualifies, and otherwise runs the dense kernel over the centered columns
// (identical floats in identical order to the legacy row loop).
func (sc *selCtx) classCorrelation() []float64 {
	if sc.binary && sc.signY {
		return sc.pm.ClassCorrelation(sc.y)
	}
	m := sc.moments()
	n := sc.n
	var ym, ys float64
	for _, v := range sc.y {
		ym += v
	}
	ym /= float64(n)
	for _, v := range sc.y {
		ys += (v - ym) * (v - ym)
	}
	ys = math.Sqrt(ys / float64(n))
	out := make([]float64, sc.f)
	if ys == 0 {
		return out
	}
	sc.buildCentered()
	yc := growF64(sc.s.yc, n)
	for i, v := range sc.y {
		yc[i] = v - ym
	}
	sc.s.yc = yc
	act := sc.active
	cent := sc.centAct
	parallelDo(len(act), func(k int) {
		j := act[k]
		col := cent[k]
		var s float64
		for i, c := range col {
			s += c * yc[i]
		}
		out[j] = s / (float64(n) * m.Std[j] * ys)
	})
	return out
}

// correlationGroups runs the pair sweep appropriate to the input class and
// assembles the single-linkage partition.
func (sc *selCtx) correlationGroups(threshold float64) []Group {
	act := sc.activeSet()
	var edges [][]int32
	if sc.binary {
		edges = packedEdges(&sc.pm, act, threshold, sc.s.edges)
		sc.s.edges = edges
	} else {
		edges = sc.denseEdges(threshold)
	}
	uf := newUnionFind(sc.f)
	applyEdges(uf, act, edges)
	return assembleGroups(act, uf, sc.classCorrelation())
}
