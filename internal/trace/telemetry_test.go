package trace

import (
	"strings"
	"sync/atomic"
	"testing"

	"perspectron/internal/telemetry"
	"perspectron/internal/workload"
)

func TestCollectCountsRetries(t *testing.T) {
	var attempts int32
	progs := []workload.Program{
		&panicProg{after: 5_000, failures: 1, attempts: &attempts},
	}
	cfg := CollectConfig{MaxInsts: 30_000, Interval: 10_000, Seed: 1, Runs: 1, Retries: 2}
	ds := Collect(progs, cfg)
	if ds.Retried != 1 {
		t.Errorf("Retried = %d, want 1 (one panic absorbed)", ds.Retried)
	}
	if len(ds.Dropped) != 0 {
		t.Errorf("Dropped = %v, want none", ds.Dropped)
	}
	if sum := ds.Summary(); !strings.Contains(sum, "1 runs retried, 0 dropped") {
		t.Errorf("Summary does not surface retries: %q", sum)
	}
}

func TestSummaryOmitsHealthWhenClean(t *testing.T) {
	ds := &Dataset{Interval: 10_000}
	if sum := ds.Summary(); strings.Contains(sum, "retried") {
		t.Errorf("clean Summary mentions retries: %q", sum)
	}
}

func TestCollectRecordsTelemetry(t *testing.T) {
	telemetry.Disable()
	reg := telemetry.Enable()
	t.Cleanup(telemetry.Disable)

	var attempts int32
	progs := []workload.Program{
		&panicProg{after: 5_000, failures: 99, attempts: &attempts}, // always drops
	}
	cfg := CollectConfig{MaxInsts: 30_000, Interval: 10_000, Seed: 1, Runs: 1, Retries: 1}
	ds := Collect(progs, cfg)
	if len(ds.Dropped) != 1 {
		t.Fatalf("Dropped = %v, want 1", ds.Dropped)
	}
	if got := reg.CounterValue("perspectron_collect_runs_total"); got != 1 {
		t.Errorf("runs counter = %d, want 1", got)
	}
	if got := reg.CounterValue("perspectron_collect_runs_dropped_total"); got != 1 {
		t.Errorf("dropped counter = %d, want 1", got)
	}
	if got := reg.CounterValue("perspectron_collect_run_retries_total"); got != 1 {
		t.Errorf("retries counter = %d, want 1", got)
	}
	name := telemetry.Name("perspectron_collect_run_seconds", "workload", "panicker")
	if got := reg.Histogram(name, telemetry.DurationBuckets).Count(); got != 1 {
		t.Errorf("per-workload run-seconds observations = %d, want 1", got)
	}
	// The phase span recorded collect wall time.
	phase := telemetry.Name(telemetry.PhaseMetric, "phase", "collect")
	if got := reg.Histogram(phase, telemetry.DurationBuckets).Count(); got != 1 {
		t.Errorf("collect phase observations = %d, want 1", got)
	}
	_ = atomic.LoadInt32(&attempts)
}
