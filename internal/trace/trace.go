// Package trace collects labelled multi-dimensional time-series traces from
// the simulator — the paper's gem5 statistics dumps at 10K/50K/100K
// instruction granularity — and prepares them for learning: the per-
// (counter, execution-point) maximum matrix M, scaling to [0,1], and the
// k-sparse binarization PerSpectron consumes.
package trace

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"perspectron/internal/encoding"
	"perspectron/internal/isa"
	"perspectron/internal/retry"
	"perspectron/internal/sim"
	"perspectron/internal/stats"
	"perspectron/internal/telemetry"
	"perspectron/internal/workload"
)

// Sample is one sampling interval of one program run.
type Sample struct {
	Program  string
	Category string
	Channel  string
	Label    workload.Label
	Run      int // run instance (seed index)
	Index    int // execution point: sampling interval number within the run
	Raw      []float64
}

// Dataset is a labelled collection of samples over a fixed feature space.
type Dataset struct {
	FeatureNames []string
	Components   []stats.Component
	Interval     uint64
	Samples      []Sample

	// Dropped lists runs Collect abandoned ("program#run: reason"): panics
	// that persisted through every retry, or runs cancelled/timed out before
	// producing a single sample. Training proceeds on the surviving runs.
	Dropped []string

	// Retried counts run attempts that panicked and were re-attempted with a
	// fresh seed. Nonzero Retried with empty Dropped means the fault shield
	// absorbed every failure.
	Retried int
}

// NumFeatures returns the feature-space width.
func (d *Dataset) NumFeatures() int { return len(d.FeatureNames) }

// ClassCounts returns (#benign, #malicious).
func (d *Dataset) ClassCounts() (benign, malicious int) {
	for _, s := range d.Samples {
		if s.Label == workload.Malicious {
			malicious++
		} else {
			benign++
		}
	}
	return benign, malicious
}

// Categories returns the distinct program categories present.
func (d *Dataset) Categories() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range d.Samples {
		if !seen[s.Category] {
			seen[s.Category] = true
			out = append(out, s.Category)
		}
	}
	return out
}

// Filter returns a shallow dataset containing only samples keep selects.
func (d *Dataset) Filter(keep func(*Sample) bool) *Dataset {
	out := &Dataset{FeatureNames: d.FeatureNames, Components: d.Components,
		Interval: d.Interval, Dropped: d.Dropped}
	for i := range d.Samples {
		if keep(&d.Samples[i]) {
			out.Samples = append(out.Samples, d.Samples[i])
		}
	}
	return out
}

// CollectConfig controls trace collection.
type CollectConfig struct {
	MaxInsts uint64 // committed-path ops per program run
	Interval uint64 // sampling granularity (10K/50K/100K)
	Seed     int64
	Runs     int // independent runs (seeds) per program
	Parallel int // worker goroutines; 0 = GOMAXPROCS

	// Timeout bounds each program run's wall-clock time; the run's stream
	// is cut off at the deadline and whatever samples it produced are kept.
	// 0 means no per-run limit.
	Timeout time.Duration
	// Retries is the number of extra attempts (with fresh derived seeds)
	// granted to a run whose workload panics, so one bad run cannot sink a
	// whole training job. Runs that still fail are recorded in
	// Dataset.Dropped.
	Retries int
	// Backoff shapes the sleep between retry attempts (the shared
	// internal/retry jittered-exponential helper; sequences are seeded from
	// cfg.Seed, so a fixed config replays the same schedule). The zero value
	// uses collectBackoff, a millisecond-scale policy that keeps retried
	// collections fast. When Retries is set it governs the attempt count
	// (Retries+1 total tries); with Retries == 0 a caller-supplied
	// Backoff.MaxAttempts is honored as-is.
	Backoff retry.Policy
}

// collectBackoff is the default retry pacing for panicked collection runs:
// short, capped sleeps so a transient data-dependent fault is re-rolled
// almost immediately while correlated failures still spread out.
var collectBackoff = retry.Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Factor: 2, Jitter: 0.5}

// DefaultCollectConfig mirrors the paper's densest setting at a laptop-
// friendly run length.
func DefaultCollectConfig() CollectConfig {
	return CollectConfig{MaxInsts: 200_000, Interval: 10_000, Seed: 1, Runs: 2}
}

// Collect runs every program on a fresh machine per run and gathers the
// sampled counter deltas. Collection is deterministic for a fixed config
// (per-run seeds are derived from cfg.Seed) and parallel across runs.
func Collect(progs []workload.Program, cfg CollectConfig) *Dataset {
	return CollectCtx(context.Background(), progs, cfg)
}

// CollectCtx is Collect under a context: cancelling ctx stops scheduling new
// runs and cuts off in-flight ones at their next instruction fetch. Each run
// is additionally shielded — a panicking workload is retried cfg.Retries
// times with fresh seeds and then dropped (recorded in Dataset.Dropped)
// instead of killing the collection.
func CollectCtx(ctx context.Context, progs []workload.Program, cfg CollectConfig) *Dataset {
	reg := telemetry.Get()
	ctx, span := reg.StartSpan(ctx, "collect")
	defer span.End()

	probe := sim.NewMachine(sim.DefaultConfig())
	ds := &Dataset{
		FeatureNames: probe.Reg.Names(),
		Components:   probe.Reg.Components(),
		Interval:     cfg.Interval,
	}

	type job struct {
		prog workload.Program
		run  int
	}
	var jobs []job
	for _, p := range progs {
		for r := 0; r < cfg.Runs; r++ {
			jobs = append(jobs, job{p, r})
		}
	}

	results := make([][]Sample, len(jobs))
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex // guards ds.Dropped and retried
	retried := 0
	drop := func(j job, reason string) {
		mu.Lock()
		ds.Dropped = append(ds.Dropped, fmt.Sprintf("%s#%d: %s", j.prog.Info().Name, j.run, reason))
		mu.Unlock()
	}
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range ch {
				j := jobs[ji]
				if ctx.Err() != nil {
					drop(j, "cancelled before start")
					continue
				}
				var out []Sample
				var start time.Time
				if reg != nil {
					start = time.Now()
				}
				pol := cfg.Backoff
				if pol == (retry.Policy{}) {
					pol = collectBackoff
				}
				// Retries governs the attempt budget when set; otherwise a
				// caller-supplied Backoff.MaxAttempts survives (overwriting it
				// unconditionally used to silently disable those retries).
				if cfg.Retries > 0 || pol.MaxAttempts <= 0 {
					pol.MaxAttempts = cfg.Retries + 1
				}
				attempts, err := retry.Do(ctx, "collect", pol, cfg.Seed*1_000_003+int64(ji),
					func(attempt int) error {
						// Attempt 0 reproduces the historical seed schedule
						// exactly; retries shift it so a data-dependent panic
						// is not replayed verbatim.
						seed := cfg.Seed*1_000_003 + int64(ji)*7919 + int64(attempt)*104_729
						var aerr error
						out, aerr = collectOne(ctx, j.prog, j.run, seed, cfg)
						return aerr
					})
				if attempts > 1 {
					mu.Lock()
					retried += attempts - 1
					mu.Unlock()
				}
				if reg != nil {
					name := telemetry.Name("perspectron_collect_run_seconds",
						"workload", j.prog.Info().Name)
					reg.Histogram(name, telemetry.DurationBuckets).
						Observe(time.Since(start).Seconds())
				}
				if err != nil {
					drop(j, err.Error())
					continue
				}
				if len(out) == 0 && ctx.Err() != nil {
					drop(j, "cancelled with no samples")
					continue
				}
				results[ji] = out
			}
		}()
	}
	for ji := range jobs {
		ch <- ji
	}
	close(ch)
	wg.Wait()

	for _, r := range results {
		ds.Samples = append(ds.Samples, r...)
	}
	ds.Retried = retried
	if reg != nil {
		reg.Counter("perspectron_collect_runs_total").Add(uint64(len(jobs)))
		reg.Counter("perspectron_collect_run_retries_total").Add(uint64(ds.Retried))
		reg.Counter("perspectron_collect_runs_dropped_total").Add(uint64(len(ds.Dropped)))
		reg.Counter("perspectron_collect_samples_total").Add(uint64(len(ds.Samples)))
	}
	return ds
}

// collectOne executes a single program run by draining its sample stream —
// the same per-sample path the online Monitor scores — converting workload
// panics into errors and bounding wall-clock time via the config timeout /
// context.
func collectOne(ctx context.Context, prog workload.Program, run int, seed int64, cfg CollectConfig) ([]Sample, error) {
	m := sim.NewMachine(sim.DefaultConfig())
	src := NewRunSource(ctx, m, prog, run, seed, cfg)
	out := Drain(src)
	if err := src.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// boundedStream ends the wrapped op stream when its deadline passes or its
// context is cancelled, checking every 1024 ops to keep the hot path cheap.
type boundedStream struct {
	ctx      context.Context
	inner    isa.Stream
	deadline time.Time // zero = none
	n        uint32
	done     bool
}

func boundStream(ctx context.Context, inner isa.Stream, timeout time.Duration) *boundedStream {
	s := &boundedStream{ctx: ctx, inner: inner}
	if timeout > 0 {
		s.deadline = time.Now().Add(timeout)
	}
	return s
}

// Next implements isa.Stream.
func (s *boundedStream) Next() (isa.Op, bool) {
	if s.done {
		return isa.Op{}, false
	}
	s.n++
	if s.n&1023 == 0 {
		if s.ctx.Err() != nil || (!s.deadline.IsZero() && time.Now().After(s.deadline)) {
			s.done = true
			return isa.Op{}, false
		}
	}
	return s.inner.Next()
}

// Encoder scales raw counter deltas by the maximum matrix M and binarizes
// them into the paper's k-sparse representation.
type Encoder struct {
	M *stats.MaxMatrix
}

// NewEncoder builds M from the training dataset: per-run sample sequences
// update the per-execution-point maxima.
func NewEncoder(train *Dataset) *Encoder {
	m := stats.NewMaxMatrix(train.NumFeatures())
	// Group samples into per-run sequences ordered by index.
	type key struct {
		prog string
		run  int
	}
	byRun := map[key][][]float64{}
	for i := range train.Samples {
		s := &train.Samples[i]
		k := key{s.Program, s.Run}
		seq := byRun[k]
		for len(seq) <= s.Index {
			seq = append(seq, nil)
		}
		seq[s.Index] = s.Raw
		byRun[k] = seq
	}
	for _, seq := range byRun {
		compact := make([][]float64, 0, len(seq))
		for _, v := range seq {
			if v != nil {
				compact = append(compact, v)
			}
		}
		m.Observe(compact)
	}
	return &Encoder{M: m}
}

// Enc exposes the encoder's maxima as the shared encoding type — the
// single normalize/binarize implementation the serving paths also use.
func (e *Encoder) Enc() *encoding.Encoding { return e.M.Encoding() }

// Scale returns the sample scaled to [0,1] per feature.
func (e *Encoder) Scale(s *Sample) []float64 {
	return e.M.Scale(s.Raw, s.Index, nil)
}

// Binarize returns the k-sparse 0/1 vector for the sample.
func (e *Encoder) Binarize(s *Sample) []float64 {
	return e.M.Binarize(s.Raw, s.Index, nil)
}

// ScaleAt normalizes one raw counter-delta vector taken at execution point
// j — the serving-path entry used when the raw vector does not come from a
// Dataset sample.
func (e *Encoder) ScaleAt(raw []float64, j int) []float64 {
	return e.M.Scale(raw, j, nil)
}

// BinarizeAt is ScaleAt followed by the 0.5 binarization.
func (e *Encoder) BinarizeAt(raw []float64, j int) []float64 {
	return e.M.Binarize(raw, j, nil)
}

// Matrix encodes the whole dataset: X is scaled features (rows in dataset
// order), y is +1 for malicious and -1 for benign.
func (e *Encoder) Matrix(d *Dataset) (X [][]float64, y []float64) {
	X = make([][]float64, len(d.Samples))
	y = make([]float64, len(d.Samples))
	for i := range d.Samples {
		X[i] = e.Scale(&d.Samples[i])
		y[i] = LabelValue(d.Samples[i].Label)
	}
	return X, y
}

// BinaryMatrix encodes the dataset as k-sparse binary vectors.
func (e *Encoder) BinaryMatrix(d *Dataset) (X [][]float64, y []float64) {
	X = make([][]float64, len(d.Samples))
	y = make([]float64, len(d.Samples))
	for i := range d.Samples {
		X[i] = e.Binarize(&d.Samples[i])
		y[i] = LabelValue(d.Samples[i].Label)
	}
	return X, y
}

// PackedBinaryMatrix encodes the dataset as bit-packed k-sparse binary
// vectors: row i has bit j set exactly where BinaryMatrix would put a 1.
// It feeds the popcount scoring/training kernels without materializing the
// dense float matrix.
func (e *Encoder) PackedBinaryMatrix(d *Dataset) (X []encoding.BitVec, y []float64) {
	X = make([]encoding.BitVec, len(d.Samples))
	y = make([]float64, len(d.Samples))
	for i := range d.Samples {
		X[i] = encoding.Pack(e.Binarize(&d.Samples[i]))
		y[i] = LabelValue(d.Samples[i].Label)
	}
	return X, y
}

// LabelValue maps a label onto the perceptron's ±1 target.
func LabelValue(l workload.Label) float64 {
	if l == workload.Malicious {
		return 1
	}
	return -1
}

// Project returns copies of rows restricted to the given feature indices.
func Project(X [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		p := make([]float64, len(idx))
		for j, f := range idx {
			p[j] = row[f]
		}
		out[i] = p
	}
	return out
}

// ProjectPacked is Project over bit-packed rows: output bit j mirrors input
// bit idx[j].
func ProjectPacked(X []encoding.BitVec, idx []int) []encoding.BitVec {
	out := make([]encoding.BitVec, len(X))
	for i, row := range X {
		p := encoding.NewBitVec(len(idx))
		for j, f := range idx {
			if row.Get(f) {
				p.Set(j)
			}
		}
		out[i] = p
	}
	return out
}

// Summary returns a one-line description of the dataset, including the
// collection-health tallies when anything was retried or dropped.
func (d *Dataset) Summary() string {
	b, m := d.ClassCounts()
	out := fmt.Sprintf("%d samples (%d benign, %d malicious), %d features, interval %d",
		len(d.Samples), b, m, d.NumFeatures(), d.Interval)
	if d.Retried > 0 || len(d.Dropped) > 0 {
		out += fmt.Sprintf(" (%d runs retried, %d dropped)", d.Retried, len(d.Dropped))
	}
	return out
}
