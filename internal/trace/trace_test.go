package trace

import (
	"bytes"
	"testing"

	"perspectron/internal/encoding"
	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	progs := []workload.Program{benign.Bzip2(), attacks.FlushReload()}
	return Collect(progs, CollectConfig{MaxInsts: 30_000, Interval: 10_000, Seed: 1, Runs: 1})
}

func TestCollectProducesBothClasses(t *testing.T) {
	ds := smallDataset(t)
	b, m := ds.ClassCounts()
	if b == 0 || m == 0 {
		t.Fatalf("class counts: benign=%d malicious=%d", b, m)
	}
	if ds.NumFeatures() < 700 {
		t.Fatalf("feature space too small: %d", ds.NumFeatures())
	}
	for _, s := range ds.Samples {
		if len(s.Raw) != ds.NumFeatures() {
			t.Fatalf("sample width mismatch")
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	cfg := CollectConfig{MaxInsts: 20_000, Interval: 10_000, Seed: 5, Runs: 1}
	a := Collect([]workload.Program{benign.Mcf()}, cfg)
	b := Collect([]workload.Program{benign.Mcf()}, cfg)
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		for j := range a.Samples[i].Raw {
			if a.Samples[i].Raw[j] != b.Samples[i].Raw[j] {
				t.Fatalf("sample %d feature %d differs", i, j)
			}
		}
	}
}

func TestCollectMultiRunSeedsDiffer(t *testing.T) {
	cfg := CollectConfig{MaxInsts: 20_000, Interval: 10_000, Seed: 5, Runs: 2}
	ds := Collect([]workload.Program{benign.Gobmk()}, cfg)
	run0 := ds.Filter(func(s *Sample) bool { return s.Run == 0 })
	run1 := ds.Filter(func(s *Sample) bool { return s.Run == 1 })
	if len(run0.Samples) == 0 || len(run1.Samples) == 0 {
		t.Fatalf("missing runs")
	}
	same := true
	for j := range run0.Samples[0].Raw {
		if run0.Samples[0].Raw[j] != run1.Samples[0].Raw[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical first samples")
	}
}

func TestEncoderScaleRange(t *testing.T) {
	ds := smallDataset(t)
	enc := NewEncoder(ds)
	X, y := enc.Matrix(ds)
	if len(X) != len(ds.Samples) || len(y) != len(X) {
		t.Fatalf("matrix shape wrong")
	}
	for i, row := range X {
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("scaled value %v out of range", v)
			}
		}
		if y[i] != 1 && y[i] != -1 {
			t.Fatalf("label value %v", y[i])
		}
	}
}

func TestEncoderBinary(t *testing.T) {
	ds := smallDataset(t)
	enc := NewEncoder(ds)
	X, _ := enc.BinaryMatrix(ds)
	ones := 0
	for _, row := range X {
		for _, v := range row {
			if v != 0 && v != 1 {
				t.Fatalf("non-binary value %v", v)
			}
			if v == 1 {
				ones++
			}
		}
	}
	if ones == 0 {
		t.Fatalf("binarization produced all-zero vectors")
	}
}

func TestFilterAndCategories(t *testing.T) {
	ds := smallDataset(t)
	mal := ds.Filter(func(s *Sample) bool { return s.Label == workload.Malicious })
	if b, _ := mal.ClassCounts(); b != 0 {
		t.Fatalf("filter leaked benign samples")
	}
	cats := ds.Categories()
	if len(cats) != 2 {
		t.Fatalf("categories = %v", cats)
	}
}

func TestProject(t *testing.T) {
	X := [][]float64{{1, 2, 3}, {4, 5, 6}}
	P := Project(X, []int{2, 0})
	if P[0][0] != 3 || P[0][1] != 1 || P[1][0] != 6 || P[1][1] != 4 {
		t.Fatalf("projection wrong: %v", P)
	}
}

// TestPackedBinaryMatrixMatchesDense: the bit-packed encoding must carry
// exactly the same bits (and labels) as the dense BinaryMatrix path.
func TestPackedBinaryMatrixMatchesDense(t *testing.T) {
	ds := smallDataset(t)
	enc := NewEncoder(ds)
	Xd, yd := enc.BinaryMatrix(ds)
	Xp, yp := enc.PackedBinaryMatrix(ds)
	if len(Xp) != len(Xd) || len(yp) != len(yd) {
		t.Fatalf("packed shape (%d,%d) != dense (%d,%d)", len(Xp), len(yp), len(Xd), len(yd))
	}
	for i := range Xd {
		if yp[i] != yd[i] {
			t.Fatalf("label %d: packed %v != dense %v", i, yp[i], yd[i])
		}
		for j, v := range Xd[i] {
			if Xp[i].Get(j) != (v == 1) {
				t.Fatalf("row %d bit %d: packed %v, dense %v", i, j, Xp[i].Get(j), v)
			}
		}
	}
}

func TestProjectPacked(t *testing.T) {
	X := [][]float64{{1, 0, 1, 1}, {0, 1, 0, 1}}
	idx := []int{3, 0, 2}
	dense := Project(X, idx)
	packed := ProjectPacked(encoding.PackRows(X), idx)
	for i := range dense {
		for j, v := range dense[i] {
			if packed[i].Get(j) != (v == 1) {
				t.Fatalf("row %d bit %d: packed %v, dense %v", i, j, packed[i].Get(j), v)
			}
		}
		if want := []int{3, 1}[i]; packed[i].Ones() != want {
			t.Fatalf("row %d ones = %d, want %d", i, packed[i].Ones(), want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, ds.Components)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(ds.Samples) {
		t.Fatalf("sample count %d != %d", len(back.Samples), len(ds.Samples))
	}
	if back.Interval != ds.Interval {
		t.Fatalf("interval %d != %d", back.Interval, ds.Interval)
	}
	for i := range ds.Samples {
		a, b := &ds.Samples[i], &back.Samples[i]
		if a.Program != b.Program || a.Label != b.Label || a.Index != b.Index {
			t.Fatalf("metadata mismatch at %d", i)
		}
		for j := range a.Raw {
			if a.Raw[j] != b.Raw[j] {
				t.Fatalf("value mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n"), nil); err == nil {
		t.Fatalf("short header accepted")
	}
	bad := "program,category,channel,label,run,index,interval,f1\np,c,ch,benign,x,0,10,1\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad), nil); err == nil {
		t.Fatalf("bad run column accepted")
	}
}

func TestSummary(t *testing.T) {
	ds := smallDataset(t)
	if ds.Summary() == "" {
		t.Fatalf("empty summary")
	}
}
