package trace

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"perspectron/internal/isa"
	"perspectron/internal/sim"
	"perspectron/internal/telemetry"
	"perspectron/internal/workload"
)

// SampleSource streams labelled samples one sampling interval at a time.
// Batch collection drains a source into a Dataset; the online Monitor
// scores each sample as it arrives. Next returns false when the run is
// exhausted (or the source was closed); Close releases the source early.
type SampleSource interface {
	Next() (*Sample, bool)
	Close()
}

// RunSource streams one program run on a simulated machine — the shared
// per-sample producer behind Collect and Detector.Monitor. The workload
// stream, machine run loop, fault filters and sample labelling all live
// here, so the batch and online paths cannot diverge.
type RunSource struct {
	ch        chan *Sample
	done      chan struct{}
	closeOnce sync.Once
	produced  *telemetry.Counter // samples delivered; nil when disabled

	mu     sync.Mutex
	stream isa.Stream // underlying workload stream, for LeakMarks
	err    error      // workload panic converted to an error
	n      int
}

// NewRunSource starts streaming prog for up to cfg.MaxInsts committed
// instructions on machine m, sampling every cfg.Interval. The machine must
// be fully configured (detectors resolved, fault schedules attached) before
// the call; it is driven from a background goroutine until the source is
// drained or closed. run tags the produced samples' Run field; seed drives
// the workload's data-dependent behaviour. A cfg.Timeout or cancellable ctx
// bounds the run's wall clock as in Collect. A panicking workload ends the
// stream early and surfaces through Err.
func NewRunSource(ctx context.Context, m *sim.Machine, prog workload.Program, run int, seed int64, cfg CollectConfig) *RunSource {
	src := &RunSource{
		ch:       make(chan *Sample),
		done:     make(chan struct{}),
		produced: telemetry.Get().Counter("perspectron_source_samples_total"),
	}
	info := prog.Info()
	go func() {
		defer close(src.ch)
		defer func() {
			if r := recover(); r != nil {
				src.mu.Lock()
				src.err = fmt.Errorf("run panicked: %v", r)
				src.mu.Unlock()
			}
		}()
		var stream isa.Stream = prog.Stream(rand.New(rand.NewSource(seed)))
		src.mu.Lock()
		src.stream = stream
		src.mu.Unlock()
		if cfg.Timeout > 0 || ctx.Done() != nil {
			stream = boundStream(ctx, stream, cfg.Timeout)
		}
		m.RunStream(stream, cfg.MaxInsts, cfg.Interval, func(idx int, v []float64) bool {
			s := &Sample{
				Program:  info.Name,
				Category: info.Category,
				Channel:  info.Channel,
				Label:    info.Label,
				Run:      run,
				Index:    idx,
				Raw:      v,
			}
			select {
			case src.ch <- s:
				return true
			case <-src.done:
				return false
			}
		})
	}()
	return src
}

// Next returns the next sample in execution order, or false when the run
// has ended. After false, Err and LeakMarks are valid.
func (s *RunSource) Next() (*Sample, bool) {
	smp, ok := <-s.ch
	if ok {
		s.n++
		s.produced.Inc()
	}
	return smp, ok
}

// NextCtx is Next bounded by ctx: it gives up and returns (nil, false) when
// ctx ends before the next sample arrives — the serving runtime's per-sample
// deadline. The underlying run keeps producing; a caller that abandons the
// source after a deadline must Close it to release the producer. Distinguish
// the outcomes by ctx.Err(): nil means the run genuinely ended.
func (s *RunSource) NextCtx(ctx context.Context) (*Sample, bool) {
	select {
	case smp, ok := <-s.ch:
		if ok {
			s.n++
			s.produced.Inc()
		}
		return smp, ok
	case <-ctx.Done():
		return nil, false
	}
}

// Close stops the underlying run at its next instruction fetch and releases
// the producer goroutine. Safe to call more than once and concurrently with
// Next.
func (s *RunSource) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	for range s.ch { // drain whatever was in flight
	}
}

// Count returns the number of samples delivered through Next so far.
func (s *RunSource) Count() int { return s.n }

// Err reports a workload panic that ended the stream. Valid once Next has
// returned false (or Close returned).
func (s *RunSource) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// LeakMarks returns the committed-instruction marks at which the workload's
// disclosures completed, when the workload exposes them (attack loops do).
// Valid once Next has returned false (or Close returned).
func (s *RunSource) LeakMarks() []uint64 {
	s.mu.Lock()
	stream := s.stream
	s.mu.Unlock()
	if ls, ok := stream.(*workload.LoopStream); ok {
		return ls.LeakMarks()
	}
	return nil
}

// Drain consumes the rest of the source into a slice, in order.
func Drain(src SampleSource) []Sample {
	var out []Sample
	for {
		s, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, *s)
	}
}
