package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"perspectron/internal/stats"
	"perspectron/internal/workload"
)

// WriteCSV serializes the dataset: a header row of metadata columns followed
// by the feature names, then one row per sample.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"program", "category", "channel", "label", "run", "index", "interval"},
		d.FeatureNames...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := range d.Samples {
		s := &d.Samples[i]
		row[0] = s.Program
		row[1] = s.Category
		row[2] = s.Channel
		row[3] = s.Label.String()
		row[4] = strconv.Itoa(s.Run)
		row[5] = strconv.Itoa(s.Index)
		row[6] = strconv.FormatUint(d.Interval, 10)
		for j, v := range s.Raw {
			row[7+j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. Component metadata is not
// stored in the CSV; components is optional and may be nil (feature
// selection then treats all features as one component).
func ReadCSV(r io.Reader, components []stats.Component) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	const meta = 7
	if len(header) <= meta {
		return nil, fmt.Errorf("trace: header too short (%d columns)", len(header))
	}
	d := &Dataset{FeatureNames: header[meta:], Components: components}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading row: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("trace: row width %d != header %d", len(rec), len(header))
		}
		run, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, fmt.Errorf("trace: bad run %q: %w", rec[4], err)
		}
		idx, err := strconv.Atoi(rec[5])
		if err != nil {
			return nil, fmt.Errorf("trace: bad index %q: %w", rec[5], err)
		}
		if d.Interval == 0 {
			iv, err := strconv.ParseUint(rec[6], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad interval %q: %w", rec[6], err)
			}
			d.Interval = iv
		}
		label := workload.Benign
		if rec[3] == workload.Malicious.String() {
			label = workload.Malicious
		}
		raw := make([]float64, len(rec)-meta)
		for j := meta; j < len(rec); j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad value %q: %w", rec[j], err)
			}
			raw[j-meta] = v
		}
		d.Samples = append(d.Samples, Sample{
			Program: rec[0], Category: rec[1], Channel: rec[2],
			Label: label, Run: run, Index: idx, Raw: raw,
		})
	}
	return d, nil
}
