package trace

import (
	"testing"

	"perspectron/internal/workload"
	"perspectron/internal/workload/benign"
)

func TestCollectParallelMatchesSerial(t *testing.T) {
	progs := []workload.Program{benign.Bzip2(), benign.Mcf()}
	cfgSerial := CollectConfig{MaxInsts: 20_000, Interval: 10_000, Seed: 9, Runs: 1, Parallel: 1}
	cfgParallel := cfgSerial
	cfgParallel.Parallel = 4
	a := Collect(progs, cfgSerial)
	b := Collect(progs, cfgParallel)
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i].Program != b.Samples[i].Program {
			t.Fatalf("ordering differs at %d", i)
		}
		for j := range a.Samples[i].Raw {
			if a.Samples[i].Raw[j] != b.Samples[i].Raw[j] {
				t.Fatalf("parallel collection changed values at %d/%d", i, j)
			}
		}
	}
}

func TestEncoderPointFallback(t *testing.T) {
	ds := smallDataset(t)
	enc := NewEncoder(ds)
	// A sample at an execution point far beyond anything observed must
	// scale via the global maxima rather than zeros.
	s := ds.Samples[0]
	s.Index = 10_000
	scaled := enc.Scale(&s)
	nonzero := false
	for _, v := range scaled {
		if v > 0 {
			nonzero = true
		}
		if v < 0 || v > 1 {
			t.Fatalf("fallback scaling out of range: %v", v)
		}
	}
	if !nonzero {
		t.Fatalf("fallback scaling produced all zeros")
	}
}

func TestFilterSharesUnderlyingSamples(t *testing.T) {
	ds := smallDataset(t)
	f := ds.Filter(func(s *Sample) bool { return true })
	if len(f.Samples) != len(ds.Samples) {
		t.Fatalf("identity filter changed size")
	}
	// Shallow copy by design: the filtered view reuses sample storage.
	if &f.Samples[0].Raw[0] != &ds.Samples[0].Raw[0] {
		t.Fatalf("filter deep-copied raw vectors")
	}
}

func TestLabelValue(t *testing.T) {
	if LabelValue(workload.Malicious) != 1 || LabelValue(workload.Benign) != -1 {
		t.Fatalf("label mapping wrong")
	}
}

func TestCollectZeroRunsIsEmpty(t *testing.T) {
	ds := Collect([]workload.Program{benign.Bzip2()},
		CollectConfig{MaxInsts: 10_000, Interval: 10_000, Seed: 1, Runs: 0})
	if len(ds.Samples) != 0 {
		t.Fatalf("zero runs produced samples")
	}
	if ds.NumFeatures() == 0 {
		t.Fatalf("feature names missing even with zero runs")
	}
}
