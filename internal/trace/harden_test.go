package trace

import (
	"context"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"perspectron/internal/isa"
	"perspectron/internal/retry"
	"perspectron/internal/sim"
	"perspectron/internal/telemetry"
	"perspectron/internal/workload"
	"perspectron/internal/workload/benign"
)

// plainStream emits computational ops forever (or up to limit when > 0).
type plainStream struct {
	n     uint64
	limit uint64
}

func (s *plainStream) Next() (isa.Op, bool) {
	if s.limit > 0 && s.n >= s.limit {
		return isa.Op{}, false
	}
	s.n++
	return isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu, PC: 0x4000 + 4*s.n}, true
}

// panicProg panics after emitting `after` ops on its first `failures`
// streams, then behaves.
type panicProg struct {
	after    uint64
	failures int32
	attempts *int32
}

func (p *panicProg) Info() workload.Info {
	return workload.Info{Name: "panicker", Label: workload.Benign, Category: "test"}
}

func (p *panicProg) Stream(_ *rand.Rand) isa.Stream {
	attempt := atomic.AddInt32(p.attempts, 1)
	return &panicStream{after: p.after, panics: attempt <= p.failures}
}

type panicStream struct {
	n      uint64
	after  uint64
	panics bool
}

func (s *panicStream) Next() (isa.Op, bool) {
	s.n++
	if s.panics && s.n > s.after {
		panic("workload bug")
	}
	return isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu, PC: 0x4000 + 4*s.n}, true
}

func TestCollectRecoversFromPanickingWorkload(t *testing.T) {
	var attempts int32
	progs := []workload.Program{
		benign.All()[0],
		&panicProg{after: 5_000, failures: 99, attempts: &attempts}, // never succeeds
	}
	cfg := CollectConfig{MaxInsts: 30_000, Interval: 10_000, Seed: 1, Runs: 1, Retries: 2}
	ds := Collect(progs, cfg)
	if len(ds.Samples) == 0 {
		t.Fatalf("healthy workload produced no samples alongside a panicking one")
	}
	for _, s := range ds.Samples {
		if s.Program == "panicker" {
			t.Fatalf("panicking run leaked samples into the dataset")
		}
	}
	if len(ds.Dropped) != 1 || !strings.Contains(ds.Dropped[0], "panicker#0") ||
		!strings.Contains(ds.Dropped[0], "panicked") {
		t.Fatalf("dropped record = %v, want one panicker entry", ds.Dropped)
	}
	if got := atomic.LoadInt32(&attempts); got != 3 {
		t.Fatalf("panicking run attempted %d times, want 1 + 2 retries", got)
	}
}

func TestCollectRetrySucceedsWithFreshSeed(t *testing.T) {
	var attempts int32
	progs := []workload.Program{
		&panicProg{after: 5_000, failures: 1, attempts: &attempts}, // first attempt only
	}
	cfg := CollectConfig{MaxInsts: 30_000, Interval: 10_000, Seed: 1, Runs: 1, Retries: 2}
	ds := Collect(progs, cfg)
	if len(ds.Dropped) != 0 {
		t.Fatalf("recovered run still dropped: %v", ds.Dropped)
	}
	if len(ds.Samples) == 0 {
		t.Fatalf("retried run produced no samples")
	}
	if got := atomic.LoadInt32(&attempts); got != 2 {
		t.Fatalf("attempts = %d, want 2 (panic, then success)", got)
	}
}

// TestCollectBackoffMaxAttemptsHonored: with Retries unset, a caller-supplied
// Backoff.MaxAttempts used to be unconditionally overwritten to Retries+1 = 1,
// silently disabling the caller's retries. It must govern the attempt budget.
func TestCollectBackoffMaxAttemptsHonored(t *testing.T) {
	var attempts int32
	progs := []workload.Program{
		&panicProg{after: 5_000, failures: 1, attempts: &attempts},
	}
	cfg := CollectConfig{MaxInsts: 30_000, Interval: 10_000, Seed: 1, Runs: 1,
		Backoff: retry.Policy{Base: time.Millisecond, Max: 2 * time.Millisecond,
			Factor: 2, MaxAttempts: 3}}
	ds := Collect(progs, cfg)
	if len(ds.Dropped) != 0 {
		t.Fatalf("run that recovered on its Backoff-granted retry was dropped: %v", ds.Dropped)
	}
	if got := atomic.LoadInt32(&attempts); got != 2 {
		t.Fatalf("attempts = %d, want 2 (panic, then Backoff-granted retry)", got)
	}

	// Explicit Retries still wins over the policy's own attempt cap.
	attempts = 0
	cfg.Retries = 2
	cfg.Backoff.MaxAttempts = 1
	ds = Collect([]workload.Program{
		&panicProg{after: 5_000, failures: 1, attempts: &attempts},
	}, cfg)
	if len(ds.Dropped) != 0 {
		t.Fatalf("Retries-granted retry was dropped: %v", ds.Dropped)
	}

	// And the all-defaults case keeps meaning exactly one attempt.
	attempts = 0
	ds = Collect([]workload.Program{
		&panicProg{after: 5_000, failures: 99, attempts: &attempts},
	}, CollectConfig{MaxInsts: 30_000, Interval: 10_000, Seed: 1, Runs: 1})
	if len(ds.Dropped) != 1 {
		t.Fatalf("dropped = %v, want the single failed attempt recorded", ds.Dropped)
	}
	if got := atomic.LoadInt32(&attempts); got != 1 {
		t.Fatalf("attempts = %d, want 1 with no retries configured", got)
	}
}

// endless is a benign-looking program that never terminates on its own.
type endless struct{}

func (endless) Info() workload.Info {
	return workload.Info{Name: "endless", Label: workload.Benign, Category: "test"}
}
func (endless) Stream(_ *rand.Rand) isa.Stream { return &plainStream{} }

func TestCollectTimeoutCutsRunawayRun(t *testing.T) {
	cfg := CollectConfig{
		MaxInsts: 1 << 62, // effectively unbounded: only the timeout stops it
		Interval: 10_000,
		Seed:     1,
		Runs:     1,
		Timeout:  100 * time.Millisecond,
	}
	start := time.Now()
	ds := Collect([]workload.Program{endless{}}, cfg)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("timeout did not bound the run (%v elapsed)", elapsed)
	}
	// The run was truncated, not discarded: its partial samples survive.
	if len(ds.Samples) == 0 {
		t.Fatalf("timed-out run contributed no samples")
	}
}

func TestCollectCtxCancelStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every run must be dropped
	progs := []workload.Program{benign.All()[0], benign.All()[1]}
	ds := CollectCtx(ctx, progs, CollectConfig{MaxInsts: 30_000, Interval: 10_000, Seed: 1, Runs: 2})
	if len(ds.Samples) != 0 {
		t.Fatalf("cancelled collection still produced %d samples", len(ds.Samples))
	}
	if len(ds.Dropped) != 4 {
		t.Fatalf("dropped %d runs, want all 4: %v", len(ds.Dropped), ds.Dropped)
	}
}

// TestCollectRetryRecordsBackoffTelemetry pins the shared retry helper's
// accounting: a collection that retries must show up under op="collect" in
// the attempt counter and the backoff-sleep histogram.
func TestCollectRetryRecordsBackoffTelemetry(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	attemptSeries := telemetry.Name("perspectron_retry_attempts_total", "op", "collect")
	before := reg.CounterValue(attemptSeries)

	var attempts int32
	progs := []workload.Program{&panicProg{after: 5_000, failures: 1, attempts: &attempts}}
	cfg := CollectConfig{MaxInsts: 30_000, Interval: 10_000, Seed: 1, Runs: 1, Retries: 2}
	ds := Collect(progs, cfg)
	if ds.Retried != 1 {
		t.Fatalf("Retried = %d, want 1", ds.Retried)
	}
	if got := reg.CounterValue(attemptSeries); got != before+2 {
		t.Fatalf("retry attempt counter advanced by %d, want 2", got-before)
	}
	h := reg.Histogram(telemetry.Name("perspectron_retry_backoff_seconds", "op", "collect"),
		telemetry.DurationBuckets)
	if h.Count() == 0 {
		t.Fatalf("no backoff sleep recorded")
	}
}

func TestRunSourceNextCtxDeadline(t *testing.T) {
	m := sim.NewMachine(sim.DefaultConfig())
	// A stream that produces one interval quickly, then stalls far longer
	// than the per-sample deadline (and ends itself after the stall window,
	// so the producer goroutine is reclaimed promptly).
	src := NewRunSource(context.Background(), m, &stallProg{stallAfter: 15_000, delay: 10 * time.Millisecond, stallOps: 60},
		0, 1, CollectConfig{MaxInsts: 1 << 40, Interval: 10_000})
	defer src.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	s, ok := src.NextCtx(ctx)
	cancel()
	if !ok || s == nil {
		t.Fatalf("first sample not delivered before the stall")
	}
	ctx, cancel = context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, ok := src.NextCtx(ctx); ok {
		t.Fatalf("stalled source delivered a sample inside the deadline")
	}
	if ctx.Err() == nil {
		t.Fatalf("NextCtx returned false without a context error on a live run")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("NextCtx did not honor the per-sample deadline")
	}
}

// stallProg streams plain ops, then sleeps `delay` per op after stallAfter
// ops — a pathologically slow sample source. After stallOps stalled ops the
// stream ends, bounding how long a stuck producer goroutine lingers.
type stallProg struct {
	stallAfter uint64
	delay      time.Duration
	stallOps   uint64
}

func (p *stallProg) Info() workload.Info {
	return workload.Info{Name: "staller", Label: workload.Benign, Category: "test"}
}

func (p *stallProg) Stream(_ *rand.Rand) isa.Stream {
	return &stallStream{after: p.stallAfter, delay: p.delay, stallOps: p.stallOps}
}

type stallStream struct {
	n        uint64
	after    uint64
	delay    time.Duration
	stallOps uint64
}

func (s *stallStream) Next() (isa.Op, bool) {
	s.n++
	if s.n > s.after {
		if s.n > s.after+s.stallOps {
			return isa.Op{}, false
		}
		time.Sleep(s.delay)
	}
	return isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu, PC: 0x4000 + 4*s.n}, true
}

func TestFilterCarriesDropped(t *testing.T) {
	ds := &Dataset{Dropped: []string{"x#0: run panicked"}}
	if got := ds.Filter(func(*Sample) bool { return true }); len(got.Dropped) != 1 {
		t.Fatalf("Filter lost the Dropped record")
	}
}
