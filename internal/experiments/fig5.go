package experiments

import (
	"fmt"
	"strings"

	"perspectron/internal/eval"
	"perspectron/internal/perceptron"
)

// Fig5Curve is one ROC curve at a sampling granularity.
type Fig5Curve struct {
	Interval      uint64
	Points        []eval.ROCPoint
	AUC           float64
	BestThreshold float64 // Youden-optimal operating point
}

// Fig5Result regenerates Fig. 5: ROC curves at 10K, 50K and 100K
// instruction sampling granularities. The paper finds 10K best (AUC 0.9949)
// and picks threshold 0.25 as the operating point.
type Fig5Result struct {
	Curves []Fig5Curve
}

// Fig5 collects a dataset per granularity, runs the attack-holdout CV with
// PerSpectron, and pools the per-fold test scores into one ROC per
// granularity.
func Fig5(cfg Config) *Fig5Result {
	res := &Fig5Result{}
	for _, interval := range []uint64{10_000, 50_000, 100_000} {
		c := cfg
		c.Interval = interval
		if interval > 10_000 {
			// Longer intervals need longer runs for the same sample count.
			c.MaxInsts = cfg.MaxInsts * (interval / 10_000)
		}
		p := Prepare(c)

		cv := eval.CrossValidate(p.DS, func() eval.ScoredClassifier {
			return perceptron.New(len(p.Sel.Indices), perceptron.DefaultConfig())
		}, eval.CVConfig{
			Folds:      eval.TableIIIFolds(),
			FeatureIdx: p.Sel.Indices,
			Binary:     true,
			Threshold:  0.25,
		})

		var scores, labels []float64
		for _, f := range cv.Folds {
			scores = append(scores, f.Scores...)
			labels = append(labels, f.Labels...)
		}
		points := eval.ROC(scores, labels)
		curve := Fig5Curve{
			Interval: interval,
			Points:   points,
			AUC:      eval.AUC(points),
		}
		best, bestJ := 0.25, -1.0
		for _, pt := range points {
			if j := pt.TPR - pt.FPR; j > bestJ {
				bestJ = j
				best = pt.Threshold
			}
		}
		curve.BestThreshold = best
		res.Curves = append(res.Curves, curve)
	}
	return res
}

// Render formats the AUC summary and coarse operating points.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5 — ROC vs sampling granularity\n\n")
	var rows [][]string
	for _, c := range r.Curves {
		rows = append(rows, []string{
			fmt.Sprintf("%dK", c.Interval/1000),
			fmt.Sprintf("%.4f", c.AUC),
			fmt.Sprintf("%.2f", c.BestThreshold),
			fmt.Sprintf("%.3f", tprAt(c.Points, 0.01)),
			fmt.Sprintf("%.3f", tprAt(c.Points, 0.05)),
			fmt.Sprintf("%.3f", tprAt(c.Points, 0.10)),
		})
	}
	b.WriteString(table([]string{"interval", "AUC", "best thr",
		"TPR@FPR.01", "TPR@FPR.05", "TPR@FPR.10"}, rows))
	b.WriteString("\n(paper: 10K best, AUC 0.9949, threshold 0.25)\n")
	return b.String()
}

func tprAt(points []eval.ROCPoint, fpr float64) float64 {
	best := 0.0
	for _, p := range points {
		if p.FPR <= fpr && p.TPR > best {
			best = p.TPR
		}
	}
	return best
}

// Best returns the curve with the highest AUC.
func (r *Fig5Result) Best() Fig5Curve {
	best := r.Curves[0]
	for _, c := range r.Curves[1:] {
		if c.AUC > best.AUC {
			best = c
		}
	}
	return best
}
