package experiments

import (
	"fmt"
	"sort"
	"strings"

	"perspectron/internal/eval"
	"perspectron/internal/perceptron"
)

// Table3Result regenerates Table III's attack-holdout cross-validation and
// the §VI-B generalization numbers (CacheOut and SpectreV2 held out of all
// training folds).
type Table3Result struct {
	Folds        []eval.Fold
	FoldAccuracy []float64
	FoldAUC      []float64
	MeanAccuracy float64
	Confidence   float64
	CacheOutTP   float64
	SpectreV2TP  float64
	PerCategory  map[string]float64
	FPPrograms   []string
}

// Table3 runs the paper's three folds with PerSpectron (106 selected
// features, k-sparse binary inputs, threshold 0.25).
func Table3(cfg Config) *Table3Result {
	p := Prepare(cfg)
	folds := eval.TableIIIFolds()
	res := eval.CrossValidate(p.DS, func() eval.ScoredClassifier {
		return perceptron.New(len(p.Sel.Indices), perceptron.DefaultConfig())
	}, eval.CVConfig{
		Folds:      folds,
		FeatureIdx: p.Sel.Indices,
		Binary:     true,
		Threshold:  0.25,
	})

	out := &Table3Result{
		Folds:        folds,
		MeanAccuracy: res.MeanAccuracy,
		Confidence:   res.Confidence,
		PerCategory:  map[string]float64{},
	}
	for _, f := range res.Folds {
		out.FoldAccuracy = append(out.FoldAccuracy, f.Metrics.Accuracy())
		out.FoldAUC = append(out.FoldAUC, f.AUC)
	}
	cats := map[string]bool{}
	for _, f := range res.Folds {
		for c := range f.PerCatTP {
			cats[c] = true
		}
	}
	for c := range cats {
		rate, _ := res.CategoryTPRate(c)
		out.PerCategory[c] = rate
	}
	out.CacheOutTP, _ = res.CategoryTPRate("cacheout")
	out.SpectreV2TP, _ = res.CategoryTPRate("spectre_v2")
	out.FPPrograms = res.FalsePositivePrograms(2)
	return out
}

// Render formats the folds, accuracies and generalization rates.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table III — attack-holdout cross-validation\n\n")
	var rows [][]string
	for i, f := range r.Folds {
		rows = append(rows, []string{
			fmt.Sprint(i + 1),
			strings.Join(f.TestCategories, ", "),
			fmt.Sprintf("%.4f", r.FoldAccuracy[i]),
			fmt.Sprintf("%.4f", r.FoldAUC[i]),
		})
	}
	b.WriteString(table([]string{"fold", "held-out attacks (D_k)", "accuracy", "AUC"}, rows))
	fmt.Fprintf(&b, "\nCV accuracy: %.4f ± %.4f   (paper: 0.9979 ± 0.0065)\n",
		r.MeanAccuracy, r.Confidence)
	fmt.Fprintf(&b, "CacheOut   holdout TP rate: %.3f (paper: 0.94)\n", r.CacheOutTP)
	fmt.Fprintf(&b, "SpectreV2  holdout TP rate: %.3f (paper: 0.91)\n", r.SpectreV2TP)

	b.WriteString("\nPer-category holdout TP rates:\n")
	var cats []string
	for c := range r.PerCategory {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Fprintf(&b, "  %-16s %.3f\n", c, r.PerCategory[c])
	}
	if len(r.FPPrograms) > 0 {
		fmt.Fprintf(&b, "\nBenign programs with >2 false positives: %s (paper: gobmk)\n",
			strings.Join(r.FPPrograms, ", "))
	} else {
		b.WriteString("\nNo benign program exceeded 2 false positives (paper: gobmk did)\n")
	}
	return b.String()
}
