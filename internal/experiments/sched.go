package experiments

import (
	"fmt"
	"strings"

	"perspectron/internal/sched"
	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

// SchedResult evaluates the deployment scenario the paper targets: the
// detector watches shared hardware while multiple processes time-multiplex
// the core, and the OS attributes each flagged sampling interval to the
// process that was running (§IV-G: "alerts the operating system ... to
// isolate a suspicious process"). Training uses isolated per-process
// traces; at deployment the cross-process cache and predictor pollution
// makes every interval noisier — the detector must still attribute
// correctly.
type SchedResult struct {
	// AttackerTPR is the fraction of attacker-owned intervals flagged.
	AttackerTPR float64
	// BenignFPR is the fraction of benign-owned intervals flagged.
	BenignFPR float64
	// PerProgram maps each scheduled program to its flagged fraction.
	PerProgram map[string]float64
	Switches   int
}

// Sched trains PerSpectron on the standard isolated corpus and deploys it
// on a 4-way multiprogrammed mix with one attacker.
func Sched(cfg Config) *SchedResult {
	p := PrepareCore(cfg)
	sc := trainPerSpectron(p, 0.25)

	s, err := sched.New(cfg.Interval, cfg.Interval, cfg.Seed+77,
		benign.Gcc(),
		attacks.FlushReload(),
		benign.Mcf(),
		benign.Povray(),
	)
	if err != nil {
		panic(err)
	}
	samples := s.Run(cfg.MaxInsts * 4)

	res := &SchedResult{PerProgram: map[string]float64{}, Switches: s.Switches()}
	flaggedBy := map[string]int{}
	totalBy := map[string]int{}
	var atkFlag, atkTotal, benFlag, benTotal float64
	for _, smp := range samples {
		score := sc.scoreSample(smp.Raw, smp.Index/len(s.Tasks()))
		flagged := score >= sc.threshold
		totalBy[smp.Program]++
		if flagged {
			flaggedBy[smp.Program]++
		}
		if smp.Label == workload.Malicious {
			atkTotal++
			if flagged {
				atkFlag++
			}
		} else {
			benTotal++
			if flagged {
				benFlag++
			}
		}
	}
	for prog, total := range totalBy {
		res.PerProgram[prog] = float64(flaggedBy[prog]) / float64(total)
	}
	if atkTotal > 0 {
		res.AttackerTPR = atkFlag / atkTotal
	}
	if benTotal > 0 {
		res.BenignFPR = benFlag / benTotal
	}
	return res
}

// Render formats the multiprogramming study.
func (r *SchedResult) Render() string {
	var b strings.Builder
	b.WriteString("deployment — attacker detection under 4-way multiprogramming\n")
	b.WriteString("(trained on isolated traces; deployed with shared caches/predictors)\n\n")
	var rows [][]string
	for prog, frac := range r.PerProgram {
		rows = append(rows, []string{prog, fmt.Sprintf("%.3f", frac)})
	}
	sortRows(rows)
	b.WriteString(table([]string{"program", "flagged fraction"}, rows))
	fmt.Fprintf(&b, "\nattacker-interval TPR: %.3f   benign-interval FPR: %.3f   context switches: %d\n",
		r.AttackerTPR, r.BenignFPR, r.Switches)
	b.WriteString("(per-interval attribution lets the OS isolate the suspicious process, §IV-G)\n")
	return b.String()
}

func sortRows(rows [][]string) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j][0] < rows[j-1][0]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}
