package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"perspectron/internal/sim"
	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

// MitigationResult quantifies the §IV-G1 hardware mitigations implemented
// in the simulator: context-sensitive fencing, CEASER-style cache index
// re-randomization, and branch-predictor noise injection. For each
// mitigation it reports the attack-channel degradation and the benign
// performance cost — the trade-off the confidence-driven policy navigates.
type MitigationResult struct {
	// Fencing vs SpectreV1.
	FenceSpecLoadsBlocked float64 // fraction of speculative loads blocked
	FenceBenignOverhead   float64 // relative cycle increase on branchy code

	// Cache rekeying vs Prime+Probe.
	RekeyMissNoiseBase   float64 // attacker probe miss rate, unmitigated
	RekeyMissNoiseActive float64 // attacker probe miss rate under rekeying
	RekeyBenignOverhead  float64

	// BP noise vs SpectreV1 (gadget executions per 10K instructions).
	NoiseGadgetRate        map[int]float64 // permille -> squashed loads per 10K
	NoiseBenignMispredicts map[int]float64
}

func runCycles(p workload.Program, cfg Config, seed int64, prep func(*sim.Machine)) (*sim.Machine, uint64) {
	m := sim.NewMachine(sim.DefaultConfig())
	if prep != nil {
		prep(m)
	}
	m.Run(p.Stream(rand.New(rand.NewSource(seed))), cfg.MaxInsts, cfg.Interval)
	return m, m.Pipe.Cycle()
}

func counter(m *sim.Machine, name string) float64 {
	c, ok := m.Reg.Lookup(name)
	if !ok {
		panic("mitigate: missing counter " + name)
	}
	return c.Value()
}

// Mitigate runs the three mitigation studies.
func Mitigate(cfg Config) *MitigationResult {
	res := &MitigationResult{
		NoiseGadgetRate:        map[int]float64{},
		NoiseBenignMispredicts: map[int]float64{},
	}
	spectre := attacks.SpectreV1("fr")
	pp := attacks.PrimeProbe()

	// 1. Context-sensitive fencing.
	fenced, _ := runCycles(spectre, cfg, 1, func(m *sim.Machine) { m.EnableFencing(true) })
	squashed := counter(fenced, "lsq.thread0.squashedLoads")
	blocked := counter(fenced, "iew.blockedSpecLoads")
	if squashed > 0 {
		res.FenceSpecLoadsBlocked = blocked / squashed
	}
	_, baseCyc := runCycles(benign.Gobmk(), cfg, 2, nil)
	_, fenceCyc := runCycles(benign.Gobmk(), cfg, 2, func(m *sim.Machine) { m.EnableFencing(true) })
	res.FenceBenignOverhead = float64(fenceCyc)/float64(baseCyc) - 1

	// 2. Cache index re-randomization against Prime+Probe.
	missRate := func(m *sim.Machine) float64 {
		return counter(m, "dcache.ReadReq_misses") / counter(m, "dcache.ReadReq_accesses")
	}
	basePP, _ := runCycles(pp, cfg, 3, nil)
	res.RekeyMissNoiseBase = missRate(basePP)
	rekeyPP, _ := runCycles(pp, cfg, 3, func(m *sim.Machine) {
		m.OnSample = func(idx int, _ []float64) { m.RekeyCaches(uint64(idx)*2654435761 + 7) }
	})
	res.RekeyMissNoiseActive = missRate(rekeyPP)
	_, mBase := runCycles(benign.Mcf(), cfg, 4, nil)
	_, mRekey := runCycles(benign.Mcf(), cfg, 4, func(m *sim.Machine) {
		m.OnSample = func(idx int, _ []float64) { m.RekeyCaches(uint64(idx)*2654435761 + 7) }
	})
	res.RekeyBenignOverhead = float64(mRekey)/float64(mBase) - 1

	// 3. Branch-predictor noise, dose-response.
	for _, permille := range []int{0, 100, 300, 500} {
		m, _ := runCycles(spectre, cfg, 5, func(m *sim.Machine) { m.InjectBPNoise(permille) })
		insts := counter(m, "commit.committedInsts")
		res.NoiseGadgetRate[permille] = counter(m, "lsq.thread0.squashedLoads") / insts * 10_000
		mb, _ := runCycles(benign.Gcc(), cfg, 6, func(m *sim.Machine) { m.InjectBPNoise(permille) })
		res.NoiseBenignMispredicts[permille] =
			counter(mb, "branchPred.condIncorrect") / counter(mb, "branchPred.condPredicted")
	}
	return res
}

// Render formats the three studies.
func (r *MitigationResult) Render() string {
	var b strings.Builder
	b.WriteString("§IV-G1 — hardware mitigations, channel damage vs benign cost\n\n")
	fmt.Fprintf(&b, "context-sensitive fencing vs SpectreV1:\n")
	fmt.Fprintf(&b, "  speculative loads blocked:   %.0f%%\n", r.FenceSpecLoadsBlocked*100)
	fmt.Fprintf(&b, "  benign overhead (gobmk):     %.1f%%\n\n", r.FenceBenignOverhead*100)
	fmt.Fprintf(&b, "cache index re-randomization vs Prime+Probe:\n")
	fmt.Fprintf(&b, "  probe miss noise:            %.3f -> %.3f\n",
		r.RekeyMissNoiseBase, r.RekeyMissNoiseActive)
	fmt.Fprintf(&b, "  benign overhead (mcf):       %.1f%%\n\n", r.RekeyBenignOverhead*100)
	b.WriteString("branch-predictor noise vs SpectreV1 (gadget loads per 10K insts):\n")
	for _, permille := range []int{0, 100, 300, 500} {
		fmt.Fprintf(&b, "  noise %3d‰: gadget rate %6.1f   benign mispredict rate %.3f\n",
			permille, r.NoiseGadgetRate[permille], r.NoiseBenignMispredicts[permille])
	}
	b.WriteString("\n(the paper: raise noise/randomization only when PerSpectron's confidence is high)\n")
	return b.String()
}
