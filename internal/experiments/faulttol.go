package experiments

import (
	"fmt"
	"strings"

	"perspectron"
)

// FaultTolRow is one point of the degradation curve: detection quality at a
// given counter-dropout intensity.
type FaultTolRow struct {
	Rate         float64 // per-sample probability each counter is missing
	Attacks      int     // attacks monitored
	Detected     int     // attacks flagged at the default threshold
	PreLeak      int     // attacks flagged no later than their first leak
	MeanCoverage float64 // mean Report.Coverage over attack runs
	BenignFPRate float64 // fraction of benign samples flagged
}

// FaultTolResult sweeps fault intensity against detection rate — the
// robustness analogue of the paper's Fig. 5 bandwidth sweep. The paper's
// replicated-detector claim (§VI) predicts a flat detection curve well past
// modest sensor loss; the degraded-mode scorer renormalizes the perceptron
// margin over surviving weights, so the confidence decays with coverage
// instead of collapsing at the first missing counter.
type FaultTolResult struct {
	Threshold float64
	Rows      []FaultTolRow
	Err       error // training failure; Rows is empty if set
}

// FaultTol trains the standard detector, then monitors every training-set
// attack and benign kernel under increasing random counter dropout injected
// into the machine's sampled vectors.
func FaultTol(cfg Config) *FaultTolResult {
	opts := perspectron.DefaultOptions()
	opts.MaxInsts = cfg.MaxInsts
	opts.Runs = cfg.Runs
	opts.Seed = cfg.Seed
	opts.Interval = cfg.Interval

	res := &FaultTolResult{Threshold: opts.Threshold}
	det, err := perspectron.Train(perspectron.TrainingWorkloads(), opts)
	if err != nil {
		res.Err = err
		return res
	}

	attacks := perspectron.AttackWorkloads()
	benign := perspectron.BenignWorkloads()
	for _, rate := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		fc := perspectron.FaultConfig{Seed: cfg.Seed + 1, Dropout: rate}
		row := FaultTolRow{Rate: rate, Attacks: len(attacks)}
		covSum := 0.0
		for i, w := range attacks {
			rep, err := det.MonitorFaulty(w, cfg.MaxInsts, cfg.Seed+int64(i)*131, fc)
			if err != nil {
				continue
			}
			covSum += rep.Coverage
			if rep.Detected {
				row.Detected++
				if !rep.LeakBefore {
					row.PreLeak++
				}
			}
		}
		if len(attacks) > 0 {
			row.MeanCoverage = covSum / float64(len(attacks))
		}
		flagged, total := 0, 0
		for i, w := range benign {
			rep, err := det.MonitorFaulty(w, cfg.MaxInsts, cfg.Seed+int64(i)*151, fc)
			if err != nil {
				continue
			}
			for _, s := range rep.Samples {
				total++
				if s.Flagged {
					flagged++
				}
			}
		}
		if total > 0 {
			row.BenignFPRate = float64(flagged) / float64(total)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// DetectionRateAt returns the attack detection rate at the given dropout
// rate, or -1 if that point was not swept.
func (r *FaultTolResult) DetectionRateAt(rate float64) float64 {
	for _, row := range r.Rows {
		if row.Rate == rate && row.Attacks > 0 {
			return float64(row.Detected) / float64(row.Attacks)
		}
	}
	return -1
}

// Render formats the degradation curve.
func (r *FaultTolResult) Render() string {
	var b strings.Builder
	b.WriteString("fault tolerance — detection vs counter dropout (degraded serving mode)\n\n")
	if r.Err != nil {
		fmt.Fprintf(&b, "training failed: %v\n", r.Err)
		return b.String()
	}
	var rows [][]string
	var rates []float64
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", row.Rate*100),
			fmt.Sprintf("%d/%d", row.Detected, row.Attacks),
			fmt.Sprintf("%d/%d", row.PreLeak, row.Attacks),
			fmt.Sprintf("%.3f", row.MeanCoverage),
			fmt.Sprintf("%.3f", row.BenignFPRate),
		})
		if row.Attacks > 0 {
			rates = append(rates, float64(row.Detected)/float64(row.Attacks))
		}
	}
	b.WriteString(table([]string{"dropout", "detected", "pre-leak", "coverage", "benign FP"}, rows))
	fmt.Fprintf(&b, "\ndetection curve: %s  (threshold %.2f)\n", sparkline(rates, 0, 1), r.Threshold)
	b.WriteString("(replicated detectors: the curve should stay flat well past 20% loss)\n")
	return b.String()
}
