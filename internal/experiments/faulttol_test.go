package experiments

import (
	"strings"
	"testing"
)

func TestFaultTolQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a detector")
	}
	res := FaultTol(QuickConfig())
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("swept %d dropout rates, want 6", len(res.Rows))
	}
	// The zero-fault point must match the clean detector: everything
	// detected at full coverage.
	clean := res.Rows[0]
	if clean.Rate != 0 || clean.Detected != clean.Attacks {
		t.Fatalf("clean run missed attacks: %d/%d", clean.Detected, clean.Attacks)
	}
	if clean.MeanCoverage < 0.999 {
		t.Fatalf("clean run coverage = %.3f, want 1", clean.MeanCoverage)
	}
	// The acceptance bar: 20% dropout keeps every training-set attack
	// detected (the replicated-detector resilience claim).
	if got := res.DetectionRateAt(0.2); got != 1 {
		t.Fatalf("detection rate at 20%% dropout = %.3f, want 1.0", got)
	}
	// Coverage must reflect the injected loss.
	for _, row := range res.Rows[1:] {
		if row.MeanCoverage > 1-row.Rate/2 {
			t.Fatalf("dropout %.0f%% reported coverage %.3f — faults not reaching the scorer",
				row.Rate*100, row.MeanCoverage)
		}
	}
	out := res.Render()
	for _, want := range []string{"dropout", "detected", "coverage", "benign FP"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if res.DetectionRateAt(0.77) != -1 {
		t.Fatalf("unswept rate should report -1")
	}
}
