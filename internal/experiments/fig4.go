package experiments

import (
	"fmt"
	"strings"

	"perspectron/internal/workload/attacks"
)

// Fig4Series is one bandwidth setting's output trajectory.
type Fig4Series struct {
	Factor    float64
	Scores    []float64
	FirstFlag int
	FirstLeak int
	Detected  bool
	PreLeak   bool
}

// Fig4Result regenerates Fig. 4: perceptron output versus instructions for
// SpectreV1 at 1.0x, 0.75x, 0.5x and 0.25x leakage bandwidth (safe filler
// injected before priming and after disclosure, per §VI-A2). The paper's
// claims: the unmodified attack saturates fastest, every reduced-bandwidth
// version still stays above the cutoff after its first complete phase.
type Fig4Result struct {
	Interval  uint64
	Threshold float64
	Series    []Fig4Series
}

// Fig4 trains on the core corpus (full-rate attacks only — no bandwidth
// variant is seen in training) and monitors the reduced-bandwidth variants.
func Fig4(cfg Config) *Fig4Result {
	p := PrepareCore(cfg)
	sc := trainPerSpectron(p, 0.25)

	res := &Fig4Result{Interval: cfg.Interval, Threshold: sc.threshold}
	for _, factor := range []float64{1.0, 0.75, 0.5, 0.25} {
		prog := attacks.Bandwidth(attacks.SpectreV1("fr"), factor)
		// Lower bandwidth needs proportionally longer runs to show the
		// same number of attack phases.
		runCfg := cfg
		runCfg.MaxInsts = uint64(float64(cfg.MaxInsts) / factor)
		run := collectRun(prog, runCfg, cfg.Seed+17)
		v := sc.verdict(run)
		res.Series = append(res.Series, Fig4Series{
			Factor:    factor,
			Scores:    v.Scores,
			FirstFlag: v.FirstFlag,
			FirstLeak: v.FirstLeak,
			Detected:  v.Detected,
			PreLeak:   v.PreLeak,
		})
	}
	return res
}

// AllDetected reports whether every bandwidth setting was flagged.
func (r *Fig4Result) AllDetected() bool {
	for _, s := range r.Series {
		if !s.Detected {
			return false
		}
	}
	return true
}

// Render formats one strip chart per bandwidth factor.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 4 — perceptron output vs instructions, SpectreV1 bandwidths\n")
	fmt.Fprintf(&b, "(sampling every %d instructions; threshold %.2f)\n\n", r.Interval, r.Threshold)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %.2fx |%s|", s.Factor, sparkline(s.Scores, -1, 1))
		switch {
		case s.PreLeak:
			fmt.Fprintf(&b, " flagged@%d leak@%d (pre-leak)\n", s.FirstFlag, s.FirstLeak)
		case s.Detected:
			fmt.Fprintf(&b, " flagged@%d leak@%d (post-leak)\n", s.FirstFlag, s.FirstLeak)
		default:
			b.WriteString(" NOT DETECTED\n")
		}
	}
	fmt.Fprintf(&b, "\nall bandwidths detected: %v (paper: yes, down to 0.25x)\n", r.AllDetected())
	return b.String()
}
