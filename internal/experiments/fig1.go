package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"perspectron/internal/encoding"
	"perspectron/internal/sim"
	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

// fig1Counters are the input dimensions of the paper's Fig. 1: information
// about each attack "hops" between them, motivating replicated detectors.
var fig1Counters = []string{
	"membus.trans_dist::ReadResp",
	"commit.NonSpecStalls",
	"fetch.PendingQuiesceStallCycles",
	"tol2bus.trans_dist::CleanEvict",
	"branchPred.RASInCorrect",
	"branchPred.indirectMispredicted",
	"iq.NonSpecInstsAdded",
	"lsq.thread0.squashedLoads",
}

// Fig1Row is one program's normalized footprint across the Fig. 1
// dimensions.
type Fig1Row struct {
	Program string
	Label   workload.Label
	Values  []float64 // normalized to the corpus maximum per counter
	Bits    []int     // the paper's k-sparse representation (>= 0.5)
}

// Fig1Result regenerates Fig. 1.
type Fig1Result struct {
	Counters []string
	Rows     []Fig1Row
}

// Fig1 runs the five attacks of the paper's figure plus a safe program and
// reports each one's footprint across the eight dimensions.
func Fig1(cfg Config) *Fig1Result {
	progs := []workload.Program{
		attacks.SpectreRSB("fr"),
		attacks.Meltdown("fr"),
		attacks.FlushFlush(),
		attacks.FlushReload(),
		attacks.PrimeProbe(),
		benign.Bzip2(),
	}

	raw := make([][]float64, len(progs))
	for pi, p := range progs {
		m := sim.NewMachine(sim.DefaultConfig())
		m.Run(p.Stream(rand.New(rand.NewSource(cfg.Seed))), cfg.MaxInsts, cfg.Interval)
		vals := make([]float64, len(fig1Counters))
		for ci, name := range fig1Counters {
			c, ok := m.Reg.Lookup(name)
			if !ok {
				panic("fig1: missing counter " + name)
			}
			vals[ci] = c.Value()
		}
		raw[pi] = vals
	}

	// Normalize per counter to the corpus maximum.
	maxes := make([]float64, len(fig1Counters))
	for _, vals := range raw {
		for ci, v := range vals {
			if v > maxes[ci] {
				maxes[ci] = v
			}
		}
	}
	res := &Fig1Result{Counters: fig1Counters}
	for pi, p := range progs {
		row := Fig1Row{Program: p.Info().Name, Label: p.Info().Label}
		for ci, v := range raw[pi] {
			n := 0.0
			if maxes[ci] > 0 {
				n = v / maxes[ci]
			}
			row.Values = append(row.Values, n)
			bit := 0
			if n >= encoding.BinarizeThreshold {
				bit = 1
			}
			row.Bits = append(row.Bits, bit)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats the figure as a table of normalized values plus the
// k-sparse signature vectors.
func (r *Fig1Result) Render() string {
	short := make([]string, len(r.Counters))
	for i, c := range r.Counters {
		parts := strings.Split(c, ".")
		short[i] = parts[len(parts)-1]
		if len(short[i]) > 18 {
			short[i] = short[i][:18]
		}
	}
	header := append([]string{"program", "class"}, short...)
	var rows [][]string
	for _, row := range r.Rows {
		cells := []string{row.Program, row.Label.String()}
		for _, v := range row.Values {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		rows = append(rows, cells)
	}
	var b strings.Builder
	b.WriteString("Fig. 1 — information hops between input dimensions\n")
	b.WriteString("(per-counter values normalized to the corpus maximum)\n\n")
	b.WriteString(table(header, rows))
	b.WriteString("\nk-sparse signatures (bit = value >= 0.5):\n")
	for _, row := range r.Rows {
		bits := make([]string, len(row.Bits))
		for i, v := range row.Bits {
			bits[i] = fmt.Sprint(v)
		}
		fmt.Fprintf(&b, "  %-14s <%s>\n", row.Program, strings.Join(bits, ","))
	}
	return b.String()
}

// DistinctSignatures reports whether every malicious row's bit vector
// differs from the safe program's — the property the paper's example
// vectors illustrate.
func (r *Fig1Result) DistinctSignatures() bool {
	var safe []int
	for _, row := range r.Rows {
		if row.Label == workload.Benign {
			safe = row.Bits
		}
	}
	if safe == nil {
		return false
	}
	for _, row := range r.Rows {
		if row.Label == workload.Benign {
			continue
		}
		same := true
		for i := range row.Bits {
			if row.Bits[i] != safe[i] {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	return true
}
