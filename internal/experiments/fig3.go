package experiments

import (
	"fmt"
	"strings"

	"perspectron/internal/perceptron"
	"perspectron/internal/trace"
	"perspectron/internal/workload/attacks"
)

// Fig3Series is one polymorphic variant's perceptron output over time.
type Fig3Series struct {
	Variant   string
	Scores    []float64 // pre-threshold output per sampling interval
	FirstFlag int
	Detected  bool
}

// Fig3Result regenerates Fig. 3: perceptron output versus instructions for
// the 12 polymorphic Spectre variants of §VI-A1, none of which appeared in
// feature selection or training. The paper's claim: all variants are
// flagged, at the same sampling interval.
type Fig3Result struct {
	Interval  uint64
	Threshold float64
	Series    []Fig3Series
}

// trainPerSpectron trains the detector on the base corpus and returns a
// scorer (shared by Fig3/Fig4).
func trainPerSpectron(p *Prepared, threshold float64) *modelScorer {
	enc := p.Enc
	X, y := enc.BinaryMatrix(p.DS)
	Xp := trace.Project(X, p.Sel.Indices)
	det := perceptron.New(len(p.Sel.Indices), perceptron.DefaultConfig())
	det.Fit(Xp, y)
	return &modelScorer{enc: enc, idx: p.Sel.Indices, binary: true,
		clf: det, threshold: threshold}
}

// Fig3 trains PerSpectron on the core corpus (which contains no polymorphic
// variants) and monitors each variant.
func Fig3(cfg Config) *Fig3Result {
	p := PrepareCore(cfg)
	sc := trainPerSpectron(p, 0.25)
	runs := collectRuns(attacks.AllPolymorphic("fr"), cfg)

	res := &Fig3Result{Interval: cfg.Interval, Threshold: sc.threshold}
	for _, run := range runs {
		v := sc.verdict(run)
		res.Series = append(res.Series, Fig3Series{
			Variant:   strings.TrimPrefix(run.Name, "spectreV1-poly-"),
			Scores:    v.Scores,
			FirstFlag: v.FirstFlag,
			Detected:  v.Detected,
		})
	}
	return res
}

// AllDetected reports the paper's headline claim for this figure.
func (r *Fig3Result) AllDetected() bool {
	for _, s := range r.Series {
		if !s.Detected {
			return false
		}
	}
	return true
}

// Render formats one strip chart per variant.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 3 — perceptron output vs instructions, 12 polymorphic Spectre variants\n")
	fmt.Fprintf(&b, "(sampling every %d instructions; threshold %.2f; '%s' marks the flag point)\n\n",
		r.Interval, r.Threshold, "^")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %-24s |%s|", s.Variant, sparkline(s.Scores, -1, 1))
		if s.Detected {
			fmt.Fprintf(&b, " flagged@sample %d\n", s.FirstFlag)
		} else {
			b.WriteString(" NOT DETECTED\n")
		}
	}
	fmt.Fprintf(&b, "\nall 12 variants detected: %v (paper: yes, at the same sampling interval)\n",
		r.AllDetected())
	return b.String()
}
