package experiments

import (
	"math/rand"

	"perspectron/internal/ml"
	"perspectron/internal/sim"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
)

// MonitoredRun is one program execution with per-interval counter deltas and
// the sample indices at which disclosures completed.
type MonitoredRun struct {
	Name        string
	Category    string
	Samples     [][]float64
	LeakSamples []int
}

// collectRun executes one program and records samples plus leak marks.
func collectRun(p workload.Program, cfg Config, seed int64) MonitoredRun {
	m := sim.NewMachine(sim.DefaultConfig())
	stream := p.Stream(rand.New(rand.NewSource(seed)))
	vecs := m.Run(stream, cfg.MaxInsts, cfg.Interval)
	run := MonitoredRun{Name: p.Info().Name, Category: p.Info().Category, Samples: vecs}
	if ls, ok := stream.(*workload.LoopStream); ok {
		for _, mark := range ls.LeakMarks() {
			s := int(mark / cfg.Interval)
			if s < len(vecs) {
				run.LeakSamples = append(run.LeakSamples, s)
			}
		}
	}
	return run
}

// collectRuns monitors a list of programs.
func collectRuns(progs []workload.Program, cfg Config) []MonitoredRun {
	out := make([]MonitoredRun, len(progs))
	for i, p := range progs {
		out[i] = collectRun(p, cfg, cfg.Seed+int64(i)*101)
	}
	return out
}

// modelScorer scores monitored runs with a trained classifier over an
// encoder built from the training corpus.
type modelScorer struct {
	enc       *trace.Encoder
	idx       []int // feature projection (nil = all)
	binary    bool
	clf       ml.Classifier
	threshold float64
}

// scoreSample encodes one raw delta vector (at execution point j) and
// returns the classifier score.
func (s *modelScorer) scoreSample(raw []float64, j int) float64 {
	var vec []float64
	if s.binary {
		vec = s.enc.BinarizeAt(raw, j)
	} else {
		vec = s.enc.ScaleAt(raw, j)
	}
	if s.idx != nil {
		p := make([]float64, len(s.idx))
		for i, f := range s.idx {
			p[i] = vec[f]
		}
		vec = p
	}
	return s.clf.Score(vec)
}

// Verdict summarizes one monitored run's detection outcome.
type Verdict struct {
	Name      string
	Scores    []float64
	FirstFlag int // -1 if never flagged
	FirstLeak int // -1 if the run never disclosed
	// Detected: flagged at some point. PreLeak: flagged no later than the
	// sample in which the first disclosure completed.
	Detected bool
	PreLeak  bool
}

// verdict scores a run sample by sample.
func (s *modelScorer) verdict(run MonitoredRun) Verdict {
	v := Verdict{Name: run.Name, FirstFlag: -1, FirstLeak: -1}
	if len(run.LeakSamples) > 0 {
		v.FirstLeak = run.LeakSamples[0]
	}
	for i, raw := range run.Samples {
		score := s.scoreSample(raw, i)
		v.Scores = append(v.Scores, score)
		if v.FirstFlag < 0 && score >= s.threshold {
			v.FirstFlag = i
		}
	}
	v.Detected = v.FirstFlag >= 0
	v.PreLeak = v.Detected && (v.FirstLeak < 0 || v.FirstFlag <= v.FirstLeak)
	return v
}
