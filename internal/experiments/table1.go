package experiments

import (
	"fmt"
	"strings"

	"perspectron/internal/features"
)

// Table1Result regenerates Table I: groups of highly correlated features
// (|Pearson| > 0.98) that span multiple pipeline components — the raw
// material for replicated detectors.
type Table1Result struct {
	Threshold   float64
	TotalGroups int
	// Groups holds the cross-component groups, members named and ranked by
	// class correlation (as the paper's table presents them).
	Groups     [][]string
	Components [][]string
}

// Table1 computes the correlation grouping on the base dataset.
func Table1(cfg Config) *Table1Result {
	p := Prepare(cfg)
	cross := features.CrossComponentGroups(p.Sel.Groups, p.DS.Components)

	res := &Table1Result{
		Threshold:   features.DefaultSelectConfig().GroupThreshold,
		TotalGroups: len(p.Sel.Groups),
	}
	limit := 4 // the paper shows 4 of its 53 groups
	for gi, g := range cross {
		if gi >= limit {
			break
		}
		var names, comps []string
		for mi, j := range g.Members {
			if mi >= 18 { // Table I shows 18 rows per group
				break
			}
			names = append(names, p.DS.FeatureNames[j])
			comps = append(comps, p.DS.Components[j].String())
		}
		res.Groups = append(res.Groups, names)
		res.Components = append(res.Components, comps)
	}
	return res
}

// Render formats the groups side by side like Table I.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — highly correlated feature groups (|c| > %.2f)\n", r.Threshold)
	fmt.Fprintf(&b, "%d groups total; showing the %d largest cross-component groups\n\n",
		r.TotalGroups, len(r.Groups))
	rows := 0
	for _, g := range r.Groups {
		if len(g) > rows {
			rows = len(g)
		}
	}
	header := make([]string, len(r.Groups))
	for i := range header {
		header[i] = fmt.Sprintf("group %d", i+1)
	}
	var cells [][]string
	for ri := 0; ri < rows; ri++ {
		row := make([]string, len(r.Groups))
		for gi, g := range r.Groups {
			if ri < len(g) {
				row[gi] = g[ri]
			}
		}
		cells = append(cells, row)
	}
	b.WriteString(table(header, cells))
	return b.String()
}

// SpansComponents reports, per listed group, how many distinct components
// its members cover (must be >= 2 by construction).
func (r *Table1Result) SpansComponents() []int {
	out := make([]int, len(r.Components))
	for i, comps := range r.Components {
		seen := map[string]bool{}
		for _, c := range comps {
			seen[c] = true
		}
		out[i] = len(seen)
	}
	return out
}
