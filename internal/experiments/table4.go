package experiments

import (
	"fmt"
	"strings"

	"perspectron/internal/eval"
	"perspectron/internal/features"
	"perspectron/internal/ml"
	"perspectron/internal/perceptron"
	"perspectron/internal/trace"
	"perspectron/internal/workload/attacks"
)

// Table4Row is one model × feature-set combination of Table IV.
type Table4Row struct {
	Model        string
	FeatureSet   string
	MeanAccuracy float64
	Confidence   float64
	FPPrograms   []string
	PolyDetected int // of the 12 §VI-A1 variants
	PolyPreLeak  int
	BWDetected   map[float64]string // bandwidth factor -> "pre" / "post" / "missed"
	HWComplexity string
}

// Table4Result regenerates Table IV: model and feature-set comparison, plus
// the evasion/FN assessment (polymorphic variants and bandwidth-reduced
// SpectreV1).
type Table4Result struct {
	Rows []Table4Row
}

// table4Spec declares the comparison grid. Thresholds: PerSpectron uses the
// paper's 0.25 on its normalized output; other models decide at 0.
type table4Spec struct {
	model      string
	featureSet string // "MAP", "PerSpectron", "full"
	binary     bool
	threshold  float64
	hw         string
	mk         func(nFeatures int) eval.ScoredClassifier
}

func table4Grid() []table4Spec {
	plainPerceptron := func(n int) eval.ScoredClassifier {
		cfg := perceptron.DefaultConfig()
		cfg.Margin = 0 // the plain-perceptron baseline has no margin training
		cfg.Epochs = 200
		return perceptron.New(n, cfg)
	}
	return []table4Spec{
		{"DT-CART", "MAP", false, 0, "low",
			func(int) eval.ScoredClassifier { return ml.NewCART() }},
		{"DT-CART", "PerSpectron", false, 0, "low",
			func(int) eval.ScoredClassifier { return ml.NewCART() }},
		{"LogisticRegression", "MAP", false, 0, "low",
			func(int) eval.ScoredClassifier { return ml.NewLogReg() }},
		{"Perceptron", "full", true, 0, "low", plainPerceptron},
		{"KNN", "PerSpectron", false, 0, "high",
			func(int) eval.ScoredClassifier { return ml.NewKNN() }},
		{"NeuralNetwork", "MAP", false, 0, "high",
			func(int) eval.ScoredClassifier { return ml.NewMLP() }},
		{"NeuralNetwork", "PerSpectron", false, 0, "high",
			func(int) eval.ScoredClassifier { return ml.NewMLP() }},
		{"PerSpectron", "PerSpectron", true, 0.25, "low",
			func(n int) eval.ScoredClassifier {
				return perceptron.New(n, perceptron.DefaultConfig())
			}},
	}
}

// Table4 runs the full comparison.
func Table4(cfg Config) *Table4Result {
	p := Prepare(cfg)
	mapIdx := features.MAPFeatures(p.DS.FeatureNames)

	// Evasion suite: the 12 polymorphic variants plus bandwidth-reduced
	// SpectreV1, monitored once and scored by every model.
	evCfg := cfg
	evCfg.MaxInsts = cfg.MaxInsts
	polyRuns := collectRuns(attacks.AllPolymorphic("fr"), evCfg)
	bwFactors := []float64{0.75, 0.5, 0.25}
	var bwRuns []MonitoredRun
	for _, f := range bwFactors {
		bwRuns = append(bwRuns,
			collectRun(attacks.Bandwidth(attacks.SpectreV1("fr"), f), evCfg, cfg.Seed+991))
	}

	// Full-corpus training encoder for the evasion assessment.
	fullEnc := p.Enc

	res := &Table4Result{}
	for _, spec := range table4Grid() {
		var idx []int
		switch spec.featureSet {
		case "MAP":
			idx = mapIdx
		case "PerSpectron":
			idx = p.Sel.Indices
		default: // full
			idx = nil
		}
		n := len(idx)
		if idx == nil {
			n = p.DS.NumFeatures()
		}

		// CV accuracy.
		cv := eval.CrossValidate(p.DS, func() eval.ScoredClassifier { return spec.mk(n) },
			eval.CVConfig{
				Folds:      eval.TableIIIFolds(),
				FeatureIdx: idx,
				Binary:     spec.binary,
				Threshold:  spec.threshold,
			})

		// Evasion assessment with a full-corpus-trained model.
		encode := fullEnc.Matrix
		if spec.binary {
			encode = fullEnc.BinaryMatrix
		}
		X, y := encode(p.DS)
		if idx != nil {
			X = trace.Project(X, idx)
		}
		clf := spec.mk(n)
		clf.Fit(X, y)
		sc := &modelScorer{enc: fullEnc, idx: idx, binary: spec.binary,
			clf: clf, threshold: spec.threshold}

		row := Table4Row{
			Model:        spec.model,
			FeatureSet:   spec.featureSet,
			MeanAccuracy: cv.MeanAccuracy,
			Confidence:   cv.Confidence,
			FPPrograms:   cv.FalsePositivePrograms(2),
			BWDetected:   map[float64]string{},
			HWComplexity: spec.hw,
		}
		for _, run := range polyRuns {
			v := sc.verdict(run)
			if v.Detected {
				row.PolyDetected++
			}
			if v.PreLeak {
				row.PolyPreLeak++
			}
		}
		for bi, run := range bwRuns {
			v := sc.verdict(run)
			switch {
			case v.PreLeak:
				row.BWDetected[bwFactors[bi]] = "pre"
			case v.Detected:
				row.BWDetected[bwFactors[bi]] = "post"
			default:
				row.BWDetected[bwFactors[bi]] = "missed"
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats the comparison table.
func (r *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString("Table IV — ML model and feature-set comparison\n\n")
	var rows [][]string
	for _, row := range r.Rows {
		fp := strings.Join(row.FPPrograms, ",")
		if fp == "" {
			fp = "-"
		}
		rows = append(rows, []string{
			row.Model,
			row.FeatureSet,
			fmt.Sprintf("%.4f", row.MeanAccuracy),
			fmt.Sprintf("±%.4f", row.Confidence),
			fp,
			fmt.Sprintf("%d/12", row.PolyDetected),
			fmt.Sprintf("%s/%s/%s",
				row.BWDetected[0.75], row.BWDetected[0.5], row.BWDetected[0.25]),
			row.HWComplexity,
		})
	}
	b.WriteString(table([]string{"model", "features", "mean acc", "95% conf",
		"FP programs", "polymorphic", "BW .75/.50/.25", "HW"}, rows))
	b.WriteString("\npaper ordering: PerSpectron 0.9979 > NN+PerSpectron 0.9822 > KNN 0.9487\n")
	b.WriteString("  > DT-CART+PerSpectron 0.9058 > Perceptron(full) 0.8974 > DT-CART+MAP 0.8718\n")
	b.WriteString("  > NN+MAP 0.8026 > LogReg+MAP 0.7594\n")
	return b.String()
}

// Row returns the row for a model/feature-set pair.
func (r *Table4Result) Row(model, featureSet string) *Table4Row {
	for i := range r.Rows {
		if r.Rows[i].Model == model && r.Rows[i].FeatureSet == featureSet {
			return &r.Rows[i]
		}
	}
	return nil
}
