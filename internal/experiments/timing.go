package experiments

import (
	"fmt"
	"strings"

	"perspectron/internal/perceptron"
)

// TimingResult regenerates the §VI-A2 sampling-interval argument: Li &
// Gaudiot's evasive Spectre needs 61 µs to complete its three atomic tasks
// (flush 10 µs, mistrain 13 µs, infer 38 µs); a 100 ms software sampler is
// evadable, PerSpectron's ~3 µs hardware sampler is not.
type TimingResult struct {
	Model             perceptron.HardwareModel
	SamplingUs        float64
	InferenceNs       float64
	WeightBits        int
	AtomicTaskUs      [3]float64
	SamplesIn61Us     int
	SoftwareSamplerMs float64
	Fits              bool
}

// Timing evaluates the hardware cost model.
func Timing() *TimingResult {
	h := perceptron.DefaultHardwareModel()
	return &TimingResult{
		Model:             h,
		SamplingUs:        h.SamplingIntervalUs(),
		InferenceNs:       h.InferenceTimeNs(),
		WeightBits:        h.WeightStorageBits(),
		AtomicTaskUs:      [3]float64{10, 13, 38},
		SamplesIn61Us:     h.SamplesWithin(61),
		SoftwareSamplerMs: 100,
		Fits:              h.FitsInSamplingInterval(),
	}
}

// Render formats the timing analysis.
func (r *TimingResult) Render() string {
	var b strings.Builder
	b.WriteString("§VI-A2 — sampling-interval / evasion-timing analysis\n\n")
	fmt.Fprintf(&b, "perceptron inputs:            %d\n", r.Model.NumFeatures)
	fmt.Fprintf(&b, "inference (serial adder):     %d cycles = %.0f ns\n",
		r.Model.InferenceCycles(), r.InferenceNs)
	fmt.Fprintf(&b, "weight storage:               %d bits\n", r.WeightBits)
	fmt.Fprintf(&b, "sampling interval:            %.2f µs (paper: ~3 µs)\n", r.SamplingUs)
	fmt.Fprintf(&b, "inference fits interval:      %v\n\n", r.Fits)
	fmt.Fprintf(&b, "evasive-Spectre atomic tasks: flush %.0f µs + mistrain %.0f µs + infer %.0f µs = 61 µs\n",
		r.AtomicTaskUs[0], r.AtomicTaskUs[1], r.AtomicTaskUs[2])
	fmt.Fprintf(&b, "software detector interval:   %.0f ms  -> attack hides inside one interval\n",
		r.SoftwareSamplerMs)
	fmt.Fprintf(&b, "PerSpectron samples in 61 µs: %d (paper: 20) -> evasion window closed\n",
		r.SamplesIn61Us)
	return b.String()
}
