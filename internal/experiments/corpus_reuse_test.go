package experiments

import (
	"testing"

	"perspectron"
	"perspectron/internal/corpus"
)

// TestSingleCollectionAcrossExperiments is the collect-once acceptance test:
// a sweep of base-corpus experiments — including detector training through
// the public perspectron.Train API, the path FaultTol takes — must trigger
// exactly one base-corpus collection in the shared artifact store. Fig5 then
// adds exactly its two longer-granularity corpora; its 10K-interval request
// is served from the store.
func TestSingleCollectionAcrossExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	cfg := QuickConfig()
	cfg.Seed = 424242 // unique to this test: no other corpus shares the key

	store := corpus.Default()
	before := store.Stats()

	Table1(cfg)
	Table3(cfg)
	Multiway(cfg)
	Weights(cfg)

	// Detector training through the public API, exactly as FaultTol invokes
	// it: same workload identities, same collect config, same store.
	opts := perspectron.DefaultOptions()
	opts.MaxInsts = cfg.MaxInsts
	opts.Runs = cfg.Runs
	opts.Seed = cfg.Seed
	opts.Interval = cfg.Interval
	if _, err := perspectron.Train(perspectron.TrainingWorkloads(), opts); err != nil {
		t.Fatal(err)
	}

	d := store.Stats().Sub(before)
	if d.Collections != 1 {
		t.Fatalf("base-corpus experiments ran %d collections, want exactly 1 (stats delta: %s)",
			d.Collections, d)
	}
	if d.MemoryHits == 0 {
		t.Fatalf("no memory hits recorded across the sweep (stats delta: %s)", d)
	}

	// Fig5 sweeps 10K/50K/100K granularities: the 10K corpus is the one
	// already collected above; only the two longer-interval corpora are new.
	mid := store.Stats()
	Fig5(cfg)
	d5 := store.Stats().Sub(mid)
	if d5.Collections != 2 {
		t.Fatalf("Fig5 ran %d collections, want exactly 2 (50K and 100K; stats delta: %s)",
			d5.Collections, d5)
	}
}

// TestConfigPrivateStore verifies experiments honour Config.Store, the
// isolation hook this test suite itself depends on.
func TestConfigPrivateStore(t *testing.T) {
	cfg := QuickConfig()
	cfg.MaxInsts = 30_000
	cfg.Store = corpus.NewStore()

	defBefore := corpus.Default().Stats()
	BaseDataset(cfg)
	BaseDataset(cfg)
	st := cfg.Store.Stats()
	if st.Collections != 1 || st.MemoryHits != 1 {
		t.Fatalf("private store stats = %+v, want 1 collection + 1 hit", st)
	}
	if d := corpus.Default().Stats().Sub(defBefore); d.Collections != 0 {
		t.Fatalf("private-store collection leaked into the default store: %s", d)
	}
}
