package experiments

import (
	"strings"
	"testing"
)

func TestMultiwayNearPerfectTrainingF1(t *testing.T) {
	r := Multiway(QuickConfig())
	if r.MacroF1 < 0.9 {
		t.Fatalf("macro F1 %.3f (paper: near-perfect on the training set)\n%s",
			r.MacroF1, r.Render())
	}
	if r.Accuracy < 0.9 {
		t.Fatalf("multiway accuracy %.3f", r.Accuracy)
	}
	// Benign and the stealthiest attack class must individually classify
	// well.
	if r.PerClass["benign"] < 0.9 {
		t.Fatalf("benign F1 %.3f", r.PerClass["benign"])
	}
	if r.PerClass["flush_flush"] < 0.8 {
		t.Fatalf("flush_flush F1 %.3f", r.PerClass["flush_flush"])
	}
	if len(r.Classes) < 10 {
		t.Fatalf("classes = %d", len(r.Classes))
	}
}

func TestMitigateTradeoffs(t *testing.T) {
	r := Mitigate(QuickConfig())
	// Fencing closes the speculative channel completely...
	if r.FenceSpecLoadsBlocked < 0.999 {
		t.Fatalf("fencing blocked only %.1f%% of speculative loads",
			r.FenceSpecLoadsBlocked*100)
	}
	// ...at a real but bounded benign cost.
	if r.FenceBenignOverhead <= 0 {
		t.Fatalf("fencing is free (%.3f): the trade-off disappeared", r.FenceBenignOverhead)
	}
	if r.FenceBenignOverhead > 1.0 {
		t.Fatalf("fencing overhead %.1f%% implausibly high", r.FenceBenignOverhead*100)
	}
	// Rekeying injects miss noise into the prime+probe channel.
	if r.RekeyMissNoiseActive <= r.RekeyMissNoiseBase {
		t.Fatalf("rekeying added no probe noise: %.3f vs %.3f",
			r.RekeyMissNoiseActive, r.RekeyMissNoiseBase)
	}
	// BP noise suppresses gadget executions monotonically in dose.
	if r.NoiseGadgetRate[500] >= r.NoiseGadgetRate[0] {
		t.Fatalf("max noise did not reduce the gadget rate: %v", r.NoiseGadgetRate)
	}
	// And costs benign prediction accuracy.
	if r.NoiseBenignMispredicts[500] <= r.NoiseBenignMispredicts[0] {
		t.Fatalf("noise did not raise benign mispredicts: %v", r.NoiseBenignMispredicts)
	}
	if !strings.Contains(r.Render(), "fencing") {
		t.Fatalf("render incomplete")
	}
}

func TestRHMDEnsembleCatchesEvasion(t *testing.T) {
	r := RHMD(QuickConfig())
	if r.BaselineTPR < 0.9 {
		t.Fatalf("baseline single-detector TPR %.3f too low", r.BaselineTPR)
	}
	if r.EvadedSingle == 0 {
		t.Skipf("white-box evasion never succeeded against the target detector (subsets too redundant)")
	}
	if r.CaughtByEnsemble < 0.5 {
		t.Fatalf("ensemble caught only %.3f of evading samples:\n%s",
			r.CaughtByEnsemble, r.Render())
	}
}

func TestZeroDayBeyondCorpus(t *testing.T) {
	r := ZeroDay(QuickConfig())
	if !r.AllDetected() {
		t.Fatalf("excluded attack evaded detection:\n%s", r.Render())
	}
	for name, rate := range r.TPRate {
		if rate < 0.5 {
			t.Errorf("%s TP rate %.3f", name, rate)
		}
	}
}

func TestSchedAttributionUnderMultiprogramming(t *testing.T) {
	r := Sched(QuickConfig())
	if r.AttackerTPR < 0.8 {
		t.Fatalf("attacker-interval TPR %.3f under multiprogramming:\n%s",
			r.AttackerTPR, r.Render())
	}
	if r.BenignFPR > 0.15 {
		t.Fatalf("benign-interval FPR %.3f under multiprogramming:\n%s",
			r.BenignFPR, r.Render())
	}
	if r.Switches == 0 {
		t.Fatalf("no context switches happened")
	}
	if len(r.PerProgram) != 4 {
		t.Fatalf("programs attributed: %v", r.PerProgram)
	}
}
