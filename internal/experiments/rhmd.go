package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"perspectron/internal/perceptron"
	"perspectron/internal/trace"
)

// RHMDResult evaluates the stochastic multi-detector hardening the paper
// proposes as future work (§VI-A, §IX, after Khasawneh et al.): K
// perceptrons over random feature subsets, one chosen unpredictably per
// sample. A white-box adversary who reverse-engineers one detector and
// flips exactly the feature bits that detector weighs cannot evade the
// ensemble, because the next interval is judged by a different detector —
// and the replicated features mean every subset still carries signal.
type RHMDResult struct {
	Detectors int
	SubsetLen int
	// BaselineTPR is the single-detector true-positive rate on attack
	// samples before evasion.
	BaselineTPR float64
	// EvadedSingle is the fraction of attack samples whose white-box
	// modification evades the targeted detector.
	EvadedSingle float64
	// CaughtByEnsemble is the fraction of those evading samples still
	// flagged by the stochastic ensemble (expected ≈ (K-1)/K per look).
	CaughtByEnsemble float64
}

// RHMD trains the ensemble on the base corpus and runs the white-box
// evasion study.
func RHMD(cfg Config) *RHMDResult {
	p := Prepare(cfg)
	enc := p.Enc
	X, y := enc.BinaryMatrix(p.DS)
	Xp := trace.Project(X, p.Sel.Indices)

	const k = 4
	subset := len(p.Sel.Indices) / 2
	e := perceptron.NewRHMD(k, len(p.Sel.Indices), subset,
		perceptron.DefaultConfig(), rand.New(rand.NewSource(cfg.Seed)))
	e.Fit(Xp, y)

	res := &RHMDResult{Detectors: k, SubsetLen: len(e.Subsets[0])}
	var attacks, detected, evaded, caught float64
	for i, x := range Xp {
		if y[i] != 1 {
			continue
		}
		attacks++
		if e.ScoreWith(0, x) >= e.Threshold {
			detected++
		}
		adv := e.EvadeOne(0, x)
		if e.ScoreWith(0, adv) < e.Threshold {
			evaded++
			// The ensemble judges each interval with an unpredictable
			// detector; count the probability mass that still flags.
			flagging := 0
			for d := 1; d < k; d++ {
				if e.ScoreWith(d, adv) >= e.Threshold {
					flagging++
				}
			}
			caught += float64(flagging) / float64(k-1)
		}
	}
	if attacks > 0 {
		res.BaselineTPR = detected / attacks
	}
	if attacks > 0 {
		res.EvadedSingle = evaded / attacks
	}
	if evaded > 0 {
		res.CaughtByEnsemble = caught / evaded
	}
	return res
}

// Render formats the evasion study.
func (r *RHMDResult) Render() string {
	var b strings.Builder
	b.WriteString("§IX — RHMD-style stochastic ensemble vs white-box evasion\n\n")
	fmt.Fprintf(&b, "detectors: %d over disjoint random %d-feature partitions\n", r.Detectors, r.SubsetLen)
	fmt.Fprintf(&b, "single-detector TPR (no evasion):        %.3f\n", r.BaselineTPR)
	fmt.Fprintf(&b, "white-box evasion of that detector:      %.3f of attack samples\n", r.EvadedSingle)
	fmt.Fprintf(&b, "evading samples caught by the ensemble:  %.3f\n", r.CaughtByEnsemble)
	b.WriteString("\n(an attacker evading one detector is still judged by the other K-1\n")
	b.WriteString(" with unpredictable selection — the paper's proposed evasion hardening)\n")
	return b.String()
}
