package experiments

import (
	"strings"
	"sync"
	"testing"
)

// sharedPrepared caches the expensive base-dataset preparation across tests.
var (
	prepOnce sync.Once
	prep     *Prepared
)

func quickPrep() *Prepared {
	prepOnce.Do(func() { prep = Prepare(QuickConfig()) })
	return prep
}

func TestPrepareSelects106(t *testing.T) {
	p := quickPrep()
	if got := len(p.Sel.Indices); got != 106 {
		t.Fatalf("selected %d features, want 106", got)
	}
	b, m := p.DS.ClassCounts()
	if b == 0 || m == 0 {
		t.Fatalf("class counts %d/%d", b, m)
	}
}

func TestFig1DistinctSignatures(t *testing.T) {
	r := Fig1(QuickConfig())
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if !r.DistinctSignatures() {
		t.Fatalf("attack signatures not distinct from the safe program:\n%s", r.Render())
	}
	if !strings.Contains(r.Render(), "k-sparse signatures") {
		t.Fatalf("render incomplete")
	}
}

func TestTable1CrossComponentGroups(t *testing.T) {
	r := Table1(QuickConfig())
	if len(r.Groups) == 0 {
		t.Fatalf("no cross-component correlation groups found")
	}
	for i, n := range r.SpansComponents() {
		if n < 2 {
			t.Fatalf("group %d spans %d components, want >= 2", i, n)
		}
	}
	if r.TotalGroups < len(r.Groups) {
		t.Fatalf("group accounting inconsistent")
	}
	if !strings.Contains(r.Render(), "group 1") {
		t.Fatalf("render incomplete")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	r := Table2()
	text := r.Render()
	for _, want := range []string{"192", "4096", "Tournament", "32KB", "2MB", "8"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Table II missing %q:\n%s", want, text)
		}
	}
}

func TestTable3HoldoutGeneralizes(t *testing.T) {
	r := Table3(QuickConfig())
	if r.MeanAccuracy < 0.90 {
		t.Fatalf("CV accuracy %.4f below 0.90:\n%s", r.MeanAccuracy, r.Render())
	}
	// The paper's headline generalization: held-out CacheOut at 94% TP and
	// SpectreV2 at 91% TP. Require the same ballpark.
	if r.CacheOutTP < 0.85 {
		t.Fatalf("CacheOut holdout TP %.3f (paper 0.94)", r.CacheOutTP)
	}
	if r.SpectreV2TP < 0.85 {
		t.Fatalf("SpectreV2 holdout TP %.3f (paper 0.91)", r.SpectreV2TP)
	}
}

func TestFig5TenKBest(t *testing.T) {
	r := Fig5(QuickConfig())
	if len(r.Curves) != 3 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	best := r.Best()
	if best.AUC < 0.95 {
		t.Fatalf("best AUC %.4f (paper 0.9949)", best.AUC)
	}
	// The paper's finding: the 10K interval dominates coarser sampling.
	if best.Interval != 10_000 {
		t.Logf("note: best interval %d (paper: 10K)", best.Interval)
	}
	if r.Curves[0].AUC+1e-9 < r.Curves[2].AUC {
		t.Fatalf("10K AUC %.4f worse than 100K AUC %.4f — ordering inverted",
			r.Curves[0].AUC, r.Curves[2].AUC)
	}
}

func TestFig3AllVariantsDetected(t *testing.T) {
	r := Fig3(QuickConfig())
	if len(r.Series) != 12 {
		t.Fatalf("series = %d, want 12", len(r.Series))
	}
	if !r.AllDetected() {
		t.Fatalf("polymorphic variant evaded detection:\n%s", r.Render())
	}
}

func TestFig4AllBandwidthsDetected(t *testing.T) {
	r := Fig4(QuickConfig())
	if len(r.Series) != 4 {
		t.Fatalf("series = %d", len(r.Series))
	}
	if !r.AllDetected() {
		t.Fatalf("bandwidth-reduced attack evaded detection:\n%s", r.Render())
	}
	// The unmodified attack must saturate at least as fast as the slowest.
	if r.Series[0].FirstFlag > r.Series[3].FirstFlag+2 {
		t.Fatalf("full-rate attack flagged later (%d) than 0.25x (%d)",
			r.Series[0].FirstFlag, r.Series[3].FirstFlag)
	}
}

func TestTimingMatchesPaperArgument(t *testing.T) {
	r := Timing()
	if r.SamplingUs < 2 || r.SamplingUs > 4 {
		t.Fatalf("sampling interval %.2f µs, paper ~3", r.SamplingUs)
	}
	if r.SamplesIn61Us < 15 {
		t.Fatalf("samples in 61 µs = %d, paper 20", r.SamplesIn61Us)
	}
	if !r.Fits {
		t.Fatalf("inference does not fit the sampling interval")
	}
	if !strings.Contains(r.Render(), "61 µs") {
		t.Fatalf("render incomplete")
	}
}

func TestWeightsCoverComponents(t *testing.T) {
	r := Weights(QuickConfig())
	if r.ComponentsCovered() < 8 {
		t.Fatalf("selected features cover only %d components — replication too narrow",
			r.ComponentsCovered())
	}
	if len(r.TopPositive) == 0 || len(r.TopNegative) == 0 {
		t.Fatalf("weight extremes missing")
	}
	if r.TopPositive[0].Weight <= 0 {
		t.Fatalf("strongest suspicious feature has weight %v", r.TopPositive[0].Weight)
	}
	if r.TopNegative[0].Weight >= 0 {
		t.Fatalf("strongest benign feature has weight %v", r.TopNegative[0].Weight)
	}
}

func TestTable4OrderingHolds(t *testing.T) {
	r := Table4(QuickConfig())
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	ps := r.Row("PerSpectron", "PerSpectron")
	lrMAP := r.Row("LogisticRegression", "MAP")
	if ps == nil || lrMAP == nil {
		t.Fatalf("missing rows:\n%s", r.Render())
	}
	// The paper's headline comparison: PerSpectron beats the MAP-feature
	// prior-work baseline decisively.
	if ps.MeanAccuracy <= lrMAP.MeanAccuracy {
		t.Fatalf("PerSpectron %.4f <= LogReg+MAP %.4f:\n%s",
			ps.MeanAccuracy, lrMAP.MeanAccuracy, r.Render())
	}
	// Feature-set effect: the same model improves with PerSpectron features.
	dtMAP := r.Row("DT-CART", "MAP")
	dtPS := r.Row("DT-CART", "PerSpectron")
	if dtPS.MeanAccuracy+0.02 < dtMAP.MeanAccuracy {
		t.Fatalf("PerSpectron features degraded DT-CART: %.4f vs %.4f",
			dtPS.MeanAccuracy, dtMAP.MeanAccuracy)
	}
	// PerSpectron detects all polymorphic variants; the MAP baseline
	// misses some (paper: LogReg+MAP could not detect polymorphic attacks
	// until post leakage).
	if ps.PolyDetected != 12 {
		t.Fatalf("PerSpectron detected %d/12 polymorphic variants", ps.PolyDetected)
	}
}
