package experiments

import (
	"fmt"
	"sort"
	"strings"

	"perspectron/internal/perceptron"
	"perspectron/internal/stats"
	"perspectron/internal/trace"
)

// WeightEntry pairs a feature with its learned weight.
type WeightEntry struct {
	Name      string
	Component string
	Weight    float64
}

// WeightsResult regenerates the §VII-C interpretability analysis: the
// learned weights grouped by pipeline component, positive weights marking
// suspicious activity and negative weights marking benign behaviour.
type WeightsResult struct {
	ByComponent map[string][]WeightEntry
	TopPositive []WeightEntry
	TopNegative []WeightEntry
}

// Weights trains PerSpectron on the full base corpus and reports the
// learned weights.
func Weights(cfg Config) *WeightsResult {
	p := Prepare(cfg)
	enc := p.Enc
	X, y := enc.BinaryMatrix(p.DS)
	Xp := trace.Project(X, p.Sel.Indices)
	det := perceptron.New(len(p.Sel.Indices), perceptron.DefaultConfig())
	det.Fit(Xp, y)

	res := &WeightsResult{ByComponent: map[string][]WeightEntry{}}
	var all []WeightEntry
	for i, j := range p.Sel.Indices {
		e := WeightEntry{
			Name:      p.DS.FeatureNames[j],
			Component: p.DS.Components[j].String(),
			Weight:    det.W[i],
		}
		all = append(all, e)
		res.ByComponent[e.Component] = append(res.ByComponent[e.Component], e)
	}
	for _, list := range res.ByComponent {
		sort.Slice(list, func(a, b int) bool { return list[a].Weight > list[b].Weight })
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Weight > all[b].Weight })
	k := 10
	if len(all) < k {
		k = len(all)
	}
	res.TopPositive = append(res.TopPositive, all[:k]...)
	neg := make([]WeightEntry, k)
	copy(neg, all[len(all)-k:])
	for i, j := 0, len(neg)-1; i < j; i, j = i+1, j-1 {
		neg[i], neg[j] = neg[j], neg[i]
	}
	res.TopNegative = neg
	return res
}

// Render formats the per-component weight analysis.
func (r *WeightsResult) Render() string {
	var b strings.Builder
	b.WriteString("§VII-C — interpretation through feature analysis\n\n")
	b.WriteString("Most suspicious features (largest positive weights):\n")
	for _, e := range r.TopPositive {
		fmt.Fprintf(&b, "  %+8.3f  %-12s %s\n", e.Weight, e.Component, e.Name)
	}
	b.WriteString("\nMost benign features (largest negative weights):\n")
	for _, e := range r.TopNegative {
		fmt.Fprintf(&b, "  %+8.3f  %-12s %s\n", e.Weight, e.Component, e.Name)
	}
	b.WriteString("\nSelected features per component (replication coverage):\n")
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		list := r.ByComponent[c.String()]
		if len(list) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-12s %2d features", c.String(), len(list))
		if len(list) > 0 {
			fmt.Fprintf(&b, "  (strongest: %s %+0.3f)", list[0].Name, list[0].Weight)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ComponentsCovered returns how many pipeline components contribute
// selected features — the replication breadth.
func (r *WeightsResult) ComponentsCovered() int { return len(r.ByComponent) }
