package experiments

import (
	"fmt"
	"sort"
	"strings"

	"perspectron/internal/perceptron"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
)

// MultiwayResult reproduces the paper's multi-way classification protocol
// (§VII-B): a one-vs-rest perceptron bank classifies each sample into its
// attack category (or benign). The paper reports a near-perfect F1 on the
// training set and notes that per-category holdout CV was impractical (too
// few attacks per category) — this experiment follows the same protocol and
// reports training-set F1 per class.
type MultiwayResult struct {
	Classes  []string
	PerClass map[string]float64 // F1 per class
	MacroF1  float64
	Accuracy float64
}

// Multiway trains the classifier bank on the base corpus and scores it on
// the training set.
func Multiway(cfg Config) *MultiwayResult {
	p := Prepare(cfg)
	enc := p.Enc

	// Class label per sample: the attack category, or "benign".
	labelOf := func(s *trace.Sample) string {
		if s.Label == workload.Benign {
			return "benign"
		}
		return s.Category
	}
	classSet := map[string]bool{}
	for i := range p.DS.Samples {
		classSet[labelOf(&p.DS.Samples[i])] = true
	}
	var classes []string
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	// Classification uses the full k-sparse feature space: distinguishing
	// SpectreV1 from V2 from RSB needs the per-predictor-unit counters
	// that the binary benign/suspicious selection has no reason to keep.
	Xp, _ := enc.BinaryMatrix(p.DS)
	labels := make([]string, len(p.DS.Samples))
	for i := range p.DS.Samples {
		labels[i] = labelOf(&p.DS.Samples[i])
	}

	mc := perceptron.NewMultiClass(classes, p.DS.NumFeatures(), perceptron.DefaultConfig())
	mc.Fit(Xp, labels)

	conf := perceptron.NewConfusion(classes)
	for i, x := range Xp {
		got, _ := mc.Predict(x)
		conf.Add(labels[i], got)
	}

	res := &MultiwayResult{Classes: classes, PerClass: map[string]float64{},
		MacroF1: conf.MacroF1(), Accuracy: conf.Accuracy()}
	for _, c := range classes {
		res.PerClass[c] = conf.F1(c)
	}
	return res
}

// Render formats the per-class F1 table.
func (r *MultiwayResult) Render() string {
	var b strings.Builder
	b.WriteString("§VII-B — multi-way classification (training-set protocol, as in the paper)\n\n")
	var rows [][]string
	for _, c := range r.Classes {
		rows = append(rows, []string{c, fmt.Sprintf("%.3f", r.PerClass[c])})
	}
	b.WriteString(table([]string{"class", "F1"}, rows))
	fmt.Fprintf(&b, "\nmacro F1: %.4f   accuracy: %.4f   (paper: \"near-perfect F1-score\")\n",
		r.MacroF1, r.Accuracy)
	b.WriteString("(per-category holdout CV is impractical with one attack per category,\n")
	b.WriteString(" as the paper notes; binary detection generalization is Table III's job)\n")
	return b.String()
}
