// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md): Fig. 1
// information hops, Table I feature groups, Table II configuration, Table
// III attack-holdout CV with the §VI-B generalization numbers, Table IV
// model × feature-set comparison, Fig. 3 polymorphic evasion, Fig. 4
// bandwidth-reduction evasion, Fig. 5 ROC over sampling granularities, the
// §VI-A2 timing argument, and the §VII-C weight interpretation.
//
// Each experiment returns a structured result with a Render method; the
// cmd/experiments binary and the repository benchmarks drive them.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"perspectron/internal/corpus"
	"perspectron/internal/features"
	"perspectron/internal/telemetry"
	"perspectron/internal/trace"
	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

// Config scales every experiment.
type Config struct {
	Seed     int64
	MaxInsts uint64 // committed-path ops per program run
	Runs     int    // runs per program
	Interval uint64 // sampling granularity

	// Store is the corpus store experiments collect through; nil means the
	// process-wide corpus.Default(). Tests set a private store to count
	// collections in isolation.
	Store *corpus.Store
}

// store returns the artifact store this config collects through.
func (c Config) store() *corpus.Store {
	if c.Store != nil {
		return c.Store
	}
	return corpus.Default()
}

// CollectConfig returns the trace-collection settings the config describes —
// the corpus store's half of the cache fingerprint.
func (c Config) CollectConfig() trace.CollectConfig {
	return trace.CollectConfig{
		MaxInsts: c.MaxInsts,
		Interval: c.Interval,
		Seed:     c.Seed,
		Runs:     c.Runs,
	}
}

// DefaultConfig is the full-scale setting used by cmd/experiments.
func DefaultConfig() Config {
	return Config{Seed: 1, MaxInsts: 300_000, Runs: 2, Interval: 10_000}
}

// QuickConfig is a reduced setting for benchmarks and smoke tests.
func QuickConfig() Config {
	return Config{Seed: 1, MaxInsts: 100_000, Runs: 1, Interval: 10_000}
}

// CoreCorpus returns the unmodified-attack workload set: all attacks
// (default channels plus pp-channel variants of the speculative attacks,
// for the §VI-B channel pairing) and the benign kernels. The evasion
// experiments (Figs. 3–4) train on this corpus so no evasion variant is
// ever seen in training.
func CoreCorpus() []workload.Program {
	progs := append([]workload.Program{}, benign.All()...)
	progs = append(progs, attacks.TrainingSet()...)
	for _, cat := range []string{"spectre_v1", "spectre_v2", "spectre_rsb", "meltdown", "cacheout"} {
		progs = append(progs, attacks.WithChannel(cat, "pp"))
	}
	return progs
}

// BaseCorpus returns the dataset used for the headline accuracy numbers.
// It equals the core corpus: bandwidth-reduced and polymorphic variants are
// evaluated separately (Table IV's FN columns, Figs. 3–4) because their
// quiet filler intervals make sample-level labels ambiguous — the paper
// likewise reports them as pre/post-leakage coverage, not accuracy.
func BaseCorpus() []workload.Program { return CoreCorpus() }

// collect fetches (progs, cfg)'s dataset through the artifact store: a
// corpus any experiment in this process already collected — at any config —
// is served from memory (or the on-disk cache) instead of re-simulated.
func collect(progs []workload.Program, cfg Config) *trace.Dataset {
	return cfg.store().Dataset(progs, cfg.CollectConfig())
}

// BaseDataset collects the base corpus at cfg's granularity.
func BaseDataset(cfg Config) *trace.Dataset { return collect(BaseCorpus(), cfg) }

// Prepared bundles a dataset with its encoder and PerSpectron selection —
// the shared front half of most experiments. It is the corpus store's
// memoized artifact type: every experiment asking for the same (corpus,
// config) receives the identical bundle.
type Prepared = corpus.Prepared

// Prepare returns the base dataset with its encoder and feature selection,
// computed at most once per (corpus, config) via the artifact store.
func Prepare(cfg Config) *Prepared {
	_, span := telemetry.StartSpan(context.Background(), "prepare")
	defer span.End()
	return cfg.store().Prepared(BaseCorpus(), cfg.CollectConfig(), features.DefaultSelectConfig())
}

// PrepareCore is Prepare over the evasion-free core corpus.
func PrepareCore(cfg Config) *Prepared {
	_, span := telemetry.StartSpan(context.Background(), "prepare")
	defer span.End()
	return cfg.store().Prepared(CoreCorpus(), cfg.CollectConfig(), features.DefaultSelectConfig())
}

// table renders rows as fixed-width text with a header underline.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// sparkline renders a score series as a compact unicode strip chart.
func sparkline(vals []float64, lo, hi float64) string {
	const ramp = " ▁▂▃▄▅▆▇█"
	runes := []rune(ramp)
	var b strings.Builder
	for _, v := range vals {
		f := (v - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		b.WriteRune(runes[int(f*float64(len(runes)-1))])
	}
	return b.String()
}
