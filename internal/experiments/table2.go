package experiments

import (
	"fmt"
	"strings"

	"perspectron/internal/sim"
)

// Table2Result echoes the simulated architecture parameters (Table II) from
// the live configuration, so the rendered table can never drift from the
// code.
type Table2Result struct {
	Rows [][2]string
}

// Table2 reads the machine configuration.
func Table2() *Table2Result {
	cfg := sim.DefaultConfig()
	m := sim.NewMachine(cfg)
	r := &Table2Result{}
	add := func(k, v string) { r.Rows = append(r.Rows, [2]string{k, v}) }
	add("Architecture", fmt.Sprintf("X86-like O3 CPU, 1 core, single thread at %.1f GHz", sim.ClockGHz))
	add("Branch predictor", "Tournament (local + global + choice)")
	add("RAS entries", fmt.Sprint(cfg.Branch.RASEntries))
	add("BTB entries", fmt.Sprint(cfg.Branch.BTBEntries))
	add("LQ entries", fmt.Sprint(cfg.Pipeline.LQEntries))
	add("SQ entries", fmt.Sprint(cfg.Pipeline.SQEntries))
	add("ROB entries", fmt.Sprint(cfg.Pipeline.ROBEntries))
	add("Fetch/dispatch/issue/commit width", fmt.Sprint(cfg.Pipeline.Width))
	add("Physical int registers", fmt.Sprint(cfg.Pipeline.NumPhysIntRegs))
	add("Physical float registers", fmt.Sprint(cfg.Pipeline.NumPhysFloatRegs))
	add("L1 I-cache", "32KB, 64B line, 4-way")
	add("L1 D-cache", "64KB, 64B line, 8-way")
	add("Shared L2", "2MB, 64B line, 8-way, mshrs=20, tgtsPerMshr=12, writeBuffers=8")
	add("L2 tag/data/response latency", "20 cycles")
	add("DRAM", fmt.Sprintf("%d banks, %d B rows, read queue %d, write queue %d",
		cfg.DRAM.Banks, cfg.DRAM.RowBytes, cfg.DRAM.ReadQDepth, cfg.DRAM.WriteQDepth))
	add("Microarchitectural counters", fmt.Sprint(m.NumCounters()))
	return r
}

// Render formats the configuration table.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table II — parameters of the simulated architecture\n\n")
	var rows [][]string
	for _, kv := range r.Rows {
		rows = append(rows, []string{kv[0], kv[1]})
	}
	b.WriteString(table([]string{"parameter", "value"}, rows))
	return b.String()
}
