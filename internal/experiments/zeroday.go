package experiments

import (
	"fmt"
	"strings"

	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
)

// ZeroDayResult measures detection of attacks entirely outside the training
// corpus: SpectreV4 (speculative store bypass) and RowHammer, which the
// paper explicitly excludes (§II footnote 1) while predicting — for
// RowHammer, in footnote 5 — that the flush- and DRAM-derived invariant
// features would flag them anyway. A high TP rate here is the strongest
// form of the paper's generalization argument.
type ZeroDayResult struct {
	// TPRate maps attack name to the fraction of its samples flagged.
	TPRate map[string]float64
	// Detected maps attack name to whether any sample was flagged.
	Detected map[string]bool
}

// ZeroDay trains PerSpectron on the standard corpus and monitors the
// excluded attacks.
func ZeroDay(cfg Config) *ZeroDayResult {
	p := PrepareCore(cfg)
	sc := trainPerSpectron(p, 0.25)

	subjects := []workload.Program{
		attacks.SpectreV4("fr"),
		attacks.SpectreV4("pp"),
		attacks.RowHammer(),
	}
	res := &ZeroDayResult{TPRate: map[string]float64{}, Detected: map[string]bool{}}
	for _, prog := range subjects {
		run := collectRun(prog, cfg, cfg.Seed+303)
		v := sc.verdict(run)
		flagged := 0
		for _, s := range v.Scores {
			if s >= sc.threshold {
				flagged++
			}
		}
		name := prog.Info().Name
		if len(v.Scores) > 0 {
			res.TPRate[name] = float64(flagged) / float64(len(v.Scores))
		}
		res.Detected[name] = v.Detected
	}
	return res
}

// AllDetected reports whether every excluded attack was flagged.
func (r *ZeroDayResult) AllDetected() bool {
	for _, d := range r.Detected {
		if !d {
			return false
		}
	}
	return len(r.Detected) > 0
}

// Render formats the zero-day study.
func (r *ZeroDayResult) Render() string {
	var b strings.Builder
	b.WriteString("beyond §VI-B — attacks excluded from the paper's corpus entirely\n\n")
	var rows [][]string
	for _, name := range []string{"spectreV4-fr", "spectreV4-pp", "rowhammer"} {
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.3f", r.TPRate[name]),
			fmt.Sprint(r.Detected[name]),
		})
	}
	b.WriteString(table([]string{"attack", "TP rate", "detected"}, rows))
	b.WriteString("\n(the paper's footnote 5 predicted RowHammer's flush footprint would be\n")
	b.WriteString(" caught; SpectreV4 rides the memory-order-violation + channel features)\n")
	return b.String()
}
