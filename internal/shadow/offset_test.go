package shadow

import (
	"os"
	"path/filepath"
	"testing"

	"perspectron/internal/telemetry"
)

func TestOffsetRoundTripAndResets(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	dir := t.TempDir()
	logPath := filepath.Join(dir, "verdicts.jsonl")
	statePath := logPath + ".offset"
	if err := os.WriteFile(logPath, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}

	// Missing state: start from zero.
	if off := loadOffset(statePath, logPath); off != 0 {
		t.Fatalf("missing state: offset %d, want 0", off)
	}
	// Round trip.
	if err := saveOffset(statePath, 42); err != nil {
		t.Fatal(err)
	}
	if off := loadOffset(statePath, logPath); off != 42 {
		t.Fatalf("round trip: offset %d, want 42", off)
	}
	// The atomic save leaves no temp debris behind.
	if m, _ := filepath.Glob(statePath + ".tmp-*"); len(m) != 0 {
		t.Fatalf("temp debris after save: %v", m)
	}
	// Corrupt state: start from zero, not an error.
	if err := os.WriteFile(statePath, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if off := loadOffset(statePath, logPath); off != 0 {
		t.Fatalf("corrupt state: offset %d, want 0", off)
	}
	// Negative offset: rejected.
	if err := os.WriteFile(statePath, []byte(`{"offset":-7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if off := loadOffset(statePath, logPath); off != 0 {
		t.Fatalf("negative offset: %d, want 0", off)
	}
	// Offset past the log's end (rotation/replacement): reset to zero and
	// counted, so a re-tail is visible in telemetry.
	if err := saveOffset(statePath, 500); err != nil {
		t.Fatal(err)
	}
	if off := loadOffset(statePath, logPath); off != 0 {
		t.Fatalf("stale offset past EOF: %d, want 0", off)
	}
	if n := reg.CounterValue("perspectron_shadow_offset_resets_total"); n != 1 {
		t.Fatalf("reset counter = %d, want 1", n)
	}
	// An offset at exactly EOF is valid — the tail is simply caught up.
	if err := saveOffset(statePath, 100); err != nil {
		t.Fatal(err)
	}
	if off := loadOffset(statePath, logPath); off != 100 {
		t.Fatalf("offset at EOF: %d, want 100", off)
	}
}

func TestNewResumesPersistedOffset(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "det.json")
	if err := trainedDetector(t).SaveFile(live); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "verdicts.jsonl")
	if err := os.WriteFile(logPath, make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := shadowConfig(t, live)
	cfg.VerdictLog = logPath
	// The default StatePath hangs off the log path.
	if err := saveOffset(logPath+".offset", 37); err != nil {
		t.Fatal(err)
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Health().TailOffset; got != 37 {
		t.Fatalf("resumed tail offset = %d, want 37", got)
	}

	// Without a verdict log no offset is loaded at all.
	tr, err = New(shadowConfig(t, live))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Health().TailOffset; got != 0 {
		t.Fatalf("offset without a log = %d, want 0", got)
	}
}
