// Package shadow is the serving-feedback half of the continual-learning
// loop: a background trainer that tails the serving runtime's JSONL verdict
// log (attributing verdicts to the checkpoint version that produced them),
// collects fresh labelled samples through the corpus store, retrains the
// live detector incrementally in its frozen feature space, and hands each
// candidate to the promotion gate (perspectron.PromoteDetector) — so a
// better-or-equal model atomically replaces the live checkpoint, where the
// serving supervisor's watcher hot-reloads it, and a regressed one is
// preserved for inspection instead of going live.
//
// Alongside training, the loop measures feature-distribution drift: each
// round compares the fresh corpus's per-feature firing rates against the
// lineage's training-time snapshot, smooths the distance with an EWMA, and
// exposes it as the perspectron_shadow_drift gauge, through its own health
// surface, and (via serve.DriftProbe) through the serving /healthz and
// /readyz. Drift past the threshold raises an alarm — the signal that the
// workload distribution has moved and the current training corpus may no
// longer cover it. See docs/MLOPS.md.
package shadow

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perspectron"
	"perspectron/internal/diskfaults"
	"perspectron/internal/serve"
	"perspectron/internal/telemetry"
)

// Config configures a shadow Trainer. Zero-valued fields fall back to the
// defaults noted on each field.
type Config struct {
	// DetectorPath is the live detector checkpoint: the model each round
	// resumes from and the promotion gate's target. Required.
	DetectorPath string
	// CandidatePath is where freshly trained candidates are staged before
	// the gate (default DetectorPath+".candidate").
	CandidatePath string
	// VerdictLog is the serving runtime's JSONL verdict log to tail
	// (optional; empty disables verdict consumption).
	VerdictLog string
	// StatePath is where the verdict-log tail offset is persisted atomically
	// after each round, so a restarted trainer resumes where it stopped
	// instead of re-tailing (and re-attributing) the whole log from zero
	// (default VerdictLog+".offset"; only used when VerdictLog is set).
	StatePath string

	// Workloads is the fresh-corpus source each round draws from. Required.
	Workloads []perspectron.Workload
	// Opts shapes collection; the seed is varied per round so successive
	// increments train on fresh data.
	Opts perspectron.Options
	// Budget is the incremental epoch budget per round (default
	// perspectron.DefaultIncrementEpochs).
	Budget int

	// Golden is the held-out gate corpus. When nil, the trainer collects
	// one on first use from GoldenWorkloads (default: Workloads) with the
	// opts seed offset by GoldenSeedOffset — a seed the round-varied
	// training collections never reuse.
	Golden           *perspectron.GoldenSet
	GoldenWorkloads  []perspectron.Workload
	GoldenSeedOffset int64 // default 9973

	// Interval is the cadence of Run's rounds (default 30s).
	Interval time.Duration
	// DriftAlpha is the drift EWMA's smoothing factor in (0, 1]; higher
	// follows the newest round faster (default 0.3).
	DriftAlpha float64
	// DriftThreshold is the smoothed-drift level past which the trainer
	// raises its drift alarm (default 0.25).
	DriftThreshold float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.CandidatePath == "" {
		out.CandidatePath = out.DetectorPath + ".candidate"
	}
	if out.StatePath == "" && out.VerdictLog != "" {
		out.StatePath = out.VerdictLog + ".offset"
	}
	if out.Budget <= 0 {
		out.Budget = perspectron.DefaultIncrementEpochs
	}
	if len(out.GoldenWorkloads) == 0 {
		out.GoldenWorkloads = out.Workloads
	}
	if out.GoldenSeedOffset == 0 {
		out.GoldenSeedOffset = 9973
	}
	if out.Interval <= 0 {
		out.Interval = 30 * time.Second
	}
	if out.DriftAlpha <= 0 || out.DriftAlpha > 1 {
		out.DriftAlpha = 0.3
	}
	if out.DriftThreshold <= 0 {
		out.DriftThreshold = 0.25
	}
	return out
}

// Round is one shadow-training round's outcome.
type Round struct {
	// Round is the 1-based round number.
	Round int
	// VerdictsSeen / CorruptLines account for this round's verdict-log tail;
	// Attributed counts the tailed records that carried a feature-attribution
	// block (the serving layer stamps flagged verdicts, plus a benign sample).
	VerdictsSeen int
	CorruptLines int
	Attributed   int
	// FreshSamples / Epochs / Converged describe the incremental fit.
	FreshSamples int
	Epochs       int
	Converged    bool
	// Drift is the round's raw distribution distance; SmoothedDrift the
	// EWMA after folding it in.
	Drift         float64
	SmoothedDrift float64
	// Promotion is the gate's decision for this round's candidate.
	Promotion *perspectron.Promotion
}

// Trainer runs the shadow loop. Create with New; drive with Run (the loop)
// or RunOnce (a single deterministic round, the form tests use).
type Trainer struct {
	cfg        Config
	started    time.Time
	listenAddr atomic.Pointer[string]

	mu         sync.Mutex
	golden     *perspectron.GoldenSet
	offset     int64 // verdict-log tail position
	rounds     int
	promotions int
	rejections int
	verdicts   int            // verdict records consumed
	corrupt    int            // corrupt verdict lines skipped
	byVersion  map[string]int // verdicts attributed per model version
	attributed int            // verdicts that carried an attribution block
	attrCounts map[string]int // attribution appearances per feature name
	drift      float64        // EWMA
	driftInit  bool
	lastErr    string
	lastRound  *Round
}

// New validates the configuration and returns an idle trainer. The initial
// detector checkpoint must load — a shadow loop with nothing to resume from
// is a configuration error, not something to retry quietly.
func New(cfg Config) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if cfg.DetectorPath == "" {
		return nil, fmt.Errorf("shadow: DetectorPath is required")
	}
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("shadow: no workloads to train on")
	}
	if _, err := perspectron.LoadFile(cfg.DetectorPath); err != nil {
		return nil, fmt.Errorf("shadow: initial detector checkpoint: %w", err)
	}
	t := &Trainer{
		cfg:        cfg,
		started:    time.Now(),
		golden:     cfg.Golden,
		byVersion:  map[string]int{},
		attrCounts: map[string]int{},
	}
	if cfg.VerdictLog != "" {
		t.offset = loadOffset(cfg.StatePath, cfg.VerdictLog)
	}
	return t, nil
}

// offsetState is the trainer's durable tail position, persisted atomically
// so a restart resumes the tail instead of re-attributing the whole log.
type offsetState struct {
	Offset int64 `json:"offset"`
}

// loadOffset restores the persisted tail offset. Anything wrong — missing
// or corrupt state, a negative value, or an offset past the current log's
// end (the log was rotated or replaced since the save) — restarts the tail
// from zero; the verdict scanner's corrupt-line tolerance makes a re-read
// safe, just redundant. Offsets only ever land on complete-line boundaries,
// so a crash-repair truncation of a torn tail never invalidates one.
func loadOffset(statePath, logPath string) int64 {
	b, err := os.ReadFile(statePath)
	if err != nil {
		return 0
	}
	var st offsetState
	if json.Unmarshal(b, &st) != nil || st.Offset < 0 {
		return 0
	}
	if fi, err := os.Stat(logPath); err == nil && st.Offset > fi.Size() {
		telemetry.Get().Counter("perspectron_shadow_offset_resets_total").Inc()
		return 0
	}
	return st.Offset
}

// saveOffset persists the tail offset atomically (site "shadowstate").
func saveOffset(statePath string, off int64) error {
	return diskfaults.WriteFileAtomic(diskfaults.SiteShadowState, statePath, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(offsetState{Offset: off})
	})
}

// SetListenAddr records the bound metrics/health address for the standalone
// health surface's self-discovery, mirroring the serving supervisor's. Safe
// to call concurrently with Health.
func (t *Trainer) SetListenAddr(addr string) {
	if addr == "" {
		return
	}
	t.listenAddr.Store(&addr)
}

// Drift returns the smoothed drift EWMA and whether it is past the alarm
// threshold — the serve.DriftProbe shape, for wiring into a supervisor's
// health surface.
func (t *Trainer) Drift() (drift float64, alarm bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drift, t.driftInit && t.drift > t.cfg.DriftThreshold
}

// Run executes rounds every Interval until ctx ends. Round errors are
// recorded (health surfaces them) and the loop continues — a transient
// collection failure must not kill the background trainer.
func (t *Trainer) Run(ctx context.Context) error {
	tick := time.NewTicker(t.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if _, err := t.RunOnce(ctx); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "shadow: round failed: %v\n", err)
			}
		}
	}
}

// RunOnce executes one complete round: tail the verdict log, collect a
// fresh corpus (round-varied seed), retrain incrementally from the live
// checkpoint, update the drift EWMA, stage the candidate, and run the
// promotion gate.
func (t *Trainer) RunOnce(ctx context.Context) (Round, error) {
	t.mu.Lock()
	t.rounds++
	r := Round{Round: t.rounds}
	offset := t.offset
	t.mu.Unlock()
	reg := telemetry.Get()
	fail := func(err error) (Round, error) {
		t.mu.Lock()
		t.lastErr = err.Error()
		t.mu.Unlock()
		reg.Counter(telemetry.Name("perspectron_shadow_rounds_total", "result", "error")).Inc()
		return r, err
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}

	// 1. Tail the verdict log: every complete record is attributed to the
	// model version that produced it, so operators can see which generation
	// each verdict came from even across hot-reloads mid-round. Records the
	// forensics layer stamped with per-feature attributions also feed the
	// drift context: which features the live model is actually leaning on in
	// production, set against the distribution drift measured from corpus
	// firing rates.
	if t.cfg.VerdictLog != "" {
		recs, corrupt, next, err := serve.ReadVerdictLog(t.cfg.VerdictLog, offset)
		if err != nil {
			return fail(fmt.Errorf("shadow: tailing verdict log: %w", err))
		}
		r.VerdictsSeen, r.CorruptLines = len(recs), corrupt
		t.mu.Lock()
		t.offset = next
		t.verdicts += len(recs)
		t.corrupt += corrupt
		for _, rec := range recs {
			if rec.Version != "" {
				t.byVersion[rec.Version]++
			}
			if len(rec.Attr) > 0 {
				r.Attributed++
				t.attributed++
				for _, c := range rec.Attr {
					t.attrCounts[c.Feature]++
				}
			}
		}
		t.mu.Unlock()
		// Persist the advanced offset before doing anything slow: training
		// can take a while, and a crash mid-round must not rewind the tail
		// past verdicts already attributed. Failure is counted, not fatal —
		// the offset file is durability insurance, the worst case without it
		// is a redundant re-tail.
		if t.cfg.StatePath != "" && next != offset {
			if err := saveOffset(t.cfg.StatePath, next); err != nil {
				reg.Counter("perspectron_shadow_offset_save_errors_total").Inc()
			}
		}
	}

	// 2. Resume from the live checkpoint — whatever the gate last promoted,
	// which may be newer than anything this trainer produced.
	live, err := perspectron.LoadFile(t.cfg.DetectorPath)
	if err != nil {
		return fail(fmt.Errorf("shadow: loading live detector: %w", err))
	}

	// 3. Golden corpus, collected once and frozen across rounds.
	golden, err := t.goldenSet()
	if err != nil {
		return fail(err)
	}

	// 4. Fresh corpus + incremental fit. The round-varied seed keeps every
	// round's samples distinct from each other and from the golden set.
	opts := t.cfg.Opts
	opts.Seed = t.cfg.Opts.Seed + int64(r.Round)*7919
	cand, stats, err := live.TrainIncrement(t.cfg.Workloads, opts, t.cfg.Budget)
	if err != nil {
		return fail(fmt.Errorf("shadow: incremental fit: %w", err))
	}
	r.FreshSamples, r.Epochs, r.Converged = stats.Samples, stats.Epochs, stats.Converged
	r.Drift = stats.Drift
	r.SmoothedDrift = t.observeDrift(stats.Drift)

	// 5. Stage the candidate and run the gate. Promotion atomically renames
	// over the live path; the serving watcher hot-reloads it on its next
	// poll. Rejection preserves the candidate beside the live file.
	if err := cand.SaveFile(t.cfg.CandidatePath); err != nil {
		return fail(fmt.Errorf("shadow: staging candidate: %w", err))
	}
	promo, err := perspectron.PromoteDetector(t.cfg.CandidatePath, t.cfg.DetectorPath, golden)
	if err != nil {
		return fail(fmt.Errorf("shadow: promotion gate: %w", err))
	}
	r.Promotion = promo

	t.mu.Lock()
	t.lastErr = ""
	if promo.Promoted {
		t.promotions++
	} else {
		t.rejections++
	}
	rc := r
	t.lastRound = &rc
	t.mu.Unlock()
	result := "rejected"
	if promo.Promoted {
		result = "promoted"
	}
	reg.Counter(telemetry.Name("perspectron_shadow_rounds_total", "result", result)).Inc()
	if reg != nil {
		reg.Event("shadow.round", map[string]any{
			"round":     r.Round,
			"samples":   r.FreshSamples,
			"drift":     r.Drift,
			"smoothed":  r.SmoothedDrift,
			"promoted":  promo.Promoted,
			"candidate": promo.CandidateVersion,
			"reason":    promo.Reason,
		})
	}
	return r, nil
}

// goldenSet returns the frozen gate corpus, collecting it on first use.
func (t *Trainer) goldenSet() (*perspectron.GoldenSet, error) {
	t.mu.Lock()
	g := t.golden
	t.mu.Unlock()
	if g != nil {
		return g, nil
	}
	opts := t.cfg.Opts
	opts.Seed += t.cfg.GoldenSeedOffset
	g, err := perspectron.CollectGolden(t.cfg.GoldenWorkloads, opts)
	if err != nil {
		return nil, fmt.Errorf("shadow: collecting golden corpus: %w", err)
	}
	t.mu.Lock()
	t.golden = g
	t.mu.Unlock()
	return g, nil
}

// observeDrift folds one round's raw drift into the EWMA, publishes the
// gauge, and returns the smoothed value.
func (t *Trainer) observeDrift(raw float64) float64 {
	t.mu.Lock()
	if !t.driftInit {
		t.drift, t.driftInit = raw, true
	} else {
		t.drift = t.cfg.DriftAlpha*raw + (1-t.cfg.DriftAlpha)*t.drift
	}
	smoothed := t.drift
	alarm := smoothed > t.cfg.DriftThreshold
	t.mu.Unlock()
	if reg := telemetry.Get(); reg != nil {
		reg.Gauge("perspectron_shadow_drift").Set(smoothed)
		if alarm {
			reg.Counter("perspectron_shadow_drift_alarms_total").Inc()
		}
	}
	return smoothed
}

// Health is the shadow loop's own health snapshot (the standalone
// `perspectron shadow` serves it; in-process shadow surfaces drift through
// the supervisor's /healthz instead).
type Health struct {
	// Status is "ok", or "degraded" when the drift alarm is up or the last
	// round failed.
	Status string `json:"status"`
	// MetricsAddr is the bound metrics/health listen address (set through
	// SetListenAddr); UptimeSeconds counts from trainer construction.
	MetricsAddr   string  `json:"metrics_addr,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Rounds        int     `json:"rounds"`
	Promotions    int     `json:"promotions"`
	Rejections    int     `json:"rejections"`
	// Verdicts / CorruptLines account for the verdict-log tail so far;
	// VerdictsByVersion attributes them to the model versions that produced
	// them.
	Verdicts          int            `json:"verdicts"`
	CorruptLines      int            `json:"corrupt_lines,omitempty"`
	VerdictsByVersion map[string]int `json:"verdicts_by_version,omitempty"`
	// TailOffset is the verdict-log byte position the next round resumes
	// from — the durable value persisted at StatePath.
	TailOffset int64 `json:"tail_offset,omitempty"`
	// AttributedVerdicts counts tailed records that carried a feature
	// attribution; TopAttributed ranks the features those attributions name
	// most often — the production-side context for reading Drift: when drift
	// rises AND the serving model's decisions lean on features whose firing
	// rates moved, retraining urgency is corroborated from both ends.
	AttributedVerdicts int            `json:"attributed_verdicts,omitempty"`
	TopAttributed      []FeatureCount `json:"top_attributed,omitempty"`
	Drift              float64        `json:"drift"`
	DriftAlarm         bool           `json:"drift_alarm"`
	LastError          string         `json:"last_error,omitempty"`
	// LastPromotion summarizes the most recent gate decision.
	LastPromotion *perspectron.Promotion `json:"last_promotion,omitempty"`
}

// FeatureCount is one feature's row in the attribution ranking.
type FeatureCount struct {
	Feature string `json:"feature"`
	Count   int    `json:"count"`
}

// Health snapshots the trainer.
func (t *Trainer) Health() Health {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := Health{
		Status:             "ok",
		UptimeSeconds:      time.Since(t.started).Seconds(),
		Rounds:             t.rounds,
		Promotions:         t.promotions,
		Rejections:         t.rejections,
		Verdicts:           t.verdicts,
		CorruptLines:       t.corrupt,
		TailOffset:         t.offset,
		AttributedVerdicts: t.attributed,
		Drift:              t.drift,
		DriftAlarm:         t.driftInit && t.drift > t.cfg.DriftThreshold,
		LastError:          t.lastErr,
	}
	if addr := t.listenAddr.Load(); addr != nil {
		h.MetricsAddr = *addr
	}
	if len(t.byVersion) > 0 {
		h.VerdictsByVersion = make(map[string]int, len(t.byVersion))
		for k, v := range t.byVersion {
			h.VerdictsByVersion[k] = v
		}
	}
	if len(t.attrCounts) > 0 {
		ranked := make([]FeatureCount, 0, len(t.attrCounts))
		for f, n := range t.attrCounts {
			ranked = append(ranked, FeatureCount{Feature: f, Count: n})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].Count != ranked[j].Count {
				return ranked[i].Count > ranked[j].Count
			}
			return ranked[i].Feature < ranked[j].Feature
		})
		if len(ranked) > 8 {
			ranked = ranked[:8]
		}
		h.TopAttributed = ranked
	}
	if t.lastRound != nil {
		h.LastPromotion = t.lastRound.Promotion
	}
	if h.DriftAlarm || h.LastError != "" {
		h.Status = "degraded"
	}
	return h
}

// Handlers returns the standalone health routes, shaped for
// telemetry.ServeWith's Extra map like the supervisor's.
func (t *Trainer) Handlers() map[string]http.Handler {
	healthz := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t.Health())
	})
	readyz := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := t.Health()
		w.WriteHeader(http.StatusOK)
		if h.Status == "degraded" {
			w.Write([]byte("degraded\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	return map[string]http.Handler{"/healthz": healthz, "/readyz": readyz}
}
