package shadow

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"perspectron"
)

// shadowDetector trains one small detector for the whole package.
var (
	detOnce sync.Once
	detMem  *perspectron.Detector
	detErr  error
)

func trainedDetector(t *testing.T) *perspectron.Detector {
	t.Helper()
	detOnce.Do(func() {
		opts := perspectron.DefaultOptions()
		opts.MaxInsts = 100_000
		opts.Runs = 1
		detMem, detErr = perspectron.Train(perspectron.TrainingWorkloads(), opts)
	})
	if detErr != nil {
		t.Fatal(detErr)
	}
	return detMem
}

func shadowWorkloads() []perspectron.Workload {
	w := append([]perspectron.Workload{}, perspectron.BenignWorkloads()[:2]...)
	return append(w, perspectron.AttackByName("spectreV1", "fr"))
}

func shadowConfig(t *testing.T, livePath string) Config {
	t.Helper()
	opts := perspectron.DefaultOptions()
	opts.MaxInsts = 60_000
	opts.Runs = 1
	opts.Seed = 31
	return Config{
		DetectorPath: livePath,
		Workloads:    shadowWorkloads(),
		Opts:         opts,
		Budget:       3,
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Workloads: shadowWorkloads()}); err == nil {
		t.Fatalf("missing DetectorPath accepted")
	}
	if _, err := New(Config{DetectorPath: "x"}); err == nil {
		t.Fatalf("missing workloads accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{DetectorPath: bad, Workloads: shadowWorkloads()}); err == nil {
		t.Fatalf("corrupt initial checkpoint accepted")
	}
}

// TestRunOnceRetrainsAndGates drives two full rounds against a real live
// checkpoint and a verdict log containing good, corrupt and partial lines:
// each round must tail the log with attribution, retrain incrementally, stage
// a candidate, and leave the live path holding whatever the gate decided —
// a loadable checkpoint whose lineage only advances.
func TestRunOnceRetrainsAndGates(t *testing.T) {
	det := trainedDetector(t)
	dir := t.TempDir()
	livePath := filepath.Join(dir, "det.json")
	logPath := filepath.Join(dir, "verdicts.jsonl")
	if err := det.SaveFile(livePath); err != nil {
		t.Fatal(err)
	}
	v := det.Version()
	good := `{"worker":"w","episode":1,"sample":1,"mode":"detector","score":1,"version":"` + v + `"}` + "\n"
	// A forensics-stamped record: fired set + top-k attribution, the shape the
	// serving layer writes for flagged verdicts.
	attributed := `{"worker":"w","episode":1,"sample":2,"mode":"detector","score":1,"flagged":true,` +
		`"version":"` + v + `","fired":[0,3],"attr":[` +
		`{"slot":3,"feature":"dcache.misses","weight":0.5,"share":0.6},` +
		`{"slot":0,"feature":"btb.lookups","weight":-0.3,"share":-0.4}]}` + "\n"
	if err := os.WriteFile(logPath, []byte(good+attributed+"corrupt\n"+`{"partial`), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := shadowConfig(t, livePath)
	cfg.VerdictLog = logPath
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	r1, err := tr.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Round != 1 || r1.VerdictsSeen != 2 || r1.CorruptLines != 1 || r1.Attributed != 1 {
		t.Fatalf("round 1 tail: %+v", r1)
	}
	if r1.FreshSamples == 0 || r1.Epochs < 1 || r1.Epochs > 3 {
		t.Fatalf("round 1 fit: %+v", r1)
	}
	if r1.Promotion == nil {
		t.Fatalf("round 1 ran no gate")
	}
	if _, err := os.Stat(cfg.DetectorPath + ".candidate"); err != nil {
		t.Fatalf("candidate not staged: %v", err)
	}
	live, err := perspectron.LoadFile(livePath)
	if err != nil {
		t.Fatalf("live checkpoint unloadable after round: %v", err)
	}
	if r1.Promotion.Promoted {
		if live.Lineage == nil || live.Lineage.Generation != 1 || live.Lineage.Parent == "" {
			t.Fatalf("promoted generation-1 lineage wrong: %+v", live.Lineage)
		}
	} else if live.Version() != v {
		t.Fatalf("rejected round changed the live model: %s -> %s", v, live.Version())
	}

	// Round 2: the tail resumes past consumed bytes (the partial line was
	// not consumed, still undecodable → corrupt once completed differently;
	// here nothing new was appended, so nothing is seen).
	r2, err := tr.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Round != 2 || r2.VerdictsSeen != 0 {
		t.Fatalf("round 2 re-read consumed verdicts: %+v", r2)
	}

	tr.SetListenAddr("127.0.0.1:9464")
	h := tr.Health()
	if h.Rounds != 2 || h.Verdicts != 2 || h.CorruptLines != 1 {
		t.Fatalf("health accounting: %+v", h)
	}
	if h.VerdictsByVersion[v] != 2 {
		t.Fatalf("verdict attribution: %+v", h.VerdictsByVersion)
	}
	if h.AttributedVerdicts != 1 {
		t.Fatalf("attributed verdicts = %d, want 1", h.AttributedVerdicts)
	}
	// Ties rank alphabetically, so the per-feature counts are deterministic.
	if len(h.TopAttributed) != 2 ||
		h.TopAttributed[0] != (FeatureCount{Feature: "btb.lookups", Count: 1}) ||
		h.TopAttributed[1] != (FeatureCount{Feature: "dcache.misses", Count: 1}) {
		t.Fatalf("top attributed features: %+v", h.TopAttributed)
	}
	if h.MetricsAddr != "127.0.0.1:9464" || h.UptimeSeconds <= 0 {
		t.Fatalf("self-discovery fields: addr %q uptime %v", h.MetricsAddr, h.UptimeSeconds)
	}
	if h.Promotions+h.Rejections != 2 {
		t.Fatalf("gate decisions = %d promoted + %d rejected, want 2 total", h.Promotions, h.Rejections)
	}
	if h.LastPromotion == nil || h.LastError != "" {
		t.Fatalf("health gate surface: %+v", h)
	}
}

func TestDriftEWMAAndAlarm(t *testing.T) {
	dir := t.TempDir()
	livePath := filepath.Join(dir, "det.json")
	if err := trainedDetector(t).SaveFile(livePath); err != nil {
		t.Fatal(err)
	}
	cfg := shadowConfig(t, livePath)
	cfg.DriftAlpha = 0.5
	cfg.DriftThreshold = 0.2
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d, alarm := tr.Drift(); d != 0 || alarm {
		t.Fatalf("drift before any round: %v %v", d, alarm)
	}

	// First observation seeds the EWMA; later ones fold in with alpha.
	if got := tr.observeDrift(0.1); got != 0.1 {
		t.Fatalf("seed drift = %v, want 0.1", got)
	}
	if got := tr.observeDrift(0.5); got != 0.5*0.5+0.5*0.1 {
		t.Fatalf("smoothed drift = %v, want 0.3", got)
	}
	d, alarm := tr.Drift()
	if d <= cfg.DriftThreshold || !alarm {
		t.Fatalf("drift %v over threshold %v did not alarm", d, cfg.DriftThreshold)
	}
	h := tr.Health()
	if !h.DriftAlarm || h.Status != "degraded" {
		t.Fatalf("alarm not degrading health: %+v", h)
	}

	// The standalone health surface mirrors the supervisor's: /readyz body
	// says degraded while the alarm is up.
	rr := httptest.NewRecorder()
	tr.Handlers()["/readyz"].ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 200 || rr.Body.String() != "degraded\n" {
		t.Fatalf("readyz under alarm = %d %q", rr.Code, rr.Body.String())
	}

	// Decay back under the threshold clears the alarm.
	tr.observeDrift(0)
	tr.observeDrift(0)
	if _, alarm := tr.Drift(); alarm {
		t.Fatalf("alarm stuck after decay (drift %v)", func() float64 { d, _ := tr.Drift(); return d }())
	}
}
