// Package retry is the repository's one backoff implementation: seeded,
// jittered exponential backoff shared by the batch collector (trace.Collect
// re-attempting panicked runs) and the serving runtime (internal/serve
// restarting failed monitor workers). Sequences are deterministic for a
// fixed (Policy, seed) pair, so tests and cached collections replay exactly;
// jitter decorrelates real deployments where many workers fail together.
//
// Every attempt and every backoff sleep is recorded in the process-wide
// telemetry registry under the caller's op label:
//
//	perspectron_retry_attempts_total{op=...}
//	perspectron_retry_giveups_total{op=...}
//	perspectron_retry_backoff_seconds{op=...}
package retry

import (
	"context"
	"math/rand"
	"time"

	"perspectron/internal/telemetry"
)

// Policy shapes a backoff sequence. The zero value is usable: withDefaults
// fills in one attempt, a 5ms base doubling to a 1s cap, and ±50% jitter.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first.
	// Values < 1 mean a single attempt (no retries).
	MaxAttempts int
	// Base is the nominal first backoff; each subsequent backoff grows by
	// Factor up to Max.
	Base time.Duration
	// Max caps a single backoff.
	Max time.Duration
	// Factor is the exponential growth rate (default 2).
	Factor float64
	// Jitter spreads each backoff uniformly over [1-Jitter, 1+Jitter] times
	// its nominal value; 0 disables jitter, values are clamped to [0, 1].
	Jitter float64
}

// DefaultPolicy is a general-purpose supervisor policy: 5 attempts, 50ms
// base, 5s cap, doubling, ±50% jitter.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 5, Base: 50 * time.Millisecond, Max: 5 * time.Second, Factor: 2, Jitter: 0.5}
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Base <= 0 {
		p.Base = 5 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = time.Second
	}
	if p.Max < p.Base {
		p.Max = p.Base
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Backoff iterates a policy's sleep sequence. It is deterministic for a
// fixed (policy, seed): the jitter draws come from a private seeded
// generator, never the global one. Not safe for concurrent use; give each
// worker its own Backoff.
type Backoff struct {
	p       Policy
	rng     *rand.Rand
	attempt int
}

// NewBackoff returns a fresh iterator over p's sequence, jittered by seed.
func NewBackoff(p Policy, seed int64) *Backoff {
	return &Backoff{p: p.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next backoff in the sequence: Base·Factor^n capped at
// Max, spread by the jitter fraction. Each call advances the sequence.
func (b *Backoff) Next() time.Duration {
	d := float64(b.p.Base)
	for i := 0; i < b.attempt; i++ {
		d *= b.p.Factor
		if d >= float64(b.p.Max) {
			d = float64(b.p.Max)
			break
		}
	}
	if d > float64(b.p.Max) {
		d = float64(b.p.Max)
	}
	b.attempt++
	if b.p.Jitter > 0 {
		d *= 1 + b.p.Jitter*(2*b.rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Reset rewinds the sequence to the first backoff (the jitter stream keeps
// advancing, so reset sequences stay decorrelated). Supervisors call it
// after a success so the next failure starts cheap again.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt returns how many backoffs have been taken since the last Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Sleep blocks for d or until ctx ends, whichever comes first, and reports
// whether the full backoff elapsed. It records the slept duration in the
// op's backoff histogram.
func Sleep(ctx context.Context, op string, d time.Duration) bool {
	reg := telemetry.Get()
	if d <= 0 {
		return ctx.Err() == nil
	}
	start := time.Now()
	t := time.NewTimer(d)
	defer t.Stop()
	defer func() {
		reg.Histogram(telemetry.Name("perspectron_retry_backoff_seconds", "op", op),
			telemetry.DurationBuckets).Observe(time.Since(start).Seconds())
	}()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Do runs fn under the policy: the first failure backs off and retries until
// an attempt succeeds, the attempts are exhausted, or ctx ends. fn receives
// the zero-based attempt number (so callers can derive fresh seeds per
// attempt, as trace.Collect does). It returns the number of attempts made
// and fn's last error (nil on success).
func Do(ctx context.Context, op string, p Policy, seed int64, fn func(attempt int) error) (attempts int, err error) {
	p = p.withDefaults()
	reg := telemetry.Get()
	attemptCtr := reg.Counter(telemetry.Name("perspectron_retry_attempts_total", "op", op))
	bo := NewBackoff(p, seed)
	for i := 0; i < p.MaxAttempts; i++ {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		attempts++
		attemptCtr.Inc()
		if err = fn(i); err == nil {
			return attempts, nil
		}
		if i+1 < p.MaxAttempts {
			if ctx == nil {
				ctx = context.Background()
			}
			if !Sleep(ctx, op, bo.Next()) {
				break
			}
		}
	}
	if err != nil {
		reg.Counter(telemetry.Name("perspectron_retry_giveups_total", "op", op)).Inc()
	}
	return attempts, err
}
