package retry

import (
	"context"
	"errors"
	"testing"
	"time"

	"perspectron/internal/telemetry"
)

func TestBackoffDeterministicForSeed(t *testing.T) {
	p := Policy{MaxAttempts: 8, Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	a, b := NewBackoff(p, 42), NewBackoff(p, 42)
	for i := 0; i < 8; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
	}
	c := NewBackoff(p, 43)
	same := true
	a = NewBackoff(p, 42)
	for i := 0; i < 8; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical jitter sequences")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{MaxAttempts: 10, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}
	b := NewBackoff(p, 1) // Jitter 0: exact sequence
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("backoff %d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5}
	b := NewBackoff(p, 7)
	for i := 0; i < 100; i++ {
		d := b.Next()
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [50ms, 150ms]", d)
		}
	}
}

func TestBackoffReset(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2}
	b := NewBackoff(p, 1)
	b.Next()
	b.Next()
	if b.Attempt() != 2 {
		t.Fatalf("attempt = %d, want 2", b.Attempt())
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("after Reset first backoff = %v, want 10ms", got)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{MaxAttempts: 5, Base: time.Millisecond, Max: time.Millisecond}
	var seen []int
	attempts, err := Do(context.Background(), "test", p, 1, func(attempt int) error {
		seen = append(seen, attempt)
		if attempt < 2 {
			return errors.New("boom")
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("Do = (%d, %v), want (3, nil)", attempts, err)
	}
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("attempt numbers = %v, want [0 1 2]", seen)
	}
}

func TestDoGivesUp(t *testing.T) {
	p := Policy{MaxAttempts: 3, Base: time.Millisecond, Max: time.Millisecond}
	boom := errors.New("boom")
	attempts, err := Do(context.Background(), "test", p, 1, func(int) error { return boom })
	if !errors.Is(err, boom) || attempts != 3 {
		t.Fatalf("Do = (%d, %v), want (3, boom)", attempts, err)
	}
}

func TestDoStopsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attempts, err := Do(ctx, "test", Policy{MaxAttempts: 5}, 1, func(int) error {
		t.Fatal("fn ran under a cancelled context")
		return nil
	})
	if attempts != 0 || err != nil {
		t.Fatalf("Do = (%d, %v), want (0, nil)", attempts, err)
	}
}

func TestDoCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, Base: 10 * time.Second, Max: 10 * time.Second}
	boom := errors.New("boom")
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	attempts, err := Do(ctx, "test", p, 1, func(int) error { return boom })
	if attempts != 1 || !errors.Is(err, boom) {
		t.Fatalf("Do = (%d, %v), want (1, boom)", attempts, err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancel did not cut the backoff sleep short")
	}
}

func TestDoRecordsTelemetry(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	before := reg.CounterValue(telemetry.Name("perspectron_retry_attempts_total", "op", "unit"))
	p := Policy{MaxAttempts: 2, Base: time.Millisecond, Max: time.Millisecond}
	Do(context.Background(), "unit", p, 1, func(int) error { return errors.New("x") })
	if got := reg.CounterValue(telemetry.Name("perspectron_retry_attempts_total", "op", "unit")); got != before+2 {
		t.Fatalf("attempts counter = %d, want %d", got, before+2)
	}
	if got := reg.CounterValue(telemetry.Name("perspectron_retry_giveups_total", "op", "unit")); got == 0 {
		t.Fatalf("giveup not recorded")
	}
}
