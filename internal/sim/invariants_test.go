package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"perspectron/internal/isa"
	"perspectron/internal/tlb"
)

// randomOp draws one structurally valid op.
func randomOp(r *rand.Rand, i int) isa.Op {
	pc := 0x400000 + uint64(i)*4
	switch r.Intn(12) {
	case 0:
		return isa.Op{Kind: isa.KindLoad, PC: pc, Addr: uint64(r.Intn(1 << 22))}
	case 1:
		return isa.Op{Kind: isa.KindStore, PC: pc, Addr: uint64(r.Intn(1 << 22))}
	case 2:
		op := isa.Op{Kind: isa.KindBranch, PC: 0x400000 + uint64(r.Intn(16))*16,
			Taken: r.Intn(2) == 0}
		if r.Intn(4) == 0 {
			op.Transient = []isa.Op{{Kind: isa.KindLoad, Addr: uint64(r.Intn(1 << 22))}}
		}
		return op
	case 3:
		return isa.Op{Kind: isa.KindCall, PC: pc, Target: pc + 0x100}
	case 4:
		return isa.Op{Kind: isa.KindRet, PC: pc, Target: uint64(r.Intn(1 << 22))}
	case 5:
		return isa.Op{Kind: isa.KindFlush, PC: pc, Addr: uint64(r.Intn(1 << 22))}
	case 6:
		return isa.Op{Kind: isa.KindFence, PC: pc}
	case 7:
		return isa.Op{Kind: isa.KindQuiesce, PC: pc, WaitCycles: uint64(r.Intn(64))}
	case 8:
		return isa.Op{Kind: isa.KindLoad, PC: pc,
			Addr: tlb.KernelBase + uint64(r.Intn(1<<16))}
	case 9:
		return isa.Op{Kind: isa.KindIndirect, PC: 0x400000 + uint64(r.Intn(8))*32,
			Target: uint64(0x500000 + r.Intn(4)*0x100)}
	case 10:
		return isa.Op{Kind: isa.KindLoad, PC: pc, Addr: uint64(r.Intn(1 << 22)),
			DependsOnPrev: true, FBRead: r.Intn(8) == 0}
	default:
		return isa.Op{Kind: isa.KindPlain, Class: isa.OpClass(r.Intn(int(isa.NumOpClasses))), PC: pc}
	}
}

// TestQuickRandomProgramsPreserveInvariants runs arbitrary op soup through
// a full machine and checks the global accounting invariants.
func TestQuickRandomProgramsPreserveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 200 + r.Intn(800)
		ops := make([]isa.Op, n)
		for i := range ops {
			ops[i] = randomOp(r, i)
		}
		m := NewMachine(DefaultConfig())
		m.Run(isa.NewSliceStream(ops), 0, 1000)

		lookup := func(name string) float64 {
			c, ok := m.Reg.Lookup(name)
			if !ok {
				t.Fatalf("missing counter %s", name)
			}
			return c.Value()
		}

		// Every fetched op commits.
		if lookup("commit.committedInsts") != float64(n) {
			t.Logf("seed %d: committed %v != %d", seed, lookup("commit.committedInsts"), n)
			return false
		}
		// The op-class distribution partitions the committed instructions.
		var classSum float64
		for cl := isa.OpClass(0); cl < isa.NumOpClasses; cl++ {
			classSum += lookup("commit.op_class_0::" + cl.String())
		}
		if classSum != float64(n) {
			t.Logf("seed %d: class sum %v != %d", seed, classSum, n)
			return false
		}
		// Cache accounting: hits + misses == accesses, everywhere.
		for _, cache := range []string{"icache", "dcache", "l2"} {
			if lookup(cache+".overall_hits")+lookup(cache+".overall_misses") !=
				lookup(cache+".overall_accesses") {
				t.Logf("seed %d: %s accounting broken", seed, cache)
				return false
			}
		}
		// No counter may be negative or NaN.
		for i := 0; i < m.Reg.Len(); i++ {
			v := m.Reg.Counter(i).Value()
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Logf("seed %d: counter %s = %v", seed, m.Reg.Counter(i).Name(), v)
				return false
			}
		}
		// The clock moved and is at least the minimum issue time.
		if m.Pipe.Cycle() < uint64(n)/8 {
			t.Logf("seed %d: cycle %d below width bound", seed, m.Pipe.Cycle())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSamplesPartitionCounters checks that per-interval deltas sum to
// the cumulative counter values for random programs.
func TestQuickSamplesPartitionCounters(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 100 + r.Intn(500)
		ops := make([]isa.Op, n)
		for i := range ops {
			ops[i] = randomOp(r, i)
		}
		m := NewMachine(DefaultConfig())
		samples := m.Run(isa.NewSliceStream(ops), 0, 100)
		if len(samples) == 0 {
			return true
		}
		final := m.Reg.Snapshot(nil)
		// Counter deltas across samples must never exceed the final value.
		sum := make([]float64, len(final))
		for _, s := range samples {
			for j, v := range s {
				if v < 0 {
					t.Logf("seed %d: negative delta", seed)
					return false
				}
				sum[j] += v
			}
		}
		for j := range sum {
			if sum[j] > final[j]+1e-9 {
				t.Logf("seed %d: deltas of %s sum to %v > final %v",
					seed, m.Reg.Counter(j).Name(), sum[j], final[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}
