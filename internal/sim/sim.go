// Package sim assembles the whole simulated machine of the paper's Table II:
// an 8-wide out-of-order x86-like core at 2 GHz with a tournament branch
// predictor, 32 KB L1I / 64 KB L1D / 2 MB shared L2, a DRAM controller with
// a power model, and I/D TLBs — all instrumented with the microarchitectural
// counter registry that PerSpectron samples.
package sim

import (
	"perspectron/internal/branch"
	"perspectron/internal/cache"
	"perspectron/internal/dram"
	"perspectron/internal/isa"
	"perspectron/internal/pipeline"
	"perspectron/internal/stats"
	"perspectron/internal/telemetry"
	"perspectron/internal/tlb"
)

// Config gathers every sub-component configuration.
type Config struct {
	Pipeline pipeline.Config
	Branch   branch.Config
	TLB      tlb.Config
	DRAM     dram.Config
}

// DefaultConfig is the paper's Table II machine.
func DefaultConfig() Config {
	return Config{
		Pipeline: pipeline.DefaultConfig(),
		Branch:   branch.DefaultConfig(),
		TLB:      tlb.DefaultConfig(),
		DRAM:     dram.DefaultConfig(),
	}
}

// ClockGHz is the simulated core frequency (Table II).
const ClockGHz = 2.0

// Machine is one fully wired simulated core + memory system. Build a fresh
// Machine per program run: microarchitectural state (caches, predictors,
// counters) starts cold, as in the paper's per-program gem5 runs.
type Machine struct {
	Cfg  Config
	Reg  *stats.Registry
	Pipe *pipeline.Pipeline
	Hier *cache.Hierarchy
	DRAM *dram.Controller
	BP   *branch.Predictor
	ITB  *tlb.TLB
	DTB  *tlb.TLB

	// OnSample is invoked after each sampling interval during Run with the
	// 0-based sample index; mitigation policies hook here.
	OnSample sampleHook

	// SampleFilter, if set, transforms each sampled counter-delta vector in
	// place as soon as it is emitted — before OnSample observes it and
	// before Run returns it. Fault-injection schedules
	// (internal/faults.Schedule.Attach) hook here, so everything downstream
	// of the sampler sees the degraded signal.
	SampleFilter func(index int, vec []float64)
}

// memAdapter exposes the hierarchy as the pipeline's MemSystem.
type memAdapter struct{ h *cache.Hierarchy }

func (m memAdapter) FetchInst(pc uint64, cycle uint64) uint64 { return m.h.FetchInst(pc, cycle) }
func (m memAdapter) ReadData(addr uint64, shared bool, cycle uint64) uint64 {
	return m.h.ReadData(addr, shared, cycle)
}
func (m memAdapter) WriteData(addr uint64, cycle uint64) uint64     { return m.h.WriteData(addr, cycle) }
func (m memAdapter) Flush(addr uint64, cycle uint64) (bool, uint64) { return m.h.Flush(addr, cycle) }
func (m memAdapter) ReadLFB(cycle uint64) bool                      { return m.h.L1D.ReadLFB(cycle) }

// NewMachine wires a machine and seals its counter registry.
func NewMachine(cfg Config) *Machine {
	reg := stats.NewRegistry()
	d := dram.New(cfg.DRAM, reg)
	h := cache.NewHierarchy(reg, d)
	bp := branch.New(cfg.Branch, reg)
	itb := tlb.New(cfg.TLB, reg, stats.CompITB, "itb")
	dtb := tlb.New(cfg.TLB, reg, stats.CompDTB, "dtb")
	p := pipeline.New(cfg.Pipeline, pipeline.NewCounters(reg, cfg.Pipeline.Width))
	p.Mem = memAdapter{h}
	p.BP = bp
	p.ITB = itb
	p.DTB = dtb
	reg.Seal()
	return &Machine{Cfg: cfg, Reg: reg, Pipe: p, Hier: h, DRAM: d, BP: bp, ITB: itb, DTB: dtb}
}

// NumCounters returns the size of the machine's counter space (the paper's
// machine exposes 1159 counters; this model's inventory is asserted in the
// sim tests and documented in DESIGN.md).
func (m *Machine) NumCounters() int { return m.Reg.Len() }

// sampleHook is invoked after each sampling interval fires, with the
// 0-based sample index and that interval's counter delta vector — the hook
// OS-level mitigation policies use to score the interval and react (rekey
// caches, toggle fencing) before the next one.
type sampleHook = func(index int, delta []float64)

// Run executes the stream for up to maxInsts committed-path instructions,
// sampling all counters every sampleInterval committed instructions. It
// returns the per-interval counter delta vectors. Run is the batch view of
// RunStream: it drains the sample stream into a slice.
func (m *Machine) Run(stream isa.Stream, maxInsts, sampleInterval uint64) [][]float64 {
	var out [][]float64
	m.RunStream(stream, maxInsts, sampleInterval, func(_ int, v []float64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// cutoffStream ends the wrapped op stream once *stop is set, so a streaming
// consumer that is done listening can halt the pipeline mid-run.
type cutoffStream struct {
	inner isa.Stream
	stop  *bool
}

func (c *cutoffStream) Next() (isa.Op, bool) {
	if *c.stop {
		return isa.Op{}, false
	}
	return c.inner.Next()
}

// RunStream executes like Run but delivers each sampled counter-delta
// vector to fn as soon as its interval completes, instead of accumulating
// them — the per-sample code path shared by batch trace collection and
// online monitoring. fn returning false cuts the run off at the next
// instruction fetch. The trailing partial interval (at least half a sample
// long, as in Run) is delivered after the pipeline drains. SampleFilter and
// OnSample observe every vector before fn does. It returns the number of
// samples delivered.
func (m *Machine) RunStream(stream isa.Stream, maxInsts, sampleInterval uint64, fn func(index int, delta []float64) bool) int {
	sampler := stats.NewSampler(m.Reg, sampleInterval)
	idx := 0
	stop := false
	m.Pipe.OnCommit = func(n uint64) {
		fired := sampler.Tick(n)
		for i := 0; i < fired; i++ {
			all := sampler.Samples()
			v := all[len(all)-fired+i]
			if m.SampleFilter != nil {
				m.SampleFilter(idx, v)
			}
			if m.OnSample != nil {
				m.OnSample(idx, v)
			}
			if !stop && !fn(idx, v) {
				stop = true
			}
			idx++
		}
	}
	m.Pipe.Run(&cutoffStream{inner: stream, stop: &stop}, maxInsts)
	m.DRAM.FinishAt(m.Pipe.Cycle())
	before := len(sampler.Samples())
	sampler.Flush(sampleInterval / 2)
	if all := sampler.Samples(); len(all) > before {
		// The trailing partial sample is emitted outside OnCommit; faults
		// must still apply to it before a listening consumer sees it.
		v := all[len(all)-1]
		if m.SampleFilter != nil {
			m.SampleFilter(idx, v)
		}
		if !stop {
			fn(idx, v)
		}
		idx++
	}
	if reg := telemetry.Get(); reg != nil {
		reg.Counter("perspectron_sim_runs_total").Inc()
		reg.Counter("perspectron_sim_samples_total").Add(uint64(idx))
	}
	return idx
}

// EnableFencing toggles the context-sensitive-fencing mitigation (§IV-G1):
// injected fences block speculative loads at a per-branch serialization
// cost.
func (m *Machine) EnableFencing(on bool) { m.Pipe.SetFencing(on) }

// RekeyCaches rotates the CEASER-style index-randomization key of the data
// caches (§IV-G1), destroying any eviction sets the attacker has built.
func (m *Machine) RekeyCaches(key uint64) {
	cycle := m.Pipe.Cycle()
	m.Hier.L1D.Rekey(key, cycle)
	m.Hier.L2.Rekey(key*0x9e3779b97f4a7c15+1, cycle)
}

// InjectBPNoise randomizes branch predictions at ratePermille/1000 (§IV-G1),
// making predictor mistraining unreliable.
func (m *Machine) InjectBPNoise(ratePermille int) { m.BP.SetNoise(ratePermille) }
