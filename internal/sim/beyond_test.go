package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"perspectron/internal/workload/attacks"
)

func TestSpectreV4Footprint(t *testing.T) {
	m := NewMachine(DefaultConfig())
	m.Run(attacks.SpectreV4("fr").Stream(rand.New(rand.NewSource(1))), 50_000, 10_000)
	fmt.Println("memOrderViolations:", value(t, m, "iew.memOrderViolationEvents"))
	fmt.Println("squashedLoads:", value(t, m, "lsq.thread0.squashedLoads"))
	fmt.Println("rescheduled:", value(t, m, "lsq.thread0.rescheduledLoads"))
	if value(t, m, "iew.memOrderViolationEvents") == 0 {
		t.Fatalf("v4 caused no memory-order violations")
	}
}

func TestRowHammerFootprint(t *testing.T) {
	m := NewMachine(DefaultConfig())
	m.Run(attacks.RowHammer().Stream(rand.New(rand.NewSource(1))), 50_000, 10_000)
	fmt.Println("activations:", value(t, m, "mem_ctrls.rank0.actCount"))
	fmt.Println("flush_ops:", value(t, m, "dcache.flush_ops"))
	if value(t, m, "mem_ctrls.rank0.actCount") < 1000 {
		t.Fatalf("rowhammer activation rate too low")
	}
}
