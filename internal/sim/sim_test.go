package sim

import (
	"math/rand"
	"testing"

	"perspectron/internal/workload"
	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

// runProg runs a program for maxInsts on a fresh machine and returns it.
func runProg(t *testing.T, p workload.Program, maxInsts uint64) *Machine {
	t.Helper()
	m := NewMachine(DefaultConfig())
	samples := m.Run(p.Stream(rand.New(rand.NewSource(42))), maxInsts, 10_000)
	if len(samples) == 0 {
		t.Fatalf("%s produced no samples", p.Info().Name)
	}
	return m
}

// value reads one counter by name.
func value(t *testing.T, m *Machine, name string) float64 {
	t.Helper()
	c, ok := m.Reg.Lookup(name)
	if !ok {
		t.Fatalf("counter %q not registered", name)
	}
	return c.Value()
}

func TestMachineCounterInventory(t *testing.T) {
	m := NewMachine(DefaultConfig())
	// The inventory is fixed by construction; DESIGN.md documents the
	// relationship to the paper's 1159 gem5 counters.
	if got := m.NumCounters(); got < 700 {
		t.Fatalf("counter inventory shrank: %d", got)
	}
	// The paper's 17 components must all be populated.
	for comp := 0; comp < 17; comp++ {
		found := false
		for i := 0; i < m.Reg.Len(); i++ {
			if int(m.Reg.Counter(i).Component()) == comp {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("component %d has no counters", comp)
		}
	}
}

func TestFlushReloadFootprint(t *testing.T) {
	m := runProg(t, attacks.FlushReload(), 50_000)
	if value(t, m, "dcache.flush_ops") == 0 {
		t.Fatalf("flush+reload issued no flushes")
	}
	if value(t, m, "fetch.PendingQuiesceStallCycles") == 0 {
		t.Fatalf("flush+reload has no quiesce stalls (victim-wait phase missing)")
	}
	if value(t, m, "tol2bus.trans_dist::ReadSharedReq") == 0 {
		t.Fatalf("flush+reload produced no shared-read bus traffic")
	}
}

func TestFlushFlushFootprint(t *testing.T) {
	m := runProg(t, attacks.FlushFlush(), 50_000)
	if value(t, m, "dcache.flush_ops") == 0 {
		t.Fatalf("flush+flush issued no flushes")
	}
	// The paper's stealth property: the attacker itself performs
	// (almost) no cache loads — misses stay tiny relative to flushes.
	misses := value(t, m, "dcache.ReadReq_misses")
	flushes := value(t, m, "dcache.flush_ops")
	if misses > flushes/4 {
		t.Fatalf("flush+flush has too many read misses (%v) vs flushes (%v)", misses, flushes)
	}
	// Its tell is commit-side serialization pressure.
	if value(t, m, "commit.NonSpecStalls") == 0 {
		t.Fatalf("flush+flush produced no NonSpecStalls")
	}
}

func TestPrimeProbeFootprint(t *testing.T) {
	m := runProg(t, attacks.PrimeProbe(), 50_000)
	if value(t, m, "dcache.flush_ops") != 0 {
		t.Fatalf("prime+probe must not flush")
	}
	if value(t, m, "tol2bus.trans_dist::CleanEvict") == 0 {
		t.Fatalf("prime+probe produced no CleanEvict transactions (the paper's tell)")
	}
	if value(t, m, "dcache.replacements") == 0 {
		t.Fatalf("prime+probe caused no conflict evictions")
	}
}

func TestSpectreV1Footprint(t *testing.T) {
	m := runProg(t, attacks.SpectreV1("fr"), 50_000)
	if value(t, m, "lsq.thread0.squashedLoads") == 0 {
		t.Fatalf("spectreV1 squashed no loads")
	}
	if value(t, m, "iew.branchMispredicts") == 0 {
		t.Fatalf("spectreV1 caused no mispredicts")
	}
	if value(t, m, "commit.SquashedInsts") == 0 {
		t.Fatalf("spectreV1 squashed no instructions")
	}
}

func TestSpectreRSBFootprint(t *testing.T) {
	m := runProg(t, attacks.SpectreRSB("fr"), 50_000)
	if value(t, m, "branchPred.RASInCorrect") == 0 {
		t.Fatalf("spectreRSB caused no RAS mispredicts")
	}
}

func TestSpectreV2Footprint(t *testing.T) {
	m := runProg(t, attacks.SpectreV2("fr"), 50_000)
	if value(t, m, "branchPred.indirectMispredicted") == 0 {
		t.Fatalf("spectreV2 caused no indirect mispredicts")
	}
}

func TestMeltdownFootprint(t *testing.T) {
	m := runProg(t, attacks.Meltdown("fr"), 50_000)
	if value(t, m, "commit.traps") == 0 {
		t.Fatalf("meltdown raised no traps")
	}
	if value(t, m, "dtb.permFaults") == 0 {
		t.Fatalf("meltdown triggered no permission faults")
	}
	if value(t, m, "fetch.PendingTrapStallCycles") == 0 {
		t.Fatalf("meltdown produced no trap stalls")
	}
}

func TestBreakingKASLRFootprint(t *testing.T) {
	m := runProg(t, attacks.BreakingKASLR(), 50_000)
	if value(t, m, "dtb.pageFaults") == 0 {
		t.Fatalf("breakingKSLR probed no unmapped pages")
	}
	if value(t, m, "dtb.walks") == 0 {
		t.Fatalf("breakingKSLR caused no page walks")
	}
}

func TestCacheOutFootprint(t *testing.T) {
	m := runProg(t, attacks.CacheOut("fr"), 50_000)
	if value(t, m, "dcache.lfb_reads") == 0 {
		t.Fatalf("cacheOut sampled no fill-buffer reads")
	}
}

func TestBenignProgramsLackAttackTells(t *testing.T) {
	for _, p := range benign.All() {
		p := p
		t.Run(p.Info().Name, func(t *testing.T) {
			m := runProg(t, p, 30_000)
			if value(t, m, "dcache.flush_ops") != 0 {
				t.Fatalf("benign %s flushes cache lines", p.Info().Name)
			}
			if value(t, m, "commit.traps") != 0 {
				t.Fatalf("benign %s traps", p.Info().Name)
			}
			if value(t, m, "fetch.PendingQuiesceStallCycles") != 0 {
				t.Fatalf("benign %s quiesces", p.Info().Name)
			}
			if value(t, m, "commit.committedInsts") == 0 {
				t.Fatalf("benign %s committed nothing", p.Info().Name)
			}
		})
	}
}

func TestBenignBranchyStillSquashes(t *testing.T) {
	// gobmk-like code must squash plenty of instructions — benign noise
	// that prevents trivial SquashedInsts thresholds.
	m := runProg(t, benign.Gobmk(), 30_000)
	if value(t, m, "commit.SquashedInsts") == 0 {
		t.Fatalf("branchy benign program squashed nothing")
	}
	if value(t, m, "branchPred.condIncorrect") == 0 {
		t.Fatalf("branchy benign program never mispredicted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []float64 {
		m := NewMachine(DefaultConfig())
		m.Run(attacks.SpectreV1("fr").Stream(rand.New(rand.NewSource(7))), 20_000, 10_000)
		return m.Reg.Snapshot(nil)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic counter %s: %v vs %v",
				NewMachine(DefaultConfig()).Reg.Counter(i).Name(), a[i], b[i])
		}
	}
}

func TestSampleWidthMatchesRegistry(t *testing.T) {
	m := NewMachine(DefaultConfig())
	samples := m.Run(benign.Bzip2().Stream(rand.New(rand.NewSource(1))), 25_000, 10_000)
	for _, s := range samples {
		if len(s) != m.NumCounters() {
			t.Fatalf("sample width %d != %d counters", len(s), m.NumCounters())
		}
	}
	if len(samples) < 2 {
		t.Fatalf("expected at least 2 samples, got %d", len(samples))
	}
}

func TestLeakMarksRecorded(t *testing.T) {
	p := attacks.SpectreV1("fr")
	stream := p.Stream(rand.New(rand.NewSource(3)))
	m := NewMachine(DefaultConfig())
	m.Run(stream, 20_000, 10_000)
	ls := stream.(*workload.LoopStream)
	if len(ls.LeakMarks()) == 0 {
		t.Fatalf("no leak marks recorded")
	}
	if ls.LeakMarks()[0] > ls.Emitted() {
		t.Fatalf("leak mark beyond emitted ops")
	}
}
