package sim

import (
	"math/rand"
	"testing"

	"perspectron/internal/workload/attacks"
	"perspectron/internal/workload/benign"
)

func TestFencingBlocksSpectreChannel(t *testing.T) {
	attack := attacks.SpectreV1("fr")

	plain := NewMachine(DefaultConfig())
	plain.Run(attack.Stream(rand.New(rand.NewSource(1))), 50_000, 10_000)
	plainBlocked := value(t, plain, "iew.blockedSpecLoads")
	plainSquashed := value(t, plain, "lsq.thread0.squashedLoads")
	if plainBlocked != 0 {
		t.Fatalf("fences blocked loads while disabled")
	}
	if plainSquashed == 0 {
		t.Fatalf("attack produced no speculative loads")
	}

	fenced := NewMachine(DefaultConfig())
	fenced.EnableFencing(true)
	fenced.Run(attack.Stream(rand.New(rand.NewSource(1))), 50_000, 10_000)
	blocked := value(t, fenced, "iew.blockedSpecLoads")
	squashed := value(t, fenced, "lsq.thread0.squashedLoads")
	if blocked != squashed {
		t.Fatalf("fencing leaked %v of %v speculative loads", squashed-blocked, squashed)
	}
	if value(t, fenced, "iew.fenceStallCycles") == 0 {
		t.Fatalf("fencing has no performance cost")
	}
}

func TestFencingCostsBenignPerformance(t *testing.T) {
	run := func(fence bool) uint64 {
		m := NewMachine(DefaultConfig())
		m.EnableFencing(fence)
		m.Run(benign.Gobmk().Stream(rand.New(rand.NewSource(2))), 30_000, 10_000)
		return m.Pipe.Cycle()
	}
	base, fenced := run(false), run(true)
	if fenced <= base {
		t.Fatalf("fencing made branchy benign code faster: %d vs %d", fenced, base)
	}
}

func TestRekeyBreaksPrimeProbeSets(t *testing.T) {
	attack := attacks.PrimeProbe()

	miss := func(rekey bool) float64 {
		m := NewMachine(DefaultConfig())
		if rekey {
			m.OnSample = func(idx int, _ []float64) { m.RekeyCaches(uint64(idx)*2654435761 + 7) }
		}
		m.Run(attack.Stream(rand.New(rand.NewSource(3))), 60_000, 5_000)
		return value(t, m, "dcache.ReadReq_misses") / value(t, m, "dcache.ReadReq_accesses")
	}
	base, rekeyed := miss(false), miss(true)
	if rekeyed <= base {
		t.Fatalf("rekeying did not raise the attacker's miss noise: %.3f vs %.3f", rekeyed, base)
	}
	// The rekey events themselves must be counted.
	m := NewMachine(DefaultConfig())
	m.OnSample = func(idx int, _ []float64) { m.RekeyCaches(uint64(idx) + 1) }
	m.Run(attack.Stream(rand.New(rand.NewSource(3))), 30_000, 10_000)
	if value(t, m, "dcache.rekeys") == 0 {
		t.Fatalf("rekeys not counted")
	}
}

func TestBPNoiseDegradesMistraining(t *testing.T) {
	attack := attacks.SpectreV1("fr")

	gadgetLoads := func(permille int) float64 {
		m := NewMachine(DefaultConfig())
		m.InjectBPNoise(permille)
		m.Run(attack.Stream(rand.New(rand.NewSource(4))), 60_000, 10_000)
		return value(t, m, "lsq.thread0.squashedLoads")
	}
	base := gadgetLoads(0)
	noisy := gadgetLoads(300)
	if noisy >= base {
		t.Fatalf("noise did not reduce gadget executions: %v vs %v", noisy, base)
	}
	// The injected randomization must be visible in the counter.
	m := NewMachine(DefaultConfig())
	m.InjectBPNoise(300)
	m.Run(benign.Gobmk().Stream(rand.New(rand.NewSource(5))), 20_000, 10_000)
	if value(t, m, "branchPred.noiseInjected") == 0 {
		t.Fatalf("noise injections not counted")
	}
	if value(t, m, "branchPred.condIncorrect") == 0 {
		t.Fatalf("no mispredicts under noise")
	}
}

func TestOnSampleHookFires(t *testing.T) {
	m := NewMachine(DefaultConfig())
	var got []int
	m.OnSample = func(idx int, _ []float64) { got = append(got, idx) }
	m.Run(benign.Bzip2().Stream(rand.New(rand.NewSource(6))), 35_000, 10_000)
	if len(got) < 3 {
		t.Fatalf("hook fired %d times", len(got))
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("hook indices out of order: %v", got)
		}
	}
}
