// Package cache implements the simulated cache hierarchy: set-associative
// L1I/L1D/L2 caches with LRU replacement, MSHR and write-buffer occupancy
// modelling, CLFLUSH semantics, and the bus transaction distributions
// (ReadSharedReq, ReadResp, CleanEvict, WritebackClean, ...) that the paper's
// feature analysis identifies as invariant attack footprints.
package cache

import "perspectron/internal/stats"

// Config sizes one cache.
type Config struct {
	Name         string // gem5-style prefix, e.g. "dcache"
	Component    stats.Component
	SizeBytes    int
	LineBytes    int
	Ways         int
	Latency      uint64 // hit latency, cycles (tag+data)
	MSHRs        int
	TgtsPerMSHR  int
	WriteBuffers int
}

// Table II configurations.
func L1IConfig() Config {
	return Config{Name: "icache", Component: stats.CompICache,
		SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4, Latency: 2,
		MSHRs: 4, TgtsPerMSHR: 8, WriteBuffers: 0}
}

func L1DConfig() Config {
	return Config{Name: "dcache", Component: stats.CompDCache,
		SizeBytes: 64 * 1024, LineBytes: 64, Ways: 8, Latency: 2,
		MSHRs: 10, TgtsPerMSHR: 12, WriteBuffers: 8}
}

func L2Config() Config {
	return Config{Name: "l2", Component: stats.CompL2,
		SizeBytes: 2 * 1024 * 1024, LineBytes: 64, Ways: 8, Latency: 20,
		MSHRs: 20, TgtsPerMSHR: 12, WriteBuffers: 8}
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	shared  bool // filled by a shared-memory read (ReadSharedReq)
	lastUse uint64
}

// ReqStats is the per-request-type counter family gem5 reports for each
// cache (hits, misses, accesses, latency sums, MSHR misses).
type ReqStats struct {
	Hits           *stats.Counter
	Misses         *stats.Counter
	Accesses       *stats.Counter
	MissLatency    *stats.Counter
	MSHRMisses     *stats.Counter
	MSHRMissLat    *stats.Counter
	MSHRHits       *stats.Counter
	AvgMissLatency *stats.Counter // running sum used as a rate proxy
}

func newReqStats(reg *stats.Registry, comp stats.Component, cacheName, req string) ReqStats {
	mk := func(suffix, desc string) *stats.Counter {
		return reg.NewRaw(comp, cacheName+"."+req+"_"+suffix, desc)
	}
	return ReqStats{
		Hits:           mk("hits", req+" hits"),
		Misses:         mk("misses", req+" misses"),
		Accesses:       mk("accesses", req+" accesses"),
		MissLatency:    mk("miss_latency", "total "+req+" miss latency"),
		MSHRMisses:     mk("mshr_misses", req+" MSHR misses"),
		MSHRMissLat:    mk("mshr_miss_latency", "total "+req+" MSHR miss latency"),
		MSHRHits:       mk("mshr_hits", req+" MSHR hits (merged targets)"),
		AvgMissLatency: mk("avg_miss_latency", "sum proxy for average "+req+" miss latency"),
	}
}

// Counters groups one cache's statistics.
type Counters struct {
	ReadReq       ReqStats
	WriteReq      ReqStats
	ReadSharedReq ReqStats
	ReadExReq     ReqStats

	OverallHits     *stats.Counter
	OverallMisses   *stats.Counter
	OverallAccesses *stats.Counter
	Replacements    *stats.Counter
	WritebacksDirty *stats.Counter
	WritebacksClean *stats.Counter
	Fills           *stats.Counter

	FlushOps    *stats.Counter
	FlushHits   *stats.Counter
	FlushMisses *stats.Counter

	BlockedNoMSHRs   *stats.Counter
	BlockedNoTargets *stats.Counter
	BlockedNoWB      *stats.Counter
	MSHROccupancy    *stats.Counter // occupancy-cycles sum

	TagAccesses  *stats.Counter
	DataAccesses *stats.Counter

	LFBReads   *stats.Counter // line fill buffer reads (MDS/CacheOut path)
	LFBForward *stats.Counter

	MissLatencyDist []*stats.Counter // log2-bucketed miss latency distribution
	MSHROccDist     []*stats.Counter // MSHR occupancy distribution

	Rekeys *stats.Counter // CEASER-style index re-randomizations
}

func newCounters(reg *stats.Registry, comp stats.Component, name string) Counters {
	mk := func(suffix, desc string) *stats.Counter {
		return reg.NewRaw(comp, name+"."+suffix, desc)
	}
	return Counters{
		ReadReq:       newReqStats(reg, comp, name, "ReadReq"),
		WriteReq:      newReqStats(reg, comp, name, "WriteReq"),
		ReadSharedReq: newReqStats(reg, comp, name, "ReadSharedReq"),
		ReadExReq:     newReqStats(reg, comp, name, "ReadExReq"),

		OverallHits:     mk("overall_hits", "hits for all request types"),
		OverallMisses:   mk("overall_misses", "misses for all request types"),
		OverallAccesses: mk("overall_accesses", "accesses for all request types"),
		Replacements:    mk("replacements", "lines evicted to make room for fills"),
		WritebacksDirty: mk("writebacks_dirty", "dirty lines written back"),
		WritebacksClean: mk("writebacks_clean", "clean lines evicted with notification"),
		Fills:           mk("fills", "lines filled from below"),

		FlushOps:    mk("flush_ops", "CLFLUSH operations handled"),
		FlushHits:   mk("flush_hits", "CLFLUSH found the line present"),
		FlushMisses: mk("flush_misses", "CLFLUSH line absent"),

		BlockedNoMSHRs:   mk("blocked::no_mshrs", "cycles blocked for free MSHR"),
		BlockedNoTargets: mk("blocked::no_targets", "cycles blocked for MSHR targets"),
		BlockedNoWB:      mk("blocked::no_wb_buffers", "cycles blocked for write buffer"),
		MSHROccupancy:    mk("mshr_occupancy", "MSHR occupancy-cycles"),

		TagAccesses:  mk("tags.tag_accesses", "tag array accesses"),
		DataAccesses: mk("tags.data_accesses", "data array accesses"),

		LFBReads:   mk("lfb_reads", "reads serviced from the line fill buffer"),
		LFBForward: mk("lfb_forwards", "stale fill-buffer data forwarded (MDS window)"),

		MissLatencyDist: distCounters(reg, comp, name+".miss_latency_dist", 12),
		MSHROccDist:     distCounters(reg, comp, name+".mshr_occ_dist", 8),

		Rekeys: mk("rekeys", "index-randomization rekey events"),
	}
}

func distCounters(reg *stats.Registry, comp stats.Component, prefix string, n int) []*stats.Counter {
	out := make([]*stats.Counter, n)
	for i := range out {
		out[i] = reg.NewRaw(comp, prefix+"::"+itobs(i), prefix+" bucket")
	}
	return out
}

func itobs(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// log2Bucket maps v into one of n log2-spaced buckets.
func log2Bucket(v uint64, n int) int {
	b := 0
	for v > 1 && b < n-1 {
		v >>= 1
		b++
	}
	return b
}

// mshrPool tracks outstanding misses by release cycle.
type mshrPool struct {
	release []uint64
	size    int
}

func newMSHRPool(n int) *mshrPool { return &mshrPool{size: n} }

// acquire registers a miss completing at done. It returns the number of
// cycles the requester stalls because all MSHRs are busy, and the occupancy
// after registration.
func (m *mshrPool) acquire(now, done uint64) (stall uint64, occ int) {
	// Retire completed entries.
	live := m.release[:0]
	for _, r := range m.release {
		if r > now {
			live = append(live, r)
		}
	}
	m.release = live
	if len(m.release) >= m.size {
		// Stall until the earliest entry retires.
		earliest := m.release[0]
		for _, r := range m.release {
			if r < earliest {
				earliest = r
			}
		}
		if earliest > now {
			stall = earliest - now
		}
		// Replace the earliest entry.
		for i, r := range m.release {
			if r == earliest {
				m.release[i] = done + stall
				break
			}
		}
	} else {
		m.release = append(m.release, done)
	}
	return stall, len(m.release)
}

func (m *mshrPool) occupancy(now uint64) int {
	n := 0
	for _, r := range m.release {
		if r > now {
			n++
		}
	}
	return n
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg      Config
	sets     int
	shift    uint
	lines    []line
	tick     uint64 // LRU clock
	scramble uint64 // CEASER index key; 0 = direct mapping
	C        Counters
	mshrs    *mshrPool

	// below is invoked on a miss and returns the fill latency from the
	// next level (bus + lower cache + memory).
	below func(addr uint64, write, shared bool, cycle uint64) uint64
	// evict is invoked when a victim line leaves this cache.
	evict func(addr uint64, dirty bool, cycle uint64)
	// flushBelow propagates CLFLUSH downward.
	flushBelow func(addr uint64, cycle uint64) uint64
}

// New constructs a cache and registers its counters.
func New(cfg Config, reg *stats.Registry) *Cache {
	lineCount := cfg.SizeBytes / cfg.LineBytes
	sets := lineCount / cfg.Ways
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		shift: shift,
		lines: make([]line, lineCount),
		C:     newCounters(reg, cfg.Component, cfg.Name),
		mshrs: newMSHRPool(cfg.MSHRs),
	}
}

// SetBelow wires the miss path.
func (c *Cache) SetBelow(f func(addr uint64, write, shared bool, cycle uint64) uint64) {
	c.below = f
}

// SetEvict wires the eviction notification path.
func (c *Cache) SetEvict(f func(addr uint64, dirty bool, cycle uint64)) { c.evict = f }

// SetFlushBelow wires downward CLFLUSH propagation.
func (c *Cache) SetFlushBelow(f func(addr uint64, cycle uint64) uint64) { c.flushBelow = f }

// Sets returns the number of sets (for workload generators that construct
// eviction sets, e.g. Prime+Probe).
func (c *Cache) Sets() int { return c.sets }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	blk := addr >> c.shift
	if c.scramble != 0 {
		// CEASER-style encrypted index: a keyed mix decides set placement
		// so attackers cannot construct eviction sets.
		mixed := (blk ^ c.scramble) * 0x9e3779b97f4a7c15
		return int(mixed % uint64(c.sets)), blk / uint64(c.sets)
	}
	return int(blk % uint64(c.sets)), blk / uint64(c.sets)
}

// Rekey enables (or rotates) CEASER-style index randomization (§IV-G1 /
// Qureshi MICRO'18): future accesses map sets through the new key. Lines
// placed under the old mapping become unreachable, so they are invalidated
// (dirty lines write back), modelling an epoch remap.
func (c *Cache) Rekey(key uint64, cycle uint64) {
	c.C.Rekeys.Inc()
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			c.C.WritebacksDirty.Inc()
			if c.evict != nil {
				// Address reconstruction uses the old mapping.
				set := i / c.cfg.Ways
				addr := (c.lines[i].tag*uint64(c.sets) + uint64(set)) << c.shift
				c.evict(addr, true, cycle)
			}
		}
		c.lines[i] = line{}
	}
	c.scramble = key
}

func (c *Cache) set(i int) []line {
	return c.lines[i*c.cfg.Ways : (i+1)*c.cfg.Ways]
}

func (c *Cache) reqStats(write, shared bool) *ReqStats {
	switch {
	case write:
		return &c.C.WriteReq
	case shared:
		return &c.C.ReadSharedReq
	default:
		return &c.C.ReadReq
	}
}

// Access performs a read or write of addr at the given cycle and returns the
// latency in cycles. shared marks accesses to shared (library) pages, which
// travel as ReadSharedReq transactions.
func (c *Cache) Access(addr uint64, write, shared bool, cycle uint64) uint64 {
	rs := c.reqStats(write, shared)
	rs.Accesses.Inc()
	c.C.OverallAccesses.Inc()
	c.C.TagAccesses.Inc()
	c.tick++

	set, tag := c.index(addr)
	ways := c.set(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			rs.Hits.Inc()
			c.C.OverallHits.Inc()
			c.C.DataAccesses.Inc()
			ways[i].lastUse = c.tick
			if write {
				ways[i].dirty = true
			}
			return c.cfg.Latency
		}
	}

	// Miss.
	rs.Misses.Inc()
	c.C.OverallMisses.Inc()
	rs.MSHRMisses.Inc()

	var fill uint64
	if c.below != nil {
		fill = c.below(addr, write, shared, cycle+c.cfg.Latency)
	}
	lat := c.cfg.Latency + fill
	stall, occ := c.mshrs.acquire(cycle, cycle+lat)
	if stall > 0 {
		c.C.BlockedNoMSHRs.Add(float64(stall))
		lat += stall
	}
	c.C.MSHROccupancy.Add(float64(occ))
	if occ >= len(c.C.MSHROccDist) {
		occ = len(c.C.MSHROccDist) - 1
	}
	c.C.MSHROccDist[occ].Inc()
	c.C.MissLatencyDist[log2Bucket(lat, len(c.C.MissLatencyDist))].Inc()
	rs.MissLatency.Add(float64(lat))
	rs.MSHRMissLat.Add(float64(lat))
	rs.AvgMissLatency.Add(float64(lat))

	c.fill(set, tag, write, shared, cycle)
	return lat
}

// fill installs a line, evicting the LRU victim if necessary.
func (c *Cache) fill(set int, tag uint64, write, shared bool, cycle uint64) {
	ways := c.set(set)
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			goto install
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	// Evict.
	c.C.Replacements.Inc()
	if ways[victim].dirty {
		c.C.WritebacksDirty.Inc()
	} else {
		c.C.WritebacksClean.Inc()
	}
	if c.evict != nil {
		vAddr := (ways[victim].tag*uint64(c.sets) + uint64(set)) << c.shift
		c.evict(vAddr, ways[victim].dirty, cycle)
	}
install:
	ways[victim] = line{tag: tag, valid: true, dirty: write, shared: shared, lastUse: c.tick}
	c.C.Fills.Inc()
}

// Present reports whether addr is cached (no counter side effects beyond a
// tag access; used by tests and the flush-timing path).
func (c *Cache) Present(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.set(set) {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Flush implements CLFLUSH: invalidate addr's line if present, writing back
// dirty data. It returns (present, latency); flushing a present line takes
// longer, the timing signal Flush+Flush exploits.
func (c *Cache) Flush(addr uint64, cycle uint64) (present bool, lat uint64) {
	c.C.FlushOps.Inc()
	c.C.TagAccesses.Inc()
	set, tag := c.index(addr)
	ways := c.set(set)
	lat = c.cfg.Latency
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			present = true
			c.C.FlushHits.Inc()
			if ways[i].dirty {
				c.C.WritebacksDirty.Inc()
				if c.evict != nil {
					c.evict(addr, true, cycle)
				}
				lat += 4
			}
			ways[i] = line{}
			lat += c.cfg.Latency // back-invalidate cost
			break
		}
	}
	if !present {
		c.C.FlushMisses.Inc()
	}
	if c.flushBelow != nil {
		lat += c.flushBelow(addr, cycle+lat)
	}
	return present, lat
}

// ReadLFB models an MDS-style read that samples in-flight data from the line
// fill buffer instead of the cache array (the CacheOut/RIDL primitive). It
// always counts an LFB read, and counts a forward when there are outstanding
// fills whose stale data the transient load can sample.
func (c *Cache) ReadLFB(cycle uint64) (forwarded bool) {
	c.C.LFBReads.Inc()
	if c.mshrs.occupancy(cycle) > 0 {
		c.C.LFBForward.Inc()
		return true
	}
	return false
}

// MSHROccupancy returns current in-flight misses (for tests).
func (c *Cache) MSHROccupancy(cycle uint64) int { return c.mshrs.occupancy(cycle) }

// InvalidateAll empties the cache (used between independent program runs).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.mshrs = newMSHRPool(c.cfg.MSHRs)
}
