package cache

import "perspectron/internal/stats"

// Memory is the backend below the last-level cache (implemented by
// internal/dram). Access returns the service latency in cycles.
type Memory interface {
	Access(addr uint64, write bool, cycle uint64) uint64
}

// Hierarchy wires L1I and L1D through tol2bus into a shared L2, and the L2
// through membus into main memory, per the paper's Table II.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	ToL2Bus      *Bus
	MemBus       *Bus
	Mem          Memory
}

// NewHierarchy builds the Table II hierarchy over mem, registering all
// counters in reg.
func NewHierarchy(reg *stats.Registry, mem Memory) *Hierarchy {
	h := &Hierarchy{
		L1I:     New(L1IConfig(), reg),
		L1D:     New(L1DConfig(), reg),
		L2:      New(L2Config(), reg),
		ToL2Bus: NewBus("tol2bus", 1, 64, reg),
		MemBus:  NewBus("membus", 2, 64, reg),
		Mem:     mem,
	}

	// L2 miss path: membus -> memory.
	h.L2.SetBelow(func(addr uint64, write, shared bool, cycle uint64) uint64 {
		t := TransReadReq
		if write {
			t = TransReadExReq
		} else if shared {
			t = TransReadSharedReq
		}
		lat := h.MemBus.Send(t, addr, 64)
		return lat + h.Mem.Access(addr, write, cycle+lat) + h.MemBus.Latency()
	})
	// L2 evictions go to memory over membus.
	h.L2.SetEvict(func(addr uint64, dirty bool, cycle uint64) {
		if dirty {
			h.MemBus.Send(TransWritebackDirty, addr, 64)
			h.Mem.Access(addr, true, cycle)
		} else {
			h.MemBus.Send(TransWritebackClean, addr, 0)
		}
	})

	// L1 miss paths: tol2bus -> L2.
	l1Below := func(addr uint64, write, shared bool, cycle uint64) uint64 {
		t := TransReadReq
		if write {
			t = TransReadExReq
		} else if shared {
			t = TransReadSharedReq
		}
		lat := h.ToL2Bus.Send(t, addr, 64)
		return lat + h.L2.Access(addr, write, shared, cycle+lat) + h.ToL2Bus.Latency()
	}
	h.L1D.SetBelow(l1Below)
	h.L1I.SetBelow(func(addr uint64, write, shared bool, cycle uint64) uint64 {
		return l1Below(addr, false, shared, cycle)
	})

	// L1 evictions: dirty lines write back over tol2bus; clean evictions
	// emit CleanEvict, the Prime+Probe tell from the paper.
	l1Evict := func(addr uint64, dirty bool, cycle uint64) {
		if dirty {
			h.ToL2Bus.Send(TransWritebackDirty, addr, 64)
			h.L2.Access(addr, true, false, cycle)
		} else {
			h.ToL2Bus.Send(TransCleanEvict, addr, 0)
		}
	}
	h.L1D.SetEvict(l1Evict)
	h.L1I.SetEvict(func(addr uint64, dirty bool, cycle uint64) {
		h.ToL2Bus.Send(TransCleanEvict, addr, 0)
	})

	// CLFLUSH propagates through the whole hierarchy to memory.
	h.L1D.SetFlushBelow(func(addr uint64, cycle uint64) uint64 {
		lat := h.ToL2Bus.Send(TransFlushReq, addr, 0)
		_, l2lat := h.L2.Flush(addr, cycle+lat)
		return lat + l2lat
	})
	h.L2.SetFlushBelow(func(addr uint64, cycle uint64) uint64 {
		return h.MemBus.Send(TransFlushReq, addr, 0)
	})
	return h
}

// FetchInst reads instruction memory at pc.
func (h *Hierarchy) FetchInst(pc uint64, cycle uint64) uint64 {
	return h.L1I.Access(pc, false, false, cycle)
}

// ReadData reads addr; shared marks shared-page accesses.
func (h *Hierarchy) ReadData(addr uint64, shared bool, cycle uint64) uint64 {
	return h.L1D.Access(addr, false, shared, cycle)
}

// WriteData writes addr.
func (h *Hierarchy) WriteData(addr uint64, cycle uint64) uint64 {
	return h.L1D.Access(addr, true, false, cycle)
}

// Flush executes CLFLUSH on addr; returns whether the line was present in
// L1D and the total latency (present lines take measurably longer — the
// Flush+Flush timing channel).
func (h *Hierarchy) Flush(addr uint64, cycle uint64) (present bool, lat uint64) {
	return h.L1D.Flush(addr, cycle)
}

// Reset invalidates all caches (between program runs).
func (h *Hierarchy) Reset() {
	h.L1I.InvalidateAll()
	h.L1D.InvalidateAll()
	h.L2.InvalidateAll()
}
