package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perspectron/internal/stats"
)

// fakeMem is a fixed-latency memory backend.
type fakeMem struct {
	lat      uint64
	accesses int
	writes   int
}

func (m *fakeMem) Access(addr uint64, write bool, cycle uint64) uint64 {
	m.accesses++
	if write {
		m.writes++
	}
	return m.lat
}

func newTestCache(t *testing.T) *Cache {
	t.Helper()
	reg := stats.NewRegistry()
	c := New(L1DConfig(), reg)
	c.SetBelow(func(addr uint64, write, shared bool, cycle uint64) uint64 { return 100 })
	reg.Seal()
	return c
}

func TestCacheMissThenHit(t *testing.T) {
	c := newTestCache(t)
	lat1 := c.Access(0x1000, false, false, 0)
	if lat1 < 100 {
		t.Fatalf("miss latency = %d, want >= 100", lat1)
	}
	lat2 := c.Access(0x1000, false, false, 1000)
	if lat2 != 2 {
		t.Fatalf("hit latency = %d, want 2", lat2)
	}
	if c.C.ReadReq.Misses.Value() != 1 || c.C.ReadReq.Hits.Value() != 1 {
		t.Fatalf("miss/hit counters = %v/%v", c.C.ReadReq.Misses.Value(), c.C.ReadReq.Hits.Value())
	}
}

func TestCacheSameLineSameSet(t *testing.T) {
	c := newTestCache(t)
	c.Access(0x1000, false, false, 0)
	// Same 64B line: must hit.
	if lat := c.Access(0x103f, false, false, 1000); lat != 2 {
		t.Fatalf("same-line access missed (lat=%d)", lat)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	reg := stats.NewRegistry()
	cfg := L1DConfig()
	c := New(cfg, reg)
	c.SetBelow(func(addr uint64, write, shared bool, cycle uint64) uint64 { return 100 })
	var evicted []uint64
	c.SetEvict(func(addr uint64, dirty bool, cycle uint64) { evicted = append(evicted, addr) })
	reg.Seal()

	sets := c.Sets()
	lb := uint64(cfg.LineBytes)
	// Fill one set completely, then one more: the first line must be the
	// LRU victim.
	for i := 0; i <= cfg.Ways; i++ {
		addr := uint64(i) * uint64(sets) * lb // all map to set 0
		c.Access(addr, false, false, uint64(i*1000))
	}
	if len(evicted) != 1 {
		t.Fatalf("evictions = %d, want 1", len(evicted))
	}
	if evicted[0] != 0 {
		t.Fatalf("victim = %#x, want 0 (LRU)", evicted[0])
	}
	if c.C.WritebacksClean.Value() != 1 {
		t.Fatalf("clean writebacks = %v", c.C.WritebacksClean.Value())
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	reg := stats.NewRegistry()
	cfg := L1DConfig()
	c := New(cfg, reg)
	c.SetBelow(func(addr uint64, write, shared bool, cycle uint64) uint64 { return 100 })
	dirtyEvicts := 0
	c.SetEvict(func(addr uint64, dirty bool, cycle uint64) {
		if dirty {
			dirtyEvicts++
		}
	})
	reg.Seal()
	sets := uint64(c.Sets())
	lb := uint64(cfg.LineBytes)
	c.Access(0, true, false, 0) // dirty line in set 0
	for i := 1; i <= cfg.Ways; i++ {
		c.Access(uint64(i)*sets*lb, false, false, uint64(i*1000))
	}
	if dirtyEvicts != 1 || c.C.WritebacksDirty.Value() != 1 {
		t.Fatalf("dirty evictions = %d / %v", dirtyEvicts, c.C.WritebacksDirty.Value())
	}
}

func TestFlushPresentVsAbsent(t *testing.T) {
	c := newTestCache(t)
	c.Access(0x2000, false, false, 0)
	present, latP := c.Flush(0x2000, 100)
	if !present {
		t.Fatalf("flush of cached line reported absent")
	}
	absent, latA := c.Flush(0x2000, 200)
	if absent {
		t.Fatalf("flush of flushed line reported present")
	}
	if latP <= latA {
		t.Fatalf("flush timing channel inverted: present=%d absent=%d", latP, latA)
	}
	if c.C.FlushHits.Value() != 1 || c.C.FlushMisses.Value() != 1 {
		t.Fatalf("flush counters %v/%v", c.C.FlushHits.Value(), c.C.FlushMisses.Value())
	}
	if c.Present(0x2000) {
		t.Fatalf("line still present after flush")
	}
}

func TestFlushDirtyWritesBack(t *testing.T) {
	c := newTestCache(t)
	c.Access(0x3000, true, false, 0)
	_, lat := c.Flush(0x3000, 10)
	if c.C.WritebacksDirty.Value() != 1 {
		t.Fatalf("dirty flush did not write back")
	}
	if lat < 4 {
		t.Fatalf("dirty flush latency %d too small", lat)
	}
}

func TestMSHRBlocking(t *testing.T) {
	reg := stats.NewRegistry()
	cfg := L1DConfig()
	cfg.MSHRs = 2
	c := New(cfg, reg)
	c.SetBelow(func(addr uint64, write, shared bool, cycle uint64) uint64 { return 500 })
	reg.Seal()
	// Three misses at the same cycle: third must stall for an MSHR.
	c.Access(0x10000, false, false, 0)
	c.Access(0x20000, false, false, 0)
	c.Access(0x30000, false, false, 0)
	if c.C.BlockedNoMSHRs.Value() == 0 {
		t.Fatalf("no MSHR blocking recorded")
	}
	if c.MSHROccupancy(0) != 2 {
		t.Fatalf("occupancy = %d, want 2", c.MSHROccupancy(0))
	}
}

func TestReadLFB(t *testing.T) {
	c := newTestCache(t)
	if c.ReadLFB(0) {
		t.Fatalf("LFB forward with no outstanding fills")
	}
	c.Access(0x40000, false, false, 0) // outstanding miss
	if !c.ReadLFB(1) {
		t.Fatalf("LFB read did not forward with in-flight miss")
	}
	if c.C.LFBReads.Value() != 2 || c.C.LFBForward.Value() != 1 {
		t.Fatalf("LFB counters %v/%v", c.C.LFBReads.Value(), c.C.LFBForward.Value())
	}
}

func TestSharedAccessUsesReadShared(t *testing.T) {
	c := newTestCache(t)
	c.Access(0x5000, false, true, 0)
	if c.C.ReadSharedReq.Misses.Value() != 1 {
		t.Fatalf("shared read not counted as ReadSharedReq")
	}
	if c.C.ReadReq.Misses.Value() != 0 {
		t.Fatalf("shared read leaked into ReadReq")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := newTestCache(t)
	c.Access(0x1000, false, false, 0)
	c.InvalidateAll()
	if c.Present(0x1000) {
		t.Fatalf("line survived InvalidateAll")
	}
}

func TestBusTransactionDistribution(t *testing.T) {
	reg := stats.NewRegistry()
	b := NewBus("tol2bus", 1, 64, reg)
	reg.Seal()
	b.Send(TransReadSharedReq, 0x1000, 64)
	if b.Trans[TransReadSharedReq].Value() != 1 {
		t.Fatalf("ReadSharedReq not counted")
	}
	if b.Trans[TransReadResp].Value() != 1 {
		t.Fatalf("paired ReadResp not counted")
	}
	b.Send(TransCleanEvict, 0x2000, 0)
	if b.Trans[TransCleanEvict].Value() != 1 {
		t.Fatalf("CleanEvict not counted")
	}
	if b.PktCount.Value() != 3 {
		t.Fatalf("pkt count = %v", b.PktCount.Value())
	}
}

func TestBusSnoopFilter(t *testing.T) {
	reg := stats.NewRegistry()
	b := NewBus("membus", 2, 64, reg)
	reg.Seal()
	b.Send(TransReadReq, 0x1000, 64)
	hits0 := b.SnoopHits.Value()
	b.Send(TransReadReq, 0x1000, 64) // same line again
	if b.SnoopHits.Value() <= hits0 {
		t.Fatalf("repeat request did not hit snoop filter")
	}
}

func TestTransTypeString(t *testing.T) {
	if TransCleanEvict.String() != "CleanEvict" {
		t.Fatalf("name = %q", TransCleanEvict.String())
	}
	if TransType(99).String() != "unknown" {
		t.Fatalf("out-of-range trans type name")
	}
}

func TestHierarchyEndToEnd(t *testing.T) {
	reg := stats.NewRegistry()
	mem := &fakeMem{lat: 200}
	h := NewHierarchy(reg, mem)
	reg.Seal()

	// Cold read goes all the way to memory.
	lat := h.ReadData(0x100000, false, 0)
	if mem.accesses != 1 {
		t.Fatalf("memory accesses = %d", mem.accesses)
	}
	if lat < 200 {
		t.Fatalf("cold read latency %d < memory latency", lat)
	}
	// Warm read hits L1.
	if lat := h.ReadData(0x100000, false, 1000); lat != 2 {
		t.Fatalf("warm latency = %d", lat)
	}
	// Flush then read: L1 and L2 both miss again.
	h.Flush(0x100000, 2000)
	if h.L2.Present(0x100000) {
		t.Fatalf("flush did not propagate to L2")
	}
	h.ReadData(0x100000, false, 3000)
	if mem.accesses != 2 {
		t.Fatalf("post-flush read did not reach memory (%d)", mem.accesses)
	}
}

func TestHierarchySharedReadShowsOnBus(t *testing.T) {
	reg := stats.NewRegistry()
	h := NewHierarchy(reg, &fakeMem{lat: 100})
	reg.Seal()
	h.ReadData(0x200000, true, 0)
	if h.ToL2Bus.Trans[TransReadSharedReq].Value() != 1 {
		t.Fatalf("ReadSharedReq not on tol2bus")
	}
	if h.MemBus.Trans[TransReadSharedReq].Value() != 1 {
		t.Fatalf("ReadSharedReq not on membus")
	}
}

func TestHierarchyCleanEvictOnBus(t *testing.T) {
	reg := stats.NewRegistry()
	h := NewHierarchy(reg, &fakeMem{lat: 100})
	reg.Seal()
	// Prime one L1D set past associativity with clean lines.
	sets := uint64(h.L1D.Sets())
	lb := uint64(h.L1D.LineBytes())
	for i := 0; i <= h.L1D.Ways(); i++ {
		h.ReadData(uint64(i)*sets*lb, false, uint64(i)*1000)
	}
	if h.ToL2Bus.Trans[TransCleanEvict].Value() == 0 {
		t.Fatalf("priming produced no CleanEvict transactions")
	}
}

func TestHierarchyInstFetch(t *testing.T) {
	reg := stats.NewRegistry()
	h := NewHierarchy(reg, &fakeMem{lat: 100})
	reg.Seal()
	h.FetchInst(0x400000, 0)
	if h.L1I.C.ReadReq.Misses.Value() != 1 {
		t.Fatalf("icache miss not counted")
	}
	if lat := h.FetchInst(0x400000, 100); lat != 2 {
		t.Fatalf("icache warm fetch latency = %d", lat)
	}
}

// Property: hits + misses == accesses for any access stream, per request
// class and overall.
func TestQuickHitMissConservation(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		reg := stats.NewRegistry()
		c := New(L1DConfig(), reg)
		c.SetBelow(func(addr uint64, write, shared bool, cycle uint64) uint64 { return 50 })
		reg.Seal()
		n := len(addrs)
		if len(writes) < n {
			n = len(writes)
		}
		for i := 0; i < n; i++ {
			c.Access(uint64(addrs[i])<<4, writes[i], false, uint64(i)*10)
		}
		ok := func(r ReqStats) bool {
			return r.Hits.Value()+r.Misses.Value() == r.Accesses.Value()
		}
		return ok(c.C.ReadReq) && ok(c.C.WriteReq) &&
			c.C.OverallHits.Value()+c.C.OverallMisses.Value() == c.C.OverallAccesses.Value()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any sequence of accesses and flushes, Present agrees with
// a shadow model of the cache contents for the probed address set.
func TestQuickFlushRemoves(t *testing.T) {
	f := func(ops []uint8) bool {
		reg := stats.NewRegistry()
		c := New(L1IConfig(), reg) // small cache: more evictions
		c.SetBelow(func(addr uint64, write, shared bool, cycle uint64) uint64 { return 10 })
		reg.Seal()
		for i, op := range ops {
			addr := uint64(op&0x3f) << 6
			if op&0x40 != 0 {
				c.Flush(addr, uint64(i))
				if c.Present(addr) {
					return false
				}
			} else {
				c.Access(addr, false, false, uint64(i))
				if !c.Present(addr) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}
