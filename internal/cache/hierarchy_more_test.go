package cache

import (
	"testing"

	"perspectron/internal/stats"
)

func newTestHierarchy(t *testing.T) (*Hierarchy, *fakeMem) {
	t.Helper()
	reg := stats.NewRegistry()
	mem := &fakeMem{lat: 150}
	h := NewHierarchy(reg, mem)
	reg.Seal()
	return h, mem
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h, mem := newTestHierarchy(t)
	// Fill an L1D set past associativity; victims land in L2 (clean
	// evictions notify, but the line was filled in L2 on the way in).
	sets := uint64(h.L1D.Sets())
	for i := 0; i <= h.L1D.Ways(); i++ {
		h.ReadData(uint64(i)*sets*64, false, uint64(i)*1000)
	}
	memBefore := mem.accesses
	// The evicted line 0 misses L1 but must hit L2 — no memory access.
	lat := h.ReadData(0, false, 100_000)
	if mem.accesses != memBefore {
		t.Fatalf("L2 hit went to memory")
	}
	if lat < 20 {
		t.Fatalf("L2 hit latency %d implausibly low", lat)
	}
}

func TestWriteMissFetchesExclusive(t *testing.T) {
	h, _ := newTestHierarchy(t)
	h.WriteData(0x80000, 0)
	if h.ToL2Bus.Trans[TransReadExReq].Value() != 1 {
		t.Fatalf("write miss did not issue ReadExReq")
	}
}

func TestDirtyL1EvictionWritesToL2(t *testing.T) {
	h, _ := newTestHierarchy(t)
	sets := uint64(h.L1D.Sets())
	h.WriteData(0, 0) // dirty line in set 0
	for i := 1; i <= h.L1D.Ways(); i++ {
		h.ReadData(uint64(i)*sets*64, false, uint64(i)*1000)
	}
	if h.ToL2Bus.Trans[TransWritebackDirty].Value() == 0 {
		t.Fatalf("dirty eviction produced no WritebackDirty")
	}
}

func TestRekeyRemapsSets(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(L1DConfig(), reg)
	c.SetBelow(func(addr uint64, write, shared bool, cycle uint64) uint64 { return 50 })
	reg.Seal()

	// Two addresses that conflict under the direct mapping.
	sets := uint64(c.Sets())
	a, b := uint64(0), sets*64
	c.Access(a, false, false, 0)
	c.Access(b, false, false, 0)
	if !c.Present(a) || !c.Present(b) {
		t.Fatalf("lines not cached")
	}

	c.Rekey(0xdeadbeef, 100)
	if c.C.Rekeys.Value() != 1 {
		t.Fatalf("rekey not counted")
	}
	if c.Present(a) || c.Present(b) {
		t.Fatalf("rekey left stale lines reachable")
	}
	// Post-rekey accesses work normally and use the scrambled index: a
	// full direct-mapped conflict set no longer necessarily collides.
	c.Access(a, false, false, 200)
	if !c.Present(a) {
		t.Fatalf("post-rekey fill failed")
	}
}

func TestRekeyWritesBackDirty(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(L1DConfig(), reg)
	c.SetBelow(func(addr uint64, write, shared bool, cycle uint64) uint64 { return 50 })
	dirtyEvicts := 0
	c.SetEvict(func(addr uint64, dirty bool, cycle uint64) {
		if dirty {
			dirtyEvicts++
		}
	})
	reg.Seal()
	c.Access(0x1000, true, false, 0)
	c.Rekey(7, 10)
	if dirtyEvicts != 1 {
		t.Fatalf("rekey lost dirty data (evictions=%d)", dirtyEvicts)
	}
}

func TestScrambledIndexStillCachesCorrectly(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(L1DConfig(), reg)
	c.SetBelow(func(addr uint64, write, shared bool, cycle uint64) uint64 { return 50 })
	reg.Seal()
	c.Rekey(0x1234, 0)
	// Basic cache semantics must survive scrambling: fill then hit, and
	// flush then miss.
	for i := 0; i < 64; i++ {
		addr := uint64(i) * 4096
		c.Access(addr, false, false, uint64(i))
		if !c.Present(addr) {
			t.Fatalf("scrambled fill lost addr %#x", addr)
		}
	}
	c.Flush(0, 1000)
	if c.Present(0) {
		t.Fatalf("scrambled flush failed")
	}
}
