package cache

import "perspectron/internal/stats"

// TransType enumerates the coherent bus transaction types whose distribution
// gem5 reports as <bus>.trans_dist::<type>. The paper's feature analysis
// leans on ReadSharedReq, ReadResp, CleanEvict and WritebackClean.
type TransType int

const (
	TransReadReq TransType = iota
	TransReadResp
	TransWriteReq
	TransWriteResp
	TransReadSharedReq
	TransReadExReq
	TransReadExResp
	TransWritebackDirty
	TransWritebackClean
	TransCleanEvict
	TransUpgradeReq
	TransFlushReq
	TransInvalidateReq
	TransInvalidateResp
	NumTransTypes
)

var transNames = [NumTransTypes]string{
	"ReadReq", "ReadResp", "WriteReq", "WriteResp", "ReadSharedReq",
	"ReadExReq", "ReadExResp", "WritebackDirty", "WritebackClean",
	"CleanEvict", "UpgradeReq", "FlushReq", "InvalidateReq", "InvalidateResp",
}

// String returns the gem5 transaction name.
func (t TransType) String() string {
	if t < 0 || t >= NumTransTypes {
		return "unknown"
	}
	return transNames[t]
}

// Bus models a transaction-counting crossbar between cache levels. It is not
// a timing model of arbitration; it adds a fixed per-hop latency and records
// the transaction distribution, snoop filter activity and byte throughput,
// which is what the detector observes.
type Bus struct {
	Name    string
	latency uint64

	Trans [NumTransTypes]*stats.Counter

	SnoopRequests *stats.Counter
	SnoopHits     *stats.Counter
	SnoopTraffic  *stats.Counter
	PktCount      *stats.Counter
	PktSize       *stats.Counter
	ReqLayerBusy  *stats.Counter
	RespLayerBusy *stats.Counter

	PktSizeDist []*stats.Counter

	snoopSet map[uint64]struct{}
	lineMask uint64
}

// NewBus creates a bus named name (e.g. "tol2bus", "membus") with the given
// per-hop latency and registers its counters.
func NewBus(name string, latency uint64, lineBytes int, reg *stats.Registry) *Bus {
	b := &Bus{
		Name:     name,
		latency:  latency,
		snoopSet: make(map[uint64]struct{}),
		lineMask: ^uint64(lineBytes - 1),
	}
	for t := TransType(0); t < NumTransTypes; t++ {
		b.Trans[t] = reg.NewRaw(stats.CompBus, name+".trans_dist::"+t.String(),
			name+" "+t.String()+" transactions")
	}
	b.SnoopRequests = reg.NewRaw(stats.CompBus, name+".snoop_filter.tot_requests", "snoop filter requests")
	b.SnoopHits = reg.NewRaw(stats.CompBus, name+".snoop_filter.hit_single_requests", "snoop filter hits")
	b.SnoopTraffic = reg.NewRaw(stats.CompBus, name+".snoop_traffic", "snoop traffic bytes")
	b.PktCount = reg.NewRaw(stats.CompBus, name+".pkt_count", "total packets")
	b.PktSize = reg.NewRaw(stats.CompBus, name+".pkt_size", "total packet bytes")
	b.ReqLayerBusy = reg.NewRaw(stats.CompBus, name+".reqLayer0.occupancy", "request layer occupancy")
	b.RespLayerBusy = reg.NewRaw(stats.CompBus, name+".respLayer0.occupancy", "response layer occupancy")
	b.PktSizeDist = distCounters(reg, stats.CompBus, name+".pkt_size_dist", 8)
	return b
}

// Send records a transaction of type t carrying bytes payload and returns
// the bus hop latency. Request types implicitly generate their paired
// response transaction (ReadReq -> ReadResp etc.), matching how gem5's
// distribution counts both directions.
func (b *Bus) Send(t TransType, addr uint64, bytes int) uint64 {
	b.record(t, addr, bytes)
	switch t {
	case TransReadReq, TransReadSharedReq:
		b.record(TransReadResp, addr, bytes)
	case TransReadExReq:
		b.record(TransReadExResp, addr, bytes)
	case TransWriteReq:
		b.record(TransWriteResp, addr, 0)
	case TransInvalidateReq:
		b.record(TransInvalidateResp, addr, 0)
	}
	return b.latency
}

func (b *Bus) record(t TransType, addr uint64, bytes int) {
	b.Trans[t].Inc()
	b.PktCount.Inc()
	b.PktSize.Add(float64(bytes))
	b.PktSizeDist[log2Bucket(uint64(bytes)+1, len(b.PktSizeDist))].Inc()
	b.ReqLayerBusy.Add(float64(b.latency))
	if isResponse(t) {
		b.RespLayerBusy.Add(float64(b.latency))
	}
	// Snoop filter: track which lines have crossed this bus; repeat
	// requests for tracked lines hit in the filter.
	b.SnoopRequests.Inc()
	ln := addr & b.lineMask
	if _, ok := b.snoopSet[ln]; ok {
		b.SnoopHits.Inc()
		b.SnoopTraffic.Add(float64(bytes))
	} else {
		b.snoopSet[ln] = struct{}{}
		// Bound memory: the snoop filter is a finite structure.
		if len(b.snoopSet) > 1<<16 {
			b.snoopSet = make(map[uint64]struct{})
		}
	}
}

func isResponse(t TransType) bool {
	switch t {
	case TransReadResp, TransWriteResp, TransReadExResp, TransInvalidateResp:
		return true
	}
	return false
}

// Latency returns the per-hop latency.
func (b *Bus) Latency() uint64 { return b.latency }
