package cache

import (
	"testing"

	"perspectron/internal/stats"
)

func TestMissLatencyDistPopulates(t *testing.T) {
	c := newTestCache(t)
	for i := 0; i < 20; i++ {
		c.Access(uint64(i)<<12, false, false, uint64(i)*10)
	}
	var mass float64
	for _, b := range c.C.MissLatencyDist {
		mass += b.Value()
	}
	if mass != 20 {
		t.Fatalf("miss latency histogram mass = %v, want 20", mass)
	}
}

func TestMSHROccDistPopulates(t *testing.T) {
	c := newTestCache(t)
	// Parallel misses at the same cycle pile occupancy into higher buckets.
	for i := 0; i < 6; i++ {
		c.Access(uint64(i)<<12, false, false, 0)
	}
	high := 0.0
	for i := 2; i < len(c.C.MSHROccDist); i++ {
		high += c.C.MSHROccDist[i].Value()
	}
	if high == 0 {
		t.Fatalf("MSHR occupancy never exceeded 1 during a parallel burst")
	}
}

func TestBusPktSizeDist(t *testing.T) {
	reg := stats.NewRegistry()
	b := NewBus("membus", 2, 64, reg)
	reg.Seal()
	b.Send(TransReadReq, 0x1000, 64) // request + response
	b.Send(TransCleanEvict, 0x2000, 0)
	var mass float64
	for _, c := range b.PktSizeDist {
		mass += c.Value()
	}
	if mass != 3 {
		t.Fatalf("pkt size histogram mass = %v, want 3", mass)
	}
	// Zero-byte and 64-byte packets land in different buckets.
	if b.PktSizeDist[0].Value() == 0 {
		t.Fatalf("zero-size packet bucket empty")
	}
}

func TestLog2Bucket(t *testing.T) {
	cases := []struct {
		v    uint64
		n    int
		want int
	}{
		{0, 8, 0}, {1, 8, 0}, {2, 8, 1}, {3, 8, 1}, {4, 8, 2},
		{1 << 20, 8, 7}, // clamps to top bucket
	}
	for _, c := range cases {
		if got := log2Bucket(c.v, c.n); got != c.want {
			t.Fatalf("log2Bucket(%d,%d) = %d, want %d", c.v, c.n, got, c.want)
		}
	}
}
