// Package isa defines the abstract micro-op model shared by the pipeline
// simulator and the workload generators. A workload is a stream of Ops on
// the committed path; control-flow and faulting ops may carry a Transient
// body — the ops the out-of-order core executes speculatively and then
// squashes when the misprediction or fault resolves. Transient bodies are
// how the attack generators express Spectre/Meltdown disclosure gadgets.
package isa

// OpClass mirrors gem5's operation classes; the iq.fu_full::<class> and
// commit.op_class_0::<class> counter families are indexed by it.
type OpClass int

const (
	NoOpClass OpClass = iota
	IntAlu
	IntMult
	IntDiv
	FloatAdd
	FloatCmp
	FloatCvt
	FloatMult
	FloatDiv
	FloatSqrt
	SimdAdd
	SimdAlu
	SimdCmp
	SimdCvt
	SimdMisc
	SimdMult
	SimdShift
	SimdFloatAdd
	SimdFloatMult
	MemRead
	MemWrite
	FloatMemRead
	FloatMemWrite
	InstPrefetch
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{
	"No_OpClass", "IntAlu", "IntMult", "IntDiv", "FloatAdd", "FloatCmp",
	"FloatCvt", "FloatMult", "FloatDiv", "FloatSqrt", "SimdAdd", "SimdAlu",
	"SimdCmp", "SimdCvt", "SimdMisc", "SimdMult", "SimdShift",
	"SimdFloatAdd", "SimdFloatMult", "MemRead", "MemWrite", "FloatMemRead",
	"FloatMemWrite", "InstPrefetch",
}

// String returns the gem5-style class name.
func (c OpClass) String() string {
	if c < 0 || c >= NumOpClasses {
		return "invalid"
	}
	return opClassNames[c]
}

// Kind is the structural kind of an op, orthogonal to its FU class.
type Kind int

const (
	// KindPlain is a non-memory, non-control computational op.
	KindPlain Kind = iota
	// KindLoad reads memory at Addr.
	KindLoad
	// KindStore writes memory at Addr.
	KindStore
	// KindBranch is a conditional branch; Taken is the actual direction.
	KindBranch
	// KindCall pushes Target's return address on the RAS.
	KindCall
	// KindRet returns; Target is the actual return address.
	KindRet
	// KindIndirect is an indirect jump/call; Target is the actual target.
	KindIndirect
	// KindFlush is CLFLUSH of Addr: non-speculative, serializing at commit.
	KindFlush
	// KindFence is a memory barrier (mfence/lfence).
	KindFence
	// KindSerialize is a fully serializing instruction (cpuid-like).
	KindSerialize
	// KindQuiesce is a pause/monitor-style wait of WaitCycles cycles, the
	// idle "wait for the victim" phase of cache attacks.
	KindQuiesce
	// KindNop commits without doing work.
	KindNop
)

// Op is one micro-operation on the committed path.
type Op struct {
	Kind  Kind
	Class OpClass

	PC   uint64 // instruction address (drives I-cache and predictors)
	Addr uint64 // data address for loads/stores/flushes

	// Shared marks loads of shared (library) pages, which travel as
	// ReadSharedReq bus transactions — the Flush+Reload substrate.
	Shared bool

	// Taken is the actual direction of a KindBranch.
	Taken bool
	// Target is the actual target of calls/returns/indirect branches.
	Target uint64

	// DependsOnPrev serializes this op's execution behind the previous
	// op's completion (address dependence: pointer chasing, or the
	// secret-dependent index of a disclosure gadget).
	DependsOnPrev bool

	// FBRead marks an MDS-style load that samples the line fill buffer
	// (the CacheOut primitive).
	FBRead bool

	// AddrDelayed marks a store whose address resolves late (dependent on
	// a slow computation). Younger loads to the same line speculatively
	// bypass it and read stale data — the SpectreV4 (speculative store
	// bypass) window. Such loads run their Transient body when the bypass
	// occurs and are then replayed.
	AddrDelayed bool

	// WaitCycles is the quiesce duration for KindQuiesce.
	WaitCycles uint64

	// Transient is executed speculatively and squashed when this op turns
	// out to be a mispredicted branch/return/indirect or a faulting load.
	// It is ignored for ops that resolve correctly.
	Transient []Op
}

// IsMem reports whether the op accesses data memory.
func (o *Op) IsMem() bool {
	return o.Kind == KindLoad || o.Kind == KindStore
}

// IsControl reports whether the op is a control-flow instruction.
func (o *Op) IsControl() bool {
	switch o.Kind {
	case KindBranch, KindCall, KindRet, KindIndirect:
		return true
	}
	return false
}

// IsSerializing reports whether the op drains the pipeline before commit.
func (o *Op) IsSerializing() bool {
	switch o.Kind {
	case KindFlush, KindFence, KindSerialize:
		return true
	}
	return false
}

// DefaultClass returns a sensible FU class for a kind when the generator
// does not specify one.
func DefaultClass(k Kind) OpClass {
	switch k {
	case KindLoad:
		return MemRead
	case KindStore:
		return MemWrite
	case KindBranch, KindCall, KindRet, KindIndirect:
		return IntAlu
	case KindFlush, KindFence, KindSerialize, KindQuiesce, KindNop:
		return NoOpClass
	default:
		return IntAlu
	}
}

// Stream is a pull-based op source. Next returns the next committed-path op;
// ok is false when the program ends.
type Stream interface {
	Next() (op Op, ok bool)
}

// SliceStream adapts a fixed op slice into a Stream.
type SliceStream struct {
	ops []Op
	i   int
}

// NewSliceStream returns a Stream over ops.
func NewSliceStream(ops []Op) *SliceStream { return &SliceStream{ops: ops} }

// Next implements Stream.
func (s *SliceStream) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

// FuncStream adapts a generator function into a Stream.
type FuncStream func() (Op, bool)

// Next implements Stream.
func (f FuncStream) Next() (Op, bool) { return f() }
