package isa

import "testing"

func TestOpClassNames(t *testing.T) {
	for c := OpClass(0); c < NumOpClasses; c++ {
		if c.String() == "" || c.String() == "invalid" {
			t.Fatalf("class %d unnamed", c)
		}
	}
	if NoOpClass.String() != "No_OpClass" {
		t.Fatalf("NoOpClass = %q", NoOpClass.String())
	}
	if MemRead.String() != "MemRead" {
		t.Fatalf("MemRead = %q", MemRead.String())
	}
	if OpClass(-1).String() != "invalid" || OpClass(999).String() != "invalid" {
		t.Fatalf("out-of-range class names")
	}
}

func TestOpPredicates(t *testing.T) {
	cases := []struct {
		kind        Kind
		mem, ctrl   bool
		serializing bool
	}{
		{KindPlain, false, false, false},
		{KindLoad, true, false, false},
		{KindStore, true, false, false},
		{KindBranch, false, true, false},
		{KindCall, false, true, false},
		{KindRet, false, true, false},
		{KindIndirect, false, true, false},
		{KindFlush, false, false, true},
		{KindFence, false, false, true},
		{KindSerialize, false, false, true},
		{KindQuiesce, false, false, false},
		{KindNop, false, false, false},
	}
	for _, c := range cases {
		op := Op{Kind: c.kind}
		if op.IsMem() != c.mem {
			t.Errorf("kind %d IsMem = %v", c.kind, op.IsMem())
		}
		if op.IsControl() != c.ctrl {
			t.Errorf("kind %d IsControl = %v", c.kind, op.IsControl())
		}
		if op.IsSerializing() != c.serializing {
			t.Errorf("kind %d IsSerializing = %v", c.kind, op.IsSerializing())
		}
	}
}

func TestDefaultClass(t *testing.T) {
	if DefaultClass(KindLoad) != MemRead {
		t.Fatalf("load class")
	}
	if DefaultClass(KindStore) != MemWrite {
		t.Fatalf("store class")
	}
	if DefaultClass(KindBranch) != IntAlu {
		t.Fatalf("branch class")
	}
	if DefaultClass(KindFlush) != NoOpClass {
		t.Fatalf("flush class")
	}
}

func TestSliceStream(t *testing.T) {
	s := NewSliceStream([]Op{{PC: 1}, {PC: 2}})
	op, ok := s.Next()
	if !ok || op.PC != 1 {
		t.Fatalf("first op wrong")
	}
	op, ok = s.Next()
	if !ok || op.PC != 2 {
		t.Fatalf("second op wrong")
	}
	if _, ok := s.Next(); ok {
		t.Fatalf("stream did not end")
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	s := FuncStream(func() (Op, bool) {
		n++
		return Op{PC: uint64(n)}, n <= 2
	})
	if op, ok := s.Next(); !ok || op.PC != 1 {
		t.Fatalf("func stream first op wrong")
	}
	s.Next()
	if _, ok := s.Next(); ok {
		t.Fatalf("func stream did not end")
	}
}
