package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perspectron/internal/telemetry"
)

func TestVerdictScannerSkipsCorruptKeepsPartial(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	input := `{"worker":"w","episode":1,"sample":1,"mode":"detector","score":0.5,"flagged":true}` + "\n" +
		"this is not json\n" +
		"\n" + // blank lines are tolerated silently
		`{"worker":"w","episode":1,"sample":2,"mode":"detector","score":-0.2}` + "\n"
	partial := `{"worker":"w","episode":1,"sa` // writer mid-record, no newline
	sc := NewVerdictScanner(strings.NewReader(input + partial))

	var recs []VerdictRecord
	for {
		rec, ok := sc.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("decoded %d records, want 2", len(recs))
	}
	if !recs[0].Flagged || recs[0].Sample != 1 || recs[1].Sample != 2 {
		t.Fatalf("records decoded wrong: %+v", recs)
	}
	if sc.Corrupt() != 1 {
		t.Fatalf("corrupt count = %d, want 1", sc.Corrupt())
	}
	if sc.Err() != nil {
		t.Fatalf("scanner error: %v", sc.Err())
	}
	// The trailing partial line is NOT consumed: the resume offset stops at
	// the last complete line, so a later read picks the record up whole.
	if got, want := sc.Consumed(), int64(len(input)); got != want {
		t.Fatalf("consumed %d bytes, want %d (partial line must not count)", got, want)
	}
	if got := reg.CounterValue("perspectron_verdict_corrupt_lines_total"); got != 1 {
		t.Fatalf("corrupt-line counter = %d, want 1", got)
	}
}

func TestReadVerdictLogOffsetResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "verdicts.jsonl")

	// A missing file is an empty tail, not an error.
	recs, corrupt, next, err := ReadVerdictLog(path, 0)
	if err != nil || len(recs) != 0 || corrupt != 0 || next != 0 {
		t.Fatalf("missing file: recs=%d corrupt=%d next=%d err=%v", len(recs), corrupt, next, err)
	}

	full := `{"worker":"w","episode":1,"sample":1,"mode":"detector","score":1,"version":"abc"}` + "\n" +
		"garbage line\n" +
		`{"worker":"w","episode":1,"sample":2,"mode":"detector","score":2}` + "\n"
	partial := `{"worker":"w","episode":1,"sample":3`
	if err := os.WriteFile(path, []byte(full+partial), 0o644); err != nil {
		t.Fatal(err)
	}

	recs, corrupt, next, err = ReadVerdictLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || corrupt != 1 {
		t.Fatalf("first tail: recs=%d corrupt=%d, want 2/1", len(recs), corrupt)
	}
	if recs[0].Version != "abc" {
		t.Fatalf("version not decoded: %+v", recs[0])
	}
	if next != int64(len(full)) {
		t.Fatalf("resume offset = %d, want %d", next, len(full))
	}

	// The writer finishes the partial record and appends another; resuming
	// from the returned offset sees both, with nothing dropped or re-read.
	rest := `,"mode":"detector","score":3}` + "\n" +
		`{"worker":"w","episode":2,"sample":4,"mode":"detector","score":4}` + "\n"
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(rest); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, corrupt, next2, err := ReadVerdictLog(path, next)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || corrupt != 0 {
		t.Fatalf("resumed tail: recs=%d corrupt=%d, want 2/0", len(recs), corrupt)
	}
	if recs[0].Sample != 3 || recs[1].Sample != 4 {
		t.Fatalf("resumed records wrong: %+v", recs)
	}
	if want := next + int64(len(partial)+len(rest)); next2 != want {
		t.Fatalf("final offset = %d, want %d", next2, want)
	}
}
