package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perspectron"
	"perspectron/internal/isa"
	"perspectron/internal/retry"
	"perspectron/internal/telemetry"
	"perspectron/internal/workload"
)

// --- shared trained models (one training run for the whole package) ------

var (
	modelsOnce sync.Once
	testDet    *perspectron.Detector
	testCls    *perspectron.Classifier
	modelsErr  error
)

func testModels(t testing.TB) (*perspectron.Detector, *perspectron.Classifier) {
	t.Helper()
	modelsOnce.Do(func() {
		opts := perspectron.DefaultOptions()
		opts.MaxInsts = 100_000
		opts.Runs = 1
		testDet, modelsErr = perspectron.Train(perspectron.TrainingWorkloads(), opts)
		if modelsErr != nil {
			return
		}
		opts.MaxInsts = 150_000
		testCls, modelsErr = perspectron.TrainClassifier(perspectron.TrainingWorkloads(), opts)
	})
	if modelsErr != nil {
		t.Fatal(modelsErr)
	}
	return testDet, testCls
}

// fastBackoff keeps supervisor tests quick and deterministic.
func fastBackoff() retry.Policy {
	return retry.Policy{Base: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2, Jitter: 0.1}
}

// --- synthetic workloads -------------------------------------------------

// plainStream emits computational ops, ending after limit when > 0.
type plainStream struct {
	n     uint64
	limit uint64
}

func (s *plainStream) Next() (isa.Op, bool) {
	if s.limit > 0 && s.n >= s.limit {
		return isa.Op{}, false
	}
	s.n++
	return isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu, PC: 0x4000 + 4*s.n}, true
}

// panicProg panics mid-stream on its first `failures` runs, then behaves —
// the worker-panic resilience case.
type panicProg struct {
	failures int32
	attempts atomic.Int32
}

func (p *panicProg) Info() workload.Info {
	return workload.Info{Name: "panicker", Label: workload.Benign, Category: "test"}
}

func (p *panicProg) Stream(_ *rand.Rand) isa.Stream {
	n := p.attempts.Add(1)
	return &panicStream{panics: n <= p.failures}
}

type panicStream struct {
	n      uint64
	panics bool
}

func (s *panicStream) Next() (isa.Op, bool) {
	s.n++
	if s.panics && s.n > 5_000 {
		panic("workload bug")
	}
	return isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu, PC: 0x4000 + 4*s.n}, true
}

// stallProg delivers ops briskly until stallAfter, then crawls (delay per
// op) for stallOps more ops and ends. The self-termination bound matters:
// the producer goroutine only notices cancellation between ops, so an
// unbounded stall would outlive the test.
type stallProg struct {
	stallAfter uint64
	delay      time.Duration
	stallOps   uint64
}

func (p *stallProg) Info() workload.Info {
	return workload.Info{Name: "staller", Label: workload.Benign, Category: "test"}
}

func (p *stallProg) Stream(_ *rand.Rand) isa.Stream {
	return &stallStream{p: p}
}

type stallStream struct {
	p *stallProg
	n uint64
}

func (s *stallStream) Next() (isa.Op, bool) {
	s.n++
	if s.n > s.p.stallAfter {
		if s.n > s.p.stallAfter+s.p.stallOps {
			return isa.Op{}, false
		}
		time.Sleep(s.p.delay)
	}
	return isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu, PC: 0x4000 + 4*s.n}, true
}

// --- unit tests ----------------------------------------------------------

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Minute)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if opened := b.failure(); opened {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
		if !b.allow() {
			t.Fatalf("closed breaker refused an episode")
		}
	}
	if !b.failure() {
		t.Fatalf("third failure did not open the breaker")
	}
	if b.allow() {
		t.Fatalf("open breaker admitted an episode before cooldown")
	}
	now = now.Add(time.Minute) // cooldown elapsed → half-open trial
	if !b.allow() {
		t.Fatalf("cooled-down breaker refused the trial episode")
	}
	if !b.failure() { // failed trial re-opens immediately
		t.Fatalf("failed half-open trial did not re-open")
	}
	now = now.Add(time.Minute)
	if !b.allow() {
		t.Fatalf("second trial refused")
	}
	b.success()
	state, failures, trips := b.snapshot()
	if state != "closed" || failures != 0 || trips != 2 {
		t.Fatalf("after success: state=%s failures=%d trips=%d, want closed/0/2", state, failures, trips)
	}
}

func TestLadderWalksDownAndClimbsBack(t *testing.T) {
	l := newLadder(0.9, 0.5, 0.05, true)
	if mode, _ := l.observe(1.0); mode != perspectron.ModeClassifier {
		t.Fatalf("full coverage mode = %s, want classifier", mode)
	}
	// Sustained partial coverage: classifier floor breaks first...
	var mode perspectron.ServeMode
	for i := 0; i < 20; i++ {
		mode, _ = l.observe(0.7)
	}
	if mode != perspectron.ModeDetector {
		t.Fatalf("EWMA 0.7 mode = %s, want detector", mode)
	}
	// ...then the detector floor.
	for i := 0; i < 20; i++ {
		mode, _ = l.observe(0.3)
	}
	if mode != perspectron.ModeThreshold {
		t.Fatalf("EWMA 0.3 mode = %s, want threshold", mode)
	}
	// Climb back is one rung per observation past floor+hysteresis.
	for i := 0; i < 50 && mode != perspectron.ModeClassifier; i++ {
		mode, _ = l.observe(1.0)
	}
	if mode != perspectron.ModeClassifier {
		t.Fatalf("full coverage never climbed back to classifier (mode=%s)", mode)
	}
	// Without a classifier the top rung is the detector.
	l2 := newLadder(0.9, 0.5, 0.05, false)
	if mode, _ := l2.observe(1.0); mode != perspectron.ModeDetector {
		t.Fatalf("detector-only ladder mode = %s, want detector", mode)
	}
}

func TestLadderHysteresisPreventsFlapping(t *testing.T) {
	l := newLadder(0.9, 0.5, 0.05, true)
	for i := 0; i < 30; i++ {
		l.observe(0.85) // below the classifier floor
	}
	// Hovering just above the floor but inside the hysteresis band must not
	// climb back.
	changes := 0
	for i := 0; i < 30; i++ {
		if _, changed := l.observe(0.92); changed {
			changes++
		}
	}
	if changes != 0 {
		t.Fatalf("ladder flapped %d times inside the hysteresis band", changes)
	}
	if mode, _ := l.snapshot(); mode != perspectron.ModeDetector {
		t.Fatalf("mode = %s, want detector held by hysteresis", mode)
	}
}

func TestVerdictLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := newVerdictLog(&buf)
	l.record(VerdictRecord{Worker: "w", Episode: 1, Sample: 2, Mode: "detector", Score: 0.5, Flagged: true, Coverage: 1})
	l.record(VerdictRecord{Worker: "w", Episode: 1, Sample: 3, Mode: "threshold", Score: -0.1, Coverage: 0.4})
	if err := l.flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || l.count() != 2 {
		t.Fatalf("wrote %d lines, counted %d, want 2/2", len(lines), l.count())
	}
	sc := NewVerdictScanner(strings.NewReader(buf.String()))
	rec, ok := sc.Next()
	if !ok {
		t.Fatalf("scanner decoded no records (err %v)", sc.Err())
	}
	if rec.Mode != "detector" || !rec.Flagged {
		t.Fatalf("round trip lost fields: %+v", rec)
	}
	// Nil log: all operations are no-ops.
	var nilLog *verdictLog
	nilLog.record(VerdictRecord{})
	if nilLog.flush() != nil || nilLog.count() != 0 {
		t.Fatalf("nil verdict log misbehaved")
	}
}

// --- service tests -------------------------------------------------------

func TestServiceScoresAndLogsVerdicts(t *testing.T) {
	det, cls := testModels(t)
	var buf bytes.Buffer
	s, err := New(Config{
		Detector:    det,
		Classifier:  cls,
		Workloads:   []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
		MaxInsts:    60_000,
		MaxEpisodes: 2,
		Backoff:     fastBackoff(),
		VerdictLog:  NewVerdictLog(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Run(ctx); err != nil {
		t.Fatalf("run: %v", err)
	}
	h := s.Health()
	if len(h.Workers) != 1 || h.Workers[0].Episodes != 2 {
		t.Fatalf("health = %+v, want 2 completed episodes", h.Workers)
	}
	if h.Workers[0].Mode != "classifier" {
		t.Fatalf("clean run degraded to %s", h.Workers[0].Mode)
	}
	flagged, total := 0, 0
	sc := NewVerdictScanner(bytes.NewReader(buf.Bytes()))
	for {
		rec, ok := sc.Next()
		if !ok {
			break
		}
		total++
		if rec.Flagged {
			flagged++
		}
	}
	if sc.Corrupt() != 0 || sc.Err() != nil {
		t.Fatalf("verdict log unparseable: corrupt=%d err=%v", sc.Corrupt(), sc.Err())
	}
	if total == 0 || flagged == 0 {
		t.Fatalf("spectreV1 produced %d verdicts, %d flagged", total, flagged)
	}
}

func TestServiceSurvivesWorkloadPanics(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	det, _ := testModels(t)
	prog := &panicProg{failures: 2}
	s, err := New(Config{
		Detector:         det,
		Workloads:        []perspectron.Workload{prog},
		MaxInsts:         30_000,
		MaxEpisodes:      1,
		Backoff:          fastBackoff(),
		BreakerThreshold: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Run(ctx); err != nil {
		t.Fatalf("run: %v", err)
	}
	h := s.Health()
	if h.Workers[0].Episodes != 1 || h.Workers[0].Failures != 2 {
		t.Fatalf("worker health = %+v, want 1 episode after 2 panicked attempts", h.Workers[0])
	}
	fails := reg.CounterValue(telemetry.Name("perspectron_serve_episode_failures_total", "worker", "panicker"))
	if fails != 2 {
		t.Fatalf("failure counter = %d, want 2", fails)
	}
	if !strings.Contains(h.Workers[0].LastErr, "panicked") {
		t.Fatalf("last error %q does not surface the panic", h.Workers[0].LastErr)
	}
}

func TestServiceStalledSourceHitsDeadlineAndBreaker(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	det, _ := testModels(t)
	// Stalls forever (from the deadline's point of view) but self-terminates
	// so producer goroutines can be reclaimed.
	prog := &stallProg{stallAfter: 2_000, delay: 10 * time.Millisecond, stallOps: 40}
	s, err := New(Config{
		Detector:         det,
		Workloads:        []perspectron.Workload{prog},
		MaxInsts:         1 << 40, // only the stall machinery ends a run
		MaxEpisodes:      1,
		SampleTimeout:    80 * time.Millisecond,
		Backoff:          fastBackoff(),
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The worker can never complete an episode; run until the breaker has
	// tripped at least once, then drain.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	deadline := time.After(25 * time.Second)
	for {
		if reg.CounterValue(telemetry.Name("perspectron_serve_breaker_open_total", "worker", "staller")) >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("breaker never opened; failures=%d",
				reg.CounterValue(telemetry.Name("perspectron_serve_episode_failures_total", "worker", "staller")))
		case <-time.After(50 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("drained run returned %v, want context.Canceled", err)
	}
	h := s.Health()
	if h.Workers[0].Failures < 2 {
		t.Fatalf("stalled worker recorded %d failures, want >= 2", h.Workers[0].Failures)
	}
	if !strings.Contains(h.Workers[0].LastErr, "stalled") && !strings.Contains(h.Workers[0].LastErr, "deadline") {
		t.Fatalf("last error %q does not mention the stall", h.Workers[0].LastErr)
	}
}

func TestServiceDegradesUnderFaults(t *testing.T) {
	det, cls := testModels(t)
	s, err := New(Config{
		Detector:    det,
		Classifier:  cls,
		Workloads:   []perspectron.Workload{perspectron.AttackByName("flush+reload", "")},
		MaxInsts:    60_000,
		MaxEpisodes: 2,
		Backoff:     fastBackoff(),
		Faults:      &perspectron.FaultConfig{Seed: 7, Dropout: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Run(ctx); err != nil {
		t.Fatalf("run: %v", err)
	}
	h := s.Health()
	w := h.Workers[0]
	if w.Mode != "detector" {
		t.Fatalf("25%% dropout left mode %s, want detector (coverage %.3f)", w.Mode, w.Coverage)
	}
	if w.Coverage < 0.6 || w.Coverage > 0.9 {
		t.Fatalf("smoothed coverage %.3f, want ~0.75", w.Coverage)
	}
	if h.Status != "degraded" && h.Status != "draining" {
		t.Fatalf("status = %q, want degraded", h.Status)
	}
}

func TestServiceHotReloadAndRollback(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	det, _ := testModels(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "det.json")
	if err := det.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		DetectorPath: path,
		Workloads:    []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
		MaxInsts:     30_000,
		MaxEpisodes:  1,
		Backoff:      fastBackoff(),
		PollInterval: time.Hour, // ticks driven manually via pollNow
	})
	if err != nil {
		t.Fatal(err)
	}
	v1 := s.Models().Det.Version()

	// A good new checkpoint hot-swaps in.
	mod := *det
	mod.Threshold = det.Threshold + 0.05
	time.Sleep(10 * time.Millisecond) // ensure a distinct mtime
	if err := mod.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s.pollNow()
	v2 := s.Models().Det.Version()
	if v2 == v1 {
		t.Fatalf("good checkpoint did not swap in")
	}
	if got := reg.CounterValue(telemetry.Name("perspectron_serve_reloads_total", "result", "ok")); got != 1 {
		t.Fatalf("ok-reload counter = %d, want 1", got)
	}

	// A corrupt checkpoint (bit-flipped value, checksum intact) rolls back:
	// the last good model stays live and the failure is surfaced.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(raw), `"threshold"`, `"threshol_"`, 1)
	time.Sleep(10 * time.Millisecond)
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	s.pollNow()
	if got := s.Models().Det.Version(); got != v2 {
		t.Fatalf("corrupt checkpoint changed the live model: %s -> %s", v2, got)
	}
	if got := reg.CounterValue(telemetry.Name("perspectron_serve_reloads_total", "result", "rollback")); got != 1 {
		t.Fatalf("rollback counter = %d, want 1", got)
	}
	h := s.Health()
	if h.Rollbacks != 1 || h.ReloadError == "" {
		t.Fatalf("health rollbacks=%d error=%q, want the rollback surfaced", h.Rollbacks, h.ReloadError)
	}
	if h.Status != "degraded" {
		t.Fatalf("status = %q, want degraded after a rollback", h.Status)
	}

	// A subsequent good write recovers.
	time.Sleep(10 * time.Millisecond)
	if err := det.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s.pollNow()
	if got := s.Models().Det.Version(); got != v1 {
		t.Fatalf("recovery write not picked up: %s, want %s", got, v1)
	}
	if h := s.Health(); h.ReloadError != "" {
		t.Fatalf("reload error %q survived recovery", h.ReloadError)
	}
}

func TestHealthEndpoints(t *testing.T) {
	det, _ := testModels(t)
	s, err := New(Config{
		Detector:    det,
		Workloads:   []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
		MaxInsts:    30_000,
		MaxEpisodes: 1,
		Backoff:     fastBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Before Run: alive but not ready.
	rr := httptest.NewRecorder()
	s.Readyz().ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 503 {
		t.Fatalf("readyz before Run = %d, want 503", rr.Code)
	}
	rr = httptest.NewRecorder()
	s.Healthz().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 {
		t.Fatalf("healthz = %d, want 200", rr.Code)
	}
	var h Health
	if err := json.Unmarshal(rr.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.DetectorVersion != det.Version() || len(h.Workers) != 1 {
		t.Fatalf("healthz body = %+v", h)
	}
	if hs := s.Handlers(); hs["/healthz"] == nil || hs["/readyz"] == nil {
		t.Fatalf("Handlers() missing routes: %v", hs)
	}
	// After a completed run: drained, not ready.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	rr = httptest.NewRecorder()
	s.Readyz().ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 503 {
		t.Fatalf("readyz after drain = %d, want 503", rr.Code)
	}
	rr = httptest.NewRecorder()
	s.Healthz().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 503 {
		t.Fatalf("healthz while draining = %d, want 503", rr.Code)
	}
}

// TestShutdownLeavesNoGoroutines is the leak gate: a service that ran
// workers, suffered stalls and was drained must return the process to its
// pre-Run goroutine count.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	det, cls := testModels(t)
	before := runtime.NumGoroutine()
	s, err := New(Config{
		Detector:   det,
		Classifier: cls,
		Workloads: []perspectron.Workload{
			perspectron.AttackByName("spectreV1", "fr"),
			&stallProg{stallAfter: 2_000, delay: 10 * time.Millisecond, stallOps: 40},
		},
		MaxInsts:      40_000,
		MaxEpisodes:   0, // run until drained
		SampleTimeout: 60 * time.Millisecond,
		Backoff:       fastBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	time.Sleep(2 * time.Second) // let episodes, stalls and restarts happen
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("drained run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("drain did not complete")
	}
	// Producers unwind within their next op batch; give them a moment.
	deadline := time.After(10 * time.Second)
	for runtime.NumGoroutine() > before {
		select {
		case <-deadline:
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after drain\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func TestNewErrors(t *testing.T) {
	det, _ := testModels(t)
	if _, err := New(Config{Detector: det}); err == nil {
		t.Fatalf("workload-less config accepted")
	}
	if _, err := New(Config{Workloads: []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")}}); err == nil {
		t.Fatalf("detector-less config accepted")
	}
	if _, err := New(Config{
		DetectorPath: filepath.Join(t.TempDir(), "missing.json"),
		Workloads:    []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
	}); err == nil {
		t.Fatalf("missing initial checkpoint accepted")
	}
}
