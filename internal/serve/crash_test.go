package serve

// Crash chaos harness: drives a real `perspectron serve` child against a
// shared verdict log, SIGKILLs it mid-load in a loop, and asserts the
// recovery invariants ISSUE 9 promises — no torn records survive repair, the
// durable ledger balances (enqueued == records + lost) across every
// incarnation, session stamps are strictly increasing, per-session sample
// identities never repeat, and `perspectron explain` still reproduces
// post-recovery verdicts bit-for-bit.
//
// The test is env-gated so plain `go test ./...` stays hermetic:
//
//	PERSPECTRON_CRASH_BIN    path to a built perspectron binary   (required)
//	PERSPECTRON_CRASH_DET    path to a trained detector checkpoint (required)
//	PERSPECTRON_CRASH_CYCLES kill cycles before the clean run      (default 20)
//
// scripts/crash_smoke.sh builds both and runs this under -race.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestCrashRecoveryCycles(t *testing.T) {
	bin := os.Getenv("PERSPECTRON_CRASH_BIN")
	det := os.Getenv("PERSPECTRON_CRASH_DET")
	if bin == "" || det == "" {
		t.Skip("crash chaos harness: set PERSPECTRON_CRASH_BIN and PERSPECTRON_CRASH_DET (see scripts/crash_smoke.sh)")
	}
	cycles := 20
	if s := os.Getenv("PERSPECTRON_CRASH_CYCLES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad PERSPECTRON_CRASH_CYCLES %q", s)
		}
		cycles = n
	}

	dir := t.TempDir()
	logPath := filepath.Join(dir, "verdicts.jsonl")
	statePath := logPath + ".state"

	spawn := func(seed int) (*exec.Cmd, *bytes.Buffer) {
		cmd := exec.Command(bin, "serve",
			"-in", det,
			"-workloads", "spectreV1,bzip2",
			"-insts", "40000",
			"-seed", strconv.Itoa(seed),
			"-verdicts", logPath,
			"-log-flush", "50ms",
			"-poll", "-1ms", // no hot-reload: one model version across the whole log
		)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting serve child: %v", err)
		}
		return cmd, &stderr
	}

	// Kill loop: vary the uptime so SIGKILL lands in different phases —
	// recovery, steady-state scoring, and (at 50ms cadence) mid-flush.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < cycles; i++ {
		cmd, stderr := spawn(i + 1)
		time.Sleep(time.Duration(300+rng.Intn(600)) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("cycle %d: kill: %v (stderr: %s)", i, err, stderr.String())
		}
		cmd.Wait() // reaps; exit status is expected to be the kill signal
	}

	// Final incarnation: recover once more, serve briefly, then drain
	// cleanly on SIGTERM so the tail of the log is a flushed record.
	cmd, stderr := spawn(cycles + 1)
	time.Sleep(2 * time.Second)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("final cycle: SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("final serve exited non-zero after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("final serve did not drain within 60s of SIGTERM\nstderr:\n%s", stderr.String())
	}

	// --- Invariant 1: zero torn records. After the clean drain every line
	// must be complete, newline-terminated, valid JSON; recovery repaired
	// whatever the kills tore.
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("reading verdict log: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("verdict log is empty after the chaos loop")
	}
	if raw[len(raw)-1] != '\n' {
		t.Fatalf("verdict log does not end in a newline: torn tail survived recovery (last %q)", raw[len(raw)-40:])
	}
	var recs []VerdictRecord
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			t.Fatalf("line %d: blank line in verdict log", ln)
		}
		var rec VerdictRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d: torn/corrupt record survived recovery: %v: %.120q", ln, err, line)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning verdict log: %v", err)
	}

	// --- Invariant 2: session stamps are strictly increasing and open the
	// log (a stamp precedes any sample record); samples never repeat a
	// (worker, episode, sample) identity within a session.
	var (
		samples    int64
		stamps     int
		lastSess   int
		seen       map[string]bool
		lastStamp  = -1 // index of the most recent stamp
		firstAttr  = -1 // first attributed record after the last stamp
		postAttrIx []int
	)
	for i, rec := range recs {
		if rec.Mode == ModeRecovery {
			if rec.Session <= lastSess {
				t.Fatalf("record %d: recovery stamp session %d not greater than previous %d", i, rec.Session, lastSess)
			}
			lastSess = rec.Session
			stamps++
			lastStamp = i
			seen = map[string]bool{}
			continue
		}
		if stamps == 0 {
			t.Fatalf("record %d: sample record before any recovery stamp", i)
		}
		samples++
		key := fmt.Sprintf("%s/%d/%d", rec.Worker, rec.Episode, rec.Sample)
		if seen[key] {
			t.Fatalf("record %d: duplicate sample identity %s within session %d (double-counted verdict)", i, key, lastSess)
		}
		seen[key] = true
		if rec.Trace != "" && key != rec.Trace {
			t.Fatalf("record %d: trace %q disagrees with identity %s", i, rec.Trace, key)
		}
	}
	if stamps < 2 {
		t.Fatalf("expected at least 2 recovery stamps after %d kill cycles, found %d", cycles, stamps)
	}
	t.Logf("chaos loop: %d kill cycles, %d stamps (last session %d), %d sample records, %d bytes",
		cycles, stamps, lastSess, samples, len(raw))

	// --- Invariant 3: the durable ledger balances. After the clean drain
	// the state file must agree with the log byte-for-byte: every enqueued
	// sample is either a record on disk or counted lost.
	stRaw, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatalf("reading state file: %v", err)
	}
	var st ServeState
	if err := json.Unmarshal(stRaw, &st); err != nil {
		t.Fatalf("parsing state file: %v: %s", err, stRaw)
	}
	if st.Enqueued != st.Records+st.Lost {
		t.Fatalf("ledger does not balance: enqueued %d != records %d + lost %d", st.Enqueued, st.Records, st.Lost)
	}
	if st.Records != samples {
		t.Fatalf("ledger records %d != %d sample records on disk", st.Records, samples)
	}
	if st.Sessions != lastSess {
		t.Fatalf("ledger sessions %d != last stamped session %d", st.Sessions, lastSess)
	}
	if st.Lost > 0 {
		t.Logf("ledger: %d verdicts attributed to crashes across %d sessions", st.Lost, st.Sessions)
	}

	// --- Invariant 4: explain reproduces verdicts bit-for-bit, including
	// records written after the last recovery. Indices into recs match
	// explain's -index because the log held zero corrupt lines.
	for i := lastStamp + 1; i < len(recs); i++ {
		if len(recs[i].Fired) > 0 && len(recs[i].Attr) > 0 {
			if firstAttr < 0 {
				firstAttr = i
			}
			postAttrIx = append(postAttrIx, i)
		}
	}
	if firstAttr < 0 {
		t.Fatal("no attributed records after the final recovery stamp (spectreV1 should flag)")
	}
	explain := func(args ...string) {
		t.Helper()
		out, err := exec.Command(bin, append([]string{"explain", "-verdicts", logPath, "-in", det}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("explain %v failed: %v\n%s", args, err, out)
		}
		if !bytes.Contains(out, []byte("bit-for-bit")) {
			t.Fatalf("explain %v did not report bit-for-bit consistency:\n%s", args, out)
		}
	}
	explain() // default: last attributed record, necessarily post-recovery
	for _, ix := range postAttrIx[:min(3, len(postAttrIx))] {
		explain("-index", strconv.Itoa(ix))
	}
	// Trace IDs are session-scoped and can repeat across incarnations
	// (explain -trace picks the first match), so only exercise the -trace
	// path with a trace that is unique across the whole log.
	traceCount := map[string]int{}
	for _, rec := range recs {
		if rec.Trace != "" {
			traceCount[rec.Trace]++
		}
	}
	for _, ix := range postAttrIx {
		if tr := strings.TrimSpace(recs[ix].Trace); tr != "" && traceCount[tr] == 1 {
			explain("-trace", tr)
			break
		}
	}
}
