package serve

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is the consistent-hash ring that assigns streams to scoring shards.
// Each shard owns `replicas` virtual nodes so load spreads evenly; a stream
// hashes to the first virtual node clockwise from its key. Routing is a
// pure function of (key, healthy-set): when a shard goes down — scorer
// breaker open after repeated panics — lookups walk clockwise to the next
// healthy shard, so only the streams that hashed to the dead shard move,
// and they all move to the same place (no rehash storm). When the shard
// recovers, the same streams move straight back.
//
// The ring is built once at supervisor construction and never mutated, so
// lookups are lock-free; liveness is consulted per-lookup via the healthy
// callback.
type ring struct {
	hashes []uint64 // sorted virtual-node hashes
	owner  []int    // owner[i] is the shard owning hashes[i]
	shards int
}

// newRing builds a ring of n shards with the given virtual-node fan-out per
// shard (replicas < 1 defaults to 16).
func newRing(n, replicas int) *ring {
	if replicas < 1 {
		replicas = 16
	}
	r := &ring{shards: n}
	type vnode struct {
		h     uint64
		shard int
	}
	vnodes := make([]vnode, 0, n*replicas)
	for s := 0; s < n; s++ {
		for v := 0; v < replicas; v++ {
			vnodes = append(vnodes, vnode{hashKey("shard-" + strconv.Itoa(s) + "#" + strconv.Itoa(v)), s})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool { return vnodes[i].h < vnodes[j].h })
	r.hashes = make([]uint64, len(vnodes))
	r.owner = make([]int, len(vnodes))
	for i, v := range vnodes {
		r.hashes[i] = v.h
		r.owner[i] = v.shard
	}
	return r
}

// lookup returns the shard for key: the owner of the first virtual node
// clockwise, skipping shards healthy reports false for. If every shard is
// unhealthy the home shard is returned anyway — items must land somewhere,
// and the home scorer's restart loop will drain them. A nil healthy
// callback routes purely by hash.
func (r *ring) lookup(key string, healthy func(shard int) bool) int {
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if start == len(r.hashes) {
		start = 0
	}
	home := r.owner[start]
	if healthy == nil {
		return home
	}
	// Walk clockwise until a healthy owner appears; visiting every virtual
	// node bounds the walk while still preferring ring-adjacent shards.
	for i := 0; i < len(r.hashes); i++ {
		s := r.owner[(start+i)%len(r.hashes)]
		if healthy(s) {
			return s
		}
	}
	return home
}

// hashKey is FNV-1a 64 with a splitmix64-style finalizer — stable across
// processes, so a stream keeps its shard across restarts (and across
// supervisors in a fleet). The finalizer matters: raw FNV-1a leaves
// similarly-named keys ("stream-1", "stream-2", ...) in one narrow band of
// the ring, piling whole fleets onto a couple of shards; the avalanche
// spreads them uniformly.
func hashKey(key string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(key))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
