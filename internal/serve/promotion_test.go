package serve

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"perspectron"
)

// testGolden collects a small held-out golden corpus once for the gate tests.
var (
	testGolden    *perspectron.GoldenSet
	testGoldenErr error
)

func goldenSet(t *testing.T) *perspectron.GoldenSet {
	t.Helper()
	if testGolden == nil && testGoldenErr == nil {
		opts := perspectron.DefaultOptions()
		opts.MaxInsts = 60_000
		opts.Runs = 1
		opts.Seed = 8181
		workloads := append([]perspectron.Workload{}, perspectron.BenignWorkloads()[:2]...)
		workloads = append(workloads, perspectron.AttackByName("spectreV1", "fr"))
		testGolden, testGoldenErr = perspectron.CollectGolden(workloads, opts)
	}
	if testGoldenErr != nil {
		t.Fatal(testGoldenErr)
	}
	return testGolden
}

// negated returns a copy of det with every weight (and the bias) negated —
// a deliberately regressed model whose scores invert.
func negated(det *perspectron.Detector) *perspectron.Detector {
	bad := *det
	bad.Weights = append([]float64(nil), det.Weights...)
	for i := range bad.Weights {
		bad.Weights[i] = -bad.Weights[i]
	}
	bad.Bias = -det.Bias
	bad.Checksum = ""
	bad.Lineage = det.Lineage.Clone()
	return &bad
}

// TestPromotionGateNeverReloadsRegression is the rejected half of the
// continual-learning e2e: a deliberately regressed candidate must never reach
// a running supervisor's live model, no matter how many gate rounds run.
func TestPromotionGateNeverReloadsRegression(t *testing.T) {
	det, _ := testModels(t)
	g := goldenSet(t)
	dir := t.TempDir()
	livePath := filepath.Join(dir, "det.json")
	candPath := filepath.Join(dir, "det.json.candidate")
	if err := det.SaveFile(livePath); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		DetectorPath: livePath,
		Workloads:    []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
		MaxInsts:     30_000,
		MaxEpisodes:  1,
		Backoff:      fastBackoff(),
		PollInterval: time.Hour, // ticks driven manually via pollNow
	})
	if err != nil {
		t.Fatal(err)
	}
	v1 := s.Models().Det.Version()

	if err := negated(det).SaveFile(candPath); err != nil {
		t.Fatal(err)
	}
	p, err := perspectron.PromoteDetector(candPath, livePath, g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Promoted {
		t.Fatalf("regressed candidate promoted: cand %+v base %+v", p.Candidate, p.Baseline)
	}
	s.pollNow()
	if got := s.Models().Det.Version(); got != v1 {
		t.Fatalf("rejected candidate reached the supervisor: %s -> %s", v1, got)
	}
	if _, err := os.Stat(livePath + ".rejected"); err != nil {
		t.Fatalf("rejected candidate not preserved: %v", err)
	}
}

// TestPromotionGateHotReload is the promoted half: a strictly better
// candidate passes the gate, goes live atomically, and the running
// supervisor's watcher picks it up — version visible in /healthz.
func TestPromotionGateHotReload(t *testing.T) {
	det, _ := testModels(t)
	g := goldenSet(t)
	dir := t.TempDir()
	livePath := filepath.Join(dir, "det.json")
	candPath := filepath.Join(dir, "det.json.candidate")

	// The live baseline is the regressed model; the candidate is the real
	// detector — strictly better on every gated metric.
	if err := negated(det).SaveFile(livePath); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		DetectorPath: livePath,
		Workloads:    []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
		MaxInsts:     30_000,
		MaxEpisodes:  1,
		Backoff:      fastBackoff(),
		PollInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.Models().Det.Version()

	if err := det.SaveFile(candPath); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // ensure the promoted file gets a distinct mtime
	p, err := perspectron.PromoteDetector(candPath, livePath, g)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Promoted {
		t.Fatalf("better candidate rejected: %s", p.Reason)
	}
	if regs := p.Baseline.RegressionsAgainst(p.Candidate); len(regs) == 0 {
		t.Fatalf("baseline not strictly worse than candidate: base %+v cand %+v", p.Baseline, p.Candidate)
	}
	s.pollNow()
	got := s.Models().Det.Version()
	if got == v0 {
		t.Fatalf("promoted candidate not hot-reloaded (still %s)", v0)
	}
	live, err := perspectron.LoadFile(livePath)
	if err != nil {
		t.Fatal(err)
	}
	if got != live.Version() {
		t.Fatalf("supervisor runs %s, live file is %s", got, live.Version())
	}
	if live.Lineage == nil || live.Lineage.Eval == nil || live.Lineage.PromotedAt == "" {
		t.Fatalf("promoted checkpoint missing lineage stamp: %+v", live.Lineage)
	}
	if h := s.Health(); h.DetectorVersion != got {
		t.Fatalf("healthz reports %s, supervisor runs %s", h.DetectorVersion, got)
	}
}

// TestDriftProbeDegradesHealth pins the drift surface: an attached probe's
// values land in Health, an alarm degrades the status (hence the /readyz
// body), and detaching restores it.
func TestDriftProbeDegradesHealth(t *testing.T) {
	det, _ := testModels(t)
	s, err := New(Config{
		Detector:    det,
		Workloads:   []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
		MaxInsts:    30_000,
		MaxEpisodes: 1,
		Backoff:     fastBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); h.ShadowDrift != 0 || h.DriftAlarm || h.Status != "ok" {
		t.Fatalf("health before probe: %+v", h)
	}

	s.SetDriftProbe(func() (float64, bool) { return 0.42, true })
	h := s.Health()
	if h.ShadowDrift != 0.42 || !h.DriftAlarm {
		t.Fatalf("probe not surfaced: drift=%v alarm=%v", h.ShadowDrift, h.DriftAlarm)
	}
	if h.Status != "degraded" {
		t.Fatalf("drift alarm left status %q, want degraded", h.Status)
	}
	// The /readyz body is truthful about drift degradation once serving.
	s.ready.Store(true)
	rr := httptest.NewRecorder()
	s.Readyz().ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 200 || rr.Body.String() != "degraded\n" {
		t.Fatalf("readyz under drift alarm = %d %q, want 200 \"degraded\"", rr.Code, rr.Body.String())
	}
	s.ready.Store(false)

	s.SetDriftProbe(nil)
	if h := s.Health(); h.ShadowDrift != 0 || h.DriftAlarm || h.Status != "ok" {
		t.Fatalf("detached probe still degrades: %+v", h)
	}
}
