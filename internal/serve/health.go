package serve

import (
	"encoding/json"
	"net/http"
	"time"
)

// WorkerHealth is one worker's row in the /healthz report.
type WorkerHealth struct {
	Worker   string  `json:"worker"`
	Mode     string  `json:"mode"`
	Breaker  string  `json:"breaker"`
	Coverage float64 `json:"coverage"` // smoothed (EWMA) feature coverage
	Episodes int64   `json:"episodes"`
	Failures int64   `json:"failures"`
	Restarts int64   `json:"restarts"` // goroutine restarts after a panic
	Sheds    int64   `json:"sheds"`    // samples shed by admission control
	LastErr  string  `json:"last_error,omitempty"`
}

// ShardHealth is one scoring shard's row in the /healthz report.
type ShardHealth struct {
	Shard    int     `json:"shard"`
	Depth    int     `json:"depth"`    // samples queued now
	Capacity int     `json:"capacity"` // ring buffer cap
	Pressure float64 `json:"pressure"` // smoothed (EWMA) depth/capacity
	LoadMode string  `json:"load_mode"`
	Breaker  string  `json:"breaker"`
	Down     bool    `json:"down"` // ring routes around a down shard
	Enqueued int64   `json:"enqueued"`
	Scored   int64   `json:"scored"`
	Shed     int64   `json:"shed"`
	Panics   int64   `json:"panics"`
}

// Health is the /healthz body: overall status, the live model versions, the
// hot-reload ledger, per-worker and per-shard state.
type Health struct {
	// Status is "ok" (every worker on its top rung, breakers closed, no
	// shard down or load-degraded), "degraded" (any worker or shard on a
	// lower rung, an open breaker, a down shard, a rolled-back reload, or a
	// failing verdict log), or "draining" (shutdown in progress).
	Status string `json:"status"`
	Ready  bool   `json:"ready"`
	// MetricsAddr is the bound metrics/health listen address — the
	// self-discovery answer for processes started with `-metrics-addr :0`,
	// whose real port was previously visible only on stderr.
	MetricsAddr string `json:"metrics_addr,omitempty"`
	// UptimeSeconds counts from supervisor construction.
	UptimeSeconds     float64 `json:"uptime_seconds"`
	DetectorVersion   string  `json:"detector_version"`
	ClassifierVersion string  `json:"classifier_version"`
	Reloads           int    `json:"reloads"`
	Rollbacks         int    `json:"rollbacks"`
	ReloadError       string `json:"reload_error,omitempty"`
	LastReloadAt      string `json:"last_reload_at,omitempty"`
	Verdicts          int    `json:"verdicts"`
	// VerdictVersion is the detector version stamped into the most recent
	// verdict record — normally DetectorVersion, trailing it briefly around
	// a hot-reload.
	VerdictVersion string `json:"verdict_version,omitempty"`
	LogError       string `json:"log_error,omitempty"`
	// ShadowDrift is the shadow trainer's smoothed feature-distribution
	// drift (present only when a shadow loop is attached); DriftAlarm marks
	// it past the configured threshold and degrades the service status.
	ShadowDrift float64 `json:"shadow_drift,omitempty"`
	DriftAlarm  bool    `json:"drift_alarm,omitempty"`
	// Durable is the crash-safe file mode's accounting block (nil when
	// serving without VerdictLogPath): the cumulative ledger, the log's disk
	// state — a sticky disk_error or active lossy mode degrades Status —
	// and what the last startup recovery found.
	Durable *DurableHealth `json:"durable,omitempty"`
	// SLO is the burn-rate block (nil when SLO tracking is disabled); a
	// breach degrades Status.
	SLO     *SLOHealth     `json:"slo,omitempty"`
	Workers []WorkerHealth `json:"workers"`
	Shards  []ShardHealth  `json:"shards"`
}

// DriftProbe reports a shadow trainer's current smoothed drift and whether
// it is past the alarm threshold — the hook an in-process shadow loop
// registers so /healthz and /readyz reflect training-distribution drift.
type DriftProbe func() (drift float64, alarm bool)

// SetDriftProbe attaches (or, with nil, detaches) a drift probe. Safe to
// call concurrently with Health.
func (s *Supervisor) SetDriftProbe(p DriftProbe) {
	if p == nil {
		s.driftProbe.Store(nil)
		return
	}
	s.driftProbe.Store(&p)
}

// SetListenAddr records the bound metrics/health address for /healthz
// self-discovery (the CLI calls it once the telemetry server is up). Safe
// to call concurrently with Health.
func (s *Supervisor) SetListenAddr(addr string) {
	if addr == "" {
		return
	}
	s.listenAddr.Store(&addr)
}

// Health snapshots the supervisor for the health endpoints (and tests).
func (s *Supervisor) Health() Health {
	h := Health{
		Status:         "ok",
		Ready:          s.ready.Load(),
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Verdicts:       s.log.count(),
		VerdictVersion: s.log.version(),
	}
	if addr := s.listenAddr.Load(); addr != nil {
		h.MetricsAddr = *addr
	}
	h.DetectorVersion, h.ClassifierVersion = s.models.Load().Versions()
	if s.watch != nil {
		var lastOk time.Time
		h.Reloads, h.Rollbacks, h.ReloadError, lastOk = s.watch.snapshot()
		if !lastOk.IsZero() {
			h.LastReloadAt = lastOk.UTC().Format(time.RFC3339)
		}
	}
	if err := s.log.err(); err != nil {
		h.LogError = err.Error()
	}
	if p := s.driftProbe.Load(); p != nil {
		h.ShadowDrift, h.DriftAlarm = (*p)()
	}
	h.Durable = s.durableSnapshot()
	h.SLO = s.slo.snapshot()
	degraded := h.ReloadError != "" || h.LogError != "" || h.DriftAlarm ||
		(h.SLO != nil && h.SLO.Breach) ||
		(h.Durable != nil && (h.Durable.Lossy || h.Durable.DiskError != ""))
	topMode := "detector"
	if s.models.Load().Cls != nil {
		topMode = "classifier"
	}
	for _, w := range s.workers {
		mode, cov := w.ladder.snapshot()
		brk, _, _ := w.breaker.snapshot()
		wh := WorkerHealth{
			Worker:   w.name,
			Mode:     mode.String(),
			Breaker:  brk,
			Coverage: cov,
			Episodes: w.episodes.Load(),
			Failures: w.failures.Load(),
			Restarts: w.restarts.Load(),
			Sheds:    w.sheds.Load(),
		}
		if e := w.lastErr.Load(); e != nil {
			wh.LastErr = *e
		}
		if wh.Mode != topMode || wh.Breaker != "closed" {
			degraded = true
		}
		h.Workers = append(h.Workers, wh)
	}
	for _, sh := range s.shards {
		mode, headroom := sh.load.snapshot()
		brk, _, _ := sh.breaker.snapshot()
		shh := ShardHealth{
			Shard:    sh.id,
			Depth:    sh.depth(),
			Capacity: sh.cap,
			Pressure: 1 - headroom, // the load ladder smooths headroom
			LoadMode: mode.String(),
			Breaker:  brk,
			Down:     sh.down.Load(),
			Enqueued: sh.enqueued.Load(),
			Scored:   sh.scored.Load(),
			Shed:     sh.shed.Load(),
			Panics:   sh.panics.Load(),
		}
		if shh.Down || shh.LoadMode != topMode || shh.Breaker != "closed" {
			degraded = true
		}
		h.Shards = append(h.Shards, shh)
	}
	if degraded {
		h.Status = "degraded"
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	return h
}

// Healthz serves the Health snapshot as JSON. It always answers 200 once
// the process is up — liveness is "the supervisor responds", the Status
// field carries the nuance — except while draining, which answers 503 so
// load balancers stop routing to a terminating instance.
func (s *Supervisor) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := s.Health()
		w.Header().Set("Content-Type", "application/json")
		if h.Status == "draining" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h)
	})
}

// Readyz answers 200 once the initial checkpoints are loaded and the workers
// are running, 503 before that and while draining. The body is truthful
// about partial health: "ok" only when nothing is degraded, "degraded" when
// the service is up but shedding, load-degraded, or running on a lower
// ladder rung — still 200, because degraded-but-serving is exactly what the
// overload machinery exists to provide, but callers that care can read the
// body (or /healthz) instead of trusting the status code alone.
func (s *Supervisor) Readyz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if s.ready.Load() && !s.draining.Load() {
			w.WriteHeader(http.StatusOK)
			if s.Health().Status == "degraded" {
				w.Write([]byte("degraded\n"))
			} else {
				w.Write([]byte("ok\n"))
			}
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("not ready\n"))
	})
}

// Handlers returns the health routes keyed by pattern, shaped for
// telemetry.ServeWith / telemetrycli's Extra map. The flight recorder's
// /debug/verdicts rides along when enabled.
func (s *Supervisor) Handlers() map[string]http.Handler {
	m := map[string]http.Handler{
		"/healthz": s.Healthz(),
		"/readyz":  s.Readyz(),
	}
	if s.flight != nil {
		m["/debug/verdicts"] = s.flight.handler()
	}
	return m
}
