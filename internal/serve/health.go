package serve

import (
	"encoding/json"
	"net/http"
	"time"
)

// WorkerHealth is one worker's row in the /healthz report.
type WorkerHealth struct {
	Worker   string  `json:"worker"`
	Mode     string  `json:"mode"`
	Breaker  string  `json:"breaker"`
	Coverage float64 `json:"coverage"` // smoothed (EWMA) feature coverage
	Episodes int64   `json:"episodes"`
	Failures int64   `json:"failures"`
	Restarts int64   `json:"restarts"` // goroutine restarts after a panic
	LastErr  string  `json:"last_error,omitempty"`
}

// Health is the /healthz body: overall status, the live model versions, the
// hot-reload ledger and per-worker state.
type Health struct {
	// Status is "ok" (every worker on its top rung, breakers closed),
	// "degraded" (any worker on a lower rung, an open breaker, or a
	// rolled-back reload), or "draining" (shutdown in progress).
	Status            string         `json:"status"`
	Ready             bool           `json:"ready"`
	DetectorVersion   string         `json:"detector_version"`
	ClassifierVersion string         `json:"classifier_version"`
	Reloads           int            `json:"reloads"`
	Rollbacks         int            `json:"rollbacks"`
	ReloadError       string         `json:"reload_error,omitempty"`
	LastReloadAt      string         `json:"last_reload_at,omitempty"`
	Verdicts          int            `json:"verdicts"`
	Workers           []WorkerHealth `json:"workers"`
}

// Health snapshots the supervisor for the health endpoints (and tests).
func (s *Supervisor) Health() Health {
	h := Health{
		Status:  "ok",
		Ready:   s.ready.Load(),
		Verdicts: s.log.count(),
	}
	h.DetectorVersion, h.ClassifierVersion = s.models.Load().Versions()
	if s.watch != nil {
		var lastOk time.Time
		h.Reloads, h.Rollbacks, h.ReloadError, lastOk = s.watch.snapshot()
		if !lastOk.IsZero() {
			h.LastReloadAt = lastOk.UTC().Format(time.RFC3339)
		}
	}
	degraded := h.ReloadError != ""
	topMode := "detector"
	if s.models.Load().Cls != nil {
		topMode = "classifier"
	}
	for _, w := range s.workers {
		mode, cov := w.ladder.snapshot()
		brk, _, _ := w.breaker.snapshot()
		wh := WorkerHealth{
			Worker:   w.name,
			Mode:     mode.String(),
			Breaker:  brk,
			Coverage: cov,
			Episodes: w.episodes.Load(),
			Failures: w.failures.Load(),
			Restarts: w.restarts.Load(),
		}
		if e := w.lastErr.Load(); e != nil {
			wh.LastErr = *e
		}
		if wh.Mode != topMode || wh.Breaker != "closed" {
			degraded = true
		}
		h.Workers = append(h.Workers, wh)
	}
	if degraded {
		h.Status = "degraded"
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	return h
}

// Healthz serves the Health snapshot as JSON. It always answers 200 once
// the process is up — liveness is "the supervisor responds", the Status
// field carries the nuance — except while draining, which answers 503 so
// load balancers stop routing to a terminating instance.
func (s *Supervisor) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := s.Health()
		w.Header().Set("Content-Type", "application/json")
		if h.Status == "draining" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h)
	})
}

// Readyz answers 200 once the initial checkpoints are loaded and the
// workers are running, 503 before that and while draining.
func (s *Supervisor) Readyz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if s.ready.Load() && !s.draining.Load() {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ok\n"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("not ready\n"))
	})
}

// Handlers returns the health routes keyed by pattern, shaped for
// telemetry.ServeWith / telemetrycli's Extra map.
func (s *Supervisor) Handlers() map[string]http.Handler {
	return map[string]http.Handler{
		"/healthz": s.Healthz(),
		"/readyz":  s.Readyz(),
	}
}
