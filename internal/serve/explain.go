package serve

// Offline verdict reconstruction: the `perspectron explain` core. A verdict
// record stamps the checkpoint version that scored it plus the exact fired
// slot set, and the detector is linear, so the full score and attribution
// re-derive bit-for-bit from the checkpoint alone — no raw counter vector
// needed. Explain recomputes both and diffs them against what the serving
// path recorded: a mismatch means the record was tampered with, the
// checkpoint on disk is not the one that scored it, or the scoring path has
// a real bug — all three worth an alarm, which is why the smoke test and
// the explain CLI exit non-zero on any diff.

import (
	"fmt"

	"perspectron"
)

// Explanation is one reconstructed verdict.
type Explanation struct {
	// Record is the verdict as logged.
	Record VerdictRecord `json:"record"`
	// Version is the checkpoint the reconstruction ran against; Score and
	// Attr are the values re-derived from it.
	Version string                     `json:"version"`
	Score   float64                    `json:"score"`
	Attr    []perspectron.Contribution `json:"attr"`
	// ScoreMatch / AttrMatch report bit-for-bit agreement with the record;
	// Diffs lists every disagreement in human-readable form.
	ScoreMatch bool     `json:"score_match"`
	AttrMatch  bool     `json:"attr_match"`
	Diffs      []string `json:"diffs,omitempty"`
}

// Consistent reports full agreement between the record and the
// reconstruction.
func (e *Explanation) Consistent() bool { return e.ScoreMatch && e.AttrMatch }

// Explain reconstructs rec's score and attribution from det and diffs them
// against the recorded values. It refuses records without a fired set
// (attribution was off or the sample wasn't selected) and, unless force is
// set, records stamped with a different checkpoint version than det — a
// cross-version reconstruction is exactly the inconsistency the diff exists
// to catch, so it must be asked for explicitly.
func Explain(det *perspectron.Detector, rec VerdictRecord, force bool) (*Explanation, error) {
	if det == nil {
		return nil, fmt.Errorf("serve: explain needs a detector")
	}
	if rec.Fired == nil {
		return nil, fmt.Errorf("serve: verdict %s/%d/%d carries no fired set — attribution was not recorded for it",
			rec.Worker, rec.Episode, rec.Sample)
	}
	if ver := det.Version(); !force && rec.Version != "" && ver != rec.Version {
		return nil, fmt.Errorf("serve: verdict was scored by checkpoint %s but this checkpoint is %s (use force to diff anyway)",
			rec.Version, ver)
	}
	score, attr, err := det.AttributeFired(rec.Fired, len(rec.Attr))
	if err != nil {
		return nil, fmt.Errorf("serve: re-deriving attribution: %w", err)
	}
	e := &Explanation{Record: rec, Version: det.Version(), Score: score, Attr: attr,
		ScoreMatch: true, AttrMatch: true}
	// Threshold-rung and classifier-rung records keep the detector margin in
	// Score, so the comparison holds across all scored modes; float64 JSON
	// round-trips are exact, making == the right check.
	if score != rec.Score {
		e.ScoreMatch = false
		e.Diffs = append(e.Diffs, fmt.Sprintf("score: recorded %v, re-derived %v", rec.Score, score))
	}
	if len(attr) != len(rec.Attr) {
		e.AttrMatch = false
		e.Diffs = append(e.Diffs, fmt.Sprintf("attr: recorded %d contributions, re-derived %d", len(rec.Attr), len(attr)))
	} else {
		for i := range attr {
			if attr[i] != rec.Attr[i] {
				e.AttrMatch = false
				e.Diffs = append(e.Diffs, fmt.Sprintf("attr[%d]: recorded %+v, re-derived %+v", i, rec.Attr[i], attr[i]))
			}
		}
	}
	return e, nil
}
