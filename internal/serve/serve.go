// Package serve is the resilient long-running detection service around the
// perspectron models: a supervisor runs one monitor worker per workload
// stream, each worker scoring episodes (whole runs) through the streaming
// Session API. Worker panics are recovered, failed episodes restart with
// jittered exponential backoff behind a per-worker circuit breaker, model
// checkpoints hot-reload from disk with rollback to the last good version,
// and scoring degrades through an explicit ladder (classifier → detector →
// threshold policy) as counter coverage drops. Liveness and model state are
// exposed on /healthz and /readyz next to /metrics. See docs/SERVICE.md.
package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"perspectron"
	"perspectron/internal/retry"
	"perspectron/internal/telemetry"
)

// Config configures a Supervisor. Zero-valued durations and floors fall
// back to the defaults noted on each field.
type Config struct {
	// DetectorPath is the detector checkpoint to load and watch. Required
	// unless Detector is set directly.
	DetectorPath string
	// ClassifierPath optionally adds the multi-way classifier (the top
	// rung of the degradation ladder).
	ClassifierPath string
	// Detector/Classifier inject pre-loaded models (tests, embedding).
	// When set they win over the paths for the initial load; the watcher
	// still follows the paths.
	Detector   *perspectron.Detector
	Classifier *perspectron.Classifier

	// Workloads is the set of monitored streams: one worker each. Required.
	Workloads []perspectron.Workload
	// MaxInsts bounds each episode's committed path (default 100k).
	MaxInsts uint64
	// Seed drives per-episode workload randomness, varied per worker and
	// episode.
	Seed int64
	// MaxEpisodes stops each worker after that many completed episodes;
	// 0 means run until the context ends (the service default).
	MaxEpisodes int

	// SampleTimeout is the per-sample deadline: a stream that stalls past
	// it fails the episode (default 2s).
	SampleTimeout time.Duration
	// EpisodeTimeout bounds one whole episode (default 60s).
	EpisodeTimeout time.Duration
	// Backoff shapes the delay between failed episodes (default
	// retry.DefaultPolicy with unlimited attempts — the breaker, not the
	// policy, decides when to stop trying).
	Backoff retry.Policy
	// BreakerThreshold is the consecutive-failure count that opens a
	// worker's circuit breaker (default 3); BreakerCooldown is how long it
	// stays open before a trial episode (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// ClassifierFloor and DetectorFloor are the smoothed-coverage levels
	// below which the ladder abandons the classifier (default 0.9) and the
	// detector (default 0.5); Hysteresis is the climb-back margin
	// (default 0.05).
	ClassifierFloor float64
	DetectorFloor   float64
	Hysteresis      float64

	// PollInterval is the checkpoint watcher's cadence (default 500ms;
	// negative disables watching).
	PollInterval time.Duration

	// VerdictLog receives one JSON line per scored sample (nil = none).
	VerdictLog *verdictLogWriter

	// Faults optionally injects counter faults into every episode's
	// machine — the degradation ladder's test harness.
	Faults *perspectron.FaultConfig
}

// verdictLogWriter is the internal log type behind Config.VerdictLog.
type verdictLogWriter = verdictLog

// NewVerdictLog wraps w as a Config.VerdictLog sink (JSON lines, buffered,
// flushed on drain).
func NewVerdictLog(w io.Writer) *verdictLogWriter {
	return newVerdictLog(w)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxInsts == 0 {
		out.MaxInsts = 100_000
	}
	if out.SampleTimeout <= 0 {
		out.SampleTimeout = 2 * time.Second
	}
	if out.EpisodeTimeout <= 0 {
		out.EpisodeTimeout = 60 * time.Second
	}
	if out.Backoff == (retry.Policy{}) {
		out.Backoff = retry.DefaultPolicy()
	}
	out.Backoff.MaxAttempts = 0 // the breaker owns give-up decisions
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 3
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = 5 * time.Second
	}
	if out.ClassifierFloor == 0 {
		out.ClassifierFloor = 0.9
	}
	if out.DetectorFloor == 0 {
		out.DetectorFloor = 0.5
	}
	if out.Hysteresis == 0 {
		out.Hysteresis = 0.05
	}
	if out.PollInterval == 0 {
		out.PollInterval = 500 * time.Millisecond
	}
	return out
}

// worker is one monitored stream's runtime state.
type worker struct {
	id       int
	name     string
	prog     perspectron.Workload
	breaker  *breaker
	ladder   *ladder
	episodes atomic.Int64 // completed episodes
	failures atomic.Int64 // failed episodes
	restarts atomic.Int64 // goroutine restarts after a panic
	lastErr  atomic.Pointer[string]
}

// Supervisor owns the workers, the model pointer, the checkpoint watcher
// and the health surface. Create with New, drive with Run.
type Supervisor struct {
	cfg     Config
	models  atomic.Pointer[Models]
	watch   *watcher
	workers []*worker
	log     *verdictLog

	ready    atomic.Bool
	draining atomic.Bool
	running  atomic.Int64 // workers currently live
}

// New loads the initial models (from Config.Detector/Classifier or the
// checkpoint paths) and prepares the supervisor. It fails fast on a missing
// or corrupt initial checkpoint — rollback needs a last good model to roll
// back to.
func New(cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("serve: no workloads to monitor")
	}
	det, cls := cfg.Detector, cfg.Classifier
	if det == nil && cfg.DetectorPath != "" {
		var err error
		if det, err = perspectron.LoadFile(cfg.DetectorPath); err != nil {
			return nil, fmt.Errorf("serve: initial detector checkpoint: %w", err)
		}
	}
	if cls == nil && cfg.ClassifierPath != "" {
		var err error
		if cls, err = perspectron.LoadClassifierFile(cfg.ClassifierPath); err != nil {
			return nil, fmt.Errorf("serve: initial classifier checkpoint: %w", err)
		}
	}
	if det == nil {
		return nil, fmt.Errorf("serve: a detector is required (DetectorPath or Detector)")
	}
	s := &Supervisor{cfg: cfg, log: cfg.VerdictLog}
	s.models.Store(&Models{Det: det, Cls: cls})
	if cfg.PollInterval > 0 && (cfg.DetectorPath != "" || cfg.ClassifierPath != "") {
		s.watch = newWatcher(cfg.DetectorPath, cfg.ClassifierPath, &s.models, cfg.PollInterval)
	}
	for i, w := range cfg.Workloads {
		s.workers = append(s.workers, &worker{
			id:      i,
			name:    w.Info().Name,
			prog:    w,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			ladder:  newLadder(cfg.ClassifierFloor, cfg.DetectorFloor, cfg.Hysteresis, cls != nil),
		})
	}
	return s, nil
}

// Models returns the currently served model pair (the hot-reload target).
func (s *Supervisor) Models() *Models { return s.models.Load() }

// pollNow forces one watcher tick — the deterministic path tests and the
// drain use instead of waiting out PollInterval.
func (s *Supervisor) pollNow() {
	if s.watch != nil {
		s.watch.tick()
	}
}

// Run starts the watcher and one goroutine per worker, then blocks until
// every worker finishes (MaxEpisodes) or ctx ends. On ctx cancellation it
// drains: workers stop at their next sample, the verdict log flushes, and
// Run returns with zero goroutines left behind.
func (s *Supervisor) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var watchWg sync.WaitGroup
	if s.watch != nil {
		watchWg.Add(1)
		go func() {
			defer watchWg.Done()
			s.watch.run(runCtx)
		}()
	}
	var workerWg sync.WaitGroup
	for _, w := range s.workers {
		workerWg.Add(1)
		go func(w *worker) {
			defer workerWg.Done()
			s.superviseWorker(runCtx, w)
		}(w)
	}
	s.ready.Store(true)
	defer s.ready.Store(false)

	workersDone := make(chan struct{})
	go func() { workerWg.Wait(); close(workersDone) }()
	select {
	case <-workersDone:
	case <-ctx.Done():
		s.draining.Store(true)
		cancel() // stop workers at their next sample
		<-workersDone
	}
	s.draining.Store(true)
	cancel() // release the watcher
	watchWg.Wait()
	if err := s.log.flush(); err != nil {
		return fmt.Errorf("serve: flushing verdict log: %w", err)
	}
	return ctx.Err()
}

// superviseWorker keeps one worker alive: the inner loop runs episodes with
// breaker + backoff; a panic that escapes an episode (scoring bug, not
// workload panic — those surface as errors) is recovered here and the loop
// restarts.
func (s *Supervisor) superviseWorker(ctx context.Context, w *worker) {
	reg := telemetry.Get()
	s.running.Add(1)
	defer s.running.Add(-1)
	reg.Gauge("perspectron_serve_workers_running").Add(1)
	defer reg.Gauge("perspectron_serve_workers_running").Add(-1)
	for ctx.Err() == nil {
		if s.runEpisodeLoop(ctx, w) {
			return // loop ended normally (ctx done or MaxEpisodes)
		}
		// A panic escaped: count the restart and re-enter the loop.
		w.restarts.Add(1)
		reg.Counter(telemetry.Name("perspectron_serve_worker_panics_total", "worker", w.name)).Inc()
	}
}

// runEpisodeLoop drives episodes until ctx ends or MaxEpisodes completes,
// reporting true on a normal exit and false when a panic unwound it.
func (s *Supervisor) runEpisodeLoop(ctx context.Context, w *worker) (normal bool) {
	defer func() {
		if r := recover(); r != nil {
			msg := fmt.Sprintf("worker panic: %v", r)
			w.lastErr.Store(&msg)
			normal = false
		}
	}()
	reg := telemetry.Get()
	bo := retry.NewBackoff(s.cfg.Backoff, s.cfg.Seed*31_337+int64(w.id))
	episode := int(w.episodes.Load() + w.failures.Load()) // resume numbering after a panic restart
	for ctx.Err() == nil {
		if s.cfg.MaxEpisodes > 0 && w.episodes.Load() >= int64(s.cfg.MaxEpisodes) {
			return true
		}
		if !w.breaker.allow() {
			// Breaker open: sleep a cooldown slice, not the whole cooldown,
			// so drain stays prompt.
			if !sleepCtx(ctx, s.cfg.BreakerCooldown/4+time.Millisecond) {
				return true
			}
			continue
		}
		err := s.episode(ctx, w, episode)
		episode++
		if err == nil {
			w.episodes.Add(1)
			w.breaker.success()
			bo.Reset()
			reg.Counter(telemetry.Name("perspectron_serve_episodes_total", "worker", w.name)).Inc()
			continue
		}
		if ctx.Err() != nil {
			return true // drain, not a failure
		}
		w.failures.Add(1)
		msg := err.Error()
		w.lastErr.Store(&msg)
		reg.Counter(telemetry.Name("perspectron_serve_episode_failures_total", "worker", w.name)).Inc()
		if w.breaker.failure() {
			reg.Counter(telemetry.Name("perspectron_serve_breaker_open_total", "worker", w.name)).Inc()
		}
		if !retry.Sleep(ctx, "serve."+w.name, bo.Next()) {
			return true
		}
	}
	return true
}

// episode runs the workload once end to end, scoring every sample under the
// per-sample deadline with whatever model rung the ladder selects. Workload
// panics surface as errors through the session; a stall past SampleTimeout
// fails the episode.
func (s *Supervisor) episode(ctx context.Context, w *worker, episode int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("episode panic: %v", r)
		}
	}()
	reg := telemetry.Get()
	epCtx, cancel := context.WithTimeout(ctx, s.cfg.EpisodeTimeout)
	defer cancel()

	mdl := s.models.Load() // pinned for the whole episode
	sess, err := perspectron.NewSession(epCtx, mdl.Det, mdl.Cls, perspectron.SessionConfig{
		Workload: w.prog,
		MaxInsts: s.cfg.MaxInsts,
		Seed:     s.cfg.Seed + int64(w.id)*10_007 + int64(episode)*101,
		Faults:   s.cfg.Faults,
	})
	if err != nil {
		return err
	}
	defer sess.Close()

	for {
		sampleCtx, sampleCancel := context.WithTimeout(epCtx, s.cfg.SampleTimeout)
		v, ok := sess.Next(sampleCtx)
		stalled := sampleCtx.Err() == context.DeadlineExceeded
		sampleCancel()
		if !ok {
			if epCtx.Err() != nil {
				return fmt.Errorf("episode deadline: %w", epCtx.Err())
			}
			if stalled {
				return fmt.Errorf("sample stalled past %s", s.cfg.SampleTimeout)
			}
			break // run genuinely ended
		}
		mode, changed := w.ladder.observe(v.Coverage)
		if changed {
			reg.Counter(telemetry.Name("perspectron_serve_mode_changes_total", "mode", mode.String())).Inc()
		}
		flagged, class := decide(mode, v, mdl)
		if flagged {
			reg.Counter(telemetry.Name("perspectron_serve_flagged_total", "worker", w.name)).Inc()
		}
		reg.Counter(telemetry.Name("perspectron_serve_verdicts_total", "mode", mode.String())).Inc()
		s.log.record(VerdictRecord{
			Worker:  w.name,
			Episode: episode,
			Sample:  v.Sample,
			Mode:    mode.String(),
			Score:   v.Score,
			Class:   class,
			Flagged: flagged,
			Coverage: v.Coverage,
		})
	}
	return sess.Err()
}

// decide maps one verdict through the active rung: the classifier names the
// class (flagged = non-benign), the detector applies its trained threshold,
// and the threshold rung is the bare sign test on the renormalized margin —
// usable at any nonzero coverage.
func decide(mode perspectron.ServeMode, v *perspectron.Verdict, mdl *Models) (flagged bool, class string) {
	switch mode {
	case perspectron.ModeClassifier:
		if mdl.Cls != nil {
			return v.Class != "benign", v.Class
		}
		return v.Flagged, ""
	case perspectron.ModeThreshold:
		return v.Score > 0, ""
	default:
		return v.Flagged, ""
	}
}

// sleepCtx sleeps d or until ctx ends, reporting false on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
