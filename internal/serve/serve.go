// Package serve is the resilient long-running detection service around the
// perspectron models: a supervisor runs one monitor worker per workload
// stream, each worker streaming raw samples through the Session API into a
// bounded ingest stage — per-shard ring buffers over a consistent-hash ring
// — where shard scorers batch-score them through the bit-packed RawScorer
// path. Worker panics are recovered, failed episodes restart with jittered
// exponential backoff behind a per-worker circuit breaker, model
// checkpoints hot-reload from disk with rollback to the last good version,
// and scoring degrades through an explicit ladder (classifier → detector →
// threshold policy) as counter coverage drops or queue pressure rises; a
// full queue sheds deterministically and loudly (every shed is logged and
// counted). Liveness and model state are exposed on /healthz and /readyz
// next to /metrics. See docs/SERVICE.md.
package serve

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"perspectron"
	"perspectron/internal/retry"
	"perspectron/internal/telemetry"
	"perspectron/internal/workload"
)

// Config configures a Supervisor. Zero-valued durations and floors fall
// back to the defaults noted on each field.
type Config struct {
	// DetectorPath is the detector checkpoint to load and watch. Required
	// unless Detector is set directly.
	DetectorPath string
	// ClassifierPath optionally adds the multi-way classifier (the top
	// rung of the degradation ladder).
	ClassifierPath string
	// Detector/Classifier inject pre-loaded models (tests, embedding).
	// When set they win over the paths for the initial load; the watcher
	// still follows the paths.
	Detector   *perspectron.Detector
	Classifier *perspectron.Classifier

	// Workloads is the set of monitored streams: one worker each. Required.
	Workloads []perspectron.Workload
	// MaxInsts bounds each episode's committed path (default 100k).
	MaxInsts uint64
	// Seed drives per-episode workload randomness, varied per worker and
	// episode.
	Seed int64
	// MaxEpisodes stops each worker after that many completed episodes;
	// 0 means run until the context ends (the service default).
	MaxEpisodes int

	// SampleTimeout is the per-sample deadline: a stream that stalls past
	// it fails the episode (default 2s).
	SampleTimeout time.Duration
	// EpisodeTimeout bounds one whole episode (default 60s).
	EpisodeTimeout time.Duration
	// Backoff shapes the delay between failed episodes (default
	// retry.DefaultPolicy with unlimited attempts — the breaker, not the
	// policy, decides when to stop trying).
	Backoff retry.Policy
	// BreakerThreshold is the consecutive-failure count that opens a
	// worker's circuit breaker (default 3); BreakerCooldown is how long it
	// stays open before a trial episode (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// ClassifierFloor and DetectorFloor are the smoothed-coverage levels
	// below which the ladder abandons the classifier (default 0.9) and the
	// detector (default 0.5); Hysteresis is the climb-back margin
	// (default 0.05), shared with the load rung.
	ClassifierFloor float64
	DetectorFloor   float64
	Hysteresis      float64

	// Shards is the number of scoring lanes samples are hashed onto
	// (default min(GOMAXPROCS, 8)); RingReplicas the virtual nodes per
	// shard on the consistent-hash ring (default 16).
	Shards       int
	RingReplicas int
	// QueueDepth caps each shard's pending-sample ring buffer (default
	// 1024). A full ring sheds — oldest benign-stream sample first — and
	// every shed is logged and counted, never silent.
	QueueDepth int
	// Batch bounds how many samples one scorer tick drains (default 256);
	// ScoreTick is the scorer's fallback wake-up when no enqueue signal
	// arrives (default 5ms).
	Batch     int
	ScoreTick time.Duration
	// LoadHigh and LoadCritical are the smoothed queue-pressure marks
	// (depth/capacity) at which a shard's load rung abandons the classifier
	// (default 0.75) and the detector (default 0.9) — degrading scoring
	// cost before latency collapses. Producers also start pacing (Pace
	// sleep per sample, default 1ms) once their shard crosses LoadHigh:
	// the backpressure half of the contract.
	LoadHigh     float64
	LoadCritical float64
	Pace         time.Duration

	// PollInterval is the checkpoint watcher's cadence (default 500ms;
	// negative disables watching).
	PollInterval time.Duration

	// VerdictLog receives one JSON line per scored sample (nil = none).
	// Mutually exclusive with VerdictLogPath.
	VerdictLog *verdictLogWriter

	// VerdictLogPath switches the verdict log to crash-safe file mode: the
	// supervisor owns the file, runs startup recovery (torn-tail repair,
	// checkpoint fallback, ledger reconciliation — see recovery.go) before
	// producing, flushes on a cadence, and persists the durable accounting
	// ledger at StatePath (default VerdictLogPath+".state").
	VerdictLogPath string
	StatePath      string
	// LogFlushInterval is the periodic flush+persist cadence in file mode
	// (default 500ms; negative disables the loop — drain still flushes).
	LogFlushInterval time.Duration
	// DisableLastGood turns off the .last-good checkpoint copies written
	// after every verified load (tests that stage deliberate corruption).
	DisableLastGood bool

	// Faults optionally injects counter faults into every episode's
	// machine — the degradation ladder's test harness.
	Faults *perspectron.FaultConfig

	// DisableTracing turns off per-sample trace IDs, stage timestamps and
	// the stage-latency histograms — the zero-overhead escape hatch pinned
	// by BenchmarkServeForensicsOverhead. Tracing is on by default.
	DisableTracing bool
	// AttributionK is how many top weight×bit contributions are stamped
	// into attributed verdict records (default 5; negative disables
	// attribution entirely).
	AttributionK int
	// AttrBenignEvery additionally attributes every Nth non-flagged verdict
	// per shard, so the flight recorder shows what "normal" looks like too
	// (0 disables benign sampling; flagged samples are always attributed
	// while AttributionK is enabled).
	AttrBenignEvery int
	// FlightSize is the flight recorder's capacity — the last N attributed
	// verdicts served at /debug/verdicts (default 256; negative disables).
	FlightSize int
	// SlowSample is the total-latency mark past which a verdict emits a
	// slow-sample exemplar event into the telemetry trace stream (default
	// 250ms; negative disables).
	SlowSample time.Duration
	// SLOLatencyTarget is the per-verdict latency objective driving the
	// latency burn-rate gauge (default 50ms; negative disables SLO
	// tracking). SLOLatencyBudget and SLOShedBudget are the tolerated
	// fractions of slow verdicts and shed samples (default 0.01 each);
	// SLOAlpha the burn EWMAs' smoothing factor (default 0.02).
	SLOLatencyTarget time.Duration
	SLOLatencyBudget float64
	SLOShedBudget    float64
	SLOAlpha         float64
}

// verdictLogWriter is the internal log type behind Config.VerdictLog.
type verdictLogWriter = verdictLog

// NewVerdictLog wraps w as a Config.VerdictLog sink (JSON lines, buffered,
// flushed on drain).
func NewVerdictLog(w io.Writer) *verdictLogWriter {
	return newVerdictLog(w)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxInsts == 0 {
		out.MaxInsts = 100_000
	}
	if out.SampleTimeout <= 0 {
		out.SampleTimeout = 2 * time.Second
	}
	if out.EpisodeTimeout <= 0 {
		out.EpisodeTimeout = 60 * time.Second
	}
	if out.Backoff == (retry.Policy{}) {
		out.Backoff = retry.DefaultPolicy()
	}
	out.Backoff.MaxAttempts = 0 // the breaker owns give-up decisions
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 3
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = 5 * time.Second
	}
	if out.ClassifierFloor == 0 {
		out.ClassifierFloor = 0.9
	}
	if out.DetectorFloor == 0 {
		out.DetectorFloor = 0.5
	}
	if out.Hysteresis == 0 {
		out.Hysteresis = 0.05
	}
	if out.PollInterval == 0 {
		out.PollInterval = 500 * time.Millisecond
	}
	if out.LogFlushInterval == 0 {
		out.LogFlushInterval = 500 * time.Millisecond
	} else if out.LogFlushInterval < 0 {
		out.LogFlushInterval = 0
	}
	out.derivePaths()
	if out.Shards <= 0 {
		out.Shards = runtime.GOMAXPROCS(0)
		if out.Shards > 8 {
			out.Shards = 8
		}
	}
	if out.RingReplicas <= 0 {
		out.RingReplicas = 16
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 1024
	}
	if out.Batch <= 0 {
		out.Batch = 256
	}
	if out.ScoreTick <= 0 {
		out.ScoreTick = 5 * time.Millisecond
	}
	if out.LoadHigh <= 0 || out.LoadHigh > 1 {
		out.LoadHigh = 0.75
	}
	if out.LoadCritical <= 0 || out.LoadCritical > 1 {
		out.LoadCritical = 0.9
	}
	if out.LoadCritical < out.LoadHigh {
		out.LoadCritical = out.LoadHigh
	}
	if out.Pace <= 0 {
		out.Pace = time.Millisecond
	}
	// Forensics knobs share the zero-value convention: 0 picks the default,
	// negative disables. Normalize the disabled forms here so the hot path
	// only ever compares against 0.
	if out.AttributionK == 0 {
		out.AttributionK = 5
	} else if out.AttributionK < 0 {
		out.AttributionK = 0
	}
	if out.AttrBenignEvery < 0 {
		out.AttrBenignEvery = 0
	}
	if out.FlightSize == 0 {
		out.FlightSize = 256
	} else if out.FlightSize < 0 {
		out.FlightSize = 0
	}
	if out.SlowSample == 0 {
		out.SlowSample = 250 * time.Millisecond
	} else if out.SlowSample < 0 {
		out.SlowSample = 0
	}
	if out.SLOLatencyTarget == 0 {
		out.SLOLatencyTarget = 50 * time.Millisecond
	} else if out.SLOLatencyTarget < 0 {
		out.SLOLatencyTarget = 0
	}
	if out.SLOLatencyBudget <= 0 {
		out.SLOLatencyBudget = 0.01
	}
	if out.SLOShedBudget <= 0 {
		out.SLOShedBudget = 0.01
	}
	if out.SLOAlpha <= 0 || out.SLOAlpha > 1 {
		out.SLOAlpha = 0.02
	}
	return out
}

// worker is one monitored stream's runtime state.
type worker struct {
	id       int
	name     string
	prog     perspectron.Workload
	benign   bool // ground-truth label, drives the shed policy
	breaker  *breaker
	ladder   *ladder
	episodes atomic.Int64 // completed episodes
	failures atomic.Int64 // failed episodes
	restarts atomic.Int64 // goroutine restarts after a panic
	sheds    atomic.Int64 // samples shed by admission control
	lastErr  atomic.Pointer[string]
}

// Supervisor owns the workers, the shard ring, the model pointer, the
// checkpoint watcher and the health surface. Create with New, drive with
// Run.
type Supervisor struct {
	cfg     Config
	models  atomic.Pointer[Models]
	watch   *watcher
	workers []*worker
	ring    *ring
	shards  []*shard
	log     *verdictLog

	// produceDone closes once every stream worker has exited; scorers then
	// finish draining their queues and stop. Created by Run.
	produceDone chan struct{}

	flight *flightRecorder // last N attributed verdicts (/debug/verdicts)
	slo    *sloTracker     // burn-rate state surfaced on /healthz

	// report and base are the crash-safe file mode's recovery outcome and
	// cumulative ledger baseline (nil report = durability off).
	report *RecoveryReport
	base   ServeState

	started    time.Time
	listenAddr atomic.Pointer[string] // bound metrics address, for /healthz self-discovery

	ready      atomic.Bool
	draining   atomic.Bool
	running    atomic.Int64 // workers currently live
	driftProbe atomic.Pointer[DriftProbe]

	// scoreHook (tests only) runs before each sample is scored — the chaos
	// harness's scorer-panic injection point. onVerdict (tests only)
	// observes every verdict record after logging.
	scoreHook func(*ingestItem)
	onVerdict func(VerdictRecord)
}

// New loads the initial models (from Config.Detector/Classifier or the
// checkpoint paths) and prepares the supervisor. It fails fast on a missing
// or corrupt initial checkpoint — rollback needs a last good model to roll
// back to.
func New(cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("serve: no workloads to monitor")
	}
	if cfg.VerdictLogPath != "" && cfg.VerdictLog != nil {
		return nil, fmt.Errorf("serve: VerdictLog and VerdictLogPath are mutually exclusive")
	}
	var report *RecoveryReport
	if cfg.VerdictLogPath != "" {
		var err error
		if report, err = runRecovery(cfg); err != nil {
			return nil, err
		}
	}
	det, cls := cfg.Detector, cfg.Classifier
	loadedDet, loadedCls := false, false
	if det == nil && cfg.DetectorPath != "" {
		var err error
		if det, err = perspectron.LoadFile(cfg.DetectorPath); err != nil {
			return nil, fmt.Errorf("serve: initial detector checkpoint: %w", err)
		}
		loadedDet = true
	}
	if cls == nil && cfg.ClassifierPath != "" {
		var err error
		if cls, err = perspectron.LoadClassifierFile(cfg.ClassifierPath); err != nil {
			return nil, fmt.Errorf("serve: initial classifier checkpoint: %w", err)
		}
		loadedCls = true
	}
	if det == nil {
		return nil, fmt.Errorf("serve: a detector is required (DetectorPath or Detector)")
	}
	vlog := cfg.VerdictLog
	if cfg.VerdictLogPath != "" {
		var err error
		if vlog, err = openVerdictLog(cfg.VerdictLogPath); err != nil {
			return nil, fmt.Errorf("serve: opening verdict log: %w", err)
		}
	}
	// The checkpoints we just proved loadable from disk get banked as the
	// last-good fallback chain recovery restores from after corruption.
	// Injected models (tests, embedding) prove nothing about the files.
	if !cfg.DisableLastGood {
		if loadedDet {
			saveLastGood(cfg.DetectorPath)
		}
		if loadedCls {
			saveLastGood(cfg.ClassifierPath)
		}
	}
	s := &Supervisor{
		cfg:     cfg,
		log:     vlog,
		flight:  newFlightRecorder(cfg.FlightSize),
		slo:     newSLOTracker(cfg),
		report:  report,
		started: time.Now(),
	}
	if report != nil {
		s.base = report.State
	}
	s.models.Store(&Models{Det: det, Cls: cls})
	if cfg.PollInterval > 0 && (cfg.DetectorPath != "" || cfg.ClassifierPath != "") {
		s.watch = newWatcher(cfg.DetectorPath, cfg.ClassifierPath, &s.models, cfg.PollInterval)
		s.watch.saveGood = !cfg.DisableLastGood
	}
	for i, w := range cfg.Workloads {
		s.workers = append(s.workers, &worker{
			id:      i,
			name:    w.Info().Name,
			prog:    w,
			benign:  w.Info().Label == workload.Benign,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			ladder:  newLadder(cfg.ClassifierFloor, cfg.DetectorFloor, cfg.Hysteresis, cls != nil),
		})
	}
	s.ring = newRing(cfg.Shards, cfg.RingReplicas)
	for i := 0; i < cfg.Shards; i++ {
		// The load rung reuses the coverage ladder on headroom = 1-pressure,
		// so its floors are the complements of the pressure marks.
		load := newLadder(1-cfg.LoadHigh, 1-cfg.LoadCritical, cfg.Hysteresis, cls != nil)
		s.shards = append(s.shards, newShard(i, cfg.QueueDepth, load,
			newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)))
	}
	return s, nil
}

// Models returns the currently served model pair (the hot-reload target).
func (s *Supervisor) Models() *Models { return s.models.Load() }

// pollNow forces one watcher tick — the deterministic path tests and the
// drain use instead of waiting out PollInterval.
func (s *Supervisor) pollNow() {
	if s.watch != nil {
		s.watch.forcePoll()
		s.watch.tick()
	}
}

// Run starts the watcher, one scorer goroutine per shard, and one producer
// goroutine per worker, then blocks until every worker finishes
// (MaxEpisodes) or ctx ends. On ctx cancellation it drains: workers stop at
// their next sample, scorers finish every queued sample (each one scored or
// shed — never dropped), the verdict log flushes, and Run returns with zero
// goroutines left behind.
func (s *Supervisor) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var watchWg sync.WaitGroup
	if s.watch != nil {
		watchWg.Add(1)
		go func() {
			defer watchWg.Done()
			s.watch.run(runCtx)
		}()
	}
	// File-mode durability loop: flush the verdict log and persist the
	// accounting ledger on a cadence, so a kill -9 loses at most one
	// interval's verdicts — and those are reconciled as lost_on_crash at the
	// next startup, never silently.
	var flushWg sync.WaitGroup
	if s.cfg.VerdictLogPath != "" && s.cfg.LogFlushInterval > 0 {
		flushWg.Add(1)
		go func() {
			defer flushWg.Done()
			t := time.NewTicker(s.cfg.LogFlushInterval)
			defer t.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-t.C:
					// A flush error flips the log to counted-lossy mode and
					// shows on /healthz; the loop keeps ticking — each tick
					// is also the retry opportunity.
					s.log.flush()
					s.persistState()
				}
			}
		}()
	}
	s.produceDone = make(chan struct{})
	var scorerWg sync.WaitGroup
	for _, sh := range s.shards {
		scorerWg.Add(1)
		go func(sh *shard) {
			defer scorerWg.Done()
			s.scoreShard(sh)
		}(sh)
	}
	var workerWg sync.WaitGroup
	for _, w := range s.workers {
		workerWg.Add(1)
		go func(w *worker) {
			defer workerWg.Done()
			s.superviseWorker(runCtx, w)
		}(w)
	}
	s.ready.Store(true)
	defer s.ready.Store(false)

	workersDone := make(chan struct{})
	go func() { workerWg.Wait(); close(workersDone) }()
	select {
	case <-workersDone:
	case <-ctx.Done():
		s.draining.Store(true)
		cancel() // stop workers at their next sample
		<-workersDone
	}
	s.draining.Store(true)
	close(s.produceDone) // scorers drain their queues and exit
	scorerWg.Wait()
	cancel() // release the watcher and the flush loop
	watchWg.Wait()
	flushWg.Wait()
	flushErr := s.log.flush()
	s.persistState() // final ledger: a clean drain balances exactly
	if cerr := s.log.close(); cerr != nil && flushErr == nil {
		flushErr = cerr
	}
	if flushErr != nil {
		return fmt.Errorf("serve: flushing verdict log: %w", flushErr)
	}
	return ctx.Err()
}

// superviseWorker keeps one worker alive: the inner loop runs episodes with
// breaker + backoff; a panic that escapes an episode (scoring bug, not
// workload panic — those surface as errors) is recovered here and the loop
// restarts.
func (s *Supervisor) superviseWorker(ctx context.Context, w *worker) {
	reg := telemetry.Get()
	s.running.Add(1)
	defer s.running.Add(-1)
	reg.Gauge("perspectron_serve_workers_running").Add(1)
	defer reg.Gauge("perspectron_serve_workers_running").Add(-1)
	for ctx.Err() == nil {
		if s.runEpisodeLoop(ctx, w) {
			return // loop ended normally (ctx done or MaxEpisodes)
		}
		// A panic escaped: count the restart and re-enter the loop.
		w.restarts.Add(1)
		reg.Counter(telemetry.Name("perspectron_serve_worker_panics_total", "worker", w.name)).Inc()
	}
}

// runEpisodeLoop drives episodes until ctx ends or MaxEpisodes completes,
// reporting true on a normal exit and false when a panic unwound it.
func (s *Supervisor) runEpisodeLoop(ctx context.Context, w *worker) (normal bool) {
	defer func() {
		if r := recover(); r != nil {
			msg := fmt.Sprintf("worker panic: %v", r)
			w.lastErr.Store(&msg)
			normal = false
		}
	}()
	reg := telemetry.Get()
	bo := retry.NewBackoff(s.cfg.Backoff, s.cfg.Seed*31_337+int64(w.id))
	episode := int(w.episodes.Load() + w.failures.Load()) // resume numbering after a panic restart
	for ctx.Err() == nil {
		if s.cfg.MaxEpisodes > 0 && w.episodes.Load() >= int64(s.cfg.MaxEpisodes) {
			return true
		}
		if !w.breaker.allow() {
			// Breaker open: sleep a cooldown slice, not the whole cooldown,
			// so drain stays prompt.
			if !sleepCtx(ctx, s.cfg.BreakerCooldown/4+time.Millisecond) {
				return true
			}
			continue
		}
		err := s.episode(ctx, w, episode)
		episode++
		if err == nil {
			w.episodes.Add(1)
			w.breaker.success()
			bo.Reset()
			reg.Counter(telemetry.Name("perspectron_serve_episodes_total", "worker", w.name)).Inc()
			continue
		}
		if ctx.Err() != nil {
			return true // drain, not a failure
		}
		w.failures.Add(1)
		msg := err.Error()
		w.lastErr.Store(&msg)
		reg.Counter(telemetry.Name("perspectron_serve_episode_failures_total", "worker", w.name)).Inc()
		if w.breaker.failure() {
			reg.Counter(telemetry.Name("perspectron_serve_breaker_open_total", "worker", w.name)).Inc()
		}
		if !retry.Sleep(ctx, "serve."+w.name, bo.Next()) {
			return true
		}
	}
	return true
}

// episode runs the workload once end to end as a pure producer: each raw
// sample is routed into the ingest stage under the per-sample deadline —
// scoring happens on the shard scorers, not here. When the target shard is
// past LoadHigh the producer paces (sleeps Pace per sample): the
// backpressure half of the overload contract. Workload panics surface as
// errors through the session; a stall past SampleTimeout fails the episode.
func (s *Supervisor) episode(ctx context.Context, w *worker, episode int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("episode panic: %v", r)
		}
	}()
	epCtx, cancel := context.WithTimeout(ctx, s.cfg.EpisodeTimeout)
	defer cancel()

	mdl := s.models.Load() // pinned for the whole episode
	sess, err := perspectron.NewSession(epCtx, mdl.Det, mdl.Cls, perspectron.SessionConfig{
		Workload: w.prog,
		MaxInsts: s.cfg.MaxInsts,
		Seed:     s.cfg.Seed + int64(w.id)*10_007 + int64(episode)*101,
		Faults:   s.cfg.Faults,
	})
	if err != nil {
		return err
	}
	defer sess.Close()

	for {
		sampleCtx, sampleCancel := context.WithTimeout(epCtx, s.cfg.SampleTimeout)
		rs, ok := sess.NextRaw(sampleCtx)
		stalled := sampleCtx.Err() == context.DeadlineExceeded
		sampleCancel()
		if !ok {
			if epCtx.Err() != nil {
				return fmt.Errorf("episode deadline: %w", epCtx.Err())
			}
			if stalled {
				return fmt.Errorf("sample stalled past %s", s.cfg.SampleTimeout)
			}
			break // run genuinely ended
		}
		if pressure := s.route(w, episode, rs); pressure >= s.cfg.LoadHigh {
			if !sleepCtx(epCtx, s.cfg.Pace) {
				break // drain or deadline; the session loop surfaces which
			}
		}
	}
	return sess.Err()
}

// sleepCtx sleeps d or until ctx ends, reporting false on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
