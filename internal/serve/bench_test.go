package serve

// The serve-layer saturation benchmark: ≥1k concurrent streams pushing real
// raw samples through the full ingest stage — consistent-hash routing,
// bounded queues with backpressure pacing, shard scorers batch-scoring over
// the packed kernels — measuring p99 enqueue-to-verdict latency and the
// shed rate at saturation. `make bench` converts the output into
// BENCH_serve.json; the accounting invariant (zero unlogged sheds) is both
// asserted and emitted as a metric so the artifact itself proves it.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"perspectron"
)

func BenchmarkServeSaturation(b *testing.B) {
	det, _ := testModels(b)

	// Harvest one episode of real raw samples to replay across streams —
	// realistic feature vectors without paying simulator cost per stream.
	ctx := context.Background()
	sess, err := perspectron.NewSession(ctx, det, nil, perspectron.SessionConfig{
		Workload: perspectron.AttackByName("spectreV1", "fr"),
		MaxInsts: 60_000,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var samples []perspectron.RawSample
	for {
		rs, ok := sess.NextRaw(ctx)
		if !ok {
			break
		}
		samples = append(samples, rs)
	}
	sess.Close()
	if len(samples) == 0 {
		b.Fatal("no raw samples harvested")
	}

	const (
		streams          = 1024
		samplesPerStream = 50
	)
	var p99ms, shedRate, unlogged, perSec float64
	for iter := 0; iter < b.N; iter++ {
		s, err := New(Config{
			Detector:   det,
			Workloads:  []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
			Shards:     8,
			QueueDepth: 512,
			Batch:      256,
			ScoreTick:  time.Millisecond,
			Pace:       100 * time.Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		workers := make([]*worker, streams)
		for i := range workers {
			workers[i] = &worker{
				id:     i,
				name:   fmt.Sprintf("stream-%d", i),
				benign: i%4 != 0, // mostly-benign fleet, like production
				ladder: newLadder(s.cfg.ClassifierFloor, s.cfg.DetectorFloor, s.cfg.Hysteresis, false),
			}
		}

		var mu sync.Mutex
		latencies := make([]float64, 0, streams*samplesPerStream)
		var shedRecords int64
		s.onVerdict = func(rec VerdictRecord) {
			mu.Lock()
			if rec.Shed {
				shedRecords++
			} else {
				latencies = append(latencies, rec.LatencyMs)
			}
			mu.Unlock()
		}

		s.produceDone = make(chan struct{})
		var scorerWg sync.WaitGroup
		for _, sh := range s.shards {
			scorerWg.Add(1)
			go func(sh *shard) {
				defer scorerWg.Done()
				s.scoreShard(sh)
			}(sh)
		}

		start := time.Now()
		var producerWg sync.WaitGroup
		for _, w := range workers {
			producerWg.Add(1)
			go func(w *worker) {
				defer producerWg.Done()
				for n := 0; n < samplesPerStream; n++ {
					rs := samples[(w.id+n)%len(samples)]
					if pressure := s.route(w, 0, rs); pressure >= s.cfg.LoadHigh {
						time.Sleep(s.cfg.Pace) // the backpressure contract
					}
				}
			}(w)
		}
		producerWg.Wait()
		close(s.produceDone)
		scorerWg.Wait()
		elapsed := time.Since(start)

		var enq, scored, shed int64
		for _, sh := range s.shards {
			enq += sh.enqueued.Load()
			scored += sh.scored.Load()
			shed += sh.shed.Load()
			if d := sh.depth(); d != 0 {
				b.Fatalf("shard %d left %d samples queued", sh.id, d)
			}
		}
		if enq != scored+shed {
			b.Fatalf("samples dropped unlogged: enqueued=%d scored=%d shed=%d", enq, scored, shed)
		}
		if int64(len(latencies)) != scored {
			b.Fatalf("latency records %d != scored %d", len(latencies), scored)
		}
		sort.Float64s(latencies)
		p99ms = latencies[len(latencies)*99/100]
		shedRate = float64(shed) / float64(enq)
		unlogged = float64(shed - shedRecords) // must be 0: every shed logged
		perSec = float64(enq) / elapsed.Seconds()
		if unlogged != 0 {
			b.Fatalf("%v sheds went unlogged", unlogged)
		}
	}
	b.ReportMetric(streams, "streams")
	b.ReportMetric(perSec, "samples/s")
	b.ReportMetric(p99ms, "p99_ms")
	b.ReportMetric(shedRate, "shed_rate")
	b.ReportMetric(unlogged, "unlogged_sheds")
	b.ReportMetric(0, "ns/op") // wall time is the saturation run, not a unit op
}

// BenchmarkServeForensicsOverhead pins the per-verdict cost of the
// forensics layer, in the same family as BenchmarkMonitorTelemetryOverhead:
// the "off" arm (tracing, attribution, flight recorder, SLO, slow exemplars
// all disabled) must match the pre-forensics scoring hot path — the
// acceptance criterion against the BENCH_serve.json baseline — while the
// "on" arm prices what the default configuration pays per scored sample.
func BenchmarkServeForensicsOverhead(b *testing.B) {
	det, _ := testModels(b)
	ctx := context.Background()
	sess, err := perspectron.NewSession(ctx, det, nil, perspectron.SessionConfig{
		Workload: perspectron.AttackByName("spectreV1", "fr"),
		MaxInsts: 60_000,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var samples []perspectron.RawSample
	for {
		rs, ok := sess.NextRaw(ctx)
		if !ok {
			break
		}
		samples = append(samples, rs)
	}
	sess.Close()
	if len(samples) == 0 {
		b.Fatal("no raw samples harvested")
	}

	arms := []struct {
		name string
		cfg  Config
	}{
		{"off", Config{
			DisableTracing:   true,
			AttributionK:     -1,
			FlightSize:       -1,
			SlowSample:       -1,
			SLOLatencyTarget: -1,
		}},
		{"on", Config{}}, // the forensics defaults: tracing + attribution + flight + SLO
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			cfg := arm.cfg
			cfg.Detector = det
			cfg.Workloads = []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")}
			s, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			sh := s.shards[0]
			w := &worker{id: 0, name: "bench", benign: false,
				ladder: newLadder(s.cfg.ClassifierFloor, s.cfg.DetectorFloor, s.cfg.Hysteresis, false)}
			var cache scorerCache
			loadMode, _ := sh.load.snapshot()
			now := time.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := &ingestItem{w: w, episode: 0, sample: samples[i%len(samples)],
					enqueuedAt: now, dequeuedAt: now}
				if !s.scoreItem(sh, &cache, it, loadMode) {
					b.Fatal("scorer panicked")
				}
			}
		})
	}
}
