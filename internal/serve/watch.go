package serve

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"perspectron"
	"perspectron/internal/retry"
	"perspectron/internal/telemetry"
)

// Models is the immutable pair of scoring models a supervisor serves with.
// Hot-reload swaps the whole pair atomically; sessions in flight keep the
// pointer they started with, so a reload never changes a model under a
// running episode.
type Models struct {
	Det *perspectron.Detector
	Cls *perspectron.Classifier
}

// Versions returns the content versions for health reporting.
func (m *Models) Versions() (det, cls string) {
	det, cls = "none", "none"
	if m.Det != nil {
		det = m.Det.Version()
	}
	if m.Cls != nil {
		cls = m.Cls.Version()
	}
	return det, cls
}

// fileSig is the cheap change signal the watcher polls: a checkpoint write
// (atomic rename) moves both fields.
type fileSig struct {
	mod  time.Time
	size int64
}

func sigOf(path string) (fileSig, bool) {
	st, err := os.Stat(path)
	if err != nil {
		return fileSig{}, false
	}
	return fileSig{mod: st.ModTime(), size: st.Size()}, true
}

// watcher polls the checkpoint files and hot-swaps the supervisor's model
// pointer. A new file that fails to load — torn write, checksum mismatch,
// structural validation — is NOT swapped in: the last good models stay live
// (the rollback path), the failure is counted and surfaced in /healthz, and
// the watcher keeps polling so a subsequent good write recovers. Repeated
// stat or load failures back the poll off with seeded jitter (up to 16×
// PollInterval) so a persistently corrupt or vanishing file does not
// busy-spin the watcher; the first success snaps the cadence back.
type watcher struct {
	detPath  string
	clsPath  string
	models   *atomic.Pointer[Models]
	poll     time.Duration
	saveGood bool // bank verified reloads as .last-good fallback copies

	mu         sync.Mutex
	detSig     fileSig
	clsSig     fileSig
	lastError  string    // most recent failed reload, "" when healthy
	lastOkAt   time.Time // most recent successful swap
	reloads    int
	rollbacks  int
	bo         *retry.Backoff
	failStreak int       // consecutive failed ticks (stat or load)
	nextTry    time.Time // ticks before this are skipped (backoff)
}

func newWatcher(detPath, clsPath string, models *atomic.Pointer[Models], poll time.Duration) *watcher {
	w := &watcher{detPath: detPath, clsPath: clsPath, models: models, poll: poll}
	w.bo = retry.NewBackoff(retry.Policy{
		Base: poll, Max: 16 * poll, Factor: 2, Jitter: 0.5,
	}, int64(hashKey(detPath+"\x00"+clsPath)))
	if detPath != "" {
		w.detSig, _ = sigOf(detPath)
	}
	if clsPath != "" {
		w.clsSig, _ = sigOf(clsPath)
	}
	return w
}

// run polls until ctx ends. Each tick re-checks both files and applies at
// most one swap.
func (w *watcher) run(ctx context.Context) {
	t := time.NewTicker(w.poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			w.tick()
		}
	}
}

// tick is one poll round, exported to the supervisor's tests via the
// supervisor itself (Supervisor.pollNow). Ticks that land inside a failure
// backoff window are skipped.
func (w *watcher) tick() {
	w.mu.Lock()
	if !w.nextTry.IsZero() && time.Now().Before(w.nextTry) {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	reg := telemetry.Get()
	changedDet, detSig, okDet := w.changed(w.detPath, &w.detSig)
	changedCls, clsSig, okCls := w.changed(w.clsPath, &w.clsSig)
	if !changedDet && !changedCls {
		w.mu.Lock()
		defer w.mu.Unlock()
		if !okDet || !okCls {
			// A watched checkpoint cannot be stat'ed (deleted, permissions):
			// back off so the failure doesn't busy-spin the poll loop.
			w.backoffLocked(reg)
		} else {
			w.recoverLocked()
		}
		return
	}
	cur := w.models.Load()
	next := &Models{Det: cur.Det, Cls: cur.Cls}
	var err error
	if changedDet {
		var det *perspectron.Detector
		if det, err = perspectron.LoadFile(w.detPath); err == nil {
			next.Det = det
		}
	}
	if err == nil && changedCls {
		var cls *perspectron.Classifier
		if cls, err = perspectron.LoadClassifierFile(w.clsPath); err == nil {
			next.Cls = cls
		}
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	// Either way the signatures advance: a corrupt file is not retried every
	// tick, only when it changes again.
	if changedDet {
		w.detSig = detSig
	}
	if changedCls {
		w.clsSig = clsSig
	}
	if err != nil {
		w.rollbacks++
		w.lastError = err.Error()
		w.backoffLocked(reg)
		reg.Counter(telemetry.Name("perspectron_serve_reloads_total", "result", "rollback")).Inc()
		fmt.Fprintf(os.Stderr, "serve: checkpoint reload failed, keeping last good models: %v\n", err)
		return
	}
	w.models.Store(next)
	w.reloads++
	w.lastError = ""
	w.lastOkAt = time.Now()
	w.recoverLocked()
	// The new files just proved loadable: rotate them into the last-good
	// fallback chain startup recovery restores from.
	if w.saveGood {
		if changedDet {
			saveLastGood(w.detPath)
		}
		if changedCls {
			saveLastGood(w.clsPath)
		}
	}
	det, cls := next.Versions()
	reg.Counter(telemetry.Name("perspectron_serve_reloads_total", "result", "ok")).Inc()
	reg.Event("serve.reload", map[string]any{"detector": det, "classifier": cls})
	fmt.Fprintf(os.Stderr, "serve: hot-reloaded models (detector %s, classifier %s)\n", det, cls)
}

// backoffLocked records one failed tick and schedules the next attempt with
// jittered exponential backoff. Caller holds w.mu.
func (w *watcher) backoffLocked(reg *telemetry.Registry) {
	w.failStreak++
	w.nextTry = time.Now().Add(w.bo.Next())
	reg.Counter(telemetry.Name("perspectron_serve_watch_backoff_total", "path", w.detPath)).Inc()
}

// recoverLocked snaps the poll cadence back after a healthy tick. Caller
// holds w.mu.
func (w *watcher) recoverLocked() {
	w.failStreak = 0
	w.nextTry = time.Time{}
	w.bo.Reset()
}

// forcePoll clears any pending backoff window so the next tick runs — the
// deterministic hook Supervisor.pollNow uses.
func (w *watcher) forcePoll() {
	w.mu.Lock()
	w.nextTry = time.Time{}
	w.mu.Unlock()
}

// changed stats path against last and reports whether it moved, returning
// the fresh signature and whether the stat itself succeeded. An empty path
// reports no change and a healthy stat.
func (w *watcher) changed(path string, last *fileSig) (bool, fileSig, bool) {
	if path == "" {
		return false, fileSig{}, true
	}
	sig, ok := sigOf(path)
	if !ok {
		return false, *last, false
	}
	w.mu.Lock()
	prev := *last
	w.mu.Unlock()
	return sig != prev, sig, true
}

// snapshot returns reload health for /healthz.
func (w *watcher) snapshot() (reloads, rollbacks int, lastError string, lastOkAt time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reloads, w.rollbacks, w.lastError, w.lastOkAt
}
