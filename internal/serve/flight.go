package serve

// The flight recorder: the last N fully-attributed verdict records, held in
// a lock-free telemetry.Ring and served at /debug/verdicts. The verdict log
// is the durable stream; the recorder is the "what just happened" view an
// operator opens first — every entry carries the trace timings and the
// weight×bit attribution, so a fresh alert can be triaged from one curl
// without touching the log file (docs/OBSERVABILITY.md walks through it).

import (
	"net/http"

	"perspectron/internal/telemetry"
)

// flightRecorder wraps the ring; the nil recorder (disabled) absorbs pushes
// and serves an empty snapshot.
type flightRecorder struct {
	ring *telemetry.Ring
}

// newFlightRecorder returns a recorder holding the last n attributed
// verdicts, or nil when n <= 0.
func newFlightRecorder(n int) *flightRecorder {
	if n <= 0 {
		return nil
	}
	return &flightRecorder{ring: telemetry.NewRing(n)}
}

// push records one verdict. The record is stored by value, so the caller's
// copy can be reused freely.
func (f *flightRecorder) push(rec VerdictRecord) {
	if f == nil {
		return
	}
	f.ring.Push(rec)
}

// handler serves the recorder as JSON (telemetry.RingSnapshot with
// VerdictRecord entries, oldest first).
func (f *flightRecorder) handler() http.Handler {
	if f == nil {
		return telemetry.RingHandler(nil)
	}
	return telemetry.RingHandler(f.ring)
}
