package serve

// Startup recovery: everything a crashed (kill -9, power loss) or
// disk-faulted previous incarnation may have left behind is repaired here,
// before the supervisor starts producing — a torn verdict-log tail is
// truncated to the last complete JSONL record (the torn bytes quarantined,
// never silently discarded), a corrupt primary checkpoint falls back through
// the last-good chain, temp debris from failed atomic writes is swept, and
// the durable state file is reconciled against what actually reached disk so
// the accounting invariant
//
//	enqueued == records + lost
//
// (records = scored + shed + error verdicts on disk, lost = counted-lossy
// drops + lost_on_crash) holds across restarts. Every recovery stamps a
// mode:"recovery" accounting record into the log carrying the new session
// number and the verdicts attributed to the crash.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"perspectron"
	"perspectron/internal/diskfaults"
	"perspectron/internal/telemetry"
)

// ServeState is the durable progress ledger persisted atomically next to the
// verdict log (Config.StatePath). All counters are cumulative across process
// incarnations; the post-recovery baseline always satisfies
// Enqueued == Records + Lost.
type ServeState struct {
	// Sessions counts process incarnations (1-based; each recovery bumps it).
	Sessions int `json:"sessions"`
	// Enqueued is every sample ever admitted to the ingest stage.
	Enqueued int64 `json:"enqueued"`
	// Records is every sample verdict that reached the log on disk
	// (recovery stamps excluded).
	Records int64 `json:"records"`
	// Lost is every verdict that did not: counted-lossy drops while the disk
	// was broken plus lost_on_crash reconciled at recovery.
	Lost int64 `json:"lost"`
}

// loadServeState reads the state file; ok is false when it is missing or
// undecodable (recovery then rebuilds a baseline from the log itself).
func loadServeState(path string) (st ServeState, ok bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return ServeState{}, false
	}
	if json.Unmarshal(b, &st) != nil {
		telemetry.Get().Counter("perspectron_serve_state_corrupt_total").Inc()
		return ServeState{}, false
	}
	return st, true
}

// saveServeState persists the ledger atomically (site "servestate").
func saveServeState(path string, st ServeState) error {
	return diskfaults.WriteFileAtomic(diskfaults.SiteServeState, path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(st)
	})
}

// RecoveryReport is what startup recovery found and fixed, printed by the
// CLI and exposed for tests.
type RecoveryReport struct {
	// Session is this incarnation's 1-based number.
	Session int `json:"session"`
	// TornBytes is the size of the torn verdict-log tail truncated away;
	// QuarantinePath is where those bytes were preserved (empty when the
	// tail was clean).
	TornBytes      int64  `json:"torn_bytes"`
	QuarantinePath string `json:"quarantine_path,omitempty"`
	// RecordsOnDisk is the complete sample records found in the repaired
	// log (recovery stamps excluded); CorruptLines the undecodable complete
	// lines skipped while counting.
	RecordsOnDisk int64 `json:"records_on_disk"`
	CorruptLines  int   `json:"corrupt_lines"`
	// LostOnCrash is the verdicts newly attributed to the previous
	// incarnation: admitted per the state file but absent from disk.
	LostOnCrash int64 `json:"lost_on_crash"`
	// CheckpointFallback names the last-good copy restored over a corrupt
	// primary checkpoint (empty when the primary loaded cleanly).
	CheckpointFallback string `json:"checkpoint_fallback,omitempty"`
	// SweptTemp counts temp-file debris removed.
	SweptTemp int `json:"swept_temp"`
	// State is the reconciled post-recovery baseline.
	State ServeState `json:"state"`
}

// String renders the report as the one-line startup log the CLI prints.
func (r *RecoveryReport) String() string {
	if r == nil {
		return "recovery: disabled"
	}
	s := fmt.Sprintf("recovery: session %d, %d records on disk", r.Session, r.RecordsOnDisk)
	if r.TornBytes > 0 {
		s += fmt.Sprintf(", %dB torn tail quarantined at %s", r.TornBytes, r.QuarantinePath)
	}
	if r.LostOnCrash > 0 {
		s += fmt.Sprintf(", %d lost on crash", r.LostOnCrash)
	}
	if r.CheckpointFallback != "" {
		s += ", checkpoint restored from " + r.CheckpointFallback
	}
	if r.SweptTemp > 0 {
		s += fmt.Sprintf(", %d temp files swept", r.SweptTemp)
	}
	return s
}

// repairChunk is how much of the tail repairLogTail reads per backward step
// while hunting for the last newline.
const repairChunk = 64 * 1024

// repairLogTail truncates path to its last newline-terminated byte, moving
// the torn remainder to path+".torn" (appended, so repeated crashes keep
// accumulating evidence rather than overwriting it). A missing log is clean.
func repairLogTail(path string) (torn int64, quarantine string, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, "", nil
		}
		return 0, "", err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil || size == 0 {
		return 0, "", err
	}
	// Scan backwards for the last '\n'; end == 0 means the whole file is one
	// torn line.
	end := int64(0)
	buf := make([]byte, repairChunk)
	for pos := size; pos > 0 && end == 0; {
		n := int64(len(buf))
		if n > pos {
			n = pos
		}
		pos -= n
		if _, err := f.ReadAt(buf[:n], pos); err != nil {
			return 0, "", err
		}
		if i := bytes.LastIndexByte(buf[:n], '\n'); i >= 0 {
			end = pos + int64(i) + 1
		}
	}
	torn = size - end
	if torn == 0 {
		return 0, "", nil
	}
	// Quarantine the torn bytes before truncating: evidence first.
	tail := make([]byte, torn)
	if _, err := f.ReadAt(tail, end); err != nil {
		return 0, "", err
	}
	quarantine = path + ".torn"
	q, err := os.OpenFile(quarantine, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, "", err
	}
	_, werr := q.Write(tail)
	if serr := q.Sync(); werr == nil {
		werr = serr
	}
	if cerr := q.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return 0, "", werr
	}
	if err := f.Truncate(end); err != nil {
		return 0, "", err
	}
	if err := f.Sync(); err != nil {
		return 0, "", err
	}
	reg := telemetry.Get()
	reg.Counter("perspectron_serve_log_repairs_total").Inc()
	reg.Counter("perspectron_serve_log_torn_bytes_total").Add(uint64(torn))
	return torn, quarantine, nil
}

// scanLog tallies the repaired log: complete sample records (recovery
// stamps excluded), corrupt lines, the number of recovery stamps, and the
// cumulative Lost those stamps carry (the baseline source when the state
// file is missing).
func scanLog(path string) (records int64, corrupt, stamps, maxSession int, stampedLost int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, 0, 0, 0, nil
		}
		return 0, 0, 0, 0, 0, err
	}
	defer f.Close()
	sc := NewVerdictScanner(f)
	for {
		rec, ok := sc.Next()
		if !ok {
			break
		}
		if rec.Mode == ModeRecovery {
			stamps++
			stampedLost += int64(rec.Lost)
			if rec.Session > maxSession {
				maxSession = rec.Session
			}
			continue
		}
		records++
	}
	return records, sc.Corrupt(), stamps, maxSession, stampedLost, sc.Err()
}

// sweepTempDebris removes "<base>.tmp-*" leftovers from failed atomic writes
// next to each of paths. Unlike the corpus cache's age-gated sweep, these
// files belong to this (single-instance) service, so any debris present at
// startup is from a dead writer.
func sweepTempDebris(paths ...string) int {
	swept := 0
	seen := map[string]bool{}
	for _, p := range paths {
		if p == "" {
			continue
		}
		pat := filepath.Join(filepath.Dir(p), filepath.Base(p)+".tmp-*")
		if seen[pat] {
			continue
		}
		seen[pat] = true
		matches, _ := filepath.Glob(pat)
		for _, m := range matches {
			if os.Remove(m) == nil {
				swept++
			}
		}
	}
	if swept > 0 {
		telemetry.Get().Counter("perspectron_serve_recovery_swept_total").Add(uint64(swept))
	}
	return swept
}

// lastGoodPaths returns the fallback chain behind a checkpoint path, nearest
// first.
func lastGoodPaths(path string) [2]string {
	return [2]string{path + ".last-good", path + ".last-good.2"}
}

// saveLastGood copies a just-verified-loadable checkpoint to its .last-good
// slot, rotating a differing previous copy to .last-good.2 — the fallback
// chain recovery walks when the primary is corrupt. Content-compared, so
// re-verifying an unchanged file writes nothing. Best-effort: last-good is
// insurance, its failure must not fail serving.
func saveLastGood(path string) {
	cur, err := os.ReadFile(path)
	if err != nil {
		return
	}
	chain := lastGoodPaths(path)
	prev, perr := os.ReadFile(chain[0])
	if perr == nil && bytes.Equal(prev, cur) {
		return
	}
	if perr == nil {
		_ = diskfaults.Rename(diskfaults.SiteCheckpoint, chain[0], chain[1])
	}
	_ = diskfaults.WriteFileAtomic(diskfaults.SiteCheckpoint, chain[0], func(w io.Writer) error {
		_, werr := w.Write(cur)
		return werr
	})
}

// recoverCheckpoint verifies that the checkpoint at path loads (via load,
// which validates the embedded checksum) and, when it does not, quarantines
// the corrupt primary at path+".corrupt" and restores the first loadable
// copy from the last-good chain. Returns the chain path restored from
// (empty when the primary was fine) and an error only when nothing in the
// chain loads.
func recoverCheckpoint(path string, load func(string) error) (fallback string, err error) {
	primaryErr := load(path)
	if primaryErr == nil {
		return "", nil
	}
	if !os.IsNotExist(primaryErr) {
		// Preserve the corrupt bytes for forensics; a missing file has
		// nothing to preserve.
		_ = os.Rename(path, path+".corrupt")
	}
	for _, cand := range lastGoodPaths(path) {
		if load(cand) != nil {
			continue
		}
		b, rerr := os.ReadFile(cand)
		if rerr != nil {
			continue
		}
		if werr := diskfaults.WriteFileAtomic(diskfaults.SiteCheckpoint, path, func(w io.Writer) error {
			_, e := w.Write(b)
			return e
		}); werr != nil {
			return "", fmt.Errorf("serve: restoring %s from %s: %w", path, cand, werr)
		}
		telemetry.Get().Counter("perspectron_serve_checkpoint_fallback_total").Inc()
		return cand, nil
	}
	return "", fmt.Errorf("serve: checkpoint %s corrupt (%v) and no loadable last-good copy", path, primaryErr)
}

// stampRecovery appends the mode:"recovery" accounting record directly to
// the repaired log (before the supervisor's buffered writer opens it, so
// session record counts stay stamp-free) and syncs it.
func stampRecovery(path string, session int, lost int64) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	wf := diskfaults.WrapFile(diskfaults.SiteVerdictLog, f)
	err = json.NewEncoder(wf).Encode(VerdictRecord{
		Mode:    ModeRecovery,
		Session: session,
		Lost:    int(lost),
	})
	if serr := wf.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// recover runs the full startup sequence for cfg (which must have
// VerdictLogPath set): sweep, checkpoint fallback, log-tail repair, ledger
// reconciliation, state save, recovery stamp.
func runRecovery(cfg Config) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	rep.SweptTemp = sweepTempDebris(cfg.VerdictLogPath, cfg.StatePath, cfg.DetectorPath, cfg.ClassifierPath)

	if cfg.DetectorPath != "" && cfg.Detector == nil {
		fb, err := recoverCheckpoint(cfg.DetectorPath, func(p string) error {
			_, e := perspectron.LoadFile(p)
			return e
		})
		if err != nil {
			return nil, err
		}
		rep.CheckpointFallback = fb
	}
	if cfg.ClassifierPath != "" && cfg.Classifier == nil {
		fb, err := recoverCheckpoint(cfg.ClassifierPath, func(p string) error {
			_, e := perspectron.LoadClassifierFile(p)
			return e
		})
		if err != nil {
			return nil, err
		}
		if fb != "" && rep.CheckpointFallback == "" {
			rep.CheckpointFallback = fb
		}
	}

	torn, quarantine, err := repairLogTail(cfg.VerdictLogPath)
	if err != nil {
		return nil, fmt.Errorf("serve: repairing verdict log: %w", err)
	}
	rep.TornBytes, rep.QuarantinePath = torn, quarantine

	records, corrupt, stamps, maxSession, stampedLost, err := scanLog(cfg.VerdictLogPath)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning verdict log: %w", err)
	}
	rep.RecordsOnDisk, rep.CorruptLines = records, corrupt

	st, ok := loadServeState(cfg.StatePath)
	if !ok {
		// No ledger (first run, or lost/corrupt state): rebuild the baseline
		// from the log itself. The recovery stamps preserve previously
		// reconciled losses, so repeated state loss does not forget them.
		st = ServeState{Sessions: stamps, Enqueued: records + stampedLost, Records: records, Lost: stampedLost}
	}
	// Reconcile: samples the ledger admitted that never reached disk are
	// lost_on_crash. The disk can also be AHEAD of the ledger (records
	// flushed after the last state save) — then the ledger catches up
	// instead of inventing loss.
	expected := st.Enqueued - st.Lost
	lostNew := expected - records
	if lostNew < 0 {
		st.Enqueued = records + st.Lost
		lostNew = 0
	}
	st.Lost += lostNew
	st.Records = records
	// A crash between the state save below and the stamp write leaves the
	// ledger one session ahead of the log (or, under state-file loss, the
	// stamps ahead of the rebuilt ledger) — take the max so session numbers
	// never repeat and stamped session numbers stay strictly increasing.
	if maxSession > st.Sessions {
		st.Sessions = maxSession
	}
	st.Sessions++
	rep.LostOnCrash = lostNew
	rep.Session = st.Sessions
	if lostNew > 0 {
		telemetry.Get().Counter("perspectron_serve_lost_on_crash_total").Add(uint64(lostNew))
	}
	if err := saveServeState(cfg.StatePath, st); err != nil {
		return nil, fmt.Errorf("serve: persisting state: %w", err)
	}
	if err := stampRecovery(cfg.VerdictLogPath, st.Sessions, lostNew); err != nil {
		return nil, fmt.Errorf("serve: stamping recovery record: %w", err)
	}
	rep.State = st
	return rep, nil
}

// derivePaths fills the durability defaults that hang off VerdictLogPath.
func (c *Config) derivePaths() {
	if c.VerdictLogPath != "" && c.StatePath == "" {
		c.StatePath = c.VerdictLogPath + ".state"
	}
}

// DurableHealth is the /healthz block for crash-safe serving: the ledger,
// the verdict log's disk state, and what the last recovery found.
type DurableHealth struct {
	Session  int   `json:"session"`
	Enqueued int64 `json:"enqueued"`
	Records  int64 `json:"records"`
	Lost     int64 `json:"lost"`
	// LostOnCrash is what this incarnation's recovery attributed to the
	// previous one; TornBytes the tail it truncated.
	LostOnCrash int64 `json:"lost_on_crash"`
	TornBytes   int64 `json:"torn_bytes"`
	// DiskError is sticky: the first disk error this incarnation ever hit,
	// reported even after recovery. Lossy marks the log currently dropping
	// (counted) records; Recoveries counts lossy→healthy transitions.
	DiskError  string `json:"disk_error,omitempty"`
	Lossy      bool   `json:"lossy,omitempty"`
	Recoveries int    `json:"recoveries,omitempty"`
}

// durableSnapshot folds the recovery baseline and the live session's log
// stats into the cumulative ledger view. Returns nil when durability is off
// (no VerdictLogPath).
func (s *Supervisor) durableSnapshot() *DurableHealth {
	if s.report == nil {
		return nil
	}
	ls := s.log.stats()
	d := &DurableHealth{
		Session:     s.report.Session,
		Enqueued:    s.base.Enqueued + s.sessionEnqueued(),
		Records:     s.base.Records + int64(ls.Records),
		Lost:        s.base.Lost + int64(ls.Lost),
		LostOnCrash: s.report.LostOnCrash,
		TornBytes:   s.report.TornBytes,
		Lossy:       ls.Lossy,
		Recoveries:  ls.Recoveries,
	}
	if ls.DiskErr != nil {
		d.DiskError = ls.DiskErr.Error()
	}
	return d
}

// sessionEnqueued sums the shards' admission counters — this incarnation's
// contribution to the durable Enqueued ledger.
func (s *Supervisor) sessionEnqueued() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.enqueued.Load()
	}
	return n
}

// persistState writes the current cumulative ledger to the state file. It
// runs right after a log flush, so Records counts lines actually on disk;
// the reconciliation at next startup recomputes Records from the disk anyway
// — only Enqueued and Lost feed the lost_on_crash math, and both are
// conservative (a sample admitted but unflushed at crash time is exactly a
// lost verdict).
func (s *Supervisor) persistState() {
	if s.report == nil || s.cfg.StatePath == "" {
		return
	}
	ls := s.log.stats()
	enq := s.sessionEnqueued()
	st := ServeState{
		Sessions: s.report.Session,
		Enqueued: s.base.Enqueued + enq,
		Records:  s.base.Records + int64(ls.Records),
		Lost:     s.base.Lost + int64(ls.Lost),
	}
	if err := saveServeState(s.cfg.StatePath, st); err != nil {
		telemetry.Get().Counter("perspectron_serve_state_save_errors_total").Inc()
	}
}

// Report returns the startup recovery report, nil when durability is off.
func (s *Supervisor) Report() *RecoveryReport { return s.report }

// quarantineSuffixes are the file suffixes recovery may create next to the
// verdict log and checkpoints; exported for tooling and tests via docs.
var quarantineSuffixes = []string{".torn", ".corrupt", ".last-good", ".last-good.2", ".state"}

// isQuarantinePath reports whether path is recovery bookkeeping rather than
// primary data (used by tests and sweep tooling).
func isQuarantinePath(path string) bool {
	for _, suf := range quarantineSuffixes {
		if strings.HasSuffix(path, suf) {
			return true
		}
	}
	return false
}
