package serve

import (
	"sync"

	"perspectron"
)

// ladder is one worker's graceful-degradation state machine. Coverage — the
// fraction of model features observable per sample — is smoothed with an
// EWMA, and the serving mode walks down the ladder (classifier → detector →
// threshold) as the smoothed coverage crosses configurable floors, with
// hysteresis on the way back up so a worker flapping around a floor does
// not oscillate between models every sample.
type ladder struct {
	classifierFloor float64 // below: classifier rung unusable
	detectorFloor   float64 // below: detector rung unusable
	hysteresis      float64 // extra margin required to climb back up
	alpha           float64 // EWMA smoothing weight for new samples
	hasClassifier   bool

	mu   sync.Mutex
	ewma float64
	mode perspectron.ServeMode
	seen bool
}

func newLadder(classifierFloor, detectorFloor, hysteresis float64, hasClassifier bool) *ladder {
	l := &ladder{
		classifierFloor: classifierFloor,
		detectorFloor:   detectorFloor,
		hysteresis:      hysteresis,
		alpha:           0.3,
		hasClassifier:   hasClassifier,
		mode:            perspectron.ModeDetector,
	}
	if hasClassifier {
		l.mode = perspectron.ModeClassifier
	}
	return l
}

// observe folds one sample's coverage into the EWMA and returns the serving
// mode for this sample plus whether the mode just changed.
func (l *ladder) observe(coverage float64) (mode perspectron.ServeMode, changed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.seen {
		l.ewma = coverage
		l.seen = true
	} else {
		l.ewma = l.alpha*coverage + (1-l.alpha)*l.ewma
	}
	prev := l.mode
	// Walk down as far as the smoothed coverage requires...
	if l.mode == perspectron.ModeClassifier && l.ewma < l.classifierFloor {
		l.mode = perspectron.ModeDetector
	}
	if l.mode == perspectron.ModeDetector && l.ewma < l.detectorFloor {
		l.mode = perspectron.ModeThreshold
	}
	// ...and climb back one rung at a time, only past floor+hysteresis.
	if l.mode == perspectron.ModeThreshold && l.ewma >= l.detectorFloor+l.hysteresis {
		l.mode = perspectron.ModeDetector
	}
	if l.mode == perspectron.ModeDetector && l.hasClassifier &&
		l.ewma >= l.classifierFloor+l.hysteresis && prev != perspectron.ModeThreshold {
		l.mode = perspectron.ModeClassifier
	}
	return l.mode, l.mode != prev
}

// observeLoad folds one queue-pressure reading (depth/capacity, 0..1) into
// a ladder running as a shard's load rung. Pressure is mapped onto the same
// machinery coverage uses by feeding its complement — headroom — so the
// EWMA smoothing, floor semantics and climb-back hysteresis are shared
// verbatim: a load ladder built with floors (1-LoadHigh, 1-LoadCritical)
// walks classifier → detector → threshold as sustained pressure crosses
// LoadHigh and LoadCritical, and climbs back one rung at a time only once
// pressure clears the mark by the hysteresis margin.
func (l *ladder) observeLoad(pressure float64) (mode perspectron.ServeMode, changed bool) {
	return l.observe(1 - pressure)
}

// snapshot returns the current mode and smoothed coverage for health
// reporting.
func (l *ladder) snapshot() (mode perspectron.ServeMode, coverage float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mode, l.ewma
}

// maxMode returns the more degraded of two serving modes — how a sample's
// effective rung combines its worker's coverage rung with its shard's load
// rung (rungs order classifier < detector < threshold, so the numeric max
// is the lower rung).
func maxMode(a, b perspectron.ServeMode) perspectron.ServeMode {
	if b > a {
		return b
	}
	return a
}
