package serve

// Verdict-forensics tests: end-to-end tracing + attribution through a live
// supervisor, the offline Explain round trip (including tamper detection),
// the flight recorder surface, SLO burn math, and the disabled-everything
// configuration that the zero-overhead benchmark pins.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"perspectron"
	"perspectron/internal/telemetry"
)

func TestForensicsEndToEnd(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	det, _ := testModels(t)
	var buf bytes.Buffer
	s, err := New(Config{
		Detector:        det,
		Workloads:       []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
		MaxInsts:        60_000,
		MaxEpisodes:     1,
		Backoff:         fastBackoff(),
		VerdictLog:      NewVerdictLog(&buf),
		AttributionK:    4,
		AttrBenignEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetListenAddr("127.0.0.1:9464")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Run(ctx); err != nil {
		t.Fatalf("run: %v", err)
	}

	var flaggedRecs []VerdictRecord
	total, attributed, benign := 0, 0, 0
	sc := NewVerdictScanner(bytes.NewReader(buf.Bytes()))
	for {
		rec, ok := sc.Next()
		if !ok {
			break
		}
		total++
		// Tentpole invariant: every verdict record carries a trace ID and
		// stage timestamps.
		want := fmt.Sprintf("%s/%d/%d", rec.Worker, rec.Episode, rec.Sample)
		if rec.Trace != want {
			t.Fatalf("trace = %q, want %q", rec.Trace, want)
		}
		if rec.QueueMs < 0 || rec.BatchMs < 0 || rec.ScoreMs < 0 {
			t.Fatalf("negative stage timing: %+v", rec)
		}
		if stages := rec.QueueMs + rec.BatchMs + rec.ScoreMs; stages > rec.LatencyMs+0.5 {
			t.Fatalf("stage sum %.3fms exceeds total %.3fms", stages, rec.LatencyMs)
		}
		if rec.Attr != nil {
			attributed++
			if len(rec.Attr) > 4 {
				t.Fatalf("attr has %d contributions, K=4", len(rec.Attr))
			}
			for i := 1; i < len(rec.Attr); i++ {
				if math.Abs(rec.Attr[i].Weight) > math.Abs(rec.Attr[i-1].Weight) {
					t.Fatalf("attr not sorted by |weight|: %+v", rec.Attr)
				}
			}
		}
		if rec.Flagged {
			if len(rec.Fired) == 0 || rec.Attr == nil {
				t.Fatalf("flagged verdict lacks attribution: %+v", rec)
			}
			flaggedRecs = append(flaggedRecs, rec)
		} else {
			benign++
		}
	}
	if total == 0 || len(flaggedRecs) == 0 {
		t.Fatalf("got %d verdicts, %d flagged — need both", total, len(flaggedRecs))
	}
	if benign >= 2 && attributed <= len(flaggedRecs) {
		t.Fatalf("benign sampling recorded nothing: %d attributed, %d flagged, %d benign",
			attributed, len(flaggedRecs), benign)
	}

	// Offline reconstruction: every flagged verdict re-derives bit-for-bit
	// after a JSON round trip through the log.
	for _, rec := range flaggedRecs {
		e, err := Explain(det, rec, false)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Consistent() {
			t.Fatalf("explain diverged: %v", e.Diffs)
		}
	}

	// Tampering is caught on both axes.
	tampered := flaggedRecs[0]
	tampered.Score += 1e-9
	if e, err := Explain(det, tampered, false); err != nil || e.ScoreMatch {
		t.Fatalf("score tamper not flagged: err=%v match=%v", err, e != nil && e.ScoreMatch)
	}
	tampered = flaggedRecs[0]
	tampered.Attr = append([]perspectron.Contribution(nil), tampered.Attr...)
	tampered.Attr[0].Weight *= 2
	if e, err := Explain(det, tampered, false); err != nil || e.AttrMatch {
		t.Fatalf("attr tamper not flagged: err=%v", err)
	}
	// Version mismatch refuses without force, diffs with it.
	wrongVer := flaggedRecs[0]
	wrongVer.Version = "deadbeef0000"
	if _, err := Explain(det, wrongVer, false); err == nil {
		t.Fatal("cross-version explain accepted without force")
	}
	if e, err := Explain(det, wrongVer, true); err != nil || !e.Consistent() {
		t.Fatalf("forced cross-version explain failed: %v", err)
	}
	// Records without a fired set are refused.
	if _, err := Explain(det, VerdictRecord{Worker: "w"}, false); err == nil {
		t.Fatal("unattributed record accepted")
	}

	// Stage histograms observed every scored sample.
	for _, name := range []string{stageQueue, stageBatch, stageScore, stageLog} {
		if c := reg.Histogram(name, telemetry.LatencyBuckets).Count(); c == 0 {
			t.Fatalf("stage histogram %s empty", name)
		}
	}

	// Flight recorder: mounted, holding attributed records.
	handlers := s.Handlers()
	fh, ok := handlers["/debug/verdicts"]
	if !ok {
		t.Fatal("/debug/verdicts not mounted")
	}
	rr := httptest.NewRecorder()
	fh.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/verdicts", nil))
	var snap struct {
		Capacity int             `json:"capacity"`
		Count    uint64          `json:"count"`
		Entries  []VerdictRecord `json:"entries"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Capacity != 256 || snap.Count == 0 || len(snap.Entries) == 0 {
		t.Fatalf("flight snapshot = cap %d count %d entries %d", snap.Capacity, snap.Count, len(snap.Entries))
	}
	for _, rec := range snap.Entries {
		if rec.Attr == nil || rec.Trace == "" {
			t.Fatalf("flight entry not fully attributed: %+v", rec)
		}
	}

	// Health self-discovery + SLO block.
	h := s.Health()
	if h.MetricsAddr != "127.0.0.1:9464" {
		t.Fatalf("metrics addr = %q", h.MetricsAddr)
	}
	if h.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v", h.UptimeSeconds)
	}
	if h.SLO == nil || h.SLO.Samples == 0 {
		t.Fatalf("SLO block missing: %+v", h.SLO)
	}
	if h.SLO.Breach {
		t.Fatalf("clean fast run breached SLO: %+v", h.SLO)
	}
}

func TestForensicsDisabledLeavesRecordsBare(t *testing.T) {
	det, _ := testModels(t)
	var buf bytes.Buffer
	s, err := New(Config{
		Detector:         det,
		Workloads:        []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
		MaxInsts:         40_000,
		MaxEpisodes:      1,
		Backoff:          fastBackoff(),
		VerdictLog:       NewVerdictLog(&buf),
		DisableTracing:   true,
		AttributionK:     -1,
		FlightSize:       -1,
		SlowSample:       -1,
		SLOLatencyTarget: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Run(ctx); err != nil {
		t.Fatalf("run: %v", err)
	}
	total := 0
	sc := NewVerdictScanner(bytes.NewReader(buf.Bytes()))
	for {
		rec, ok := sc.Next()
		if !ok {
			break
		}
		total++
		if rec.Trace != "" || rec.Fired != nil || rec.Attr != nil ||
			rec.QueueMs != 0 || rec.BatchMs != 0 || rec.ScoreMs != 0 {
			t.Fatalf("disabled forensics still stamped record: %+v", rec)
		}
	}
	if total == 0 {
		t.Fatal("no verdicts")
	}
	if _, ok := s.Handlers()["/debug/verdicts"]; ok {
		t.Fatal("/debug/verdicts mounted with FlightSize disabled")
	}
	if h := s.Health(); h.SLO != nil {
		t.Fatalf("SLO block present when disabled: %+v", h.SLO)
	}
}

func TestSLOTrackerBurnMath(t *testing.T) {
	cfg := Config{
		SLOLatencyTarget: 10 * time.Millisecond,
		SLOLatencyBudget: 0.1,
		SLOShedBudget:    0.1,
		SLOAlpha:         0.5,
	}
	tr := newSLOTracker(cfg)
	if tr == nil {
		t.Fatal("tracker disabled despite positive target")
	}
	// Fast verdicts: no burn.
	for i := 0; i < 20; i++ {
		tr.observe(time.Millisecond, false)
	}
	h := tr.snapshot()
	if h.Breach || h.LatencyBurn != 0 || h.ShedBurn != 0 || h.Samples != 20 {
		t.Fatalf("fast traffic burned: %+v", h)
	}
	// Sustained slow verdicts push the slow fraction toward 1 = 10× budget.
	for i := 0; i < 20; i++ {
		tr.observe(time.Second, false)
	}
	h = tr.snapshot()
	if !h.Breach || h.LatencyBurn < 5 {
		t.Fatalf("slow traffic did not breach: %+v", h)
	}
	// Shed burn is independent of latency burn.
	tr2 := newSLOTracker(cfg)
	for i := 0; i < 20; i++ {
		tr2.observe(0, true)
	}
	h = tr2.snapshot()
	if !h.Breach || h.ShedBurn < 5 || h.LatencyBurn != 0 {
		t.Fatalf("shed traffic did not breach: %+v", h)
	}
	// Disabled tracker: nil-safe everywhere.
	var nilTr *sloTracker
	nilTr.observe(time.Second, true)
	if nilTr.snapshot() != nil {
		t.Fatal("nil tracker snapshot not nil")
	}
	neg := Config{SLOLatencyTarget: -1}
	if newSLOTracker(neg.withDefaults()) != nil {
		t.Fatal("negative target did not disable SLO")
	}
}

// TestShedRecordsCarryTrace forces shedding through a tiny queue and checks
// the shed verdicts still join the trace stream and burn the shed SLO.
func TestShedRecordsCarryTrace(t *testing.T) {
	det, _ := testModels(t)
	s, err := New(Config{
		Detector:   det,
		Workloads:  []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
		Shards:     1,
		QueueDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &worker{id: 0, name: "burst", benign: true,
		ladder: newLadder(s.cfg.ClassifierFloor, s.cfg.DetectorFloor, s.cfg.Hysteresis, false)}
	var sheds []VerdictRecord
	s.onVerdict = func(rec VerdictRecord) {
		if rec.Shed {
			sheds = append(sheds, rec)
		}
	}
	// No scorer running: the queue fills at depth 4 and everything after
	// sheds deterministically.
	rs := perspectron.RawSample{Sample: 0, Raw: make([]float64, 8)}
	for i := 0; i < 10; i++ {
		rs.Sample = i
		s.route(w, 3, rs)
	}
	if len(sheds) != 6 {
		t.Fatalf("%d sheds, want 6", len(sheds))
	}
	for _, rec := range sheds {
		want := fmt.Sprintf("burst/3/%d", rec.Sample)
		if rec.Trace != want {
			t.Fatalf("shed trace = %q, want %q", rec.Trace, want)
		}
		if rec.QueueMs < 0 {
			t.Fatalf("shed queue wait negative: %+v", rec)
		}
	}
	if h := s.Health(); h.SLO == nil || h.SLO.ShedFraction == 0 {
		t.Fatalf("sheds not folded into SLO: %+v", h.SLO)
	}
}
