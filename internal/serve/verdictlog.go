package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"

	"perspectron"
)

// VerdictRecord is one sample's outcome as it appears in the verdict log
// (JSON lines): scored, shed by admission control, or failed in the scorer.
// Every sample admitted to the ingest stage produces exactly one record.
type VerdictRecord struct {
	Worker  string `json:"worker"`
	Episode int    `json:"episode"`
	Sample  int    `json:"sample"`
	Mode    string `json:"mode"`
	// Version is the content version of the detector checkpoint that was
	// live when the verdict was produced, so shadow training can attribute
	// every verdict to the model that made it.
	Version string  `json:"version,omitempty"`
	Score   float64 `json:"score"`
	Class   string  `json:"class,omitempty"`
	Flagged bool    `json:"flagged"`
	// Coverage is the raw per-sample feature coverage (the ladder smooths
	// its own copy).
	Coverage float64 `json:"coverage"`
	// Shard is the scoring lane the sample was routed to.
	Shard int `json:"shard"`
	// Shed marks a sample dropped by admission control (mode "shed") — the
	// record is the loud half of the shed contract.
	Shed bool `json:"shed,omitempty"`
	// LatencyMs is enqueue-to-verdict latency for scored samples.
	LatencyMs float64 `json:"latency_ms,omitempty"`
	// Error carries the scorer failure for mode "error" records.
	Error string `json:"error,omitempty"`

	// Trace is the sample's stream-scoped trace ID (worker/episode/sample),
	// stamped when tracing is on — the join key between the verdict log, the
	// slow-verdict exemplar events in -trace-out, and /debug/verdicts.
	Trace string `json:"trace,omitempty"`
	// QueueMs/BatchMs/ScoreMs break LatencyMs into stages: admission→dequeue
	// (queue wait), dequeue→this item's scoring turn (batch wait), and the
	// scoring work itself. The residue (LatencyMs − sum) is log overhead.
	QueueMs float64 `json:"queue_ms,omitempty"`
	BatchMs float64 `json:"batch_ms,omitempty"`
	ScoreMs float64 `json:"score_ms,omitempty"`
	// Fired is the ascending detector feature slots that fired on this
	// sample — together with Version, everything `perspectron explain` needs
	// to re-derive Score and Attr offline, bit-for-bit.
	Fired []int `json:"fired,omitempty"`
	// Attr holds the top-k weight×bit contributions (largest |weight|
	// first), stamped for flagged samples and a configured fraction of
	// benign ones.
	Attr []perspectron.Contribution `json:"attr,omitempty"`
}

// verdictLog serializes verdict records from all workers onto one buffered
// JSONL writer. flush is called on drain (SIGTERM); write errors are sticky
// and surfaced there — a terminated service never loses buffered verdicts
// silently.
type verdictLog struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	sink    io.Writer
	n       int
	ver     string // model version of the most recent record
	lastErr error  // first write/flush error, sticky until reported
}

func newVerdictLog(w io.Writer) *verdictLog {
	if w == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	return &verdictLog{bw: bw, enc: json.NewEncoder(bw), sink: w}
}

// record appends one verdict line. Nil receivers (no log configured) are
// no-ops, mirroring the telemetry instruments. A failed encode is remembered
// (first error wins) and reported by the next flush — record itself stays
// non-blocking for the scoring hot path.
func (l *verdictLog) record(v VerdictRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if err := l.enc.Encode(v); err != nil && l.lastErr == nil {
		l.lastErr = err
	}
	l.n++
	if v.Version != "" {
		l.ver = v.Version
	}
	l.mu.Unlock()
}

// flush drains the buffer to the underlying writer and syncs it to stable
// storage when the sink is a file, returning the first error seen since the
// last flush — the drain path's guarantee that buffered verdicts either
// reached disk or the failure is reported, never silently dropped.
func (l *verdictLog) flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.bw.Flush()
	if err == nil {
		if f, ok := l.sink.(*os.File); ok {
			err = f.Sync()
		}
	}
	if l.lastErr != nil {
		err = l.lastErr
		l.lastErr = nil
	}
	return err
}

// err returns the sticky write error without clearing it, for health
// reporting between flushes.
func (l *verdictLog) err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// count returns the number of records written, for health reporting.
func (l *verdictLog) count() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// version returns the model version stamped into the most recent record, for
// the verdict row of /healthz.
func (l *verdictLog) version() string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ver
}
