package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// VerdictRecord is one scored sampling interval as it appears in the
// verdict log (JSON lines).
type VerdictRecord struct {
	Worker  string  `json:"worker"`
	Episode int     `json:"episode"`
	Sample  int     `json:"sample"`
	Mode    string  `json:"mode"`
	Score   float64 `json:"score"`
	Class   string  `json:"class,omitempty"`
	Flagged bool    `json:"flagged"`
	// Coverage is the raw per-sample feature coverage (the ladder smooths
	// its own copy).
	Coverage float64 `json:"coverage"`
}

// verdictLog serializes verdict records from all workers onto one buffered
// JSONL writer. flush is called on drain (SIGTERM) so a terminated service
// never loses buffered verdicts.
type verdictLog struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

func newVerdictLog(w io.Writer) *verdictLog {
	if w == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	return &verdictLog{bw: bw, enc: json.NewEncoder(bw)}
}

// record appends one verdict line. Nil receivers (no log configured) are
// no-ops, mirroring the telemetry instruments.
func (l *verdictLog) record(v VerdictRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.enc.Encode(v)
	l.n++
	l.mu.Unlock()
}

// flush drains the buffer to the underlying writer.
func (l *verdictLog) flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bw.Flush()
}

// count returns the number of records written, for health reporting.
func (l *verdictLog) count() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
