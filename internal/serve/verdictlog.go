package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"

	"perspectron"
	"perspectron/internal/diskfaults"
	"perspectron/internal/retry"
	"perspectron/internal/telemetry"
)

// VerdictRecord is one sample's outcome as it appears in the verdict log
// (JSON lines): scored, shed by admission control, or failed in the scorer.
// Every sample admitted to the ingest stage produces exactly one record.
type VerdictRecord struct {
	Worker  string `json:"worker"`
	Episode int    `json:"episode"`
	Sample  int    `json:"sample"`
	Mode    string `json:"mode"`
	// Version is the content version of the detector checkpoint that was
	// live when the verdict was produced, so shadow training can attribute
	// every verdict to the model that made it.
	Version string  `json:"version,omitempty"`
	Score   float64 `json:"score"`
	Class   string  `json:"class,omitempty"`
	Flagged bool    `json:"flagged"`
	// Coverage is the raw per-sample feature coverage (the ladder smooths
	// its own copy).
	Coverage float64 `json:"coverage"`
	// Shard is the scoring lane the sample was routed to.
	Shard int `json:"shard"`
	// Shed marks a sample dropped by admission control (mode "shed") — the
	// record is the loud half of the shed contract.
	Shed bool `json:"shed,omitempty"`
	// LatencyMs is enqueue-to-verdict latency for scored samples.
	LatencyMs float64 `json:"latency_ms,omitempty"`
	// Error carries the scorer failure for mode "error" records.
	Error string `json:"error,omitempty"`

	// Trace is the sample's stream-scoped trace ID (worker/episode/sample),
	// stamped when tracing is on — the join key between the verdict log, the
	// slow-verdict exemplar events in -trace-out, and /debug/verdicts.
	Trace string `json:"trace,omitempty"`
	// QueueMs/BatchMs/ScoreMs break LatencyMs into stages: admission→dequeue
	// (queue wait), dequeue→this item's scoring turn (batch wait), and the
	// scoring work itself. The residue (LatencyMs − sum) is log overhead.
	QueueMs float64 `json:"queue_ms,omitempty"`
	BatchMs float64 `json:"batch_ms,omitempty"`
	ScoreMs float64 `json:"score_ms,omitempty"`
	// Fired is the ascending detector feature slots that fired on this
	// sample — together with Version, everything `perspectron explain` needs
	// to re-derive Score and Attr offline, bit-for-bit.
	Fired []int `json:"fired,omitempty"`
	// Attr holds the top-k weight×bit contributions (largest |weight|
	// first), stamped for flagged samples and a configured fraction of
	// benign ones.
	Attr []perspectron.Contribution `json:"attr,omitempty"`

	// Session and Lost appear on mode "recovery" stamps only: Session is the
	// 1-based process-incarnation number this stamp opens, Lost the verdicts
	// attributed to the crash (or to counted-lossy dropping) in the previous
	// incarnation. Recovery stamps are accounting records, not sample
	// verdicts — readers tallying per-sample outcomes must skip them.
	Session int `json:"session,omitempty"`
	Lost    int `json:"lost,omitempty"`
}

// ModeRecovery marks the accounting stamp the recovery manager writes at
// startup: one per process incarnation, carrying the session number and the
// verdicts lost to the previous crash.
const ModeRecovery = "recovery"

// verdictLog serializes verdict records from all workers onto one buffered
// JSONL writer. flush is called on drain (SIGTERM) and by the supervisor's
// periodic flush loop.
//
// Disk errors never wedge the log: on a write/flush/sync failure the log
// flips to counted-lossy mode — records are dropped and counted (lost) while
// the sink is broken, retried on a jittered backoff cadence, and on recovery
// the stream is re-sealed with a newline so any torn half-record the failed
// flush left on disk parses as one corrupt line scanners skip loudly instead
// of merging into the next record. The first disk error is sticky for
// /healthz (disk_error) even after recovery; recoveries are counted too.
type verdictLog struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	sink    io.Writer
	closer  io.Closer // owned file when opened via openVerdictLog
	n       int       // records accepted and not torn out by a failed flush
	pending int       // records buffered since the last clean flush
	lost    int       // records dropped while lossy or torn out on error
	recov   int       // successful lossy→healthy transitions
	lossy   bool
	diskErr error // first disk error, sticky for health (never cleared)
	ver     string
	lastErr error // first unreported error, cleared by flush (drain contract)

	bo        *retry.Backoff
	nextRetry time.Time
	now       func() time.Time // injectable clock (tests)
}

func newVerdictLog(w io.Writer) *verdictLog {
	if w == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	return &verdictLog{
		bw:   bw,
		enc:  json.NewEncoder(bw),
		sink: w,
		bo:   retry.NewBackoff(retry.Policy{Base: 100 * time.Millisecond, Max: 5 * time.Second, Jitter: 0.5}, 1),
		now:  time.Now,
	}
}

// openVerdictLog opens (creating if needed, appending) the verdict log file
// at path through the disk-fault injector (site "verdictlog"). The returned
// log owns the file; release it with close after the final flush.
func openVerdictLog(path string) (*verdictLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l := newVerdictLog(diskfaults.WrapFile(diskfaults.SiteVerdictLog, f))
	l.closer = f
	return l, nil
}

// close releases the owned file, if any. It does not flush; callers flush
// first so close errors never mask loss accounting.
func (l *verdictLog) close() error {
	if l == nil || l.closer == nil {
		return nil
	}
	return l.closer.Close()
}

// record appends one verdict line. Nil receivers (no log configured) are
// no-ops, mirroring the telemetry instruments. While the sink is broken the
// record is dropped and counted instead of blocking or wedging the scoring
// hot path; a healthy-path encode failure flips the log to lossy mode.
func (l *verdictLog) record(v VerdictRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lossy && !l.tryRecoverLocked() {
		l.dropLocked(1)
		return
	}
	if err := l.enc.Encode(v); err != nil {
		l.enterLossyLocked(err, 1)
		return
	}
	l.pending++
	l.n++
	if v.Version != "" {
		l.ver = v.Version
	}
}

// dropLocked counts records lost while the sink is broken.
func (l *verdictLog) dropLocked(k int) {
	l.lost += k
	telemetry.Get().Counter("perspectron_serve_verdicts_lost_total").Add(uint64(k))
}

// enterLossyLocked transitions to counted-lossy mode after a disk error.
// Records buffered since the last clean flush are torn out of the accepted
// count — the failed flush may have left any prefix of them (including half
// a line) on disk, and the recovery seal turns that prefix into corrupt
// lines readers skip, so they are lost, not durable. extra counts the
// in-flight record that triggered the error (0 from flush, 1 from record).
func (l *verdictLog) enterLossyLocked(err error, extra int) {
	l.lossy = true
	l.diskErr = err
	if l.lastErr == nil {
		l.lastErr = err
	}
	l.n -= l.pending
	l.dropLocked(l.pending + extra)
	l.pending = 0
	l.nextRetry = l.now().Add(l.bo.Next())
	telemetry.Get().Counter("perspectron_serve_disk_error_total").Inc()
}

// tryRecoverLocked attempts one lossy→healthy transition if the retry
// backoff has elapsed: discard the dead writer's buffer and sticky error,
// write a newline seal (closing any torn half-record the failed flush left
// on disk), and flush it through. Reports whether the log is healthy again.
func (l *verdictLog) tryRecoverLocked() bool {
	if l.now().Before(l.nextRetry) {
		return false
	}
	l.bw.Reset(l.sink)
	var err error
	if _, err = l.bw.WriteString("\n"); err == nil {
		err = l.flushSinkLocked()
	}
	if err != nil {
		l.nextRetry = l.now().Add(l.bo.Next())
		telemetry.Get().Counter("perspectron_serve_disk_error_total").Inc()
		return false
	}
	l.lossy = false
	l.recov++
	l.bo.Reset()
	telemetry.Get().Counter("perspectron_serve_disk_recovered_total").Inc()
	return true
}

// flushSinkLocked drains the buffer and syncs file-backed sinks to stable
// storage (both *os.File and the fault injector's wrapper expose Sync).
func (l *verdictLog) flushSinkLocked() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if s, ok := l.sink.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// flush drains the buffer to the underlying writer and syncs it to stable
// storage, returning the first error seen since the last flush — the drain
// path's guarantee that buffered verdicts either reached disk or the failure
// is reported, never silently dropped. In lossy mode it doubles as a retry
// opportunity.
func (l *verdictLog) flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lossy {
		if !l.tryRecoverLocked() {
			err := l.lastErr
			if err == nil {
				err = l.diskErr
			}
			l.lastErr = nil
			return err
		}
	}
	err := l.flushSinkLocked()
	if err != nil {
		l.enterLossyLocked(err, 0)
	} else {
		l.pending = 0
	}
	if l.lastErr != nil {
		err = l.lastErr
		l.lastErr = nil
	}
	return err
}

// err returns the unreported write error without clearing it, for health
// reporting between flushes. The permanently-sticky variant (surviving the
// flush that reports it) is stats().DiskErr, surfaced as the Durable
// block's disk_error.
func (l *verdictLog) err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// logStats is the verdict log's accounting snapshot: what /healthz shows and
// what the durable state file persists across restarts.
type logStats struct {
	Records    int   // records accepted (net of torn-out buffers)
	Lost       int   // records dropped while lossy or torn out on error
	Recoveries int   // lossy→healthy transitions
	Lossy      bool  // currently dropping
	DiskErr    error // first disk error ever seen (sticky)
}

func (l *verdictLog) stats() logStats {
	if l == nil {
		return logStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return logStats{Records: l.n, Lost: l.lost, Recoveries: l.recov, Lossy: l.lossy, DiskErr: l.diskErr}
}

// count returns the number of records written, for health reporting.
func (l *verdictLog) count() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// version returns the model version stamped into the most recent record, for
// the verdict row of /healthz.
func (l *verdictLog) version() string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ver
}
