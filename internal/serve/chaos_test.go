package serve

// The serve-layer chaos harness: every failure mode the overload machinery
// exists for, injected concurrently against one live supervisor —
//
//   - scorer panics (via Supervisor.scoreHook), driving shard breakers open
//     and the ring around down shards;
//   - workload panics and stalled sources (panicProg / stallProg workers);
//   - checkpoint corruption racing hot-reload (corrupt/good rewrite cycles
//     with forced watcher polls);
//   - load spikes (bursts of synthetic samples injected straight into the
//     ingest stage) that overflow queues and force sheds.
//
// The invariants asserted are the service's whole contract: the supervisor
// never deadlocks (Run returns promptly on cancel), no sample is ever
// dropped unlogged (enqueued == scored + shed, with every shed and every
// scorer failure producing a verdict record), health endpoints stay
// truthful while degraded, and the drain leaves zero goroutines behind.
// `make smoke-chaos` runs this file under the race detector.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perspectron"
)

func TestServeChaos(t *testing.T) {
	det, cls := testModels(t)
	goroutinesBefore := runtime.NumGoroutine()
	dir := t.TempDir()
	path := filepath.Join(dir, "det.json")
	if err := det.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	s, err := New(Config{
		Detector:         det,
		Classifier:       cls,
		DetectorPath:     path,
		Workloads: []perspectron.Workload{
			perspectron.AttackByName("spectreV1", "fr"),
			perspectron.AttackByName("flush+reload", ""),
			&panicProg{failures: 3},
			&stallProg{stallAfter: 2_000, delay: 10 * time.Millisecond, stallOps: 40},
		},
		MaxInsts:         30_000,
		MaxEpisodes:      0, // run until the chaos window closes
		SampleTimeout:    80 * time.Millisecond,
		Backoff:          fastBackoff(),
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		Shards:           4,
		QueueDepth:       64,
		Batch:            32,
		ScoreTick:        time.Millisecond,
		Pace:             200 * time.Microsecond,
		PollInterval:     time.Hour, // reloads driven by the corrupter below
		VerdictLog:       NewVerdictLog(&buf),
		// Counter faults run the whole time too: the coverage ladder and the
		// packed kernels' NaN masking are part of what chaos must not break.
		Faults: &perspectron.FaultConfig{Seed: 9, Dropout: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Scorer-panic injection: while armed, every Nth sample blows up inside
	// the scoring path — recovered per item, counted against the shard
	// breaker.
	var panicArmed atomic.Bool
	var panicTick atomic.Int64
	s.scoreHook = func(*ingestItem) {
		if panicArmed.Load() && panicTick.Add(1)%7 == 0 {
			panic("chaos: injected scorer fault")
		}
	}
	// Full accounting observer: every record the service emits, by kind.
	var verdicts, sheds, errs atomic.Int64
	s.onVerdict = func(rec VerdictRecord) {
		verdicts.Add(1)
		if rec.Shed {
			sheds.Add(1)
		}
		if rec.Error != "" {
			errs.Add(1)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx) }()
	// Wait for readiness before unleashing anything.
	for !s.ready.Load() {
		time.Sleep(time.Millisecond)
	}

	const window = 3 * time.Second
	stop := make(chan struct{})
	var chaos sync.WaitGroup

	// Chaos 1: scorer panics in bursts — armed for 150ms, quiet for 150ms.
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for {
			panicArmed.Store(true)
			if !chaosSleep(stop, 150*time.Millisecond) {
				panicArmed.Store(false)
				return
			}
			panicArmed.Store(false)
			if !chaosSleep(stop, 150*time.Millisecond) {
				return
			}
		}
	}()

	// Chaos 2: checkpoint corruption racing reload — corrupt write, forced
	// poll, good write, forced poll.
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for {
			os.WriteFile(path, []byte("{torn checkpoint"), 0o644)
			s.pollNow()
			if !chaosSleep(stop, 40*time.Millisecond) {
				break
			}
			os.WriteFile(path, good, 0o644)
			s.pollNow()
			if !chaosSleep(stop, 40*time.Millisecond) {
				break
			}
		}
		// Leave a good checkpoint behind so the last state is recoverable.
		os.WriteFile(path, good, 0o644)
		s.pollNow()
	}()

	// Chaos 3: load spikes — bursts of synthetic samples injected straight
	// into the ingest stage from many fake streams, far past queue capacity,
	// forcing sheds and the load rung.
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		spikeWorkers := make([]*worker, 32)
		for i := range spikeWorkers {
			spikeWorkers[i] = &worker{
				id: 1000 + i, name: "spike-" + strings.Repeat("x", i%4),
				benign: i%2 == 0,
				ladder: newLadder(0.9, 0.5, 0.05, true),
			}
		}
		raw := make([]float64, 64) // worthless sample, zero coverage — fine
		n := 0
		for {
			for burst := 0; burst < 2_000; burst++ {
				w := spikeWorkers[n%len(spikeWorkers)]
				s.route(w, 0, perspectron.RawSample{Sample: n, Raw: raw})
				n++
			}
			if !chaosSleep(stop, 30*time.Millisecond) {
				return
			}
		}
	}()

	// Chaos 4: health prober — /readyz and /healthz must stay truthful the
	// whole time: ready+draining flags decide the status code, and a 200
	// body must match the Health() snapshot's degradation verdict.
	probeErr := make(chan string, 1)
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for {
			h := s.Health()
			switch h.Status {
			case "ok", "degraded", "draining":
			default:
				select {
				case probeErr <- "health status " + h.Status:
				default:
				}
			}
			// While the run is live the supervisor must report ready.
			if !s.draining.Load() && !s.ready.Load() {
				select {
				case probeErr <- "supervisor lost readiness mid-run":
				default:
				}
			}
			if !chaosSleep(stop, 20*time.Millisecond) {
				return
			}
		}
	}()

	time.Sleep(window)
	close(stop)
	chaos.Wait()
	panicArmed.Store(false)

	cancel()
	select {
	case err := <-runDone:
		if err != context.Canceled {
			t.Fatalf("chaos run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("supervisor deadlocked under chaos; stacks:\n%s", buf[:runtime.Stack(buf, true)])
	}
	select {
	case msg := <-probeErr:
		t.Fatalf("health prober: %s", msg)
	default:
	}

	// --- accounting: nothing dropped unlogged ---------------------------
	var enq, scored, shed, panics, depth int64
	for _, sh := range s.shards {
		enq += sh.enqueued.Load()
		scored += sh.scored.Load()
		shed += sh.shed.Load()
		panics += sh.panics.Load()
		depth += int64(sh.depth())
	}
	if depth != 0 {
		t.Fatalf("drain left %d samples queued", depth)
	}
	if enq == 0 || shed == 0 || panics == 0 {
		t.Fatalf("chaos was vacuous: enqueued=%d shed=%d scorer-panics=%d — every injector must bite", enq, shed, panics)
	}
	if enq != scored+shed {
		t.Fatalf("samples dropped unlogged: enqueued=%d != scored=%d + shed=%d", enq, scored, shed)
	}
	// Every admitted sample produced exactly one verdict record (scored,
	// shed, or error), and the observer saw each of them.
	if got := verdicts.Load(); got != enq {
		t.Fatalf("verdict records = %d, want one per enqueued sample (%d)", got, enq)
	}
	if sheds.Load() != shed {
		t.Fatalf("shed records = %d, shard shed counters = %d", sheds.Load(), shed)
	}
	if errs.Load() == 0 {
		t.Fatalf("scorer panics (%d) produced no error-mode verdicts", panics)
	}
	if err := s.log.flush(); err != nil {
		t.Fatalf("verdict log flush after chaos: %v", err)
	}
	if lines := int64(len(strings.Split(strings.TrimSpace(buf.String()), "\n"))); lines != enq {
		t.Fatalf("verdict log holds %d lines, want %d", lines, enq)
	}

	// --- no goroutine leaks ---------------------------------------------
	// Producers that were mid-op when the drain hit unwind within their
	// next op batch; give them a moment, then require the pre-Run count.
	deadline := time.After(10 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore {
		select {
		case <-deadline:
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after chaos drain (%d before, %d live):\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// chaosSleep sleeps d or until the chaos window closes, reporting false on
// close.
func chaosSleep(stop <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}
