package serve

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"perspectron/internal/diskfaults"
	"perspectron/internal/telemetry"
)

// writeLog joins lines (each becoming one newline-terminated record) plus an
// optional torn suffix into path.
func writeLog(t *testing.T, path string, torn string, lines ...string) {
	t.Helper()
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	b.WriteString(torn)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

const (
	stampLine  = `{"mode":"recovery","session":1}`
	sampleLine = `{"worker":"w","episode":1,"sample":%d,"mode":"detector","score":0.5}`
)

func sample(n int) string {
	return strings.Replace(sampleLine, "%d", string(rune('0'+n)), 1)
}

// --- log tail repair ------------------------------------------------------

func TestRepairLogTailCleanAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.jsonl")

	// Missing log: nothing to repair, not an error.
	if torn, q, err := repairLogTail(path); err != nil || torn != 0 || q != "" {
		t.Fatalf("missing log: torn=%d q=%q err=%v", torn, q, err)
	}
	// Clean log: untouched, no quarantine file.
	writeLog(t, path, "", sample(1), sample(2))
	before, _ := os.ReadFile(path)
	if torn, q, err := repairLogTail(path); err != nil || torn != 0 || q != "" {
		t.Fatalf("clean log: torn=%d q=%q err=%v", torn, q, err)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Fatalf("clean log modified by repair")
	}
	if _, err := os.Stat(path + ".torn"); !os.IsNotExist(err) {
		t.Fatalf("quarantine file created for a clean log")
	}
}

func TestRepairLogTailTruncatesAndQuarantines(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	dir := t.TempDir()
	path := filepath.Join(dir, "v.jsonl")
	tornTail := `{"worker":"w","epi` // writer died mid-record
	writeLog(t, path, tornTail, sample(1), sample(2))

	torn, q, err := repairLogTail(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != int64(len(tornTail)) || q != path+".torn" {
		t.Fatalf("torn=%d q=%q, want %d %q", torn, q, len(tornTail), path+".torn")
	}
	got, _ := os.ReadFile(path)
	if want := sample(1) + "\n" + sample(2) + "\n"; string(got) != want {
		t.Fatalf("repaired log = %q, want %q", got, want)
	}
	quarantined, _ := os.ReadFile(q)
	if string(quarantined) != tornTail {
		t.Fatalf("quarantine = %q, want %q", quarantined, tornTail)
	}
	if n := reg.CounterValue("perspectron_serve_log_repairs_total"); n != 1 {
		t.Fatalf("repairs counter = %d, want 1", n)
	}
	if n := reg.CounterValue("perspectron_serve_log_torn_bytes_total"); n != uint64(len(tornTail)) {
		t.Fatalf("torn-bytes counter = %d, want %d", n, len(tornTail))
	}

	// A second crash tears another tail: the quarantine accumulates, never
	// overwrites.
	second := `{"half":`
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(second)
	f.Close()
	if _, _, err := repairLogTail(path); err != nil {
		t.Fatal(err)
	}
	quarantined, _ = os.ReadFile(q)
	if string(quarantined) != tornTail+second {
		t.Fatalf("quarantine after second repair = %q, want accumulated %q", quarantined, tornTail+second)
	}
}

func TestRepairLogTailWholeFileTorn(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.jsonl")
	writeLog(t, path, `{"no-newline-anywhere`)

	torn, _, err := repairLogTail(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn == 0 {
		t.Fatal("whole-file torn line not detected")
	}
	st, _ := os.Stat(path)
	if st.Size() != 0 {
		t.Fatalf("log not truncated to empty, size=%d", st.Size())
	}
}

// --- log scanning ---------------------------------------------------------

func TestScanLogTallies(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.jsonl")
	writeLog(t, path, "",
		`{"mode":"recovery","session":3,"lost":2}`,
		sample(1),
		"not json at all",
		sample(2),
		`{"mode":"recovery","session":7,"lost":4}`,
		sample(3),
	)
	records, corrupt, stamps, maxSession, stampedLost, err := scanLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if records != 3 || corrupt != 1 || stamps != 2 || maxSession != 7 || stampedLost != 6 {
		t.Fatalf("scanLog = records %d corrupt %d stamps %d maxSession %d lost %d, want 3/1/2/7/6",
			records, corrupt, stamps, maxSession, stampedLost)
	}

	// Missing log: all zeros, no error.
	records, corrupt, stamps, maxSession, stampedLost, err = scanLog(filepath.Join(dir, "absent"))
	if err != nil || records != 0 || corrupt != 0 || stamps != 0 || maxSession != 0 || stampedLost != 0 {
		t.Fatalf("missing log: %d/%d/%d/%d/%d err=%v", records, corrupt, stamps, maxSession, stampedLost, err)
	}
}

// --- full recovery reconciliation ----------------------------------------

func recoveryCfg(t *testing.T) Config {
	t.Helper()
	dir := t.TempDir()
	return Config{
		VerdictLogPath: filepath.Join(dir, "v.jsonl"),
		StatePath:      filepath.Join(dir, "v.jsonl.state"),
	}
}

func TestRunRecoveryFirstRun(t *testing.T) {
	cfg := recoveryCfg(t)
	rep, err := runRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ServeState{Sessions: 1}
	if rep.Session != 1 || rep.State != want || rep.TornBytes != 0 || rep.LostOnCrash != 0 {
		t.Fatalf("first run report: %+v", rep)
	}
	// The ledger and the stamp both hit disk.
	st, ok := loadServeState(cfg.StatePath)
	if !ok || st != want {
		t.Fatalf("state file after first run: %+v ok=%v", st, ok)
	}
	_, _, stamps, maxSession, _, err := scanLog(cfg.VerdictLogPath)
	if err != nil || stamps != 1 || maxSession != 1 {
		t.Fatalf("stamps=%d maxSession=%d err=%v, want one session-1 stamp", stamps, maxSession, err)
	}

	// An immediate second recovery (clean restart, nothing served) opens
	// session 2 with no invented loss.
	rep, err = runRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Session != 2 || rep.LostOnCrash != 0 {
		t.Fatalf("clean restart report: %+v", rep)
	}
}

func TestRunRecoveryAttributesCrashLoss(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	cfg := recoveryCfg(t)
	// Previous incarnation: stamped session 1, five records reached disk,
	// then died mid-record. Its last persisted ledger had admitted 10
	// samples, 2 already counted lost (counted-lossy drops).
	writeLog(t, cfg.VerdictLogPath, `{"worker":"w","epi`,
		stampLine, sample(1), sample(2), sample(3), sample(4), sample(5))
	if err := saveServeState(cfg.StatePath, ServeState{Sessions: 1, Enqueued: 10, Records: 7, Lost: 2}); err != nil {
		t.Fatal(err)
	}

	rep, err := runRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// expected on disk = 10 admitted − 2 known lost = 8; found 5 → 3 more
	// lost on crash.
	if rep.LostOnCrash != 3 || rep.TornBytes == 0 {
		t.Fatalf("report: %+v", rep)
	}
	want := ServeState{Sessions: 2, Enqueued: 10, Records: 5, Lost: 5}
	if rep.State != want {
		t.Fatalf("reconciled state = %+v, want %+v", rep.State, want)
	}
	if rep.State.Enqueued != rep.State.Records+rep.State.Lost {
		t.Fatalf("invariant broken: %+v", rep.State)
	}
	if n := reg.CounterValue("perspectron_serve_lost_on_crash_total"); n != 3 {
		t.Fatalf("lost-on-crash counter = %d, want 3", n)
	}
	// The new stamp records the crash loss.
	_, _, stamps, maxSession, stampedLost, _ := scanLog(cfg.VerdictLogPath)
	if stamps != 2 || maxSession != 2 || stampedLost != 3 {
		t.Fatalf("stamps=%d maxSession=%d stampedLost=%d, want 2/2/3", stamps, maxSession, stampedLost)
	}
}

func TestRunRecoveryDiskAheadOfLedger(t *testing.T) {
	cfg := recoveryCfg(t)
	// Records flushed after the last state save: the disk holds 6 but the
	// ledger only admitted 4. The ledger catches up; no loss is invented.
	writeLog(t, cfg.VerdictLogPath, "",
		stampLine, sample(1), sample(2), sample(3), sample(4), sample(5), sample(6))
	if err := saveServeState(cfg.StatePath, ServeState{Sessions: 3, Enqueued: 4, Records: 4, Lost: 0}); err != nil {
		t.Fatal(err)
	}
	rep, err := runRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ServeState{Sessions: 4, Enqueued: 6, Records: 6, Lost: 0}
	if rep.State != want || rep.LostOnCrash != 0 {
		t.Fatalf("disk-ahead state = %+v lost=%d, want %+v lost=0", rep.State, rep.LostOnCrash, want)
	}
}

func TestRunRecoveryRebuildsBaselineFromStamps(t *testing.T) {
	cfg := recoveryCfg(t)
	// State file lost entirely, but the log carries a session-5 stamp that
	// had reconciled 2 lost verdicts: the rebuilt baseline keeps them and
	// session numbering never goes backwards.
	writeLog(t, cfg.VerdictLogPath, "",
		`{"mode":"recovery","session":5,"lost":2}`, sample(1), sample(2), sample(3))

	rep, err := runRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ServeState{Sessions: 6, Enqueued: 5, Records: 3, Lost: 2}
	if rep.State != want {
		t.Fatalf("rebuilt state = %+v, want %+v", rep.State, want)
	}
	if rep.State.Enqueued != rep.State.Records+rep.State.Lost {
		t.Fatalf("invariant broken: %+v", rep.State)
	}
}

func TestLoadServeStateCorrupt(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	dir := t.TempDir()
	path := filepath.Join(dir, "state")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := loadServeState(path); ok {
		t.Fatal("corrupt state file loaded")
	}
	if n := reg.CounterValue("perspectron_serve_state_corrupt_total"); n != 1 {
		t.Fatalf("corrupt-state counter = %d, want 1", n)
	}
}

// --- checkpoint fallback chain -------------------------------------------

// contentLoader stands in for the checksum-validating checkpoint loaders:
// only files holding "good" load.
func contentLoader(p string) error {
	b, err := os.ReadFile(p)
	if err != nil {
		return err
	}
	if string(b) != "good" {
		return errors.New("checksum mismatch")
	}
	return nil
}

func TestRecoverCheckpointFallbackChain(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	dir := t.TempDir()
	path := filepath.Join(dir, "det.json")
	chain := lastGoodPaths(path)

	// Healthy primary: untouched, no fallback.
	os.WriteFile(path, []byte("good"), 0o644)
	fb, err := recoverCheckpoint(path, contentLoader)
	if err != nil || fb != "" {
		t.Fatalf("healthy primary: fb=%q err=%v", fb, err)
	}

	// Corrupt primary, loadable .last-good: quarantined + restored.
	os.WriteFile(path, []byte("bad!"), 0o644)
	os.WriteFile(chain[0], []byte("good"), 0o644)
	fb, err = recoverCheckpoint(path, contentLoader)
	if err != nil || fb != chain[0] {
		t.Fatalf("fallback: fb=%q err=%v, want %q", fb, err, chain[0])
	}
	if b, _ := os.ReadFile(path); string(b) != "good" {
		t.Fatalf("primary not restored: %q", b)
	}
	if b, _ := os.ReadFile(path + ".corrupt"); string(b) != "bad!" {
		t.Fatalf("corrupt primary not quarantined: %q", b)
	}
	if n := reg.CounterValue("perspectron_serve_checkpoint_fallback_total"); n != 1 {
		t.Fatalf("fallback counter = %d, want 1", n)
	}

	// Both primary and .last-good corrupt: the chain walks to .last-good.2.
	os.WriteFile(path, []byte("bad!"), 0o644)
	os.WriteFile(chain[0], []byte("also bad"), 0o644)
	os.WriteFile(chain[1], []byte("good"), 0o644)
	fb, err = recoverCheckpoint(path, contentLoader)
	if err != nil || fb != chain[1] {
		t.Fatalf("deep fallback: fb=%q err=%v, want %q", fb, err, chain[1])
	}

	// Nothing loadable: a hard error, not a silent empty model.
	os.WriteFile(path, []byte("bad!"), 0o644)
	os.WriteFile(chain[0], []byte("bad"), 0o644)
	os.WriteFile(chain[1], []byte("bad"), 0o644)
	if _, err = recoverCheckpoint(path, contentLoader); err == nil {
		t.Fatal("all-corrupt chain did not error")
	}

	// Missing primary restores from the chain without quarantining anything.
	os.Remove(path)
	os.Remove(path + ".corrupt")
	os.WriteFile(chain[0], []byte("good"), 0o644)
	fb, err = recoverCheckpoint(path, contentLoader)
	if err != nil || fb != chain[0] {
		t.Fatalf("missing primary: fb=%q err=%v", fb, err)
	}
	if _, serr := os.Stat(path + ".corrupt"); !os.IsNotExist(serr) {
		t.Fatal("quarantine created for a missing primary")
	}
}

func TestSaveLastGoodRotates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "det.json")
	chain := lastGoodPaths(path)

	os.WriteFile(path, []byte("v1"), 0o644)
	saveLastGood(path)
	if b, _ := os.ReadFile(chain[0]); string(b) != "v1" {
		t.Fatalf("last-good = %q, want v1", b)
	}
	// Re-banking identical content is a no-op: no rotation.
	saveLastGood(path)
	if _, err := os.Stat(chain[1]); !os.IsNotExist(err) {
		t.Fatal("identical re-bank rotated the chain")
	}
	// New content rotates the old copy into slot 2.
	os.WriteFile(path, []byte("v2"), 0o644)
	saveLastGood(path)
	b0, _ := os.ReadFile(chain[0])
	b1, _ := os.ReadFile(chain[1])
	if string(b0) != "v2" || string(b1) != "v1" {
		t.Fatalf("chain after rotation = %q/%q, want v2/v1", b0, b1)
	}
}

// --- debris sweep ---------------------------------------------------------

func TestSweepTempDebris(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "v.jsonl")
	state := filepath.Join(dir, "v.jsonl.state")
	keep := filepath.Join(dir, "v.jsonl.keep")
	os.WriteFile(log+".tmp-123", nil, 0o644)
	os.WriteFile(state+".tmp-9", nil, 0o644)
	os.WriteFile(keep, nil, 0o644)

	// Duplicate and empty path arguments are tolerated.
	if n := sweepTempDebris(log, state, state, ""); n != 2 {
		t.Fatalf("swept %d, want 2", n)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatal("sweep removed an unrelated file")
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(m) != 0 {
		t.Fatalf("debris left behind: %v", m)
	}
}

func TestQuarantinePathSuffixes(t *testing.T) {
	for _, p := range []string{"v.jsonl.torn", "det.json.corrupt", "det.json.last-good", "det.json.last-good.2", "v.jsonl.state"} {
		if !isQuarantinePath(p) {
			t.Fatalf("%q not recognized as recovery bookkeeping", p)
		}
	}
	if isQuarantinePath("v.jsonl") {
		t.Fatal("primary log misclassified as bookkeeping")
	}
}

// --- counted-lossy verdict log under injected disk faults -----------------

// forceRetry makes the log's next lossy record attempt an immediate recovery.
func forceRetry(l *verdictLog) {
	l.mu.Lock()
	l.nextRetry = time.Time{}
	l.mu.Unlock()
}

// blockRetry pushes the retry window far out so drops are deterministic.
func blockRetry(l *verdictLog) {
	l.mu.Lock()
	l.nextRetry = time.Now().Add(time.Hour)
	l.mu.Unlock()
}

func TestVerdictLogPersistentENOSPC(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	diskfaults.Disable()
	in := diskfaults.Enable(1)
	defer diskfaults.Disable()
	// The first two verdict-log writes hit ENOSPC, then the disk heals.
	if err := diskfaults.ArmSpec(in, "verdictlog:write:enospc:count=2"); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "v.jsonl")
	l, err := openVerdictLog(path)
	if err != nil {
		t.Fatal(err)
	}

	l.record(VerdictRecord{Worker: "w", Sample: 1, Mode: "detector"})
	if err := l.flush(); err == nil {
		t.Fatal("flush on a full disk did not report the error")
	}
	st := l.stats()
	if !st.Lossy || st.Lost != 1 || st.Records != 0 || st.DiskErr == nil {
		t.Fatalf("after ENOSPC flush: %+v", st)
	}

	// Inside the retry window records are dropped, counted, and never block.
	blockRetry(l)
	l.record(VerdictRecord{Worker: "w", Sample: 2, Mode: "detector"})
	if st = l.stats(); st.Lost != 2 {
		t.Fatalf("drop not counted: %+v", st)
	}

	// First retry still hits ENOSPC (count=2): stays lossy, drops the record.
	forceRetry(l)
	l.record(VerdictRecord{Worker: "w", Sample: 3, Mode: "detector"})
	if st = l.stats(); !st.Lossy || st.Lost != 3 {
		t.Fatalf("failed retry: %+v", st)
	}

	// Disk healed: the next attempt seals the stream and resumes recording.
	forceRetry(l)
	l.record(VerdictRecord{Worker: "w", Sample: 4, Mode: "detector"})
	if err := l.flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	st = l.stats()
	if st.Lossy || st.Records != 1 || st.Lost != 3 || st.Recoveries != 1 {
		t.Fatalf("after recovery: %+v", st)
	}
	if st.DiskErr == nil || !errors.Is(st.DiskErr, syscall.ENOSPC) {
		t.Fatalf("sticky disk error lost after recovery: %v", st.DiskErr)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	if n := reg.CounterValue("perspectron_serve_verdicts_lost_total"); n != 3 {
		t.Fatalf("lost counter = %d, want 3", n)
	}
	if n := reg.CounterValue("perspectron_serve_disk_error_total"); n != 2 {
		t.Fatalf("disk-error counter = %d, want 2", n)
	}
	if n := reg.CounterValue("perspectron_serve_disk_recovered_total"); n != 1 {
		t.Fatalf("recovered counter = %d, want 1", n)
	}

	// On disk: the recovery seal (a blank line readers skip silently) and
	// the one post-recovery record — zero corrupt lines.
	recs, corrupt, _, err := ReadVerdictLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || corrupt != 0 || recs[0].Sample != 4 {
		t.Fatalf("on disk: %d recs (%+v), corrupt %d", len(recs), recs, corrupt)
	}
}

func TestVerdictLogTornWriteSealsCorruptLine(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	diskfaults.Disable()
	in := diskfaults.Enable(1)
	defer diskfaults.Disable()
	// One torn write: half the buffered batch reaches disk, then ENOSPC.
	if err := diskfaults.ArmSpec(in, "verdictlog:write:torn:count=1"); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "v.jsonl")
	l, err := openVerdictLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		l.record(VerdictRecord{Worker: "w", Sample: i, Mode: "detector"})
	}
	if err := l.flush(); err == nil {
		t.Fatal("torn flush did not report the error")
	}
	// All three buffered records are torn out of the accepted count — any
	// prefix of them may be on disk, so none of them is durable.
	if st := l.stats(); !st.Lossy || st.Records != 0 || st.Lost != 3 {
		t.Fatalf("after torn flush: %+v", st)
	}

	// Recovery seals the torn half-record with a newline; the next record
	// lands whole after it.
	forceRetry(l)
	l.record(VerdictRecord{Worker: "w", Sample: 99, Mode: "detector"})
	if err := l.flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	// The reader sees complete leading records (durability is conservative:
	// they were counted lost), exactly one corrupt sealed line, and the
	// post-recovery record — the torn half-record never merges into it.
	recs, corrupt, _, err := ReadVerdictLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 1 {
		t.Fatalf("corrupt lines = %d, want exactly the sealed torn record", corrupt)
	}
	if len(recs) == 0 || recs[len(recs)-1].Sample != 99 {
		t.Fatalf("post-recovery record missing: %+v", recs)
	}
	for _, r := range recs {
		if r.Sample != 99 && r.Sample != 1 {
			t.Fatalf("unexpected record survived the torn write whole: %+v", r)
		}
	}
}

func TestStampRecoveryAppendsDirectly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.jsonl")
	writeLog(t, path, "", sample(1))
	if err := stampRecovery(path, 4, 7); err != nil {
		t.Fatal(err)
	}
	records, corrupt, stamps, maxSession, stampedLost, err := scanLog(path)
	if err != nil || records != 1 || corrupt != 0 || stamps != 1 || maxSession != 4 || stampedLost != 7 {
		t.Fatalf("after stamp: %d/%d/%d/%d/%d err=%v", records, corrupt, stamps, maxSession, stampedLost, err)
	}
}
