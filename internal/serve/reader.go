package serve

// Streaming verdict-log reading: the consumer half of the JSONL verdict log.
// The shadow trainer (internal/shadow) tails the log a live service is still
// appending to, so the reader must tolerate two things an ad-hoc
// json.Unmarshal loop does not: a partial last line (the writer's buffered
// encoder may have flushed half a record) and corrupt lines (a crashed
// writer, a truncated copy). A VerdictScanner consumes only complete,
// newline-terminated lines — Consumed never includes a trailing partial
// line, so resuming from the returned offset re-reads it once completed —
// and skips undecodable lines loudly (counted, surfaced via Corrupt and
// telemetry) instead of aborting the tail.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"

	"perspectron/internal/telemetry"
)

// VerdictScanner streams VerdictRecords off a JSONL reader with corrupt-line
// tolerance. Create with NewVerdictScanner; drive with Next.
type VerdictScanner struct {
	r        *bufio.Reader
	consumed int64
	corrupt  int
	err      error
}

// NewVerdictScanner wraps r for streaming verdict decoding.
func NewVerdictScanner(r io.Reader) *VerdictScanner {
	return &VerdictScanner{r: bufio.NewReader(r)}
}

// Next returns the next decodable verdict record, skipping corrupt complete
// lines. It reports false at EOF, on a trailing partial line (not yet
// newline-terminated — not consumed, re-readable once the writer finishes
// it), or on a read error (see Err).
func (s *VerdictScanner) Next() (VerdictRecord, bool) {
	for {
		line, err := s.r.ReadBytes('\n')
		if err != nil {
			// A partial line (io.EOF with leftover bytes) is NOT consumed:
			// the writer is mid-record and a later read from the returned
			// offset picks it up whole.
			if err != io.EOF {
				s.err = err
			}
			return VerdictRecord{}, false
		}
		s.consumed += int64(len(line))
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec VerdictRecord
		if jerr := json.Unmarshal(line, &rec); jerr != nil {
			s.corrupt++
			telemetry.Get().Counter("perspectron_verdict_corrupt_lines_total").Inc()
			continue
		}
		return rec, true
	}
}

// Consumed returns the number of bytes of complete lines read so far — the
// offset to resume a tail from.
func (s *VerdictScanner) Consumed() int64 { return s.consumed }

// Corrupt returns the number of undecodable complete lines skipped.
func (s *VerdictScanner) Corrupt() int { return s.corrupt }

// Err returns the first non-EOF read error.
func (s *VerdictScanner) Err() error { return s.err }

// ReadVerdictLog reads every complete verdict line of path starting at byte
// offset, returning the decoded records, the count of corrupt lines skipped,
// and the offset to resume the next tail from. A missing file is an empty
// tail, not an error — the service may simply not have written yet.
func ReadVerdictLog(path string, offset int64) (recs []VerdictRecord, corrupt int, next int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, offset, nil
		}
		return nil, 0, offset, err
	}
	defer f.Close()
	if offset > 0 {
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			return nil, 0, offset, err
		}
	}
	sc := NewVerdictScanner(f)
	for {
		rec, ok := sc.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	return recs, sc.Corrupt(), offset + sc.Consumed(), sc.Err()
}
