package serve

// SLO burn-rate tracking over the two signals an operator pages on: verdict
// latency (enqueue→verdict beyond the target) and shed fraction (admission
// control dropping samples). Each is smoothed as an EWMA of a per-verdict
// bad-event indicator and divided by its error budget — burn > 1 means the
// service is currently spending budget faster than the SLO allows, which
// degrades /healthz and lights the perspectron_serve_slo_*_burn gauges, so
// dashboards and the health surface agree on when the serving path is in
// trouble rather than merely busy.

import (
	"sync"
	"time"

	"perspectron/internal/telemetry"
)

// sloTracker accumulates the burn state. The nil tracker (SLO disabled)
// absorbs all operations, mirroring the telemetry instruments.
type sloTracker struct {
	latencyTarget time.Duration
	latencyBudget float64 // tolerated slow-verdict fraction
	shedBudget    float64 // tolerated shed fraction
	alpha         float64 // EWMA smoothing per observation

	mu       sync.Mutex
	slowEwma float64 // smoothed fraction of verdicts past the target
	shedEwma float64 // smoothed fraction of samples shed
	n        int64
}

// newSLOTracker builds the tracker from an already-defaulted Config; a
// non-positive latency target disables SLO tracking entirely.
func newSLOTracker(cfg Config) *sloTracker {
	if cfg.SLOLatencyTarget <= 0 {
		return nil
	}
	return &sloTracker{
		latencyTarget: cfg.SLOLatencyTarget,
		latencyBudget: cfg.SLOLatencyBudget,
		shedBudget:    cfg.SLOShedBudget,
		alpha:         cfg.SLOAlpha,
	}
}

// observe folds one sample outcome into the burn state: its enqueue→verdict
// latency (ignored for sheds) and whether it was shed. Called once per
// verdict record, off the packed scoring inner loop.
func (t *sloTracker) observe(latency time.Duration, shed bool) {
	if t == nil {
		return
	}
	slow, shedV := 0.0, 0.0
	if shed {
		shedV = 1
	} else if latency > t.latencyTarget {
		slow = 1
	}
	t.mu.Lock()
	t.slowEwma += t.alpha * (slow - t.slowEwma)
	t.shedEwma += t.alpha * (shedV - t.shedEwma)
	t.n++
	latencyBurn := t.slowEwma / t.latencyBudget
	shedBurn := t.shedEwma / t.shedBudget
	t.mu.Unlock()
	reg := telemetry.Get()
	reg.Gauge("perspectron_serve_slo_latency_burn").Set(latencyBurn)
	reg.Gauge("perspectron_serve_slo_shed_burn").Set(shedBurn)
}

// SLOHealth is the burn-rate block on /healthz.
type SLOHealth struct {
	// LatencyTargetMs is the per-verdict latency objective; LatencyBudget
	// the tolerated fraction of verdicts past it.
	LatencyTargetMs float64 `json:"latency_target_ms"`
	LatencyBudget   float64 `json:"latency_budget"`
	// SlowFraction is the smoothed fraction of verdicts past the target;
	// LatencyBurn is SlowFraction/LatencyBudget (burn > 1 = breaching).
	SlowFraction float64 `json:"slow_fraction"`
	LatencyBurn  float64 `json:"latency_burn"`
	// ShedBudget is the tolerated shed fraction; ShedFraction the smoothed
	// observed one; ShedBurn their ratio.
	ShedBudget   float64 `json:"shed_budget"`
	ShedFraction float64 `json:"shed_fraction"`
	ShedBurn     float64 `json:"shed_burn"`
	// Samples is the number of observations folded in so far.
	Samples int64 `json:"samples"`
	// Breach reports either burn above 1 — this degrades /healthz.
	Breach bool `json:"breach"`
}

// snapshot returns the current burn block, or nil when SLO tracking is off.
func (t *sloTracker) snapshot() *SLOHealth {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := &SLOHealth{
		LatencyTargetMs: float64(t.latencyTarget) / float64(time.Millisecond),
		LatencyBudget:   t.latencyBudget,
		SlowFraction:    t.slowEwma,
		LatencyBurn:     t.slowEwma / t.latencyBudget,
		ShedBudget:      t.shedBudget,
		ShedFraction:    t.shedEwma,
		ShedBurn:        t.shedEwma / t.shedBudget,
		Samples:         t.n,
	}
	h.Breach = h.LatencyBurn > 1 || h.ShedBurn > 1
	return h
}
