package serve

// The bounded ingest stage: the overload-control seam between stream
// workers (producers) and scoring (consumers). Workers never score inline —
// each raw sample is routed over the consistent-hash ring to a shard's
// fixed-capacity ring buffer, and one scorer goroutine per shard drains
// batches through a single bit-packed RawScorer sweep. The queue depth cap
// is the overload contract: when a shard fills, admission control sheds
// deterministically (oldest benign-stream sample first, then oldest
// overall; an incoming benign sample yields to queued attack samples), and
// every shed is counted and stamped into the verdict log — the service
// degrades loudly, never silently. Sustained queue pressure additionally
// walks the shard's load rung down the degradation ladder (see degrade.go)
// so scoring gets cheaper before latency collapses.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"perspectron"
	"perspectron/internal/telemetry"
)

// ingestItem is one raw sample in flight between a stream worker and a
// shard scorer.
type ingestItem struct {
	w          *worker
	episode    int
	sample     perspectron.RawSample
	enqueuedAt time.Time
	// dequeuedAt is stamped (once per batch) when the scorer drains the
	// item, splitting end-to-end latency into queue wait vs scoring stages.
	// Zero when tracing is disabled.
	dequeuedAt time.Time
}

// trace renders the item's stream-scoped trace ID: worker/episode/sample,
// unique per admitted sample and stable across the verdict log, the
// slow-verdict exemplars and /debug/verdicts.
func (it *ingestItem) trace() string {
	return fmt.Sprintf("%s/%d/%d", it.w.name, it.episode, it.sample.Sample)
}

// shard is one scoring lane: a bounded ring buffer of pending samples, a
// load-rung ladder fed by queue pressure, and a breaker that opens after
// repeated scorer panics (marking the shard down so the ring routes around
// it).
type shard struct {
	id  int
	cap int

	load    *ladder  // load rung: observes headroom = 1 - pressure
	breaker *breaker // consecutive scorer-batch panics open it

	mu   sync.Mutex
	buf  []*ingestItem // fixed-capacity ring
	head int           // index of the oldest item
	n    int           // items queued

	notify chan struct{} // 1-buffered enqueue wake-up for the scorer

	enqueued atomic.Int64
	scored   atomic.Int64 // dequeued and logged (including error verdicts)
	shed     atomic.Int64
	panics   atomic.Int64
	down     atomic.Bool   // breaker-open mirror the ring can read lock-free
	attrTick atomic.Uint64 // benign-sample attribution round-robin counter
}

func newShard(id, capacity int, load *ladder, brk *breaker) *shard {
	return &shard{
		id:      id,
		cap:     capacity,
		load:    load,
		breaker: brk,
		buf:     make([]*ingestItem, capacity),
		notify:  make(chan struct{}, 1),
	}
}

// depth returns the number of queued items.
func (sh *shard) depth() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.n
}

// pressure returns depth/capacity in [0, 1].
func (sh *shard) pressure() float64 {
	return float64(sh.depth()) / float64(sh.cap)
}

// enqueue admits it, shedding if the ring is full. It returns the item that
// was shed (nil when the ring had room), whether it itself was admitted
// (false only when the incoming item was the shed victim), and the
// post-admission pressure. The caller logs the shed — shedding under the
// shard lock would invert the lock order with the verdict log.
//
// Shed policy, deterministic by construction: evict the oldest queued
// sample from a benign-labeled stream first (attack-stream verdicts are the
// ones worth latency); if every queued sample is from an attack stream, an
// incoming benign sample yields to them, and an incoming attack sample
// evicts the oldest queued one.
func (sh *shard) enqueue(it *ingestItem) (victim *ingestItem, admitted bool, pressure float64) {
	sh.mu.Lock()
	defer func() {
		pressure = float64(sh.n) / float64(sh.cap)
		sh.mu.Unlock()
		select { // wake the scorer; a pending wake-up covers this enqueue
		case sh.notify <- struct{}{}:
		default:
		}
	}()
	if sh.n == sh.cap {
		if i, ok := sh.findOldestBenign(); ok {
			victim = sh.removeAt(i)
		} else if it.w.benign {
			sh.enqueued.Add(1) // it entered admission control, then was shed
			sh.shed.Add(1)
			return it, false, 0
		} else {
			victim = sh.removeAt(0) // oldest overall
		}
		sh.shed.Add(1)
	}
	sh.buf[(sh.head+sh.n)%sh.cap] = it
	sh.n++
	sh.enqueued.Add(1)
	return victim, true, 0
}

// findOldestBenign scans oldest→newest for the first benign-stream item,
// returning its ring offset. Only called on a full ring, i.e. already
// shedding — the O(depth) scan is the cost of shedding precisely, not of
// the fast path.
func (sh *shard) findOldestBenign() (int, bool) {
	for i := 0; i < sh.n; i++ {
		if sh.buf[(sh.head+i)%sh.cap].w.benign {
			return i, true
		}
	}
	return 0, false
}

// removeAt removes and returns the item at ring offset i (0 = oldest),
// shifting the gap toward the head (cheapest for the near-head offsets the
// shed policy picks).
func (sh *shard) removeAt(i int) *ingestItem {
	idx := (sh.head + i) % sh.cap
	out := sh.buf[idx]
	for ; i > 0; i-- {
		prev := (sh.head + i - 1) % sh.cap
		cur := (sh.head + i) % sh.cap
		sh.buf[cur] = sh.buf[prev]
	}
	sh.buf[sh.head] = nil
	sh.head = (sh.head + 1) % sh.cap
	sh.n--
	return out
}

// dequeueBatch pops up to max oldest items.
func (sh *shard) dequeueBatch(max int, dst []*ingestItem) []*ingestItem {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	k := sh.n
	if k > max {
		k = max
	}
	for i := 0; i < k; i++ {
		idx := (sh.head + i) % sh.cap
		dst = append(dst, sh.buf[idx])
		sh.buf[idx] = nil
	}
	sh.head = (sh.head + k) % sh.cap
	sh.n -= k
	return dst
}

// route hashes the worker's stream onto a healthy shard and enqueues one
// raw sample, logging any shed verdict and returning the target shard's
// post-admission pressure (the producer's backpressure signal).
func (s *Supervisor) route(w *worker, episode int, rs perspectron.RawSample) float64 {
	sh := s.shards[s.ring.lookup(w.name, s.shardHealthy)]
	it := &ingestItem{w: w, episode: episode, sample: rs, enqueuedAt: time.Now()}
	victim, admitted, pressure := sh.enqueue(it)
	if victim != nil || !admitted {
		shedIt := victim
		if shedIt == nil {
			shedIt = it
		}
		s.logShed(sh, shedIt)
	}
	return pressure
}

// shardHealthy reports whether shard i can accept new streams — the ring's
// liveness callback.
func (s *Supervisor) shardHealthy(i int) bool { return !s.shards[i].down.Load() }

// logShed stamps one shed sample into the verdict log and telemetry. A shed
// is never silent: it produces a verdict record (mode "shed") exactly like
// a scored sample would, so downstream consumers see the gap.
func (s *Supervisor) logShed(sh *shard, it *ingestItem) {
	it.w.sheds.Add(1)
	telemetry.Get().Counter(telemetry.Name("perspectron_serve_shed_total", "worker", it.w.name)).Inc()
	det, _ := s.models.Load().Versions()
	rec := VerdictRecord{
		Worker:  it.w.name,
		Episode: it.episode,
		Sample:  it.sample.Sample,
		Mode:    "shed",
		Version: det,
		Shed:    true,
		Shard:   sh.id,
	}
	if !s.cfg.DisableTracing {
		// A shed victim's whole life was queue wait; the trace still joins
		// it to its stream.
		rec.Trace = it.trace()
		rec.QueueMs = float64(time.Since(it.enqueuedAt)) / float64(time.Millisecond)
	}
	s.slo.observe(0, true)
	s.log.record(rec)
	s.observe(rec)
}

// producersDone reports whether every stream worker has exited — the
// scorers' signal to finish draining and stop.
func (s *Supervisor) producersDone() bool {
	select {
	case <-s.produceDone:
		return true
	default:
		return false
	}
}

// scoreShard is one shard's consumer loop: wait for work, drain a batch,
// score it through the packed RawScorer, repeat. It exits only when the
// producers are done AND the queue is empty, so no admitted sample is ever
// dropped unlogged. A panic in a batch (scoring bug, chaos injection) is
// recovered per item — the poisoned item still yields a verdict record
// (mode "error") — and counted against the shard breaker: repeated panics
// mark the shard down, the ring routes new streams around it, and after the
// cooldown a trial batch either recovers it or re-opens.
func (s *Supervisor) scoreShard(sh *shard) {
	reg := telemetry.Get()
	reg.Gauge("perspectron_serve_scorers_running").Add(1)
	defer reg.Gauge("perspectron_serve_scorers_running").Add(-1)
	tick := time.NewTicker(s.cfg.ScoreTick)
	defer tick.Stop()
	var cache scorerCache
	batch := make([]*ingestItem, 0, s.cfg.Batch)
	for {
		if sh.depth() == 0 {
			if s.producersDone() {
				return
			}
			select {
			case <-sh.notify:
			case <-tick.C:
			case <-s.produceDone:
			}
			continue
		}
		// Breaker gate: an open shard holds off between trial batches — but
		// never during drain, when finishing the queue outranks caution.
		if !s.producersDone() && !sh.breaker.allow() {
			sh.down.Store(true)
			select {
			case <-time.After(s.cfg.BreakerCooldown / 4):
			case <-s.produceDone:
			}
			continue
		}
		// Fold queue pressure into the load rung once per batch, before
		// draining: the rung must see the backlog, not the post-drain lull.
		if _, changed := sh.load.observeLoad(sh.pressure()); changed {
			mode, _ := sh.load.snapshot()
			reg.Counter(telemetry.Name("perspectron_serve_load_mode_changes_total", "mode", mode.String())).Inc()
		}
		loadMode, _ := sh.load.snapshot()
		batch = sh.dequeueBatch(s.cfg.Batch, batch[:0])
		if !s.cfg.DisableTracing {
			// One clock read covers the whole batch: every item left the
			// queue at this instant, and per-item batch wait accrues from
			// here until its scoring turn.
			now := time.Now()
			for _, it := range batch {
				it.dequeuedAt = now
			}
		}
		panicked := false
		for _, it := range batch {
			if !s.scoreItem(sh, &cache, it, loadMode) {
				panicked = true
			}
		}
		if panicked {
			sh.panics.Add(1)
			reg.Counter(telemetry.Name("perspectron_serve_scorer_panics_total", "shard", fmt.Sprint(sh.id))).Inc()
			if sh.breaker.failure() {
				sh.down.Store(true)
				reg.Counter(telemetry.Name("perspectron_serve_shard_down_total", "shard", fmt.Sprint(sh.id))).Inc()
			}
		} else {
			sh.breaker.success()
			sh.down.Store(false)
		}
	}
}

// scorerCache memoizes the RawScorer for the current model generation so a
// hot-reload rebuilds packed state once per shard, not once per sample.
type scorerCache struct {
	mdl    *Models
	scorer *perspectron.RawScorer
}

func (c *scorerCache) get(mdl *Models) (*perspectron.RawScorer, error) {
	if c.scorer != nil && c.mdl == mdl {
		return c.scorer, nil
	}
	scorer, err := perspectron.NewRawScorer(mdl.Det, mdl.Cls)
	if err != nil {
		return nil, err
	}
	c.mdl, c.scorer = mdl, scorer
	return scorer, nil
}

// scoreItem scores one sample end to end: packed detector margin, coverage
// into the worker's ladder, effective mode = the worse of the coverage rung
// and the shard's load rung, classifier naming only on the top rung. It
// reports false when scoring panicked; the item is still logged (mode
// "error") so the verdict accounting stays exact.
//
// With tracing on (the default) the verdict record additionally carries its
// trace ID and the queue/batch/score stage breakdown, the four
// perspectron_serve_stage_seconds histograms are fed, and a verdict past
// SlowSample emits an exemplar event into the telemetry trace stream. With
// attribution on, flagged samples (and every AttrBenignEvery-th benign one)
// get their fired slots and top-k weight×bit contributions stamped and are
// pushed into the flight recorder. Both features cost nothing when disabled
// (pinned by BenchmarkServeForensicsOverhead).
func (s *Supervisor) scoreItem(sh *shard, cache *scorerCache, it *ingestItem, loadMode perspectron.ServeMode) (ok bool) {
	ok = true
	tracing := !s.cfg.DisableTracing
	var scoreStart time.Time
	if tracing {
		scoreStart = time.Now()
	}
	mdl := s.models.Load() // pinned: the verdict is attributed to this version
	detVer, _ := mdl.Versions()
	rec := VerdictRecord{
		Worker:  it.w.name,
		Episode: it.episode,
		Sample:  it.sample.Sample,
		Version: detVer,
		Shard:   sh.id,
	}
	defer func() {
		if r := recover(); r != nil {
			ok = false
			msg := fmt.Sprintf("scorer panic: %v", r)
			it.w.lastErr.Store(&msg)
			rec.Mode = "error"
			rec.Error = msg
		}
		reg := telemetry.Get()
		var queueWait, batchWait, scoreDur time.Duration
		var logStart time.Time
		if tracing {
			logStart = time.Now()
			queueWait = it.dequeuedAt.Sub(it.enqueuedAt)
			batchWait = scoreStart.Sub(it.dequeuedAt)
			scoreDur = logStart.Sub(scoreStart)
			rec.Trace = it.trace()
			rec.QueueMs = float64(queueWait) / float64(time.Millisecond)
			rec.BatchMs = float64(batchWait) / float64(time.Millisecond)
			rec.ScoreMs = float64(scoreDur) / float64(time.Millisecond)
		}
		total := time.Since(it.enqueuedAt)
		rec.LatencyMs = float64(total) / float64(time.Millisecond)
		s.log.record(rec)
		s.observe(rec)
		if rec.Attr != nil {
			s.flight.push(rec)
		}
		s.slo.observe(total, false)
		sh.scored.Add(1)
		reg.Histogram("perspectron_serve_verdict_latency_seconds", latencyBounds).
			Observe(total.Seconds())
		reg.Counter(telemetry.Name("perspectron_serve_verdicts_total", "mode", rec.Mode)).Inc()
		if tracing {
			logDur := time.Since(logStart)
			reg.Histogram(stageQueue, telemetry.LatencyBuckets).Observe(queueWait.Seconds())
			reg.Histogram(stageBatch, telemetry.LatencyBuckets).Observe(batchWait.Seconds())
			reg.Histogram(stageScore, telemetry.LatencyBuckets).Observe(scoreDur.Seconds())
			reg.Histogram(stageLog, telemetry.LatencyBuckets).Observe(logDur.Seconds())
			if s.cfg.SlowSample > 0 && total >= s.cfg.SlowSample {
				reg.Counter("perspectron_serve_slow_verdicts_total").Inc()
				reg.Event("serve.slow_verdict", map[string]any{
					"trace":    rec.Trace,
					"shard":    sh.id,
					"mode":     rec.Mode,
					"total_ms": rec.LatencyMs,
					"queue_ms": rec.QueueMs,
					"batch_ms": rec.BatchMs,
					"score_ms": rec.ScoreMs,
					"log_ms":   float64(logDur) / float64(time.Millisecond),
				})
			}
		}
	}()
	if hook := s.scoreHook; hook != nil {
		hook(it)
	}
	scorer, err := cache.get(mdl)
	if err != nil {
		panic(err) // surfaces as an error verdict + breaker pressure
	}
	score, flagged, coverage := scorer.Detect(it.sample)
	covMode, changed := it.w.ladder.observe(coverage)
	if changed {
		telemetry.Get().Counter(telemetry.Name("perspectron_serve_mode_changes_total", "mode", covMode.String())).Inc()
	}
	mode := maxMode(covMode, loadMode)
	class := ""
	switch mode {
	case perspectron.ModeClassifier:
		cl, _, _ := scorer.Classify(it.sample)
		if cl != "" {
			class, flagged = cl, cl != "benign"
		}
	case perspectron.ModeThreshold:
		flagged = score > 0
	}
	if flagged {
		telemetry.Get().Counter(telemetry.Name("perspectron_serve_flagged_total", "worker", it.w.name)).Inc()
	}
	if k := s.cfg.AttributionK; k > 0 && mdl.Det != nil {
		// Attribute flagged verdicts always, benign ones on the shard's
		// round-robin tick. Classify scratches a separate bit vector, so the
		// detector's fired set is still intact here.
		attributed := flagged
		if !attributed && s.cfg.AttrBenignEvery > 0 &&
			sh.attrTick.Add(1)%uint64(s.cfg.AttrBenignEvery) == 0 {
			attributed = true
		}
		if attributed {
			if fired, attr, aerr := scorer.Attribution(k); aerr == nil {
				rec.Fired, rec.Attr = fired, attr
			}
		}
	}
	rec.Mode = mode.String()
	rec.Score = score
	rec.Class = class
	rec.Flagged = flagged
	rec.Coverage = coverage
	return ok
}

// Stage-latency series names, pre-rendered once — the per-verdict hot path
// must not re-run the label formatter.
var (
	stageQueue = telemetry.Name("perspectron_serve_stage_seconds", "stage", "queue")
	stageBatch = telemetry.Name("perspectron_serve_stage_seconds", "stage", "batch")
	stageScore = telemetry.Name("perspectron_serve_stage_seconds", "stage", "score")
	stageLog   = telemetry.Name("perspectron_serve_stage_seconds", "stage", "log")
)

// observe feeds the optional per-verdict test observer.
func (s *Supervisor) observe(rec VerdictRecord) {
	if s.onVerdict != nil {
		s.onVerdict(rec)
	}
}

// latencyBounds buckets verdict latency from 100µs to ~10s.
var latencyBounds = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
