package serve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker the supervisor
// puts in front of each worker's episode loop.
type breakerState int

const (
	breakerClosed breakerState = iota // episodes flow normally
	breakerOpen                       // too many consecutive failures; hold off
	breakerHalf                       // cooldown elapsed; one trial episode
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalf:
		return "half-open"
	}
	return "closed"
}

// breaker trips open after threshold consecutive failures and lets a single
// trial episode through once cooldown has elapsed: a worker whose workload
// panics on every run stops burning a simulator core, without being written
// off forever. All methods are safe for concurrent use; now is injectable
// so tests never sleep.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	trips    int
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether the next episode may run. An open breaker whose
// cooldown has elapsed transitions to half-open and admits exactly one
// trial.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed, breakerHalf:
		return true
	default: // open
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalf
			return true
		}
		return false
	}
}

// success closes the breaker and clears the failure streak.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.mu.Unlock()
}

// failure records a failed episode, tripping the breaker at the threshold.
// A failed half-open trial re-opens immediately. It reports whether this
// call opened the breaker.
func (b *breaker) failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == breakerHalf || (b.state == breakerClosed && b.failures >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.trips++
		return true
	}
	return false
}

// snapshot returns the state for health reporting.
func (b *breaker) snapshot() (state string, failures, trips int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.failures, b.trips
}
