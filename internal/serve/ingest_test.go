package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"perspectron"
)

// --- ring ----------------------------------------------------------------

func TestRingSpreadsAndIsStable(t *testing.T) {
	r := newRing(4, 16)
	counts := make([]int, 4)
	owner := map[string]int{}
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("stream-%d", i)
		sh := r.lookup(key, nil)
		if sh2 := r.lookup(key, nil); sh2 != sh {
			t.Fatalf("lookup(%q) unstable: %d then %d", key, sh, sh2)
		}
		counts[sh]++
		owner[key] = sh
	}
	for sh, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d owns no streams out of 400: %v", sh, counts)
		}
	}
	// A rebuilt ring routes identically — placement is a pure function of
	// the key, so streams keep their shard across restarts.
	r2 := newRing(4, 16)
	for key, sh := range owner {
		if got := r2.lookup(key, nil); got != sh {
			t.Fatalf("rebuilt ring moved %q: %d -> %d", key, sh, got)
		}
	}
}

func TestRingRoutesAroundUnhealthyShards(t *testing.T) {
	r := newRing(4, 16)
	down := 2
	healthy := func(sh int) bool { return sh != down }
	moved := 0
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("stream-%d", i)
		home := r.lookup(key, nil)
		got := r.lookup(key, healthy)
		if got == down {
			t.Fatalf("lookup(%q) landed on the down shard", key)
		}
		if home == down {
			moved++
		} else if got != home {
			t.Fatalf("lookup(%q) moved a stream (%d -> %d) whose home shard is healthy", key, home, got)
		}
	}
	if moved == 0 {
		t.Fatalf("no stream had its home on shard %d — test is vacuous", down)
	}
	// All shards down: items must still land somewhere (the home shard).
	if got := r.lookup("stream-1", func(int) bool { return false }); got != r.lookup("stream-1", nil) {
		t.Fatalf("all-down lookup %d != home shard", got)
	}
}

// --- shard admission control ---------------------------------------------

func testWorkerPair() (benign, attack *worker) {
	benign = &worker{id: 0, name: "benign", benign: true}
	attack = &worker{id: 1, name: "attack", benign: false}
	return
}

func item(w *worker, sample int) *ingestItem {
	return &ingestItem{w: w, sample: perspectron.RawSample{Sample: sample}, enqueuedAt: time.Now()}
}

func TestShardShedsOldestBenignFirst(t *testing.T) {
	ben, atk := testWorkerPair()
	sh := newShard(0, 3, newLadder(0.25, 0.1, 0.05, false), newBreaker(3, time.Minute))
	for i, w := range []*worker{atk, ben, atk} {
		if victim, admitted, _ := sh.enqueue(item(w, i)); victim != nil || !admitted {
			t.Fatalf("enqueue %d shed with room in the ring", i)
		}
	}
	// Full ring, attack sample incoming: the queued benign sample (not the
	// older attack sample) is the victim.
	victim, admitted, _ := sh.enqueue(item(atk, 3))
	if !admitted || victim == nil || victim.w != ben {
		t.Fatalf("victim = %+v admitted=%v, want the benign sample shed", victim, admitted)
	}
	// Now all queued samples are attack: an incoming benign sample yields.
	victim, admitted, _ = sh.enqueue(item(ben, 4))
	if admitted || victim == nil || victim.w != ben {
		t.Fatalf("incoming benign on an all-attack queue: victim=%+v admitted=%v, want self-shed", victim, admitted)
	}
	// And an incoming attack sample evicts the oldest queued one.
	victim, admitted, _ = sh.enqueue(item(atk, 5))
	if !admitted || victim == nil || victim.sample.Sample != 0 {
		t.Fatalf("incoming attack on a full queue: victim=%+v admitted=%v, want oldest (sample 0) shed", victim, admitted)
	}
	// Accounting invariant: everything that entered admission control is
	// queued or shed.
	if enq, shed, depth := sh.enqueued.Load(), sh.shed.Load(), int64(sh.depth()); enq != shed+depth {
		t.Fatalf("accounting broken: enqueued=%d shed=%d depth=%d", enq, shed, depth)
	}
	// FIFO order survived the evictions.
	batch := sh.dequeueBatch(10, nil)
	if len(batch) != 3 {
		t.Fatalf("drained %d items, want 3", len(batch))
	}
	for i := 1; i < len(batch); i++ {
		if batch[i].sample.Sample < batch[i-1].sample.Sample {
			t.Fatalf("drain out of order: %d after %d", batch[i].sample.Sample, batch[i-1].sample.Sample)
		}
	}
}

func TestShardRingBufferWraps(t *testing.T) {
	_, atk := testWorkerPair()
	sh := newShard(0, 4, newLadder(0.25, 0.1, 0.05, false), newBreaker(3, time.Minute))
	next := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			sh.enqueue(item(atk, next))
			next++
		}
		batch := sh.dequeueBatch(2, nil)
		if len(batch) != 2 {
			t.Fatalf("round %d drained %d, want 2", round, len(batch))
		}
		batch = append(batch, sh.dequeueBatch(10, nil)...)
		for i := 1; i < len(batch); i++ {
			if batch[i].sample.Sample != batch[i-1].sample.Sample+1 {
				t.Fatalf("round %d: wrap broke FIFO: %v then %v", round,
					batch[i-1].sample.Sample, batch[i].sample.Sample)
			}
		}
	}
}

// --- load rung -----------------------------------------------------------

func TestLoadRungWalksDownUnderPressure(t *testing.T) {
	// Floors mirror LoadHigh=0.75, LoadCritical=0.9.
	l := newLadder(1-0.75, 1-0.9, 0.05, true)
	if mode, _ := l.observeLoad(0); mode != perspectron.ModeClassifier {
		t.Fatalf("idle shard mode = %s, want classifier", mode)
	}
	var mode perspectron.ServeMode
	for i := 0; i < 30; i++ {
		mode, _ = l.observeLoad(0.8) // sustained past LoadHigh
	}
	if mode != perspectron.ModeDetector {
		t.Fatalf("pressure 0.8 mode = %s, want detector", mode)
	}
	for i := 0; i < 30; i++ {
		mode, _ = l.observeLoad(0.98) // past LoadCritical
	}
	if mode != perspectron.ModeThreshold {
		t.Fatalf("pressure 0.98 mode = %s, want threshold", mode)
	}
	for i := 0; i < 60 && mode != perspectron.ModeClassifier; i++ {
		mode, _ = l.observeLoad(0) // pressure clears: climb back rung by rung
	}
	if mode != perspectron.ModeClassifier {
		t.Fatalf("idle shard never climbed back to classifier (mode=%s)", mode)
	}
}

func TestMaxMode(t *testing.T) {
	if got := maxMode(perspectron.ModeClassifier, perspectron.ModeThreshold); got != perspectron.ModeThreshold {
		t.Fatalf("maxMode(classifier, threshold) = %s", got)
	}
	if got := maxMode(perspectron.ModeDetector, perspectron.ModeClassifier); got != perspectron.ModeDetector {
		t.Fatalf("maxMode(detector, classifier) = %s", got)
	}
}

// --- verdict log error surfacing -----------------------------------------

// failWriter errors after limit bytes — the disk-full/closed-pipe stand-in.
type failWriter struct {
	n     int
	limit int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		return 0, errors.New("sink failed")
	}
	w.n += len(p)
	return len(p), nil
}

func TestVerdictLogSurfacesWriteErrors(t *testing.T) {
	l := newVerdictLog(&failWriter{limit: 64})
	// Enough records to overflow the bufio buffer and hit the sink error.
	for i := 0; i < 100; i++ {
		l.record(VerdictRecord{Worker: strings.Repeat("w", 64), Sample: i})
	}
	if l.err() == nil {
		t.Fatalf("sticky error not captured after sink failure")
	}
	if err := l.flush(); err == nil {
		t.Fatalf("flush swallowed the write error")
	}
	// The error was reported once; a subsequent flush of the (still broken)
	// buffer may fail again on its own, but the sticky slot was cleared.
	if l.err() != nil {
		t.Fatalf("sticky error not cleared after being reported")
	}
}

// --- watcher backoff -----------------------------------------------------

func TestWatcherBacksOffOnPersistentFailure(t *testing.T) {
	det, _ := testModels(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "det.json")
	if err := det.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		DetectorPath: path,
		Workloads:    []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
		Backoff:      fastBackoff(),
		PollInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := s.watch

	// A corrupt rewrite fails to load: the tick rolls back AND schedules a
	// backoff window.
	time.Sleep(10 * time.Millisecond)
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	w.tick()
	w.mu.Lock()
	streak, next := w.failStreak, w.nextTry
	w.mu.Unlock()
	if streak != 1 || next.IsZero() {
		t.Fatalf("after corrupt reload: failStreak=%d nextTry=%v, want a backoff window", streak, next)
	}
	// Ticks inside the window are skipped: the streak must not grow.
	w.tick()
	w.tick()
	w.mu.Lock()
	streak = w.failStreak
	w.mu.Unlock()
	if streak != 1 {
		t.Fatalf("backoff window did not suppress ticks: failStreak=%d", streak)
	}
	// Deleting the file makes stats fail too: forced polls bypass the window
	// and each failure deepens the streak.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	s.pollNow()
	s.pollNow()
	w.mu.Lock()
	streak = w.failStreak
	w.mu.Unlock()
	if streak != 3 {
		t.Fatalf("stat failures not counted through forced polls: failStreak=%d, want 3", streak)
	}
	// A good write recovers: the streak clears and the reload lands.
	if err := det.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s.pollNow()
	w.mu.Lock()
	streak, next = w.failStreak, w.nextTry
	w.mu.Unlock()
	if streak != 0 || !next.IsZero() {
		t.Fatalf("recovery did not clear the backoff: failStreak=%d nextTry=%v", streak, next)
	}
}

// --- blackout end to end -------------------------------------------------

// TestServiceBlackoutDegradesToThreshold drives total counter blackout
// (dropout 1.0 ⇒ coverage 0 on every sample) through the whole supervisor:
// the worker's ladder must bottom out on the threshold rung, verdicts must
// keep flowing (finite scores, never NaN), and /healthz must call the
// service degraded.
func TestServiceBlackoutDegradesToThreshold(t *testing.T) {
	det, cls := testModels(t)
	var buf bytes.Buffer
	var threshold, total atomic.Int64
	s, err := New(Config{
		Detector:    det,
		Classifier:  cls,
		Workloads:   []perspectron.Workload{perspectron.AttackByName("spectreV1", "fr")},
		MaxInsts:    60_000,
		MaxEpisodes: 2,
		Backoff:     fastBackoff(),
		VerdictLog:  NewVerdictLog(&buf),
		Faults:      &perspectron.FaultConfig{Seed: 5, Dropout: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.onVerdict = func(rec VerdictRecord) {
		total.Add(1)
		if rec.Mode == "threshold" {
			threshold.Add(1)
		}
		if rec.Coverage != 0 {
			t.Errorf("blackout sample has coverage %v", rec.Coverage)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Run(ctx); err != nil {
		t.Fatalf("run: %v", err)
	}
	if total.Load() == 0 {
		t.Fatalf("blackout produced no verdicts")
	}
	if threshold.Load() == 0 {
		t.Fatalf("coverage 0 never reached the threshold rung (%d verdicts)", total.Load())
	}
	h := s.Health()
	if h.Workers[0].Mode != "threshold" {
		t.Fatalf("worker mode = %s after blackout, want threshold", h.Workers[0].Mode)
	}
	if h.Workers[0].Coverage != 0 {
		t.Fatalf("smoothed coverage = %v after blackout, want 0", h.Workers[0].Coverage)
	}
	if h.Status != "degraded" && h.Status != "draining" {
		t.Fatalf("status = %q, want degraded", h.Status)
	}
	// Every logged score must be finite: the packed kernel's renormalized
	// margin degrades to the bias sign, never NaN.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.Contains(line, "NaN") {
			t.Fatalf("non-finite score leaked into the verdict log: %s", line)
		}
	}
}
