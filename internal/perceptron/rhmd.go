package perceptron

import "math/rand"

// RHMD is the stochastic multi-detector defense the paper proposes adopting
// from Khasawneh et al. (RHMD, MICRO'17) to harden PerSpectron against
// adversarial evasion (§VI-A, §IX): K detectors are trained on distinct
// random feature subsets, and each sample is scored by a pseudorandomly
// chosen detector. An attacker who reverse-engineers one detector and
// suppresses its positive-weight features still faces the other K-1 with
// high probability, and cannot predict which detector judges which interval.
type RHMD struct {
	Detectors []*Perceptron
	Subsets   [][]int // per-detector feature indices into the full vector
	Threshold float64

	nonce uint64
}

// NewRHMD builds K detectors over *disjoint* random partitions of the n
// features, each of size min(subset, n/k) — as in Khasawneh et al., where
// the detectors use different feature sets so that a perturbation crafted
// against one detector's features leaves the others' inputs untouched.
// Replicated features across pipeline components are what make every
// partition carry enough signal to detect on its own. r drives the
// partition draw (deterministic per seed).
func NewRHMD(k, n, subset int, cfg Config, r *rand.Rand) *RHMD {
	if subset > n/k {
		subset = n / k
	}
	if subset < 1 {
		subset = 1
	}
	perm := r.Perm(n)
	e := &RHMD{Threshold: cfg.Threshold}
	for d := 0; d < k; d++ {
		idx := append([]int(nil), perm[d*subset:(d+1)*subset]...)
		c := cfg
		c.Seed = cfg.Seed + int64(d)*101
		e.Detectors = append(e.Detectors, New(subset, c))
		e.Subsets = append(e.Subsets, idx)
	}
	return e
}

// Name implements the shared classifier interface.
func (e *RHMD) Name() string { return "RHMD" }

func (e *RHMD) project(x []float64, d int) []float64 {
	idx := e.Subsets[d]
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = x[j]
	}
	return out
}

// Fit trains every detector on its subset view of X.
func (e *RHMD) Fit(X [][]float64, y []float64) {
	for d := range e.Detectors {
		sub := make([][]float64, len(X))
		for i, row := range X {
			sub[i] = e.project(row, d)
		}
		e.Detectors[d].Fit(sub, y)
	}
}

// pick selects the detector for the current decision. The hardware draws
// from an internal PRNG the attacker cannot observe; a simple LCG over an
// internal nonce models that.
func (e *RHMD) pick() int {
	e.nonce = e.nonce*6364136223846793005 + 1442695040888963407
	return int((e.nonce >> 33) % uint64(len(e.Detectors)))
}

// Score scores x with a stochastically chosen detector.
func (e *RHMD) Score(x []float64) float64 {
	d := e.pick()
	return e.Detectors[d].Score(e.project(x, d))
}

// ScoreWith scores x with a specific detector (used by evasion analyses).
func (e *RHMD) ScoreWith(d int, x []float64) float64 {
	return e.Detectors[d].Score(e.project(x, d))
}

// Predict thresholds the stochastic score.
func (e *RHMD) Predict(x []float64) float64 {
	if e.Score(x) >= e.Threshold {
		return 1
	}
	return -1
}

// EvadeOne returns a copy of x adversarially modified against detector d:
// every feature with a positive weight in d is cleared and every negative-
// weight feature is set — the strongest white-box bit-flip attack available
// on a linear detector over binary features.
func (e *RHMD) EvadeOne(d int, x []float64) []float64 {
	out := append([]float64(nil), x...)
	det := e.Detectors[d]
	for i, j := range e.Subsets[d] {
		if det.W[i] > 0 {
			out[j] = 0
		} else if det.W[i] < 0 {
			out[j] = 1
		}
	}
	return out
}
