package perceptron

import (
	"math/rand"
	"testing"
)

// threeClassData builds separable data: class i has bit i set plus noise in
// the upper bits.
func threeClassData(n int, r *rand.Rand) (X [][]float64, labels []string) {
	names := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		c := r.Intn(3)
		row := make([]float64, 8)
		row[c] = 1
		for j := 3; j < 8; j++ {
			row[j] = float64(r.Intn(2))
		}
		X = append(X, row)
		labels = append(labels, names[c])
	}
	return X, labels
}

func TestMultiClassLearnsSeparable(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	X, labels := threeClassData(300, r)
	m := NewMultiClass([]string{"a", "b", "c"}, 8, DefaultConfig())
	m.Fit(X, labels)
	errs := 0
	for i, x := range X {
		if got, _ := m.Predict(x); got != labels[i] {
			errs++
		}
	}
	if float64(errs)/float64(len(X)) > 0.02 {
		t.Fatalf("multiclass training error %d/%d", errs, len(X))
	}
}

func TestMultiClassScoresLength(t *testing.T) {
	m := NewMultiClass([]string{"x", "y"}, 4, DefaultConfig())
	if got := len(m.Scores([]float64{1, 0, 0, 1})); got != 2 {
		t.Fatalf("scores length = %d", got)
	}
}

func TestMultiClassSeedsDiffer(t *testing.T) {
	m := NewMultiClass([]string{"x", "y"}, 4, DefaultConfig())
	// Per-class detectors must not share shuffle seeds (they would be
	// identical after symmetric training).
	if m.Detectors[0].cfg.Seed == m.Detectors[1].cfg.Seed {
		t.Fatalf("detector seeds identical")
	}
}

func TestConfusionF1Perfect(t *testing.T) {
	c := NewConfusion([]string{"a", "b"})
	for i := 0; i < 10; i++ {
		c.Add("a", "a")
		c.Add("b", "b")
	}
	if c.F1("a") != 1 || c.F1("b") != 1 || c.MacroF1() != 1 || c.Accuracy() != 1 {
		t.Fatalf("perfect confusion scored %v %v", c.MacroF1(), c.Accuracy())
	}
}

func TestConfusionF1Mixed(t *testing.T) {
	c := NewConfusion([]string{"a", "b"})
	c.Add("a", "a") // tp(a)
	c.Add("a", "b") // fn(a), fp(b)
	c.Add("b", "b")
	c.Add("b", "b")
	// class a: tp=1 fp=0 fn=1 -> p=1 r=0.5 f1=2/3
	if f := c.F1("a"); f < 0.66 || f > 0.67 {
		t.Fatalf("F1(a) = %v", f)
	}
	if c.Accuracy() != 0.75 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
}

func TestConfusionUnknownClassIgnored(t *testing.T) {
	c := NewConfusion([]string{"a"})
	c.Add("zzz", "a")
	c.Add("a", "zzz")
	if c.Accuracy() != 0 {
		t.Fatalf("unknown classes were recorded")
	}
	if c.F1("zzz") != 0 {
		t.Fatalf("F1 of unknown class nonzero")
	}
}

func TestConfusionEmptyClassSkippedInMacro(t *testing.T) {
	c := NewConfusion([]string{"a", "never"})
	c.Add("a", "a")
	if c.MacroF1() != 1 {
		t.Fatalf("macro F1 penalized an absent class: %v", c.MacroF1())
	}
}
