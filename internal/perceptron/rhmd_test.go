package perceptron

import (
	"math/rand"
	"testing"
)

// redundantData builds samples where the positive class sets many redundant
// signal bits (like replicated microarchitectural features), so random
// subsets all carry signal.
func redundantData(n, f int, r *rand.Rand) (X [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		cls := -1.0
		row := make([]float64, f)
		sig := r.Intn(2) == 0
		if sig {
			cls = 1
		}
		for j := 0; j < f; j++ {
			if j%2 == 0 {
				if sig {
					row[j] = 1 // replicated signal spread across the space
				}
			} else {
				row[j] = float64(r.Intn(2)) // noise
			}
		}
		X = append(X, row)
		y = append(y, cls)
	}
	return X, y
}

func newRHMD(t *testing.T) (*RHMD, [][]float64, []float64) {
	t.Helper()
	r := rand.New(rand.NewSource(1))
	X, y := redundantData(400, 40, r)
	e := NewRHMD(4, 40, 20, DefaultConfig(), r)
	e.Fit(X, y)
	return e, X, y
}

func TestRHMDLearns(t *testing.T) {
	e, X, y := newRHMD(t)
	errs := 0
	for i, x := range X {
		pred := -1.0
		if e.Score(x) >= 0 {
			pred = 1
		}
		if pred != y[i] {
			errs++
		}
	}
	if float64(errs)/float64(len(X)) > 0.05 {
		t.Fatalf("RHMD error rate %d/%d", errs, len(X))
	}
}

func TestRHMDSubsetsDiffer(t *testing.T) {
	e, _, _ := newRHMD(t)
	same := 0
	for i := range e.Subsets[0] {
		if e.Subsets[0][i] == e.Subsets[1][i] {
			same++
		}
	}
	if same == len(e.Subsets[0]) {
		t.Fatalf("detector subsets identical")
	}
}

func TestRHMDStochasticSelection(t *testing.T) {
	e, _, _ := newRHMD(t)
	// The internal selector must actually rotate across detectors.
	picked := map[int]bool{}
	for i := 0; i < 100; i++ {
		picked[e.pick()] = true
	}
	if len(picked) < len(e.Detectors) {
		t.Fatalf("selector used only %d of %d detectors", len(picked), len(e.Detectors))
	}
}

func TestRHMDResistsSingleDetectorEvasion(t *testing.T) {
	e, X, y := newRHMD(t)
	// White-box evasion of detector 0: the modified sample must fool
	// detector 0 but not the majority of the others.
	evaded, caught := 0, 0
	for i, x := range X {
		if y[i] != 1 {
			continue
		}
		adv := e.EvadeOne(0, x)
		if e.ScoreWith(0, adv) < e.Threshold {
			evaded++
		}
		for d := 1; d < len(e.Detectors); d++ {
			if e.ScoreWith(d, adv) >= e.Threshold {
				caught++
				break
			}
		}
	}
	if evaded == 0 {
		t.Fatalf("white-box evasion failed against its own target — test invalid")
	}
	if caught == 0 {
		t.Fatalf("no evaded sample was caught by the remaining detectors")
	}
}

func TestRHMDSubsetCap(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	e := NewRHMD(2, 10, 99, DefaultConfig(), r)
	if len(e.Subsets[0]) != 5 {
		t.Fatalf("subset size not capped to n/k: %d", len(e.Subsets[0]))
	}
}

func TestRHMDSubsetsDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	e := NewRHMD(4, 40, 10, DefaultConfig(), r)
	seen := map[int]bool{}
	for _, sub := range e.Subsets {
		for _, j := range sub {
			if seen[j] {
				t.Fatalf("feature %d appears in two partitions", j)
			}
			seen[j] = true
		}
	}
}
