package perceptron

import (
	"encoding/json"
	"math/rand"
	"testing"

	"perspectron/internal/encoding"
)

// trainCorpus builds a deterministic, non-trivially-separable 0/1 corpus.
func trainCorpus(n, f int, seed int64) (X [][]float64, Xp []encoding.BitVec, y []float64) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		row := make([]float64, f)
		label := -1.0
		if i%2 == 0 {
			label = 1
		}
		for j := 0; j < f; j++ {
			p := 0.15
			if (label > 0) == (j%3 == 0) {
				p = 0.6
			}
			if r.Float64() < p {
				row[j] = 1
			}
		}
		X = append(X, row)
		Xp = append(Xp, encoding.Pack(row))
		y = append(y, label)
	}
	return X, Xp, y
}

func weightsEqual(t *testing.T, a, b *Perceptron, what string) {
	t.Helper()
	if a.Bias != b.Bias {
		t.Fatalf("%s: bias %v != %v", what, a.Bias, b.Bias)
	}
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatalf("%s: W[%d] %v != %v", what, j, a.W[j], b.W[j])
		}
	}
}

// TestTrainerStepMatchesFit pins the core contract: stepping a fresh
// trainer to the same epoch budget is bit-identical to batch Fit, on both
// the dense and packed paths.
func TestTrainerStepMatchesFit(t *testing.T) {
	X, Xp, y := trainCorpus(64, 130, 7)
	cfg := DefaultConfig()
	cfg.Epochs = 40
	cfg.Seed = 11

	batch := New(130, cfg)
	batch.Fit(X, y)

	stepped := New(130, cfg)
	tr := NewTrainer(stepped)
	for i := 0; i < cfg.Epochs; i++ {
		if tr.Step(X, y) {
			break
		}
	}
	weightsEqual(t, batch, stepped, "dense steps vs Fit")

	packed := New(130, cfg)
	ptr := NewTrainer(packed)
	for i := 0; i < cfg.Epochs; i++ {
		if ptr.StepPacked(Xp, y) {
			break
		}
	}
	weightsEqual(t, batch, packed, "packed steps vs Fit")
}

// TestTrainerResumeBitIdentical interrupts training mid-run, round-trips
// the optimizer state through JSON (the checkpoint form), resumes on a
// fresh trainer, and requires the final weights to match an uninterrupted
// run exactly.
func TestTrainerResumeBitIdentical(t *testing.T) {
	X, Xp, y := trainCorpus(80, 190, 3)
	cfg := DefaultConfig()
	cfg.Epochs = 60
	cfg.Seed = 5

	straight := New(190, cfg)
	straight.FitPacked(Xp, y)

	interrupted := New(190, cfg)
	tr := NewTrainer(interrupted)
	for i := 0; i < 17; i++ {
		tr.StepPacked(Xp, y)
	}
	blob, err := json.Marshal(tr.State())
	if err != nil {
		t.Fatal(err)
	}
	var st TrainerState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	if st.Epochs != 17 {
		t.Fatalf("state epochs = %d, want 17", st.Epochs)
	}
	resumed, err := ResumeTrainer(interrupted, st)
	if err != nil {
		t.Fatal(err)
	}
	resumed.FitPacked(Xp, y, cfg.Epochs-17)
	weightsEqual(t, straight, interrupted, "resume vs straight-through")

	// The dense incremental wrapper from zero must also match.
	inc := New(190, cfg)
	if _, err := inc.FitIncremental(TrainerState{}, X, y, 0); err != nil {
		t.Fatal(err)
	}
	weightsEqual(t, straight, inc, "FitIncremental from zero vs Fit")
}

// TestTrainerGrownCorpus verifies the incremental path over a corpus that
// grows between steps: appending samples keeps training deterministic
// (same result when replayed), and resuming across the growth boundary is
// bit-identical to not stopping.
func TestTrainerGrownCorpus(t *testing.T) {
	_, Xp, y := trainCorpus(100, 150, 9)
	first, firstY := Xp[:60], y[:60]
	cfg := DefaultConfig()
	cfg.Seed = 13

	run := func(pauseAt int) *Perceptron {
		p := New(150, cfg)
		tr := NewTrainer(p)
		for i := 0; i < 10; i++ {
			if i == pauseAt {
				st := tr.State()
				var err error
				if tr, err = ResumeTrainer(p, st); err != nil {
					t.Fatal(err)
				}
			}
			if i < 4 {
				tr.StepPacked(first, firstY)
			} else {
				tr.StepPacked(Xp, y) // corpus grew 60 -> 100
			}
		}
		if got := len(tr.State().ShuffleLog); got != 2 {
			t.Fatalf("shuffle journal has %d runs, want 2 (one per corpus size)", got)
		}
		return p
	}
	weightsEqual(t, run(-1), run(4), "resume across growth boundary")
	weightsEqual(t, run(-1), run(7), "resume after growth")
}

// TestResumeTrainerRejectsCorruptJournal covers the validation path.
func TestResumeTrainerRejectsCorruptJournal(t *testing.T) {
	p := New(8, DefaultConfig())
	if _, err := ResumeTrainer(p, TrainerState{Epochs: 3, ShuffleLog: []ShuffleRun{{N: 4, Count: 2}}}); err == nil {
		t.Fatal("journal/epoch mismatch accepted")
	}
	if _, err := ResumeTrainer(p, TrainerState{Epochs: 1, ShuffleLog: []ShuffleRun{{N: -1, Count: 1}}}); err == nil {
		t.Fatal("negative shuffle size accepted")
	}
}
