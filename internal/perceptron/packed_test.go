package perceptron

import (
	"math"
	"math/rand"
	"testing"

	"perspectron/internal/encoding"
)

// randSparse builds an n×f exact-0/1 matrix (k-sparse-ish) with ±1 labels
// weakly separable so training actually updates.
func randSparse(r *rand.Rand, n, f int) (X [][]float64, y []float64) {
	X = make([][]float64, n)
	y = make([]float64, n)
	for i := range X {
		y[i] = float64(2*(i%2) - 1)
		row := make([]float64, f)
		for j := range row {
			if r.Intn(5) == 0 {
				row[j] = 1
			}
			if j%7 == 0 && y[i] > 0 && r.Intn(2) == 0 {
				row[j] = 1
			}
		}
		X[i] = row
	}
	return X, y
}

// oldFit is the pre-bugfix Fit hot loop, kept verbatim (minus telemetry):
// the margin check recomputed the full Score dot product after Raw. The
// bugfix must not change a single weight bit.
func oldFit(p *Perceptron, X [][]float64, y []float64) {
	r := rand.New(rand.NewSource(p.cfg.Seed))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	epochs := p.cfg.Epochs
	if epochs <= 0 {
		epochs = 1000
	}
	for e := 0; e < epochs; e++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		errs, updates := 0, 0
		for _, i := range idx {
			out := p.Raw(X[i])
			pred := 1.0
			if out < 0 {
				pred = -1
			}
			wrong := pred != y[i]
			if wrong {
				errs++
			}
			if wrong || (p.cfg.Margin > 0 && y[i]*oldScore(p, X[i]) < p.cfg.Margin) {
				updates++
				step := 2 * p.cfg.LearningRate * y[i]
				for j, v := range X[i] {
					if v != 0 {
						p.W[j] += step * v
					}
				}
				p.Bias += step
			}
		}
		if updates == 0 {
			break
		}
		if p.cfg.Margin == 0 && float64(errs)/float64(len(X)) < p.cfg.TargetError {
			break
		}
	}
}

// oldScore is the two-pass Score the margin check used to call.
func oldScore(p *Perceptron, x []float64) float64 {
	norm := math.Abs(p.Bias)
	for j, v := range x {
		if v != 0 {
			norm += math.Abs(p.W[j] * v)
		}
	}
	if norm == 0 {
		return 0
	}
	s := p.Raw(x) / norm
	if s > 1 {
		s = 1
	} else if s < -1 {
		s = -1
	}
	return s
}

func sameWeights(t *testing.T, label string, a, b *Perceptron) {
	t.Helper()
	if a.Bias != b.Bias {
		t.Fatalf("%s: bias %v != %v", label, a.Bias, b.Bias)
	}
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatalf("%s: W[%d] %v != %v", label, j, a.W[j], b.W[j])
		}
	}
}

// TestFitMarginReuseBitIdentical: removing the redundant Score dot product
// from the margin check must leave training bit-for-bit unchanged, with and
// without margin training, including on non-binary (scaled) inputs.
func TestFitMarginReuseBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		n, f := 60+r.Intn(100), 20+r.Intn(40)
		X, y := randSparse(r, n, f)
		if trial%3 == 2 { // scaled, non-binary inputs
			for _, row := range X {
				for j := range row {
					if row[j] != 0 {
						row[j] = 0.25 + 0.75*r.Float64()
					}
				}
			}
		}
		for _, margin := range []float64{0, 0.3} {
			cfg := DefaultConfig()
			cfg.Epochs = 50
			cfg.Margin = margin
			cfg.Seed = int64(trial)
			pNew := New(f, cfg)
			pNew.Fit(X, y)
			pOld := New(f, cfg)
			oldFit(pOld, X, y)
			sameWeights(t, "margin-reuse", pNew, pOld)
		}
	}
}

// TestFitPackedBitIdentical: training on bit-packed rows must reproduce the
// dense path's weights exactly.
func TestFitPackedBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 6; trial++ {
		n, f := 60+r.Intn(100), 20+r.Intn(80)
		X, y := randSparse(r, n, f)
		Xp := encoding.PackRows(X)
		for _, margin := range []float64{0, 0.3} {
			cfg := DefaultConfig()
			cfg.Epochs = 50
			cfg.Margin = margin
			cfg.Seed = int64(trial)
			dense := New(f, cfg)
			dense.Fit(X, y)
			packed := New(f, cfg)
			packed.FitPacked(Xp, y)
			sameWeights(t, "packed-fit", dense, packed)
		}
	}
}

// TestScorePackedBitIdentical: packed scoring (float and quantized) must
// match the dense path bit for bit on random 0/1 inputs.
func TestScorePackedBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		f := 10 + r.Intn(200)
		p := New(f, DefaultConfig())
		for j := range p.W {
			p.W[j] = r.NormFloat64()
		}
		p.Bias = r.NormFloat64()
		q := p.Quantized()
		x := make([]float64, f)
		for j := range x {
			if r.Intn(3) == 0 {
				x[j] = 1
			}
		}
		xp := encoding.Pack(x)
		if got, want := p.RawPacked(xp), p.Raw(x); got != want {
			t.Fatalf("RawPacked = %v, Raw = %v", got, want)
		}
		if got, want := p.ScorePacked(xp), p.Score(x); got != want {
			t.Fatalf("ScorePacked = %v, Score = %v", got, want)
		}
		if got, want := p.PredictPacked(xp), p.Predict(x); got != want {
			t.Fatalf("PredictPacked = %v, Predict = %v", got, want)
		}
		if got, want := q.RawPacked(xp), q.Raw(x); got != want {
			t.Fatalf("Quantized.RawPacked = %v, Raw = %v", got, want)
		}
		if got, want := q.ScorePacked(xp), q.Score(x); got != want {
			t.Fatalf("Quantized.ScorePacked = %v, Score = %v", got, want)
		}
		if got, want := q.PredictPacked(xp), q.Predict(x); got != want {
			t.Fatalf("Quantized.PredictPacked = %v, Predict = %v", got, want)
		}
	}
}

// TestQuantizedScoreSinglePass: the one-pass Quantized.Score rewrite must
// match the historical two-pass (norm loop + Raw loop) output bit for bit,
// including on fractional inputs where norm scales by v but Raw does not.
func TestQuantizedScoreSinglePass(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	for trial := 0; trial < 20; trial++ {
		f := 5 + r.Intn(100)
		p := New(f, DefaultConfig())
		for j := range p.W {
			p.W[j] = r.NormFloat64()
		}
		p.Bias = r.NormFloat64()
		q := p.Quantized()
		x := make([]float64, f)
		for j := range x {
			if r.Intn(2) == 0 {
				x[j] = r.Float64()
			}
		}
		// historical two-pass reference
		norm := math.Abs(float64(q.Bias))
		for j, v := range x {
			if v != 0 {
				norm += math.Abs(float64(q.W[j]) * v)
			}
		}
		want := 0.0
		if norm != 0 {
			want = float64(q.Raw(x)) / norm
			if want > 1 {
				want = 1
			} else if want < -1 {
				want = -1
			}
		}
		if got := q.Score(x); got != want {
			t.Fatalf("Quantized.Score = %v, two-pass reference %v", got, want)
		}
	}
}

// TestMultiClassFitPackedBitIdentical pins the packed one-vs-rest bank to
// the dense bank.
func TestMultiClassFitPackedBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	n, f := 90, 40
	X, _ := randSparse(r, n, f)
	labels := make([]string, n)
	names := []string{"benign", "spectre", "meltdown"}
	for i := range labels {
		labels[i] = names[i%len(names)]
	}
	cfg := DefaultConfig()
	cfg.Epochs = 40
	dense := NewMultiClass(names, f, cfg)
	dense.Fit(X, labels)
	packed := NewMultiClass(names, f, cfg)
	packed.FitPacked(encoding.PackRows(X), labels)
	for ci := range names {
		sameWeights(t, "multiclass "+names[ci], dense.Detectors[ci], packed.Detectors[ci])
	}
}
