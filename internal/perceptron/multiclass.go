package perceptron

import "perspectron/internal/encoding"

// MultiClass implements the paper's attack *classification* mode (§VII-B):
// a one-vs-rest bank of perceptrons, one per class, sharing the k-sparse
// feature space. The predicted class is the argmax of the normalized
// outputs. The paper reports near-perfect training-set F1 for multi-way
// classification but could not cross-validate it (too few attacks per
// category) — the evaluation harness mirrors that protocol.
type MultiClass struct {
	Classes   []string
	Detectors []*Perceptron
}

// NewMultiClass builds a bank for the given class names over n features.
func NewMultiClass(classes []string, n int, cfg Config) *MultiClass {
	m := &MultiClass{Classes: classes}
	for i := range classes {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*31
		m.Detectors = append(m.Detectors, New(n, c))
	}
	return m
}

// classIndex returns the index of name in Classes, or -1.
func (m *MultiClass) classIndex(name string) int {
	for i, c := range m.Classes {
		if c == name {
			return i
		}
	}
	return -1
}

// Fit trains every class detector one-vs-rest on (X, labels).
func (m *MultiClass) Fit(X [][]float64, labels []string) {
	y := make([]float64, len(X))
	for ci := range m.Classes {
		for i, l := range labels {
			if l == m.Classes[ci] {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		m.Detectors[ci].Fit(X, y)
	}
}

// FitPacked is Fit over bit-packed rows; each class detector trains through
// Perceptron.FitPacked, so the bank's weights are bit-identical to Fit on
// the equivalent dense 0/1 matrix.
func (m *MultiClass) FitPacked(X []encoding.BitVec, labels []string) {
	y := make([]float64, len(X))
	for ci := range m.Classes {
		for i, l := range labels {
			if l == m.Classes[ci] {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		m.Detectors[ci].FitPacked(X, y)
	}
}

// Scores returns the per-class normalized outputs.
func (m *MultiClass) Scores(x []float64) []float64 {
	out := make([]float64, len(m.Detectors))
	for i, d := range m.Detectors {
		out[i] = d.Score(x)
	}
	return out
}

// Predict returns the argmax class and its confidence.
func (m *MultiClass) Predict(x []float64) (class string, confidence float64) {
	best, bestScore := 0, m.Detectors[0].Score(x)
	for i := 1; i < len(m.Detectors); i++ {
		if s := m.Detectors[i].Score(x); s > bestScore {
			best, bestScore = i, s
		}
	}
	return m.Classes[best], bestScore
}

// Confusion accumulates a multi-way confusion matrix: rows are true
// classes, columns predicted.
type Confusion struct {
	Classes []string
	Counts  [][]int
	index   map[string]int
}

// NewConfusion returns an empty matrix over classes.
func NewConfusion(classes []string) *Confusion {
	c := &Confusion{Classes: classes, index: map[string]int{}}
	for i, name := range classes {
		c.index[name] = i
	}
	c.Counts = make([][]int, len(classes))
	for i := range c.Counts {
		c.Counts[i] = make([]int, len(classes))
	}
	return c
}

// Add records one (true, predicted) pair; unknown names are ignored.
func (c *Confusion) Add(truth, predicted string) {
	ti, ok1 := c.index[truth]
	pi, ok2 := c.index[predicted]
	if ok1 && ok2 {
		c.Counts[ti][pi]++
	}
}

// F1 returns the F1 score of one class.
func (c *Confusion) F1(class string) float64 {
	i, ok := c.index[class]
	if !ok {
		return 0
	}
	tp := c.Counts[i][i]
	var fp, fn int
	for j := range c.Classes {
		if j != i {
			fp += c.Counts[j][i]
			fn += c.Counts[i][j]
		}
	}
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}

// MacroF1 returns the unweighted mean F1 over classes that appeared.
func (c *Confusion) MacroF1() float64 {
	var sum float64
	n := 0
	for i, class := range c.Classes {
		total := 0
		for j := range c.Classes {
			total += c.Counts[i][j]
		}
		if total == 0 {
			continue
		}
		sum += c.F1(class)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Accuracy returns the trace/total ratio.
func (c *Confusion) Accuracy() float64 {
	var trace, total int
	for i := range c.Counts {
		for j := range c.Counts[i] {
			total += c.Counts[i][j]
			if i == j {
				trace += c.Counts[i][j]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(trace) / float64(total)
}
