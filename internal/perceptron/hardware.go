package perceptron

// HardwareModel estimates the cost of the PerSpectron datapath per §IV-E/F:
// binary inputs mean the dot product reduces to a sequential add/subtract of
// 8-bit weights — one input per cycle on a modest serial adder — so
// inference latency is ~NumFeatures cycles, far below the sampling interval,
// and entirely off the processor's critical paths.
type HardwareModel struct {
	NumFeatures int
	WeightBits  int
	ClockGHz    float64
	// SampleInstrs is the sampling granularity in committed instructions.
	SampleInstrs uint64
	// IPC is the sustained commit rate used to convert instructions to
	// wall-clock time.
	IPC float64
}

// DefaultHardwareModel is the paper's deployed configuration: 106 features,
// 8-bit weights, 2 GHz, 10K-instruction sampling.
func DefaultHardwareModel() HardwareModel {
	return HardwareModel{
		NumFeatures:  106,
		WeightBits:   8,
		ClockGHz:     2.0,
		SampleInstrs: 10_000,
		IPC:          1.7,
	}
}

// InferenceCycles returns the serial-adder latency: one add per input plus
// pipeline fill. The paper quotes "on the order of 100 cycles" for the
// 106-input perceptron.
func (h HardwareModel) InferenceCycles() int { return h.NumFeatures + 4 }

// InferenceTimeNs converts the inference latency to nanoseconds.
func (h HardwareModel) InferenceTimeNs() float64 {
	return float64(h.InferenceCycles()) / h.ClockGHz
}

// WeightStorageBits returns the weight-memory footprint (plus one bias).
func (h HardwareModel) WeightStorageBits() int {
	return (h.NumFeatures + 1) * h.WeightBits
}

// MaxMatrixStorageBits returns the normalization-matrix footprint for s
// execution points with 16-bit maxima.
func (h HardwareModel) MaxMatrixStorageBits(points int) int {
	return h.NumFeatures * points * 16
}

// SamplingIntervalUs returns the wall-clock sampling period. At 10K
// instructions, IPC 1.7 and 2 GHz this is ~3 µs — the figure §VI-A2 uses to
// show bandwidth evasion is infeasible (20 sampling points inside the 61 µs
// an evasive Spectre needs for its atomic tasks).
func (h HardwareModel) SamplingIntervalUs() float64 {
	cycles := float64(h.SampleInstrs) / h.IPC
	return cycles / (h.ClockGHz * 1000)
}

// SamplesWithin returns how many sampling intervals fit in the given
// wall-clock window (µs) — e.g. the 61 µs atomic-task budget of Li &
// Gaudiot's evasive Spectre.
func (h HardwareModel) SamplesWithin(windowUs float64) int {
	iv := h.SamplingIntervalUs()
	if iv <= 0 {
		return 0
	}
	return int(windowUs / iv)
}

// FitsInSamplingInterval reports whether inference completes before the next
// sample arrives — the feasibility condition for an always-on detector.
func (h HardwareModel) FitsInSamplingInterval() bool {
	return h.InferenceTimeNs() < h.SamplingIntervalUs()*1000
}
