package perceptron

import "perspectron/internal/stats"

// ReplicatedBank is the per-component replicated-detector organization of
// §IV-A: one perceptron per pipeline component over that component's
// features, combined by summing normalized outputs. A misclassification by
// one component's detector is recovered by the replicated detectors in
// other components (§VII-B). The single 106-feature PerSpectron is the
// paper's final design; the bank exists for the replication ablation.
type ReplicatedBank struct {
	Detectors []*Perceptron
	Features  [][]int // per-detector feature indices into the full vector
	Threshold float64
}

// NewReplicatedBank groups the selected feature indices by component and
// builds one perceptron per non-empty component.
func NewReplicatedBank(selected []int, comps []stats.Component, cfg Config) *ReplicatedBank {
	byComp := map[stats.Component][]int{}
	for _, j := range selected {
		byComp[comps[j]] = append(byComp[comps[j]], j)
	}
	b := &ReplicatedBank{Threshold: cfg.Threshold}
	for c := stats.Component(0); c < stats.NumComponents; c++ {
		idx := byComp[c]
		if len(idx) == 0 {
			continue
		}
		b.Detectors = append(b.Detectors, New(len(idx), cfg))
		b.Features = append(b.Features, idx)
	}
	return b
}

// Name implements the shared classifier interface.
func (b *ReplicatedBank) Name() string { return "ReplicatedBank" }

func (b *ReplicatedBank) project(x []float64, d int) []float64 {
	idx := b.Features[d]
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = x[j]
	}
	return out
}

// Fit trains every component detector on its feature slice. x rows are full
// feature vectors.
func (b *ReplicatedBank) Fit(X [][]float64, y []float64) {
	for d := range b.Detectors {
		sub := make([][]float64, len(X))
		for i, row := range X {
			sub[i] = b.project(row, d)
		}
		b.Detectors[d].Fit(sub, y)
	}
}

// Score averages the component detectors' normalized outputs.
func (b *ReplicatedBank) Score(x []float64) float64 {
	if len(b.Detectors) == 0 {
		return 0
	}
	var s float64
	for d, det := range b.Detectors {
		s += det.Score(b.project(x, d))
	}
	return s / float64(len(b.Detectors))
}

// Predict thresholds the combined score.
func (b *ReplicatedBank) Predict(x []float64) float64 {
	if b.Score(x) >= b.Threshold {
		return 1
	}
	return -1
}
