// Package perceptron implements PerSpectron's detector: a single-layer
// perceptron over k-sparse binary microarchitectural features (§II-C, §IV),
// the replicated per-component detector bank used in the ablation study, an
// 8-bit quantized variant matching the hardware datapath, and the hardware
// cost model of §IV-F (serial adder, ~1 cycle per input, negligible area).
package perceptron

import (
	"math"
	"math/bits"

	"perspectron/internal/encoding"
)

// Config holds training hyperparameters.
type Config struct {
	// Epochs is the maximum number of training passes (paper: 1000).
	Epochs int
	// LearningRate is µ in w(n+1) = w(n) + µ[d(n)-y(n)]x(n).
	LearningRate float64
	// TargetError stops training early once the epoch error rate falls
	// below it (the paper trains "until the training error falls below
	// 0.4" in FANN's MSE terms; as a misclassification rate we use 0.004).
	TargetError float64
	// Threshold is the decision cut on the normalized output (paper: 0.25
	// gave the best ROC operating point).
	Threshold float64
	// Margin also triggers weight updates on correctly classified samples
	// whose normalized confidence is below it — the θ-style threshold
	// training of perceptron branch predictors, which builds margin and
	// stabilizes the operating point across folds.
	Margin float64
	// Seed drives the per-epoch shuffle.
	Seed int64
}

// DefaultConfig returns the paper's training setup.
func DefaultConfig() Config {
	return Config{
		Epochs:       1000,
		LearningRate: 0.05,
		TargetError:  0.004,
		Threshold:    0.25,
		Margin:       0.3,
		Seed:         1,
	}
}

// Perceptron is a trained detector. The zero value is not usable; call New.
type Perceptron struct {
	W         []float64 // per-feature weights
	Bias      float64
	Threshold float64

	cfg Config
}

// New returns an untrained perceptron over n features.
func New(n int, cfg Config) *Perceptron {
	return &Perceptron{W: make([]float64, n), Threshold: cfg.Threshold, cfg: cfg}
}

// Name implements the shared classifier interface.
func (p *Perceptron) Name() string { return "PerSpectron" }

// Fit trains with the perceptron learning rule on inputs X (0/1 features)
// and targets y (±1), shuffling each epoch. When telemetry is enabled, Fit
// records per-epoch error rates, total epochs/updates, the epoch count at
// convergence and the quantized weight-saturation count. It is exactly a
// fresh Trainer run to the config's epoch budget — the incremental path in
// trainer.go replays the identical epoch loop one step at a time.
func (p *Perceptron) Fit(X [][]float64, y []float64) {
	NewTrainer(p).Fit(X, y, 0)
}

// FitPacked is Fit over bit-packed rows: the dot product, margin check and
// weight update iterate only the set words of each k-sparse vector instead
// of all f floats. For rows packed from the same 0/1 matrix it produces
// bit-identical weights to Fit — set bits are visited in the same ascending
// order, and w·1 is exactly w — which TestFitPackedBitIdentical pins.
func (p *Perceptron) FitPacked(X []encoding.BitVec, y []float64) {
	NewTrainer(p).FitPacked(X, y, 0)
}

// clampScore normalizes a raw output by the active-weight magnitude into
// [-1, 1] — the shared tail of every Score variant.
func clampScore(raw, norm float64) float64 {
	if norm == 0 {
		return 0
	}
	s := raw / norm
	if s > 1 {
		s = 1
	} else if s < -1 {
		s = -1
	}
	return s
}

// Raw returns the un-normalized dot product w·x + b — the quantity the
// hardware's serial adder accumulates.
func (p *Perceptron) Raw(x []float64) float64 {
	s := p.Bias
	for j, v := range x {
		if v != 0 {
			s += p.W[j] * v
		}
	}
	return s
}

// RawPacked is Raw over a bit-packed input: one add per set bit, visiting
// bits in ascending index order so the float accumulation matches Raw
// exactly on 0/1 input.
func (p *Perceptron) RawPacked(x encoding.BitVec) float64 {
	s := p.Bias
	for w, word := range x {
		for word != 0 {
			s += p.W[w<<6+bits.TrailingZeros64(word)]
			word &= word - 1
		}
	}
	return s
}

// rawNorm accumulates the raw output and the active-weight magnitude in a
// single pass over the input — Score used to make two.
func (p *Perceptron) rawNorm(x []float64) (raw, norm float64) {
	raw = p.Bias
	norm = math.Abs(p.Bias)
	for j, v := range x {
		if v != 0 {
			raw += p.W[j] * v
			norm += math.Abs(p.W[j] * v)
		}
	}
	return raw, norm
}

// rawNormPacked is rawNorm over a bit-packed input.
func (p *Perceptron) rawNormPacked(x encoding.BitVec) (raw, norm float64) {
	raw = p.Bias
	norm = math.Abs(p.Bias)
	for w, word := range x {
		for word != 0 {
			wj := p.W[w<<6+bits.TrailingZeros64(word)]
			raw += wj
			norm += math.Abs(wj)
			word &= word - 1
		}
	}
	return raw, norm
}

// Score returns the normalized pre-threshold output in [-1, 1]: the raw sum
// divided by the total weight magnitude of the *active* inputs, so +1 means
// every active feature voted suspicious. This is the paper's confidence
// measurement passed to the OS on detection (§IV-G1); the default decision
// threshold on it is 0.25.
func (p *Perceptron) Score(x []float64) float64 {
	return clampScore(p.rawNorm(x))
}

// ScorePacked is Score over a bit-packed input, iterating set words only.
func (p *Perceptron) ScorePacked(x encoding.BitVec) float64 {
	return clampScore(p.rawNormPacked(x))
}

// Predict returns +1 (suspicious) when the normalized output exceeds the
// configured threshold, else -1 (benign).
func (p *Perceptron) Predict(x []float64) float64 {
	if p.Score(x) >= p.Threshold {
		return 1
	}
	return -1
}

// PredictPacked thresholds the packed-input score.
func (p *Perceptron) PredictPacked(x encoding.BitVec) float64 {
	if p.ScorePacked(x) >= p.Threshold {
		return 1
	}
	return -1
}

// TopWeights returns the k most positive and k most negative weight indices
// (most suspicious / most benign features) for the interpretability analysis
// of §VII-C.
func (p *Perceptron) TopWeights(k int) (positive, negative []int) {
	type wi struct {
		j int
		w float64
	}
	all := make([]wi, len(p.W))
	for j, w := range p.W {
		all[j] = wi{j, w}
	}
	// Selection by partial sorts keeps this dependency-free.
	sortBy := func(less func(a, b wi) bool) []int {
		cp := append([]wi(nil), all...)
		for i := 0; i < k && i < len(cp); i++ {
			best := i
			for j := i + 1; j < len(cp); j++ {
				if less(cp[j], cp[best]) {
					best = j
				}
			}
			cp[i], cp[best] = cp[best], cp[i]
		}
		out := make([]int, 0, k)
		for i := 0; i < k && i < len(cp); i++ {
			out = append(out, cp[i].j)
		}
		return out
	}
	positive = sortBy(func(a, b wi) bool { return a.w > b.w })
	negative = sortBy(func(a, b wi) bool { return a.w < b.w })
	return positive, negative
}

// SaturatedWeights counts the weights that clip to ±127 in the 8-bit
// hardware datapath (Quantized) — a high count means the weight distribution
// has outgrown the fixed-point range and the quantized detector is losing
// resolution on the remaining weights.
func (p *Perceptron) SaturatedWeights() int {
	q := p.Quantized()
	n := 0
	for _, w := range q.W {
		if w == 127 || w == -127 || w == -128 {
			n++
		}
	}
	return n
}

// Quantized returns an 8-bit fixed-point copy of the detector — the form the
// hardware stores and the vendor weight patches of §IV-G1 distribute.
func (p *Perceptron) Quantized() *Quantized {
	maxAbs := math.Abs(p.Bias)
	for _, w := range p.W {
		if a := math.Abs(w); a > maxAbs {
			maxAbs = a
		}
	}
	q := &Quantized{W: make([]int8, len(p.W)), Threshold: p.Threshold}
	if maxAbs == 0 {
		return q
	}
	scale := 127 / maxAbs
	q.Scale = scale
	for j, w := range p.W {
		q.W[j] = int8(math.Round(w * scale))
	}
	q.Bias = int32(math.Round(p.Bias * scale))
	return q
}

// Quantized is the 8-bit hardware form of the detector.
type Quantized struct {
	W         []int8
	Bias      int32
	Scale     float64
	Threshold float64
}

// Raw accumulates the integer dot product exactly as the serial adder does:
// one add per set input bit.
func (q *Quantized) Raw(x []float64) int32 {
	s := q.Bias
	for j, v := range x {
		if v != 0 {
			s += int32(q.W[j])
		}
	}
	return s
}

// RawPacked is Raw over a bit-packed input: one integer add per set bit.
func (q *Quantized) RawPacked(x encoding.BitVec) int32 {
	s := q.Bias
	for w, word := range x {
		for word != 0 {
			s += int32(q.W[w<<6+bits.TrailingZeros64(word)])
			word &= word - 1
		}
	}
	return s
}

// Score normalizes the integer output into [-1, 1] over the active inputs,
// mirroring Perceptron.Score. Like its float mirror it accumulates the raw
// sum and the norm in one pass instead of re-walking the input through Raw.
func (q *Quantized) Score(x []float64) float64 {
	raw := q.Bias
	norm := math.Abs(float64(q.Bias))
	for j, v := range x {
		if v != 0 {
			raw += int32(q.W[j])
			norm += math.Abs(float64(q.W[j]) * v)
		}
	}
	return clampScore(float64(raw), norm)
}

// ScorePacked is Score over a bit-packed input, iterating set words only.
func (q *Quantized) ScorePacked(x encoding.BitVec) float64 {
	raw := q.Bias
	norm := math.Abs(float64(q.Bias))
	for w, word := range x {
		for word != 0 {
			wj := q.W[w<<6+bits.TrailingZeros64(word)]
			raw += int32(wj)
			norm += math.Abs(float64(wj))
			word &= word - 1
		}
	}
	return clampScore(float64(raw), norm)
}

// Predict thresholds the normalized integer output.
func (q *Quantized) Predict(x []float64) float64 {
	if q.Score(x) >= q.Threshold {
		return 1
	}
	return -1
}

// PredictPacked thresholds the packed-input score.
func (q *Quantized) PredictPacked(x encoding.BitVec) float64 {
	if q.ScorePacked(x) >= q.Threshold {
		return 1
	}
	return -1
}
