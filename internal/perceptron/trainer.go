package perceptron

// Incremental training: the continual-learning half of the perceptron. Fit
// and FitPacked are one-shot batch drivers; a Trainer exposes the same
// epoch loop one step at a time, so a background shadow trainer can
// interleave training with serving, stop at any epoch, serialize its
// optimizer state into a checkpoint, and resume later — on the original
// corpus or on a grown one — with results bit-identical to an uninterrupted
// run.
//
// Bit-identity is load-bearing (the promotion gate compares models trained
// on different schedules) and rests on two reconstructions:
//
//   - the shuffle RNG: math/rand sources are not serializable, so the
//     TrainerState journals the sample count of every epoch's shuffle
//     (run-length encoded — a fixed-size corpus is one entry no matter how
//     many epochs ran) and Resume replays Shuffle calls to put the stream
//     back exactly where it was;
//   - the index permutation: the epoch loop shuffles one persistent index
//     slice in place, so the permutation after N epochs depends on all N
//     shuffles. Resume performs the replayed shuffles on a real index
//     slice, growing it between runs exactly as Step does when the corpus
//     grows.
//
// TestTrainerResumeBitIdentical and the golden-corpus pin in the root
// package's equivalence_test.go hold this contract.

import (
	"fmt"
	"math/bits"
	"math/rand"

	"perspectron/internal/encoding"
	"perspectron/internal/telemetry"
)

// ShuffleRun is one run-length-encoded span of the shuffle journal: Count
// consecutive epochs shuffled N samples.
type ShuffleRun struct {
	N     int `json:"n"`
	Count int `json:"count"`
}

// TrainerState is the serializable optimizer state of an in-progress fit —
// what a checkpoint must carry for training to resume bit-identically.
type TrainerState struct {
	// Seed is the shuffle RNG's seed (the perceptron config's Seed at
	// NewTrainer time).
	Seed int64 `json:"seed"`
	// Epochs is the number of completed training epochs.
	Epochs int `json:"epochs"`
	// Updates is the cumulative weight-update count.
	Updates uint64 `json:"updates"`
	// Converged records whether the last step reported convergence (no
	// updates, or error rate under target for margin-less configs).
	Converged bool `json:"converged"`
	// ShuffleLog is the run-length-encoded journal of per-epoch shuffle
	// sizes Resume replays; len(runs) grows only when the corpus size
	// changes between epochs.
	ShuffleLog []ShuffleRun `json:"shuffle_log,omitempty"`
}

// Clone returns a deep copy, so a serialized snapshot cannot alias the
// trainer's live journal.
func (st TrainerState) Clone() TrainerState {
	out := st
	out.ShuffleLog = append([]ShuffleRun(nil), st.ShuffleLog...)
	return out
}

// Trainer drives a Perceptron's training one epoch at a time. Create with
// NewTrainer (fresh) or ResumeTrainer (from a serialized TrainerState);
// call Step/StepPacked per epoch or Fit/FitPacked for a budgeted loop. A
// Trainer is not safe for concurrent use and must not be shared with other
// writers of the same Perceptron.
type Trainer struct {
	p     *Perceptron
	rng   *rand.Rand
	idx   []int // persistent permutation, shuffled in place each epoch
	state TrainerState
}

// NewTrainer starts a fresh training run over p, seeded from p's config.
func NewTrainer(p *Perceptron) *Trainer {
	return &Trainer{
		p:     p,
		rng:   rand.New(rand.NewSource(p.cfg.Seed)),
		state: TrainerState{Seed: p.cfg.Seed},
	}
}

// ResumeTrainer reconstructs a trainer from a serialized state: the shuffle
// RNG and index permutation are replayed from the journal, so the next Step
// is bit-identical to what the next Step of the original trainer would have
// been. p must carry the weights the state was captured against (normally
// both come from the same checkpoint).
func ResumeTrainer(p *Perceptron, st TrainerState) (*Trainer, error) {
	epochs := 0
	for _, run := range st.ShuffleLog {
		if run.N < 0 || run.Count <= 0 {
			return nil, fmt.Errorf("perceptron: corrupt shuffle journal entry (n=%d count=%d)", run.N, run.Count)
		}
		epochs += run.Count
	}
	if epochs != st.Epochs {
		return nil, fmt.Errorf("perceptron: shuffle journal covers %d epochs, state says %d", epochs, st.Epochs)
	}
	t := &Trainer{p: p, rng: rand.New(rand.NewSource(st.Seed)), state: st.Clone()}
	for _, run := range st.ShuffleLog {
		t.syncIdx(run.N)
		for i := 0; i < run.Count; i++ {
			t.rng.Shuffle(len(t.idx), func(a, b int) { t.idx[a], t.idx[b] = t.idx[b], t.idx[a] })
		}
	}
	return t, nil
}

// State snapshots the optimizer state for serialization.
func (t *Trainer) State() TrainerState { return t.state.Clone() }

// Epochs returns the number of completed epochs.
func (t *Trainer) Epochs() int { return t.state.Epochs }

// Converged reports whether the last step converged.
func (t *Trainer) Converged() bool { return t.state.Converged }

// syncIdx sizes the permutation for n samples. New samples append in
// ascending order (the incremental-corpus case: training sets only grow); a
// shrink rebuilds the identity permutation, forfeiting replay continuity
// for the removed tail — callers growing a corpus never hit it.
func (t *Trainer) syncIdx(n int) {
	switch {
	case n < len(t.idx):
		t.idx = t.idx[:0]
		fallthrough
	case n > len(t.idx):
		for i := len(t.idx); i < n; i++ {
			t.idx = append(t.idx, i)
		}
	}
}

// Step runs one training epoch over the dense 0/1 matrix, reporting
// convergence. Samples may be appended to X and y between steps.
func (t *Trainer) Step(X [][]float64, y []float64) (converged bool) {
	p := t.p
	return t.step(len(X), y,
		func(i int) (raw, norm float64) { return p.rawNorm(X[i]) },
		func(i int, step float64) {
			for j, v := range X[i] {
				if v != 0 {
					p.W[j] += step * v
				}
			}
			p.Bias += step
		})
}

// StepPacked is Step over bit-packed rows, bit-identical to Step on rows
// packed from the same 0/1 matrix (the FitPacked contract).
func (t *Trainer) StepPacked(X []encoding.BitVec, y []float64) (converged bool) {
	p := t.p
	return t.step(len(X), y,
		func(i int) (raw, norm float64) { return p.rawNormPacked(X[i]) },
		func(i int, step float64) {
			p.updatePacked(X[i], step)
		})
}

// step is the single-epoch core shared by the dense and packed paths:
// shuffle the persistent permutation, sweep every sample, update on errors
// and low-margin correct predictions, journal the shuffle, and report
// convergence exactly as the batch driver always has.
func (t *Trainer) step(n int, y []float64,
	rawNorm func(i int) (raw, norm float64), update func(i int, step float64)) (converged bool) {
	p := t.p
	reg := telemetry.Get()
	t.syncIdx(n)
	t.rng.Shuffle(len(t.idx), func(a, b int) { t.idx[a], t.idx[b] = t.idx[b], t.idx[a] })
	errs, updates := 0, 0
	for _, i := range t.idx {
		out, norm := rawNorm(i)
		pred := 1.0
		if out < 0 {
			pred = -1
		}
		wrong := pred != y[i]
		if wrong {
			errs++
		}
		// Update on error, and also on low-margin correct predictions
		// (threshold training). The margin check normalizes the raw output
		// already in hand instead of recomputing the full dot product.
		if wrong || (p.cfg.Margin > 0 && y[i]*clampScore(out, norm) < p.cfg.Margin) {
			updates++
			update(i, 2*p.cfg.LearningRate*y[i])
		}
	}
	t.state.Epochs++
	t.state.Updates += uint64(updates)
	t.journalShuffle(n)
	reg.Counter("perspectron_train_epochs_total").Inc()
	reg.Counter("perspectron_train_updates_total").Add(uint64(updates))
	if reg != nil && n > 0 {
		reg.Histogram("perspectron_train_epoch_error", telemetry.RatioBuckets).
			Observe(float64(errs) / float64(n))
	}
	switch {
	case updates == 0:
		converged = true // every sample beyond margin
	case p.cfg.Margin == 0 && float64(errs)/float64(n) < p.cfg.TargetError:
		converged = true
	}
	t.state.Converged = converged
	return converged
}

// journalShuffle appends one epoch's shuffle size to the run-length log.
func (t *Trainer) journalShuffle(n int) {
	if k := len(t.state.ShuffleLog); k > 0 && t.state.ShuffleLog[k-1].N == n {
		t.state.ShuffleLog[k-1].Count++
		return
	}
	t.state.ShuffleLog = append(t.state.ShuffleLog, ShuffleRun{N: n, Count: 1})
}

// Fit runs Step until convergence or the epoch budget is spent (budget 0
// uses the config's Epochs, default 1000), reporting convergence. Calling
// it on a fresh trainer reproduces Perceptron.Fit exactly; calling it again
// after appending samples is the incremental path.
func (t *Trainer) Fit(X [][]float64, y []float64, budget int) (converged bool) {
	return t.fitLoop(budget, func() bool { return t.Step(X, y) })
}

// FitPacked is Fit over bit-packed rows.
func (t *Trainer) FitPacked(X []encoding.BitVec, y []float64, budget int) (converged bool) {
	return t.fitLoop(budget, func() bool { return t.StepPacked(X, y) })
}

// fitLoop is the budgeted epoch loop shared with the batch drivers: it also
// publishes the end-of-fit gauges the batch path always has.
func (t *Trainer) fitLoop(budget int, step func() bool) (converged bool) {
	if budget <= 0 {
		budget = t.p.cfg.Epochs
		if budget <= 0 {
			budget = 1000
		}
	}
	used := 0
	for used < budget {
		used++
		if step() {
			converged = true
			break
		}
	}
	if reg := telemetry.Get(); reg != nil {
		reg.Gauge("perspectron_train_epochs_converged").Set(float64(used))
		reg.Gauge("perspectron_train_saturated_weights").Set(float64(t.p.SaturatedWeights()))
	}
	return converged
}

// FitIncremental resumes training from a serialized optimizer state over a
// (possibly grown) dense corpus: at most budget additional epochs, stopping
// early on convergence. It returns the advanced state for the next
// checkpoint. A zero-valued state (no epochs) starts a fresh run, making
// FitIncremental-from-zero bit-identical to Fit on the same corpus.
func (p *Perceptron) FitIncremental(st TrainerState, X [][]float64, y []float64, budget int) (TrainerState, error) {
	t, err := p.resumeOrNew(st)
	if err != nil {
		return st, err
	}
	t.Fit(X, y, budget)
	return t.State(), nil
}

// FitIncrementalPacked is FitIncremental over bit-packed rows.
func (p *Perceptron) FitIncrementalPacked(st TrainerState, X []encoding.BitVec, y []float64, budget int) (TrainerState, error) {
	t, err := p.resumeOrNew(st)
	if err != nil {
		return st, err
	}
	t.FitPacked(X, y, budget)
	return t.State(), nil
}

// resumeOrNew treats a zero-epoch state as "start fresh with the state's
// seed (or the config's, when unset)".
func (p *Perceptron) resumeOrNew(st TrainerState) (*Trainer, error) {
	if st.Epochs == 0 && len(st.ShuffleLog) == 0 {
		if st.Seed != 0 {
			p.cfg.Seed = st.Seed
		}
		return NewTrainer(p), nil
	}
	return ResumeTrainer(p, st)
}

// updatePacked applies one learning step to the set bits of x.
func (p *Perceptron) updatePacked(x encoding.BitVec, step float64) {
	for w, word := range x {
		for word != 0 {
			p.W[w<<6+bits.TrailingZeros64(word)] += step
			word &= word - 1
		}
	}
	p.Bias += step
}
