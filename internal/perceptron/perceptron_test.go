package perceptron

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perspectron/internal/stats"
)

// sep builds a linearly separable binary dataset: class +1 iff feature 0 is
// set, with noisy irrelevant bits.
func sep(n, f int, r *rand.Rand) (X [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		row := make([]float64, f)
		cls := -1.0
		if r.Intn(2) == 0 {
			cls = 1
			row[0] = 1
		}
		for j := 1; j < f; j++ {
			if r.Intn(2) == 0 {
				row[j] = 1
			}
		}
		X = append(X, row)
		y = append(y, cls)
	}
	return X, y
}

func TestLearnsSeparableData(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	X, y := sep(400, 20, r)
	p := New(20, DefaultConfig())
	p.Fit(X, y)
	errs := 0
	for i, x := range X {
		pred := 1.0
		if p.Raw(x) < 0 {
			pred = -1
		}
		if pred != y[i] {
			errs++
		}
	}
	if float64(errs)/float64(len(X)) > 0.01 {
		t.Fatalf("training error %d/%d on separable data", errs, len(X))
	}
	if p.W[0] <= 0 {
		t.Fatalf("signal weight %v not positive", p.W[0])
	}
}

func TestScoreBounded(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	X, y := sep(200, 10, r)
	p := New(10, DefaultConfig())
	p.Fit(X, y)
	for _, x := range X {
		s := p.Score(x)
		if s < -1 || s > 1 {
			t.Fatalf("score %v out of range", s)
		}
	}
}

func TestPredictThreshold(t *testing.T) {
	p := New(2, DefaultConfig())
	p.W = []float64{1, -1}
	p.Threshold = 0.25
	// x = [1,0]: raw = 1, norm = 2, score = 0.5 >= 0.25 -> +1.
	if p.Predict([]float64{1, 0}) != 1 {
		t.Fatalf("strong positive not flagged")
	}
	// x = [0,1]: score = -0.5 -> -1.
	if p.Predict([]float64{0, 1}) != -1 {
		t.Fatalf("negative flagged")
	}
	// x = [1,1]: raw = 0, score 0 < 0.25 -> -1.
	if p.Predict([]float64{1, 1}) != -1 {
		t.Fatalf("neutral flagged at threshold 0.25")
	}
}

func TestZeroWeightScore(t *testing.T) {
	p := New(4, DefaultConfig())
	if s := p.Score([]float64{1, 1, 1, 1}); s != 0 {
		t.Fatalf("untrained score = %v", s)
	}
}

func TestTopWeights(t *testing.T) {
	p := New(5, DefaultConfig())
	p.W = []float64{0.1, -3, 2, 0, 5}
	pos, neg := p.TopWeights(2)
	if pos[0] != 4 || pos[1] != 2 {
		t.Fatalf("top positive = %v", pos)
	}
	if neg[0] != 1 {
		t.Fatalf("top negative = %v", neg)
	}
}

func TestQuantizedAgreesWithFloat(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	X, y := sep(300, 16, r)
	p := New(16, DefaultConfig())
	p.Fit(X, y)
	q := p.Quantized()
	agree := 0
	for _, x := range X {
		if p.Predict(x) == q.Predict(x) {
			agree++
		}
	}
	if float64(agree)/float64(len(X)) < 0.97 {
		t.Fatalf("quantized agreement %d/%d too low", agree, len(X))
	}
}

func TestQuantizedWeightRange(t *testing.T) {
	p := New(3, DefaultConfig())
	p.W = []float64{1000, -1000, 1}
	q := p.Quantized()
	if q.W[0] != 127 || q.W[1] != -127 {
		t.Fatalf("quantized extremes: %v", q.W)
	}
}

func TestQuantizedZero(t *testing.T) {
	p := New(3, DefaultConfig())
	q := p.Quantized()
	if q.Score([]float64{1, 1, 1}) != 0 {
		t.Fatalf("zero perceptron quantized score nonzero")
	}
}

func TestReplicatedBankLearns(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	// Feature 0 (fetch) and feature 3 (commit) both carry the signal.
	comps := []stats.Component{stats.CompFetch, stats.CompFetch,
		stats.CompCommit, stats.CompCommit}
	var X [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		cls := -1.0
		sig := 0.0
		if r.Intn(2) == 0 {
			cls, sig = 1, 1
		}
		noise := float64(r.Intn(2))
		X = append(X, []float64{sig, noise, noise, sig})
		y = append(y, cls)
	}
	b := NewReplicatedBank([]int{0, 1, 2, 3}, comps, DefaultConfig())
	if len(b.Detectors) != 2 {
		t.Fatalf("detectors = %d, want 2", len(b.Detectors))
	}
	b.Fit(X, y)
	errs := 0
	for i, x := range X {
		pred := -1.0
		if b.Score(x) >= 0 {
			pred = 1
		}
		if pred != y[i] {
			errs++
		}
	}
	if float64(errs)/float64(len(X)) > 0.02 {
		t.Fatalf("bank training error %d/%d", errs, len(X))
	}
}

func TestReplicatedBankRecoversFromOneComponent(t *testing.T) {
	// One component's detector is deliberately wrong; the other recovers
	// the decision (the paper's recovery argument in §VII-B).
	comps := []stats.Component{stats.CompFetch, stats.CompCommit, stats.CompIQ}
	b := NewReplicatedBank([]int{0, 1, 2}, comps, DefaultConfig())
	b.Detectors[0].W = []float64{-1} // wrong polarity
	b.Detectors[1].W = []float64{3}  // right
	b.Detectors[2].W = []float64{2}  // right
	if b.Score([]float64{1, 1, 1}) <= 0 {
		t.Fatalf("bank did not recover from one bad component")
	}
}

func TestHardwareModel(t *testing.T) {
	h := DefaultHardwareModel()
	if c := h.InferenceCycles(); c < 106 || c > 150 {
		t.Fatalf("inference cycles = %d, want ~110 (paper: order of 100)", c)
	}
	us := h.SamplingIntervalUs()
	if us < 2 || us > 4 {
		t.Fatalf("sampling interval = %v µs, paper reports ~3 µs", us)
	}
	// Paper: 20 sampling intervals within the 61 µs atomic-task window.
	if n := h.SamplesWithin(61); n < 15 || n > 25 {
		t.Fatalf("samples within 61 µs = %d, want ~20", n)
	}
	if !h.FitsInSamplingInterval() {
		t.Fatalf("inference slower than sampling interval")
	}
	if h.WeightStorageBits() != 107*8 {
		t.Fatalf("weight storage = %d bits", h.WeightStorageBits())
	}
	if h.MaxMatrixStorageBits(20) != 106*20*16 {
		t.Fatalf("matrix storage = %d bits", h.MaxMatrixStorageBits(20))
	}
}

// Property: training never produces NaN weights and Score stays bounded for
// arbitrary binary data.
func TestQuickTrainingStable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(50)
		fdim := 2 + r.Intn(20)
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			row := make([]float64, fdim)
			for j := range row {
				row[j] = float64(r.Intn(2))
			}
			X[i] = row
			y[i] = float64(2*r.Intn(2) - 1)
		}
		cfg := DefaultConfig()
		cfg.Epochs = 50
		p := New(fdim, cfg)
		p.Fit(X, y)
		for _, w := range p.W {
			if w != w { // NaN
				return false
			}
		}
		for _, x := range X {
			s := p.Score(x)
			if s < -1 || s > 1 || s != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}
