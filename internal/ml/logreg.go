package ml

import "math"

// LogReg is L2-regularized logistic regression trained by batch gradient
// descent (the Logistic Regression baseline of Table IV).
type LogReg struct {
	Epochs       int
	LearningRate float64
	L2           float64

	w    []float64
	bias float64
}

// NewLogReg returns the comparison's defaults.
func NewLogReg() *LogReg {
	return &LogReg{Epochs: 300, LearningRate: 0.5, L2: 1e-4}
}

// Name implements Classifier.
func (l *LogReg) Name() string { return "LogisticRegression" }

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit trains on ±1 labels (internally mapped to 0/1).
func (l *LogReg) Fit(X [][]float64, y []float64) {
	if len(X) == 0 {
		return
	}
	f := len(X[0])
	l.w = make([]float64, f)
	l.bias = 0
	n := float64(len(X))
	grad := make([]float64, f)
	for e := 0; e < l.Epochs; e++ {
		for j := range grad {
			grad[j] = 0
		}
		var gb float64
		for i, row := range X {
			t := 0.0
			if y[i] > 0 {
				t = 1
			}
			p := sigmoid(l.raw(row))
			d := p - t
			for j, v := range row {
				if v != 0 {
					grad[j] += d * v
				}
			}
			gb += d
		}
		for j := range l.w {
			l.w[j] -= l.LearningRate * (grad[j]/n + l.L2*l.w[j])
		}
		l.bias -= l.LearningRate * gb / n
	}
}

func (l *LogReg) raw(x []float64) float64 {
	s := l.bias
	for j, v := range x {
		if v != 0 {
			s += l.w[j] * v
		}
	}
	return s
}

// Score implements Classifier: the log-odds (positive = malicious).
func (l *LogReg) Score(x []float64) float64 {
	if l.w == nil {
		return 0
	}
	return l.raw(x)
}
