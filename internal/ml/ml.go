// Package ml implements the baseline classifiers PerSpectron is compared
// against in Table IV — a CART decision tree, logistic regression,
// K-nearest-neighbours, and a single-hidden-layer neural network trained by
// backpropagation — behind a common Classifier interface. All are stdlib-
// only reimplementations of the scikit-learn models the paper used.
package ml

// Classifier is the shared train/score contract. Score returns a decision
// value: positive means malicious; magnitude is confidence. The evaluation
// harness sweeps thresholds over Score for ROC construction.
type Classifier interface {
	Name() string
	Fit(X [][]float64, y []float64)
	Score(x []float64) float64
}

// Predict converts a classifier's score into a ±1 label at threshold 0.
func Predict(c Classifier, x []float64) float64 {
	if c.Score(x) >= 0 {
		return 1
	}
	return -1
}
