package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestCARTMinLeafStopsSplitting(t *testing.T) {
	c := NewCART()
	c.MinLeafSize = 100
	X := [][]float64{{0}, {1}, {0}, {1}}
	y := []float64{-1, 1, -1, 1}
	c.Fit(X, y)
	if c.Depth() != 0 {
		t.Fatalf("tree split below MinLeafSize (depth %d)", c.Depth())
	}
}

func TestCARTSingleClassLeaf(t *testing.T) {
	c := NewCART()
	X := [][]float64{{0.1}, {0.2}, {0.3}}
	y := []float64{1, 1, 1}
	c.Fit(X, y)
	if Predict(c, []float64{0.5}) != 1 {
		t.Fatalf("pure-class tree mispredicts")
	}
}

func TestCARTScoreIsLeafPurity(t *testing.T) {
	c := NewCART()
	c.MinLeafSize = 1
	X := [][]float64{{0}, {0.1}, {0.9}, {1}}
	y := []float64{-1, -1, 1, 1}
	c.Fit(X, y)
	if s := c.Score([]float64{0}); s != -1 {
		t.Fatalf("pure negative leaf score = %v", s)
	}
	if s := c.Score([]float64{1}); s != 1 {
		t.Fatalf("pure positive leaf score = %v", s)
	}
}

func TestLogRegL2ShrinksWeights(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	X, y := linear(400, r)
	small := NewLogReg()
	small.L2 = 0
	small.Fit(X, y)
	big := NewLogReg()
	big.L2 = 1.0
	big.Fit(X, y)
	normOf := func(l *LogReg) float64 {
		var n float64
		for _, w := range l.w {
			n += w * w
		}
		return math.Sqrt(n)
	}
	if normOf(big) >= normOf(small) {
		t.Fatalf("regularization did not shrink weights: %v vs %v",
			normOf(big), normOf(small))
	}
}

func TestKNNKLargerThanTrainingSet(t *testing.T) {
	k := NewKNN()
	k.K = 100
	k.Fit([][]float64{{0}, {1}}, []float64{-1, 1})
	// Mean of the two labels is 0; Predict rounds to +1 at >= 0.
	if got := k.Score([]float64{0.5}); got != 0 {
		t.Fatalf("score with K > n = %v", got)
	}
}

func TestKNNZeroKDefaults(t *testing.T) {
	k := NewKNN()
	k.K = 0
	k.Fit([][]float64{{0}, {0.1}, {1}}, []float64{-1, -1, 1})
	if Predict(k, []float64{0.05}) != -1 {
		t.Fatalf("zero K did not default sanely")
	}
}

func TestMLPHiddenSizeAffectsCapacity(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	X, y := xor(400, r)
	tiny := NewMLP()
	tiny.Hidden = 1 // too small for XOR
	tiny.Fit(X, y)
	full := NewMLP()
	full.Fit(X, y)
	if accuracy(full, X, y) <= accuracy(tiny, X, y)-0.05 {
		t.Fatalf("larger hidden layer did not help: %v vs %v",
			accuracy(full, X, y), accuracy(tiny, X, y))
	}
}

func TestClassifierNames(t *testing.T) {
	wants := map[string]Classifier{
		"DT-CART":            NewCART(),
		"LogisticRegression": NewLogReg(),
		"KNN":                NewKNN(),
		"NeuralNetwork":      NewMLP(),
	}
	for want, c := range wants {
		if c.Name() != want {
			t.Fatalf("name %q != %q", c.Name(), want)
		}
	}
}

func TestEmptyFit(t *testing.T) {
	for _, c := range classifiers() {
		c.Fit(nil, nil) // must not panic
		if s := c.Score([]float64{1}); s != 0 {
			t.Fatalf("%s scores %v after empty fit", c.Name(), s)
		}
	}
}
