package ml

import "sort"

// CART is a binary decision tree grown with the Gini impurity criterion
// (the DT-CART baseline of Table IV).
type CART struct {
	MaxDepth    int
	MinLeafSize int

	root *cartNode
}

// NewCART returns a tree with the comparison's defaults.
func NewCART() *CART { return &CART{MaxDepth: 12, MinLeafSize: 4} }

// Name implements Classifier.
func (c *CART) Name() string { return "DT-CART" }

type cartNode struct {
	feature   int
	threshold float64
	left      *cartNode
	right     *cartNode
	leaf      bool
	value     float64 // mean label in the leaf, in [-1, 1]
}

// Fit grows the tree.
func (c *CART) Fit(X [][]float64, y []float64) {
	if len(X) == 0 {
		return
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	c.root = c.grow(X, y, idx, 0)
}

func gini(pos, n float64) float64 {
	if n == 0 {
		return 0
	}
	p := pos / n
	return 2 * p * (1 - p)
}

func (c *CART) grow(X [][]float64, y []float64, idx []int, depth int) *cartNode {
	var pos float64
	for _, i := range idx {
		if y[i] > 0 {
			pos++
		}
	}
	n := float64(len(idx))
	mean := 2*pos/n - 1
	if depth >= c.MaxDepth || len(idx) <= c.MinLeafSize || pos == 0 || pos == n {
		return &cartNode{leaf: true, value: mean}
	}

	bestFeat, bestThr, bestScore := -1, 0.0, gini(pos, n)
	f := len(X[idx[0]])
	vals := make([]float64, 0, len(idx))
	for j := 0; j < f; j++ {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][j])
		}
		sort.Float64s(vals)
		// Candidate thresholds at quantiles keep this O(f·k·n).
		for _, q := range []float64{0.25, 0.5, 0.75} {
			thr := vals[int(q*float64(len(vals)-1))]
			var lPos, lN, rPos, rN float64
			for _, i := range idx {
				if X[i][j] <= thr {
					lN++
					if y[i] > 0 {
						lPos++
					}
				} else {
					rN++
					if y[i] > 0 {
						rPos++
					}
				}
			}
			if lN == 0 || rN == 0 {
				continue
			}
			score := (lN*gini(lPos, lN) + rN*gini(rPos, rN)) / n
			if score < bestScore-1e-12 {
				bestScore, bestFeat, bestThr = score, j, thr
			}
		}
	}
	if bestFeat < 0 {
		return &cartNode{leaf: true, value: mean}
	}

	var left, right []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &cartNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      c.grow(X, y, left, depth+1),
		right:     c.grow(X, y, right, depth+1),
	}
}

// Score implements Classifier: the mean label of the reached leaf.
func (c *CART) Score(x []float64) float64 {
	n := c.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the grown tree's depth (for tests).
func (c *CART) Depth() int {
	var d func(*cartNode) int
	d = func(n *cartNode) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := d(n.left), d(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return d(c.root)
}
