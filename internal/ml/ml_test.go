package ml

import (
	"math"
	"math/rand"
	"testing"
)

// linear builds a noisy linearly separable dataset: class = sign(x0 - x1).
func linear(n int, r *rand.Rand) (X [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		a, b := r.Float64(), r.Float64()
		if math.Abs(a-b) < 0.1 {
			continue // margin
		}
		X = append(X, []float64{a, b, r.Float64()})
		if a > b {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	return X, y
}

// xor builds the canonical non-linearly-separable dataset.
func xor(n int, r *rand.Rand) (X [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		a, b := float64(r.Intn(2)), float64(r.Intn(2))
		X = append(X, []float64{a, b})
		if a != b {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	return X, y
}

func accuracy(c Classifier, X [][]float64, y []float64) float64 {
	ok := 0
	for i, x := range X {
		if Predict(c, x) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}

func classifiers() []Classifier {
	return []Classifier{NewCART(), NewLogReg(), NewKNN(), NewMLP()}
}

func TestAllLearnLinear(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	X, y := linear(600, r)
	train, trainY := X[:400], y[:400]
	test, testY := X[400:], y[400:]
	for _, c := range classifiers() {
		c.Fit(train, trainY)
		if acc := accuracy(c, test, testY); acc < 0.9 {
			t.Errorf("%s linear accuracy = %.3f", c.Name(), acc)
		}
	}
}

func TestTreeAndMLPLearnXOR(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	X, y := xor(400, r)
	for _, c := range []Classifier{NewCART(), NewMLP(), NewKNN()} {
		c.Fit(X, y)
		if acc := accuracy(c, X, y); acc < 0.95 {
			t.Errorf("%s XOR accuracy = %.3f", c.Name(), acc)
		}
	}
}

func TestLogRegCannotLearnXOR(t *testing.T) {
	// Sanity: a linear model stays near chance on XOR — this is exactly
	// why the paper's k-sparse mapping matters for the perceptron.
	r := rand.New(rand.NewSource(3))
	X, y := xor(400, r)
	lr := NewLogReg()
	lr.Fit(X, y)
	// A linear separator can classify at most 3 of the 4 XOR corners.
	if acc := accuracy(lr, X, y); acc > 0.85 {
		t.Fatalf("logistic regression implausibly solved XOR: %.3f", acc)
	}
}

func TestCARTDepthBounded(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	X, y := linear(500, r)
	c := NewCART()
	c.MaxDepth = 3
	c.Fit(X, y)
	if d := c.Depth(); d > 3 {
		t.Fatalf("tree depth %d exceeds max 3", d)
	}
}

func TestCARTPureLeafStopsEarly(t *testing.T) {
	X := [][]float64{{0}, {0.1}, {0.2}, {0.9}, {1.0}, {0.95}}
	y := []float64{-1, -1, -1, 1, 1, 1}
	c := NewCART()
	c.MinLeafSize = 1
	c.Fit(X, y)
	if acc := accuracy(c, X, y); acc != 1 {
		t.Fatalf("accuracy on trivially separable data = %v", acc)
	}
}

func TestKNNExactNeighbours(t *testing.T) {
	k := NewKNN()
	k.K = 1
	k.Fit([][]float64{{0, 0}, {1, 1}}, []float64{-1, 1})
	if Predict(k, []float64{0.1, 0.1}) != -1 {
		t.Fatalf("1-NN picked the wrong neighbour")
	}
	if Predict(k, []float64{0.9, 0.9}) != 1 {
		t.Fatalf("1-NN picked the wrong neighbour")
	}
}

func TestScoresBeforeFit(t *testing.T) {
	for _, c := range classifiers() {
		if s := c.Score([]float64{1, 2, 3}); s != 0 {
			t.Errorf("%s unfitted score = %v", c.Name(), s)
		}
	}
}

func TestMLPDeterministicWithSeed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	X, y := linear(200, r)
	a, b := NewMLP(), NewMLP()
	a.Fit(X, y)
	b.Fit(X, y)
	for i, x := range X {
		if a.Score(x) != b.Score(x) {
			t.Fatalf("MLP nondeterministic at sample %d", i)
		}
	}
}

func TestPredictSign(t *testing.T) {
	lr := NewLogReg()
	lr.w = []float64{1}
	if Predict(lr, []float64{1}) != 1 || Predict(lr, []float64{-1}) != -1 {
		t.Fatalf("Predict sign wrong")
	}
}
