package ml

import (
	"container/heap"
	"math"
)

// KNN is a K-nearest-neighbours classifier over Euclidean distance (the
// paper's best baseline accuracy used k = 3). It memorizes the training
// set, which is why Table IV scores its hardware complexity "high".
type KNN struct {
	K int

	X [][]float64
	y []float64
}

// NewKNN returns the paper's configuration (k = 3).
func NewKNN() *KNN { return &KNN{K: 3} }

// Name implements Classifier.
func (k *KNN) Name() string { return "KNN" }

// Fit memorizes the training set.
func (k *KNN) Fit(X [][]float64, y []float64) {
	k.X = X
	k.y = y
}

// neighborHeap is a max-heap of (distance, label) keeping the K closest.
type neighbor struct {
	dist  float64
	label float64
}

type neighborHeap []neighbor

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist } // max-heap
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Score implements Classifier: the mean label of the K nearest training
// samples.
func (k *KNN) Score(x []float64) float64 {
	if len(k.X) == 0 {
		return 0
	}
	kk := k.K
	if kk <= 0 {
		kk = 3
	}
	h := make(neighborHeap, 0, kk+1)
	for i, row := range k.X {
		var d float64
		for j := range row {
			diff := row[j] - x[j]
			d += diff * diff
			if len(h) == kk && d > h[0].dist {
				break // early exit: already farther than the worst kept
			}
		}
		if len(h) < kk {
			heap.Push(&h, neighbor{d, k.y[i]})
		} else if d < h[0].dist {
			heap.Pop(&h)
			heap.Push(&h, neighbor{d, k.y[i]})
		}
	}
	var s float64
	for _, nb := range h {
		s += nb.label
	}
	return s / math.Max(1, float64(len(h)))
}
