package ml

import (
	"math"
	"math/rand"
)

// MLP is a single-hidden-layer neural network trained by backpropagation
// with tanh activations (the NN baseline of Table IV). Table IV scores its
// hardware complexity "high": unlike the perceptron it needs multipliers
// and activation tables.
type MLP struct {
	Hidden       int
	Epochs       int
	LearningRate float64
	Seed         int64

	w1 [][]float64 // [hidden][features]
	b1 []float64
	w2 []float64 // [hidden]
	b2 float64
}

// NewMLP returns the comparison's defaults.
func NewMLP() *MLP {
	return &MLP{Hidden: 16, Epochs: 150, LearningRate: 0.05, Seed: 1}
}

// Name implements Classifier.
func (m *MLP) Name() string { return "NeuralNetwork" }

// Fit trains on ±1 labels.
func (m *MLP) Fit(X [][]float64, y []float64) {
	if len(X) == 0 {
		return
	}
	r := rand.New(rand.NewSource(m.Seed))
	f := len(X[0])
	m.w1 = make([][]float64, m.Hidden)
	m.b1 = make([]float64, m.Hidden)
	m.w2 = make([]float64, m.Hidden)
	scale := 1 / math.Sqrt(float64(f))
	for h := range m.w1 {
		m.w1[h] = make([]float64, f)
		for j := range m.w1[h] {
			m.w1[h][j] = (r.Float64()*2 - 1) * scale
		}
		m.w2[h] = (r.Float64()*2 - 1) * 0.5
	}

	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	hid := make([]float64, m.Hidden)
	for e := 0; e < m.Epochs; e++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			x := X[i]
			// Forward.
			for h := range hid {
				s := m.b1[h]
				row := m.w1[h]
				for j, v := range x {
					if v != 0 {
						s += row[j] * v
					}
				}
				hid[h] = math.Tanh(s)
			}
			out := m.b2
			for h, v := range hid {
				out += m.w2[h] * v
			}
			out = math.Tanh(out)

			// Backward (squared error against ±1 target).
			dOut := (out - y[i]) * (1 - out*out)
			for h := range hid {
				dHid := dOut * m.w2[h] * (1 - hid[h]*hid[h])
				m.w2[h] -= m.LearningRate * dOut * hid[h]
				row := m.w1[h]
				for j, v := range x {
					if v != 0 {
						row[j] -= m.LearningRate * dHid * v
					}
				}
				m.b1[h] -= m.LearningRate * dHid
			}
			m.b2 -= m.LearningRate * dOut
		}
	}
}

// Score implements Classifier.
func (m *MLP) Score(x []float64) float64 {
	if m.w1 == nil {
		return 0
	}
	out := m.b2
	for h := range m.w1 {
		s := m.b1[h]
		row := m.w1[h]
		for j, v := range x {
			if v != 0 {
				s += row[j] * v
			}
		}
		out += m.w2[h] * math.Tanh(s)
	}
	return math.Tanh(out)
}
