package pipeline

import (
	"perspectron/internal/isa"
	"perspectron/internal/stats"
)

// FetchCounters are the fetch-stage statistics. The paper's §VII-C calls out
// PendingQuiesceStallCycles, IcacheSquashes, MiscStallCycles and
// PendingTrapStallCycles as mutually decorrelated fetch features that
// correlate with stalls and traps in other components.
type FetchCounters struct {
	Insts                     *stats.Counter
	Branches                  *stats.Counter
	PredictedBranches         *stats.Counter
	Cycles                    *stats.Counter
	SquashCycles              *stats.Counter
	IcacheStallCycles         *stats.Counter
	IcacheSquashes            *stats.Counter
	ItlbStallCycles           *stats.Counter
	PendingQuiesceStallCycles *stats.Counter
	PendingTrapStallCycles    *stats.Counter
	PendingDrainCycles        *stats.Counter
	MiscStallCycles           *stats.Counter
	BlockedCycles             *stats.Counter
	IdleCycles                *stats.Counter
	RunCycles                 *stats.Counter
	CacheLines                *stats.Counter
	NoActiveThreadCycles      *stats.Counter
	DynamicEnergy             *stats.Counter
	StaticEnergy              *stats.Counter
	RateDist                  []*stats.Counter // fetched-per-cycle histogram 0..8
}

// DecodeCounters are the decode-stage statistics.
type DecodeCounters struct {
	DecodedInsts   *stats.Counter
	RunCycles      *stats.Counter
	IdleCycles     *stats.Counter
	BlockedCycles  *stats.Counter
	UnblockCycles  *stats.Counter
	SquashCycles   *stats.Counter
	BranchResolved *stats.Counter
	BranchMispred  *stats.Counter
	ControlMispred *stats.Counter
	DecodedOps     *stats.Counter
	DynamicEnergy  *stats.Counter
	StaticEnergy   *stats.Counter
	RateDist       []*stats.Counter
}

// RenameCounters are the rename-stage statistics; CommittedMaps and
// UndoneMaps are highlighted as invariant attack features in §VII-C.
type RenameCounters struct {
	RenamedInsts         *stats.Counter
	RenameLookups        *stats.Counter
	RenamedOperands      *stats.Counter
	IntLookups           *stats.Counter
	FpLookups            *stats.Counter
	ROBFullEvents        *stats.Counter
	IQFullEvents         *stats.Counter
	LQFullEvents         *stats.Counter
	SQFullEvents         *stats.Counter
	FullRegisterEvents   *stats.Counter
	UndoneMaps           *stats.Counter
	CommittedMaps        *stats.Counter
	SerializingInsts     *stats.Counter
	TempSerializingInsts *stats.Counter
	SerializeStallCycles *stats.Counter
	SquashCycles         *stats.Counter
	RunCycles            *stats.Counter
	IdleCycles           *stats.Counter
	BlockCycles          *stats.Counter
	UnblockCycles        *stats.Counter
	DynamicEnergy        *stats.Counter
	StaticEnergy         *stats.Counter
	RateDist             []*stats.Counter
}

// IQCounters are the instruction-queue statistics, including the per-class
// fu_full and issued distributions.
type IQCounters struct {
	InstsAdded               *stats.Counter
	NonSpecInstsAdded        *stats.Counter
	InstsIssued              *stats.Counter
	SquashedInstsIssued      *stats.Counter
	SquashedInstsExamined    *stats.Counter
	SquashedOperandsExamined *stats.Counter
	SquashedNonSpecRemoved   *stats.Counter
	FullEvents               *stats.Counter
	RateDist                 []*stats.Counter
	FuFull                   [isa.NumOpClasses]*stats.Counter
	IssuedClass              [isa.NumOpClasses]*stats.Counter
	FuBusyCycles             [isa.NumOpClasses]*stats.Counter
	OccDist                  []*stats.Counter // occupancy histogram
	DynamicEnergy            *stats.Counter
	StaticEnergy             *stats.Counter
}

// IEWCounters are issue/execute/writeback statistics.
type IEWCounters struct {
	ExecutedInsts              *stats.Counter
	ExecLoadInsts              *stats.Counter
	ExecStoreInsts             *stats.Counter
	ExecBranches               *stats.Counter
	ExecSquashedInsts          *stats.Counter
	DispSquashedInsts          *stats.Counter
	DispLoadInsts              *stats.Counter
	DispStoreInsts             *stats.Counter
	DispNonSpecInsts           *stats.Counter
	MemOrderViolationEvents    *stats.Counter
	PredictedTakenIncorrect    *stats.Counter
	PredictedNotTakenIncorrect *stats.Counter
	BranchMispredicts          *stats.Counter
	SquashCycles               *stats.Counter
	BlockCycles                *stats.Counter
	UnblockCycles              *stats.Counter
	LSQFullEvents              *stats.Counter
	FenceStallCycles           *stats.Counter // context-sensitive fencing overhead
	BlockedSpecLoads           *stats.Counter // speculative loads suppressed by fencing
	DynamicEnergy              *stats.Counter
	StaticEnergy               *stats.Counter
}

// LSQCounters are load/store-queue statistics. The paper references
// lsq.thread0.* names, preserved here.
type LSQCounters struct {
	SquashedLoads     *stats.Counter
	SquashedStores    *stats.Counter
	ForwLoads         *stats.Counter
	IgnoredResponses  *stats.Counter
	RescheduledLoads  *stats.Counter
	BlockedLoads      *stats.Counter
	MemOrderViolation *stats.Counter
	CacheBlocked      *stats.Counter
	LQOccDist         []*stats.Counter
	SQOccDist         []*stats.Counter
}

// MemDepCounters are memory-dependence-predictor statistics.
type MemDepCounters struct {
	ConflictingLoads  *stats.Counter
	ConflictingStores *stats.Counter
	InsertedLoads     *stats.Counter
	InsertedStores    *stats.Counter
	DepsPredicted     *stats.Counter
	DepsIncorrect     *stats.Counter
}

// CommitCounters are commit-stage statistics, including the committed
// op-class distribution that MAP-style malware detectors rely on.
type CommitCounters struct {
	CommittedInsts    *stats.Counter
	CommittedOps      *stats.Counter
	SquashedInsts     *stats.Counter
	NonSpecStalls     *stats.Counter
	BranchMispredicts *stats.Counter
	Branches          *stats.Counter
	Loads             *stats.Counter
	Stores            *stats.Counter
	Membars           *stats.Counter
	Traps             *stats.Counter
	CommitEligible    *stats.Counter
	ROBHeadStalls     *stats.Counter
	OpClass           [isa.NumOpClasses]*stats.Counter
	RateDist          []*stats.Counter
	DynamicEnergy     *stats.Counter
	StaticEnergy      *stats.Counter
}

// ROBCounters are reorder-buffer statistics.
type ROBCounters struct {
	Reads      *stats.Counter
	Writes     *stats.Counter
	FullEvents *stats.Counter
	OccDist    []*stats.Counter
}

// Counters aggregates every pipeline-stage counter family.
type Counters struct {
	Fetch  FetchCounters
	Decode DecodeCounters
	Rename RenameCounters
	IQ     IQCounters
	IEW    IEWCounters
	LSQ    LSQCounters
	MemDep MemDepCounters
	Commit CommitCounters
	ROB    ROBCounters
}

func histogram(reg *stats.Registry, comp stats.Component, prefix string, n int) []*stats.Counter {
	out := make([]*stats.Counter, n)
	for i := range out {
		out[i] = reg.NewRaw(comp, prefix+"::"+itoa(i), prefix+" bucket")
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// NewCounters registers every pipeline-stage counter in reg for a core of
// the given dispatch width.
func NewCounters(reg *stats.Registry, width int) Counters {
	var c Counters

	fc := &c.Fetch
	f := func(name, desc string) *stats.Counter { return reg.New(stats.CompFetch, name, desc) }
	fc.Insts = f("Insts", "instructions fetched")
	fc.Branches = f("Branches", "control instructions fetched")
	fc.PredictedBranches = f("predictedBranches", "branches predicted at fetch")
	fc.Cycles = f("Cycles", "cycles fetch was active")
	fc.SquashCycles = f("SquashCycles", "cycles fetch spent squashing")
	fc.IcacheStallCycles = f("IcacheStallCycles", "cycles stalled on icache misses")
	fc.IcacheSquashes = f("IcacheSquashes", "outstanding icache fetches squashed")
	fc.ItlbStallCycles = f("ItlbStallCycles", "cycles stalled on ITLB walks")
	fc.PendingQuiesceStallCycles = f("PendingQuiesceStallCycles", "cycles stalled on quiesce/pause")
	fc.PendingTrapStallCycles = f("PendingTrapStallCycles", "cycles stalled on pending traps")
	fc.PendingDrainCycles = f("PendingDrainCycles", "cycles stalled on pipeline drains")
	fc.MiscStallCycles = f("MiscStallCycles", "cycles stalled for back-pressure from later stages")
	fc.BlockedCycles = f("BlockedCycles", "cycles blocked by downstream full buffers")
	fc.IdleCycles = f("IdleCycles", "cycles with nothing to fetch")
	fc.RunCycles = f("RunCycles", "cycles fetch delivered instructions")
	fc.CacheLines = f("CacheLines", "cache lines fetched")
	fc.NoActiveThreadCycles = f("NoActiveThreadStallCycles", "cycles without an active thread")
	fc.DynamicEnergy = f("dynamicEnergy", "fetch dynamic energy")
	fc.StaticEnergy = f("staticEnergy", "fetch static energy")
	fc.RateDist = histogram(reg, stats.CompFetch, "fetch.rateDist", width+1)

	dc := &c.Decode
	d := func(name, desc string) *stats.Counter { return reg.New(stats.CompDecode, name, desc) }
	dc.DecodedInsts = d("DecodedInsts", "instructions decoded")
	dc.RunCycles = d("RunCycles", "cycles decode delivered instructions")
	dc.IdleCycles = d("IdleCycles", "cycles decode was idle")
	dc.BlockedCycles = d("BlockedCycles", "cycles decode was blocked")
	dc.UnblockCycles = d("UnblockCycles", "cycles decode was unblocking")
	dc.SquashCycles = d("SquashCycles", "cycles decode spent squashing")
	dc.BranchResolved = d("BranchResolved", "branches resolved at decode")
	dc.BranchMispred = d("BranchMispred", "branch mispredicts detected at decode")
	dc.ControlMispred = d("ControlMispred", "control mispredicts detected at decode")
	dc.DecodedOps = d("DecodedOps", "micro-ops produced by decode")
	dc.DynamicEnergy = d("dynamicEnergy", "decode dynamic energy")
	dc.StaticEnergy = d("staticEnergy", "decode static energy")
	dc.RateDist = histogram(reg, stats.CompDecode, "decode.rateDist", width+1)

	rc := &c.Rename
	r := func(name, desc string) *stats.Counter { return reg.New(stats.CompRename, name, desc) }
	rc.RenamedInsts = r("RenamedInsts", "instructions renamed")
	rc.RenameLookups = r("RenameLookups", "rename table lookups")
	rc.RenamedOperands = r("RenamedOperands", "operands renamed")
	rc.IntLookups = r("IntLookups", "integer rename lookups")
	rc.FpLookups = r("FpLookups", "floating-point rename lookups")
	rc.ROBFullEvents = r("ROBFullEvents", "stalls because the ROB was full")
	rc.IQFullEvents = r("IQFullEvents", "stalls because the IQ was full")
	rc.LQFullEvents = r("LQFullEvents", "stalls because the LQ was full")
	rc.SQFullEvents = r("SQFullEvents", "stalls because the SQ was full")
	rc.FullRegisterEvents = r("fullRegistersEvents", "stalls because physical registers ran out")
	rc.UndoneMaps = r("UndoneMaps", "rename map entries undone by squashes")
	rc.CommittedMaps = r("CommittedMaps", "rename map entries committed")
	rc.SerializingInsts = r("serializingInsts", "serializing instructions renamed")
	rc.TempSerializingInsts = r("tempSerializingInsts", "temporarily serializing instructions renamed")
	rc.SerializeStallCycles = r("serializeStallCycles", "cycles stalled for serialization")
	rc.SquashCycles = r("SquashCycles", "cycles rename spent squashing")
	rc.RunCycles = r("RunCycles", "cycles rename delivered instructions")
	rc.IdleCycles = r("IdleCycles", "cycles rename was idle")
	rc.BlockCycles = r("BlockCycles", "cycles rename was blocked")
	rc.UnblockCycles = r("UnblockCycles", "cycles rename was unblocking")
	rc.DynamicEnergy = r("dynamicEnergy", "rename dynamic energy")
	rc.StaticEnergy = r("staticEnergy", "rename static energy")
	rc.RateDist = histogram(reg, stats.CompRename, "rename.rateDist", width+1)

	qc := &c.IQ
	q := func(name, desc string) *stats.Counter { return reg.New(stats.CompIQ, name, desc) }
	qc.InstsAdded = q("iqInstsAdded", "instructions added to the IQ")
	qc.NonSpecInstsAdded = q("NonSpecInstsAdded", "non-speculative instructions added to the IQ")
	qc.InstsIssued = q("iqInstsIssued", "instructions issued from the IQ")
	qc.SquashedInstsIssued = q("iqSquashedInstsIssued", "squashed instructions that had issued")
	qc.SquashedInstsExamined = q("SquashedInstsExamined", "squashed instructions examined during squash walk")
	qc.SquashedOperandsExamined = q("SquashedOperandsExamined", "squashed operands examined during squash walk")
	qc.SquashedNonSpecRemoved = q("SquashedNonSpecRemoved", "squashed non-speculative instructions removed")
	qc.FullEvents = q("iqFullEvents", "IQ-full events")
	qc.RateDist = histogram(reg, stats.CompIQ, "iq.issuedDist", width+1)
	qc.OccDist = histogram(reg, stats.CompIQ, "iq.occDist", 9)
	for cl := isa.OpClass(0); cl < isa.NumOpClasses; cl++ {
		qc.FuFull[cl] = reg.NewRaw(stats.CompIQ, "iq.fu_full::"+cl.String(),
			"issue stalls because all "+cl.String()+" units were busy")
		qc.IssuedClass[cl] = reg.NewRaw(stats.CompIQ, "iq.FU_type_0::"+cl.String(),
			"instructions issued of class "+cl.String())
		qc.FuBusyCycles[cl] = reg.NewRaw(stats.CompIQ, "iq.fuBusyCycles::"+cl.String(),
			"cycles "+cl.String()+" issue waited for a functional unit")
	}
	qc.DynamicEnergy = q("dynamicEnergy", "IQ dynamic energy")
	qc.StaticEnergy = q("staticEnergy", "IQ static energy")

	ic := &c.IEW
	i := func(name, desc string) *stats.Counter { return reg.New(stats.CompIEW, name, desc) }
	ic.ExecutedInsts = i("iewExecutedInsts", "instructions executed")
	ic.ExecLoadInsts = i("iewExecLoadInsts", "loads executed")
	ic.ExecStoreInsts = i("iewExecStoreInsts", "stores executed")
	ic.ExecBranches = i("iewExecBranches", "branches executed")
	ic.ExecSquashedInsts = i("iewExecSquashedInsts", "executed instructions later squashed")
	ic.DispSquashedInsts = i("iewDispSquashedInsts", "dispatched instructions later squashed")
	ic.DispLoadInsts = i("iewDispLoadInsts", "loads dispatched")
	ic.DispStoreInsts = i("iewDispStoreInsts", "stores dispatched")
	ic.DispNonSpecInsts = i("iewDispNonSpecInsts", "non-speculative instructions dispatched")
	ic.MemOrderViolationEvents = i("memOrderViolationEvents", "memory order violations")
	ic.PredictedTakenIncorrect = i("predictedTakenIncorrect", "taken predictions that were wrong")
	ic.PredictedNotTakenIncorrect = i("predictedNotTakenIncorrect", "not-taken predictions that were wrong")
	ic.BranchMispredicts = i("branchMispredicts", "branch mispredicts detected at execute")
	ic.SquashCycles = i("SquashCycles", "cycles IEW spent squashing")
	ic.BlockCycles = i("BlockCycles", "cycles IEW was blocked")
	ic.UnblockCycles = i("UnblockCycles", "cycles IEW was unblocking")
	ic.LSQFullEvents = i("lsqFullEvents", "dispatch stalls because the LSQ was full")
	ic.FenceStallCycles = i("fenceStallCycles", "cycles of injected-fence serialization (§IV-G1 mitigation)")
	ic.BlockedSpecLoads = i("blockedSpecLoads", "speculative loads blocked by injected fences")
	ic.DynamicEnergy = i("dynamicEnergy", "IEW dynamic energy")
	ic.StaticEnergy = i("staticEnergy", "IEW static energy")

	lc := &c.LSQ
	l := func(name, desc string) *stats.Counter {
		return reg.NewRaw(stats.CompLSQ, "lsq.thread0."+name, desc)
	}
	lc.SquashedLoads = l("squashedLoads", "loads squashed")
	lc.SquashedStores = l("squashedStores", "stores squashed")
	lc.ForwLoads = l("forwLoads", "loads forwarded from the store queue")
	lc.IgnoredResponses = l("ignoredResponses", "memory responses ignored due to squash")
	lc.RescheduledLoads = l("rescheduledLoads", "loads replayed after conflicts")
	lc.BlockedLoads = l("blockedLoads", "loads blocked on cache ports")
	lc.MemOrderViolation = l("memOrderViolation", "order violations detected in the LSQ")
	lc.CacheBlocked = l("cacheBlocked", "LSQ stalls because the cache was blocked")
	lc.LQOccDist = histogram(reg, stats.CompLSQ, "lsq.lqOccDist", 9)
	lc.SQOccDist = histogram(reg, stats.CompLSQ, "lsq.sqOccDist", 9)

	mc := &c.MemDep
	m := func(name, desc string) *stats.Counter { return reg.New(stats.CompMemDep, name, desc) }
	mc.ConflictingLoads = m("conflictingLoads", "loads conflicting with in-flight stores")
	mc.ConflictingStores = m("conflictingStores", "stores conflicting with in-flight loads")
	mc.InsertedLoads = m("insertedLoads", "loads tracked by the dependence predictor")
	mc.InsertedStores = m("insertedStores", "stores tracked by the dependence predictor")
	mc.DepsPredicted = m("depsPredicted", "memory dependences predicted")
	mc.DepsIncorrect = m("depsIncorrect", "memory dependence mispredictions")

	cc := &c.Commit
	cm := func(name, desc string) *stats.Counter { return reg.New(stats.CompCommit, name, desc) }
	cc.CommittedInsts = cm("committedInsts", "instructions committed")
	cc.CommittedOps = cm("committedOps", "micro-ops committed")
	cc.SquashedInsts = cm("SquashedInsts", "instructions squashed before commit")
	cc.NonSpecStalls = cm("NonSpecStalls", "cycles commit stalled on non-speculative instructions")
	cc.BranchMispredicts = cm("branchMispredicts", "mispredicted branches committed")
	cc.Branches = cm("branches", "branches committed")
	cc.Loads = cm("loads", "loads committed")
	cc.Stores = cm("stores", "stores committed")
	cc.Membars = cm("membars", "memory barriers committed")
	cc.Traps = cm("traps", "traps taken at commit")
	cc.CommitEligible = cm("commitEligible", "instructions eligible to commit")
	cc.ROBHeadStalls = cm("robHeadStalls", "cycles the ROB head was not ready")
	for cl := isa.OpClass(0); cl < isa.NumOpClasses; cl++ {
		cc.OpClass[cl] = reg.NewRaw(stats.CompCommit, "commit.op_class_0::"+cl.String(),
			"committed instructions of class "+cl.String())
	}
	cc.RateDist = histogram(reg, stats.CompCommit, "commit.rateDist", width+1)
	cc.DynamicEnergy = cm("dynamicEnergy", "commit dynamic energy")
	cc.StaticEnergy = cm("staticEnergy", "commit static energy")

	oc := &c.ROB
	oc.Reads = reg.New(stats.CompROB, "rob_reads", "ROB reads")
	oc.Writes = reg.New(stats.CompROB, "rob_writes", "ROB writes")
	oc.FullEvents = reg.New(stats.CompROB, "fullEvents", "ROB-full events")
	oc.OccDist = histogram(reg, stats.CompROB, "rob.occDist", 13)

	return c
}
