package pipeline

import (
	"testing"

	"perspectron/internal/isa"
)

func TestLQFullBackPressure(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	// A slow head load followed by > LQEntries independent loads must
	// trigger LQ-full events.
	var ops []isa.Op
	ops = append(ops, isa.Op{Kind: isa.KindLoad, PC: 0x1000, Addr: 0x40000000})
	for i := 0; i < 3*DefaultConfig().LQEntries; i++ {
		ops = append(ops, isa.Op{Kind: isa.KindLoad, PC: 0x2000 + uint64(i)*4,
			Addr: 0x10000 + uint64(i%4)*64}) // warm lines: fast
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.Rename.LQFullEvents.Value() == 0 {
		t.Fatalf("no LQ-full events")
	}
}

func TestSQFullBackPressure(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	var ops []isa.Op
	ops = append(ops, isa.Op{Kind: isa.KindLoad, PC: 0x1000, Addr: 0x40000000})
	for i := 0; i < 3*DefaultConfig().SQEntries; i++ {
		ops = append(ops, isa.Op{Kind: isa.KindStore, PC: 0x2000 + uint64(i)*4,
			Addr: 0x10000 + uint64(i%4)*64})
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.Rename.SQFullEvents.Value() == 0 {
		t.Fatalf("no SQ-full events")
	}
}

func TestFUContentionCounted(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	// FloatDiv has 2 units with 12-cycle latency: a burst must contend.
	ops := make([]isa.Op, 64)
	for i := range ops {
		ops[i] = isa.Op{Kind: isa.KindPlain, Class: isa.FloatDiv, PC: 0x1000 + uint64(i)*4}
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.IQ.FuFull[isa.FloatDiv].Value() == 0 {
		t.Fatalf("no fu_full events for FloatDiv burst")
	}
	if p.C.IQ.FuBusyCycles[isa.FloatDiv].Value() == 0 {
		t.Fatalf("no FU busy cycles accumulated")
	}
	if p.C.IQ.IssuedClass[isa.FloatDiv].Value() != 64 {
		t.Fatalf("issued class count = %v", p.C.IQ.IssuedClass[isa.FloatDiv].Value())
	}
}

func TestIndirectTransient(t *testing.T) {
	p, h, _ := newTestPipeline(t)
	probe := uint64(0x12340000)
	var ops []isa.Op
	// Train the indirect target, then diverge with a gadget.
	for i := 0; i < 4; i++ {
		ops = append(ops, isa.Op{Kind: isa.KindIndirect, PC: 0x3000, Target: 0x5000})
	}
	ops = append(ops, isa.Op{Kind: isa.KindIndirect, PC: 0x3000, Target: 0x6000,
		Transient: []isa.Op{{Kind: isa.KindLoad, Addr: probe}}})
	p.Run(isa.NewSliceStream(ops), 0)
	if !h.L1D.Present(probe) {
		t.Fatalf("indirect mispredict did not execute the transient body")
	}
	if p.BP.C.IndirectMispredicted.Value() == 0 {
		t.Fatalf("no indirect mispredicts counted")
	}
}

func TestQuiesceDefaultWait(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	ops := []isa.Op{{Kind: isa.KindQuiesce, PC: 0x1000}} // WaitCycles unset
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.Fetch.PendingQuiesceStallCycles.Value() == 0 {
		t.Fatalf("default quiesce wait not applied")
	}
}

func TestCommitKindCounters(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	ops := []isa.Op{
		{Kind: isa.KindLoad, PC: 0x1000, Addr: 0x1000},
		{Kind: isa.KindLoad, PC: 0x1004, Addr: 0x2000},
		{Kind: isa.KindStore, PC: 0x1008, Addr: 0x3000},
		plain(0x100c),
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.Commit.Loads.Value() != 2 || p.C.Commit.Stores.Value() != 1 {
		t.Fatalf("commit loads/stores = %v/%v",
			p.C.Commit.Loads.Value(), p.C.Commit.Stores.Value())
	}
	if p.C.Commit.OpClass[isa.MemRead].Value() != 2 {
		t.Fatalf("MemRead class count = %v", p.C.Commit.OpClass[isa.MemRead].Value())
	}
}

func TestFencingSuppressesTransientLoads(t *testing.T) {
	p, h, _ := newTestPipeline(t)
	p.SetFencing(true)
	if !p.Fencing() {
		t.Fatalf("fencing not set")
	}
	probe := uint64(0x22220000)
	var ops []isa.Op
	for i := 0; i < 16; i++ {
		ops = append(ops, isa.Op{Kind: isa.KindBranch, PC: 0x4000, Taken: true, Target: 0x4040})
	}
	ops = append(ops, isa.Op{Kind: isa.KindBranch, PC: 0x4000, Taken: false, Target: 0x4040,
		Transient: []isa.Op{{Kind: isa.KindLoad, Addr: probe}}})
	p.Run(isa.NewSliceStream(ops), 0)
	if h.L1D.Present(probe) {
		t.Fatalf("fencing let a transient load fill the cache")
	}
	if p.C.IEW.BlockedSpecLoads.Value() == 0 {
		t.Fatalf("blocked speculative loads not counted")
	}
	if p.C.IEW.FenceStallCycles.Value() == 0 {
		t.Fatalf("fence serialization cost not counted")
	}
}

func TestGenericWrongPathOnBenignMispredict(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	// A hard-to-predict branch with no explicit gadget still drags generic
	// wrong-path work through the pipeline.
	var ops []isa.Op
	taken := true
	for i := 0; i < 64; i++ {
		// Irregular pattern defeats the predictor.
		taken = !taken
		if i%5 == 0 {
			taken = !taken
		}
		ops = append(ops, isa.Op{Kind: isa.KindBranch, PC: 0x5000, Taken: taken,
			Target: 0x5040, Addr: 0x9000 + uint64(i)*64})
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.IEW.BranchMispredicts.Value() == 0 {
		t.Fatalf("irregular branch never mispredicted")
	}
	if p.C.Commit.SquashedInsts.Value() == 0 {
		t.Fatalf("benign mispredicts squashed nothing")
	}
	if p.C.IQ.SquashedInstsExamined.Value() == 0 {
		t.Fatalf("wrong-path work not examined")
	}
}

func TestPhysicalRegisterPressure(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	// The register-pressure threshold sits below the ROB bound, so a long
	// stall behind a slow head trips it.
	var ops []isa.Op
	for rep := 0; rep < 4; rep++ {
		ops = append(ops, isa.Op{Kind: isa.KindLoad, PC: 0x1000 + uint64(rep)*4,
			Addr: 0x50000000 + uint64(rep)<<20})
		for i := 0; i < 400; i++ {
			cl := isa.IntAlu
			if i%2 == 0 {
				cl = isa.SimdAlu
			}
			ops = append(ops, isa.Op{Kind: isa.KindPlain, Class: cl,
				PC: 0x2000 + uint64(rep*400+i)*4})
		}
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.Rename.ROBFullEvents.Value() == 0 && p.C.Rename.FullRegisterEvents.Value() == 0 {
		t.Fatalf("no structural back-pressure recorded")
	}
}
