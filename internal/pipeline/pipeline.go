// Package pipeline implements a cycle-accounting out-of-order core model in
// the style of gem5's O3CPU, configured per the paper's Table II: 8-wide
// fetch/dispatch/issue/commit, 192-entry ROB, 32-entry load and store
// queues, 256 physical integer and float registers, a tournament branch
// predictor, and TLBs whose permission faults are deferred to commit.
//
// The model is instruction-stepped rather than strictly cycle-stepped: each
// committed-path op flows through fetch → decode → rename → issue/execute →
// commit bookkeeping in one step, while a reorder-window model with
// completion timestamps produces realistic occupancy, stall, and squash
// *cycle* accounting. Mispredicted control flow and faulting loads execute
// their transient bodies against the real cache hierarchy before being
// squashed — which is exactly the footprint PerSpectron detects.
package pipeline

import (
	"perspectron/internal/branch"
	"perspectron/internal/isa"
	"perspectron/internal/tlb"
)

// MemSystem is the data/instruction memory interface the pipeline drives
// (implemented by the cache hierarchy via internal/sim).
type MemSystem interface {
	FetchInst(pc uint64, cycle uint64) uint64
	ReadData(addr uint64, shared bool, cycle uint64) uint64
	WriteData(addr uint64, cycle uint64) uint64
	Flush(addr uint64, cycle uint64) (present bool, lat uint64)
	ReadLFB(cycle uint64) bool
}

// Config holds the core parameters (Table II).
type Config struct {
	Width            int
	ROBEntries       int
	LQEntries        int
	SQEntries        int
	NumPhysIntRegs   int
	NumPhysFloatRegs int
	SquashPenalty    uint64
	TrapLatency      uint64
	L1IHitLatency    uint64
}

// DefaultConfig returns the Table II configuration.
func DefaultConfig() Config {
	return Config{
		Width:            8,
		ROBEntries:       192,
		LQEntries:        32,
		SQEntries:        32,
		NumPhysIntRegs:   256,
		NumPhysFloatRegs: 256,
		SquashPenalty:    8,
		TrapLatency:      40,
		L1IHitLatency:    2,
	}
}

// inflight is one window (ROB) entry.
type inflight struct {
	class   isa.OpClass
	done    uint64
	isLoad  bool
	isStore bool
	line    uint64
	nonSpec bool
	misp    bool // mispredicted control
}

// fuPools maps op classes onto functional unit pools.
var fuPoolOf = func() [isa.NumOpClasses]int {
	var m [isa.NumOpClasses]int
	for c := isa.OpClass(0); c < isa.NumOpClasses; c++ {
		switch c {
		case isa.IntMult, isa.IntDiv:
			m[c] = 1
		case isa.FloatAdd, isa.FloatCmp, isa.FloatCvt, isa.FloatMult,
			isa.FloatDiv, isa.FloatSqrt:
			m[c] = 2
		case isa.SimdAdd, isa.SimdAlu, isa.SimdCmp, isa.SimdCvt,
			isa.SimdMisc, isa.SimdMult, isa.SimdShift, isa.SimdFloatAdd,
			isa.SimdFloatMult:
			m[c] = 3
		case isa.MemRead, isa.FloatMemRead, isa.InstPrefetch:
			m[c] = 4
		case isa.MemWrite, isa.FloatMemWrite:
			m[c] = 5
		default:
			m[c] = 0
		}
	}
	return m
}()

var fuPoolSizes = [6]int{6, 2, 4, 4, 4, 4}

// execLatency is the fixed execute latency per class; memory classes take
// the cache latency instead.
var execLatency = func() [isa.NumOpClasses]uint64 {
	var l [isa.NumOpClasses]uint64
	for c := isa.OpClass(0); c < isa.NumOpClasses; c++ {
		l[c] = 1
	}
	l[isa.IntMult] = 3
	l[isa.IntDiv] = 12
	l[isa.FloatAdd] = 2
	l[isa.FloatCmp] = 2
	l[isa.FloatCvt] = 2
	l[isa.FloatMult] = 4
	l[isa.FloatDiv] = 12
	l[isa.FloatSqrt] = 20
	for c := isa.SimdAdd; c <= isa.SimdFloatMult; c++ {
		l[c] = 3
	}
	return l
}()

type memRef struct {
	line uint64
	done uint64
}

// Pipeline is the core model.
type Pipeline struct {
	cfg Config
	C   Counters

	Mem MemSystem
	BP  *branch.Predictor
	ITB *tlb.TLB
	DTB *tlb.TLB

	// OnCommit is invoked with 1 for every committed instruction; the
	// machine hooks the stats sampler here.
	OnCommit func(n uint64)

	// fencing enables the §IV-G1 context-sensitive-fencing mitigation:
	// injected fences at control-flow targets block speculative loads
	// (transient bodies execute no memory accesses) at a per-branch
	// serialization cost.
	fencing bool

	cycle     uint64
	sub       int // ops dispatched in the current cycle
	committed uint64

	window []inflight
	head   int
	lq, sq int

	fu [6][]uint64 // next-free cycle per FU

	prevDone      uint64
	lastFetchLine uint64
	lastFetchPage uint64

	recentStores  []memRef
	recentLoads   []memRef
	pendingStores []memRef // address-delayed stores (SpectreV4 window)

	opsSinceHist int
	lastHistCyc  uint64
	lastHistInst uint64
}

// New constructs a pipeline with counters registered in reg. Wire Mem, BP,
// ITB, DTB before Run.
func New(cfg Config, c Counters) *Pipeline {
	p := &Pipeline{cfg: cfg, C: c, lastFetchLine: ^uint64(0), lastFetchPage: ^uint64(0)}
	for i := range p.fu {
		p.fu[i] = make([]uint64, fuPoolSizes[i])
	}
	return p
}

// SetFencing toggles the context-sensitive-fencing mitigation.
func (p *Pipeline) SetFencing(on bool) { p.fencing = on }

// Fencing reports whether the fencing mitigation is active.
func (p *Pipeline) Fencing() bool { return p.fencing }

// Cycle returns the current cycle.
func (p *Pipeline) Cycle() uint64 { return p.cycle }

// Committed returns committed instructions so far.
func (p *Pipeline) Committed() uint64 { return p.committed }

// Run executes the stream until it ends or maxInsts committed-path
// instructions have been fetched (all fetched instructions then drain and
// commit).
func (p *Pipeline) Run(stream isa.Stream, maxInsts uint64) uint64 {
	start := p.committed
	var fetched uint64
	for maxInsts == 0 || fetched < maxInsts {
		op, ok := stream.Next()
		if !ok {
			break
		}
		fetched++
		p.Step(&op)
	}
	p.drain()
	return p.committed - start
}

// Step processes one committed-path op through the whole pipeline model.
func (p *Pipeline) Step(op *isa.Op) {
	if op.Class == isa.NoOpClass && op.Kind != isa.KindNop && op.Kind != isa.KindQuiesce &&
		op.Kind != isa.KindFlush && op.Kind != isa.KindFence && op.Kind != isa.KindSerialize {
		op.Class = isa.DefaultClass(op.Kind)
	}

	p.fetch(op)
	p.decode(op)

	misp := p.predict(op)

	p.rename(op)
	done, faulted := p.execute(op)

	if misp || faulted {
		p.transientAndSquash(op, faulted)
		if faulted {
			// Trap at commit: drain and pay the trap latency.
			p.drain()
			p.C.Fetch.PendingTrapStallCycles.Add(float64(p.cfg.TrapLatency))
			p.C.Commit.Traps.Inc()
			p.cycle += p.cfg.TrapLatency
			done = p.cycle
		}
	}

	p.dispatchToWindow(op, done, misp)
	p.retireReady()
	p.advance()
	p.histograms()
}

// fetch models instruction delivery.
func (p *Pipeline) fetch(op *isa.Op) {
	fc := &p.C.Fetch

	if op.Kind == isa.KindQuiesce {
		w := op.WaitCycles
		if w == 0 {
			w = 16
		}
		fc.PendingQuiesceStallCycles.Add(float64(w))
		fc.IdleCycles.Add(float64(w))
		p.C.Decode.IdleCycles.Add(float64(w))
		p.C.Rename.IdleCycles.Add(float64(w))
		p.cycle += w
	}

	line := op.PC >> 6
	if line != p.lastFetchLine {
		sequential := line == p.lastFetchLine+1
		p.lastFetchLine = line
		fc.CacheLines.Inc()
		lat := p.Mem.FetchInst(op.PC, p.cycle)
		if lat > p.cfg.L1IHitLatency {
			extra := lat - p.cfg.L1IHitLatency
			if sequential {
				// The next-line prefetcher has this fill in flight;
				// sequential streams hide most of the miss.
				extra /= 8
			}
			fc.IcacheStallCycles.Add(float64(extra))
			p.cycle += extra
		}
		// Next-line prefetch: fill line+1 in the background.
		p.Mem.FetchInst((line+1)<<6, p.cycle)
	}
	page := op.PC >> 12
	if page != p.lastFetchPage {
		p.lastFetchPage = page
		res := p.ITB.Translate(op.PC, false)
		if res.Latency > 1 {
			fc.ItlbStallCycles.Add(float64(res.Latency - 1))
			p.cycle += res.Latency - 1
		}
	}

	fc.Insts.Inc()
	if op.IsControl() {
		fc.Branches.Inc()
	}
	fc.DynamicEnergy.Add(0.8)
}

// decode models the decode stage bookkeeping.
func (p *Pipeline) decode(op *isa.Op) {
	dc := &p.C.Decode
	dc.DecodedInsts.Inc()
	ops := 1.0
	if op.IsMem() {
		ops = 2 // address generation + access micro-ops
	}
	dc.DecodedOps.Add(ops)
	dc.DynamicEnergy.Add(0.5)
}

// predict runs the branch prediction unit; it returns true when the op is a
// mispredicted control instruction.
func (p *Pipeline) predict(op *isa.Op) bool {
	fc := &p.C.Fetch
	switch op.Kind {
	case isa.KindBranch:
		fc.PredictedBranches.Inc()
		correct := p.BP.PredictCond(op.PC, op.Taken)
		if op.Taken {
			p.BP.LookupBTB(op.PC, op.Target)
		}
		if !correct {
			if op.Taken {
				p.C.IEW.PredictedNotTakenIncorrect.Inc()
			} else {
				p.C.IEW.PredictedTakenIncorrect.Inc()
			}
		}
		return !correct
	case isa.KindCall:
		p.BP.Call(op.PC + 4)
		p.BP.LookupBTB(op.PC, op.Target)
		return false
	case isa.KindRet:
		fc.PredictedBranches.Inc()
		return !p.BP.Return(op.Target)
	case isa.KindIndirect:
		fc.PredictedBranches.Inc()
		p.BP.LookupBTB(op.PC, op.Target)
		return !p.BP.PredictIndirect(op.PC, op.Target)
	}
	return false
}

// rename models rename/dispatch back-pressure: window, LSQ, and physical
// register availability, plus serialization.
func (p *Pipeline) rename(op *isa.Op) {
	rc := &p.C.Rename
	rc.RenamedInsts.Inc()
	rc.RenameLookups.Add(2)
	rc.RenamedOperands.Add(2)
	if op.Class >= isa.FloatAdd && op.Class <= isa.SimdFloatMult {
		rc.FpLookups.Inc()
	} else {
		rc.IntLookups.Inc()
	}
	rc.DynamicEnergy.Add(0.6)

	// Structural back-pressure: free a window slot, LQ/SQ slot, and a
	// physical register by retiring the head when needed. The stall cycles
	// propagate backwards to every earlier stage, the coupling the paper's
	// replicated-feature argument builds on.
	if p.windowLen() >= p.cfg.ROBEntries {
		rc.ROBFullEvents.Inc()
		p.C.ROB.FullEvents.Inc()
		p.retireForSpace()
	}
	if op.Kind == isa.KindLoad && p.lq >= p.cfg.LQEntries {
		rc.LQFullEvents.Inc()
		p.retireForSpace()
	}
	if op.Kind == isa.KindStore && p.sq >= p.cfg.SQEntries {
		rc.SQFullEvents.Inc()
		p.retireForSpace()
	}
	if p.windowLen() >= p.cfg.NumPhysIntRegs-p.cfg.Width*4 {
		rc.FullRegisterEvents.Inc()
		p.retireForSpace()
	}
	if p.windowLen() >= 64 { // IQ capacity model
		inIQ := 0
		for i := p.head; i < len(p.window); i++ {
			if p.window[i].done > p.cycle {
				inIQ++
			}
		}
		if inIQ >= 64 {
			rc.IQFullEvents.Inc()
			p.C.IQ.FullEvents.Inc()
			p.retireForSpace()
		}
	}

	if op.IsSerializing() {
		rc.SerializingInsts.Inc()
		if op.Kind == isa.KindFlush {
			rc.TempSerializingInsts.Inc()
		}
		before := p.cycle
		p.drain()
		stall := p.cycle - before
		rc.SerializeStallCycles.Add(float64(stall))
		p.C.Commit.NonSpecStalls.Add(float64(stall) + 2)
		p.C.IQ.NonSpecInstsAdded.Inc()
		p.C.IEW.DispNonSpecInsts.Inc()
	}
}

// execute computes the op's completion time, running real cache and TLB
// accesses for memory ops. It returns the completion cycle and whether the
// op faults at commit (Meltdown-style deferred fault).
func (p *Pipeline) execute(op *isa.Op) (done uint64, faulted bool) {
	iq := &p.C.IQ
	iw := &p.C.IEW

	ready := p.cycle
	if op.DependsOnPrev && p.prevDone > ready {
		ready = p.prevDone
	}

	// Functional unit acquisition.
	pool := fuPoolOf[op.Class]
	slot, at := p.acquireFU(pool, ready)
	if at > ready {
		iq.FuFull[op.Class].Inc()
		iq.FuBusyCycles[op.Class].Add(float64(at - ready))
		ready = at
	}
	p.fu[pool][slot] = ready + 1

	iq.InstsAdded.Inc()
	iq.InstsIssued.Inc()
	iq.IssuedClass[op.Class].Inc()
	iq.DynamicEnergy.Add(0.4)
	iw.ExecutedInsts.Inc()
	iw.DynamicEnergy.Add(0.7)

	switch op.Kind {
	case isa.KindLoad:
		iw.ExecLoadInsts.Inc()
		iw.DispLoadInsts.Inc()
		p.C.MemDep.InsertedLoads.Inc()
		p.lq++

		res := p.DTB.Translate(op.Addr, false)
		lat := res.Latency
		if res.PermFault || res.PageFault {
			faulted = true
		}

		line := op.Addr >> 6
		if bypass, ok := p.bypassesPendingStore(line, ready); ok {
			// SpectreV4: the load speculatively bypassed an older store
			// with an unresolved address and read stale data. The
			// transient body runs on the stale value, then the load is
			// replayed after the store resolves.
			p.C.IEW.MemOrderViolationEvents.Inc()
			p.C.LSQ.MemOrderViolation.Inc()
			p.C.LSQ.RescheduledLoads.Inc()
			p.C.MemDep.DepsIncorrect.Inc()
			if len(op.Transient) > 0 {
				p.runTransient(op.Transient)
				p.squash(len(op.Transient))
			} else {
				p.cycle += 6 // plain replay penalty
				p.C.IEW.BlockCycles.Add(6)
			}
			done = max64(bypass, p.cycle) + 1
			p.recordLoad(line, done)
			p.prevDone = done
			return done, faulted
		}
		if fwd, ok := p.forwardFromStore(line); ok {
			p.C.LSQ.ForwLoads.Inc()
			done = max64(ready+1, fwd)
		} else if op.FBRead {
			// MDS fill-buffer sample: no architectural cache access.
			p.Mem.ReadLFB(ready)
			done = ready + 4
		} else {
			memLat := p.Mem.ReadData(op.Addr, op.Shared, ready+lat)
			done = ready + lat + memLat
			if memLat > 20 {
				p.C.LSQ.BlockedLoads.Inc()
			}
		}
		p.recordLoad(line, done)

	case isa.KindStore:
		iw.ExecStoreInsts.Inc()
		iw.DispStoreInsts.Inc()
		p.C.MemDep.InsertedStores.Inc()
		p.sq++

		res := p.DTB.Translate(op.Addr, true)
		if res.PermFault || res.PageFault {
			faulted = true
		}
		line := op.Addr >> 6
		p.checkViolation(line)
		p.Mem.WriteData(op.Addr, ready+res.Latency)
		done = ready + res.Latency + 1
		if op.AddrDelayed {
			// The store's address resolves late: it is invisible to
			// store-to-load forwarding until done, opening the
			// speculative-store-bypass window for younger loads.
			done += 24 // address-generation dependence latency
			p.recordPendingStore(line, done)
		} else {
			p.recordStore(line, done)
		}

	case isa.KindFlush:
		_, lat := p.Mem.Flush(op.Addr, ready)
		done = ready + lat
		p.C.Commit.Membars.Inc()

	case isa.KindFence, isa.KindSerialize:
		done = ready + 2
		p.C.Commit.Membars.Inc()

	case isa.KindBranch, isa.KindCall, isa.KindRet, isa.KindIndirect:
		iw.ExecBranches.Inc()
		done = ready + execLatency[op.Class]
		if p.fencing {
			// Injected fence at the control-flow target serializes the
			// following loads.
			iw.FenceStallCycles.Add(2)
			p.cycle += 2
			done += 2
		}

	default:
		done = ready + execLatency[op.Class]
	}

	p.prevDone = done
	return done, faulted
}

// acquireFU returns the index and availability time of the earliest-free FU
// in pool.
func (p *Pipeline) acquireFU(pool int, ready uint64) (slot int, at uint64) {
	fus := p.fu[pool]
	best := 0
	for i := 1; i < len(fus); i++ {
		if fus[i] < fus[best] {
			best = i
		}
	}
	at = fus[best]
	if at < ready {
		at = ready
	}
	return best, at
}

// forwardFromStore reports whether line can be forwarded from an in-flight
// store, returning the forward-ready cycle.
func (p *Pipeline) forwardFromStore(line uint64) (uint64, bool) {
	for i := len(p.recentStores) - 1; i >= 0; i-- {
		if p.recentStores[i].line == line {
			return p.recentStores[i].done, true
		}
	}
	return 0, false
}

// checkViolation detects a store arriving after a same-line load already
// completed out of order: a memory-order violation with a replay.
func (p *Pipeline) checkViolation(line uint64) {
	for i := len(p.recentLoads) - 1; i >= 0; i-- {
		l := p.recentLoads[i]
		if l.line == line && l.done > p.cycle {
			p.C.IEW.MemOrderViolationEvents.Inc()
			p.C.LSQ.MemOrderViolation.Inc()
			p.C.LSQ.RescheduledLoads.Inc()
			p.C.MemDep.ConflictingStores.Inc()
			p.C.MemDep.ConflictingLoads.Inc()
			p.C.MemDep.DepsIncorrect.Inc()
			p.cycle += 6 // replay penalty
			p.C.IEW.BlockCycles.Add(6)
			// Remove the violated record so one aliasing pair counts once.
			p.recentLoads = append(p.recentLoads[:i], p.recentLoads[i+1:]...)
			return
		}
	}
	p.C.MemDep.DepsPredicted.Inc()
}

func (p *Pipeline) recordLoad(line, done uint64) {
	p.recentLoads = append(p.recentLoads, memRef{line, done})
	if len(p.recentLoads) > 32 {
		p.recentLoads = p.recentLoads[1:]
	}
}

func (p *Pipeline) recordStore(line, done uint64) {
	p.recentStores = append(p.recentStores, memRef{line, done})
	if len(p.recentStores) > 32 {
		p.recentStores = p.recentStores[1:]
	}
}

func (p *Pipeline) recordPendingStore(line, resolveAt uint64) {
	p.pendingStores = append(p.pendingStores, memRef{line, resolveAt})
	if len(p.pendingStores) > 32 {
		p.pendingStores = p.pendingStores[1:]
	}
}

// bypassesPendingStore reports whether a load to line at cycle ready slips
// under an older address-delayed store; it returns the store's resolve time.
func (p *Pipeline) bypassesPendingStore(line, ready uint64) (uint64, bool) {
	for i := len(p.pendingStores) - 1; i >= 0; i-- {
		s := p.pendingStores[i]
		if s.line == line && s.done > ready {
			p.pendingStores = append(p.pendingStores[:i], p.pendingStores[i+1:]...)
			return s.done, true
		}
	}
	return 0, false
}

// transientAndSquash executes the op's transient body against the real
// memory system and then accounts the squash.
func (p *Pipeline) transientAndSquash(op *isa.Op, faulted bool) {
	body := op.Transient
	if len(body) == 0 && !faulted {
		// Generic wrong-path work for mispredicts without an explicit
		// gadget: the frontend fetches and partially executes a handful
		// of wrong-path instructions.
		body = genericWrongPath(op)
	}
	p.runTransient(body)
	p.squash(len(body))
	if op.IsControl() {
		p.C.IEW.BranchMispredicts.Inc()
	}
}

// genericWrongPath synthesizes the wrong-path instructions a benign
// mispredict drags through the pipeline.
func genericWrongPath(op *isa.Op) []isa.Op {
	wp := make([]isa.Op, 0, 8)
	for i := 0; i < 6; i++ {
		wp = append(wp, isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu, PC: op.PC + 8 + uint64(i)*4})
	}
	if op.Addr != 0 {
		wp = append(wp, isa.Op{Kind: isa.KindLoad, Class: isa.MemRead,
			PC: op.PC + 32, Addr: op.Addr + 64})
	}
	return wp
}

// runTransient executes a squashed-path body: its memory accesses are real
// (they perturb the caches — the side channel), but nothing commits.
func (p *Pipeline) runTransient(body []isa.Op) {
	iq := &p.C.IQ
	iw := &p.C.IEW
	tDone := p.cycle
	for bi := range body {
		t := &body[bi]
		if t.Class == isa.NoOpClass {
			t.Class = isa.DefaultClass(t.Kind)
		}
		iq.SquashedInstsExamined.Inc()
		iq.SquashedOperandsExamined.Add(2)
		iw.DispSquashedInsts.Inc()
		p.C.ROB.Writes.Inc()

		// Roughly half the wrong-path body typically issues before the
		// squash arrives; model that all of it does (the gadget bodies
		// are short and latency-critical by construction).
		iq.SquashedInstsIssued.Inc()
		iw.ExecSquashedInsts.Inc()

		ready := tDone
		if !t.DependsOnPrev {
			ready = p.cycle
		}
		switch t.Kind {
		case isa.KindLoad:
			p.C.LSQ.SquashedLoads.Inc()
			if p.fencing {
				// The injected fence blocks the speculative load: no
				// translation, no cache fill — the side channel never
				// forms.
				p.C.IEW.BlockedSpecLoads.Inc()
				tDone = ready + 1
				break
			}
			res := p.DTB.Translate(t.Addr, false)
			if t.FBRead {
				p.Mem.ReadLFB(ready)
				tDone = ready + 4
			} else {
				lat := p.Mem.ReadData(t.Addr, t.Shared, ready+res.Latency)
				tDone = ready + res.Latency + lat
				if lat > 20 {
					p.C.LSQ.IgnoredResponses.Inc()
				}
			}
		case isa.KindStore:
			p.C.LSQ.SquashedStores.Inc()
			p.DTB.Translate(t.Addr, true)
			tDone = ready + 2
		case isa.KindBranch, isa.KindCall, isa.KindRet, isa.KindIndirect:
			tDone = ready + 1
		default:
			tDone = ready + execLatency[t.Class]
		}
		iq.DynamicEnergy.Add(0.4)
		iw.DynamicEnergy.Add(0.7)
	}
	if len(body) > 0 {
		p.C.Fetch.IcacheSquashes.Inc()
	}
}

// squash accounts a pipeline squash of n instructions.
func (p *Pipeline) squash(n int) {
	pen := p.cfg.SquashPenalty
	p.cycle += pen
	fpen := float64(pen)
	p.C.Fetch.SquashCycles.Add(fpen)
	p.C.Decode.SquashCycles.Add(fpen)
	p.C.Rename.SquashCycles.Add(fpen)
	p.C.IEW.SquashCycles.Add(fpen)
	p.C.Rename.UndoneMaps.Add(float64(n))
	p.C.Commit.SquashedInsts.Add(float64(n))
	p.C.IQ.SquashedNonSpecRemoved.Add(float64(n) * 0.05)
	p.BP.Squash(n)
}

// dispatchToWindow enters the op into the reorder window.
func (p *Pipeline) dispatchToWindow(op *isa.Op, done uint64, misp bool) {
	if done < p.cycle {
		done = p.cycle
	}
	p.window = append(p.window, inflight{
		class:   op.Class,
		done:    done,
		isLoad:  op.Kind == isa.KindLoad,
		isStore: op.Kind == isa.KindStore,
		line:    op.Addr >> 6,
		nonSpec: op.IsSerializing(),
		misp:    misp,
	})
	p.C.ROB.Writes.Inc()
}

// windowLen returns current ROB occupancy.
func (p *Pipeline) windowLen() int { return len(p.window) - p.head }

// retireReady retires all head instructions whose completion time has
// passed.
func (p *Pipeline) retireReady() {
	for p.head < len(p.window) && p.window[p.head].done <= p.cycle {
		p.commitHead()
	}
	p.compact()
}

// retireForSpace force-retires the head, advancing the clock to its
// completion and accounting the back-pressure stall in earlier stages.
func (p *Pipeline) retireForSpace() {
	if p.head >= len(p.window) {
		return
	}
	h := p.window[p.head]
	if h.done > p.cycle {
		stall := float64(h.done - p.cycle)
		p.C.Fetch.MiscStallCycles.Add(stall)
		p.C.Fetch.BlockedCycles.Add(stall)
		p.C.Decode.BlockedCycles.Add(stall)
		p.C.Rename.BlockCycles.Add(stall)
		p.C.IEW.BlockCycles.Add(stall)
		p.C.Commit.ROBHeadStalls.Add(stall)
		p.cycle = h.done
	}
	p.commitHead()
	p.retireReady()
}

// commitHead retires the instruction at the window head.
func (p *Pipeline) commitHead() {
	h := p.window[p.head]
	p.head++
	cc := &p.C.Commit
	cc.CommittedInsts.Inc()
	cc.CommittedOps.Inc()
	cc.CommitEligible.Inc()
	cc.OpClass[h.class].Inc()
	cc.DynamicEnergy.Add(0.5)
	p.C.Rename.CommittedMaps.Inc()
	p.C.ROB.Reads.Inc()
	switch {
	case h.isLoad:
		cc.Loads.Inc()
		p.lq--
	case h.isStore:
		cc.Stores.Inc()
		p.sq--
	}
	if h.misp {
		cc.BranchMispredicts.Inc()
	}
	if h.nonSpec {
		cc.NonSpecStalls.Add(1)
	}
	p.committed++
	if p.OnCommit != nil {
		p.OnCommit(1)
	}
}

func (p *Pipeline) compact() {
	if p.head > 4096 {
		p.window = append(p.window[:0], p.window[p.head:]...)
		p.head = 0
	}
}

// drain retires everything in flight, advancing the clock as needed.
func (p *Pipeline) drain() {
	for p.head < len(p.window) {
		h := p.window[p.head]
		if h.done > p.cycle {
			p.C.Fetch.PendingDrainCycles.Add(float64(h.done - p.cycle))
			p.cycle = h.done
		}
		p.commitHead()
	}
	p.compact()
}

// advance moves the base clock: width instructions per cycle plus static
// energy accrual.
func (p *Pipeline) advance() {
	p.sub++
	if p.sub >= p.cfg.Width {
		p.sub = 0
		p.cycle++
		p.C.Fetch.Cycles.Inc()
		p.C.Fetch.RunCycles.Inc()
		p.C.Decode.RunCycles.Inc()
		p.C.Rename.RunCycles.Inc()
		p.C.Fetch.StaticEnergy.Add(0.1)
		p.C.Decode.StaticEnergy.Add(0.08)
		p.C.Rename.StaticEnergy.Add(0.08)
		p.C.IQ.StaticEnergy.Add(0.12)
		p.C.IEW.StaticEnergy.Add(0.15)
		p.C.Commit.StaticEnergy.Add(0.08)
	}
}

// histograms refreshes the occupancy and rate histograms periodically.
func (p *Pipeline) histograms() {
	p.opsSinceHist++
	if p.opsSinceHist < 128 {
		return
	}
	p.opsSinceHist = 0

	occ := p.windowLen()
	bucket := occ * (len(p.C.ROB.OccDist) - 1) / p.cfg.ROBEntries
	if bucket >= len(p.C.ROB.OccDist) {
		bucket = len(p.C.ROB.OccDist) - 1
	}
	p.C.ROB.OccDist[bucket].Inc()

	inIQ := 0
	for i := p.head; i < len(p.window); i++ {
		if p.window[i].done > p.cycle {
			inIQ++
		}
	}
	ib := inIQ * (len(p.C.IQ.OccDist) - 1) / 64
	if ib >= len(p.C.IQ.OccDist) {
		ib = len(p.C.IQ.OccDist) - 1
	}
	p.C.IQ.OccDist[ib].Inc()

	lb := clampBucket(p.lq, p.cfg.LQEntries, len(p.C.LSQ.LQOccDist))
	p.C.LSQ.LQOccDist[lb].Inc()
	sb := clampBucket(p.sq, p.cfg.SQEntries, len(p.C.LSQ.SQOccDist))
	p.C.LSQ.SQOccDist[sb].Inc()

	// Rate histograms: instructions per cycle since the last refresh.
	dc := p.cycle - p.lastHistCyc
	di := p.committed - p.lastHistInst
	p.lastHistCyc = p.cycle
	p.lastHistInst = p.committed
	rate := p.cfg.Width
	if dc > 0 {
		r := int(di / dc)
		if r < rate {
			rate = r
		}
	}
	p.C.Fetch.RateDist[rate].Inc()
	p.C.Decode.RateDist[rate].Inc()
	p.C.Rename.RateDist[rate].Inc()
	p.C.IQ.RateDist[rate].Inc()
	p.C.Commit.RateDist[rate].Inc()
}

func clampBucket(v, maxV, buckets int) int {
	if maxV <= 0 {
		return 0
	}
	b := v * (buckets - 1) / maxV
	if b < 0 {
		b = 0
	}
	if b >= buckets {
		b = buckets - 1
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
