package pipeline

import (
	"testing"

	"perspectron/internal/branch"
	"perspectron/internal/cache"
	"perspectron/internal/dram"
	"perspectron/internal/isa"
	"perspectron/internal/stats"
	"perspectron/internal/tlb"
)

// memAdapter adapts the cache hierarchy to the pipeline's MemSystem.
type memAdapter struct{ h *cache.Hierarchy }

func (m memAdapter) FetchInst(pc uint64, cycle uint64) uint64 { return m.h.FetchInst(pc, cycle) }
func (m memAdapter) ReadData(addr uint64, shared bool, cycle uint64) uint64 {
	return m.h.ReadData(addr, shared, cycle)
}
func (m memAdapter) WriteData(addr uint64, cycle uint64) uint64     { return m.h.WriteData(addr, cycle) }
func (m memAdapter) Flush(addr uint64, cycle uint64) (bool, uint64) { return m.h.Flush(addr, cycle) }
func (m memAdapter) ReadLFB(cycle uint64) bool                      { return m.h.L1D.ReadLFB(cycle) }

func newTestPipeline(t *testing.T) (*Pipeline, *cache.Hierarchy, *stats.Registry) {
	t.Helper()
	reg := stats.NewRegistry()
	mem := dram.New(dram.DefaultConfig(), reg)
	h := cache.NewHierarchy(reg, mem)
	bp := branch.New(branch.DefaultConfig(), reg)
	itb := tlb.New(tlb.DefaultConfig(), reg, stats.CompITB, "itb")
	dtb := tlb.New(tlb.DefaultConfig(), reg, stats.CompDTB, "dtb")
	p := New(DefaultConfig(), NewCounters(reg, DefaultConfig().Width))
	p.Mem = memAdapter{h}
	p.BP = bp
	p.ITB = itb
	p.DTB = dtb
	reg.Seal()
	return p, h, reg
}

func plain(pc uint64) isa.Op {
	return isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu, PC: pc}
}

func TestRunCommitsEverything(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	ops := make([]isa.Op, 100)
	for i := range ops {
		ops[i] = plain(0x400000 + uint64(i)*4)
	}
	n := p.Run(isa.NewSliceStream(ops), 0)
	if n != 100 {
		t.Fatalf("committed %d, want 100", n)
	}
	if p.C.Commit.CommittedInsts.Value() != 100 {
		t.Fatalf("committedInsts = %v", p.C.Commit.CommittedInsts.Value())
	}
	if p.C.Commit.OpClass[isa.IntAlu].Value() != 100 {
		t.Fatalf("op class distribution wrong: %v", p.C.Commit.OpClass[isa.IntAlu].Value())
	}
	if p.Cycle() == 0 {
		t.Fatalf("clock did not advance")
	}
}

func TestOnCommitCallback(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	var got uint64
	p.OnCommit = func(n uint64) { got += n }
	ops := []isa.Op{plain(0x1000), plain(0x1004), plain(0x1008)}
	p.Run(isa.NewSliceStream(ops), 0)
	if got != 3 {
		t.Fatalf("OnCommit total = %d", got)
	}
}

func TestMaxInstsStopsEarly(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	i := 0
	stream := isa.FuncStream(func() (isa.Op, bool) {
		i++
		return plain(uint64(i) * 4), true
	})
	n := p.Run(stream, 50)
	if n != 50 {
		t.Fatalf("committed %d, want 50", n)
	}
}

func TestMispredictedBranchRunsTransient(t *testing.T) {
	p, h, _ := newTestPipeline(t)
	var ops []isa.Op
	pc := uint64(0x400000)
	// Train the branch taken.
	for i := 0; i < 32; i++ {
		ops = append(ops, isa.Op{Kind: isa.KindBranch, PC: pc, Taken: true, Target: pc + 64})
	}
	// Attack iteration: actual not-taken with a transient gadget that
	// loads a secret-dependent probe line.
	probe := uint64(0x7000000)
	ops = append(ops, isa.Op{
		Kind: isa.KindBranch, PC: pc, Taken: false, Target: pc + 64,
		Transient: []isa.Op{
			{Kind: isa.KindLoad, Addr: 0x6000000},
			{Kind: isa.KindLoad, Addr: probe, DependsOnPrev: true},
		},
	})
	p.Run(isa.NewSliceStream(ops), 0)

	if p.C.IEW.BranchMispredicts.Value() != 1 {
		t.Fatalf("branchMispredicts = %v", p.C.IEW.BranchMispredicts.Value())
	}
	if p.C.LSQ.SquashedLoads.Value() != 2 {
		t.Fatalf("squashedLoads = %v", p.C.LSQ.SquashedLoads.Value())
	}
	if p.C.Fetch.SquashCycles.Value() == 0 || p.C.Commit.SquashedInsts.Value() != 2 {
		t.Fatalf("squash accounting missing: fetchSquash=%v squashedInsts=%v",
			p.C.Fetch.SquashCycles.Value(), p.C.Commit.SquashedInsts.Value())
	}
	// The transient loads must have really filled the cache: the probe
	// line is now present — that is the side channel.
	if !h.L1D.Present(probe) {
		t.Fatalf("transient load did not fill the cache")
	}
}

func TestCorrectBranchNoTransient(t *testing.T) {
	p, h, _ := newTestPipeline(t)
	var ops []isa.Op
	pc := uint64(0x400000)
	for i := 0; i < 64; i++ {
		ops = append(ops, isa.Op{Kind: isa.KindBranch, PC: pc, Taken: true, Target: pc + 64,
			Transient: []isa.Op{{Kind: isa.KindLoad, Addr: 0x9000000}}})
	}
	p.Run(isa.NewSliceStream(ops), 0)
	// After warmup, predictions are correct and the transient body must
	// not run; the gadget line stays cold.
	if h.L1D.Present(0x9000000) && p.C.IEW.BranchMispredicts.Value() == 0 {
		t.Fatalf("transient body ran on correctly predicted branch")
	}
	if p.C.IEW.BranchMispredicts.Value() > 4 {
		t.Fatalf("too many mispredicts on a biased branch: %v", p.C.IEW.BranchMispredicts.Value())
	}
}

func TestMeltdownFaultingLoad(t *testing.T) {
	p, h, _ := newTestPipeline(t)
	probe := uint64(0x8000000)
	ops := []isa.Op{
		plain(0x1000),
		{Kind: isa.KindLoad, PC: 0x1004, Addr: tlb.KernelBase + 0x100,
			Transient: []isa.Op{
				{Kind: isa.KindLoad, Addr: probe, DependsOnPrev: true},
			}},
		plain(0x1008),
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.Commit.Traps.Value() != 1 {
		t.Fatalf("traps = %v", p.C.Commit.Traps.Value())
	}
	if p.C.Fetch.PendingTrapStallCycles.Value() == 0 {
		t.Fatalf("no trap stall cycles")
	}
	if !h.L1D.Present(probe) {
		t.Fatalf("Meltdown transient window did not touch the probe line")
	}
	// All three committed-path ops still commit (the faulting load commits
	// architecturally as the trap point in this model).
	if p.C.Commit.CommittedInsts.Value() != 3 {
		t.Fatalf("committed = %v", p.C.Commit.CommittedInsts.Value())
	}
}

func TestSerializingDrains(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	ops := []isa.Op{
		{Kind: isa.KindLoad, PC: 0x1000, Addr: 0xa000000}, // cold: long latency
		{Kind: isa.KindFence, PC: 0x1004},
		plain(0x1008),
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.Rename.SerializingInsts.Value() != 1 {
		t.Fatalf("serializingInsts = %v", p.C.Rename.SerializingInsts.Value())
	}
	if p.C.Rename.SerializeStallCycles.Value() == 0 {
		t.Fatalf("no serialize stall cycles despite in-flight load")
	}
	if p.C.Commit.NonSpecStalls.Value() == 0 {
		t.Fatalf("no NonSpecStalls")
	}
}

func TestFlushCountsAndSerializes(t *testing.T) {
	p, h, _ := newTestPipeline(t)
	addr := uint64(0xb000000)
	ops := []isa.Op{
		{Kind: isa.KindLoad, PC: 0x1000, Addr: addr},
		{Kind: isa.KindFlush, PC: 0x1004, Addr: addr},
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if h.L1D.Present(addr) {
		t.Fatalf("flush left line present")
	}
	if p.C.Rename.TempSerializingInsts.Value() != 1 {
		t.Fatalf("tempSerializingInsts = %v", p.C.Rename.TempSerializingInsts.Value())
	}
	if h.L1D.C.FlushOps.Value() != 1 {
		t.Fatalf("flush did not reach the cache")
	}
}

func TestQuiesceStalls(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	ops := []isa.Op{
		plain(0x1000),
		{Kind: isa.KindQuiesce, PC: 0x1004, WaitCycles: 500},
		plain(0x1008),
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.Fetch.PendingQuiesceStallCycles.Value() != 500 {
		t.Fatalf("quiesce stall cycles = %v", p.C.Fetch.PendingQuiesceStallCycles.Value())
	}
	if p.Cycle() < 500 {
		t.Fatalf("quiesce did not advance the clock: %d", p.Cycle())
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	ops := []isa.Op{
		{Kind: isa.KindStore, PC: 0x1000, Addr: 0xc000000},
		{Kind: isa.KindLoad, PC: 0x1004, Addr: 0xc000000},
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.LSQ.ForwLoads.Value() != 1 {
		t.Fatalf("forwLoads = %v", p.C.LSQ.ForwLoads.Value())
	}
}

func TestMemOrderViolation(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	// A load that misses (long completion) followed immediately by a store
	// to the same line: the store finds the load completed out of order.
	ops := []isa.Op{
		{Kind: isa.KindLoad, PC: 0x1000, Addr: 0xd000000},
		{Kind: isa.KindStore, PC: 0x1004, Addr: 0xd000000},
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.IEW.MemOrderViolationEvents.Value() != 1 {
		t.Fatalf("memOrderViolationEvents = %v", p.C.IEW.MemOrderViolationEvents.Value())
	}
	if p.C.LSQ.RescheduledLoads.Value() != 1 {
		t.Fatalf("rescheduledLoads = %v", p.C.LSQ.RescheduledLoads.Value())
	}
}

func TestROBBackPressurePropagatesToFetch(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	// A cold (long-latency) load at the window head followed by hundreds of
	// quick independent ops fills the ROB behind it; the back-pressure must
	// appear as fetch MiscStallCycles (the paper's example of a replicated
	// cross-stage feature).
	var ops []isa.Op
	for rep := 0; rep < 10; rep++ {
		ops = append(ops, isa.Op{Kind: isa.KindLoad, PC: 0x1000 + uint64(rep)*4,
			Addr: 0x10000000 + uint64(rep)*1<<20})
		for i := 0; i < 400; i++ {
			cl := isa.IntAlu
			if i%2 == 0 {
				cl = isa.SimdAlu // spread across FU pools so issue keeps up
			}
			ops = append(ops, isa.Op{Kind: isa.KindPlain, Class: cl,
				PC: 0x2000 + uint64(rep*400+i)*4})
		}
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.Rename.ROBFullEvents.Value() == 0 {
		t.Fatalf("no ROB full events on dependent-miss stream")
	}
	if p.C.Fetch.MiscStallCycles.Value() == 0 {
		t.Fatalf("ROB pressure did not propagate to fetch.MiscStallCycles")
	}
}

func TestRetCorrectAfterCall(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	ops := []isa.Op{
		{Kind: isa.KindCall, PC: 0x1000, Target: 0x2000},
		{Kind: isa.KindRet, PC: 0x2004, Target: 0x1004},
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.BP.C.RASIncorrect.Value() != 0 {
		t.Fatalf("balanced call/ret mispredicted")
	}
}

func TestFBReadDoesNotFillCache(t *testing.T) {
	p, h, _ := newTestPipeline(t)
	ops := []isa.Op{
		{Kind: isa.KindLoad, PC: 0x1000, Addr: 0xe000000, FBRead: true},
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if h.L1D.Present(0xe000000) {
		t.Fatalf("fill-buffer read architecturally filled the cache")
	}
	if h.L1D.C.LFBReads.Value() != 1 {
		t.Fatalf("LFB read not counted")
	}
}

func TestHistogramsPopulate(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	ops := make([]isa.Op, 2000)
	for i := range ops {
		ops[i] = plain(uint64(i) * 4)
	}
	p.Run(isa.NewSliceStream(ops), 0)
	var total float64
	for _, c := range p.C.ROB.OccDist {
		total += c.Value()
	}
	if total == 0 {
		t.Fatalf("ROB occupancy histogram never updated")
	}
}

func TestCommittedMapsTrackCommits(t *testing.T) {
	p, _, _ := newTestPipeline(t)
	ops := make([]isa.Op, 64)
	for i := range ops {
		ops[i] = plain(uint64(i) * 4)
	}
	p.Run(isa.NewSliceStream(ops), 0)
	if p.C.Rename.CommittedMaps.Value() != p.C.Commit.CommittedInsts.Value() {
		t.Fatalf("CommittedMaps %v != committedInsts %v",
			p.C.Rename.CommittedMaps.Value(), p.C.Commit.CommittedInsts.Value())
	}
}
