package attacks

import (
	"perspectron/internal/isa"
	"perspectron/internal/workload"
)

// The attacks in this file are deliberately NOT in TrainingSet: the paper
// excludes them (§II footnote 1 excludes "some variants of speculation
// attacks ... and RowHammer attacks"; footnote 5 predicts RowHammer's
// flush-heavy footprint would be caught). They exist to test zero-day
// generalization beyond the paper's own holdouts.

// SpectreV4 returns the speculative-store-bypass attack: a store whose
// address resolves late is speculatively bypassed by a younger load, which
// reads stale (secret) data and transmits it through the channel before the
// memory-order violation replays it.
func SpectreV4(channel string) workload.Program {
	ch := NewChannel(channel)
	return workload.NewLoop(
		workload.Info{Name: "spectreV4-" + ch.Name(), Label: workload.Malicious,
			Category: "spectre_v4", Channel: ch.Name()},
		nil,
		func(b *workload.Builder) {
			ch.Setup(b)
			secret := b.R.Intn(nProbe)
			slot := workload.VictimBase + 0x8000 + uint64(b.Iteration()%16)*64
			// The sanitizing store overwrites the secret, but its address
			// comes off a slow dependency chain.
			b.PlainN(isa.IntAlu, 3) // the slow address computation
			b.Emit(isa.Op{Kind: isa.KindStore, Class: isa.MemWrite,
				Addr: slot, AddrDelayed: true})
			// The younger load bypasses the store, reads the stale secret
			// and transmits it before the replay squashes the window.
			b.Emit(isa.Op{Kind: isa.KindLoad, Class: isa.MemRead, Addr: slot,
				Transient: []isa.Op{
					{Kind: isa.KindLoad, Class: isa.MemRead,
						Addr: ch.TransmitAddr(secret), DependsOnPrev: true},
				}})
			ch.Recover(b)
			b.PlainN(isa.IntAlu, 4)
			b.Branch(siteV1Loop, true)
		},
	)
}

// RowHammer returns a double-sided rowhammer kernel: it alternates loads to
// two aggressor rows of the same DRAM bank with CLFLUSH between accesses so
// every load reaches the array, maximizing the row-activation rate. The
// paper's footnote 5 predicts PerSpectron's flush- and DRAM-derived
// features would flag it; this generator lets the claim be tested.
func RowHammer() workload.Program {
	// Two rows of bank 0: row stride is RowBytes * Banks in line-
	// interleaved addressing (8 KiB rows, 8 banks).
	const rowStride = 8192 * 8
	aggressorA := uint64(workload.DataBase)
	aggressorB := uint64(workload.DataBase + 2*rowStride)
	return workload.NewLoop(
		workload.Info{Name: "rowhammer", Label: workload.Malicious,
			Category: "rowhammer", Channel: ""},
		nil,
		func(b *workload.Builder) {
			for i := 0; i < 16; i++ {
				b.Load(aggressorA)
				b.Load(aggressorB)
				b.Flush(aggressorA)
				b.Flush(aggressorB)
			}
			b.MarkLeak() // one hammer burst completed
			b.Plain(isa.IntAlu)
			b.Branch(siteCalLoop+1, true)
		},
	)
}
