package attacks

import (
	"testing"

	"perspectron/internal/isa"
)

func TestSpectreV4StoreBypassStructure(t *testing.T) {
	ops := drain(SpectreV4("fr"), 600, 1)
	delayed := 0
	bypassLoads := 0
	for i := range ops {
		if ops[i].Kind == isa.KindStore && ops[i].AddrDelayed {
			delayed++
			// The next memory op to the same line must be the bypassing
			// load carrying the transmit gadget.
			for j := i + 1; j < len(ops); j++ {
				if ops[j].Kind == isa.KindLoad && ops[j].Addr == ops[i].Addr {
					if len(ops[j].Transient) == 0 {
						t.Fatalf("bypassing load carries no gadget")
					}
					bypassLoads++
					break
				}
			}
		}
	}
	if delayed == 0 || bypassLoads == 0 {
		t.Fatalf("v4 structure missing: %d delayed stores, %d bypass loads", delayed, bypassLoads)
	}
}

func TestSpectreV4NotInTrainingSet(t *testing.T) {
	for _, p := range TrainingSet() {
		if p.Info().Category == "spectre_v4" || p.Info().Category == "rowhammer" {
			t.Fatalf("%s leaked into the training set", p.Info().Name)
		}
	}
}

func TestRowHammerAlternatesRowsWithFlushes(t *testing.T) {
	ops := drain(RowHammer(), 500, 1)
	loads := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindLoad })
	flushes := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindFlush })
	if loads == 0 || flushes == 0 {
		t.Fatalf("hammer loop incomplete: %d loads %d flushes", loads, flushes)
	}
	// One flush per load: every access must reach the DRAM array.
	if flushes < loads*9/10 {
		t.Fatalf("flush/load ratio too low: %d/%d", flushes, loads)
	}
	// Exactly two aggressor addresses.
	addrs := map[uint64]bool{}
	for i := range ops {
		if ops[i].Kind == isa.KindLoad {
			addrs[ops[i].Addr] = true
		}
	}
	if len(addrs) != 2 {
		t.Fatalf("aggressor addresses = %d, want 2", len(addrs))
	}
}
