package attacks

import "perspectron/internal/workload"

// TrainingSet returns the attacks the paper's base dataset contains, with
// their default disclosure channels (§V Data).
func TrainingSet() []workload.Program {
	return []workload.Program{
		SpectreV1("fr"),
		SpectreV2("fr"),
		SpectreRSB("fr"),
		Meltdown("fr"),
		BreakingKASLR(),
		CacheOut("fr"),
		FlushReload(),
		FlushFlush(),
		PrimeProbe(),
		Calibration("fr"),
		Calibration("ff"),
		Calibration("pp"),
	}
}

// WithChannel returns the named attack re-parameterized on a specific
// disclosure channel; the paper's CV folds pair train/test attacks with
// different channels (§VI-B).
func WithChannel(category, channel string) workload.Program {
	switch category {
	case "spectre_v1":
		return SpectreV1(channel)
	case "spectre_v2":
		return SpectreV2(channel)
	case "spectre_rsb":
		return SpectreRSB(channel)
	case "meltdown":
		return Meltdown(channel)
	case "cacheout":
		return CacheOut(channel)
	case "breaking_kslr":
		return BreakingKASLR()
	case "flush_reload":
		return FlushReload()
	case "flush_flush":
		return FlushFlush()
	case "prime_probe":
		return PrimeProbe()
	default:
		return nil
	}
}

// AllPolymorphic returns the 12 SpectreV1 evasion variants of §VI-A1.
func AllPolymorphic(channel string) []workload.Program {
	out := make([]workload.Program, len(PolyVariants))
	for i := range PolyVariants {
		out[i] = SpectreV1Poly(i, channel)
	}
	return out
}
