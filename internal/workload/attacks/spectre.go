package attacks

import (
	"perspectron/internal/isa"
	"perspectron/internal/tlb"
	"perspectron/internal/workload"
)

// Stable branch-site labels, one per attack code location.
const (
	siteV1Train = iota + 1
	siteV1Loop
	siteV2Branch
	siteRSBCall
	siteRSBRet
	siteMeltLoop
	siteKASLRLoop
	siteCacheOutBr
	siteFRLoop
	siteFFLoop
	sitePPLoop
	siteCalLoop
	siteVictimLoop
	sitePolyExtra
)

// trainIters is the minimum number of in-bounds iterations used to mistrain
// a predictor before each speculation burst. Real PoCs randomize the count
// (trainIters..trainIters+4) so the local-history predictor cannot lock on
// to a periodic train/attack pattern and predict the attack iteration.
const trainIters = 5

// mistrainCount returns this iteration's randomized training length.
func mistrainCount(b *workload.Builder) int {
	return trainIters + b.R.Intn(5)
}

// SpectreV1 returns the bounds-check-bypass attack using the given
// disclosure channel.
func SpectreV1(channel string) workload.Program {
	ch := NewChannel(channel)
	return workload.NewLoop(
		workload.Info{Name: "spectreV1-" + ch.Name(), Label: workload.Malicious,
			Category: "spectre_v1", Channel: ch.Name()},
		nil,
		func(b *workload.Builder) { spectreV1Iter(b, ch, nil) },
	)
}

// spectreV1Iter emits one SpectreV1 iteration. poly optionally transforms
// the emitted skeleton (polymorphic evasion variants).
func spectreV1Iter(b *workload.Builder, ch Channel, poly *polyTransform) {
	if poly != nil {
		poly.preIteration(b)
	}
	ch.Setup(b)

	// Mistrain the bounds-check branch with in-bounds accesses; the count
	// is randomized so the pattern stays unpredictable.
	for i, n := 0, mistrainCount(b); i < n; i++ {
		if poly != nil {
			poly.preCheck(b)
		}
		b.Branch(siteV1Train, true)
		b.Load(workload.DataBase + uint64(i%8)*64)
		b.Plain(isa.IntAlu)
	}

	// Out-of-bounds access: the branch resolves not-taken but is predicted
	// taken; the transient gadget reads the secret and transmits it.
	secret := b.R.Intn(nProbe)
	body := gadget(ch, workload.VictimBase+uint64(secret)*8, secret)
	if poly != nil {
		body = poly.transformGadget(body)
		poly.preCheck(b)
	}
	b.BranchTransient(siteV1Train, false, body)

	ch.Recover(b)
	// Loop-control overhead of the attack's outer loop.
	b.PlainN(isa.IntAlu, 4)
	b.Branch(siteV1Loop, true)
	if poly != nil {
		poly.postIteration(b)
	}
}

// SpectreV2 returns the branch-target-injection attack: an indirect branch
// is mistrained to a gadget address, then the victim's use of the same
// branch speculatively executes the gadget.
func SpectreV2(channel string) workload.Program {
	ch := NewChannel(channel)
	const gadgetAddr = workload.CodeBase + 0x8000
	const victimAddr = workload.CodeBase + 0x9000
	return workload.NewLoop(
		workload.Info{Name: "spectreV2-" + ch.Name(), Label: workload.Malicious,
			Category: "spectre_v2", Channel: ch.Name()},
		nil,
		func(b *workload.Builder) {
			ch.Setup(b)
			// Mistrain the BTB/indirect predictor toward the gadget.
			for i, n := 0, mistrainCount(b); i < n; i++ {
				b.Indirect(siteV2Branch, gadgetAddr, nil)
				b.Plain(isa.IntAlu)
			}
			// Victim context: same indirect branch, real target differs;
			// speculation runs the planted gadget.
			secret := b.R.Intn(nProbe)
			b.Indirect(siteV2Branch, victimAddr,
				gadget(ch, workload.VictimBase+uint64(secret)*8, secret))
			ch.Recover(b)
			b.PlainN(isa.IntAlu, 4)
			b.Branch(siteV1Loop, true)
		},
	)
}

// SpectreRSB returns the return-stack-buffer attack: an unbalanced
// call/return pair redirects speculative control flow to the gadget.
func SpectreRSB(channel string) workload.Program {
	ch := NewChannel(channel)
	const fnAddr = workload.CodeBase + 0xa000
	const hijack = workload.CodeBase + 0xb000
	return workload.NewLoop(
		workload.Info{Name: "spectreRSB-" + ch.Name(), Label: workload.Malicious,
			Category: "spectre_rsb", Channel: ch.Name()},
		nil,
		func(b *workload.Builder) {
			ch.Setup(b)
			secret := b.R.Intn(nProbe)
			// Call pushes the return address on the RAS; the attacker then
			// overwrites the architectural return address, so the return
			// mispredicts from the RAS and speculatively runs the gadget.
			b.Call(siteRSBCall, fnAddr)
			b.PlainN(isa.IntAlu, 3)
			b.Store(workload.DataBase + 0x100) // smash the stack slot
			b.Ret(siteRSBRet, hijack,
				gadget(ch, workload.VictimBase+uint64(secret)*8, secret))
			ch.Recover(b)
			b.PlainN(isa.IntAlu, 4)
			b.Branch(siteV1Loop, true)
		},
	)
}

// Meltdown returns the deferred-permission-fault attack reading kernel
// memory.
func Meltdown(channel string) workload.Program {
	ch := NewChannel(channel)
	return workload.NewLoop(
		workload.Info{Name: "meltdown-" + ch.Name(), Label: workload.Malicious,
			Category: "meltdown", Channel: ch.Name()},
		nil,
		func(b *workload.Builder) {
			ch.Setup(b)
			secret := b.R.Intn(nProbe)
			// The kernel load permission-faults at commit; the transient
			// window transmits through the channel first.
			b.FaultingLoad(tlb.KernelBase+uint64(b.Iteration()%4096)*8,
				[]isa.Op{{Kind: isa.KindLoad, Class: isa.MemRead,
					Addr: ch.TransmitAddr(secret), DependsOnPrev: true}})
			// Signal-handler recovery after the trap.
			b.PlainN(isa.IntAlu, 12)
			ch.Recover(b)
			b.Branch(siteMeltLoop, true)
		},
	)
}

// BreakingKASLR returns the Meltdown-based KASLR break: it sweeps candidate
// kernel addresses, distinguishing mapped (permission fault) from unmapped
// (page fault) pages by fault/TLB behaviour.
func BreakingKASLR() workload.Program {
	return workload.NewLoop(
		workload.Info{Name: "breakingKSLR", Label: workload.Malicious,
			Category: "breaking_kslr", Channel: "fr"},
		nil,
		func(b *workload.Builder) {
			step := uint64(b.Iteration()) * (2 << 20) // 2 MiB stride sweep
			var addr uint64
			if b.Iteration()%16 == 0 {
				addr = tlb.KernelBase + step%(1<<30) // a mapped kernel page
			} else {
				addr = tlb.Unmapped + step%(1<<30) // unmapped candidate
			}
			b.FaultingLoad(addr, nil)
			b.PlainN(isa.IntAlu, 10) // fault-handler recovery
			b.TimedLoad(workload.DataBase+0x40, false)
			if b.Iteration()%16 == 0 {
				b.MarkLeak() // located a mapped region
			}
			b.Branch(siteKASLRLoop, true)
		},
	)
}

// CacheOut returns the MDS/L1D-eviction attack: victim data is pushed
// through the line fill buffer by conflict evictions, sampled by a transient
// fill-buffer read, and disclosed through the channel.
func CacheOut(channel string) workload.Program {
	ch := NewChannel(channel)
	return workload.NewLoop(
		workload.Info{Name: "cacheOut-" + ch.Name(), Label: workload.Malicious,
			Category: "cacheout", Channel: ch.Name()},
		nil,
		func(b *workload.Builder) {
			ch.Setup(b)
			// Evict the victim's L1D set so its line transits the fill
			// buffer on the victim's next access.
			for w := 0; w < 9; w++ {
				b.Load(workload.DataBase + uint64(w)*128*64)
			}
			// Victim touches its data (refill through the LFB).
			b.LoadShared(workload.SharedBase + uint64(b.Iteration()%8)*64)
			// Mistrained branch opens the transient window; the gadget
			// samples the fill buffer and transmits.
			for i, n := 0, mistrainCount(b); i < n; i++ {
				b.Branch(siteCacheOutBr, true)
				b.Plain(isa.IntAlu)
			}
			secret := b.R.Intn(nProbe)
			b.BranchTransient(siteCacheOutBr, false, []isa.Op{
				{Kind: isa.KindLoad, Class: isa.MemRead, Addr: workload.DataBase, FBRead: true},
				{Kind: isa.KindLoad, Class: isa.MemRead,
					Addr: ch.TransmitAddr(secret), DependsOnPrev: true},
			})
			ch.Recover(b)
			b.Branch(siteV1Loop, true)
		},
	)
}
