// Package attacks implements phase-structured generators for every attack
// the paper trains on or holds out: SpectreV1, SpectreV2, SpectreRSB,
// Meltdown, breakingKASLR, CacheOut, Flush+Flush, Flush+Reload, Prime+Probe
// and the cache-attack calibration loops, plus the polymorphic-evasion
// transforms of §VI-A1 and the bandwidth-reduction wrapper of §VI-A2.
//
// Each generator reproduces the documented microarchitectural mechanism of
// its attack — mistraining a predictor structure, deferring a permission
// fault, flushing shared lines — so the counter footprints arise from the
// simulated hardware, not from the labels.
package attacks

import (
	"perspectron/internal/isa"
	"perspectron/internal/workload"
)

// nProbe is the number of probe-array entries monitored per iteration (one
// per possible secret value; 64 keeps iterations compact while preserving
// the transmit/recover structure).
const nProbe = 64

// Channel is a cache disclosure channel used by the speculative attacks to
// transmit and recover the secret: Flush+Reload ("fr"), Flush+Flush ("ff")
// or Prime+Probe ("pp"). The paper's cross-validation deliberately pairs
// attacks with different channels across folds (§VI-B).
type Channel interface {
	Name() string
	// Setup places the channel into its initial state (flush lines, prime
	// sets) before the speculation phase.
	Setup(b *workload.Builder)
	// TransmitAddr returns the address the transient gadget touches to
	// encode the secret value.
	TransmitAddr(secret int) uint64
	// Recover reads the channel back (timed loads, flushes or probes) and
	// marks the leak point.
	Recover(b *workload.Builder)
}

// FRChannel is a Flush+Reload channel over the attacker's probe array.
type FRChannel struct{ Base uint64 }

// NewFRChannel returns a Flush+Reload channel at the default probe base.
func NewFRChannel() *FRChannel { return &FRChannel{Base: workload.ProbeBase} }

// Name implements Channel.
func (c *FRChannel) Name() string { return "fr" }

// Setup flushes every probe line.
func (c *FRChannel) Setup(b *workload.Builder) {
	for i := 0; i < nProbe; i++ {
		b.Flush(c.Base + uint64(i)*workload.ProbeStride)
	}
}

// TransmitAddr implements Channel.
func (c *FRChannel) TransmitAddr(secret int) uint64 {
	return c.Base + uint64(secret)*workload.ProbeStride
}

// Recover reloads every probe line with timing fences.
func (c *FRChannel) Recover(b *workload.Builder) {
	for i := 0; i < nProbe; i++ {
		b.TimedLoad(c.Base+uint64(i)*workload.ProbeStride, false)
	}
	b.MarkLeak()
}

// FFChannel is a Flush+Flush channel: recovery times the flush itself.
type FFChannel struct{ Base uint64 }

// NewFFChannel returns a Flush+Flush channel at the default probe base.
func NewFFChannel() *FFChannel { return &FFChannel{Base: workload.ProbeBase} }

// Name implements Channel.
func (c *FFChannel) Name() string { return "ff" }

// Setup flushes every probe line.
func (c *FFChannel) Setup(b *workload.Builder) {
	for i := 0; i < nProbe; i++ {
		b.Flush(c.Base + uint64(i)*workload.ProbeStride)
	}
}

// TransmitAddr implements Channel.
func (c *FFChannel) TransmitAddr(secret int) uint64 {
	return c.Base + uint64(secret)*workload.ProbeStride
}

// Recover times a flush of every probe line (no loads, no attacker misses —
// the stealth property the paper highlights).
func (c *FFChannel) Recover(b *workload.Builder) {
	for i := 0; i < nProbe; i++ {
		b.TimedFlush(c.Base + uint64(i)*workload.ProbeStride)
	}
	b.MarkLeak()
}

// PPChannel is a Prime+Probe channel over L1D sets: no flushes and no shared
// memory.
type PPChannel struct {
	Base     uint64
	Sets     int // number of monitored sets
	Ways     int // lines per set to prime
	SetCount int // total L1D sets (stride derivation)
}

// NewPPChannel returns a Prime+Probe channel matched to the Table II L1D
// (128 sets, 8 ways).
func NewPPChannel() *PPChannel {
	return &PPChannel{Base: workload.ProbeBase, Sets: 16, Ways: 8, SetCount: 128}
}

func (c *PPChannel) lineAddr(set, way int) uint64 {
	return c.Base + uint64(set)*64 + uint64(way)*uint64(c.SetCount)*64
}

// Name implements Channel.
func (c *PPChannel) Name() string { return "pp" }

// Setup primes the monitored sets with the attacker's own lines.
func (c *PPChannel) Setup(b *workload.Builder) {
	for s := 0; s < c.Sets; s++ {
		for w := 0; w < c.Ways; w++ {
			b.Load(c.lineAddr(s, w))
		}
	}
}

// TransmitAddr maps the secret onto a victim line that conflicts with one of
// the primed sets, evicting the attacker's line there.
func (c *PPChannel) TransmitAddr(secret int) uint64 {
	set := secret % c.Sets
	return workload.VictimBase + uint64(set)*64 + uint64(c.SetCount)*64*9
}

// Recover probes the primed sets with timed loads.
func (c *PPChannel) Recover(b *workload.Builder) {
	for s := 0; s < c.Sets; s++ {
		for w := 0; w < c.Ways; w++ {
			b.TimedLoad(c.lineAddr(s, w), false)
		}
	}
	b.MarkLeak()
}

// NewChannel returns the channel with the given name ("fr", "ff" or "pp").
func NewChannel(name string) Channel {
	switch name {
	case "ff":
		return NewFFChannel()
	case "pp":
		return NewPPChannel()
	default:
		return NewFRChannel()
	}
}

// gadget builds the canonical two-load disclosure gadget: the secret access
// followed by the secret-dependent transmit access.
func gadget(ch Channel, secretAddr uint64, secret int) []isa.Op {
	return []isa.Op{
		{Kind: isa.KindLoad, Class: isa.MemRead, Addr: secretAddr},
		{Kind: isa.KindLoad, Class: isa.MemRead, Addr: ch.TransmitAddr(secret), DependsOnPrev: true},
	}
}
