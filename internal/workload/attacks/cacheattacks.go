package attacks

import (
	"perspectron/internal/isa"
	"perspectron/internal/workload"
)

// nMonitored is the number of shared lines a standalone cache attack
// monitors.
const nMonitored = 32

// victimWait is the quiesce duration of the wait-for-victim phase, in
// cycles.
const victimWait = 600

// sharedLine returns the i'th monitored shared-library line.
func sharedLine(i int) uint64 {
	return workload.SharedBase + uint64(i)*workload.ProbeStride
}

// victimActivity simulates the victim process touching a random subset of
// the monitored shared lines while the attacker waits.
func victimActivity(b *workload.Builder) {
	n := 1 + b.R.Intn(4)
	for i := 0; i < n; i++ {
		b.LoadShared(sharedLine(b.R.Intn(nMonitored)))
		b.Plain(isa.IntAlu)
		b.Branch(siteVictimLoop, true)
	}
}

// FlushReload returns the standalone Flush+Reload attack on shared library
// pages.
func FlushReload() workload.Program {
	return workload.NewLoop(
		workload.Info{Name: "flush+reload", Label: workload.Malicious,
			Category: "flush_reload", Channel: "fr"},
		nil,
		func(b *workload.Builder) {
			// Flush phase.
			for i := 0; i < nMonitored; i++ {
				b.Flush(sharedLine(i))
			}
			// Wait for the victim (quiesce) — the attacker's pipeline goes
			// idle while the victim runs.
			b.Quiesce(victimWait)
			victimActivity(b)
			// Reload phase: timed loads of every monitored line.
			for i := 0; i < nMonitored; i++ {
				b.TimedLoad(sharedLine(i), true)
			}
			b.MarkLeak()
			b.PlainN(isa.IntAlu, 4)
			b.Branch(siteFRLoop, true)
		},
	)
}

// FlushFlush returns the stealthy Flush+Flush attack: the attacker issues
// no loads and takes no cache misses of its own; the signal is the flush
// instruction's own latency.
func FlushFlush() workload.Program {
	return workload.NewLoop(
		workload.Info{Name: "flush+flush", Label: workload.Malicious,
			Category: "flush_flush", Channel: "ff"},
		nil,
		func(b *workload.Builder) {
			// The timed flush both probes and resets each line.
			for i := 0; i < nMonitored; i++ {
				b.TimedFlush(sharedLine(i))
			}
			b.MarkLeak()
			b.Quiesce(victimWait)
			victimActivity(b)
			b.PlainN(isa.IntAlu, 4)
			b.Branch(siteFFLoop, true)
		},
	)
}

// PrimeProbe returns the standalone Prime+Probe attack on L1D sets: no
// flush instructions and no shared memory, only conflict evictions.
func PrimeProbe() workload.Program {
	const sets = 16
	const ways = 8
	const setCount = 128 // Table II L1D geometry
	line := func(s, w int) uint64 {
		return workload.DataBase + uint64(s)*64 + uint64(w)*setCount*64
	}
	victimLine := func(s int) uint64 {
		return workload.VictimBase + uint64(s)*64 + setCount*64*11
	}
	return workload.NewLoop(
		workload.Info{Name: "prime+probe", Label: workload.Malicious,
			Category: "prime_probe", Channel: "pp"},
		nil,
		func(b *workload.Builder) {
			// Prime: fill the monitored sets with the attacker's lines.
			for s := 0; s < sets; s++ {
				for w := 0; w < ways; w++ {
					b.Load(line(s, w))
				}
			}
			b.Quiesce(victimWait)
			// Victim evicts attacker lines from a few sets.
			n := 1 + b.R.Intn(3)
			for i := 0; i < n; i++ {
				b.Load(victimLine(b.R.Intn(sets)))
				b.Branch(siteVictimLoop, true)
			}
			// Probe: timed reloads observe the evictions.
			for s := 0; s < sets; s++ {
				for w := 0; w < ways; w++ {
					b.TimedLoad(line(s, w), false)
				}
			}
			b.MarkLeak()
			b.PlainN(isa.IntAlu, 4)
			b.Branch(sitePPLoop, true)
		},
	)
}

// Calibration returns the threshold-calibration loop for the given cache
// attack technique ("fr", "ff" or "pp"): the profiling phase that times
// cache hits versus misses, which the paper also labels suspicious.
func Calibration(kind string) workload.Program {
	info := workload.Info{Name: "calibration-" + kind, Label: workload.Malicious,
		Category: "calibration_" + kind, Channel: kind}
	target := uint64(workload.DataBase + 0x2000)
	switch kind {
	case "ff":
		return workload.NewLoop(info, nil, func(b *workload.Builder) {
			b.Load(target)          // line cached
			b.TimedFlush(target)    // slow flush (present)
			b.TimedFlush(target)    // fast flush (absent)
			b.PlainN(isa.IntAlu, 6) // histogram bookkeeping
			b.Branch(siteCalLoop, true)
		})
	case "pp":
		const setCount = 128
		return workload.NewLoop(info, nil, func(b *workload.Builder) {
			b.Load(target)
			b.TimedLoad(target, false) // hit timing
			for w := 1; w <= 8; w++ {  // evict via conflicts
				b.Load(target + uint64(w)*setCount*64)
			}
			b.TimedLoad(target, false) // miss timing
			b.PlainN(isa.IntAlu, 6)
			b.Branch(siteCalLoop, true)
		})
	default: // "fr"
		return workload.NewLoop(info, nil, func(b *workload.Builder) {
			b.Load(target)
			b.TimedLoad(target, false) // hit timing
			b.Flush(target)
			b.TimedLoad(target, false) // miss timing
			b.PlainN(isa.IntAlu, 6)
			b.Branch(siteCalLoop, true)
		})
	}
}
