package attacks

import (
	"math/rand"
	"testing"

	"perspectron/internal/isa"
	"perspectron/internal/workload"
)

// drain pulls n ops from a fresh stream of p.
func drain(p workload.Program, n int, seed int64) []isa.Op {
	s := p.Stream(rand.New(rand.NewSource(seed)))
	var out []isa.Op
	for i := 0; i < n; i++ {
		op, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, op)
	}
	return out
}

func count(ops []isa.Op, pred func(*isa.Op) bool) int {
	n := 0
	for i := range ops {
		if pred(&ops[i]) {
			n++
		}
	}
	return n
}

func TestTrainingSetComplete(t *testing.T) {
	set := TrainingSet()
	if len(set) != 12 {
		t.Fatalf("training set = %d programs", len(set))
	}
	seen := map[string]bool{}
	for _, p := range set {
		info := p.Info()
		if info.Label != workload.Malicious {
			t.Fatalf("%s not labelled malicious", info.Name)
		}
		if seen[info.Name] {
			t.Fatalf("duplicate program %s", info.Name)
		}
		seen[info.Name] = true
	}
}

func TestWithChannelVariants(t *testing.T) {
	for _, cat := range []string{"spectre_v1", "spectre_v2", "spectre_rsb", "meltdown", "cacheout"} {
		for _, ch := range []string{"fr", "ff", "pp"} {
			p := WithChannel(cat, ch)
			if p == nil {
				t.Fatalf("WithChannel(%s,%s) nil", cat, ch)
			}
			if p.Info().Channel != ch {
				t.Fatalf("channel not propagated for %s", cat)
			}
		}
	}
	if WithChannel("bogus", "fr") != nil {
		t.Fatalf("bogus category accepted")
	}
}

func TestSpectreV1PhaseStructure(t *testing.T) {
	ops := drain(SpectreV1("fr"), 600, 1)
	flushes := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindFlush })
	if flushes < nProbe {
		t.Fatalf("setup flushed %d lines, want >= %d", flushes, nProbe)
	}
	// Exactly one op per iteration carries the disclosure gadget.
	gadgets := count(ops, func(o *isa.Op) bool {
		return o.Kind == isa.KindBranch && len(o.Transient) >= 2
	})
	if gadgets == 0 {
		t.Fatalf("no transient gadget emitted")
	}
	// The gadget's transmit load must depend on the secret load.
	for i := range ops {
		if len(ops[i].Transient) >= 2 {
			if !ops[i].Transient[1].DependsOnPrev {
				t.Fatalf("transmit load not dependent on secret load")
			}
		}
	}
	// Training branches precede the gadget at the same site.
	trains := count(ops, func(o *isa.Op) bool {
		return o.Kind == isa.KindBranch && o.PC == workload.SitePC(siteV1Train) && o.Taken
	})
	if trains < trainIters {
		t.Fatalf("mistraining iterations = %d", trains)
	}
}

func TestSpectreRSBUnbalancedReturn(t *testing.T) {
	ops := drain(SpectreRSB("fr"), 400, 1)
	rets := 0
	for i := range ops {
		if ops[i].Kind == isa.KindRet {
			rets++
			if len(ops[i].Transient) == 0 {
				t.Fatalf("RSB return carries no gadget")
			}
			// The actual target differs from the pushed return address, so
			// the RAS must mispredict.
			if ops[i].Target == workload.SitePC(siteRSBCall)+4 {
				t.Fatalf("return target matches RAS: no hijack")
			}
		}
	}
	if rets == 0 {
		t.Fatalf("no returns emitted")
	}
}

func TestMeltdownFaultsEveryIteration(t *testing.T) {
	ops := drain(Meltdown("fr"), 800, 1)
	faulting := count(ops, func(o *isa.Op) bool {
		return o.Kind == isa.KindLoad && o.Addr >= 0xffff_8000_0000_0000 && len(o.Transient) > 0
	})
	if faulting < 2 {
		t.Fatalf("kernel faulting loads = %d", faulting)
	}
}

func TestBreakingKASLRMixesMappedUnmapped(t *testing.T) {
	ops := drain(BreakingKASLR(), 2000, 1)
	mapped := count(ops, func(o *isa.Op) bool {
		return o.Kind == isa.KindLoad && o.Addr >= 0xffff_8000_0000_0000 && o.Addr < 0xffff_f000_0000_0000
	})
	unmapped := count(ops, func(o *isa.Op) bool {
		return o.Kind == isa.KindLoad && o.Addr >= 0xffff_f000_0000_0000
	})
	if mapped == 0 || unmapped == 0 {
		t.Fatalf("sweep mix wrong: mapped=%d unmapped=%d", mapped, unmapped)
	}
	if unmapped < mapped*4 {
		t.Fatalf("most probes should be unmapped: mapped=%d unmapped=%d", mapped, unmapped)
	}
}

func TestCacheOutUsesFillBuffer(t *testing.T) {
	ops := drain(CacheOut("fr"), 800, 1)
	fb := 0
	for i := range ops {
		for _, tr := range ops[i].Transient {
			if tr.FBRead {
				fb++
			}
		}
	}
	if fb == 0 {
		t.Fatalf("no fill-buffer reads in transient bodies")
	}
}

func TestFlushReloadMonitorsSharedPages(t *testing.T) {
	ops := drain(FlushReload(), 600, 1)
	shared := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindLoad && o.Shared })
	flushes := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindFlush })
	quiesce := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindQuiesce })
	if shared == 0 || flushes == 0 || quiesce == 0 {
		t.Fatalf("F+R phases missing: shared=%d flush=%d quiesce=%d", shared, flushes, quiesce)
	}
}

func TestFlushFlushIssuesNoPrivateLoads(t *testing.T) {
	ops := drain(FlushFlush(), 600, 1)
	// The attacker's own activity is flushes only; the few loads present
	// are the simulated victim touching *shared* lines.
	privateLoads := count(ops, func(o *isa.Op) bool {
		return o.Kind == isa.KindLoad && !o.Shared
	})
	if privateLoads != 0 {
		t.Fatalf("flush+flush issued %d private loads (must be stealthy)", privateLoads)
	}
	if count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindFlush }) == 0 {
		t.Fatalf("no flushes")
	}
}

func TestPrimeProbeNeverFlushes(t *testing.T) {
	ops := drain(PrimeProbe(), 800, 1)
	if n := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindFlush }); n != 0 {
		t.Fatalf("prime+probe flushed %d lines", n)
	}
	if n := count(ops, func(o *isa.Op) bool { return o.Shared }); n != 0 {
		t.Fatalf("prime+probe touched %d shared lines", n)
	}
	loads := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindLoad })
	if loads < 100 {
		t.Fatalf("prime+probe loads = %d", loads)
	}
}

func TestPPChannelPrimesWholeSets(t *testing.T) {
	c := NewPPChannel()
	// All ways of a set map to the same L1D set index.
	set0 := c.lineAddr(0, 0) / 64 % uint64(c.SetCount)
	for w := 1; w < c.Ways; w++ {
		if c.lineAddr(0, w)/64%uint64(c.SetCount) != set0 {
			t.Fatalf("way %d maps to a different set", w)
		}
	}
	// TransmitAddr conflicts with a primed set.
	addr := c.TransmitAddr(3)
	if addr/64%uint64(c.SetCount) != uint64(3%c.Sets) {
		t.Fatalf("transmit address does not conflict with the monitored set")
	}
}

func TestCalibrationKinds(t *testing.T) {
	for _, kind := range []string{"fr", "ff", "pp"} {
		p := Calibration(kind)
		if p.Info().Label != workload.Malicious {
			t.Fatalf("calibration-%s not malicious", kind)
		}
		ops := drain(p, 200, 1)
		if len(ops) == 0 {
			t.Fatalf("calibration-%s emitted nothing", kind)
		}
		flushes := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindFlush })
		if kind == "pp" && flushes != 0 {
			t.Fatalf("calibration-pp flushed")
		}
		if kind != "pp" && flushes == 0 {
			t.Fatalf("calibration-%s never flushed", kind)
		}
	}
}

func TestPolymorphicVariantsDistinct(t *testing.T) {
	if len(PolyVariants) != 12 {
		t.Fatalf("poly variants = %d", len(PolyVariants))
	}
	base := drain(SpectreV1("fr"), 500, 1)
	baseN := len(base)
	for v := 0; v < 12; v++ {
		p := SpectreV1Poly(v, "fr")
		if p.Info().Category != "spectre_v1_poly" {
			t.Fatalf("variant %d category %s", v, p.Info().Category)
		}
		ops := drain(p, 500, 1)
		// Variants keep the attack skeleton: still flush, still carry a
		// gadget.
		if count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindFlush }) == 0 {
			t.Fatalf("variant %d lost the channel setup", v)
		}
		gadgets := count(ops, func(o *isa.Op) bool { return len(o.Transient) >= 2 })
		if gadgets == 0 {
			t.Fatalf("variant %d lost the gadget", v)
		}
		_ = baseN
	}
}

func TestLeakFrequencyPreservedAcrossVariants(t *testing.T) {
	// Fig. 3's setup: same leakage frequency across variants. Compare leak
	// mark spacing between the base attack and a variant with extra code.
	leakGap := func(p workload.Program) float64 {
		s := p.Stream(rand.New(rand.NewSource(2))).(*workload.LoopStream)
		for i := 0; i < 5000; i++ {
			s.Next()
		}
		marks := s.LeakMarks()
		if len(marks) < 2 {
			t.Fatalf("%s: not enough leaks", p.Info().Name)
		}
		return float64(marks[len(marks)-1]-marks[0]) / float64(len(marks)-1)
	}
	base := leakGap(SpectreV1("fr"))
	variant := leakGap(SpectreV1Poly(1, "fr"))
	if variant < base*0.8 || variant > base*1.5 {
		t.Fatalf("leak frequency drifted: base gap %.0f vs variant %.0f", base, variant)
	}
}

func TestBandwidthReductionStretchesLeaks(t *testing.T) {
	// Long-run leak rate: leaks per emitted op. The bursty wrapper keeps
	// per-burst cadence but the duty cycle drops to the factor.
	rate := func(p workload.Program, n int) float64 {
		s := p.Stream(rand.New(rand.NewSource(3))).(*workload.LoopStream)
		for i := 0; i < n; i++ {
			s.Next()
		}
		marks := s.LeakMarks()
		if len(marks) < 2 {
			t.Fatalf("not enough leaks")
		}
		return float64(len(marks)) / float64(s.Emitted())
	}
	full := rate(SpectreV1("fr"), 50_000)
	quarter := rate(Bandwidth(SpectreV1("fr"), 0.25), 200_000)
	ratio := full / quarter
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("0.25x leak-rate ratio = %.2f, want ~4", ratio)
	}
}

func TestBandwidthBurstsAreFullRate(t *testing.T) {
	// Inside a burst the attack runs unmodified: the first half-burst's ops
	// must be as flush-dense as the unmodified attack.
	n := bandwidthBurstIters * 300
	bw := drain(Bandwidth(SpectreV1("fr"), 0.25), n, 4)
	full := drain(SpectreV1("fr"), n, 4)
	isFlush := func(o *isa.Op) bool { return o.Kind == isa.KindFlush }
	if bwf, ff := count(bw, isFlush), count(full, isFlush); bwf < ff*8/10 {
		t.Fatalf("burst not full rate: %d flushes vs %d unmodified", bwf, ff)
	}
}

func TestBandwidthBurstSpansSamplingIntervals(t *testing.T) {
	// The burst must exceed the 10K-instruction sampling interval so some
	// samples see pure full-rate attack activity.
	p := Bandwidth(SpectreV1("fr"), 0.5)
	s := p.Stream(rand.New(rand.NewSource(5))).(*workload.LoopStream)
	s.Next() // force the first iteration to generate
	burst := len(s.LeakMarks())
	_ = burst
	// Count ops until the first filler run (a long stretch without leaks):
	// the first bandwidthBurstIters leak marks must all land within the
	// burst, i.e. before any filler ops are interleaved.
	for i := 0; i < 40000; i++ {
		s.Next()
	}
	marks := s.LeakMarks()
	if len(marks) < bandwidthBurstIters {
		t.Fatalf("only %d leaks in 40K ops", len(marks))
	}
	burstLen := marks[bandwidthBurstIters-1]
	if burstLen < 12_000 {
		t.Fatalf("burst spans only %d ops; must exceed the 10K sampling interval", burstLen)
	}
}

func TestBandwidthIdentityAtFullRate(t *testing.T) {
	p := SpectreV1("fr")
	if Bandwidth(p, 1.0) != p {
		t.Fatalf("factor 1.0 should return the original program")
	}
}

func TestChannelsByName(t *testing.T) {
	for _, name := range []string{"fr", "ff", "pp"} {
		if NewChannel(name).Name() != name {
			t.Fatalf("channel %s misnamed", name)
		}
	}
	if NewChannel("unknown").Name() != "fr" {
		t.Fatalf("default channel should be fr")
	}
}

func TestDeterministicStreams(t *testing.T) {
	a := drain(SpectreV1("fr"), 300, 42)
	b := drain(SpectreV1("fr"), 300, 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Addr != b[i].Addr || a[i].PC != b[i].PC {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}
