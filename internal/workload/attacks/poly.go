package attacks

import (
	"fmt"

	"perspectron/internal/isa"
	"perspectron/internal/workload"
)

// polyTransform describes one polymorphic SpectreV1 variant from §VI-A1.
// Each transform perturbs the committed-path instruction mix (defeating
// signature and instruction-distribution detectors) while leaving the
// microarchitectural attack mechanism — mistrain, transient leak, recover —
// intact and at the same leakage frequency.
type polyTransform struct {
	name string
	// preIteration / preCheck / postIteration inject committed-path ops at
	// the corresponding skeleton positions.
	preIterationF  func(b *workload.Builder)
	preCheckF      func(b *workload.Builder)
	postIterationF func(b *workload.Builder)
	// gadgetF rewrites the transient body.
	gadgetF func(body []isa.Op) []isa.Op
}

func (p *polyTransform) preIteration(b *workload.Builder) {
	if p.preIterationF != nil {
		p.preIterationF(b)
	}
}

func (p *polyTransform) preCheck(b *workload.Builder) {
	if p.preCheckF != nil {
		p.preCheckF(b)
	}
}

func (p *polyTransform) postIteration(b *workload.Builder) {
	if p.postIterationF != nil {
		p.postIterationF(b)
	}
}

func (p *polyTransform) transformGadget(body []isa.Op) []isa.Op {
	if p.gadgetF != nil {
		return p.gadgetF(body)
	}
	return body
}

// aluN returns a hook emitting n IntAlu ops.
func aluN(n int) func(*workload.Builder) {
	return func(b *workload.Builder) { b.PlainN(isa.IntAlu, n) }
}

// prependTransient prepends extra transient ops to the gadget.
func prependTransient(extra ...isa.Op) func([]isa.Op) []isa.Op {
	return func(body []isa.Op) []isa.Op {
		return append(append([]isa.Op{}, extra...), body...)
	}
}

// PolyVariants lists the 12 source-level transformations of §VI-A1, in the
// paper's order.
var PolyVariants = []string{
	"leak-in-noinline-fn",
	"left-shift-index",
	"x-as-loop-initial",
	"and-mask-bounds",
	"compare-last-good",
	"separate-safety-value",
	"leak-comparison-result",
	"index-sum-of-params",
	"inline-safety-check",
	"invert-low-bits",
	"memcmp-leak",
	"pointer-to-length",
}

// polyTransformFor builds the transform for variant index v (0..11).
func polyTransformFor(v int) *polyTransform {
	name := PolyVariants[v%len(PolyVariants)]
	t := &polyTransform{name: name}
	switch v % len(PolyVariants) {
	case 0: // leak moved to a non-inlined function: call/ret around the leak
		t.preCheckF = func(b *workload.Builder) {
			b.Call(sitePolyExtra, workload.CodeBase+0xc000)
			b.Plain(isa.IntAlu)
			b.Ret(sitePolyExtra+1, workload.SitePC(sitePolyExtra)+4, nil)
		}
	case 1: // left shift by one on the index
		t.preCheckF = aluN(1)
		t.gadgetF = prependTransient(isa.Op{Kind: isa.KindPlain, Class: isa.SimdShift})
	case 2: // use x as the initial value in a for() loop
		t.preIterationF = func(b *workload.Builder) {
			for i := 0; i < 3; i++ {
				b.Plain(isa.IntAlu)
				b.Branch(sitePolyExtra+2, i < 2)
			}
		}
	case 3: // bounds check with an AND mask rather than <
		t.preCheckF = aluN(2)
	case 4: // compare against the last-known good value
		t.preCheckF = func(b *workload.Builder) {
			b.Load(workload.DataBase + 0x3000)
			b.Plain(isa.IntAlu)
		}
	case 5: // separate value communicates the safety check
		t.preCheckF = func(b *workload.Builder) {
			b.Load(workload.DataBase + 0x3040)
			b.Store(workload.DataBase + 0x3080)
		}
	case 6: // leak a comparison result
		t.gadgetF = prependTransient(isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu})
	case 7: // index is the sum of two input parameters
		t.preCheckF = aluN(2)
	case 8: // safety check in an inline function: tighter code
		t.preCheckF = nil // fewer committed ops than baseline
	case 9: // invert the low bits of x
		t.preCheckF = aluN(1)
		t.gadgetF = prependTransient(isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu})
	case 10: // use memcmp() to read the memory for the leak
		t.gadgetF = func(body []isa.Op) []isa.Op {
			out := append([]isa.Op{}, body...)
			for i := 0; i < 3; i++ {
				out = append(out, isa.Op{Kind: isa.KindLoad, Class: isa.MemRead,
					Addr: workload.DataBase + 0x4000 + uint64(i)*64})
			}
			return out
		}
	case 11: // pass a pointer to the length
		t.preCheckF = func(b *workload.Builder) {
			b.Load(workload.DataBase + 0x30c0)
		}
	}
	return t
}

// SpectreV1Poly returns polymorphic variant v (0..11) of SpectreV1, with the
// same channel and leakage frequency as the baseline. These variants were
// never used in feature selection or training — they exist to test evasion
// resilience (Fig. 3).
func SpectreV1Poly(v int, channel string) workload.Program {
	ch := NewChannel(channel)
	t := polyTransformFor(v)
	return workload.NewLoop(
		workload.Info{Name: "spectreV1-poly-" + t.name, Label: workload.Malicious,
			Category: "spectre_v1_poly", Channel: ch.Name()},
		nil,
		func(b *workload.Builder) { spectreV1Iter(b, ch, t) },
	)
}

// bandwidthBurstIters is how many attack iterations run back-to-back before
// the safe-code block. Li & Gaudiot's evasive Spectre (§VI-A2) completes all
// its atomic tasks at full rate and only then goes quiet, so bandwidth
// reduction is bursty: full-rate attack phases separated by safe filler
// whose length sets the duty cycle. The burst (~48 iterations ≈ 14K ops)
// spans multiple 10K-instruction sampling intervals, which is precisely why
// the paper's fine-grained hardware sampler cannot be evaded this way.
const bandwidthBurstIters = 48

// Bandwidth wraps an attack program, reducing its leakage bandwidth to
// factor (0 < factor <= 1): bursts of bandwidthBurstIters unmodified
// iterations are followed by contiguous safe code sized so the long-run
// attack duty cycle is factor (safe code before the priming phase and after
// the disclosure primitive, per §VI-A2). The filler does not touch branch
// history sites or the probe lines.
func Bandwidth(p workload.Program, factor float64) workload.Program {
	if factor >= 1 {
		return p
	}
	lp, ok := p.(*workload.LoopProgram)
	if !ok {
		return p
	}
	info := p.Info()
	info.Name = fmt.Sprintf("%s-bw%.2f", info.Name, factor)
	return workload.NewLoop(info, nil, func(b *workload.Builder) {
		before := len(b.Pending())
		for i := 0; i < bandwidthBurstIters; i++ {
			lp.Iter()(b)
		}
		burstLen := len(b.Pending()) - before
		filler := int(float64(burstLen) * (1 - factor) / factor)
		fillerOps(b, filler)
	})
}

// fillerOps emits n ops of benign-looking filler (integer work, predictable
// branches, small local loads).
func fillerOps(b *workload.Builder, n int) {
	for i := 0; i < n; i++ {
		switch i % 8 {
		case 0:
			b.Load(workload.HeapBase + uint64(b.R.Intn(64))*64)
		case 4:
			b.Branch(sitePolyExtra+3, true) // well-predicted loop branch
		default:
			b.Plain(isa.IntAlu)
		}
	}
}
