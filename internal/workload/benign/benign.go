// Package benign implements SPEC CPU 2006-like synthetic kernels as benign
// workloads. Each kernel stresses a published behavioural profile of its
// namesake — branchy game-tree search (gobmk, sjeng), pointer chasing (mcf,
// astar), compression (bzip2), compilation (gcc), media streaming (h264ref),
// and floating-point science (povray, dealII) — so the benign corpus covers
// the memory-, branch- and interrupt-intensive programs the paper reports
// as false-positive-prone for weaker detectors.
package benign

import (
	"math/rand"

	"perspectron/internal/isa"
	"perspectron/internal/workload"
)

// Benign site labels start high so they never collide with attack sites.
const siteBase = 100

func info(name string) workload.Info {
	return workload.Info{Name: name, Label: workload.Benign, Category: "spec_benign"}
}

// randLine returns a random line-aligned address inside a region of n lines.
func randLine(r *rand.Rand, base uint64, lines int) uint64 {
	return base + uint64(r.Intn(lines))*64
}

// Bzip2 models compression: block-sequential loads/stores with
// data-dependent but learnable branches and heavy integer work.
func Bzip2() workload.Program {
	return workload.NewLoop(info("bzip2"), nil, func(b *workload.Builder) {
		// Stream position derives from the iteration counter so that every
		// Stream() of this Program is independent.
		pos := (uint64(b.Iteration()-1) * 32 * 64) % (1 << 20)
		for i := 0; i < 32; i++ {
			b.Load(workload.HeapBase + pos)
			pos = (pos + 64) % (1 << 20) // 1 MiB working block
			b.PlainN(isa.IntAlu, 5)
			// Huffman-style branch: biased but not constant.
			b.Branch(siteBase+0, b.R.Float64() < 0.8)
			if i%4 == 0 {
				b.Store(workload.HeapBase + (1 << 21) + pos)
			}
		}
		b.Branch(siteBase+1, true)
	})
}

// Gcc models compilation: a large instruction footprint (icache pressure),
// many moderately predictable branches, pointer-rich data structures.
func Gcc() workload.Program {
	return workload.NewLoop(info("gcc"), nil, func(b *workload.Builder) {
		// Jump around a large text segment: distinct PCs stress the
		// icache and BTB.
		fn := uint64(b.R.Intn(256))
		b.Call(siteBase+2, workload.CodeBase+0x100000+fn*0x400)
		for i := 0; i < 24; i++ {
			b.Plain(isa.IntAlu)
			b.Emit(isa.Op{Kind: isa.KindPlain, Class: isa.IntAlu,
				PC: workload.CodeBase + 0x100000 + fn*0x400 + uint64(i)*4})
			if i%3 == 0 {
				b.Load(randLine(b.R, workload.HeapBase, 1<<14))
			}
			b.Branch(siteBase+3+int(fn%8), b.R.Float64() < 0.7)
		}
		b.Ret(siteBase+12, workload.SitePC(siteBase+2)+4, nil)
		if b.R.Intn(8) == 0 {
			b.Store(randLine(b.R, workload.HeapBase+(1<<22), 1<<12))
		}
		// Occasional atomics/barriers from the allocator and GC paths.
		if b.R.Intn(12) == 0 {
			b.Fence()
		}
	})
}

// Mcf models sparse network optimization: long pointer-chasing chains over
// a working set far exceeding the caches — memory-intensive with low IPC.
func Mcf() workload.Program {
	return workload.NewLoop(info("mcf"), nil, func(b *workload.Builder) {
		addr := randLine(b.R, workload.HeapBase, 1<<18) // 16 MiB footprint
		b.Load(addr)
		for i := 0; i < 24; i++ {
			// Each hop depends on the previous load (pointer chase).
			addr = workload.HeapBase + (addr*2654435761)%(1<<24)
			addr &= ^uint64(63)
			b.LoadDep(addr)
			b.PlainN(isa.IntAlu, 2)
			if i%6 == 0 {
				b.Branch(siteBase+13, b.R.Float64() < 0.6)
			}
		}
		b.Store(addr)
		b.Branch(siteBase+14, true)
	})
}

// Gobmk models Go game-tree search: extremely branchy with poorly
// predictable branches — the false-positive-prone workload of Table IV.
func Gobmk() workload.Program {
	return workload.NewLoop(info("gobmk"), nil, func(b *workload.Builder) {
		for i := 0; i < 40; i++ {
			b.PlainN(isa.IntAlu, 3)
			// Data-dependent 50/50 branches across many sites.
			b.Branch(siteBase+20+b.R.Intn(12), b.R.Float64() < 0.5)
			if i%5 == 0 {
				b.Load(randLine(b.R, workload.HeapBase, 1<<12))
			}
			if i%9 == 0 {
				b.Call(siteBase+33, workload.CodeBase+0x20000)
				b.Plain(isa.IntAlu)
				b.Ret(siteBase+34, workload.SitePC(siteBase+33)+4, nil)
			}
		}
	})
}

// Sjeng models chess search: branchy with hash-table probes (scattered
// loads that miss often).
func Sjeng() workload.Program {
	return workload.NewLoop(info("sjeng"), nil, func(b *workload.Builder) {
		for i := 0; i < 32; i++ {
			b.PlainN(isa.IntAlu, 4)
			b.Branch(siteBase+40+b.R.Intn(8), b.R.Float64() < 0.55)
			// Transposition-table probe: wide random footprint.
			b.Load(randLine(b.R, workload.HeapBase+(1<<24), 1<<16))
			if i%7 == 0 {
				b.Store(randLine(b.R, workload.HeapBase+(1<<24), 1<<16))
			}
		}
	})
}

// H264ref models video encoding: streaming SIMD loads/stores with regular
// access patterns and high memory bandwidth.
func H264ref() workload.Program {
	return workload.NewLoop(info("h264ref"), nil, func(b *workload.Builder) {
		frame := uint64(b.Iteration() - 1)
		base := workload.HeapBase + (frame%16)*(1<<18)
		for mb := 0; mb < 16; mb++ {
			for i := 0; i < 8; i++ {
				b.Emit(isa.Op{Kind: isa.KindLoad, Class: isa.FloatMemRead,
					Addr: base + uint64(mb)*1024 + uint64(i)*64})
				b.Plain(isa.SimdAdd)
				b.Plain(isa.SimdMult)
			}
			b.Emit(isa.Op{Kind: isa.KindStore, Class: isa.FloatMemWrite,
				Addr: base + (1 << 17) + uint64(mb)*64})
			b.Branch(siteBase+50, mb < 15)
		}
		// Frame-boundary synchronization barrier.
		b.Fence()
	})
}

// Povray models ray tracing: floating-point dominated with moderate memory
// traffic and recursion (RAS activity).
func Povray() workload.Program {
	return workload.NewLoop(info("povray"), nil, func(b *workload.Builder) {
		depth := 1 + b.R.Intn(4)
		for d := 0; d < depth; d++ {
			b.Call(siteBase+60+d, workload.CodeBase+0x30000+uint64(d)*0x100)
			b.Plain(isa.FloatMult)
			b.Plain(isa.FloatAdd)
			b.Plain(isa.FloatMult)
			b.Plain(isa.FloatDiv)
			b.Load(randLine(b.R, workload.HeapBase, 1<<10))
			b.Branch(siteBase+70, b.R.Float64() < 0.75)
		}
		for d := depth - 1; d >= 0; d-- {
			b.Ret(siteBase+80+d, workload.SitePC(siteBase+60+d)+4, nil)
		}
		b.Plain(isa.FloatSqrt)
	})
}

// DealII models finite-element analysis: dense floating point over large
// streaming matrices.
func DealII() workload.Program {
	return workload.NewLoop(info("dealII"), nil, func(b *workload.Builder) {
		row := uint64(b.Iteration() - 1)
		base := workload.HeapBase + (row%512)*(1<<13)
		for i := 0; i < 24; i++ {
			b.Emit(isa.Op{Kind: isa.KindLoad, Class: isa.FloatMemRead,
				Addr: base + uint64(i)*64})
			b.Plain(isa.FloatMult)
			b.Plain(isa.FloatAdd)
			if i%8 == 7 {
				b.Emit(isa.Op{Kind: isa.KindStore, Class: isa.FloatMemWrite,
					Addr: base + (1 << 22) + uint64(i)*64})
			}
		}
		b.Branch(siteBase+90, true)
	})
}

// Astar models path-finding: pointer chasing over a graph with
// data-dependent branches.
func Astar() workload.Program {
	return workload.NewLoop(info("astar"), nil, func(b *workload.Builder) {
		addr := randLine(b.R, workload.HeapBase+(1<<25), 1<<15)
		b.Load(addr)
		for i := 0; i < 20; i++ {
			addr = workload.HeapBase + (1 << 25) + (addr*11400714819323198485)%(1<<22)
			addr &= ^uint64(63)
			b.LoadDep(addr)
			b.Plain(isa.IntAlu)
			b.Branch(siteBase+95+(i%4), b.R.Float64() < 0.65)
		}
	})
}

// Libquantum models quantum simulation: very long unit-stride streams that
// hammer DRAM bandwidth (high row-hit locality, big footprints).
func Libquantum() workload.Program {
	return workload.NewLoop(info("libquantum"), nil, func(b *workload.Builder) {
		pos := (uint64(b.Iteration()-1) * 64 * 64) % (1 << 24)
		for i := 0; i < 64; i++ {
			b.Load(workload.HeapBase + (1 << 26) + pos)
			b.Plain(isa.IntAlu)
			b.Store(workload.HeapBase + (1 << 26) + pos)
			pos = (pos + 64) % (1 << 24)
			b.Branch(siteBase+99, i < 63)
		}
		// Checkpoint barrier between gate applications.
		b.Fence()
	})
}

// Perlbench models an interpreter: indirect-branch-heavy dispatch (hard to
// predict), hash lookups and deep call chains — so indirect mispredicts and
// RAS traffic are not attack-exclusive signals.
func Perlbench() workload.Program {
	handlers := make([]uint64, 32)
	for i := range handlers {
		handlers[i] = workload.CodeBase + 0x40000 + uint64(i)*0x200
	}
	return workload.NewLoop(info("perlbench"), nil, func(b *workload.Builder) {
		for i := 0; i < 24; i++ {
			op := b.R.Intn(len(handlers))
			// Dispatch: an indirect jump whose target varies per opcode.
			b.Indirect(siteBase+110, handlers[op], nil)
			b.PlainN(isa.IntAlu, 3)
			b.Load(randLine(b.R, workload.HeapBase+(1<<27), 1<<13))
			if op%6 == 0 {
				b.Call(siteBase+111, workload.CodeBase+0x50000)
				b.Plain(isa.IntAlu)
				b.Ret(siteBase+112, workload.SitePC(siteBase+111)+4, nil)
			}
			b.Branch(siteBase+113, b.R.Float64() < 0.6)
		}
	})
}

// Omnetpp models discrete-event simulation: priority-queue pointer chasing
// with scattered allocation traffic.
func Omnetpp() workload.Program {
	return workload.NewLoop(info("omnetpp"), nil, func(b *workload.Builder) {
		addr := randLine(b.R, workload.HeapBase+(1<<28), 1<<14)
		b.Load(addr)
		for i := 0; i < 12; i++ {
			addr = workload.HeapBase + (1 << 28) + (addr*6364136223846793005)%(1<<21)
			addr &= ^uint64(63)
			b.LoadDep(addr) // heap walk
			b.Plain(isa.IntAlu)
			b.Branch(siteBase+120, b.R.Float64() < 0.7)
		}
		b.Store(randLine(b.R, workload.HeapBase+(1<<28), 1<<14))
		if b.R.Intn(10) == 0 {
			b.Fence() // event-queue synchronization
		}
	})
}

// Namd models molecular dynamics: dense FP with tiled streaming access.
func Namd() workload.Program {
	return workload.NewLoop(info("namd"), nil, func(b *workload.Builder) {
		tile := uint64(b.Iteration() - 1)
		base := workload.HeapBase + (1 << 29) + (tile%64)*(1<<14)
		for i := 0; i < 20; i++ {
			b.Emit(isa.Op{Kind: isa.KindLoad, Class: isa.FloatMemRead,
				Addr: base + uint64(i)*64})
			b.Plain(isa.FloatMult)
			b.Plain(isa.FloatAdd)
			b.Plain(isa.FloatMult)
			b.PlainN(isa.IntAlu, 2) // index arithmetic
			// Cutoff test per pair interaction.
			b.Branch(siteBase+131+(i%3), b.R.Float64() < 0.85)
			if i%10 == 9 {
				b.Plain(isa.FloatSqrt)
				b.Plain(isa.FloatDiv)
			}
		}
		b.Branch(siteBase+130, true)
		if b.R.Intn(16) == 0 {
			b.Store(base + (1 << 13))
		}
	})
}

// Milc models lattice QCD: FP arithmetic over randomly indexed lattice
// sites (low IPC, DRAM-heavy, like the paper's memory-intensive FP codes).
func Milc() workload.Program {
	return workload.NewLoop(info("milc"), nil, func(b *workload.Builder) {
		for i := 0; i < 16; i++ {
			b.Emit(isa.Op{Kind: isa.KindLoad, Class: isa.FloatMemRead,
				Addr: randLine(b.R, workload.HeapBase+(1<<30), 1<<17)})
			b.Plain(isa.FloatMult)
			b.Plain(isa.FloatAdd)
			b.Plain(isa.FloatDiv)
		}
		b.Branch(siteBase+140, true)
	})
}

// Soplex models a simplex LP solver: sparse matrix FP with indirection and
// column scans.
func Soplex() workload.Program {
	return workload.NewLoop(info("soplex"), nil, func(b *workload.Builder) {
		col := randLine(b.R, workload.HeapBase+(1<<31), 1<<12)
		b.Load(col) // column index load
		for i := 0; i < 16; i++ {
			b.LoadDep(workload.HeapBase + (1 << 31) + (col+uint64(i)*4096)%(1<<23))
			b.Plain(isa.FloatMult)
			b.Plain(isa.FloatAdd)
			b.Branch(siteBase+150, b.R.Float64() < 0.8)
		}
		b.Store(col)
	})
}

// Xalancbmk models XML transformation: virtual-call-dominated traversal
// (indirect branches plus deep recursion).
func Xalancbmk() workload.Program {
	vtables := make([]uint64, 8)
	for i := range vtables {
		vtables[i] = workload.CodeBase + 0x60000 + uint64(i)*0x300
	}
	return workload.NewLoop(info("xalancbmk"), nil, func(b *workload.Builder) {
		depth := 1 + b.R.Intn(3)
		for d := 0; d < depth; d++ {
			b.Call(siteBase+160+d, workload.CodeBase+0x70000+uint64(d)*0x100)
			b.Indirect(siteBase+170, vtables[b.R.Intn(len(vtables))], nil)
			b.Load(randLine(b.R, workload.HeapBase+(3<<28), 1<<13))
			b.PlainN(isa.IntAlu, 4)
		}
		for d := depth - 1; d >= 0; d-- {
			b.Ret(siteBase+180+d, workload.SitePC(siteBase+160+d)+4, nil)
		}
		b.Branch(siteBase+190, b.R.Float64() < 0.65)
	})
}

// All returns the full benign corpus.
func All() []workload.Program {
	return []workload.Program{
		Bzip2(), Gcc(), Mcf(), Gobmk(), Sjeng(),
		H264ref(), Povray(), DealII(), Astar(), Libquantum(),
		Perlbench(), Omnetpp(), Namd(), Milc(), Soplex(), Xalancbmk(),
	}
}
