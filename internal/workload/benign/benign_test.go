package benign

import (
	"math/rand"
	"testing"

	"perspectron/internal/isa"
	"perspectron/internal/workload"
)

func drain(p workload.Program, n int, seed int64) []isa.Op {
	s := p.Stream(rand.New(rand.NewSource(seed)))
	var out []isa.Op
	for i := 0; i < n; i++ {
		op, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, op)
	}
	return out
}

func count(ops []isa.Op, pred func(*isa.Op) bool) int {
	n := 0
	for i := range ops {
		if pred(&ops[i]) {
			n++
		}
	}
	return n
}

func frac(ops []isa.Op, pred func(*isa.Op) bool) float64 {
	if len(ops) == 0 {
		return 0
	}
	return float64(count(ops, pred)) / float64(len(ops))
}

func isLoad(o *isa.Op) bool    { return o.Kind == isa.KindLoad }
func isBranch(o *isa.Op) bool  { return o.Kind == isa.KindBranch }
func isControl(o *isa.Op) bool { return o.IsControl() }
func isFloat(o *isa.Op) bool {
	return o.Class >= isa.FloatAdd && o.Class <= isa.SimdFloatMult
}

func TestAllSixteenKernels(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("kernels = %d, want 16", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		info := p.Info()
		if info.Label != workload.Benign {
			t.Fatalf("%s not benign", info.Name)
		}
		if seen[info.Name] {
			t.Fatalf("duplicate kernel %s", info.Name)
		}
		seen[info.Name] = true
		ops := drain(p, 500, 1)
		if len(ops) != 500 {
			t.Fatalf("%s stream ended early (%d ops)", info.Name, len(ops))
		}
	}
}

func TestNoKernelAttacks(t *testing.T) {
	for _, p := range All() {
		ops := drain(p, 2000, 2)
		if n := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindFlush }); n != 0 {
			t.Fatalf("%s flushes (%d)", p.Info().Name, n)
		}
		if n := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindQuiesce }); n != 0 {
			t.Fatalf("%s quiesces (%d)", p.Info().Name, n)
		}
		if n := count(ops, func(o *isa.Op) bool { return len(o.Transient) > 0 }); n != 0 {
			t.Fatalf("%s carries explicit transient gadgets (%d)", p.Info().Name, n)
		}
		if n := count(ops, func(o *isa.Op) bool { return o.Addr >= 0xffff_8000_0000_0000 }); n != 0 {
			t.Fatalf("%s touches kernel space (%d)", p.Info().Name, n)
		}
	}
}

func TestKernelProfiles(t *testing.T) {
	// Each kernel must stress its published axis.
	cases := []struct {
		prog  workload.Program
		check func(t *testing.T, ops []isa.Op)
	}{
		{Gobmk(), func(t *testing.T, ops []isa.Op) {
			if frac(ops, isBranch) < 0.15 {
				t.Fatalf("gobmk branch fraction %.2f too low", frac(ops, isBranch))
			}
		}},
		{Mcf(), func(t *testing.T, ops []isa.Op) {
			dep := count(ops, func(o *isa.Op) bool { return o.DependsOnPrev })
			if dep < 100 {
				t.Fatalf("mcf pointer-chase hops = %d", dep)
			}
		}},
		{Povray(), func(t *testing.T, ops []isa.Op) {
			if frac(ops, isFloat) < 0.2 {
				t.Fatalf("povray FP fraction %.2f too low", frac(ops, isFloat))
			}
		}},
		{Perlbench(), func(t *testing.T, ops []isa.Op) {
			ind := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindIndirect })
			if ind < 20 {
				t.Fatalf("perlbench indirect branches = %d", ind)
			}
		}},
		{Libquantum(), func(t *testing.T, ops []isa.Op) {
			if frac(ops, isLoad) < 0.2 {
				t.Fatalf("libquantum load fraction %.2f too low", frac(ops, isLoad))
			}
		}},
		{H264ref(), func(t *testing.T, ops []isa.Op) {
			simd := count(ops, func(o *isa.Op) bool {
				return o.Class == isa.SimdAdd || o.Class == isa.SimdMult
			})
			if simd < 100 {
				t.Fatalf("h264ref SIMD ops = %d", simd)
			}
		}},
		{Xalancbmk(), func(t *testing.T, ops []isa.Op) {
			calls := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindCall })
			rets := count(ops, func(o *isa.Op) bool { return o.Kind == isa.KindRet })
			if calls == 0 || rets == 0 {
				t.Fatalf("xalancbmk recursion missing: %d calls %d rets", calls, rets)
			}
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.prog.Info().Name, func(t *testing.T) {
			c.check(t, drain(c.prog, 2000, 3))
		})
	}
}

func TestBalancedCallRet(t *testing.T) {
	// Benign call/ret pairs must be balanced (their returns predict
	// correctly on the RAS) for the recursive kernels.
	for _, p := range []workload.Program{Povray(), Gcc(), Xalancbmk(), Gobmk()} {
		ops := drain(p, 3000, 4)
		depth := 0
		minDepth := 0
		for i := range ops {
			switch ops[i].Kind {
			case isa.KindCall:
				depth++
			case isa.KindRet:
				depth--
				if depth < minDepth {
					minDepth = depth
				}
			}
		}
		if minDepth < 0 {
			t.Fatalf("%s pops an empty call stack (min depth %d)", p.Info().Name, minDepth)
		}
	}
}

func TestControlFractionVariety(t *testing.T) {
	// The corpus must cover both branch-light and branch-heavy profiles so
	// no single branch-rate threshold separates benign from attacks.
	var fracs []float64
	for _, p := range All() {
		fracs = append(fracs, frac(drain(p, 2000, 5), isControl))
	}
	lo, hi := fracs[0], fracs[0]
	for _, f := range fracs {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi-lo < 0.1 {
		t.Fatalf("benign control-fraction range too narrow: [%.2f, %.2f]", lo, hi)
	}
}

func TestSeedsChangeBehaviour(t *testing.T) {
	a := drain(Sjeng(), 500, 1)
	b := drain(Sjeng(), 500, 2)
	same := true
	for i := range a {
		if a[i].Addr != b[i].Addr || a[i].Taken != b[i].Taken {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical streams")
	}
}
