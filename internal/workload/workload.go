// Package workload defines the program model run on the simulated machine:
// attack generators (subpackage attacks) and SPEC-like benign kernels
// (subpackage benign) both implement Program. A Program produces a stream of
// committed-path micro-ops; the generators are phase-structured (prime →
// speculate → disclose for attacks; kernel-specific inner loops for benign
// programs) and deterministic given a seed.
package workload

import (
	"math/rand"

	"perspectron/internal/isa"
)

// Label is the ground-truth class of a program.
type Label int

const (
	// Benign marks normal applications.
	Benign Label = iota
	// Malicious marks microarchitectural attacks and their calibration
	// loops (the paper labels calibration programs suspicious too).
	Malicious
)

// String returns "benign" or "malicious".
func (l Label) String() string {
	if l == Malicious {
		return "malicious"
	}
	return "benign"
}

// Info describes a program.
type Info struct {
	Name     string
	Label    Label
	Category string // e.g. "spectre_v1", "flush_reload", "spec_benign"
	Channel  string // disclosure channel for attacks: "fr", "ff", "pp" or ""
}

// Program is a runnable workload.
type Program interface {
	Info() Info
	// Stream returns a fresh op stream; r seeds all data-dependent
	// behaviour so runs are reproducible.
	Stream(r *rand.Rand) isa.Stream
}

// IterFunc generates one iteration of a program's steady-state loop.
type IterFunc func(b *Builder)

// LoopProgram repeats an iteration generator forever (the pipeline's
// maxInsts bounds the run). Most attacks and kernels are natural loops.
type LoopProgram struct {
	info  Info
	setup IterFunc // run once before the first iteration (may be nil)
	iter  IterFunc
}

// NewLoop builds a LoopProgram.
func NewLoop(info Info, setup, iter IterFunc) *LoopProgram {
	return &LoopProgram{info: info, setup: setup, iter: iter}
}

// Info implements Program.
func (p *LoopProgram) Info() Info { return p.info }

// Iter exposes the per-iteration generator so wrappers (e.g. the bandwidth
// reducer) can compose it.
func (p *LoopProgram) Iter() IterFunc { return p.iter }

// Setup exposes the setup generator (may be nil).
func (p *LoopProgram) Setup() IterFunc { return p.setup }

// Stream implements Program. The returned stream is a *LoopStream, which
// additionally reports leak-mark positions for the detection-before-leakage
// experiments.
func (p *LoopProgram) Stream(r *rand.Rand) isa.Stream {
	b := NewBuilder(r)
	if p.setup != nil {
		p.setup(b)
	}
	return &LoopStream{b: b, iter: p.iter}
}

// LoopStream is the op stream of a LoopProgram.
type LoopStream struct {
	b    *Builder
	iter IterFunc
}

// Next implements isa.Stream.
func (s *LoopStream) Next() (isa.Op, bool) {
	b := s.b
	for b.head >= len(b.queue) {
		b.queue = b.queue[:0]
		b.head = 0
		b.iteration++
		s.iter(b)
		if len(b.queue) == 0 {
			return isa.Op{}, false // iteration emitted nothing: end
		}
	}
	op := b.queue[b.head]
	b.head++
	b.emitted++
	return op, true
}

// LeakMarks returns the op indices (0-based positions in the emitted
// stream) at which the program completed a disclosure (recovered a secret).
func (s *LoopStream) LeakMarks() []uint64 { return s.b.LeakMarks }

// Emitted returns the number of ops handed out so far.
func (s *LoopStream) Emitted() uint64 { return s.b.emitted }

// Address-space layout of the synthetic processes. Regions are spread far
// apart so they never alias in the caches by accident.
const (
	CodeBase   = 0x0040_0000 // program text
	DataBase   = 0x1000_0000 // private working data
	ProbeBase  = 0x2000_0000 // attacker probe (F+R transmit) array
	VictimBase = 0x3000_0000 // in-process victim data (SpectreV1 OOB target)
	HeapBase   = 0x4000_0000 // large benign heaps
	SharedBase = 0x7000_0000 // shared library pages (ReadSharedReq traffic)
)

// ProbeStride separates probe-array entries by a page so that each secret
// value maps to a distinct line and set.
const ProbeStride = 4096

// Builder accumulates ops for one iteration. PCs auto-advance; control-flow
// helpers take a stable site label so predictor state is meaningful across
// iterations.
type Builder struct {
	R          *rand.Rand
	queue      []isa.Op
	head       int
	emitted    uint64
	pc         uint64
	iteration  int
	timedCount int

	// LeakMarks records stream positions where a disclosure completed.
	LeakMarks []uint64
}

// NewBuilder returns a Builder emitting code at CodeBase.
func NewBuilder(r *rand.Rand) *Builder {
	return &Builder{R: r, pc: CodeBase}
}

// Iteration returns the 1-based iteration number (0 during setup).
func (b *Builder) Iteration() int { return b.iteration }

// MarkLeak records that the ops emitted so far complete one disclosure: the
// attacker has recovered a secret at this point in the stream.
func (b *Builder) MarkLeak() {
	b.LeakMarks = append(b.LeakMarks, b.emitted+uint64(len(b.queue)-b.head))
}

// Pending returns the ops generated but not yet handed out. Wrappers use it
// to measure how much code an inner generator emitted.
func (b *Builder) Pending() []isa.Op { return b.queue[b.head:] }

// Emit appends a raw op, assigning the next PC if none is set.
func (b *Builder) Emit(op isa.Op) {
	if op.PC == 0 {
		b.pc += 4
		op.PC = b.pc
	}
	b.queue = append(b.queue, op)
}

// SitePC returns the stable PC for a labelled code site.
func SitePC(site int) uint64 { return CodeBase + 0x1000 + uint64(site)*16 }

// Plain emits a computational op of the given class.
func (b *Builder) Plain(class isa.OpClass) {
	b.Emit(isa.Op{Kind: isa.KindPlain, Class: class})
}

// PlainN emits n computational ops of the given class.
func (b *Builder) PlainN(class isa.OpClass, n int) {
	for i := 0; i < n; i++ {
		b.Plain(class)
	}
}

// Load emits a load of addr.
func (b *Builder) Load(addr uint64) {
	b.Emit(isa.Op{Kind: isa.KindLoad, Class: isa.MemRead, Addr: addr})
}

// LoadShared emits a load of a shared page.
func (b *Builder) LoadShared(addr uint64) {
	b.Emit(isa.Op{Kind: isa.KindLoad, Class: isa.MemRead, Addr: addr, Shared: true})
}

// LoadDep emits a load whose address depends on the previous op.
func (b *Builder) LoadDep(addr uint64) {
	b.Emit(isa.Op{Kind: isa.KindLoad, Class: isa.MemRead, Addr: addr, DependsOnPrev: true})
}

// Store emits a store to addr.
func (b *Builder) Store(addr uint64) {
	b.Emit(isa.Op{Kind: isa.KindStore, Class: isa.MemWrite, Addr: addr})
}

// Branch emits a conditional branch at a stable site.
func (b *Builder) Branch(site int, taken bool) {
	pc := SitePC(site)
	b.Emit(isa.Op{Kind: isa.KindBranch, PC: pc, Taken: taken, Target: pc + 64})
}

// BranchTransient emits a conditional branch at a stable site carrying a
// transient (wrong-path) body that executes if the branch mispredicts.
func (b *Builder) BranchTransient(site int, taken bool, body []isa.Op) {
	pc := SitePC(site)
	b.Emit(isa.Op{Kind: isa.KindBranch, PC: pc, Taken: taken, Target: pc + 64,
		Transient: body})
}

// Call emits a call from a stable site to target.
func (b *Builder) Call(site int, target uint64) {
	b.Emit(isa.Op{Kind: isa.KindCall, PC: SitePC(site), Target: target})
}

// Ret emits a return whose actual target is target; if the RAS disagrees the
// transient body executes.
func (b *Builder) Ret(site int, target uint64, body []isa.Op) {
	b.Emit(isa.Op{Kind: isa.KindRet, PC: SitePC(site), Target: target, Transient: body})
}

// Indirect emits an indirect branch at a stable site with the given actual
// target and optional transient body.
func (b *Builder) Indirect(site int, target uint64, body []isa.Op) {
	b.Emit(isa.Op{Kind: isa.KindIndirect, PC: SitePC(site), Target: target, Transient: body})
}

// Flush emits CLFLUSH of addr.
func (b *Builder) Flush(addr uint64) {
	b.Emit(isa.Op{Kind: isa.KindFlush, Addr: addr})
}

// Fence emits a memory fence (the timing bracket of cache attacks).
func (b *Builder) Fence() {
	b.Emit(isa.Op{Kind: isa.KindFence})
}

// Quiesce emits a wait of n cycles (the victim-wait phase).
func (b *Builder) Quiesce(n uint64) {
	b.Emit(isa.Op{Kind: isa.KindQuiesce, WaitCycles: n})
}

// FaultingLoad emits a load of a kernel address carrying a transient body
// (the Meltdown primitive).
func (b *Builder) FaultingLoad(addr uint64, body []isa.Op) {
	b.Emit(isa.Op{Kind: isa.KindLoad, Class: isa.MemRead, Addr: addr, Transient: body})
}

// TimedLoad emits the rdtsc/load/rdtsc sequence attackers use to time one
// access (rdtsc reads model as integer ALU ops; a light lfence brackets
// every eighth probe, as tuned PoCs do).
func (b *Builder) TimedLoad(addr uint64, shared bool) {
	b.Plain(isa.IntAlu) // rdtsc
	b.Emit(isa.Op{Kind: isa.KindLoad, Class: isa.MemRead, Addr: addr, Shared: shared})
	b.Plain(isa.IntAlu) // rdtsc
	b.timedCount++
	if b.timedCount%8 == 0 {
		b.Fence()
	}
}

// TimedFlush emits the rdtsc/clflush/rdtsc sequence Flush+Flush uses to time
// one flush (the flush itself serializes at commit).
func (b *Builder) TimedFlush(addr uint64) {
	b.Plain(isa.IntAlu)
	b.Flush(addr)
	b.Plain(isa.IntAlu)
}
