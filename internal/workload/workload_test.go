package workload

import (
	"math/rand"
	"testing"

	"perspectron/internal/isa"
)

func newB() *Builder { return NewBuilder(rand.New(rand.NewSource(1))) }

func TestBuilderEmitAssignsPCs(t *testing.T) {
	b := newB()
	b.Plain(isa.IntAlu)
	b.Plain(isa.IntAlu)
	if b.queue[0].PC == 0 || b.queue[1].PC == 0 {
		t.Fatalf("auto PCs not assigned")
	}
	if b.queue[0].PC == b.queue[1].PC {
		t.Fatalf("auto PCs not advancing")
	}
}

func TestBuilderBranchStableSite(t *testing.T) {
	b := newB()
	b.Branch(5, true)
	b.Branch(5, false)
	if b.queue[0].PC != b.queue[1].PC {
		t.Fatalf("same site produced different PCs")
	}
	if b.queue[0].PC != SitePC(5) {
		t.Fatalf("site PC mismatch")
	}
}

func TestBuilderMemoryHelpers(t *testing.T) {
	b := newB()
	b.Load(0x100)
	b.LoadShared(0x200)
	b.LoadDep(0x300)
	b.Store(0x400)
	b.Flush(0x500)
	if b.queue[0].Kind != isa.KindLoad || b.queue[0].Addr != 0x100 {
		t.Fatalf("Load wrong")
	}
	if !b.queue[1].Shared {
		t.Fatalf("LoadShared not shared")
	}
	if !b.queue[2].DependsOnPrev {
		t.Fatalf("LoadDep not dependent")
	}
	if b.queue[3].Kind != isa.KindStore {
		t.Fatalf("Store wrong")
	}
	if b.queue[4].Kind != isa.KindFlush {
		t.Fatalf("Flush wrong")
	}
}

func TestTimedLoadBracketsWithRdtsc(t *testing.T) {
	b := newB()
	b.TimedLoad(0x100, false)
	if len(b.queue) < 3 {
		t.Fatalf("timed load too short: %d ops", len(b.queue))
	}
	if b.queue[0].Class != isa.IntAlu || b.queue[2].Class != isa.IntAlu {
		t.Fatalf("timing reads missing")
	}
	if b.queue[1].Kind != isa.KindLoad {
		t.Fatalf("middle op not a load")
	}
	// Every 8th timed access adds an lfence.
	fences := 0
	for i := 0; i < 16; i++ {
		b.TimedLoad(0x200, false)
	}
	for _, op := range b.queue {
		if op.Kind == isa.KindFence {
			fences++
		}
	}
	if fences != 2 {
		t.Fatalf("fences = %d, want 2 for 17 timed loads", fences)
	}
}

func TestFaultingLoadCarriesTransient(t *testing.T) {
	b := newB()
	body := []isa.Op{{Kind: isa.KindLoad, Addr: 0x999}}
	b.FaultingLoad(0xffff800000000000, body)
	op := b.queue[0]
	if len(op.Transient) != 1 || op.Transient[0].Addr != 0x999 {
		t.Fatalf("transient body lost")
	}
}

func TestLoopStreamCycles(t *testing.T) {
	calls := 0
	p := NewLoop(Info{Name: "t", Label: Benign}, nil, func(b *Builder) {
		calls++
		b.Plain(isa.IntAlu)
		b.Plain(isa.IntAlu)
	})
	s := p.Stream(rand.New(rand.NewSource(1)))
	for i := 0; i < 7; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("stream ended early")
		}
	}
	if calls != 4 { // ceil(7/2)
		t.Fatalf("iterations = %d, want 4", calls)
	}
}

func TestLoopStreamSetupRunsFirst(t *testing.T) {
	p := NewLoop(Info{Name: "t"}, func(b *Builder) {
		b.Load(0xAAAA)
	}, func(b *Builder) {
		b.Plain(isa.IntAlu)
	})
	s := p.Stream(rand.New(rand.NewSource(1)))
	op, ok := s.Next()
	if !ok || op.Kind != isa.KindLoad || op.Addr != 0xAAAA {
		t.Fatalf("setup op not first: %+v", op)
	}
}

func TestLoopStreamEmptyIterationEnds(t *testing.T) {
	p := NewLoop(Info{Name: "t"}, nil, func(b *Builder) {})
	s := p.Stream(rand.New(rand.NewSource(1)))
	if _, ok := s.Next(); ok {
		t.Fatalf("empty iteration did not end the stream")
	}
}

func TestLeakMarksPositions(t *testing.T) {
	p := NewLoop(Info{Name: "t", Label: Malicious}, nil, func(b *Builder) {
		b.Plain(isa.IntAlu)
		b.Plain(isa.IntAlu)
		b.MarkLeak()
		b.Plain(isa.IntAlu)
	})
	s := p.Stream(rand.New(rand.NewSource(1))).(*LoopStream)
	for i := 0; i < 6; i++ {
		s.Next()
	}
	marks := s.LeakMarks()
	if len(marks) != 2 {
		t.Fatalf("marks = %v", marks)
	}
	if marks[0] != 2 || marks[1] != 5 {
		t.Fatalf("mark positions = %v, want [2 5]", marks)
	}
}

func TestIterationCounter(t *testing.T) {
	var iters []int
	p := NewLoop(Info{Name: "t"}, nil, func(b *Builder) {
		iters = append(iters, b.Iteration())
		b.Plain(isa.IntAlu)
	})
	s := p.Stream(rand.New(rand.NewSource(1)))
	for i := 0; i < 3; i++ {
		s.Next()
	}
	if len(iters) != 3 || iters[0] != 1 || iters[2] != 3 {
		t.Fatalf("iterations = %v", iters)
	}
}

func TestLabelString(t *testing.T) {
	if Benign.String() != "benign" || Malicious.String() != "malicious" {
		t.Fatalf("label strings wrong")
	}
}

func TestQuiesceAndFence(t *testing.T) {
	b := newB()
	b.Quiesce(123)
	b.Fence()
	if b.queue[0].Kind != isa.KindQuiesce || b.queue[0].WaitCycles != 123 {
		t.Fatalf("quiesce wrong: %+v", b.queue[0])
	}
	if b.queue[1].Kind != isa.KindFence {
		t.Fatalf("fence wrong")
	}
}

func TestCallRetIndirect(t *testing.T) {
	b := newB()
	b.Call(1, 0x2000)
	b.Ret(2, 0x1004, nil)
	b.Indirect(3, 0x3000, []isa.Op{{Kind: isa.KindLoad, Addr: 1}})
	if b.queue[0].Kind != isa.KindCall || b.queue[0].Target != 0x2000 {
		t.Fatalf("call wrong")
	}
	if b.queue[1].Kind != isa.KindRet {
		t.Fatalf("ret wrong")
	}
	if b.queue[2].Kind != isa.KindIndirect || len(b.queue[2].Transient) != 1 {
		t.Fatalf("indirect wrong")
	}
}
