package encoding

import (
	"math/rand"
	"testing"
)

func randBinaryRow(r *rand.Rand, n int) []float64 {
	row := make([]float64, n)
	for i := range row {
		if r.Intn(4) == 0 { // k-sparse-ish
			row[i] = 1
		}
	}
	return row
}

func TestBitVecPackRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200, 1159} {
		row := randBinaryRow(r, n)
		b := Pack(row)
		for i, v := range row {
			if b.Get(i) != (v != 0) {
				t.Fatalf("n=%d bit %d = %v, want %v", n, i, b.Get(i), v != 0)
			}
		}
		got := b.Unpack(n)
		for i := range row {
			if got[i] != row[i] {
				t.Fatalf("n=%d unpack[%d] = %v, want %v", n, i, got[i], row[i])
			}
		}
		ones := 0
		for _, v := range row {
			if v != 0 {
				ones++
			}
		}
		if b.Ones() != ones {
			t.Fatalf("n=%d Ones = %d, want %d", n, b.Ones(), ones)
		}
	}
}

func TestBitVecGetBeyondLength(t *testing.T) {
	b := NewBitVec(10)
	b.Set(9)
	if b.Get(64) || b.Get(1000) {
		t.Fatal("bits beyond the backing words must read as zero")
	}
}

func TestBitVecCounts(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		x := randBinaryRow(r, n)
		y := randBinaryRow(r, n)
		a, b := Pack(x), Pack(y)
		var and, xor, andNot int
		for i := range x {
			xa, xb := x[i] != 0, y[i] != 0
			if xa && xb {
				and++
			}
			if xa != xb {
				xor++
			}
			if xa && !xb {
				andNot++
			}
		}
		if got := a.AndCount(b); got != and {
			t.Fatalf("AndCount = %d, want %d", got, and)
		}
		if got := a.XorCount(b); got != xor {
			t.Fatalf("XorCount = %d, want %d", got, xor)
		}
		if got := a.AndNotCount(b); got != andNot {
			t.Fatalf("AndNotCount = %d, want %d", got, andNot)
		}
	}
}

func TestBitVecUnequalLengths(t *testing.T) {
	long := NewBitVec(128)
	long.Set(0)
	long.Set(100)
	short := NewBitVec(10)
	short.Set(0)
	if got := long.AndCount(short); got != 1 {
		t.Fatalf("AndCount over unequal lengths = %d, want 1", got)
	}
	if got := short.AndCount(long); got != 1 {
		t.Fatalf("AndCount (short receiver) = %d, want 1", got)
	}
	if got := long.XorCount(short); got != 1 {
		t.Fatalf("XorCount = %d, want 1 (bit 100 unmatched)", got)
	}
	if got := short.XorCount(long); got != 1 {
		t.Fatalf("XorCount (short receiver) = %d, want 1", got)
	}
	if got := long.AndNotCount(short); got != 1 {
		t.Fatalf("AndNotCount = %d, want 1", got)
	}
}

func TestPackThresholdAndColumn(t *testing.T) {
	X := [][]float64{
		{0.2, 0.5, 0.9},
		{0.6, 0.4, 0.5},
		{0.5, 0.0, 0.1},
	}
	b := PackThreshold(X[0], 0.5)
	if b.Get(0) || !b.Get(1) || !b.Get(2) {
		t.Fatalf("PackThreshold wrong: %v", b)
	}
	col := PackColumn(X, 0, 0.5)
	if col.Get(0) || !col.Get(1) || !col.Get(2) {
		t.Fatalf("PackColumn wrong: %v", col)
	}
}
