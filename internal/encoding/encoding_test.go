package encoding

import (
	"math"
	"testing"
)

func TestObserveAndMax(t *testing.T) {
	e := New(2)
	e.Observe([][]float64{{4, 1}, {2, 8}})
	e.Observe([][]float64{{6, 0}})

	if e.NumFeatures() != 2 || e.NumPoints() != 2 {
		t.Fatalf("shape = (%d, %d), want (2, 2)", e.NumFeatures(), e.NumPoints())
	}
	if e.GlobalMax[0] != 6 || e.GlobalMax[1] != 8 {
		t.Fatalf("global maxima = %v", e.GlobalMax)
	}
	// Per-point maxima take precedence where positive…
	if e.Max(0, 0) != 6 || e.Max(1, 1) != 8 {
		t.Fatalf("per-point maxima: %v %v", e.Max(0, 0), e.Max(1, 1))
	}
	// …and fall back to global when zero, out of range, or point = -1.
	if e.Max(1, 0) != 1 {
		t.Fatalf("Max(1,0) = %v, want per-point 1", e.Max(1, 0))
	}
	e.PerPoint[0][1] = 0
	if e.Max(1, 0) != 8 {
		t.Fatalf("zero per-point did not fall back to global")
	}
	if e.Max(0, -1) != 6 || e.Max(0, 99) != 6 {
		t.Fatalf("out-of-range point did not fall back to global")
	}

	GlobalOnly = true
	defer func() { GlobalOnly = false }()
	if e.Max(0, 0) != 6 {
		t.Fatalf("GlobalOnly ignored the global column")
	}
}

func TestObserveWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("width mismatch did not panic")
		}
	}()
	New(2).Observe([][]float64{{1, 2, 3}})
}

func TestScaleAndBinarize(t *testing.T) {
	e := New(3)
	e.Observe([][]float64{{10, 4, 0}})

	s := e.Scale([]float64{5, 8, 7}, 0, nil)
	// v/M clamped to 1; a counter that never fired scales to 0.
	if s[0] != 0.5 || s[1] != 1 || s[2] != 0 {
		t.Fatalf("scaled = %v", s)
	}
	b := e.Binarize([]float64{5, 1, 7}, 0, nil)
	if b[0] != 1 || b[1] != 0 || b[2] != 0 {
		t.Fatalf("binarized = %v", b)
	}
	// The firing cut is exactly BinarizeThreshold, inclusive.
	if bb := e.Binarize([]float64{10*BinarizeThreshold - 1e-9, 0, 0}, 0, nil); bb[0] != 0 {
		t.Fatalf("fired just below the threshold")
	}
}

func TestBitsMasking(t *testing.T) {
	e := &Encoding{GlobalMax: []float64{10, 10, 10, 0}}
	raw := []float64{9, math.NaN(), math.Inf(1), 3}
	// Slots: healthy-firing, NaN, Inf, never-fired-max, unresolved, OOB.
	bits, avail := e.Bits(raw, []int{0, 1, 2, 3, -1, 17}, -1, nil)
	want := []bool{true, false, false, false, false, false}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits = %v, want %v", bits, want)
		}
	}
	// NaN/Inf/unresolved/OOB are unobservable; the zero-max slot IS
	// observable (the counter was read, it just never fired in training).
	if avail != 2 {
		t.Fatalf("avail = %d, want 2", avail)
	}
	// dst reuse keeps the same backing array.
	buf := make([]bool, 6)
	out, _ := e.Bits(raw, []int{0, 1, 2, 3, -1, 17}, -1, buf)
	if &out[0] != &buf[0] {
		t.Fatalf("dst was reallocated despite sufficient capacity")
	}
}

func TestMargin(t *testing.T) {
	w := []float64{0.5, -0.25}
	if m := Margin(0.25, w, []bool{true, true}); m != 0.5 {
		t.Fatalf("margin = %v, want (0.25+0.5-0.25)/(0.25+0.5+0.25) = 0.5", m)
	}
	if m := Margin(0, w, []bool{false, false}); m != 0 {
		t.Fatalf("zero-norm margin = %v, want 0", m)
	}
	if m := Margin(-1, nil, nil); m != -1 {
		t.Fatalf("bias-only margin = %v, want -1", m)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	if len(id) != 3 || id[0] != 0 || id[2] != 2 {
		t.Fatalf("identity = %v", id)
	}
}
