package encoding

import (
	"math"
	"math/rand"
	"testing"
)

func TestObserveAndMax(t *testing.T) {
	e := New(2)
	e.Observe([][]float64{{4, 1}, {2, 8}})
	e.Observe([][]float64{{6, 0}})

	if e.NumFeatures() != 2 || e.NumPoints() != 2 {
		t.Fatalf("shape = (%d, %d), want (2, 2)", e.NumFeatures(), e.NumPoints())
	}
	if e.GlobalMax[0] != 6 || e.GlobalMax[1] != 8 {
		t.Fatalf("global maxima = %v", e.GlobalMax)
	}
	// Per-point maxima take precedence where positive…
	if e.Max(0, 0) != 6 || e.Max(1, 1) != 8 {
		t.Fatalf("per-point maxima: %v %v", e.Max(0, 0), e.Max(1, 1))
	}
	// …and fall back to global when zero, out of range, or point = -1.
	if e.Max(1, 0) != 1 {
		t.Fatalf("Max(1,0) = %v, want per-point 1", e.Max(1, 0))
	}
	e.PerPoint[0][1] = 0
	if e.Max(1, 0) != 8 {
		t.Fatalf("zero per-point did not fall back to global")
	}
	if e.Max(0, -1) != 6 || e.Max(0, 99) != 6 {
		t.Fatalf("out-of-range point did not fall back to global")
	}

	GlobalOnly = true
	defer func() { GlobalOnly = false }()
	if e.Max(0, 0) != 6 {
		t.Fatalf("GlobalOnly ignored the global column")
	}
}

func TestObserveWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("width mismatch did not panic")
		}
	}()
	New(2).Observe([][]float64{{1, 2, 3}})
}

func TestScaleAndBinarize(t *testing.T) {
	e := New(3)
	e.Observe([][]float64{{10, 4, 0}})

	s := e.Scale([]float64{5, 8, 7}, 0, nil)
	// v/M clamped to 1; a counter that never fired scales to 0.
	if s[0] != 0.5 || s[1] != 1 || s[2] != 0 {
		t.Fatalf("scaled = %v", s)
	}
	b := e.Binarize([]float64{5, 1, 7}, 0, nil)
	if b[0] != 1 || b[1] != 0 || b[2] != 0 {
		t.Fatalf("binarized = %v", b)
	}
	// The firing cut is exactly BinarizeThreshold, inclusive.
	if bb := e.Binarize([]float64{10*BinarizeThreshold - 1e-9, 0, 0}, 0, nil); bb[0] != 0 {
		t.Fatalf("fired just below the threshold")
	}
}

func TestBitsMasking(t *testing.T) {
	e := &Encoding{GlobalMax: []float64{10, 10, 10, 0}}
	raw := []float64{9, math.NaN(), math.Inf(1), 3}
	// Slots: healthy-firing, NaN, Inf, never-fired-max, unresolved, OOB.
	bits, avail := e.Bits(raw, []int{0, 1, 2, 3, -1, 17}, -1, nil)
	want := []bool{true, false, false, false, false, false}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits = %v, want %v", bits, want)
		}
	}
	// NaN/Inf/unresolved/OOB are unobservable; the zero-max slot IS
	// observable (the counter was read, it just never fired in training).
	if avail != 2 {
		t.Fatalf("avail = %d, want 2", avail)
	}
	// dst reuse keeps the same backing array.
	buf := make([]bool, 6)
	out, _ := e.Bits(raw, []int{0, 1, 2, 3, -1, 17}, -1, buf)
	if &out[0] != &buf[0] {
		t.Fatalf("dst was reallocated despite sufficient capacity")
	}
}

func TestMargin(t *testing.T) {
	w := []float64{0.5, -0.25}
	if m := Margin(0.25, w, []bool{true, true}); m != 0.5 {
		t.Fatalf("margin = %v, want (0.25+0.5-0.25)/(0.25+0.5+0.25) = 0.5", m)
	}
	if m := Margin(0, w, []bool{false, false}); m != 0 {
		t.Fatalf("zero-norm margin = %v, want 0", m)
	}
	if m := Margin(-1, nil, nil); m != -1 {
		t.Fatalf("bias-only margin = %v, want -1", m)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	if len(id) != 3 || id[0] != 0 || id[2] != 2 {
		t.Fatalf("identity = %v", id)
	}
}

// TestBitsPackedMatchesBits: the packed serving-path kernels must be
// bit-identical to the dense Bits+Margin pair over adversarial inputs —
// masked counters, NaN/Inf faults, never-fired maxima, >64 features (word
// boundaries), negative weights.
func TestBitsPackedMatchesBits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nf = 131 // spans three words with a ragged tail
	e := New(nf)
	maxima := make([]float64, nf)
	for i := range maxima {
		if rng.Float64() < 0.1 {
			maxima[i] = 0 // never fired in training
		} else {
			maxima[i] = 1 + rng.Float64()*9
		}
	}
	copy(e.GlobalMax, maxima)
	e.PerPoint = [][]float64{append([]float64(nil), maxima...)}

	w := make([]float64, nf)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	indices := make([]int, nf)
	raw := make([]float64, nf+10)
	var packed BitVec
	for trial := 0; trial < 200; trial++ {
		for i := range indices {
			switch {
			case rng.Float64() < 0.1:
				indices[i] = -1 // unresolved counter
			case rng.Float64() < 0.05:
				indices[i] = len(raw) + 3 // out of range
			default:
				indices[i] = rng.Intn(len(raw))
			}
		}
		for i := range raw {
			switch {
			case rng.Float64() < 0.15:
				raw[i] = math.NaN()
			case rng.Float64() < 0.05:
				raw[i] = math.Inf(1)
			default:
				raw[i] = rng.Float64() * 12
			}
		}
		point := rng.Intn(3) - 1 // exercise per-point and global maxima
		dense, availD := e.Bits(raw, indices, point, nil)
		var availP int
		packed, availP = e.BitsPacked(raw, indices, point, packed)
		if availD != availP {
			t.Fatalf("trial %d: avail dense=%d packed=%d", trial, availD, availP)
		}
		for i, f := range dense {
			if packed.Get(i) != f {
				t.Fatalf("trial %d: bit %d dense=%v packed=%v", trial, i, f, packed.Get(i))
			}
		}
		bias := rng.NormFloat64()
		if got, want := MarginPacked(bias, w, packed), Margin(bias, w, dense); got != want {
			t.Fatalf("trial %d: MarginPacked = %v, Margin = %v", trial, got, want)
		}
	}
	// dst reuse: a sufficiently long dst keeps its backing array and is
	// cleared before packing.
	buf := NewBitVec(nf)
	for i := range buf {
		buf[i] = ^uint64(0)
	}
	out, _ := e.BitsPacked(make([]float64, nf), Identity(nf), -1, buf)
	if &out[0] != &buf[0] {
		t.Fatalf("dst was reallocated despite sufficient capacity")
	}
	if out.Ones() != 0 {
		t.Fatalf("dst not cleared: %d stale bits", out.Ones())
	}
}

func TestMarginPackedZeroNorm(t *testing.T) {
	if m := MarginPacked(0, []float64{1, 2}, NewBitVec(2)); m != 0 {
		t.Fatalf("zero-norm packed margin = %v, want 0", m)
	}
	// Clamping matches Margin.
	v := NewBitVec(1)
	v.Set(0)
	if m := MarginPacked(5, []float64{1}, v); m != 1 {
		t.Fatalf("packed margin = %v, want clamp to 1", m)
	}
}
