// Package encoding is the single implementation of PerSpectron's
// normalize→binarize→score math. The paper's pipeline scales every counter
// delta by the maximum matrix M (per execution point, falling back to the
// corpus-wide maximum), sets the k-sparse bit when the scaled statistic
// reaches 0.5, and sums perceptron weights over the fired bits with the
// margin renormalized so that a partially observable sample (missing
// counters, fault-masked values — the PR-1 degraded serving mode) degrades
// gracefully instead of collapsing.
//
// Every layer that used to carry its own copy of this math — the trace
// Encoder's training matrices, the Detector's per-sample scoring, and the
// Classifier's one-vs-rest bank — now routes through this package, so the
// three cannot drift apart again. Equivalence tests in the root package pin
// the outputs to the pre-unification implementations bit for bit.
package encoding

import (
	"math"
	"math/bits"
)

// BinarizeThreshold is the paper's k-sparse firing cut: a feature's bit is
// set when its scaled statistic reaches this value. Consumers inspecting
// already-scaled matrices (feature selection, figure rendering) share the
// constant rather than re-deriving it.
const BinarizeThreshold = 0.5

// GlobalOnly disables per-execution-point maxima process-wide: Max (and
// everything built on it) then normalizes by the corpus-wide per-counter
// maximum. Per-point maxima are phase-alignment sensitive; detectors meant
// to generalize across unseen programs can prefer the global column.
var GlobalOnly = false

// Encoding holds the normalization maxima for a feature space: the paper's
// matrix M. GlobalMax is indexed by feature; PerPoint, when present, is
// indexed [execution point][feature] and takes precedence wherever its
// entry is positive. A nil PerPoint (the Classifier's configuration)
// normalizes by the global column only.
type Encoding struct {
	GlobalMax []float64
	PerPoint  [][]float64
}

// New returns an empty encoding for nFeatures features.
func New(nFeatures int) *Encoding {
	return &Encoding{GlobalMax: make([]float64, nFeatures)}
}

// NumFeatures returns the feature-space width u.
func (e *Encoding) NumFeatures() int { return len(e.GlobalMax) }

// NumPoints returns the number of execution points s with recorded maxima.
func (e *Encoding) NumPoints() int { return len(e.PerPoint) }

// Observe folds one program run's sample sequence into the maxima: sample j
// of the run updates point column j.
func (e *Encoding) Observe(samples [][]float64) {
	for j, vec := range samples {
		if len(vec) != len(e.GlobalMax) {
			panic("encoding: sample width mismatch in Observe")
		}
		for len(e.PerPoint) <= j {
			e.PerPoint = append(e.PerPoint, make([]float64, len(e.GlobalMax)))
		}
		col := e.PerPoint[j]
		for i, v := range vec {
			if v > col[i] {
				col[i] = v
			}
			if v > e.GlobalMax[i] {
				e.GlobalMax[i] = v
			}
		}
	}
}

// Max returns the normalizing maximum for feature i at execution point
// point: the per-point maximum when one is recorded and positive, otherwise
// the corpus-wide maximum. A result of 0 means the counter never fired
// anywhere in training.
func (e *Encoding) Max(i, point int) float64 {
	if !GlobalOnly && point >= 0 && point < len(e.PerPoint) {
		if v := e.PerPoint[point][i]; v > 0 {
			return v
		}
	}
	return e.GlobalMax[i]
}

// Scale normalizes sample vec taken at execution point point into [0,1] per
// feature. Counters that never fired scale to 0. The result is written into
// dst (pass nil to allocate).
func (e *Encoding) Scale(vec []float64, point int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(vec))
	}
	for i, v := range vec {
		mx := e.Max(i, point)
		if mx <= 0 {
			dst[i] = 0
			continue
		}
		s := v / mx
		if s > 1 {
			s = 1
		}
		dst[i] = s
	}
	return dst
}

// Binarize produces the paper's k-sparse 0/1 feature vector: bit t is 1 iff
// the scaled statistic t is >= 0.5. The result is written into dst (pass
// nil to allocate).
func (e *Encoding) Binarize(vec []float64, point int, dst []float64) []float64 {
	dst = e.Scale(vec, point, dst)
	for i, s := range dst {
		if s >= BinarizeThreshold {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
	return dst
}

// Bits computes the fired-bit set for a serving-path sample. indices maps
// each feature slot to its raw counter index on the current machine; a
// negative or out-of-range index marks a counter missing from the machine,
// and non-finite raw values are the fault sentinel (see internal/faults) —
// both are masked: the slot neither fires nor counts as observable. avail
// is the number of observable slots, the numerator of the degraded-mode
// coverage. The encoding is slot-indexed (GlobalMax[slot], not
// GlobalMax[counter]). The result is written into dst (pass nil to
// allocate; a short dst is reallocated).
func (e *Encoding) Bits(raw []float64, indices []int, point int, dst []bool) (bits []bool, avail int) {
	if len(dst) < len(indices) {
		dst = make([]bool, len(indices))
	}
	dst = dst[:len(indices)]
	for slot, j := range indices {
		dst[slot] = false
		if j < 0 || j >= len(raw) {
			continue
		}
		v := raw[j]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		avail++
		mx := e.Max(slot, point)
		if mx <= 0 {
			continue
		}
		if v/mx >= BinarizeThreshold {
			dst[slot] = true
		}
	}
	return dst, avail
}

// Margin returns the renormalized perceptron output over the fired bits:
// (bias + Σ w_fired) / (|bias| + Σ |w_fired|), clamped to [-1, 1], or 0
// when the denominator is zero. Because masked slots contribute to neither
// sum, losing a random subset of counters shrinks numerator and denominator
// together and the normalized confidence degrades gracefully instead of
// collapsing (docs/FAULTS.md).
func Margin(bias float64, w []float64, fired []bool) float64 {
	s := bias
	norm := math.Abs(bias)
	for i, f := range fired {
		if f {
			s += w[i]
			norm += math.Abs(w[i])
		}
	}
	if norm == 0 {
		return 0
	}
	v := s / norm
	if v > 1 {
		v = 1
	} else if v < -1 {
		v = -1
	}
	return v
}

// BitsPacked is Bits with the fired set emitted as a bit-packed BitVec
// instead of a []bool — the serving shard path's form, where one packed
// vector feeds a MarginPacked sweep per model (detector, or one per
// classifier class) without re-walking the raw sample. Semantics are
// identical to Bits: negative/out-of-range indices and non-finite raw
// values are masked and avail counts the observable slots. The result is
// written into dst (pass nil or a short dst to allocate); dst is cleared
// first.
func (e *Encoding) BitsPacked(raw []float64, indices []int, point int, dst BitVec) (bits BitVec, avail int) {
	if words := (len(indices) + 63) / 64; len(dst) < words {
		dst = make(BitVec, words)
	} else {
		dst = dst[:words]
		for i := range dst {
			dst[i] = 0
		}
	}
	for slot, j := range indices {
		if j < 0 || j >= len(raw) {
			continue
		}
		v := raw[j]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		avail++
		mx := e.Max(slot, point)
		if mx <= 0 {
			continue
		}
		if v/mx >= BinarizeThreshold {
			dst.Set(slot)
		}
	}
	return dst, avail
}

// MarginPacked is Margin over a bit-packed fired set, iterating set words
// only. Set bits are visited in ascending slot order — the same float
// accumulation order as Margin — so the two are bit-identical (pinned by
// the packed equivalence tests).
func MarginPacked(bias float64, w []float64, fired BitVec) float64 {
	s := bias
	norm := math.Abs(bias)
	for wi, word := range fired {
		base := wi << 6
		for word != 0 {
			j := base + bits.TrailingZeros64(word)
			s += w[j]
			norm += math.Abs(w[j])
			word &= word - 1
		}
	}
	if norm == 0 {
		return 0
	}
	v := s / norm
	if v > 1 {
		v = 1
	} else if v < -1 {
		v = -1
	}
	return v
}

// Identity returns the identity slot→counter mapping of width n, for
// serving paths that use the full counter space.
func Identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
