package encoding

import "math/bits"

// BitVec is a bit-packed 0/1 feature vector: bit i lives at word i/64, bit
// position i%64. The paper's k-sparse representation is overwhelmingly
// zeros, so packing 64 features per word turns the dense O(f) float loops of
// selection and training into a handful of word operations plus popcounts.
// Bits beyond the logical length are always zero (Pack guarantees it; Set
// panics rather than growing), so popcount reductions never need a length.
type BitVec []uint64

// NewBitVec returns an all-zero vector able to hold n bits.
func NewBitVec(n int) BitVec { return make(BitVec, (n+63)/64) }

// Set sets bit i.
func (b BitVec) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Get reports whether bit i is set. Bits beyond the backing words read as 0.
func (b BitVec) Get(i int) bool {
	if w := i >> 6; w < len(b) {
		return b[w]&(1<<uint(i&63)) != 0
	}
	return false
}

// Ones returns the number of set bits (the k of the k-sparse vector).
func (b BitVec) Ones() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndCount returns popcount(b AND o) — the co-occurrence count the packed
// Pearson and mutual-information kernels are built on. Vectors of unequal
// word length are compared over the common prefix (missing words are zero).
func (b BitVec) AndCount(o BitVec) int {
	if len(o) < len(b) {
		b = b[:len(o)]
	}
	n := 0
	for i, w := range b {
		n += bits.OnesCount64(w & o[i])
	}
	return n
}

// XorCount returns popcount(b XOR o): the Hamming distance between two
// packed vectors. Missing trailing words count as zero.
func (b BitVec) XorCount(o BitVec) int {
	long, short := b, o
	if len(long) < len(short) {
		long, short = short, long
	}
	n := 0
	for i, w := range short {
		n += bits.OnesCount64(w ^ long[i])
	}
	for _, w := range long[len(short):] {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndNotCount returns popcount(b AND NOT o) — the count of bits set in b
// only, used to split a one-count into contingency-table cells.
func (b BitVec) AndNotCount(o BitVec) int {
	n := 0
	for i, w := range b {
		var ow uint64
		if i < len(o) {
			ow = o[i]
		}
		n += bits.OnesCount64(w &^ ow)
	}
	return n
}

// Pack converts a dense 0/1 row into its packed form: bit i is set iff
// row[i] is non-zero.
func Pack(row []float64) BitVec {
	b := NewBitVec(len(row))
	for i, v := range row {
		if v != 0 {
			b[i>>6] |= 1 << uint(i&63)
		}
	}
	return b
}

// PackThreshold packs row with bit i set iff row[i] >= thr — the binarizing
// cut feature selection applies to scaled columns (BinarizeThreshold).
func PackThreshold(row []float64, thr float64) BitVec {
	b := NewBitVec(len(row))
	for i, v := range row {
		if v >= thr {
			b[i>>6] |= 1 << uint(i&63)
		}
	}
	return b
}

// PackColumn packs column j of matrix X: bit i is set iff X[i][j] >= thr.
// Feature selection works column-wise, so this avoids materializing the
// transpose.
func PackColumn(X [][]float64, j int, thr float64) BitVec {
	b := NewBitVec(len(X))
	for i, row := range X {
		if row[j] >= thr {
			b[i>>6] |= 1 << uint(i&63)
		}
	}
	return b
}

// PackRows packs every row of a 0/1 matrix.
func PackRows(X [][]float64) []BitVec {
	out := make([]BitVec, len(X))
	for i, row := range X {
		out[i] = Pack(row)
	}
	return out
}

// Unpack expands the packed vector back into a dense 0/1 float row of width
// n — the inverse of Pack for binary input, used by equivalence tests.
func (b BitVec) Unpack(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if b.Get(i) {
			out[i] = 1
		}
	}
	return out
}
