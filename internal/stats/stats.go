// Package stats implements the microarchitectural statistics engine used by
// the simulator: a registry of named counters grouped by pipeline component,
// snapshot/delta sampling at a fixed instruction granularity, the
// per-(counter, sampling-point) maximum matrix M from the paper, and the
// scaled/binarized k-sparse feature representation consumed by PerSpectron.
//
// The paper examines 1159 counters across 17 components; the registry is
// dynamic, and the simulator in internal/sim registers exactly that many.
package stats

import (
	"fmt"
	"sort"
)

// Component identifies the pipeline or memory-system unit a counter belongs
// to. Feature selection treats counters of the same component as candidates
// for within-component decorrelation, while correlated counters in
// *different* components are kept as replicated detectors.
type Component int

// The 17 components of the simulated machine, mirroring gem5's stat
// hierarchy as referenced by the paper (fetch, decode, rename, iq, iew,
// lsq, memDep, commit, rob, branchPred, itb, dtb, icache, dcache, l2,
// tol2bus/membus, mem_ctrls).
const (
	CompFetch Component = iota
	CompDecode
	CompRename
	CompIQ
	CompIEW
	CompLSQ
	CompMemDep
	CompCommit
	CompROB
	CompBranchPred
	CompITB
	CompDTB
	CompICache
	CompDCache
	CompL2
	CompBus
	CompMemCtrl
	NumComponents
)

var componentNames = [NumComponents]string{
	"fetch", "decode", "rename", "iq", "iew", "lsq", "memDep", "commit",
	"rob", "branchPred", "itb", "dtb", "icache", "dcache", "l2",
	"bus", "mem_ctrls",
}

// String returns the gem5-style lowercase component name.
func (c Component) String() string {
	if c < 0 || c >= NumComponents {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return componentNames[c]
}

// ParseComponent maps a component name back to its Component value.
func ParseComponent(s string) (Component, error) {
	for i, n := range componentNames {
		if n == s {
			return Component(i), nil
		}
	}
	return 0, fmt.Errorf("stats: unknown component %q", s)
}

// Counter is a single monotonically increasing microarchitectural statistic.
// Counters are created through Registry.New* and written by the simulator via
// Add/Inc. Values are float64 so that energy and latency-sum statistics share
// the same machinery as event counts.
type Counter struct {
	idx       int
	name      string
	component Component
	desc      string
	val       float64
}

// Name returns the fully qualified counter name, e.g.
// "commit.NonSpecStalls".
func (c *Counter) Name() string { return c.name }

// Component returns the pipeline component this counter belongs to.
func (c *Counter) Component() Component { return c.component }

// Desc returns the human-readable description.
func (c *Counter) Desc() string { return c.desc }

// Index returns the counter's stable position in registry order; sample
// vectors use this index.
func (c *Counter) Index() int { return c.idx }

// Value returns the current cumulative value.
func (c *Counter) Value() float64 { return c.val }

// Inc increments the counter by one event.
func (c *Counter) Inc() { c.val++ }

// Add increments the counter by n (n may be fractional for energy stats).
func (c *Counter) Add(n float64) { c.val += n }

// Registry holds all counters of a machine in a stable order.
//
// The zero value is not usable; call NewRegistry.
type Registry struct {
	counters []*Counter
	byName   map[string]*Counter
	sealed   bool
}

// NewRegistry returns an empty counter registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Counter)}
}

// New registers a counter under component comp with the given short name and
// description. The fully qualified name is "<component>.<name>". New panics
// on duplicate names or if the registry has been sealed: counter sets are
// fixed at machine construction time, so both indicate a programming error.
func (r *Registry) New(comp Component, name, desc string) *Counter {
	full := comp.String() + "." + name
	return r.newNamed(full, comp, desc)
}

// NewRaw registers a counter whose fully qualified name is given verbatim
// (used for gem5-style names that embed extra hierarchy, e.g.
// "tol2bus.trans_dist::ReadSharedReq" under the bus component).
func (r *Registry) NewRaw(comp Component, fullName, desc string) *Counter {
	return r.newNamed(fullName, comp, desc)
}

func (r *Registry) newNamed(full string, comp Component, desc string) *Counter {
	if r.sealed {
		panic("stats: registry sealed; cannot add counter " + full)
	}
	if _, dup := r.byName[full]; dup {
		panic("stats: duplicate counter " + full)
	}
	c := &Counter{idx: len(r.counters), name: full, component: comp, desc: desc}
	r.counters = append(r.counters, c)
	r.byName[full] = c
	return c
}

// Seal freezes the counter set. Sampling requires a sealed registry so that
// vector lengths are stable.
func (r *Registry) Seal() { r.sealed = true }

// Sealed reports whether the registry has been sealed.
func (r *Registry) Sealed() bool { return r.sealed }

// Len returns the number of registered counters.
func (r *Registry) Len() int { return len(r.counters) }

// Lookup returns the counter with the given fully qualified name.
func (r *Registry) Lookup(name string) (*Counter, bool) {
	c, ok := r.byName[name]
	return c, ok
}

// Names returns all counter names in registry order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.counters))
	for i, c := range r.counters {
		out[i] = c.name
	}
	return out
}

// Components returns, in registry order, the component of each counter.
func (r *Registry) Components() []Component {
	out := make([]Component, len(r.counters))
	for i, c := range r.counters {
		out[i] = c.component
	}
	return out
}

// Counter returns the i'th counter in registry order.
func (r *Registry) Counter(i int) *Counter { return r.counters[i] }

// Snapshot copies the current cumulative values into dst, which must have
// length Len() (pass nil to allocate).
func (r *Registry) Snapshot(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(r.counters))
	}
	if len(dst) != len(r.counters) {
		panic("stats: snapshot length mismatch")
	}
	for i, c := range r.counters {
		dst[i] = c.val
	}
	return dst
}

// Reset zeroes all counters. Used between program runs on a shared machine.
func (r *Registry) Reset() {
	for _, c := range r.counters {
		c.val = 0
	}
}

// ByComponent returns the indices of all counters belonging to comp, in
// registry order.
func (r *Registry) ByComponent(comp Component) []int {
	var out []int
	for i, c := range r.counters {
		if c.component == comp {
			out = append(out, i)
		}
	}
	return out
}

// SortedNames returns counter names sorted lexicographically; useful for
// stable dumps in tools and tests.
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}
