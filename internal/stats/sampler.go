package stats

// Sampler converts a machine's cumulative counters into per-interval delta
// vectors ("samples"). The paper dumps all 1159 counters once every 10K, 50K
// and 100K instructions; the simulator drives Tick with the number of
// committed instructions and the sampler fires whenever the configured
// granularity is crossed.
type Sampler struct {
	reg      *Registry
	interval uint64 // committed instructions per sample

	committed uint64
	nextFire  uint64

	prev []float64
	cur  []float64

	samples [][]float64
}

// NewSampler creates a sampler over reg firing every interval committed
// instructions. The registry must be sealed.
func NewSampler(reg *Registry, interval uint64) *Sampler {
	if !reg.Sealed() {
		panic("stats: sampler requires a sealed registry")
	}
	if interval == 0 {
		panic("stats: zero sampling interval")
	}
	s := &Sampler{
		reg:      reg,
		interval: interval,
		nextFire: interval,
		prev:     make([]float64, reg.Len()),
		cur:      make([]float64, reg.Len()),
	}
	reg.Snapshot(s.prev)
	return s
}

// Interval returns the sampling granularity in committed instructions.
func (s *Sampler) Interval() uint64 { return s.interval }

// Tick informs the sampler that n more instructions have committed. It
// returns the number of samples emitted by this tick (usually 0 or 1).
func (s *Sampler) Tick(n uint64) int {
	s.committed += n
	fired := 0
	for s.committed >= s.nextFire {
		s.fire()
		s.nextFire += s.interval
		fired++
	}
	return fired
}

func (s *Sampler) fire() {
	s.reg.Snapshot(s.cur)
	delta := make([]float64, len(s.cur))
	for i := range s.cur {
		delta[i] = s.cur[i] - s.prev[i]
	}
	copy(s.prev, s.cur)
	s.samples = append(s.samples, delta)
}

// Flush emits a final partial sample if at least minInstr instructions have
// committed since the last emitted sample. Programs whose length is not a
// multiple of the interval still contribute their tail. Flush is idempotent:
// the emitted tail advances the interval boundary, so a second Flush (or a
// Flush-then-Tick on the same boundary) does not double-count it.
func (s *Sampler) Flush(minInstr uint64) {
	done := s.committed - (s.nextFire - s.interval)
	if done >= minInstr && done > 0 {
		s.fire()
		s.nextFire = s.committed + s.interval
	}
}

// Samples returns all delta vectors emitted so far. The returned slice is
// owned by the sampler; callers must not mutate it.
func (s *Sampler) Samples() [][]float64 { return s.samples }

// Committed returns the total committed instructions seen.
func (s *Sampler) Committed() uint64 { return s.committed }
