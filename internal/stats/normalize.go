package stats

import "perspectron/internal/encoding"

// MaxMatrix is the paper's matrix M: u rows (one per counter) by s columns
// (one per sampling point within a program's execution). M[i][j] is the
// maximum value observed for counter i at execution point j across the
// training corpus. Scaled statistic t = value / M[t][j]; the k-sparse binary
// feature is 1 when the scaled statistic is >= 0.5.
//
// MaxMatrix is the training-side accumulator view; the normalize/binarize
// math itself lives in internal/encoding (the single implementation shared
// with the Detector and Classifier serving paths) and is reached through
// the Encoding accessor.
type MaxMatrix struct {
	enc *encoding.Encoding
}

// NewMaxMatrix creates an empty matrix for nCounters counters.
func NewMaxMatrix(nCounters int) *MaxMatrix {
	return &MaxMatrix{enc: encoding.New(nCounters)}
}

// Encoding exposes the accumulated maxima as the shared encoding type the
// serving paths consume. The returned value aliases the matrix: further
// Observe calls are visible through it.
func (m *MaxMatrix) Encoding() *encoding.Encoding { return m.enc }

// NumCounters returns the row count u.
func (m *MaxMatrix) NumCounters() int { return m.enc.NumFeatures() }

// NumPoints returns the number of execution points s with recorded maxima.
func (m *MaxMatrix) NumPoints() int { return m.enc.NumPoints() }

// Observe folds one program's sample sequence into the matrix: sample j of
// the program updates column j.
func (m *MaxMatrix) Observe(samples [][]float64) { m.enc.Observe(samples) }

// Max returns the normalizing maximum for counter i at execution point j,
// falling back to the counter's global maximum when j is beyond any observed
// point or the per-point maximum is zero. A result of 0 means the counter
// never fired anywhere.
func (m *MaxMatrix) Max(i, j int) float64 { return m.enc.Max(i, j) }

// GlobalMax returns the corpus-wide maximum for counter i.
func (m *MaxMatrix) GlobalMax(i int) float64 { return m.enc.GlobalMax[i] }

// Scale normalizes sample vec taken at execution point j into [0,1] per
// counter. Counters that never fired scale to 0. The result is written into
// dst (pass nil to allocate).
func (m *MaxMatrix) Scale(vec []float64, j int, dst []float64) []float64 {
	return m.enc.Scale(vec, j, dst)
}

// Binarize produces the paper's k-sparse 0/1 feature vector: bit t is 1 iff
// the scaled statistic t is >= 0.5. The result is written into dst (pass nil
// to allocate).
func (m *MaxMatrix) Binarize(vec []float64, j int, dst []float64) []float64 {
	return m.enc.Binarize(vec, j, dst)
}

// Sparsity returns the fraction of 1 bits in a binarized vector; exposed for
// diagnostics and the k-sparse property tests.
func Sparsity(bits []float64) float64 {
	if len(bits) == 0 {
		return 0
	}
	ones := 0
	for _, b := range bits {
		if b != 0 {
			ones++
		}
	}
	return float64(ones) / float64(len(bits))
}
