package stats

// MaxMatrix is the paper's matrix M: u rows (one per counter) by s columns
// (one per sampling point within a program's execution). M[i][j] is the
// maximum value observed for counter i at execution point j across the
// training corpus. Scaled statistic t = value / M[t][j]; the k-sparse binary
// feature is 1 when the scaled statistic is >= 0.5.
type MaxMatrix struct {
	perPoint  [][]float64 // [point][counter]
	globalMax []float64   // [counter] fallback for unseen points
	nCounters int
}

// NewMaxMatrix creates an empty matrix for nCounters counters.
func NewMaxMatrix(nCounters int) *MaxMatrix {
	return &MaxMatrix{
		globalMax: make([]float64, nCounters),
		nCounters: nCounters,
	}
}

// NumCounters returns the row count u.
func (m *MaxMatrix) NumCounters() int { return m.nCounters }

// NumPoints returns the number of execution points s with recorded maxima.
func (m *MaxMatrix) NumPoints() int { return len(m.perPoint) }

// Observe folds one program's sample sequence into the matrix: sample j of
// the program updates column j.
func (m *MaxMatrix) Observe(samples [][]float64) {
	for j, vec := range samples {
		if len(vec) != m.nCounters {
			panic("stats: sample width mismatch in MaxMatrix.Observe")
		}
		for len(m.perPoint) <= j {
			m.perPoint = append(m.perPoint, make([]float64, m.nCounters))
		}
		col := m.perPoint[j]
		for i, v := range vec {
			if v > col[i] {
				col[i] = v
			}
			if v > m.globalMax[i] {
				m.globalMax[i] = v
			}
		}
	}
}

// GlobalOnly disables per-execution-point maxima: Scale and Binarize then
// normalize by the corpus-wide per-counter maximum. Per-point maxima are
// phase-alignment sensitive; detectors meant to generalize across unseen
// programs can prefer the global column.
var GlobalOnly = false

// Max returns the normalizing maximum for counter i at execution point j,
// falling back to the counter's global maximum when j is beyond any observed
// point or the per-point maximum is zero. A result of 0 means the counter
// never fired anywhere.
func (m *MaxMatrix) Max(i, j int) float64 {
	if !GlobalOnly && j >= 0 && j < len(m.perPoint) {
		if v := m.perPoint[j][i]; v > 0 {
			return v
		}
	}
	return m.globalMax[i]
}

// GlobalMax returns the corpus-wide maximum for counter i.
func (m *MaxMatrix) GlobalMax(i int) float64 { return m.globalMax[i] }

// Scale normalizes sample vec taken at execution point j into [0,1] per
// counter. Counters that never fired scale to 0. The result is written into
// dst (pass nil to allocate).
func (m *MaxMatrix) Scale(vec []float64, j int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(vec))
	}
	for i, v := range vec {
		mx := m.Max(i, j)
		if mx <= 0 {
			dst[i] = 0
			continue
		}
		s := v / mx
		if s > 1 {
			s = 1
		}
		dst[i] = s
	}
	return dst
}

// Binarize produces the paper's k-sparse 0/1 feature vector: bit t is 1 iff
// the scaled statistic t is >= 0.5. The result is written into dst (pass nil
// to allocate).
func (m *MaxMatrix) Binarize(vec []float64, j int, dst []float64) []float64 {
	dst = m.Scale(vec, j, dst)
	for i, s := range dst {
		if s >= 0.5 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
	return dst
}

// Sparsity returns the fraction of 1 bits in a binarized vector; exposed for
// diagnostics and the k-sparse property tests.
func Sparsity(bits []float64) float64 {
	if len(bits) == 0 {
		return 0
	}
	ones := 0
	for _, b := range bits {
		if b != 0 {
			ones++
		}
	}
	return float64(ones) / float64(len(bits))
}
