package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	a := r.New(CompCommit, "NonSpecStalls", "commit stalls for non-speculative ops")
	b := r.New(CompFetch, "SquashCycles", "cycles fetch spent squashed")
	if got := a.Name(); got != "commit.NonSpecStalls" {
		t.Fatalf("name = %q", got)
	}
	if a.Index() != 0 || b.Index() != 1 {
		t.Fatalf("indices = %d,%d", a.Index(), b.Index())
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	a.Inc()
	a.Add(2.5)
	if a.Value() != 3.5 {
		t.Fatalf("value = %v", a.Value())
	}
	c, ok := r.Lookup("fetch.SquashCycles")
	if !ok || c != b {
		t.Fatalf("lookup failed")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatalf("lookup of missing name succeeded")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.New(CompIQ, "x", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on duplicate counter")
		}
	}()
	r.New(CompIQ, "x", "")
}

func TestRegistrySealedPanics(t *testing.T) {
	r := NewRegistry()
	r.Seal()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on add after seal")
		}
	}()
	r.New(CompIQ, "x", "")
}

func TestRegistryNewRaw(t *testing.T) {
	r := NewRegistry()
	c := r.NewRaw(CompBus, "tol2bus.trans_dist::ReadSharedReq", "bus read shared requests")
	if c.Name() != "tol2bus.trans_dist::ReadSharedReq" {
		t.Fatalf("raw name = %q", c.Name())
	}
	if c.Component() != CompBus {
		t.Fatalf("component = %v", c.Component())
	}
}

func TestComponentString(t *testing.T) {
	for c := Component(0); c < NumComponents; c++ {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "component(") {
			t.Fatalf("component %d has no name", c)
		}
		back, err := ParseComponent(s)
		if err != nil || back != c {
			t.Fatalf("round trip of %q failed: %v %v", s, back, err)
		}
	}
	if _, err := ParseComponent("bogus"); err == nil {
		t.Fatalf("expected error for bogus component")
	}
}

func TestByComponent(t *testing.T) {
	r := NewRegistry()
	r.New(CompFetch, "a", "")
	r.New(CompDecode, "b", "")
	r.New(CompFetch, "c", "")
	got := r.ByComponent(CompFetch)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("ByComponent = %v", got)
	}
	if r.ByComponent(CompL2) != nil {
		t.Fatalf("expected nil for empty component")
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	a := r.New(CompFetch, "a", "")
	b := r.New(CompDecode, "b", "")
	a.Add(3)
	b.Add(7)
	snap := r.Snapshot(nil)
	if snap[0] != 3 || snap[1] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
	r.Reset()
	if a.Value() != 0 || b.Value() != 0 {
		t.Fatalf("reset failed")
	}
}

func TestSamplerFiresAtGranularity(t *testing.T) {
	r := NewRegistry()
	a := r.New(CompCommit, "insts", "")
	r.Seal()
	s := NewSampler(r, 100)
	for i := 0; i < 10; i++ {
		a.Add(50)
		s.Tick(50)
	}
	if got := len(s.Samples()); got != 5 {
		t.Fatalf("samples = %d, want 5", got)
	}
	for _, vec := range s.Samples() {
		if vec[0] != 100 {
			t.Fatalf("delta = %v, want 100", vec[0])
		}
	}
	if s.Committed() != 500 {
		t.Fatalf("committed = %d", s.Committed())
	}
}

func TestSamplerDeltaNotCumulative(t *testing.T) {
	r := NewRegistry()
	a := r.New(CompCommit, "x", "")
	r.Seal()
	s := NewSampler(r, 10)
	a.Add(5)
	s.Tick(10)
	a.Add(9)
	s.Tick(10)
	got := s.Samples()
	if got[0][0] != 5 || got[1][0] != 9 {
		t.Fatalf("deltas = %v,%v; want 5,9", got[0][0], got[1][0])
	}
}

func TestSamplerFlush(t *testing.T) {
	r := NewRegistry()
	a := r.New(CompCommit, "x", "")
	r.Seal()
	s := NewSampler(r, 100)
	a.Add(1)
	s.Tick(60)
	s.Flush(50)
	if len(s.Samples()) != 1 {
		t.Fatalf("flush did not emit tail sample")
	}
	s2 := NewSampler(r, 100)
	s2.Tick(30)
	s2.Flush(50)
	if len(s2.Samples()) != 0 {
		t.Fatalf("flush emitted sample below minInstr")
	}
}

// TestSamplerFlushIdempotent: the tail emit must advance the interval
// boundary — a second Flush, or a Flush followed by a Tick that crosses the
// old boundary, used to re-emit the same tail.
func TestSamplerFlushIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.New(CompCommit, "x", "")
	r.Seal()
	s := NewSampler(r, 100)
	a.Add(1)
	s.Tick(60)
	s.Flush(50)
	s.Flush(50)
	if got := len(s.Samples()); got != 1 {
		t.Fatalf("double Flush emitted %d samples, want 1", got)
	}
	// The flushed tail consumed instructions 0-60; the next full interval
	// starts there, so 100 more instructions emit exactly one more sample
	// with only the post-flush counter delta.
	a.Add(7)
	if fired := s.Tick(100); fired != 1 {
		t.Fatalf("post-flush tick fired %d times, want 1", fired)
	}
	samples := s.Samples()
	if got := len(samples); got != 2 {
		t.Fatalf("samples = %d, want 2", got)
	}
	if samples[1][0] != 7 {
		t.Fatalf("post-flush delta = %v, want 7 (tail re-counted?)", samples[1][0])
	}
}

func TestSamplerMultipleFiresInOneTick(t *testing.T) {
	r := NewRegistry()
	r.New(CompCommit, "x", "")
	r.Seal()
	s := NewSampler(r, 10)
	if fired := s.Tick(35); fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestSamplerPanics(t *testing.T) {
	r := NewRegistry()
	r.New(CompCommit, "x", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("expected panic for unsealed registry")
			}
		}()
		NewSampler(r, 10)
	}()
	r.Seal()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for zero interval")
		}
	}()
	NewSampler(r, 0)
}

func TestMaxMatrixObserveAndScale(t *testing.T) {
	m := NewMaxMatrix(2)
	m.Observe([][]float64{{10, 0}, {20, 4}})
	m.Observe([][]float64{{5, 2}, {40, 1}})
	if m.NumPoints() != 2 {
		t.Fatalf("points = %d", m.NumPoints())
	}
	if m.Max(0, 0) != 10 || m.Max(0, 1) != 40 {
		t.Fatalf("max col: %v %v", m.Max(0, 0), m.Max(0, 1))
	}
	// counter 1 at point 0: per-point max is 2.
	if m.Max(1, 0) != 2 {
		t.Fatalf("max(1,0) = %v", m.Max(1, 0))
	}
	// Unseen point falls back to global max.
	if m.Max(0, 9) != 40 {
		t.Fatalf("fallback max = %v", m.Max(0, 9))
	}
	scaled := m.Scale([]float64{5, 1}, 0, nil)
	if scaled[0] != 0.5 || scaled[1] != 0.5 {
		t.Fatalf("scaled = %v", scaled)
	}
	// Values above the recorded max clamp to 1.
	scaled = m.Scale([]float64{100, 100}, 0, nil)
	if scaled[0] != 1 || scaled[1] != 1 {
		t.Fatalf("clamp failed: %v", scaled)
	}
}

func TestBinarizeThreshold(t *testing.T) {
	m := NewMaxMatrix(3)
	m.Observe([][]float64{{10, 10, 0}})
	bits := m.Binarize([]float64{5, 4.9, 0}, 0, nil)
	if bits[0] != 1 || bits[1] != 0 || bits[2] != 0 {
		t.Fatalf("bits = %v", bits)
	}
}

func TestSparsity(t *testing.T) {
	if got := Sparsity([]float64{1, 0, 1, 0}); got != 0.5 {
		t.Fatalf("sparsity = %v", got)
	}
	if got := Sparsity(nil); got != 0 {
		t.Fatalf("sparsity(nil) = %v", got)
	}
}

// Property: binarized vectors contain only 0/1 and scaling is always within
// [0,1], for arbitrary non-negative observations.
func TestQuickBinarizeIsBinary(t *testing.T) {
	f := func(raw []uint16, probe []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		n := len(raw)
		if len(probe) < n {
			return true
		}
		m := NewMaxMatrix(n)
		obs := make([]float64, n)
		for i, v := range raw {
			obs[i] = float64(v)
		}
		m.Observe([][]float64{obs})
		p := make([]float64, n)
		for i := 0; i < n; i++ {
			p[i] = float64(probe[i])
		}
		scaled := m.Scale(p, 0, nil)
		bits := m.Binarize(p, 0, nil)
		for i := 0; i < n; i++ {
			if scaled[i] < 0 || scaled[i] > 1 {
				return false
			}
			if bits[i] != 0 && bits[i] != 1 {
				return false
			}
			if (scaled[i] >= 0.5) != (bits[i] == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: sampler deltas sum back to the cumulative counter value when the
// instruction stream is a multiple of the interval.
func TestQuickSamplerDeltasSum(t *testing.T) {
	f := func(incs []uint8) bool {
		r := NewRegistry()
		c := r.New(CompCommit, "x", "")
		r.Seal()
		s := NewSampler(r, 7)
		var total float64
		for _, v := range incs {
			c.Add(float64(v))
			total += float64(v)
			s.Tick(7)
		}
		var sum float64
		for _, vec := range s.Samples() {
			sum += vec[0]
		}
		return sum == total && len(s.Samples()) == len(incs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestDump(t *testing.T) {
	r := NewRegistry()
	a := r.New(CompFetch, "Insts", "instructions fetched")
	r.New(CompCommit, "zero", "never fires")
	a.Add(42)
	var buf strings.Builder
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fetch.Insts") || !strings.Contains(out, "42") {
		t.Fatalf("dump missing counter:\n%s", out)
	}
	if !strings.Contains(out, "commit.zero") {
		t.Fatalf("dump omitted zero counter")
	}
	if !strings.Contains(out, "Begin Simulation Statistics") {
		t.Fatalf("dump missing frame")
	}
}

func TestDumpDelta(t *testing.T) {
	r := NewRegistry()
	a := r.New(CompFetch, "a", "")
	b := r.New(CompFetch, "b", "")
	prev := r.Snapshot(nil)
	a.Add(5)
	_ = b
	var buf strings.Builder
	if err := r.DumpDelta(&buf, prev); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fetch.a") {
		t.Fatalf("delta missing changed counter")
	}
	if strings.Contains(out, "fetch.b") {
		t.Fatalf("delta includes unchanged counter")
	}
	if err := r.DumpDelta(&buf, []float64{1}); err == nil {
		t.Fatalf("mismatched snapshot accepted")
	}
}

func TestSortedNames(t *testing.T) {
	r := NewRegistry()
	r.New(CompFetch, "zeta", "")
	r.New(CompFetch, "alpha", "")
	names := r.SortedNames()
	if names[0] != "fetch.alpha" || names[1] != "fetch.zeta" {
		t.Fatalf("sorted names = %v", names)
	}
	// Registry order is unchanged.
	if r.Names()[0] != "fetch.zeta" {
		t.Fatalf("SortedNames mutated registry order")
	}
}
