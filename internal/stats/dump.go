package stats

import (
	"bufio"
	"fmt"
	"io"
)

// Dump writes all counters in gem5 stats.txt style: one
// "name value # description" line per counter, in registry order, framed by
// begin/end markers. Zero-valued counters are included (gem5 prints them;
// they are the zero-variance features selection later discards).
func (r *Registry) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "---------- Begin Simulation Statistics ----------"); err != nil {
		return err
	}
	for _, c := range r.counters {
		if _, err := fmt.Fprintf(bw, "%-56s %14.6g  # %s\n", c.name, c.val, c.desc); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "---------- End Simulation Statistics   ----------"); err != nil {
		return err
	}
	return bw.Flush()
}

// DumpDelta writes only counters whose value differs from the prev
// snapshot, as "name delta" lines — the compact per-interval form.
func (r *Registry) DumpDelta(w io.Writer, prev []float64) error {
	if len(prev) != len(r.counters) {
		return fmt.Errorf("stats: snapshot length %d != %d counters", len(prev), len(r.counters))
	}
	bw := bufio.NewWriter(w)
	for i, c := range r.counters {
		if d := c.val - prev[i]; d != 0 {
			if _, err := fmt.Fprintf(bw, "%-56s %14.6g\n", c.name, d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
