package tlb

import (
	"testing"

	"perspectron/internal/stats"
)

func newTLB(t *testing.T) *TLB {
	t.Helper()
	reg := stats.NewRegistry()
	tb := New(DefaultConfig(), reg, stats.CompDTB, "dtb")
	reg.Seal()
	return tb
}

func TestMissThenHit(t *testing.T) {
	tb := newTLB(t)
	r1 := tb.Translate(0x1000, false)
	if r1.Latency != DefaultConfig().WalkLatency {
		t.Fatalf("cold translate latency = %d", r1.Latency)
	}
	r2 := tb.Translate(0x1008, false) // same page
	if r2.Latency != 1 {
		t.Fatalf("warm translate latency = %d", r2.Latency)
	}
	if tb.C.RdMisses.Value() != 1 || tb.C.RdHits.Value() != 1 {
		t.Fatalf("misses=%v hits=%v", tb.C.RdMisses.Value(), tb.C.RdHits.Value())
	}
}

func TestKernelAddressPermFault(t *testing.T) {
	tb := newTLB(t)
	r := tb.Translate(KernelBase+0x1000, false)
	if !r.PermFault || r.PageFault {
		t.Fatalf("kernel access result = %+v", r)
	}
	// The fault is deferred (Meltdown): the translation is still installed
	// and subsequent accesses also perm-fault but hit the TLB.
	r2 := tb.Translate(KernelBase+0x1000, false)
	if !r2.PermFault || r2.Latency != 1 {
		t.Fatalf("warm kernel access = %+v", r2)
	}
	if tb.C.PermFaults.Value() != 2 {
		t.Fatalf("permFaults = %v", tb.C.PermFaults.Value())
	}
}

func TestUnmappedPageFault(t *testing.T) {
	tb := newTLB(t)
	r := tb.Translate(Unmapped+0x2000, false)
	if !r.PageFault {
		t.Fatalf("unmapped access did not page fault")
	}
	if r.Latency != DefaultConfig().WalkLatency {
		t.Fatalf("unmapped latency = %d, want full walk", r.Latency)
	}
	if tb.C.PageFaults.Value() != 1 {
		t.Fatalf("pageFaults = %v", tb.C.PageFaults.Value())
	}
}

func TestWriteCounters(t *testing.T) {
	tb := newTLB(t)
	tb.Translate(0x4000, true)
	tb.Translate(0x4000, true)
	if tb.C.WrAccesses.Value() != 2 || tb.C.WrMisses.Value() != 1 || tb.C.WrHits.Value() != 1 {
		t.Fatalf("write counters: acc=%v miss=%v hit=%v",
			tb.C.WrAccesses.Value(), tb.C.WrMisses.Value(), tb.C.WrHits.Value())
	}
}

func TestFlush(t *testing.T) {
	tb := newTLB(t)
	tb.Translate(0x1000, false)
	tb.Flush()
	r := tb.Translate(0x1000, false)
	if r.Latency != DefaultConfig().WalkLatency {
		t.Fatalf("post-flush translate hit")
	}
	if tb.C.Flushes.Value() != 1 {
		t.Fatalf("flushes = %v", tb.C.Flushes.Value())
	}
}

func TestConflictEviction(t *testing.T) {
	tb := newTLB(t)
	n := uint64(DefaultConfig().Entries)
	pg := uint64(DefaultConfig().PageBytes)
	tb.Translate(0, false)
	tb.Translate(n*pg, false) // maps to the same slot
	r := tb.Translate(0, false)
	if r.Latency != DefaultConfig().WalkLatency {
		t.Fatalf("conflicting entry not evicted")
	}
}
